# Empty dependencies file for selfmod_translation.
# This may be replaced when dependencies are built.
