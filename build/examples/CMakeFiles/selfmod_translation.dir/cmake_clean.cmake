file(REMOVE_RECURSE
  "CMakeFiles/selfmod_translation.dir/selfmod_translation.cpp.o"
  "CMakeFiles/selfmod_translation.dir/selfmod_translation.cpp.o.d"
  "selfmod_translation"
  "selfmod_translation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selfmod_translation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
