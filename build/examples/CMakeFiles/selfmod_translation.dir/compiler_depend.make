# Empty compiler generated dependencies file for selfmod_translation.
# This may be replaced when dependencies are built.
