# Empty compiler generated dependencies file for cfed_tests.
# This may be replaced when dependencies are built.
