
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/AsmTest.cpp" "tests/CMakeFiles/cfed_tests.dir/AsmTest.cpp.o" "gcc" "tests/CMakeFiles/cfed_tests.dir/AsmTest.cpp.o.d"
  "/root/repo/tests/CfgTest.cpp" "tests/CMakeFiles/cfed_tests.dir/CfgTest.cpp.o" "gcc" "tests/CMakeFiles/cfed_tests.dir/CfgTest.cpp.o.d"
  "/root/repo/tests/CheckerTest.cpp" "tests/CMakeFiles/cfed_tests.dir/CheckerTest.cpp.o" "gcc" "tests/CMakeFiles/cfed_tests.dir/CheckerTest.cpp.o.d"
  "/root/repo/tests/CodeBuilderTest.cpp" "tests/CMakeFiles/cfed_tests.dir/CodeBuilderTest.cpp.o" "gcc" "tests/CMakeFiles/cfed_tests.dir/CodeBuilderTest.cpp.o.d"
  "/root/repo/tests/DataFlowTest.cpp" "tests/CMakeFiles/cfed_tests.dir/DataFlowTest.cpp.o" "gcc" "tests/CMakeFiles/cfed_tests.dir/DataFlowTest.cpp.o.d"
  "/root/repo/tests/DbtTest.cpp" "tests/CMakeFiles/cfed_tests.dir/DbtTest.cpp.o" "gcc" "tests/CMakeFiles/cfed_tests.dir/DbtTest.cpp.o.d"
  "/root/repo/tests/FaultTest.cpp" "tests/CMakeFiles/cfed_tests.dir/FaultTest.cpp.o" "gcc" "tests/CMakeFiles/cfed_tests.dir/FaultTest.cpp.o.d"
  "/root/repo/tests/InterpOpcodeTest.cpp" "tests/CMakeFiles/cfed_tests.dir/InterpOpcodeTest.cpp.o" "gcc" "tests/CMakeFiles/cfed_tests.dir/InterpOpcodeTest.cpp.o.d"
  "/root/repo/tests/InterpTest.cpp" "tests/CMakeFiles/cfed_tests.dir/InterpTest.cpp.o" "gcc" "tests/CMakeFiles/cfed_tests.dir/InterpTest.cpp.o.d"
  "/root/repo/tests/IsaTest.cpp" "tests/CMakeFiles/cfed_tests.dir/IsaTest.cpp.o" "gcc" "tests/CMakeFiles/cfed_tests.dir/IsaTest.cpp.o.d"
  "/root/repo/tests/MemoryTest.cpp" "tests/CMakeFiles/cfed_tests.dir/MemoryTest.cpp.o" "gcc" "tests/CMakeFiles/cfed_tests.dir/MemoryTest.cpp.o.d"
  "/root/repo/tests/PropertyTest.cpp" "tests/CMakeFiles/cfed_tests.dir/PropertyTest.cpp.o" "gcc" "tests/CMakeFiles/cfed_tests.dir/PropertyTest.cpp.o.d"
  "/root/repo/tests/SigTest.cpp" "tests/CMakeFiles/cfed_tests.dir/SigTest.cpp.o" "gcc" "tests/CMakeFiles/cfed_tests.dir/SigTest.cpp.o.d"
  "/root/repo/tests/SupportTest.cpp" "tests/CMakeFiles/cfed_tests.dir/SupportTest.cpp.o" "gcc" "tests/CMakeFiles/cfed_tests.dir/SupportTest.cpp.o.d"
  "/root/repo/tests/WorkloadsTest.cpp" "tests/CMakeFiles/cfed_tests.dir/WorkloadsTest.cpp.o" "gcc" "tests/CMakeFiles/cfed_tests.dir/WorkloadsTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/cfed_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sig/CMakeFiles/cfed_sig.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/cfed_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/dbt/CMakeFiles/cfed_dbt.dir/DependInfo.cmake"
  "/root/repo/build/src/cfc/CMakeFiles/cfed_cfc.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/cfed_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/cfed_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/cfed_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/cfed_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cfed_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
