
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/run_workload.cpp" "tools/CMakeFiles/run_workload.dir/run_workload.cpp.o" "gcc" "tools/CMakeFiles/run_workload.dir/run_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/cfed_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/dbt/CMakeFiles/cfed_dbt.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/cfed_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/cfed_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cfed_support.dir/DependInfo.cmake"
  "/root/repo/build/src/cfc/CMakeFiles/cfed_cfc.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/cfed_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/cfed_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
