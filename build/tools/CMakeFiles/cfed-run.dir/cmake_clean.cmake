file(REMOVE_RECURSE
  "CMakeFiles/cfed-run.dir/cfed_run.cpp.o"
  "CMakeFiles/cfed-run.dir/cfed_run.cpp.o.d"
  "cfed-run"
  "cfed-run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfed-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
