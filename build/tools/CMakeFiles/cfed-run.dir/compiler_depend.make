# Empty compiler generated dependencies file for cfed-run.
# This may be replaced when dependencies are built.
