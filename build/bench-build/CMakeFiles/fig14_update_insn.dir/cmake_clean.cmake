file(REMOVE_RECURSE
  "../bench/fig14_update_insn"
  "../bench/fig14_update_insn.pdb"
  "CMakeFiles/fig14_update_insn.dir/fig14_update_insn.cpp.o"
  "CMakeFiles/fig14_update_insn.dir/fig14_update_insn.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_update_insn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
