# Empty dependencies file for fig14_update_insn.
# This may be replaced when dependencies are built.
