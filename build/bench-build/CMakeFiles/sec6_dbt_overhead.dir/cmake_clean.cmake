file(REMOVE_RECURSE
  "../bench/sec6_dbt_overhead"
  "../bench/sec6_dbt_overhead.pdb"
  "CMakeFiles/sec6_dbt_overhead.dir/sec6_dbt_overhead.cpp.o"
  "CMakeFiles/sec6_dbt_overhead.dir/sec6_dbt_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec6_dbt_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
