# Empty compiler generated dependencies file for sec6_dbt_overhead.
# This may be replaced when dependencies are built.
