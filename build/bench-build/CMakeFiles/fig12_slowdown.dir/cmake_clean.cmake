file(REMOVE_RECURSE
  "../bench/fig12_slowdown"
  "../bench/fig12_slowdown.pdb"
  "CMakeFiles/fig12_slowdown.dir/fig12_slowdown.cpp.o"
  "CMakeFiles/fig12_slowdown.dir/fig12_slowdown.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_slowdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
