# Empty dependencies file for fig12_slowdown.
# This may be replaced when dependencies are built.
