# Empty dependencies file for ext_dataflow.
# This may be replaced when dependencies are built.
