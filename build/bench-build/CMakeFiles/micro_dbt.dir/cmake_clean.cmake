file(REMOVE_RECURSE
  "../bench/micro_dbt"
  "../bench/micro_dbt.pdb"
  "CMakeFiles/micro_dbt.dir/micro_dbt.cpp.o"
  "CMakeFiles/micro_dbt.dir/micro_dbt.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_dbt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
