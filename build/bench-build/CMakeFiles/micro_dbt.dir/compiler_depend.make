# Empty compiler generated dependencies file for micro_dbt.
# This may be replaced when dependencies are built.
