# Empty dependencies file for fig3_error_categories.
# This may be replaced when dependencies are built.
