file(REMOVE_RECURSE
  "../bench/fig3_error_categories"
  "../bench/fig3_error_categories.pdb"
  "CMakeFiles/fig3_error_categories.dir/fig3_error_categories.cpp.o"
  "CMakeFiles/fig3_error_categories.dir/fig3_error_categories.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_error_categories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
