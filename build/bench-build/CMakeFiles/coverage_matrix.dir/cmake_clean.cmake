file(REMOVE_RECURSE
  "../bench/coverage_matrix"
  "../bench/coverage_matrix.pdb"
  "CMakeFiles/coverage_matrix.dir/coverage_matrix.cpp.o"
  "CMakeFiles/coverage_matrix.dir/coverage_matrix.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coverage_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
