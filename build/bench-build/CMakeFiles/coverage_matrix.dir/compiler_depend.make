# Empty compiler generated dependencies file for coverage_matrix.
# This may be replaced when dependencies are built.
