file(REMOVE_RECURSE
  "libcfed_bench_util.a"
)
