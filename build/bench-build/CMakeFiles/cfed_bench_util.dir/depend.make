# Empty dependencies file for cfed_bench_util.
# This may be replaced when dependencies are built.
