file(REMOVE_RECURSE
  "CMakeFiles/cfed_bench_util.dir/BenchUtil.cpp.o"
  "CMakeFiles/cfed_bench_util.dir/BenchUtil.cpp.o.d"
  "libcfed_bench_util.a"
  "libcfed_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfed_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
