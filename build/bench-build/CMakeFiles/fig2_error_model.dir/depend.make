# Empty dependencies file for fig2_error_model.
# This may be replaced when dependencies are built.
