# Empty compiler generated dependencies file for ablation_dbt.
# This may be replaced when dependencies are built.
