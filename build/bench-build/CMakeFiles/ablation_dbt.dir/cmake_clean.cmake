file(REMOVE_RECURSE
  "../bench/ablation_dbt"
  "../bench/ablation_dbt.pdb"
  "CMakeFiles/ablation_dbt.dir/ablation_dbt.cpp.o"
  "CMakeFiles/ablation_dbt.dir/ablation_dbt.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dbt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
