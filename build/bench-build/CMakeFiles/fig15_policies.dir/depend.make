# Empty dependencies file for fig15_policies.
# This may be replaced when dependencies are built.
