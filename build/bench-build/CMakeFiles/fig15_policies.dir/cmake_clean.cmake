file(REMOVE_RECURSE
  "../bench/fig15_policies"
  "../bench/fig15_policies.pdb"
  "CMakeFiles/fig15_policies.dir/fig15_policies.cpp.o"
  "CMakeFiles/fig15_policies.dir/fig15_policies.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
