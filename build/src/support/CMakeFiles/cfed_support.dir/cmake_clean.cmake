file(REMOVE_RECURSE
  "CMakeFiles/cfed_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/cfed_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/cfed_support.dir/Format.cpp.o"
  "CMakeFiles/cfed_support.dir/Format.cpp.o.d"
  "CMakeFiles/cfed_support.dir/Prng.cpp.o"
  "CMakeFiles/cfed_support.dir/Prng.cpp.o.d"
  "CMakeFiles/cfed_support.dir/Stats.cpp.o"
  "CMakeFiles/cfed_support.dir/Stats.cpp.o.d"
  "CMakeFiles/cfed_support.dir/Table.cpp.o"
  "CMakeFiles/cfed_support.dir/Table.cpp.o.d"
  "libcfed_support.a"
  "libcfed_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfed_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
