# Empty dependencies file for cfed_support.
# This may be replaced when dependencies are built.
