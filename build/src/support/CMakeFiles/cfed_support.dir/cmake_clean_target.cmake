file(REMOVE_RECURSE
  "libcfed_support.a"
)
