# Empty compiler generated dependencies file for cfed_sig.
# This may be replaced when dependencies are built.
