file(REMOVE_RECURSE
  "CMakeFiles/cfed_sig.dir/FormalModel.cpp.o"
  "CMakeFiles/cfed_sig.dir/FormalModel.cpp.o.d"
  "libcfed_sig.a"
  "libcfed_sig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfed_sig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
