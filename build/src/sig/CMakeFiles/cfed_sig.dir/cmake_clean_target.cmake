file(REMOVE_RECURSE
  "libcfed_sig.a"
)
