file(REMOVE_RECURSE
  "libcfed_asm.a"
)
