file(REMOVE_RECURSE
  "CMakeFiles/cfed_asm.dir/Assembler.cpp.o"
  "CMakeFiles/cfed_asm.dir/Assembler.cpp.o.d"
  "libcfed_asm.a"
  "libcfed_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfed_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
