# Empty dependencies file for cfed_asm.
# This may be replaced when dependencies are built.
