file(REMOVE_RECURSE
  "libcfed_workloads.a"
)
