# Empty dependencies file for cfed_workloads.
# This may be replaced when dependencies are built.
