file(REMOVE_RECURSE
  "CMakeFiles/cfed_workloads.dir/RandomProgram.cpp.o"
  "CMakeFiles/cfed_workloads.dir/RandomProgram.cpp.o.d"
  "CMakeFiles/cfed_workloads.dir/Workloads.cpp.o"
  "CMakeFiles/cfed_workloads.dir/Workloads.cpp.o.d"
  "libcfed_workloads.a"
  "libcfed_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfed_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
