file(REMOVE_RECURSE
  "libcfed_dbt.a"
)
