file(REMOVE_RECURSE
  "CMakeFiles/cfed_dbt.dir/Dbt.cpp.o"
  "CMakeFiles/cfed_dbt.dir/Dbt.cpp.o.d"
  "libcfed_dbt.a"
  "libcfed_dbt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfed_dbt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
