# Empty dependencies file for cfed_dbt.
# This may be replaced when dependencies are built.
