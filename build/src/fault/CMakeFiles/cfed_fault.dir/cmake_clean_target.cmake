file(REMOVE_RECURSE
  "libcfed_fault.a"
)
