file(REMOVE_RECURSE
  "CMakeFiles/cfed_fault.dir/Campaign.cpp.o"
  "CMakeFiles/cfed_fault.dir/Campaign.cpp.o.d"
  "CMakeFiles/cfed_fault.dir/ErrorModel.cpp.o"
  "CMakeFiles/cfed_fault.dir/ErrorModel.cpp.o.d"
  "CMakeFiles/cfed_fault.dir/RegisterFault.cpp.o"
  "CMakeFiles/cfed_fault.dir/RegisterFault.cpp.o.d"
  "libcfed_fault.a"
  "libcfed_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfed_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
