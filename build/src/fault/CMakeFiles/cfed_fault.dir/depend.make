# Empty dependencies file for cfed_fault.
# This may be replaced when dependencies are built.
