file(REMOVE_RECURSE
  "CMakeFiles/cfed_isa.dir/Disasm.cpp.o"
  "CMakeFiles/cfed_isa.dir/Disasm.cpp.o.d"
  "CMakeFiles/cfed_isa.dir/Isa.cpp.o"
  "CMakeFiles/cfed_isa.dir/Isa.cpp.o.d"
  "libcfed_isa.a"
  "libcfed_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfed_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
