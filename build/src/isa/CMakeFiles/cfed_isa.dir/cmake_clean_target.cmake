file(REMOVE_RECURSE
  "libcfed_isa.a"
)
