# Empty dependencies file for cfed_isa.
# This may be replaced when dependencies are built.
