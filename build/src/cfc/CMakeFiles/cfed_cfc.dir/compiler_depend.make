# Empty compiler generated dependencies file for cfed_cfc.
# This may be replaced when dependencies are built.
