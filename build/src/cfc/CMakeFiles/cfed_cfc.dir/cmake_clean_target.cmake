file(REMOVE_RECURSE
  "libcfed_cfc.a"
)
