file(REMOVE_RECURSE
  "CMakeFiles/cfed_cfc.dir/CfcssChecker.cpp.o"
  "CMakeFiles/cfed_cfc.dir/CfcssChecker.cpp.o.d"
  "CMakeFiles/cfed_cfc.dir/Checker.cpp.o"
  "CMakeFiles/cfed_cfc.dir/Checker.cpp.o.d"
  "CMakeFiles/cfed_cfc.dir/DataFlow.cpp.o"
  "CMakeFiles/cfed_cfc.dir/DataFlow.cpp.o.d"
  "CMakeFiles/cfed_cfc.dir/EccaChecker.cpp.o"
  "CMakeFiles/cfed_cfc.dir/EccaChecker.cpp.o.d"
  "CMakeFiles/cfed_cfc.dir/EcfChecker.cpp.o"
  "CMakeFiles/cfed_cfc.dir/EcfChecker.cpp.o.d"
  "CMakeFiles/cfed_cfc.dir/EdgCfChecker.cpp.o"
  "CMakeFiles/cfed_cfc.dir/EdgCfChecker.cpp.o.d"
  "CMakeFiles/cfed_cfc.dir/NoneChecker.cpp.o"
  "CMakeFiles/cfed_cfc.dir/NoneChecker.cpp.o.d"
  "CMakeFiles/cfed_cfc.dir/RcfChecker.cpp.o"
  "CMakeFiles/cfed_cfc.dir/RcfChecker.cpp.o.d"
  "libcfed_cfc.a"
  "libcfed_cfc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfed_cfc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
