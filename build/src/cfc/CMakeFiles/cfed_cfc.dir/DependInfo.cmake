
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cfc/CfcssChecker.cpp" "src/cfc/CMakeFiles/cfed_cfc.dir/CfcssChecker.cpp.o" "gcc" "src/cfc/CMakeFiles/cfed_cfc.dir/CfcssChecker.cpp.o.d"
  "/root/repo/src/cfc/Checker.cpp" "src/cfc/CMakeFiles/cfed_cfc.dir/Checker.cpp.o" "gcc" "src/cfc/CMakeFiles/cfed_cfc.dir/Checker.cpp.o.d"
  "/root/repo/src/cfc/DataFlow.cpp" "src/cfc/CMakeFiles/cfed_cfc.dir/DataFlow.cpp.o" "gcc" "src/cfc/CMakeFiles/cfed_cfc.dir/DataFlow.cpp.o.d"
  "/root/repo/src/cfc/EccaChecker.cpp" "src/cfc/CMakeFiles/cfed_cfc.dir/EccaChecker.cpp.o" "gcc" "src/cfc/CMakeFiles/cfed_cfc.dir/EccaChecker.cpp.o.d"
  "/root/repo/src/cfc/EcfChecker.cpp" "src/cfc/CMakeFiles/cfed_cfc.dir/EcfChecker.cpp.o" "gcc" "src/cfc/CMakeFiles/cfed_cfc.dir/EcfChecker.cpp.o.d"
  "/root/repo/src/cfc/EdgCfChecker.cpp" "src/cfc/CMakeFiles/cfed_cfc.dir/EdgCfChecker.cpp.o" "gcc" "src/cfc/CMakeFiles/cfed_cfc.dir/EdgCfChecker.cpp.o.d"
  "/root/repo/src/cfc/NoneChecker.cpp" "src/cfc/CMakeFiles/cfed_cfc.dir/NoneChecker.cpp.o" "gcc" "src/cfc/CMakeFiles/cfed_cfc.dir/NoneChecker.cpp.o.d"
  "/root/repo/src/cfc/RcfChecker.cpp" "src/cfc/CMakeFiles/cfed_cfc.dir/RcfChecker.cpp.o" "gcc" "src/cfc/CMakeFiles/cfed_cfc.dir/RcfChecker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cfg/CMakeFiles/cfed_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/cfed_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/cfed_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cfed_support.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/cfed_asm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
