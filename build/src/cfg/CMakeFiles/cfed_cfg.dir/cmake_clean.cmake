file(REMOVE_RECURSE
  "CMakeFiles/cfed_cfg.dir/Cfg.cpp.o"
  "CMakeFiles/cfed_cfg.dir/Cfg.cpp.o.d"
  "libcfed_cfg.a"
  "libcfed_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfed_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
