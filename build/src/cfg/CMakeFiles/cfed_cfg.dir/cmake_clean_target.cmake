file(REMOVE_RECURSE
  "libcfed_cfg.a"
)
