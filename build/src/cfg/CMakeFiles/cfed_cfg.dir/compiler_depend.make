# Empty compiler generated dependencies file for cfed_cfg.
# This may be replaced when dependencies are built.
