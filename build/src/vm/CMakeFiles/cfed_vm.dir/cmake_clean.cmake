file(REMOVE_RECURSE
  "CMakeFiles/cfed_vm.dir/Interp.cpp.o"
  "CMakeFiles/cfed_vm.dir/Interp.cpp.o.d"
  "CMakeFiles/cfed_vm.dir/Loader.cpp.o"
  "CMakeFiles/cfed_vm.dir/Loader.cpp.o.d"
  "CMakeFiles/cfed_vm.dir/Memory.cpp.o"
  "CMakeFiles/cfed_vm.dir/Memory.cpp.o.d"
  "libcfed_vm.a"
  "libcfed_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfed_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
