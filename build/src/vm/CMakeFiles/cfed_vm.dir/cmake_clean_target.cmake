file(REMOVE_RECURSE
  "libcfed_vm.a"
)
