# Empty dependencies file for cfed_vm.
# This may be replaced when dependencies are built.
