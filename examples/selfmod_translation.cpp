//===- selfmod_translation.cpp - Self-modifying code under the DBT --------------===//
//
// Section 5: "Self-modifying code is handled using the write protection
// mechanism." Guest code pages are read-only under the translator; a
// store into them raises a write-protection fault, the DBT flushes and
// unchains the affected translations, lets the store complete, and
// retranslates the modified code on next entry. This example runs a
// guest program that patches its own instruction stream in a loop and
// prints a different value each time — under full RCF instrumentation.
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "dbt/Dbt.h"
#include "vm/Loader.h"

#include <cstdio>

using namespace cfed;

static const char *const SelfModSource = R"(
.entry main
main:
  movi r10, 3           ; patch the code three times
  movi r1, patch        ; address of the movi below
again:
  mov r2, r10
  stb [r1+4], r2        ; rewrite the movi's low immediate byte
  jmp run               ; enter the (now stale) translation
run:
patch:
  movi r3, 0            ; immediate gets patched to 3, 2, 1
  out r3
  addi r10, r10, -1
  jcc ne, again
  halt
)";

int main() {
  AsmResult Assembled = assembleProgram(SelfModSource);
  if (!Assembled.succeeded()) {
    std::printf("%s", Assembled.errorText().c_str());
    return 1;
  }

  DbtConfig Config;
  Config.Tech = Technique::Rcf;
  Memory Mem;
  Interpreter Interp(Mem);
  Dbt Translator(Mem, Config);
  if (!Translator.load(Assembled.Program, Interp.state()))
    return 1;
  StopInfo Stop = Translator.run(Interp, 1000000);

  std::printf("run %s; output (one line per self-patch):\n%s",
              Stop.Kind == StopKind::Halted ? "halted cleanly" : "FAILED",
              Interp.output().c_str());
  std::printf("\ncache flushes triggered by write-protection faults: "
              "%llu\nblock translations performed (including "
              "retranslations): %llu\n",
              (unsigned long long)Translator.flushCount(),
              (unsigned long long)Translator.translationCount());
  return 0;
}
