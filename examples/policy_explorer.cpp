//===- policy_explorer.cpp - Checking-policy cost/risk trade-off ----------------===//
//
// Section 6's relaxed fail report model: signatures are updated in every
// block, but checks can be deferred (RET-BE / RET / END) to buy back
// performance at the price of detection delay — and, for policies that
// never check inside loops, the risk that an error spinning in an
// infinite loop is never reported. This example measures both sides on
// one workload: the cycle cost per policy and the outcome distribution
// of an injection campaign (watch timeouts appear under END).
//
// With --attack the explorer switches from soft errors to the
// adversarial model (DESIGN.md §15): for every checker it runs a small
// return-forging campaign on a call-heavy workload and prints one
// concrete evasion (a forged return every signature accepts) and one
// concrete detection — then repeats with the shadow return stack, where
// the evasions disappear.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "fault/Attack.h"
#include "fault/Campaign.h"
#include "support/Format.h"
#include "support/Table.h"
#include "workloads/RandomProgram.h"

#include <cstdio>
#include <cstring>

using namespace cfed;
using namespace cfed::bench;

namespace {

/// One row of the adversarial table: attack a single checker config and
/// fish one evaded and one detected return attack out of the campaign.
int attackRow(Table &T, const char *Name, Technique Tech,
              bool ShadowStack) {
  AsmProgram Workload = assembleWorkload("186.crafty");
  DbtConfig Config;
  Config.Tech = Tech;
  Config.ShadowStack = ShadowStack;
  // The whole-program schemes only translate eagerly.
  Config.EagerTranslate =
      Tech == Technique::Cfcss || Tech == Technique::Ecca;

  AttackCampaign Campaign(Workload, Config);
  if (!Campaign.prepare(10000000))
    return 1;
  AttackOutcomeCounts Returns;
  std::string Evasion = "-", Detection = "-";
  for (const PlannedAttack &Attack : Campaign.plan(48, 7)) {
    if (Attack.Family != AttackFamily::Return || Attack.ForgedTarget == 0)
      continue;
    AttackCampaign::AttackReport Report = Campaign.injectAttack(Attack);
    Returns.add(Report.Result);
    std::string Example = formatString(
        "ret #%llu -> 0x%llx%s", (unsigned long long)Attack.Instance,
        (unsigned long long)Attack.ForgedTarget,
        Attack.GadgetValid ? " (valid sig)" : "");
    if ((Report.Result == AttackOutcome::Evaded ||
         Report.Result == AttackOutcome::Timeout) &&
        Evasion == "-")
      Evasion = Example;
    if ((Report.Result == AttackOutcome::DetectedSignature ||
         Report.Result == AttackOutcome::DetectedShadowStack ||
         Report.Result == AttackOutcome::DetectedHardware) &&
        Detection == "-")
      Detection =
          Example + (Report.Result == AttackOutcome::DetectedShadowStack
                         ? " [0x5AC]"
                         : Report.Result == AttackOutcome::DetectedHardware
                               ? " [hw]"
                               : " [0xCFE]");
  }
  auto Cell = [](uint64_t Value) { return std::to_string(Value); };
  T.addRow({Name, ShadowStack ? "yes" : "no", Cell(Returns.total()),
            Cell(Returns.DetectedSig), Cell(Returns.DetectedShadow),
            Cell(Returns.undetected()), Evasion, Detection});
  return 0;
}

/// The --attack mode: the per-checker evasion/detection table.
int exploreAttacks() {
  Table T;
  T.setHeader({"Checker", "shadow", "ret attacks", "det-sig", "det-shdw",
               "undet", "example evasion", "example detection"});
  for (bool ShadowStack : {false, true}) {
    if (attackRow(T, "edgcf", Technique::EdgCf, ShadowStack) ||
        attackRow(T, "rcf", Technique::Rcf, ShadowStack) ||
        attackRow(T, "ecca", Technique::Ecca, ShadowStack) ||
        attackRow(T, "cfcss", Technique::Cfcss, ShadowStack))
      return 1;
  }
  std::printf("%s\n", T.render().c_str());
  std::printf(
      "Every signature scheme accepts some forged return: the popped "
      "address is the\nsignature source (EdgCF/RCF) or a "
      "signature-compatible gadget exists (CFCSS/ECCA).\nThe shadow "
      "return stack closes exactly this hole — undetected return "
      "attacks drop\nto zero — at a small overhead "
      "(BM_ShadowStackOverhead in bench/micro_dbt).\n");
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc > 1 && std::strcmp(Argv[1], "--attack") == 0)
    return exploreAttacks();
  // Cost side: one real workload.
  AsmProgram Workload = assembleWorkload("181.mcf");
  uint64_t Base = runDbtCycles(Workload, DbtConfig{});

  // Risk side: a small program so the campaign stays fast.
  RandomProgramOptions Options;
  Options.Seed = 99;
  Options.NumSegments = 6;
  Options.LoopTrip = 24;
  AsmResult Small = assembleProgram(generateRandomProgram(Options));
  if (!Small.succeeded())
    return 1;

  Table T;
  T.setHeader({"Policy", "mcf slowdown", "det-sig", "avg latency",
               "det-hw", "masked", "SDC", "timeout"});
  for (CheckPolicy Policy : {CheckPolicy::AllBB, CheckPolicy::StoreBB,
                             CheckPolicy::RetBE, CheckPolicy::Ret,
                             CheckPolicy::End}) {
    DbtConfig Config;
    Config.Tech = Technique::Rcf;
    Config.Policy = Policy;
    double Slowdown = double(runDbtCycles(Workload, Config)) / double(Base);

    FaultCampaign Campaign(Small.Program, Config);
    if (!Campaign.prepare(10000000))
      return 1;
    OutcomeCounts Totals;
    uint64_t SigLatencySum = 0;
    auto Faults = Campaign.plan(400, 5, SiteClass::Any);
    uint64_t Done = 0;
    for (const PlannedFault &Fault : Faults) {
      if (Fault.Category == BranchErrorCategory::NoError)
        continue;
      if (Done++ >= 100)
        break;
      InjectionReport Report = Campaign.injectDetailed(Fault);
      Totals.add(Report.Result);
      if (Report.Result == Outcome::DetectedSignature)
        SigLatencySum += Report.LatencyInsns;
    }
    auto Cell = [](uint64_t Value) { return std::to_string(Value); };
    std::string Latency =
        Totals.DetectedSig
            ? formatString("%llu insns", (unsigned long long)(
                                             SigLatencySum /
                                             Totals.DetectedSig))
            : std::string("-");
    T.addRow({getCheckPolicyName(Policy), formatSlowdown(Slowdown),
              Cell(Totals.DetectedSig), Latency, Cell(Totals.DetectedHw),
              Cell(Totals.Masked), Cell(Totals.Sdc),
              Cell(Totals.Timeout)});
  }
  std::printf("%s\n", T.render().c_str());
  std::printf("The cheaper the policy, the later (or never) errors are "
              "reported: detection latency\ngrows as checks thin out, "
              "and under END an error that sends the program into an\n"
              "endless loop is never checked again (timeout).\n");
  return 0;
}
