//===- policy_explorer.cpp - Checking-policy cost/risk trade-off ----------------===//
//
// Section 6's relaxed fail report model: signatures are updated in every
// block, but checks can be deferred (RET-BE / RET / END) to buy back
// performance at the price of detection delay — and, for policies that
// never check inside loops, the risk that an error spinning in an
// infinite loop is never reported. This example measures both sides on
// one workload: the cycle cost per policy and the outcome distribution
// of an injection campaign (watch timeouts appear under END).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "fault/Campaign.h"
#include "support/Format.h"
#include "support/Table.h"
#include "workloads/RandomProgram.h"

#include <cstdio>

using namespace cfed;
using namespace cfed::bench;

int main() {
  // Cost side: one real workload.
  AsmProgram Workload = assembleWorkload("181.mcf");
  uint64_t Base = runDbtCycles(Workload, DbtConfig{});

  // Risk side: a small program so the campaign stays fast.
  RandomProgramOptions Options;
  Options.Seed = 99;
  Options.NumSegments = 6;
  Options.LoopTrip = 24;
  AsmResult Small = assembleProgram(generateRandomProgram(Options));
  if (!Small.succeeded())
    return 1;

  Table T;
  T.setHeader({"Policy", "mcf slowdown", "det-sig", "avg latency",
               "det-hw", "masked", "SDC", "timeout"});
  for (CheckPolicy Policy : {CheckPolicy::AllBB, CheckPolicy::StoreBB,
                             CheckPolicy::RetBE, CheckPolicy::Ret,
                             CheckPolicy::End}) {
    DbtConfig Config;
    Config.Tech = Technique::Rcf;
    Config.Policy = Policy;
    double Slowdown = double(runDbtCycles(Workload, Config)) / double(Base);

    FaultCampaign Campaign(Small.Program, Config);
    if (!Campaign.prepare(10000000))
      return 1;
    OutcomeCounts Totals;
    uint64_t SigLatencySum = 0;
    auto Faults = Campaign.plan(400, 5, SiteClass::Any);
    uint64_t Done = 0;
    for (const PlannedFault &Fault : Faults) {
      if (Fault.Category == BranchErrorCategory::NoError)
        continue;
      if (Done++ >= 100)
        break;
      InjectionReport Report = Campaign.injectDetailed(Fault);
      Totals.add(Report.Result);
      if (Report.Result == Outcome::DetectedSignature)
        SigLatencySum += Report.LatencyInsns;
    }
    auto Cell = [](uint64_t Value) { return std::to_string(Value); };
    std::string Latency =
        Totals.DetectedSig
            ? formatString("%llu insns", (unsigned long long)(
                                             SigLatencySum /
                                             Totals.DetectedSig))
            : std::string("-");
    T.addRow({getCheckPolicyName(Policy), formatSlowdown(Slowdown),
              Cell(Totals.DetectedSig), Latency, Cell(Totals.DetectedHw),
              Cell(Totals.Masked), Cell(Totals.Sdc),
              Cell(Totals.Timeout)});
  }
  std::printf("%s\n", T.render().c_str());
  std::printf("The cheaper the policy, the later (or never) errors are "
              "reported: detection latency\ngrows as checks thin out, "
              "and under END an error that sends the program into an\n"
              "endless loop is never checked again (timeout).\n");
  return 0;
}
