//===- quickstart.cpp - Five-minute tour of the library -------------------------===//
//
// Assembles a small guest program, runs it natively, runs it under the
// dynamic binary translator with the RCF checking technique, and then
// injects one control-flow error to show the signature check catching
// it. This touches the whole public pipeline:
//
//   assembleProgram -> loadProgram/Interpreter (native)
//                   -> Dbt::load/run (translated + instrumented)
//                   -> FaultCampaign (injection)
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "dbt/Dbt.h"
#include "fault/Campaign.h"
#include "vm/Loader.h"

#include <cstdio>

using namespace cfed;

// A tiny guest program: sums the first 10 squares and prints the result.
static const char *const GuestSource = R"(
.entry main
square:                 ; r1 = r1 * r1
  mul r1, r1, r1
  ret
main:
  movi r10, 10          ; n
  movi r11, 0           ; sum
loop:
  mov r1, r10
  call square
  add r11, r11, r1
  addi r10, r10, -1
  jcc ne, loop
  out r11               ; prints 385
  halt
)";

int main() {
  // 1. Assemble.
  AsmResult Assembled = assembleProgram(GuestSource);
  if (!Assembled.succeeded()) {
    std::printf("assembly failed:\n%s", Assembled.errorText().c_str());
    return 1;
  }
  const AsmProgram &Program = Assembled.Program;

  // 2. Native run.
  {
    Memory Mem;
    Interpreter Interp(Mem);
    loadProgram(Program, LoadMode::Native, Mem, Interp.state());
    StopInfo Stop = Interp.run(1000000);
    std::printf("native run:      %s, output = %s",
                Stop.Kind == StopKind::Halted ? "halted" : "failed",
                Interp.output().c_str());
  }

  // 3. Translated + instrumented run (RCF, checks in every block).
  {
    DbtConfig Config;
    Config.Tech = Technique::Rcf;
    Memory Mem;
    Interpreter Interp(Mem);
    Dbt Translator(Mem, Config);
    if (!Translator.load(Program, Interp.state()))
      return 1;
    StopInfo Stop = Translator.run(Interp, 1000000);
    std::printf("RCF under DBT:   %s, output = %s",
                Stop.Kind == StopKind::Halted ? "halted" : "failed",
                Interp.output().c_str());
    std::printf("                 %llu blocks translated, %llu cycles\n",
                (unsigned long long)Translator.translationCount(),
                (unsigned long long)Interp.cycleCount());
  }

  // 4. Inject one single-bit branch fault and watch RCF report it.
  {
    DbtConfig Config;
    Config.Tech = Technique::Rcf;
    FaultCampaign Campaign(Program, Config);
    if (!Campaign.prepare(1000000))
      return 1;
    auto Faults = Campaign.plan(64, /*Seed=*/7, SiteClass::OriginalOnly);
    for (const PlannedFault &Fault : Faults) {
      // Pick an error that stays inside translated code (categories
      // A-E; F would be caught by the hardware, not by RCF) and lands
      // on an instruction boundary (offset bits 0-2 produce
      // mid-instruction garbage streams outside the signature model).
      if (Fault.Category == BranchErrorCategory::NoError ||
          Fault.Category == BranchErrorCategory::F ||
          (Fault.Kind == FaultKind::AddrBit && Fault.Bit < 3))
        continue;
      Outcome Result = Campaign.inject(Fault);
      std::printf("injected fault:  category %s bit flip at cache 0x%llx "
                  "-> %s\n",
                  getCategoryName(Fault.Category),
                  (unsigned long long)Fault.SiteAddr,
                  getOutcomeName(Result));
      break;
    }
  }
  return 0;
}
