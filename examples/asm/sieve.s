; sieve.s — sieve of Eratosthenes over [2, 4000), printing the count of
; primes and the largest one found.
;
;   ./build/tools/cfed-run --tech=edgcf --policy=retbe --stats examples/asm/sieve.s
;   ./build/tools/cfed-run --dump-cfg examples/asm/sieve.s | dot -Tpng > sieve.png

.entry main
.data
flags: .space 4000
.code

main:
  ; mark composites
  movi r1, 2            ; p
outer:
  mul r2, r1, r1        ; p*p
  cmpi r2, 4000
  jcc ge, count
  mov r3, r2            ; multiple
inner:
  movi r4, flags
  add r4, r4, r3
  movi r5, 1
  stb [r4], r5
  add r3, r3, r1
  cmpi r3, 4000
  jcc lt, inner
  addi r1, r1, 1
  jmp outer

count:
  movi r1, 2
  movi r6, 0            ; prime count
  movi r7, 0            ; largest prime
cl:
  movi r4, flags
  add r4, r4, r1
  ldb r5, [r4]
  jnzr r5, composite
  addi r6, r6, 1
  mov r7, r1
composite:
  addi r1, r1, 1
  cmpi r1, 4000
  jcc lt, cl
  out r6                ; 550 primes below 4000
  out r7                ; 3989
  halt
