; fib.s — recursive Fibonacci, a call/ret-heavy guest program.
;
;   ./build/tools/cfed-run --tech=rcf --stats examples/asm/fib.s
;   ./build/tools/cfed-run --tech=rcf --inject=50 examples/asm/fib.s
;
; Prints fib(0)..fib(15).

.entry main

; fib(r1) -> r1, recursive.
fib:
  cmpi r1, 2
  jcc lt, base          ; fib(0)=0, fib(1)=1
  push r1
  addi r1, r1, -1
  call fib              ; fib(n-1)
  pop r2                ; n
  push r1               ; save fib(n-1)
  lea r1, r2, -2
  call fib              ; fib(n-2)
  pop r2
  add r1, r1, r2
  ret
base:
  ret

main:
  movi r10, 0
loop:
  mov r1, r10
  call fib
  out r1
  addi r10, r10, 1
  cmpi r10, 16
  jcc lt, loop
  halt
