; dispatch.s — indirect calls through a function-pointer table, the
; pattern that makes whole-program signature assignment (CFCSS/ECCA)
; impossible and that EdgCF/RCF handle for free with
; address-as-signature (Section 5).
;
;   ./build/tools/cfed-run --tech=rcf examples/asm/dispatch.s
;   ./build/tools/cfed-run --tech=cfcss --eager examples/asm/dispatch.s   # refuses

.entry main

op_add:
  add r1, r2, r3
  ret
op_sub:
  sub r1, r2, r3
  ret
op_mul:
  mul r1, r2, r3
  ret
op_max:
  mov r1, r2
  cmp r3, r2
  jcc le, done
  mov r1, r3
done:
  ret

.data
ops: .word op_add, op_sub, op_mul, op_max

.code
main:
  movi r2, 21
  movi r3, 4
  movi r10, 0           ; op index
dloop:
  movi r4, ops
  shli r5, r10, 3
  add r4, r4, r5
  ld r6, [r4]
  callr r6
  out r1
  addi r10, r10, 1
  cmpi r10, 4
  jcc lt, dloop
  halt
