//===- fault_injection_demo.cpp - Comparing techniques under injection ----------===//
//
// Runs identical single-bit fault-injection campaigns against one
// workload under no instrumentation, ECF, EdgCF and RCF, and prints the
// outcome distribution of each — the experiment the paper lists as
// future work, in miniature. Watch the SDC column empty out as the
// techniques turn silent corruptions into reported errors.
//
//===----------------------------------------------------------------------===//

#include "fault/Campaign.h"
#include "support/Table.h"
#include "workloads/RandomProgram.h"

#include <cstdio>

using namespace cfed;

int main() {
  // A small branchy program keeps each injection run fast; campaigns
  // re-execute the program once per fault.
  RandomProgramOptions Options;
  Options.Seed = 2026;
  Options.NumSegments = 10;
  Options.LoopTrip = 20;
  AsmResult Assembled = assembleProgram(generateRandomProgram(Options));
  if (!Assembled.succeeded()) {
    std::printf("%s", Assembled.errorText().c_str());
    return 1;
  }

  std::printf("Injecting 120 single-bit branch faults per technique...\n\n");
  Table T;
  T.setHeader({"Technique", "det-sig", "det-hw", "masked", "SDC",
               "timeout"});
  for (Technique Tech : {Technique::None, Technique::Ecf, Technique::EdgCf,
                         Technique::Rcf}) {
    DbtConfig Config;
    Config.Tech = Tech;
    Config.Flavor = UpdateFlavor::CMovcc;
    FaultCampaign Campaign(Assembled.Program, Config);
    if (!Campaign.prepare(10000000)) {
      std::printf("golden run failed for %s\n", getTechniqueName(Tech));
      return 1;
    }
    CampaignResult Result = Campaign.run(120, 42, SiteClass::Any);
    OutcomeCounts Totals = Result.totals();
    auto Cell = [](uint64_t Value) {
      return std::to_string(Value);
    };
    T.addRow({getTechniqueName(Tech), Cell(Totals.DetectedSig),
              Cell(Totals.DetectedHw), Cell(Totals.Masked),
              Cell(Totals.Sdc), Cell(Totals.Timeout)});
  }
  std::printf("%s\n", T.render().c_str());
  std::printf("det-sig: the technique's check reported the error.\n"
              "det-hw:  memory protection / illegal instruction caught "
              "it (category F etc.).\n"
              "SDC:     the program finished with corrupted output — "
              "what checking eliminates.\n");
  return 0;
}
