//===- Loader.cpp - Program image loader -------------------------------------===//

#include "vm/Loader.h"

#include "support/Diagnostics.h"
#include "support/Format.h"
#include "vm/Layout.h"

using namespace cfed;

void cfed::loadProgram(const AsmProgram &Program, LoadMode Mode, Memory &Mem,
                       CpuState &State) {
  if (Program.Code.size() > CodeMaxSize)
    reportFatalError(formatString("code segment too large: %zu bytes",
                                  Program.Code.size()));

  uint8_t CodePerms = Mode == LoadMode::Native
                          ? static_cast<uint8_t>(PermRX)
                          : static_cast<uint8_t>(PermR);
  uint64_t CodeSize = Program.Code.empty() ? PageSize : Program.Code.size();
  Mem.mapRegion(CodeBase, CodeSize, CodePerms);
  if (!Program.Code.empty())
    Mem.writeRaw(CodeBase, Program.Code.data(), Program.Code.size());

  uint64_t DataSize = Program.Data.size() > DataDefaultSize
                          ? Program.Data.size()
                          : DataDefaultSize;
  Mem.mapRegion(DataBase, DataSize, PermRW);
  if (!Program.Data.empty())
    Mem.writeRaw(DataBase, Program.Data.data(), Program.Data.size());

  Mem.mapRegion(StackTop - StackSize, StackSize, PermRW);

  State = CpuState();
  State.PC = Program.Entry;
  State.Regs[RegSP] = StackTop;
}
