//===- Loader.cpp - Program image loader -------------------------------------===//

#include "vm/Loader.h"

#include "support/Diagnostics.h"
#include "support/Format.h"
#include "vm/Layout.h"

#include <cstring>

using namespace cfed;

namespace {

/// Maximum guest address the data segment may reach: the stack region
/// starts at StackTop - StackSize and must stay disjoint.
constexpr uint64_t DataLimit = StackTop - StackSize;

void mapAndInit(const AsmProgram &Program, LoadMode Mode, Memory &Mem,
                CpuState &State) {
  uint8_t CodePerms = Mode == LoadMode::Native
                          ? static_cast<uint8_t>(PermRX)
                          : static_cast<uint8_t>(PermR);
  uint64_t CodeSize = Program.Code.empty() ? PageSize : Program.Code.size();
  Mem.mapRegion(CodeBase, CodeSize, CodePerms);
  if (!Program.Code.empty())
    Mem.writeRaw(CodeBase, Program.Code.data(), Program.Code.size());

  uint64_t DataSize = Program.Data.size() > DataDefaultSize
                          ? Program.Data.size()
                          : DataDefaultSize;
  Mem.mapRegion(DataBase, DataSize, PermRW);
  if (!Program.Data.empty())
    Mem.writeRaw(DataBase, Program.Data.data(), Program.Data.size());

  Mem.mapRegion(StackTop - StackSize, StackSize, PermRW);

  State = CpuState();
  State.PC = Program.Entry;
  State.Regs[RegSP] = StackTop;
}

void appendLE32(std::vector<uint8_t> &Out, uint32_t Value) {
  for (int Shift = 0; Shift < 32; Shift += 8)
    Out.push_back(static_cast<uint8_t>(Value >> Shift));
}

void appendLE64(std::vector<uint8_t> &Out, uint64_t Value) {
  for (int Shift = 0; Shift < 64; Shift += 8)
    Out.push_back(static_cast<uint8_t>(Value >> Shift));
}

uint32_t readLE32(const uint8_t *P) {
  uint32_t Value = 0;
  for (int Index = 3; Index >= 0; --Index)
    Value = (Value << 8) | P[Index];
  return Value;
}

uint64_t readLE64(const uint8_t *P) {
  uint64_t Value = 0;
  for (int Index = 7; Index >= 0; --Index)
    Value = (Value << 8) | P[Index];
  return Value;
}

struct ParsedSection {
  uint32_t Kind = 0;
  uint64_t LoadAddr = 0;
  uint64_t FileOffset = 0;
  uint64_t Size = 0;
};

} // namespace

bool cfed::validateProgram(const AsmProgram &Program, std::string &Error) {
  if (Program.Code.size() > CodeMaxSize) {
    Error = formatString("code segment too large: %zu bytes (max %llu)",
                         Program.Code.size(),
                         static_cast<unsigned long long>(CodeMaxSize));
    return false;
  }
  if (Program.Code.size() % InsnSize != 0) {
    Error = formatString("code segment size %zu not a multiple of the %llu"
                         "-byte instruction size",
                         Program.Code.size(),
                         static_cast<unsigned long long>(InsnSize));
    return false;
  }
  if (Program.Data.size() > DataLimit - DataBase) {
    Error = formatString("data segment too large: %zu bytes (max %llu)",
                         Program.Data.size(),
                         static_cast<unsigned long long>(DataLimit - DataBase));
    return false;
  }
  uint64_t CodeEnd = CodeBase + Program.Code.size();
  if (!Program.Code.empty() &&
      (Program.Entry < CodeBase || Program.Entry >= CodeEnd ||
       Program.Entry % InsnSize != 0)) {
    Error = formatString("entry point 0x%llx outside code [0x%llx, 0x%llx)",
                         static_cast<unsigned long long>(Program.Entry),
                         static_cast<unsigned long long>(CodeBase),
                         static_cast<unsigned long long>(CodeEnd));
    return false;
  }
  return true;
}

bool cfed::loadProgramChecked(const AsmProgram &Program, LoadMode Mode,
                              Memory &Mem, CpuState &State,
                              std::string &Error) {
  if (!validateProgram(Program, Error))
    return false;
  mapAndInit(Program, Mode, Mem, State);
  return true;
}

void cfed::loadProgram(const AsmProgram &Program, LoadMode Mode, Memory &Mem,
                       CpuState &State) {
  std::string Error;
  if (!loadProgramChecked(Program, Mode, Mem, State, Error))
    reportFatalErrorf("loadProgram: %s", Error.c_str());
}

std::vector<uint8_t> cfed::serializeProgram(const AsmProgram &Program) {
  std::vector<uint8_t> Image;
  uint32_t NumSections =
      1 + (Program.Data.empty() ? 0 : 1); // code always, data if present
  appendLE32(Image, ImageMagic);
  appendLE32(Image, ImageVersion);
  appendLE64(Image, Program.Entry);
  appendLE32(Image, NumSections);
  appendLE32(Image, 0); // reserved

  uint64_t PayloadOffset =
      ImageHeaderSize + NumSections * ImageSectionHeaderSize;
  // Code section header.
  appendLE32(Image, ImageSectionCode);
  appendLE32(Image, 0);
  appendLE64(Image, CodeBase);
  appendLE64(Image, PayloadOffset);
  appendLE64(Image, Program.Code.size());
  PayloadOffset += Program.Code.size();
  if (!Program.Data.empty()) {
    appendLE32(Image, ImageSectionData);
    appendLE32(Image, 0);
    appendLE64(Image, DataBase);
    appendLE64(Image, PayloadOffset);
    appendLE64(Image, Program.Data.size());
  }
  Image.insert(Image.end(), Program.Code.begin(), Program.Code.end());
  Image.insert(Image.end(), Program.Data.begin(), Program.Data.end());
  return Image;
}

bool cfed::loadProgramImage(const uint8_t *Data, size_t Size, LoadMode Mode,
                            Memory &Mem, CpuState &State, std::string &Error) {
  if (Size < ImageHeaderSize) {
    Error = formatString("truncated header: %zu bytes, need %llu", Size,
                         static_cast<unsigned long long>(ImageHeaderSize));
    return false;
  }
  uint32_t Magic = readLE32(Data);
  if (Magic != ImageMagic) {
    Error = formatString("bad magic 0x%08x (expected 0x%08x)", Magic,
                         ImageMagic);
    return false;
  }
  uint32_t Version = readLE32(Data + 4);
  if (Version != ImageVersion) {
    Error = formatString("unsupported image version %u (expected %u)",
                         Version, ImageVersion);
    return false;
  }
  uint64_t Entry = readLE64(Data + 8);
  uint32_t NumSections = readLE32(Data + 16);
  uint64_t TableEnd =
      ImageHeaderSize + static_cast<uint64_t>(NumSections) *
                            ImageSectionHeaderSize;
  if (NumSections > Size || TableEnd > Size) {
    Error = formatString("truncated section table: %u sections need %llu "
                         "bytes, image has %zu",
                         NumSections,
                         static_cast<unsigned long long>(TableEnd), Size);
    return false;
  }

  std::vector<ParsedSection> Sections(NumSections);
  for (uint32_t Index = 0; Index < NumSections; ++Index) {
    const uint8_t *H = Data + ImageHeaderSize + Index * ImageSectionHeaderSize;
    ParsedSection &S = Sections[Index];
    S.Kind = readLE32(H);
    S.LoadAddr = readLE64(H + 8);
    S.FileOffset = readLE64(H + 16);
    S.Size = readLE64(H + 24);
    if (S.Kind != ImageSectionCode && S.Kind != ImageSectionData) {
      Error = formatString("section %u: unknown kind %u", Index, S.Kind);
      return false;
    }
    if (S.FileOffset > Size || S.Size > Size - S.FileOffset) {
      Error = formatString("section %u: payload [0x%llx, +0x%llx) reaches "
                           "past end of %zu-byte image",
                           Index,
                           static_cast<unsigned long long>(S.FileOffset),
                           static_cast<unsigned long long>(S.Size), Size);
      return false;
    }
    uint64_t RegionBase = S.Kind == ImageSectionCode ? CodeBase : DataBase;
    uint64_t RegionEnd =
        S.Kind == ImageSectionCode ? CodeBase + CodeMaxSize : DataLimit;
    if (S.LoadAddr < RegionBase || S.LoadAddr > RegionEnd ||
        S.Size > RegionEnd - S.LoadAddr) {
      Error = formatString("section %u: load range [0x%llx, +0x%llx) outside "
                           "%s region [0x%llx, 0x%llx)",
                           Index,
                           static_cast<unsigned long long>(S.LoadAddr),
                           static_cast<unsigned long long>(S.Size),
                           S.Kind == ImageSectionCode ? "code" : "data",
                           static_cast<unsigned long long>(RegionBase),
                           static_cast<unsigned long long>(RegionEnd));
      return false;
    }
    // Overlap check is page-granular: two sections sharing a page would
    // clobber each other's bytes and permissions.
    for (uint32_t Prev = 0; Prev < Index; ++Prev) {
      const ParsedSection &P = Sections[Prev];
      if (P.Size == 0 || S.Size == 0)
        continue;
      uint64_t PFirst = P.LoadAddr / PageSize;
      uint64_t PLast = (P.LoadAddr + P.Size - 1) / PageSize;
      uint64_t SFirst = S.LoadAddr / PageSize;
      uint64_t SLast = (S.LoadAddr + S.Size - 1) / PageSize;
      if (SFirst <= PLast && PFirst <= SLast) {
        Error = formatString("section %u pages [0x%llx, 0x%llx] overlap "
                             "section %u pages [0x%llx, 0x%llx]",
                             Index,
                             static_cast<unsigned long long>(SFirst),
                             static_cast<unsigned long long>(SLast), Prev,
                             static_cast<unsigned long long>(PFirst),
                             static_cast<unsigned long long>(PLast));
        return false;
      }
    }
  }

  // Reassemble an AsmProgram view so entry validation and region mapping
  // share one code path with loadProgramChecked.
  AsmProgram Program;
  Program.Entry = Entry;
  for (const ParsedSection &S : Sections) {
    auto &Segment = S.Kind == ImageSectionCode ? Program.Code : Program.Data;
    uint64_t RegionBase = S.Kind == ImageSectionCode ? CodeBase : DataBase;
    uint64_t End = S.LoadAddr - RegionBase + S.Size;
    if (Segment.size() < End)
      Segment.resize(End);
    std::memcpy(Segment.data() + (S.LoadAddr - RegionBase),
                Data + S.FileOffset, S.Size);
  }
  return loadProgramChecked(Program, Mode, Mem, State, Error);
}
