//===- Memory.h - Paged guest memory with permissions -----------*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sparse paged guest memory with per-page read/write/execute permissions.
/// The execute bit plays the role of the IA-32 execute-disable bit in the
/// paper: wild control transfers into non-executable pages trap, which is
/// the hardware detector for branch-error category F. The write bit
/// implements the write-protection mechanism the DBT uses to catch
/// self-modifying code (Section 5).
///
//===----------------------------------------------------------------------===//

#ifndef CFED_VM_MEMORY_H
#define CFED_VM_MEMORY_H

#include "vm/Layout.h"

#include <cstdint>
#include <memory>
#include <unordered_map>

namespace cfed {

/// Page permission bits.
enum PagePerms : uint8_t {
  PermNone = 0,
  PermR = 1,
  PermW = 2,
  PermX = 4,
  PermRW = PermR | PermW,
  PermRX = PermR | PermX,
  PermRWX = PermR | PermW | PermX,
};

/// Result of a memory access.
enum class MemResult : uint8_t {
  Ok,
  Unmapped,    ///< No page mapped at the address.
  NoRead,      ///< Page lacks the read permission.
  NoWrite,     ///< Page lacks the write permission.
  NoExec,      ///< Page lacks the execute permission.
};

/// Sparse paged memory. All accesses are byte-granular; multi-byte
/// accesses may straddle pages.
class Memory {
public:
  /// Maps [Base, Base+Size) with \p Perms, zero-filled. Rounds outward to
  /// page boundaries. Remapping an existing page just updates permissions.
  void mapRegion(uint64_t Base, uint64_t Size, uint8_t Perms);

  /// Changes permissions of all pages overlapping [Base, Base+Size).
  /// The pages must already be mapped.
  void setPerms(uint64_t Base, uint64_t Size, uint8_t Perms);

  /// Returns the permissions of the page containing \p Addr, or PermNone
  /// if unmapped.
  uint8_t getPerms(uint64_t Addr) const;

  /// Reads \p Size bytes into \p Out checking the read permission.
  MemResult read(uint64_t Addr, void *Out, uint64_t Size) const;

  /// Writes \p Size bytes from \p In checking the write permission.
  MemResult write(uint64_t Addr, const void *In, uint64_t Size);

  /// Fetches \p Size instruction bytes checking the execute permission.
  MemResult fetch(uint64_t Addr, void *Out, uint64_t Size) const;

  /// Permission-less accessors for the loader, the translator and tests.
  /// The pages must be mapped.
  void writeRaw(uint64_t Addr, const void *In, uint64_t Size);
  void readRaw(uint64_t Addr, void *Out, uint64_t Size) const;

  uint64_t read64(uint64_t Addr, MemResult &Result) const;
  MemResult write64(uint64_t Addr, uint64_t Value);
  uint8_t read8(uint64_t Addr, MemResult &Result) const;
  MemResult write8(uint64_t Addr, uint8_t Value);

  /// Returns true if any page overlapping [Base, Base+Size) is mapped.
  bool isMapped(uint64_t Addr) const;

private:
  struct Page {
    uint8_t Perms = PermNone;
    uint8_t Bytes[PageSize] = {};
  };

  enum class AccessKind { Read, Write, Fetch, Raw };

  Page *lookup(uint64_t PageIndex);
  const Page *lookup(uint64_t PageIndex) const;
  MemResult access(uint64_t Addr, void *Out, const void *In, uint64_t Size,
                   AccessKind Kind) const;

  std::unordered_map<uint64_t, std::unique_ptr<Page>> Pages;
  // Single-entry lookup cache (pages are immovable once allocated).
  mutable uint64_t CachedIndex = ~0ULL;
  mutable Page *CachedPage = nullptr;
};

} // namespace cfed

#endif // CFED_VM_MEMORY_H
