//===- Memory.h - Paged guest memory with permissions -----------*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sparse paged guest memory with per-page read/write/execute permissions.
/// The execute bit plays the role of the IA-32 execute-disable bit in the
/// paper: wild control transfers into non-executable pages trap, which is
/// the hardware detector for branch-error category F. The write bit
/// implements the write-protection mechanism the DBT uses to catch
/// self-modifying code (Section 5).
///
/// Executable pages additionally carry a predecoded-instruction side array
/// (one Instruction record per aligned 8-byte slot, indexed by PC >> 3)
/// so the interpreter's run loop fetches decoded instructions directly
/// instead of re-decoding bytes on every dynamic instruction. Any byte
/// write to a page — guest stores, the DBT installing or chain-patching
/// translations, flush unchaining — drops that page's side array, which
/// preserves self-modifying-code semantics.
///
//===----------------------------------------------------------------------===//

#ifndef CFED_VM_MEMORY_H
#define CFED_VM_MEMORY_H

#include "isa/Isa.h"
#include "vm/Layout.h"

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>

namespace cfed {

/// Observer of first-write-per-epoch page dirtying. The recovery subsystem
/// implements this to capture copy-on-write pre-images for its undo log:
/// onPageDirtied fires once per page per epoch, *before* the new bytes
/// land, with the page's current (pre-write) contents.
class PageWriteObserver {
public:
  virtual ~PageWriteObserver() = default;

  /// \p PageBase is the page-aligned guest address; \p OldBytes points at
  /// the page's PageSize bytes as they are about to be overwritten. The
  /// pointer is only valid for the duration of the call.
  virtual void onPageDirtied(uint64_t PageBase, const uint8_t *OldBytes) = 0;
};

/// Page permission bits.
enum PagePerms : uint8_t {
  PermNone = 0,
  PermR = 1,
  PermW = 2,
  PermX = 4,
  PermRW = PermR | PermW,
  PermRX = PermR | PermX,
  PermRWX = PermR | PermW | PermX,
};

/// Result of a memory access.
enum class MemResult : uint8_t {
  Ok,
  Unmapped,    ///< No page mapped at the address.
  NoRead,      ///< Page lacks the read permission.
  NoWrite,     ///< Page lacks the write permission.
  NoExec,      ///< Page lacks the execute permission.
};

/// Sparse paged memory. All accesses are byte-granular; multi-byte
/// accesses may straddle pages.
class Memory {
public:
  /// Maps [Base, Base+Size) with \p Perms, zero-filled. Rounds outward to
  /// page boundaries. Remapping an existing page just updates permissions.
  void mapRegion(uint64_t Base, uint64_t Size, uint8_t Perms);

  /// Changes permissions of all pages overlapping [Base, Base+Size).
  /// The pages must already be mapped.
  void setPerms(uint64_t Base, uint64_t Size, uint8_t Perms);

  /// Returns the permissions of the page containing \p Addr, or PermNone
  /// if unmapped.
  uint8_t getPerms(uint64_t Addr) const;

  /// Reads \p Size bytes into \p Out checking the read permission.
  MemResult read(uint64_t Addr, void *Out, uint64_t Size) const;

  /// Writes \p Size bytes from \p In checking the write permission.
  MemResult write(uint64_t Addr, const void *In, uint64_t Size);

  /// Fetches \p Size instruction bytes checking the execute permission.
  MemResult fetch(uint64_t Addr, void *Out, uint64_t Size) const;

  /// Fast instruction fetch through the predecode cache. For an aligned
  /// \p Addr on an executable page, returns the predecoded instruction
  /// (decoding the whole page into the side array on first touch).
  /// Returns nullptr with \p Result == Ok when the caller must take the
  /// byte-level slow path: misaligned \p Addr or undecodable bytes (the
  /// slow path then raises the same illegal-instruction trap a raw decode
  /// would). Permission failures are reported through \p Result exactly
  /// like fetch().
  const Instruction *fetchDecoded(uint64_t Addr, MemResult &Result);

  /// Drops predecoded side arrays for all pages overlapping
  /// [Base, Base+Size). Writes invalidate automatically; this is for
  /// callers that change what an address range means without writing it
  /// (e.g. the DBT's flush path, belt and braces).
  void invalidatePredecode(uint64_t Base, uint64_t Size);

  /// Predecode-cache hits: aligned fetches served from a live side array.
  uint64_t predecodeHitCount() const { return PredecodeHits; }
  /// Predecode-cache misses: page decode events plus slow-path fetches
  /// (misaligned or undecodable).
  uint64_t predecodeMissCount() const {
    return PredecodeDecodes + PredecodeSlow;
  }

  /// Installs (or clears, with nullptr) the page-write observer. Only
  /// pages whose base address is below \p LimitAddr are tracked — the
  /// recovery subsystem passes CacheBase so code-cache churn (translation
  /// installs, chain patching) never inflates the undo log. Installing an
  /// observer starts a fresh epoch.
  void setWriteObserver(PageWriteObserver *Observer, uint64_t LimitAddr);

  /// Starts a new write epoch: every tracked page reports its next write
  /// to the observer again. Called after a checkpoint or rollback.
  void resetWriteEpoch();

  /// Permission-less accessors for the loader, the translator and tests.
  /// The pages must be mapped.
  void writeRaw(uint64_t Addr, const void *In, uint64_t Size);
  void readRaw(uint64_t Addr, void *Out, uint64_t Size) const;

  uint64_t read64(uint64_t Addr, MemResult &Result) const;
  MemResult write64(uint64_t Addr, uint64_t Value);
  uint8_t read8(uint64_t Addr, MemResult &Result) const;
  MemResult write8(uint64_t Addr, uint8_t Value);

  /// Returns true if any page overlapping [Base, Base+Size) is mapped.
  bool isMapped(uint64_t Addr) const;

private:
  /// Predecoded view of one executable page: Insns[Slot] caches
  /// Instruction::decode of the 8 bytes at Slot * InsnSize; Illegal marks
  /// slots whose bytes do not decode.
  struct DecodedPage {
    static constexpr uint64_t NumSlots = PageSize / InsnSize;
    Instruction Insns[NumSlots];
    uint64_t Illegal[NumSlots / 64] = {};

    bool isIllegal(uint64_t Slot) const {
      return (Illegal[Slot / 64] >> (Slot % 64)) & 1;
    }
  };

  struct Page {
    uint8_t Perms = PermNone;
    uint8_t Bytes[PageSize] = {};
    std::unique_ptr<DecodedPage> Decoded;
  };

  enum class AccessKind { Read, Write, Fetch, Raw };

  Page *lookup(uint64_t PageIndex);
  const Page *lookup(uint64_t PageIndex) const;
  MemResult access(uint64_t Addr, void *Out, const void *In, uint64_t Size,
                   AccessKind Kind) const;

  std::unordered_map<uint64_t, std::unique_ptr<Page>> Pages;
  // Single-entry lookup cache (pages are immovable once allocated).
  mutable uint64_t CachedIndex = ~0ULL;
  mutable Page *CachedPage = nullptr;
  PageWriteObserver *WriteObserver = nullptr;
  uint64_t WriteObserverLimit = 0;
  // Page indices already reported to the observer this epoch.
  std::unordered_set<uint64_t> EpochDirty;
  uint64_t PredecodeHits = 0;
  uint64_t PredecodeDecodes = 0;
  uint64_t PredecodeSlow = 0;
};

} // namespace cfed

#endif // CFED_VM_MEMORY_H
