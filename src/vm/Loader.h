//===- Loader.h - Program image loader --------------------------*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maps an assembled program into guest memory and prepares the CPU for
/// execution, in two flavours:
///
///  * native: guest code pages are executable (baseline "running the
///    binary directly");
///  * translated: guest code pages are readable but non-executable and
///    non-writable; only the DBT's code cache carries the execute bit.
///    This is the paper's memory-protection setup (Section 5): category-F
///    errors trap, and guest stores into code pages raise the
///    write-protection fault used for self-modifying code.
///
/// Programs can also round-trip through a flat binary image format (a
/// minimal ELF stand-in: header + section table + payload). The image
/// loader validates everything before touching guest memory — truncated
/// headers, out-of-range sections and overlapping pages come back as a
/// descriptive error status, never a mid-parse abort.
///
//===----------------------------------------------------------------------===//

#ifndef CFED_VM_LOADER_H
#define CFED_VM_LOADER_H

#include "asm/Assembler.h"
#include "vm/Interp.h"
#include "vm/Memory.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cfed {

/// How the guest image's code pages are protected.
enum class LoadMode {
  Native,     ///< Code pages R+X (direct execution).
  Translated, ///< Code pages R only (execution happens in the code cache).
};

/// Loads \p Program into \p Mem (code, data, stack regions) and initializes
/// \p State (PC at the entry, SP at the stack top). Pages outside these
/// regions stay unmapped. Aborts on a malformed program; use
/// loadProgramChecked where the caller wants an error status instead.
void loadProgram(const AsmProgram &Program, LoadMode Mode, Memory &Mem,
                 CpuState &State);

/// Checked variant of loadProgram: validates \p Program first and returns
/// false with a descriptive message in \p Error (leaving \p Mem and
/// \p State untouched) instead of aborting.
bool loadProgramChecked(const AsmProgram &Program, LoadMode Mode, Memory &Mem,
                        CpuState &State, std::string &Error);

/// Validates \p Program against the guest address-space layout without
/// loading it: code-segment size cap, instruction alignment, entry point
/// inside the code segment. Returns false with a message in \p Error.
bool validateProgram(const AsmProgram &Program, std::string &Error);

/// Flat binary program image ("CFED image"). Layout, all little-endian:
///
///   ImageHeader   { u32 Magic; u32 Version; u64 Entry; u32 NumSections;
///                   u32 Reserved; }                          (24 bytes)
///   ImageSection  { u32 Kind; u32 Reserved; u64 LoadAddr;
///                   u64 FileOffset; u64 Size; }   (32 bytes, NumSections x)
///   payload bytes referenced by the section table
///
/// Kind 0 = code (loads inside the code region), kind 1 = data (loads
/// inside the data region).
inline constexpr uint32_t ImageMagic = 0x44454643; // "CFED" LE
inline constexpr uint32_t ImageVersion = 1;
inline constexpr uint32_t ImageSectionCode = 0;
inline constexpr uint32_t ImageSectionData = 1;
inline constexpr uint64_t ImageHeaderSize = 24;
inline constexpr uint64_t ImageSectionHeaderSize = 32;

/// Serializes \p Program into a flat image (one code section at CodeBase,
/// one data section at DataBase when non-empty).
std::vector<uint8_t> serializeProgram(const AsmProgram &Program);

/// Parses and loads a flat image. All validation happens before any page
/// is mapped: a false return (with a descriptive \p Error) leaves \p Mem
/// and \p State untouched. Rejects truncated headers and section tables,
/// payloads reaching past the end of the image, sections outside their
/// region, images whose sections overlap in guest pages, and entry points
/// outside the loaded code.
bool loadProgramImage(const uint8_t *Data, size_t Size, LoadMode Mode,
                      Memory &Mem, CpuState &State, std::string &Error);

} // namespace cfed

#endif // CFED_VM_LOADER_H
