//===- Loader.h - Program image loader --------------------------*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maps an assembled program into guest memory and prepares the CPU for
/// execution, in two flavours:
///
///  * native: guest code pages are executable (baseline "running the
///    binary directly");
///  * translated: guest code pages are readable but non-executable and
///    non-writable; only the DBT's code cache carries the execute bit.
///    This is the paper's memory-protection setup (Section 5): category-F
///    errors trap, and guest stores into code pages raise the
///    write-protection fault used for self-modifying code.
///
//===----------------------------------------------------------------------===//

#ifndef CFED_VM_LOADER_H
#define CFED_VM_LOADER_H

#include "asm/Assembler.h"
#include "vm/Interp.h"
#include "vm/Memory.h"

namespace cfed {

/// How the guest image's code pages are protected.
enum class LoadMode {
  Native,     ///< Code pages R+X (direct execution).
  Translated, ///< Code pages R only (execution happens in the code cache).
};

/// Loads \p Program into \p Mem (code, data, stack regions) and initializes
/// \p State (PC at the entry, SP at the stack top). Pages outside these
/// regions stay unmapped.
void loadProgram(const AsmProgram &Program, LoadMode Mode, Memory &Mem,
                 CpuState &State);

} // namespace cfed

#endif // CFED_VM_LOADER_H
