//===- Interp.h - VISA interpreter ------------------------------*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The VISA interpreter: executes encoded instructions from guest memory
/// with cycle accounting, and exposes the three hooks everything else in
/// the repository is built on:
///
///  * FaultHook     — mutates a branch's offset / the flags it observes at
///                    one dynamic instance (the paper's single-bit error
///                    model, Section 2).
///  * BranchObserver— passive profiling of every executed offset branch
///                    (drives the Figure 2/3 analytic error model).
///  * DbtHooks      — services code-cache exits (Tramp/TrampR) and
///                    write-protection faults, turning the interpreter
///                    into the execution engine under the DBT.
///
//===----------------------------------------------------------------------===//

#ifndef CFED_VM_INTERP_H
#define CFED_VM_INTERP_H

#include "isa/Isa.h"
#include "vm/Memory.h"

#include <cstdint>
#include <string>

namespace cfed {

/// Architectural CPU state.
struct CpuState {
  uint64_t Regs[NumIntRegs] = {};
  double FpRegs[NumFpRegs] = {};
  Flags F;
  uint64_t PC = 0;
};

/// Why execution stopped.
enum class StopKind : uint8_t {
  Halted,   ///< The program executed Halt.
  Trapped,  ///< A trap fired (see TrapKind).
  InsnLimit ///< The dynamic instruction budget ran out.
};

/// Trap causes. ExecViolation is the hardware category-F detector (the
/// execute-disable bit); WriteViolation drives self-modifying-code
/// handling; BreakTrap is the instrumentation's .report_error exit.
enum class TrapKind : uint8_t {
  None,
  IllegalInsn,
  ExecViolation,
  ReadViolation,
  WriteViolation,
  DivByZero,
  BreakTrap,
};

/// Returns a human-readable name for \p Kind.
const char *getTrapKindName(TrapKind Kind);

struct CpuState;
struct StopInfo;

namespace telemetry {
class BlockProfile;
class DigestRecorder;
class MetricsRegistry;
} // namespace telemetry

/// Short human-readable phrase for why a run stopped ("halted",
/// "instruction limit reached", "control-flow error reported", or the
/// trap kind name). The single stop-description used by all tools.
const char *describeStop(const StopInfo &Stop);

/// Formats a one-line structured diagnostic for a stopped run: stop/trap
/// kind, guest PC, faulting address, break code, and the live values of
/// the reserved signature registers (pcp/rts/aux/aux2) the checkers key
/// on. \p GuestPC is the guest-level PC the caller attributes the stop to
/// (under the DBT, Stop.PC is a code-cache address; callers translate it
/// back before reporting).
std::string formatTrapDiagnostic(const StopInfo &Stop, const CpuState &State,
                                 uint64_t GuestPC);

/// Break code used by instrumentation-inserted .report_error stubs: a
/// BreakTrap with this code means "control-flow error detected by the
/// signature check".
inline constexpr int32_t BrkControlFlowError = 0xCFE;

/// Break code used by the data-flow checking extension: a value about to
/// leave the processor disagreed with its duplicated computation.
inline constexpr int32_t BrkDataFlowError = 0xDFE;

/// Break code used by the DBT's internal assertion stubs.
inline constexpr int32_t BrkDbtInternal = 0xDB;

/// Break code raised by the self-integrity cross-check: the monitor's own
/// signature state diverged from its shadow copy. Distinguishes checker
/// corruption from a guest control-flow error (which reports 0xCFE).
inline constexpr int32_t BrkMonitorCorruption = 0x5EC;

/// Break code raised by the shadow return stack: a return popped an
/// address that disagrees with the one recorded at the matching call —
/// the adversarial-mode detector for forged returns whose target still
/// carries a valid signature (so 0xCFE cannot fire).
inline constexpr int32_t BrkShadowStackViolation = 0x5AC;

/// Final state of a run() call.
struct StopInfo {
  StopKind Kind = StopKind::Halted;
  TrapKind Trap = TrapKind::None;
  /// Faulting data address for memory traps; PC of the trapping
  /// instruction otherwise.
  uint64_t TrapAddr = 0;
  /// Imm operand of a BreakTrap.
  int32_t BreakCode = 0;
  /// PC at which execution stopped.
  uint64_t PC = 0;
};

/// Mutates one dynamic branch execution: flip offset bits via \p I.Imm or
/// flag bits via \p F before the branch decides its direction and target.
/// Called only for offset branches (Jmp/Jcc/Jzr/Jnzr/Call).
class FaultHook {
public:
  virtual ~FaultHook();
  /// \p State is the architectural state before the branch executes
  /// (read-only: useful to predict register-zero branch directions).
  virtual void apply(uint64_t InsnAddr, Instruction &I, Flags &F,
                     const CpuState &State) = 0;
};

/// Observes (and may perturb) every executed instruction before it runs.
/// Used by the data-flow fault injector to flip register bits at a
/// chosen dynamic instruction — the datapath analogue of FaultHook.
class PreInsnHook {
public:
  virtual ~PreInsnHook();
  virtual void onInsn(uint64_t InsnAddr, const Instruction &I,
                      CpuState &State) = 0;
};

/// Observes every executed offset branch after its direction was decided.
class BranchObserver {
public:
  virtual ~BranchObserver();
  /// \p Taken is true if control left the fall-through path; \p NextPC is
  /// where control actually went.
  virtual void onBranch(uint64_t InsnAddr, const Instruction &I,
                        const Flags &F, bool Taken, uint64_t NextPC) = 0;
};

/// Services DBT-internal opcodes and write faults.
class DbtHooks {
public:
  virtual ~DbtHooks();
  /// A Tramp at \p SiteAddr requested guest target \p GuestTarget. Returns
  /// the cache address to continue at.
  virtual uint64_t onDirectExit(uint64_t SiteAddr, uint64_t GuestTarget) = 0;
  /// A TrampR at \p SiteAddr requested dynamic guest target
  /// \p GuestTarget. Returns the cache address to continue at.
  virtual uint64_t onIndirectExit(uint64_t SiteAddr, uint64_t GuestTarget) = 0;
  /// A store faulted on a write-protected page (self-modifying code).
  /// Returns true if handled; the instruction is then retried.
  virtual bool onWriteViolation(uint64_t DataAddr) = 0;
};

/// Executes VISA code from a Memory image.
class Interpreter {
public:
  explicit Interpreter(Memory &Mem) : Mem(Mem) {}

  CpuState &state() { return State; }
  const CpuState &state() const { return State; }
  Memory &memory() { return Mem; }

  /// Installs / clears the fault-injection hook.
  void setFaultHook(FaultHook *Hook) { Fault = Hook; }
  /// Installs / clears the per-instruction hook.
  void setPreInsnHook(PreInsnHook *Hook) { PreInsn = Hook; }
  /// Currently installed per-instruction hook (so wrappers like the
  /// recovery manager can splice themselves in front and forward).
  PreInsnHook *preInsnHook() const { return PreInsn; }
  /// Installs / clears the branch profiler.
  void setBranchObserver(BranchObserver *Observer) { Profiler = Observer; }
  /// Installs / clears the DBT service hooks.
  void setDbtHooks(DbtHooks *Hooks) { Dbt = Hooks; }
  /// Binds / clears the block-execution profile that Prof instructions
  /// bump. With no profile bound, Prof is a nop.
  void setBlockProfile(telemetry::BlockProfile *Profile) {
    BlockProf = Profile;
  }
  /// Binds / clears the architectural digest recorder (DESIGN.md §14).
  /// In Interp mode the transfer handlers capture directly; in Marker
  /// mode capture is driven by translator-planted Digest instructions,
  /// and Digest acts as a nop when no recorder is bound.
  void setDigestRecorder(telemetry::DigestRecorder *Recorder) {
    DigestRec = Recorder;
  }
  telemetry::DigestRecorder *digestRecorder() const { return DigestRec; }

  /// Runs until Halt, a trap, or \p MaxInsns executed instructions.
  StopInfo run(uint64_t MaxInsns);

  /// Dynamic instruction count so far.
  uint64_t instructionCount() const { return Insns; }
  /// Weighted cycle count so far (the performance-model metric).
  uint64_t cycleCount() const { return Cycles; }

  /// Program output accumulated by Out/OutC instructions.
  const std::string &output() const { return OutputBuffer; }

  /// Resets counters and output, keeping memory and CPU state.
  void resetCounters();

  /// Rewinds progress counters and truncates buffered output back to a
  /// checkpointed position. \p OutputLen must not exceed the current
  /// output length. Used by the recovery subsystem's rollback path; CPU
  /// state and memory are restored separately by the caller.
  void restoreProgress(uint64_t NewInsns, uint64_t NewCycles,
                       size_t OutputLen);

  /// Publishes the per-instruction counters (instructions, cycles, and
  /// the memory predecode-cache hit statistics) into \p Registry as
  /// gauges. The hot dispatch loop keeps plain fields and publishes only
  /// at synchronization points like this one, per the overhead policy in
  /// DESIGN.md §8.
  void publishMetrics(telemetry::MetricsRegistry &Registry) const;

private:
  Memory &Mem;
  CpuState State;
  FaultHook *Fault = nullptr;
  PreInsnHook *PreInsn = nullptr;
  BranchObserver *Profiler = nullptr;
  DbtHooks *Dbt = nullptr;
  telemetry::BlockProfile *BlockProf = nullptr;
  telemetry::DigestRecorder *DigestRec = nullptr;
  uint64_t Insns = 0;
  uint64_t Cycles = 0;
  std::string OutputBuffer;
};

/// FNV-1a hash of \p Data — the silent-data-corruption oracle: a run is an
/// SDC when its output hash differs from the golden run's.
uint64_t hashOutput(const std::string &Data);

} // namespace cfed

#endif // CFED_VM_INTERP_H
