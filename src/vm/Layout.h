//===- Layout.h - Guest address-space layout --------------------*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fixed guest address-space layout shared by the loader, the DBT and
/// the fault-classification code. Keeping the regions disjoint and well
/// known lets the branch-error classifier decide "non-code memory"
/// (category F) by address range, exactly like the execute-disable bit
/// decides it in hardware.
///
//===----------------------------------------------------------------------===//

#ifndef CFED_VM_LAYOUT_H
#define CFED_VM_LAYOUT_H

#include <cstdint>

namespace cfed {

/// Page size of the guest memory system.
inline constexpr uint64_t PageSize = 4096;

/// Base address where program code is loaded.
inline constexpr uint64_t CodeBase = 0x00010000;
/// Maximum size of a loaded program's code segment.
inline constexpr uint64_t CodeMaxSize = 0x00400000;

/// Base address of the data segment.
inline constexpr uint64_t DataBase = 0x01000000;
/// Default size of the data segment.
inline constexpr uint64_t DataDefaultSize = 0x00400000;

/// Stack: grows down from StackTop.
inline constexpr uint64_t StackTop = 0x02000000;
inline constexpr uint64_t StackSize = 0x00100000;

/// Shadow return stack: a bounded ring of return addresses maintained by
/// the ShadowStackChecker. Deliberately placed between the guest-visible
/// regions and the code cache — the guest ABI never hands out addresses
/// here, modeling a monitor-private region the adversary's (guest-level)
/// writes cannot reach. Below CacheBase, so the recovery manager's
/// write observer tracks it and rollback restores ring contents for free.
inline constexpr uint64_t ShadowStackBase = 0x03000000;
/// Ring capacity in return-address slots (8 bytes each).
inline constexpr uint64_t ShadowStackSlots = 8192;
inline constexpr uint64_t ShadowStackBytes = ShadowStackSlots * 8;

/// Returns true if \p Addr lies inside the shadow return-stack ring.
inline bool isShadowStackAddr(uint64_t Addr) {
  return Addr >= ShadowStackBase && Addr < ShadowStackBase + ShadowStackBytes;
}

/// DBT code cache: the only executable region while translated code runs
/// (pages carry the execute permission; everything else is non-executable,
/// which is how category-F errors are caught).
inline constexpr uint64_t CacheBase = 0x04000000;
inline constexpr uint64_t CacheMaxSize = 0x04000000;

/// Returns true if \p Addr lies inside the DBT code cache region.
inline bool isCacheAddr(uint64_t Addr) {
  return Addr >= CacheBase && Addr < CacheBase + CacheMaxSize;
}

} // namespace cfed

#endif // CFED_VM_LAYOUT_H
