//===- Interp.cpp - VISA interpreter -----------------------------------------===//

#include "vm/Interp.h"

#include "support/Diagnostics.h"
#include "support/Format.h"
#include "telemetry/BlockProfile.h"
#include "telemetry/Metrics.h"
#include "telemetry/Provenance.h"

#include <cassert>
#include <cmath>

using namespace cfed;

FaultHook::~FaultHook() = default;
PreInsnHook::~PreInsnHook() = default;
BranchObserver::~BranchObserver() = default;
DbtHooks::~DbtHooks() = default;

const char *cfed::getTrapKindName(TrapKind Kind) {
  switch (Kind) {
  case TrapKind::None:
    return "none";
  case TrapKind::IllegalInsn:
    return "illegal-instruction";
  case TrapKind::ExecViolation:
    return "exec-violation";
  case TrapKind::ReadViolation:
    return "read-violation";
  case TrapKind::WriteViolation:
    return "write-violation";
  case TrapKind::DivByZero:
    return "div-by-zero";
  case TrapKind::BreakTrap:
    return "break";
  }
  cfed_unreachable("covered switch");
}

const char *cfed::describeStop(const StopInfo &Stop) {
  switch (Stop.Kind) {
  case StopKind::Halted:
    return "halted";
  case StopKind::InsnLimit:
    return "instruction limit reached";
  case StopKind::Trapped:
    return Stop.Trap == TrapKind::BreakTrap &&
                   Stop.BreakCode == BrkControlFlowError
               ? "control-flow error reported"
               : getTrapKindName(Stop.Trap);
  }
  return "?";
}

uint64_t cfed::hashOutput(const std::string &Data) {
  uint64_t Hash = 0xcbf29ce484222325ULL;
  for (char Ch : Data) {
    Hash ^= static_cast<uint8_t>(Ch);
    Hash *= 0x100000001b3ULL;
  }
  return Hash;
}

void Interpreter::resetCounters() {
  Insns = 0;
  Cycles = 0;
  OutputBuffer.clear();
}

void Interpreter::restoreProgress(uint64_t NewInsns, uint64_t NewCycles,
                                  size_t OutputLen) {
  assert(OutputLen <= OutputBuffer.size() &&
         "rollback cannot grow the output");
  Insns = NewInsns;
  Cycles = NewCycles;
  OutputBuffer.resize(OutputLen);
}

void Interpreter::publishMetrics(telemetry::MetricsRegistry &Registry) const {
  Registry.gauge("interp.insns").set(static_cast<double>(Insns));
  Registry.gauge("interp.cycles").set(static_cast<double>(Cycles));
  double Hits = static_cast<double>(Mem.predecodeHitCount());
  double Misses = static_cast<double>(Mem.predecodeMissCount());
  Registry.gauge("vm.predecode_hits").set(Hits);
  Registry.gauge("vm.predecode_misses").set(Misses);
  if (Hits + Misses > 0)
    Registry.gauge("vm.predecode_hit_rate").set(Hits / (Hits + Misses));
}

std::string cfed::formatTrapDiagnostic(const StopInfo &Stop,
                                       const CpuState &State,
                                       uint64_t GuestPC) {
  const char *Kind = Stop.Kind == StopKind::Halted      ? "halted"
                     : Stop.Kind == StopKind::InsnLimit ? "insn-limit"
                                                        : "trap";
  std::string Text = formatString(
      "%s: %s guest-pc=0x%llx", Kind, getTrapKindName(Stop.Trap),
      static_cast<unsigned long long>(GuestPC));
  if (Stop.Trap == TrapKind::ReadViolation ||
      Stop.Trap == TrapKind::WriteViolation ||
      Stop.Trap == TrapKind::ExecViolation)
    Text += formatString(" fault-addr=0x%llx",
                         static_cast<unsigned long long>(Stop.TrapAddr));
  if (Stop.Trap == TrapKind::BreakTrap)
    Text += formatString(" break-code=0x%x",
                         static_cast<unsigned>(Stop.BreakCode));
  Text += formatString(
      " sig[pcp=0x%llx rts=0x%llx aux=0x%llx aux2=0x%llx]",
      static_cast<unsigned long long>(State.Regs[RegPCP]),
      static_cast<unsigned long long>(State.Regs[RegRTS]),
      static_cast<unsigned long long>(State.Regs[RegAUX]),
      static_cast<unsigned long long>(State.Regs[RegAUX2]));
  return Text;
}

namespace {

/// Flag computation helpers matching the IA-32 semantics documented in
/// Opcodes.def.
void setFlagsLogic(Flags &F, uint64_t Result) {
  F.ZF = Result == 0;
  F.SF = static_cast<int64_t>(Result) < 0;
  F.CF = false;
  F.OF = false;
}

void setFlagsAdd(Flags &F, uint64_t A, uint64_t B, uint64_t Result) {
  F.ZF = Result == 0;
  F.SF = static_cast<int64_t>(Result) < 0;
  F.CF = Result < A;
  F.OF = ((~(A ^ B) & (A ^ Result)) >> 63) != 0;
}

void setFlagsSub(Flags &F, uint64_t A, uint64_t B, uint64_t Result) {
  F.ZF = Result == 0;
  F.SF = static_cast<int64_t>(Result) < 0;
  F.CF = A < B;
  F.OF = (((A ^ B) & (A ^ Result)) >> 63) != 0;
}

void setFlagsMul(Flags &F, int64_t A, int64_t B, int64_t Result) {
  __int128 Wide = static_cast<__int128>(A) * B;
  bool Overflow = Wide != static_cast<__int128>(Result);
  F.ZF = Result == 0;
  F.SF = Result < 0;
  F.CF = Overflow;
  F.OF = Overflow;
}

int64_t signedDiv(int64_t A, int64_t B) {
  if (A == INT64_MIN && B == -1)
    return INT64_MIN; // Avoid UB; defined as wrapping in VISA.
  return A / B;
}

int64_t signedRem(int64_t A, int64_t B) {
  if (A == INT64_MIN && B == -1)
    return 0;
  return A % B;
}

} // namespace

// Dispatch strategy. On compilers with labels-as-values (GCC/Clang) the run
// loop is direct-threaded: each opcode body ends with an indexed goto through
// a label table built from Opcodes.def, so the hardware branch predictor sees
// one indirect jump per handler instead of a single shared switch dispatch.
// Other compilers (or -DCFED_NO_COMPUTED_GOTO) fall back to the plain switch;
// both expansions share the same handler bodies via OP_CASE/OP_BREAK.
#if (defined(__GNUC__) || defined(__clang__)) && !defined(CFED_NO_COMPUTED_GOTO)
#define CFED_COMPUTED_GOTO 1
#else
#define CFED_COMPUTED_GOTO 0
#endif

#if CFED_COMPUTED_GOTO
#define OP_CASE(NAME) lbl_##NAME
#else
#define OP_CASE(NAME) case Opcode::NAME
#endif
// Both modes leave the handler body by jumping to the loop tail; the switch
// fallback simply has no fall-out path.
#define OP_BREAK goto next_insn

StopInfo Interpreter::run(uint64_t MaxInsns) {
  StopInfo Stop;
  uint64_t Budget = MaxInsns;

  // Digest capture (DESIGN.md §14). DRec drives the mode-independent
  // store/output summaries and the Digest markers; DXfer is non-null
  // only in Interp mode, where the transfer handlers capture directly.
  telemetry::DigestRecorder *const DRec = DigestRec;
  telemetry::DigestRecorder *const DXfer =
      DRec && DRec->interpMode() ? DRec : nullptr;
  // Every FP-register write marks the FP file live for digest capture;
  // see DigestRecorder::noteFpWrite.
  auto NoteFpWrite = [DRec] {
    if (DRec)
      DRec->noteFpWrite();
  };

  auto MakeTrap = [&](TrapKind Kind, uint64_t TrapAddr,
                      int32_t BreakCode = 0) {
    Stop.Kind = StopKind::Trapped;
    Stop.Trap = Kind;
    Stop.TrapAddr = TrapAddr;
    Stop.BreakCode = BreakCode;
    Stop.PC = State.PC;
    return Stop;
  };

  while (Budget-- > 0) {
    uint64_t PC = State.PC;
    // Fast path: the predecode cache hands back a decoded record for
    // aligned PCs on executable pages without touching the bytes.
    MemResult Fetch = MemResult::Ok;
    const Instruction *Pre = Mem.fetchDecoded(PC, Fetch);
    if (Fetch != MemResult::Ok)
      return MakeTrap(TrapKind::ExecViolation, PC);
    Instruction I;
    if (Pre) {
      I = *Pre;
    } else {
      // Slow path: misaligned PC (may straddle pages) or bytes that do
      // not decode. Reproduces the exact trap semantics of a raw fetch.
      uint8_t Raw[InsnSize];
      Fetch = Mem.fetch(PC, Raw, InsnSize);
      if (Fetch != MemResult::Ok)
        return MakeTrap(TrapKind::ExecViolation, PC);
      auto Decoded = Instruction::decode(Raw);
      if (!Decoded)
        return MakeTrap(TrapKind::IllegalInsn, PC);
      I = *Decoded;
    }

    ++Insns;
    Cycles += getOpcodeCost(I.Op);

    // Digest markers are invisible to hooks: register-fault injectors
    // count executed instructions to pick their injection instant, and
    // that instant must not shift when digest capture is enabled.
    if (PreInsn && I.Op != Opcode::Digest)
      PreInsn->onInsn(PC, I, State);

    uint64_t *Regs = State.Regs;
    double *Fp = State.FpRegs;
    Flags &F = State.F;
    uint64_t NextPC = PC + InsnSize;

    // Fault injection observes the branch at the moment it executes: the
    // hook may flip offset bits (I.Imm) or the flag bits this branch sees
    // (BranchFlags). The architectural FLAGS register is not modified —
    // the model is a transient upset at the branch (Section 2).
    Flags BranchFlags = F;
    if (Fault && hasBranchOffset(I.Op))
      Fault->apply(PC, I, BranchFlags, State);

#if CFED_COMPUTED_GOTO
    // One entry per opcode, in Opcodes.def order — identical to the
    // Opcode enumerator values. Decode has already validated the opcode
    // byte, so the indexed goto cannot escape the table.
    static const void *const OpLabels[] = {
#define HANDLE_OPCODE(ENUM, MNEMONIC, SPEC, COST, WRITES_FLAGS, KIND)          \
  &&lbl_##ENUM,
#include "isa/Opcodes.def"
    };
    goto *OpLabels[static_cast<size_t>(I.Op)];
#else
    switch (I.Op) {
#endif
    OP_CASE(Nop):
      OP_BREAK;
    OP_CASE(Halt):
      if (DXfer)
        DXfer->onTransfer(Insns - 1, PC, Regs, Fp, F.pack());
      Stop.Kind = StopKind::Halted;
      Stop.PC = PC;
      return Stop;
    OP_CASE(Brk):
      if (DXfer)
        DXfer->onTransfer(Insns - 1, PC, Regs, Fp, F.pack());
      return MakeTrap(TrapKind::BreakTrap, PC, I.Imm);
    OP_CASE(Out): {
      // Decimal append without the printf round-trip: Out sits inside the
      // run loop of every workload.
      char Buf[24]; // "-9223372036854775808\n" is 21 chars.
      char *End = Buf + sizeof(Buf);
      char *P = End;
      *--P = '\n';
      int64_t V = static_cast<int64_t>(Regs[I.A]);
      uint64_t U = V < 0 ? 0 - static_cast<uint64_t>(V)
                         : static_cast<uint64_t>(V);
      do {
        *--P = static_cast<char>('0' + U % 10);
        U /= 10;
      } while (U != 0);
      if (V < 0)
        *--P = '-';
      OutputBuffer.append(P, static_cast<size_t>(End - P));
      if (DRec)
        DRec->noteOutput(P, static_cast<size_t>(End - P));
      OP_BREAK;
    }
    OP_CASE(OutC): {
      char C = static_cast<char>(Regs[I.A] & 0xff);
      OutputBuffer += C;
      if (DRec)
        DRec->noteOutput(&C, 1);
      OP_BREAK;
    }

    OP_CASE(Add): {
      uint64_t A = Regs[I.B], B = Regs[I.C], R = A + B;
      Regs[I.A] = R;
      setFlagsAdd(F, A, B, R);
      OP_BREAK;
    }
    OP_CASE(Sub): {
      uint64_t A = Regs[I.B], B = Regs[I.C], R = A - B;
      Regs[I.A] = R;
      setFlagsSub(F, A, B, R);
      OP_BREAK;
    }
    OP_CASE(And):
      Regs[I.A] = Regs[I.B] & Regs[I.C];
      setFlagsLogic(F, Regs[I.A]);
      OP_BREAK;
    OP_CASE(Or):
      Regs[I.A] = Regs[I.B] | Regs[I.C];
      setFlagsLogic(F, Regs[I.A]);
      OP_BREAK;
    OP_CASE(Xor):
      Regs[I.A] = Regs[I.B] ^ Regs[I.C];
      setFlagsLogic(F, Regs[I.A]);
      OP_BREAK;
    OP_CASE(Shl):
      Regs[I.A] = Regs[I.B] << (Regs[I.C] & 63);
      setFlagsLogic(F, Regs[I.A]);
      OP_BREAK;
    OP_CASE(Shr):
      Regs[I.A] = Regs[I.B] >> (Regs[I.C] & 63);
      setFlagsLogic(F, Regs[I.A]);
      OP_BREAK;
    OP_CASE(Sar):
      Regs[I.A] = static_cast<uint64_t>(static_cast<int64_t>(Regs[I.B]) >>
                                        (Regs[I.C] & 63));
      setFlagsLogic(F, Regs[I.A]);
      OP_BREAK;
    OP_CASE(Mul): {
      int64_t A = static_cast<int64_t>(Regs[I.B]);
      int64_t B = static_cast<int64_t>(Regs[I.C]);
      int64_t R = static_cast<int64_t>(static_cast<uint64_t>(A) *
                                       static_cast<uint64_t>(B));
      Regs[I.A] = static_cast<uint64_t>(R);
      setFlagsMul(F, A, B, R);
      OP_BREAK;
    }
    OP_CASE(Div): {
      int64_t B = static_cast<int64_t>(Regs[I.C]);
      if (B == 0)
        return MakeTrap(TrapKind::DivByZero, PC);
      Regs[I.A] = static_cast<uint64_t>(
          signedDiv(static_cast<int64_t>(Regs[I.B]), B));
      OP_BREAK;
    }
    OP_CASE(Rem): {
      int64_t B = static_cast<int64_t>(Regs[I.C]);
      if (B == 0)
        return MakeTrap(TrapKind::DivByZero, PC);
      Regs[I.A] = static_cast<uint64_t>(
          signedRem(static_cast<int64_t>(Regs[I.B]), B));
      OP_BREAK;
    }

    OP_CASE(AddI): {
      uint64_t A = Regs[I.B];
      uint64_t B = static_cast<uint64_t>(static_cast<int64_t>(I.Imm));
      uint64_t R = A + B;
      Regs[I.A] = R;
      setFlagsAdd(F, A, B, R);
      OP_BREAK;
    }
    OP_CASE(AndI):
      Regs[I.A] = Regs[I.B] & static_cast<uint64_t>(static_cast<int64_t>(I.Imm));
      setFlagsLogic(F, Regs[I.A]);
      OP_BREAK;
    OP_CASE(OrI):
      Regs[I.A] = Regs[I.B] | static_cast<uint64_t>(static_cast<int64_t>(I.Imm));
      setFlagsLogic(F, Regs[I.A]);
      OP_BREAK;
    OP_CASE(XorI):
      Regs[I.A] = Regs[I.B] ^ static_cast<uint64_t>(static_cast<int64_t>(I.Imm));
      setFlagsLogic(F, Regs[I.A]);
      OP_BREAK;
    OP_CASE(ShlI):
      Regs[I.A] = Regs[I.B] << (I.Imm & 63);
      setFlagsLogic(F, Regs[I.A]);
      OP_BREAK;
    OP_CASE(ShrI):
      Regs[I.A] = Regs[I.B] >> (I.Imm & 63);
      setFlagsLogic(F, Regs[I.A]);
      OP_BREAK;
    OP_CASE(SarI):
      Regs[I.A] = static_cast<uint64_t>(static_cast<int64_t>(Regs[I.B]) >>
                                        (I.Imm & 63));
      setFlagsLogic(F, Regs[I.A]);
      OP_BREAK;
    OP_CASE(MulI): {
      int64_t A = static_cast<int64_t>(Regs[I.B]);
      int64_t B = I.Imm;
      int64_t R = static_cast<int64_t>(static_cast<uint64_t>(A) *
                                       static_cast<uint64_t>(B));
      Regs[I.A] = static_cast<uint64_t>(R);
      setFlagsMul(F, A, B, R);
      OP_BREAK;
    }

    OP_CASE(Lea):
      Regs[I.A] = Regs[I.B] + static_cast<uint64_t>(static_cast<int64_t>(I.Imm));
      OP_BREAK;
    OP_CASE(LeaR):
      Regs[I.A] = Regs[I.B] + Regs[I.C];
      OP_BREAK;
    OP_CASE(Mov):
      Regs[I.A] = Regs[I.B];
      OP_BREAK;
    OP_CASE(MovI):
      Regs[I.A] = static_cast<uint64_t>(static_cast<int64_t>(I.Imm));
      OP_BREAK;
    OP_CASE(MovHi):
      Regs[I.A] = (Regs[I.A] & 0xffffffffULL) |
                  (static_cast<uint64_t>(static_cast<uint32_t>(I.Imm)) << 32);
      OP_BREAK;
    OP_CASE(Neg): {
      uint64_t B = Regs[I.B], R = 0 - B;
      Regs[I.A] = R;
      setFlagsSub(F, 0, B, R);
      OP_BREAK;
    }
    OP_CASE(Not):
      Regs[I.A] = ~Regs[I.B];
      OP_BREAK;

    OP_CASE(Cmp): {
      uint64_t A = Regs[I.A], B = Regs[I.B];
      setFlagsSub(F, A, B, A - B);
      OP_BREAK;
    }
    OP_CASE(CmpI): {
      uint64_t A = Regs[I.A];
      uint64_t B = static_cast<uint64_t>(static_cast<int64_t>(I.Imm));
      setFlagsSub(F, A, B, A - B);
      OP_BREAK;
    }
    OP_CASE(Test):
      setFlagsLogic(F, Regs[I.A] & Regs[I.B]);
      OP_BREAK;
    OP_CASE(SetCC):
      Regs[I.A] = evalCondCode(I.cond(), F) ? 1 : 0;
      OP_BREAK;
    OP_CASE(CMov):
      if (evalCondCode(I.cond(), F))
        Regs[I.A] = Regs[I.B];
      OP_BREAK;

    OP_CASE(Ld): {
      MemResult R = MemResult::Ok;
      uint64_t Addr = Regs[I.B] + static_cast<int64_t>(I.Imm);
      uint64_t Value = Mem.read64(Addr, R);
      if (R != MemResult::Ok)
        return MakeTrap(TrapKind::ReadViolation, Addr);
      Regs[I.A] = Value;
      OP_BREAK;
    }
    OP_CASE(St): {
      uint64_t Addr = Regs[I.A] + static_cast<int64_t>(I.Imm);
      MemResult R = Mem.write64(Addr, Regs[I.B]);
      if (R == MemResult::NoWrite && Dbt && Dbt->onWriteViolation(Addr)) {
        State.PC = PC; // Retry the store after the DBT handled the fault.
        continue;
      }
      if (R != MemResult::Ok)
        return MakeTrap(TrapKind::WriteViolation, Addr);
      // Note the store only after it succeeded: the SMC retry path above
      // re-executes the instruction and must not double-count it.
      if (DRec)
        DRec->noteStore(Addr, Regs[I.B]);
      OP_BREAK;
    }
    OP_CASE(LdB): {
      MemResult R = MemResult::Ok;
      uint64_t Addr = Regs[I.B] + static_cast<int64_t>(I.Imm);
      uint8_t Value = Mem.read8(Addr, R);
      if (R != MemResult::Ok)
        return MakeTrap(TrapKind::ReadViolation, Addr);
      Regs[I.A] = Value;
      OP_BREAK;
    }
    OP_CASE(StB): {
      uint64_t Addr = Regs[I.A] + static_cast<int64_t>(I.Imm);
      MemResult R = Mem.write8(Addr, static_cast<uint8_t>(Regs[I.B]));
      if (R == MemResult::NoWrite && Dbt && Dbt->onWriteViolation(Addr)) {
        State.PC = PC;
        continue;
      }
      if (R != MemResult::Ok)
        return MakeTrap(TrapKind::WriteViolation, Addr);
      if (DRec)
        DRec->noteStore(Addr, Regs[I.B] & 0xff);
      OP_BREAK;
    }
    OP_CASE(Push): {
      Regs[RegSP] -= 8;
      MemResult R = Mem.write64(Regs[RegSP], Regs[I.A]);
      if (R != MemResult::Ok)
        return MakeTrap(TrapKind::WriteViolation, Regs[RegSP]);
      if (DRec)
        DRec->noteStore(Regs[RegSP], Regs[I.A]);
      OP_BREAK;
    }
    OP_CASE(Pop): {
      MemResult R = MemResult::Ok;
      uint64_t Value = Mem.read64(Regs[RegSP], R);
      if (R != MemResult::Ok)
        return MakeTrap(TrapKind::ReadViolation, Regs[RegSP]);
      Regs[I.A] = Value;
      Regs[RegSP] += 8;
      OP_BREAK;
    }

    OP_CASE(Jmp):
      if (DXfer)
        DXfer->onTransfer(Insns - 1, PC, Regs, Fp, F.pack());
      NextPC = I.branchTarget(PC);
      if (Profiler)
        Profiler->onBranch(PC, I, BranchFlags, true, NextPC);
      OP_BREAK;
    OP_CASE(Jcc): {
      // Digest capture sees the architectural flags, not the branch's
      // possibly fault-perturbed view: the error model is a transient
      // upset at the branch, not a FLAGS corruption.
      if (DXfer)
        DXfer->onTransfer(Insns - 1, PC, Regs, Fp, F.pack());
      bool Taken = evalCondCode(I.cond(), BranchFlags);
      if (Taken)
        NextPC = I.branchTarget(PC);
      if (Profiler)
        Profiler->onBranch(PC, I, BranchFlags, Taken, NextPC);
      OP_BREAK;
    }
    OP_CASE(Jzr): {
      if (DXfer)
        DXfer->onTransfer(Insns - 1, PC, Regs, Fp, F.pack());
      bool Taken = Regs[I.A] == 0;
      if (Taken)
        NextPC = I.branchTarget(PC);
      if (Profiler)
        Profiler->onBranch(PC, I, BranchFlags, Taken, NextPC);
      OP_BREAK;
    }
    OP_CASE(Jnzr): {
      if (DXfer)
        DXfer->onTransfer(Insns - 1, PC, Regs, Fp, F.pack());
      bool Taken = Regs[I.A] != 0;
      if (Taken)
        NextPC = I.branchTarget(PC);
      if (Profiler)
        Profiler->onBranch(PC, I, BranchFlags, Taken, NextPC);
      OP_BREAK;
    }
    OP_CASE(Call): {
      // Capture precedes the return-address push, matching the DBT's
      // marker placement (before the translator's MovI/Push lowering).
      if (DXfer)
        DXfer->onTransfer(Insns - 1, PC, Regs, Fp, F.pack());
      Regs[RegSP] -= 8;
      MemResult R = Mem.write64(Regs[RegSP], PC + InsnSize);
      if (R != MemResult::Ok)
        return MakeTrap(TrapKind::WriteViolation, Regs[RegSP]);
      if (DRec)
        DRec->noteStore(Regs[RegSP], PC + InsnSize);
      NextPC = I.branchTarget(PC);
      if (Profiler)
        Profiler->onBranch(PC, I, BranchFlags, true, NextPC);
      OP_BREAK;
    }
    OP_CASE(CallR): {
      if (DXfer)
        DXfer->onTransfer(Insns - 1, PC, Regs, Fp, F.pack());
      Regs[RegSP] -= 8;
      MemResult R = Mem.write64(Regs[RegSP], PC + InsnSize);
      if (R != MemResult::Ok)
        return MakeTrap(TrapKind::WriteViolation, Regs[RegSP]);
      if (DRec)
        DRec->noteStore(Regs[RegSP], PC + InsnSize);
      NextPC = Regs[I.A];
      OP_BREAK;
    }
    OP_CASE(JmpR):
      if (DXfer)
        DXfer->onTransfer(Insns - 1, PC, Regs, Fp, F.pack());
      NextPC = Regs[I.A];
      OP_BREAK;
    OP_CASE(Ret): {
      if (DXfer)
        DXfer->onTransfer(Insns - 1, PC, Regs, Fp, F.pack());
      MemResult R = MemResult::Ok;
      uint64_t Target = Mem.read64(Regs[RegSP], R);
      if (R != MemResult::Ok)
        return MakeTrap(TrapKind::ReadViolation, Regs[RegSP]);
      Regs[RegSP] += 8;
      NextPC = Target;
      OP_BREAK;
    }

    OP_CASE(FAdd):
      Fp[I.A] = Fp[I.B] + Fp[I.C];
      NoteFpWrite();
      OP_BREAK;
    OP_CASE(FSub):
      Fp[I.A] = Fp[I.B] - Fp[I.C];
      NoteFpWrite();
      OP_BREAK;
    OP_CASE(FMul):
      Fp[I.A] = Fp[I.B] * Fp[I.C];
      NoteFpWrite();
      OP_BREAK;
    OP_CASE(FDiv):
      Fp[I.A] = Fp[I.B] / Fp[I.C];
      NoteFpWrite();
      OP_BREAK;
    OP_CASE(FMA):
      Fp[I.A] = Fp[I.A] + Fp[I.B] * Fp[I.C];
      NoteFpWrite();
      OP_BREAK;
    OP_CASE(FSqrt):
      Fp[I.A] = std::sqrt(Fp[I.B]);
      NoteFpWrite();
      OP_BREAK;
    OP_CASE(FAbs):
      Fp[I.A] = std::fabs(Fp[I.B]);
      NoteFpWrite();
      OP_BREAK;
    OP_CASE(FNeg):
      Fp[I.A] = -Fp[I.B];
      NoteFpWrite();
      OP_BREAK;
    OP_CASE(FMov):
      Fp[I.A] = Fp[I.B];
      NoteFpWrite();
      OP_BREAK;
    OP_CASE(FMovI):
      Fp[I.A] = static_cast<double>(I.Imm);
      NoteFpWrite();
      OP_BREAK;
    OP_CASE(FCmp): {
      double A = Fp[I.A], B = Fp[I.B];
      F.ZF = A == B;
      F.SF = A < B;
      F.CF = A < B;
      F.OF = false;
      OP_BREAK;
    }
    OP_CASE(FLd): {
      MemResult R = MemResult::Ok;
      uint64_t Addr = Regs[I.B] + static_cast<int64_t>(I.Imm);
      uint64_t Bits = Mem.read64(Addr, R);
      if (R != MemResult::Ok)
        return MakeTrap(TrapKind::ReadViolation, Addr);
      double Value;
      static_assert(sizeof(Value) == sizeof(Bits));
      __builtin_memcpy(&Value, &Bits, sizeof(Value));
      Fp[I.A] = Value;
      NoteFpWrite();
      OP_BREAK;
    }
    OP_CASE(FSt): {
      uint64_t Addr = Regs[I.A] + static_cast<int64_t>(I.Imm);
      uint64_t Bits;
      __builtin_memcpy(&Bits, &Fp[I.B], sizeof(Bits));
      MemResult R = Mem.write64(Addr, Bits);
      if (R == MemResult::NoWrite && Dbt && Dbt->onWriteViolation(Addr)) {
        State.PC = PC;
        continue;
      }
      if (R != MemResult::Ok)
        return MakeTrap(TrapKind::WriteViolation, Addr);
      if (DRec)
        DRec->noteStore(Addr, Bits);
      OP_BREAK;
    }
    OP_CASE(IToF):
      Fp[I.A] = static_cast<double>(static_cast<int64_t>(Regs[I.B]));
      NoteFpWrite();
      OP_BREAK;
    OP_CASE(FToI): {
      double Value = Fp[I.B];
      int64_t Result;
      if (!(Value > -9.2233720368547758e18 && Value < 9.2233720368547758e18))
        Result = Value > 0 ? INT64_MAX : INT64_MIN;
      else
        Result = static_cast<int64_t>(Value);
      Regs[I.A] = static_cast<uint64_t>(Result);
      OP_BREAK;
    }

    OP_CASE(Tramp): {
      if (!Dbt)
        return MakeTrap(TrapKind::IllegalInsn, PC);
      NextPC = Dbt->onDirectExit(PC, static_cast<uint64_t>(
                                         static_cast<int64_t>(I.Imm)));
      OP_BREAK;
    }
    OP_CASE(TrampR): {
      if (!Dbt)
        return MakeTrap(TrapKind::IllegalInsn, PC);
      NextPC = Dbt->onIndirectExit(PC, Regs[I.A]);
      OP_BREAK;
    }
    OP_CASE(Prof): {
      // Attribution bump; acts as a nop when no profile is attached.
      if (BlockProf)
        BlockProf->bump(static_cast<uint32_t>(I.Imm));
      OP_BREAK;
    }
    OP_CASE(Digest): {
      // Sub-block digest capture; acts as a nop with no recorder bound.
      // The marker is transparent to the execution model: it consumes
      // no instruction budget and retires no instruction (its opcode
      // cost is 0 and pre-insn hooks skip it at the call site), so a
      // run with digests enabled truncates, injects faults and counts
      // latencies at exactly the same guest instants as one without.
      ++Budget;
      --Insns;
      if (DRec)
        DRec->onMarker(static_cast<uint32_t>(I.Imm), Regs, Fp, F.pack());
      OP_BREAK;
    }
#if !CFED_COMPUTED_GOTO
    }
#endif

  next_insn:
    State.PC = NextPC;
  }

  Stop.Kind = StopKind::InsnLimit;
  Stop.PC = State.PC;
  return Stop;
}

#undef OP_CASE
#undef OP_BREAK
