//===- Memory.cpp - Paged guest memory with permissions --------------------===//

#include "vm/Memory.h"

#include "support/Diagnostics.h"
#include "support/Format.h"

#include <cassert>
#include <cstring>

using namespace cfed;

Memory::Page *Memory::lookup(uint64_t PageIndex) {
  if (PageIndex == CachedIndex)
    return CachedPage;
  auto It = Pages.find(PageIndex);
  Page *P = It == Pages.end() ? nullptr : It->second.get();
  CachedIndex = PageIndex;
  CachedPage = P;
  return P;
}

const Memory::Page *Memory::lookup(uint64_t PageIndex) const {
  return const_cast<Memory *>(this)->lookup(PageIndex);
}

void Memory::mapRegion(uint64_t Base, uint64_t Size, uint8_t Perms) {
  uint64_t First = Base / PageSize;
  uint64_t Last = (Base + Size + PageSize - 1) / PageSize;
  for (uint64_t Index = First; Index < Last; ++Index) {
    auto &Slot = Pages[Index];
    if (!Slot)
      Slot = std::make_unique<Page>();
    Slot->Perms = Perms;
  }
  CachedIndex = ~0ULL;
  CachedPage = nullptr;
}

void Memory::setPerms(uint64_t Base, uint64_t Size, uint8_t Perms) {
  uint64_t First = Base / PageSize;
  uint64_t Last = (Base + Size + PageSize - 1) / PageSize;
  for (uint64_t Index = First; Index < Last; ++Index) {
    Page *P = lookup(Index);
    if (!P)
      reportFatalErrorf("setPerms on unmapped page 0x%llx",
                        static_cast<unsigned long long>(Index * PageSize));
    P->Perms = Perms;
  }
}

uint8_t Memory::getPerms(uint64_t Addr) const {
  const Page *P = lookup(Addr / PageSize);
  return P ? P->Perms : static_cast<uint8_t>(PermNone);
}

bool Memory::isMapped(uint64_t Addr) const {
  return lookup(Addr / PageSize) != nullptr;
}

MemResult Memory::access(uint64_t Addr, void *Out, const void *In,
                         uint64_t Size, AccessKind Kind) const {
  auto *Self = const_cast<Memory *>(this);
  uint64_t Done = 0;
  while (Done < Size) {
    uint64_t Current = Addr + Done;
    uint64_t PageIndex = Current / PageSize;
    uint64_t PageOffset = Current % PageSize;
    Page *P = Self->lookup(PageIndex);
    if (!P)
      return MemResult::Unmapped;
    switch (Kind) {
    case AccessKind::Read:
      if (!(P->Perms & PermR))
        return MemResult::NoRead;
      break;
    case AccessKind::Write:
      if (!(P->Perms & PermW))
        return MemResult::NoWrite;
      break;
    case AccessKind::Fetch:
      if (!(P->Perms & PermX))
        return MemResult::NoExec;
      break;
    case AccessKind::Raw:
      break;
    }
    uint64_t Chunk = std::min(Size - Done, PageSize - PageOffset);
    if (In) {
      uint64_t PageBase = PageIndex * PageSize;
      if (Self->WriteObserver && PageBase < Self->WriteObserverLimit &&
          Self->EpochDirty.insert(PageIndex).second)
        Self->WriteObserver->onPageDirtied(PageBase, P->Bytes);
      std::memcpy(P->Bytes + PageOffset,
                  static_cast<const uint8_t *>(In) + Done, Chunk);
      // Keep the predecode side array coherent with the bytes; writes to
      // non-executable pages reset a null pointer, which is free.
      P->Decoded.reset();
    } else
      std::memcpy(static_cast<uint8_t *>(Out) + Done, P->Bytes + PageOffset,
                  Chunk);
    Done += Chunk;
  }
  return MemResult::Ok;
}

MemResult Memory::read(uint64_t Addr, void *Out, uint64_t Size) const {
  return access(Addr, Out, nullptr, Size, AccessKind::Read);
}

MemResult Memory::write(uint64_t Addr, const void *In, uint64_t Size) {
  return access(Addr, nullptr, In, Size, AccessKind::Write);
}

MemResult Memory::fetch(uint64_t Addr, void *Out, uint64_t Size) const {
  return access(Addr, Out, nullptr, Size, AccessKind::Fetch);
}

const Instruction *Memory::fetchDecoded(uint64_t Addr, MemResult &Result) {
  if (Addr % InsnSize != 0) {
    // Misaligned PCs (wild landings) straddle slots and possibly pages:
    // byte-level slow path.
    ++PredecodeSlow;
    Result = MemResult::Ok;
    return nullptr;
  }
  Page *P = lookup(Addr / PageSize);
  if (!P) {
    Result = MemResult::Unmapped;
    return nullptr;
  }
  if (!(P->Perms & PermX)) {
    Result = MemResult::NoExec;
    return nullptr;
  }
  if (!P->Decoded) {
    ++PredecodeDecodes;
    auto Decoded = std::make_unique<DecodedPage>();
    for (uint64_t Slot = 0; Slot < DecodedPage::NumSlots; ++Slot) {
      auto I = Instruction::decode(P->Bytes + Slot * InsnSize);
      if (I)
        Decoded->Insns[Slot] = *I;
      else
        Decoded->Illegal[Slot / 64] |= 1ULL << (Slot % 64);
    }
    P->Decoded = std::move(Decoded);
  }
  Result = MemResult::Ok;
  uint64_t Slot = (Addr % PageSize) / InsnSize;
  if (P->Decoded->isIllegal(Slot)) {
    ++PredecodeSlow;
    return nullptr; // Slow path re-decodes and traps IllegalInsn.
  }
  ++PredecodeHits;
  return &P->Decoded->Insns[Slot];
}

void Memory::invalidatePredecode(uint64_t Base, uint64_t Size) {
  uint64_t First = Base / PageSize;
  uint64_t Last = (Base + Size + PageSize - 1) / PageSize;
  for (uint64_t Index = First; Index < Last; ++Index)
    if (Page *P = lookup(Index))
      P->Decoded.reset();
}

void Memory::setWriteObserver(PageWriteObserver *Observer,
                              uint64_t LimitAddr) {
  WriteObserver = Observer;
  WriteObserverLimit = Observer ? LimitAddr : 0;
  EpochDirty.clear();
}

void Memory::resetWriteEpoch() { EpochDirty.clear(); }

void Memory::writeRaw(uint64_t Addr, const void *In, uint64_t Size) {
  MemResult Result = access(Addr, nullptr, In, Size, AccessKind::Raw);
  if (Result != MemResult::Ok)
    reportFatalErrorf("writeRaw to unmapped address 0x%llx",
                      static_cast<unsigned long long>(Addr));
}

void Memory::readRaw(uint64_t Addr, void *Out, uint64_t Size) const {
  MemResult Result = access(Addr, Out, nullptr, Size, AccessKind::Raw);
  if (Result != MemResult::Ok)
    reportFatalErrorf("readRaw from unmapped address 0x%llx",
                      static_cast<unsigned long long>(Addr));
}

uint64_t Memory::read64(uint64_t Addr, MemResult &Result) const {
  uint64_t Value = 0;
  Result = read(Addr, &Value, sizeof(Value));
  return Value;
}

MemResult Memory::write64(uint64_t Addr, uint64_t Value) {
  return write(Addr, &Value, sizeof(Value));
}

uint8_t Memory::read8(uint64_t Addr, MemResult &Result) const {
  uint8_t Value = 0;
  Result = read(Addr, &Value, sizeof(Value));
  return Value;
}

MemResult Memory::write8(uint64_t Addr, uint8_t Value) {
  return write(Addr, &Value, sizeof(Value));
}
