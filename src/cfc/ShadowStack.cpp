//===- ShadowStack.cpp - Shadow return stack checker ----------------------===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//

#include "cfc/ShadowStack.h"

#include "cfc/EmitUtil.h"
#include "vm/Layout.h"

using namespace cfed;
using namespace cfed::emitutil;

namespace {

constexpr int64_t RingBase = static_cast<int64_t>(ShadowStackBase);
constexpr int64_t RingEnd =
    static_cast<int64_t>(ShadowStackBase + ShadowStackBytes);

} // namespace

void ShadowStackChecker::bindMetrics(telemetry::MetricsRegistry &Registry) {
  PushesEmitted = &Registry.counter("cfc.shadow_stack.pushes_emitted");
  ChecksEmitted = &Registry.counter("cfc.shadow_stack.checks_emitted");
  InstrInsns = &Registry.counter("cfc.shadow_stack.instr_insns");
}

void ShadowStackChecker::charge(telemetry::Counter *SiteCounter,
                                size_t Emitted) const {
  if (!Emitted || !InstrInsns)
    return;
  InstrInsns->inc(Emitted);
  if (SiteCounter)
    SiteCounter->inc();
}

void ShadowStackChecker::initState(CpuState &State) const {
  State.Regs[RegSSP] = ShadowStackBase;
}

void ShadowStackChecker::emitCallPush(std::vector<Instruction> &Out,
                                      uint8_t RetAddrReg) const {
  size_t Before = Out.size();
  // [SSP] = return site; SSP += 8, wrapping to the ring base when it
  // reaches the end. Flag-neutral throughout (lea algebra plus a
  // register-zero branch), mirroring the EFLAGS discipline of the
  // signature sequences.
  Out.push_back(insn::rri(Opcode::St, RegSSP, RetAddrReg, 0));
  Out.push_back(insn::rri(Opcode::Lea, RegSSP, RegSSP, 8));
  Out.push_back(insn::ri(Opcode::MovI, RegSSC, imm32(-RingEnd)));
  Out.push_back(insn::rrr(Opcode::LeaR, RegSSC, RegSSC, RegSSP));
  Out.push_back(
      insn::rri(Opcode::Jnzr, RegSSC, 0, static_cast<int32_t>(InsnSize)));
  Out.push_back(insn::ri(Opcode::MovI, RegSSP, imm32(RingBase)));
  charge(PushesEmitted, Out.size() - Before);
}

void ShadowStackChecker::emitReturnCheck(std::vector<Instruction> &Out,
                                         uint8_t RetTargetReg) const {
  size_t Before = Out.size();
  // SSP -= 8 (wrapping from the base to the end), then compare the
  // recorded return site against the address the return actually popped.
  // The subtraction uses the flag-neutral two's-complement idiom
  // (not/lea/lear) so the terminator's flags survive.
  Out.push_back(insn::ri(Opcode::MovI, RegSSC, imm32(-RingBase)));
  Out.push_back(insn::rrr(Opcode::LeaR, RegSSC, RegSSC, RegSSP));
  Out.push_back(
      insn::rri(Opcode::Jnzr, RegSSC, 0, static_cast<int32_t>(InsnSize)));
  Out.push_back(insn::ri(Opcode::MovI, RegSSP, imm32(RingEnd)));
  Out.push_back(insn::rri(Opcode::Lea, RegSSP, RegSSP, -8));
  Out.push_back(insn::rri(Opcode::Ld, RegSSC, RegSSP, 0));
  Out.push_back(insn::rr(Opcode::Not, RegSSC, RegSSC));
  Out.push_back(insn::rri(Opcode::Lea, RegSSC, RegSSC, 1));
  Out.push_back(insn::rrr(Opcode::LeaR, RegSSC, RegSSC, RetTargetReg));
  Out.push_back(
      insn::rri(Opcode::Jzr, RegSSC, 0, static_cast<int32_t>(InsnSize)));
  Out.push_back(insn::i(Opcode::Brk, BrkShadowStackViolation));
  charge(ChecksEmitted, Out.size() - Before);
}
