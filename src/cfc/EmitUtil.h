//===- EmitUtil.h - Shared emission helpers (internal) ----------*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Private helpers shared by the checker implementations. Not installed
/// as a public header.
///
//===----------------------------------------------------------------------===//

#ifndef CFED_CFC_EMITUTIL_H
#define CFED_CFC_EMITUTIL_H

#include "isa/Isa.h"
#include "support/Diagnostics.h"
#include "vm/Interp.h"

#include <vector>

namespace cfed {
namespace emitutil {

/// Asserts that \p Value fits a signed 32-bit immediate and returns it.
inline int32_t imm32(int64_t Value) {
  assert(Value >= INT32_MIN && Value <= INT32_MAX &&
         "signature constant out of immediate range");
  return static_cast<int32_t>(Value);
}

/// Emits `jzr Reg, +8; brk 0xCFE`: trap unless \p Reg is zero. The jzr is
/// itself a conditional branch — the instrumentation fault site the RCF
/// regions were designed to protect.
inline void emitTrapUnlessZero(std::vector<Instruction> &Out, uint8_t Reg) {
  Out.push_back(insn::rri(Opcode::Jzr, Reg, 0, static_cast<int32_t>(InsnSize)));
  Out.push_back(insn::i(Opcode::Brk, BrkControlFlowError));
}

/// Emits the skip branch of a Jcc-flavor conditional update: jump over
/// the next instruction when the original branch will NOT go to its taken
/// target. For flags branches that is jcc with the negated condition; for
/// register-zero branches, the opposite zero test.
inline void emitSkipUnlessTaken(std::vector<Instruction> &Out,
                                Opcode BranchOp, uint8_t Reg, CondCode CC) {
  int32_t Skip = static_cast<int32_t>(InsnSize);
  switch (BranchOp) {
  case Opcode::Jcc:
    Out.push_back(insn::jcc(negateCondCode(CC), Skip));
    return;
  case Opcode::Jzr:
    Out.push_back(insn::rri(Opcode::Jnzr, Reg, 0, Skip));
    return;
  case Opcode::Jnzr:
    Out.push_back(insn::rri(Opcode::Jzr, Reg, 0, Skip));
    return;
  default:
    cfed_unreachable("not a conditional branch opcode");
  }
}

/// Emits the flag-neutral signature update `lea Reg, Reg, +Delta`,
/// dropping the instruction entirely when the delta is zero — a zero add
/// cannot move the signature, so the strength-reduced form is the empty
/// sequence. Returns true when an instruction was emitted; callers that
/// guard the update with a skip branch must elide the branch too when
/// nothing follows it.
inline bool emitSignatureAdd(std::vector<Instruction> &Out, uint8_t Reg,
                             int64_t Delta) {
  if (Delta == 0)
    return false;
  Out.push_back(insn::rri(Opcode::Lea, Reg, Reg, imm32(Delta)));
  return true;
}

/// Loads an arbitrary 64-bit constant into \p Reg (1 or 2 instructions).
inline void emitLoadConst64(std::vector<Instruction> &Out, uint8_t Reg,
                            uint64_t Value) {
  int32_t Low = static_cast<int32_t>(Value & 0xffffffffULL);
  Out.push_back(insn::ri(Opcode::MovI, Reg, Low));
  // MovI sign-extends; fix the high half when it does not match.
  uint32_t High = static_cast<uint32_t>(Value >> 32);
  uint32_t SextHigh = Low < 0 ? 0xffffffffu : 0u;
  if (High != SextHigh)
    Out.push_back(insn::ri(Opcode::MovHi, Reg, static_cast<int32_t>(High)));
}

} // namespace emitutil
} // namespace cfed

#endif // CFED_CFC_EMITUTIL_H
