//===- EcfChecker.cpp - ECF with run-time adjusting signature (Figure 4) ------===//
//
// ECF keeps the current block's signature in PC' for the whole block and
// carries the edge delta in the run-time adjusting signature RTS:
//
//   inside block L : PC' == L
//   entry:  PC' += RTS   (head update; turns the predecessor's signature
//                         into L when RTS was set for this edge)
//   check:  trap unless PC' == L
//   exit:   RTS = T - L  (chosen conditionally at conditional exits)
//
// Because RTS is written with cheap immediate moves while EdgCF/RCF add
// into PC', ECF has the lowest update cost — the "slight performance
// difference" of Section 6. Its gap: a jump into the middle of the
// current block re-joins a consistent stream (category C undetected).
//
//===----------------------------------------------------------------------===//

#include "cfc/Checkers.h"

#include "cfc/EmitUtil.h"

using namespace cfed;
using namespace cfed::emitutil;

void EcfChecker::initState(CpuState &State, uint64_t EntryL) const {
  State.Regs[RegPCP] = EntryL;
  State.Regs[RegRTS] = 0;
}

void EcfChecker::prologueImpl(std::vector<Instruction> &Out, uint64_t L,
                              bool DoCheck) const {
  Out.push_back(insn::rrr(Opcode::LeaR, RegPCP, RegPCP, RegRTS));
  if (DoCheck) {
    // Exactly Figure 4's "cmp PC', L0; jnz .report_error". The compare
    // clobbers FLAGS, which is safe at a block entry under the
    // repository-wide discipline that flags never live across edges —
    // the same liberty the paper's own sequence takes.
    Out.push_back(insn::ri(Opcode::CmpI, RegPCP, imm32(L)));
    Out.push_back(insn::jcc(CondCode::EQ, static_cast<int32_t>(InsnSize)));
    Out.push_back(insn::i(Opcode::Brk, BrkControlFlowError));
  }
}

void EcfChecker::directUpdateImpl(std::vector<Instruction> &Out, uint64_t L,
                                  uint64_t Target) const {
  Out.push_back(insn::ri(
      Opcode::MovI, RegRTS,
      imm32(static_cast<int64_t>(Target) - static_cast<int64_t>(L))));
}

void EcfChecker::condUpdateImpl(std::vector<Instruction> &Out, uint64_t L,
                                CondCode CC, uint64_t Taken,
                                uint64_t Fall) const {
  if (Flavor == UpdateFlavor::CMovcc) {
    // Figure 4's cmovle sequence.
    directUpdateImpl(Out, L, Fall);
    Out.push_back(insn::ri(
        Opcode::MovI, RegAUX,
        imm32(static_cast<int64_t>(Taken) - static_cast<int64_t>(L))));
    Out.push_back(insn::cmov(RegRTS, RegAUX, CC));
    return;
  }
  directUpdateImpl(Out, L, Fall);
  emitSkipUnlessTaken(Out, Opcode::Jcc, 0, CC);
  Out.push_back(insn::ri(
      Opcode::MovI, RegRTS,
      imm32(static_cast<int64_t>(Taken) - static_cast<int64_t>(L))));
}

void EcfChecker::regCondUpdateImpl(std::vector<Instruction> &Out, uint64_t L,
                                   Opcode BranchOp, uint8_t Reg,
                                   uint64_t Taken, uint64_t Fall) const {
  directUpdateImpl(Out, L, Fall);
  emitSkipUnlessTaken(Out, BranchOp, Reg, CondCode::EQ);
  Out.push_back(insn::ri(
      Opcode::MovI, RegRTS,
      imm32(static_cast<int64_t>(Taken) - static_cast<int64_t>(L))));
}

void EcfChecker::indirectUpdateImpl(std::vector<Instruction> &Out, uint64_t L,
                                    uint8_t TargetReg) const {
  // RTS = dynamic target - L.
  Out.push_back(insn::rri(Opcode::Lea, RegRTS, TargetReg,
                          imm32(-static_cast<int64_t>(L))));
}
