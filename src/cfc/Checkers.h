//===- Checkers.h - Concrete checking techniques ----------------*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concrete ControlFlowChecker implementations. See Checker.h for the
/// shared contract and each class comment for the technique's algebra and
/// its known coverage gaps (which the coverage benchmark reproduces).
///
//===----------------------------------------------------------------------===//

#ifndef CFED_CFC_CHECKERS_H
#define CFED_CFC_CHECKERS_H

#include "cfc/Checker.h"

#include <map>

namespace cfed {

/// No instrumentation: the DBT-only baseline of Section 6.
class NoneChecker : public ControlFlowChecker {
public:
  Technique technique() const override { return Technique::None; }
  void initState(CpuState &State, uint64_t EntryL) const override;
  void prologueImpl(std::vector<Instruction> &Out, uint64_t L,
                    bool DoCheck) const override;
  void directUpdateImpl(std::vector<Instruction> &Out, uint64_t L,
                        uint64_t Target) const override;
  void condUpdateImpl(std::vector<Instruction> &Out, uint64_t L, CondCode CC,
                      uint64_t Taken, uint64_t Fall) const override;
  void regCondUpdateImpl(std::vector<Instruction> &Out, uint64_t L,
                         Opcode BranchOp, uint8_t Reg, uint64_t Taken,
                         uint64_t Fall) const override;
  void indirectUpdateImpl(std::vector<Instruction> &Out, uint64_t L,
                          uint8_t TargetReg) const override;
};

/// The paper's Edge Control-Flow checking (Section 3.1). PC' carries the
/// next block's signature on edges and zero inside blocks. Covers branch
/// error categories A-E; the inserted check branch itself is an
/// unprotected fault site (executing while PC' == 0, which is every
/// block's in-body value) — the gap RCF closes.
class EdgCfChecker : public ControlFlowChecker {
public:
  explicit EdgCfChecker(UpdateFlavor Flavor) : Flavor(Flavor) {}
  Technique technique() const override { return Technique::EdgCf; }
  void initState(CpuState &State, uint64_t EntryL) const override;
  void prologueImpl(std::vector<Instruction> &Out, uint64_t L,
                    bool DoCheck) const override;
  void directUpdateImpl(std::vector<Instruction> &Out, uint64_t L,
                        uint64_t Target) const override;
  void condUpdateImpl(std::vector<Instruction> &Out, uint64_t L, CondCode CC,
                      uint64_t Taken, uint64_t Fall) const override;
  void regCondUpdateImpl(std::vector<Instruction> &Out, uint64_t L,
                         Opcode BranchOp, uint8_t Reg, uint64_t Taken,
                         uint64_t Fall) const override;
  void indirectUpdateImpl(std::vector<Instruction> &Out, uint64_t L,
                          uint8_t TargetReg) const override;

private:
  UpdateFlavor Flavor;
};

/// The paper's Region-based Control-Flow checking (Section 3.2). Like
/// EdgCF, but each block's body is its own region (signature L+1 instead
/// of the shared 0), and the check runs before the region transition, so
/// every instrumentation-inserted branch executes under a block-unique
/// signature. This protects the inserted check/update branches, making
/// RCF the only technique that is safe with Jcc-flavor updates
/// (Figure 14's shading).
class RcfChecker : public ControlFlowChecker {
public:
  explicit RcfChecker(UpdateFlavor Flavor) : Flavor(Flavor) {}
  Technique technique() const override { return Technique::Rcf; }
  void initState(CpuState &State, uint64_t EntryL) const override;
  void prologueImpl(std::vector<Instruction> &Out, uint64_t L,
                    bool DoCheck) const override;
  void directUpdateImpl(std::vector<Instruction> &Out, uint64_t L,
                        uint64_t Target) const override;
  void condUpdateImpl(std::vector<Instruction> &Out, uint64_t L, CondCode CC,
                      uint64_t Taken, uint64_t Fall) const override;
  void regCondUpdateImpl(std::vector<Instruction> &Out, uint64_t L,
                         Opcode BranchOp, uint8_t Reg, uint64_t Taken,
                         uint64_t Fall) const override;
  void indirectUpdateImpl(std::vector<Instruction> &Out, uint64_t L,
                          uint8_t TargetReg) const override;

private:
  /// The body-region signature of the block with entry signature \p L.
  /// Block addresses are 8-aligned, so L+1 collides with no edge
  /// signature and no other block's body signature.
  static int64_t bodySig(uint64_t L) { return static_cast<int64_t>(L) + 1; }

  UpdateFlavor Flavor;
};

/// ECF (Reis et al.): PC' holds the current block's signature; a run-time
/// adjusting signature register RTS carries the delta to the next block,
/// set conditionally at exits (Figure 4). Covers A, B, D, E; misses C
/// (jumps into the middle of the current block re-join a consistent
/// signature stream).
class EcfChecker : public ControlFlowChecker {
public:
  explicit EcfChecker(UpdateFlavor Flavor) : Flavor(Flavor) {}
  Technique technique() const override { return Technique::Ecf; }
  void initState(CpuState &State, uint64_t EntryL) const override;
  void prologueImpl(std::vector<Instruction> &Out, uint64_t L,
                    bool DoCheck) const override;
  void directUpdateImpl(std::vector<Instruction> &Out, uint64_t L,
                        uint64_t Target) const override;
  void condUpdateImpl(std::vector<Instruction> &Out, uint64_t L, CondCode CC,
                      uint64_t Taken, uint64_t Fall) const override;
  void regCondUpdateImpl(std::vector<Instruction> &Out, uint64_t L,
                         Opcode BranchOp, uint8_t Reg, uint64_t Taken,
                         uint64_t Fall) const override;
  void indirectUpdateImpl(std::vector<Instruction> &Out, uint64_t L,
                          uint8_t TargetReg) const override;

private:
  UpdateFlavor Flavor;
};

/// CFCSS (Oh, Shirvani, McCluskey): compile-time xor signatures in G
/// (register RTS) with differences d folded in at block entries, plus a
/// run-time adjusting register D (register PCP) for branch-fan-in nodes.
/// Needs the whole-program CFG, so it only runs under eager translation
/// (the paper excludes it from its on-demand DBT for the same reason).
/// Misses category A (successor updates cannot see the branch direction)
/// and category C (no intra-block state), and aliases all return sites of
/// a function onto one signature, missing some D/E errors.
class CfcssChecker : public ControlFlowChecker {
public:
  Technique technique() const override { return Technique::Cfcss; }
  bool requiresWholeProgramCfg() const override { return true; }
  bool prepare(const Cfg &Graph) override;
  void initState(CpuState &State, uint64_t EntryL) const override;
  /// A forged return from \p RetBlock to \p Target passes CFCSS only when
  /// G = s_RetBlock xor d_Target (xor D at fan-in targets) lands on
  /// s_Target — in practice only the aliased return sites of the same
  /// function, the D/E gap the class comment describes.
  bool acceptsForgedReturn(uint64_t RetBlock, uint64_t Target) const override;
  void prologueImpl(std::vector<Instruction> &Out, uint64_t L,
                    bool DoCheck) const override;
  void directUpdateImpl(std::vector<Instruction> &Out, uint64_t L,
                        uint64_t Target) const override;
  void condUpdateImpl(std::vector<Instruction> &Out, uint64_t L, CondCode CC,
                      uint64_t Taken, uint64_t Fall) const override;
  void regCondUpdateImpl(std::vector<Instruction> &Out, uint64_t L,
                         Opcode BranchOp, uint8_t Reg, uint64_t Taken,
                         uint64_t Fall) const override;
  void indirectUpdateImpl(std::vector<Instruction> &Out, uint64_t L,
                          uint8_t TargetReg) const override;

private:
  struct BlockInfo {
    uint32_t Sig = 0;      ///< s_i: compile-time signature.
    uint32_t Diff = 0;     ///< d_i = s_i xor s_basePred.
    bool FanIn = false;    ///< Entry folds in the D register.
    bool HasEntry = false; ///< Block has predecessors at all.
    /// D values each exit must establish (0 = no update needed).
    uint32_t DTaken = 0, DFall = 0, DRet = 0;
    bool NeedDTaken = false, NeedDFall = false, NeedDRet = false;
    /// Guest addresses of the exits, to map directUpdateImpl targets back
    /// to the taken/fall slots.
    uint64_t TakenAddr = 0, FallAddr = 0;
  };

  const BlockInfo &info(uint64_t L) const;
  void emitDPair(std::vector<Instruction> &Out, const BlockInfo &BI,
                 Opcode BranchOp, uint8_t Reg, CondCode CC) const;

  std::map<uint64_t, BlockInfo> Infos;
  uint32_t EntrySig = 0;
};

/// ECCA (Alkhalifa et al.): each block gets an odd prime BID; the entry
/// assertion id = BID / (!(id mod BID) * (id mod 2)) traps with a
/// divide-by-zero on a control-flow error, and the exit sets
/// id = NEXT + (id - BID) where NEXT is the product of the successors'
/// BIDs. Needs the whole-program CFG (eager mode only). Misses category A
/// (NEXT covers both directions) and category C. The check is the
/// expensive div the paper cites when motivating RCF.
class EccaChecker : public ControlFlowChecker {
public:
  Technique technique() const override { return Technique::Ecca; }
  bool requiresWholeProgramCfg() const override { return true; }
  bool prepare(const Cfg &Graph) override;
  void initState(CpuState &State, uint64_t EntryL) const override;
  /// A forged return from \p RetBlock to \p Target passes ECCA only when
  /// BID_Target divides the id the return established (NEXT_RetBlock) —
  /// i.e. only the other return sites folded into the same NEXT product.
  bool acceptsForgedReturn(uint64_t RetBlock, uint64_t Target) const override;
  void prologueImpl(std::vector<Instruction> &Out, uint64_t L,
                    bool DoCheck) const override;
  void directUpdateImpl(std::vector<Instruction> &Out, uint64_t L,
                        uint64_t Target) const override;
  void condUpdateImpl(std::vector<Instruction> &Out, uint64_t L, CondCode CC,
                      uint64_t Taken, uint64_t Fall) const override;
  void regCondUpdateImpl(std::vector<Instruction> &Out, uint64_t L,
                         Opcode BranchOp, uint8_t Reg, uint64_t Taken,
                         uint64_t Fall) const override;
  void indirectUpdateImpl(std::vector<Instruction> &Out, uint64_t L,
                          uint8_t TargetReg) const override;

private:
  struct BlockInfo {
    int64_t Bid = 0;  ///< The block's odd prime.
    int64_t Next = 0; ///< Product of successor BIDs (0 = no successors).
  };

  const BlockInfo &info(uint64_t L) const;
  void emitSet(std::vector<Instruction> &Out, const BlockInfo &BI) const;

  std::map<uint64_t, BlockInfo> Infos;
  int64_t EntryBid = 0;
};

} // namespace cfed

#endif // CFED_CFC_CHECKERS_H
