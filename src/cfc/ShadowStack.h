//===- ShadowStack.h - Shadow return stack checker --------------*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shadow return stack of the adversarial mode. Signature monitoring
/// detects *random* control-flow corruption, but a deliberate attacker
/// can redirect a return to a block whose entry signature matches what
/// the checker expects (see ControlFlowChecker::acceptsForgedReturn) —
/// for the address-mapped schemes every translated block qualifies. The
/// shadow stack closes exactly that gap: the DBT records each call's
/// return site in a monitor-private ring and compares it against the
/// popped address at every return, trapping with BrkShadowStackViolation
/// (0x5AC) on mismatch regardless of signature validity.
///
/// Composability mirrors `--dfc`: the shadow stack is orthogonal to the
/// signature technique and is spliced into the same call/return lowering
/// under any of them (including Technique::None).
///
/// The ring lives at ShadowStackBase, below the code cache, so the
/// recovery manager's page-write observer journals its mutations and a
/// rollback restores ring contents together with RegSSP (part of
/// CpuState) — no shadow-stack-specific checkpoint code is needed.
/// The ring is bounded: call chains deeper than ShadowStackSlots wrap
/// and lose the oldest frames, so unwinding past the wrap point raises
/// a (spurious) violation. Guest programs are expected to stay within
/// the ring depth and to return only to addresses their calls pushed.
///
//===----------------------------------------------------------------------===//

#ifndef CFED_CFC_SHADOWSTACK_H
#define CFED_CFC_SHADOWSTACK_H

#include "isa/Isa.h"
#include "telemetry/Metrics.h"
#include "vm/Interp.h"

#include <vector>

namespace cfed {

/// Emits the shadow-stack push/check sequences. Stateless except for the
/// bound counters; all run-time state is the ring plus RegSSP/RegSSC.
class ShadowStackChecker {
public:
  /// Registers "cfc.shadow_stack.pushes_emitted",
  /// "cfc.shadow_stack.checks_emitted" and
  /// "cfc.shadow_stack.instr_insns". Until bound, emission is uncounted.
  void bindMetrics(telemetry::MetricsRegistry &Registry);

  /// Points RegSSP at the empty ring. Callers map the ring region
  /// themselves (the DBT does it in load()).
  void initState(CpuState &State) const;

  /// Emits the call-side push: the return site in \p RetAddrReg is
  /// recorded at [SSP] and SSP advances (with wrap). Flag-neutral;
  /// clobbers only RegSSC; reads but never writes \p RetAddrReg.
  void emitCallPush(std::vector<Instruction> &Out, uint8_t RetAddrReg) const;

  /// Emits the return-side compare-and-pop: SSP retreats (with wrap) and
  /// the recorded address is compared against the popped return target
  /// in \p RetTargetReg; mismatch traps with 0x5AC. Flag-neutral;
  /// clobbers only RegSSC; reads but never writes \p RetTargetReg.
  void emitReturnCheck(std::vector<Instruction> &Out,
                       uint8_t RetTargetReg) const;

private:
  void charge(telemetry::Counter *SiteCounter, size_t Emitted) const;

  telemetry::Counter *PushesEmitted = nullptr;
  telemetry::Counter *ChecksEmitted = nullptr;
  telemetry::Counter *InstrInsns = nullptr;
};

} // namespace cfed

#endif // CFED_CFC_SHADOWSTACK_H
