//===- EdgCfChecker.cpp - Edge control-flow checking (Section 3.1) ------------===//
//
// Signature algebra (GEN_SIG(x,y,z) = x - y + z, Section 4.4, implemented
// with the flag-neutral lea, Section 5.1):
//
//   on an edge into block L : PC' == L
//   inside the body of L    : PC' == 0
//
//   entry:  PC' -= L          (head update; 0 afterwards if correct)
//   check:  trap unless PC' == 0
//   exit:   PC' += T          (edge to T; conditional exits choose T with
//                              a CMOVcc or an inserted Jcc per Figure 8)
//   indirect exits use the dynamic target register: PC' += target, which
//   is exactly Figure 7's "xor PC', R1; ret" in the add/sub algebra.
//
//===----------------------------------------------------------------------===//

#include "cfc/Checkers.h"

#include "cfc/EmitUtil.h"

using namespace cfed;
using namespace cfed::emitutil;

void EdgCfChecker::initState(CpuState &State, uint64_t EntryL) const {
  State.Regs[RegPCP] = EntryL;
}

void EdgCfChecker::prologueImpl(std::vector<Instruction> &Out, uint64_t L,
                                bool DoCheck) const {
  // Head update first, then check PC' == 0 (Figure 6). Note the check
  // branch thus executes while PC' holds the shared in-body value 0 —
  // the unprotected fault site RCF fixes.
  Out.push_back(insn::rri(Opcode::Lea, RegPCP, RegPCP,
                          imm32(-static_cast<int64_t>(L))));
  if (DoCheck)
    emitTrapUnlessZero(Out, RegPCP);
}

void EdgCfChecker::directUpdateImpl(std::vector<Instruction> &Out, uint64_t,
                                    uint64_t Target) const {
  emitSignatureAdd(Out, RegPCP, static_cast<int64_t>(Target));
}

void EdgCfChecker::condUpdateImpl(std::vector<Instruction> &Out, uint64_t L,
                                  CondCode CC, uint64_t Taken,
                                  uint64_t Fall) const {
  if (Flavor == UpdateFlavor::CMovcc) {
    // Figure 8 in the add/sub algebra.
    Out.push_back(insn::rr(Opcode::Mov, RegAUX, RegPCP));
    directUpdateImpl(Out, L, Fall);
    Out.push_back(insn::rri(Opcode::Lea, RegAUX, RegAUX,
                            imm32(static_cast<int64_t>(Taken))));
    Out.push_back(insn::cmov(RegPCP, RegAUX, CC));
    return;
  }
  // Jcc flavor: assume fall-through, fix up when the branch will be
  // taken. The inserted jcc reads the same flags the original branch
  // will read, so a later fault at the original branch is detected.
  // Degenerate branches (both arms reach the same block) need no fixup,
  // so the skip branch goes away with it.
  directUpdateImpl(Out, L, Fall);
  int64_t Delta = static_cast<int64_t>(Taken) - static_cast<int64_t>(Fall);
  if (Delta == 0)
    return;
  emitSkipUnlessTaken(Out, Opcode::Jcc, 0, CC);
  emitSignatureAdd(Out, RegPCP, Delta);
}

void EdgCfChecker::regCondUpdateImpl(std::vector<Instruction> &Out,
                                     uint64_t L, Opcode BranchOp, uint8_t Reg,
                                     uint64_t Taken, uint64_t Fall) const {
  // Register-zero branches have no CMOVcc form (jcxz analogue): always
  // the inserted-branch scheme.
  directUpdateImpl(Out, L, Fall);
  int64_t Delta = static_cast<int64_t>(Taken) - static_cast<int64_t>(Fall);
  if (Delta == 0)
    return;
  emitSkipUnlessTaken(Out, BranchOp, Reg, CondCode::EQ);
  emitSignatureAdd(Out, RegPCP, Delta);
}

void EdgCfChecker::indirectUpdateImpl(std::vector<Instruction> &Out, uint64_t,
                                      uint8_t TargetReg) const {
  // PC' = 0 + dynamic target. lear keeps the recursive dependence on the
  // previous signature value: an already-wrong PC' stays wrong.
  Out.push_back(insn::rrr(Opcode::LeaR, RegPCP, RegPCP, TargetReg));
}
