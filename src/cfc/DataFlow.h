//===- DataFlow.h - SWIFT-style data-flow checking extension ----*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's future-work item — "we will add data flow checking into
/// our implementation" — as a SWIFT-style (Reis et al., CGO 2005)
/// instruction-duplication pass layered under the control-flow checkers:
///
///  * every guest computation is duplicated into shadow registers
///    (r32..r47 / f16..f31 mirror the guest's r0..r15 / f0..f15);
///  * loads re-synchronize their shadow from the loaded value (memory is
///    assumed ECC-protected, as in SWIFT);
///  * before any value can leave the processor (stores, pushes, Out),
///    the original and the shadow are compared; a mismatch raises
///    BrkDataFlowError;
///  * compares/branches are not duplicated — branch errors are the
///    control-flow checkers' job, which is exactly the division of labor
///    the paper describes ("reliability is generally achieved by
///    combining data-flow and control-flow checking", Section 1).
///
/// The duplicated ALU ops run *before* the originals, so the final FLAGS
/// state is the original's and guest semantics are preserved. The
/// compare-at-store sequences clobber FLAGS; this is sound under the
/// repository discipline, checked by Cfg::findFlagsAcrossStoreViolations,
/// that no conditional consumes flags produced before an intervening
/// store.
///
//===----------------------------------------------------------------------===//

#ifndef CFED_CFC_DATAFLOW_H
#define CFED_CFC_DATAFLOW_H

#include "isa/Isa.h"

#include <vector>

namespace cfed {
namespace dfc {

/// Instrumentation emitted around one guest body instruction: Before
/// runs first, then the original instruction, then After.
struct Expansion {
  std::vector<Instruction> Before;
  std::vector<Instruction> After;
};

/// Computes the data-flow instrumentation for guest body instruction
/// \p I (which must not be a block terminator and must only name
/// guest-visible registers).
Expansion expand(const Instruction &I);

} // namespace dfc
} // namespace cfed

#endif // CFED_CFC_DATAFLOW_H
