//===- EccaChecker.cpp - Enhanced control-flow checking using assertions ------===//
//
// ECCA (Alkhalifa et al., IEEE TPDS 1999). Each block gets a unique odd
// prime BID; the id register (RTS) is checked at block entry with the
// divide-based assertion
//
//   id = BID / ( !(id mod BID) * (id mod 2) )
//
// which traps with a divide-by-zero exactly when the incoming id is not
// a (necessarily odd) multiple of BID, and otherwise normalizes id to
// BID. The exit SET assignment
//
//   id = NEXT + (id - BID),  NEXT = product of successor BIDs
//
// admits every legal successor — which is why ECCA cannot detect
// category A (a mistaken direction still lands on a factor of NEXT) and
// is the expensive-div design the paper contrasts with RCF. Whole-program
// CFG required (eager mode only).
//
//===----------------------------------------------------------------------===//

#include "cfc/Checkers.h"

#include "cfc/EmitUtil.h"

using namespace cfed;
using namespace cfed::emitutil;

namespace {

/// Generates the first \p Count odd primes (3, 5, 7, ...).
std::vector<int64_t> oddPrimes(size_t Count) {
  std::vector<int64_t> Primes;
  for (int64_t Candidate = 3; Primes.size() < Count; Candidate += 2) {
    bool IsPrime = true;
    for (int64_t P : Primes) {
      if (P * P > Candidate)
        break;
      if (Candidate % P == 0) {
        IsPrime = false;
        break;
      }
    }
    if (IsPrime)
      Primes.push_back(Candidate);
  }
  return Primes;
}

} // namespace

bool EccaChecker::prepare(const Cfg &Graph) {
  Cfg Copy = Graph;
  if (!Copy.computeRetSuccessors())
    return false;

  std::vector<int64_t> Primes = oddPrimes(Copy.blocks().size());
  Infos.clear();
  size_t Index = 0;
  for (const auto &[Addr, Block] : Copy.blocks())
    Infos[Addr].Bid = Primes[Index++];
  EntryBid = Infos.at(Copy.entry()).Bid;

  constexpr int64_t MaxNext = int64_t(1) << 62;
  for (const auto &[Addr, Block] : Copy.blocks()) {
    BlockInfo &BI = Infos.at(Addr);
    __int128 Next = 1;
    bool HasSucc = false;
    auto Mul = [&](uint64_t Succ) {
      Next *= Infos.at(Succ).Bid;
      HasSucc = true;
    };
    if (Block.HasTakenTarget && Infos.count(Block.TakenTarget))
      Mul(Block.TakenTarget);
    if (Block.HasFallThrough && Infos.count(Block.FallThrough))
      Mul(Block.FallThrough);
    for (uint64_t Site : Block.RetSuccessors)
      Mul(Site);
    if (Next > MaxNext)
      return false; // Too many call sites: the product overflows.
    BI.Next = HasSucc ? static_cast<int64_t>(Next) : 0;
  }
  return true;
}

const EccaChecker::BlockInfo &EccaChecker::info(uint64_t L) const {
  auto It = Infos.find(L);
  assert(It != Infos.end() &&
         "ECCA emission for a block missing from prepare()");
  return It->second;
}

bool EccaChecker::acceptsForgedReturn(uint64_t RetBlock,
                                      uint64_t Target) const {
  auto LIt = Infos.find(RetBlock);
  auto TIt = Infos.find(Target);
  if (LIt == Infos.end() || TIt == Infos.end())
    return false;
  // After the return's SET, id = NEXT_RetBlock (or stays at the
  // normalized BID when the ret has no static successors). Products of
  // odd primes are odd, so the assertion at the forged target reduces to
  // the divisibility test.
  int64_t Id = LIt->second.Next != 0 ? LIt->second.Next : LIt->second.Bid;
  return Id % TIt->second.Bid == 0;
}

void EccaChecker::initState(CpuState &State, uint64_t) const {
  State.Regs[RegRTS] = static_cast<uint64_t>(EntryBid);
}

void EccaChecker::prologueImpl(std::vector<Instruction> &Out, uint64_t L,
                               bool DoCheck) const {
  // ECCA's test *is* its signature normalization: the entry assertion
  // cannot be skipped under relaxed policies, so the check always runs
  // (the paper only sweeps policies for RCF).
  (void)DoCheck;
  const BlockInfo &BI = info(L);
  // aux  = BID
  // aux2 = !(id mod BID)          (1 if divisible, else 0)
  // pcp  = id mod 2               (1 expected: products of odd primes)
  // id   = aux / (aux2 * pcp)     -> div-by-zero trap on error
  Out.push_back(insn::ri(Opcode::MovI, RegAUX, imm32(BI.Bid)));
  Out.push_back(insn::rrr(Opcode::Rem, RegAUX2, RegRTS, RegAUX));
  Out.push_back(insn::ri(Opcode::CmpI, RegAUX2, 0));
  Out.push_back(insn::setcc(RegAUX2, CondCode::EQ));
  Out.push_back(insn::rri(Opcode::AndI, RegPCP, RegRTS, 1));
  Out.push_back(insn::rrr(Opcode::Mul, RegAUX2, RegAUX2, RegPCP));
  Out.push_back(insn::rrr(Opcode::Div, RegRTS, RegAUX, RegAUX2));
}

void EccaChecker::emitSet(std::vector<Instruction> &Out,
                          const BlockInfo &BI) const {
  // Blocks without static successors (dead code, or a ret that leaves
  // the program) get no SET: id stays normalized, and an erroneous jump
  // into such a block is still caught by the next entry assertion.
  if (BI.Next == 0)
    return;
  // id = NEXT + (id - BID). Flag-neutral (lea/lear) so conditional
  // branches after the update still see their flags. A zero delta
  // (self-loop: NEXT == BID) strength-reduces to nothing.
  int64_t Delta = BI.Next - BI.Bid;
  if (Delta >= INT32_MIN && Delta <= INT32_MAX) {
    emitSignatureAdd(Out, RegRTS, Delta);
    return;
  }
  emitLoadConst64(Out, RegAUX, static_cast<uint64_t>(Delta));
  Out.push_back(insn::rrr(Opcode::LeaR, RegRTS, RegRTS, RegAUX));
}

void EccaChecker::directUpdateImpl(std::vector<Instruction> &Out, uint64_t L,
                                   uint64_t) const {
  emitSet(Out, info(L));
}

void EccaChecker::condUpdateImpl(std::vector<Instruction> &Out, uint64_t L,
                                 CondCode, uint64_t, uint64_t) const {
  // NEXT is the product over both successors: one unconditional update.
  emitSet(Out, info(L));
}

void EccaChecker::regCondUpdateImpl(std::vector<Instruction> &Out, uint64_t L,
                                    Opcode, uint8_t, uint64_t,
                                    uint64_t) const {
  emitSet(Out, info(L));
}

void EccaChecker::indirectUpdateImpl(std::vector<Instruction> &Out,
                                     uint64_t L, uint8_t) const {
  emitSet(Out, info(L));
}
