//===- Checker.h - Control-flow checking technique interface ----*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The signature-monitoring interface shared by every control-flow
/// checking technique in the paper:
///
///   * None   — no instrumentation (the DBT baseline);
///   * CFCSS  — control-flow checking by software signatures (Oh et al.),
///              xor signatures with a run-time adjusting D register;
///   * ECCA   — enhanced control-flow checking using assertions
///              (Alkhalifa et al.), prime IDs checked with div;
///   * ECF    — enhanced control flow checking (Reis et al.), run-time
///              adjusting signature RTS with conditional updates (Fig. 4);
///   * EdgCF  — the paper's edge control-flow checking (Figs. 5-8);
///   * RCF    — the paper's region-based control-flow checking (Fig. 9),
///              which additionally protects the checking/update branches
///              the instrumentation itself inserts.
///
/// A technique decomposes into a block prologue (signature check and/or
/// entry update) and per-exit signature updates, emitted as VISA
/// instruction sequences the DBT splices into translated blocks. All
/// emitted sequences are position-independent: internal branches only
/// skip a fixed number of following instructions.
///
/// Following Section 5, block signatures are the guest address of the
/// block's first instruction, which makes signatures unique and makes the
/// dynamic-target-to-signature mapping free for indirect branches.
/// GEN_SIG uses the add/subtract algebra (GEN_SIG(x,y,z) = x - y + z,
/// Section 4.4) implemented with the flag-neutral lea, avoiding the
/// EFLAGS problem (Section 5.1).
///
//===----------------------------------------------------------------------===//

#ifndef CFED_CFC_CHECKER_H
#define CFED_CFC_CHECKER_H

#include "cfg/Cfg.h"
#include "isa/Isa.h"
#include "telemetry/Metrics.h"
#include "vm/Interp.h"

#include <memory>
#include <vector>

namespace cfed {

/// The implemented signature-monitoring techniques.
enum class Technique : uint8_t { None, Cfcss, Ecca, Ecf, EdgCf, Rcf };

/// Returns the display name ("RCF", "EdgCF", ...).
const char *getTechniqueName(Technique T);

/// How conditional signature updates are implemented (Figure 14): with an
/// inserted conditional jump (cheaper, but the inserted jump is itself an
/// unprotected fault site except under RCF) or with a conditional move.
enum class UpdateFlavor : uint8_t { Jcc, CMovcc };

/// Returns "Jcc" or "CMOVcc".
const char *getUpdateFlavorName(UpdateFlavor Flavor);

/// The signature checking policies of Section 6. Updates happen in every
/// block under every policy; the policy only decides where the check runs.
enum class CheckPolicy : uint8_t {
  AllBB,   ///< Check in every basic block.
  RetBE,   ///< Check in blocks with back edges and in blocks with returns.
  Ret,     ///< Check in blocks with return instructions.
  End,     ///< Check only at the end of the application.
  StoreBB, ///< Check in blocks that store to memory (the optimization
           ///< Section 6 credits to Reis et al.: validate the signature
           ///< before data can leave the processor).
};

/// Returns "ALLBB", "RET-BE", "RET", "END" or "STORE".
const char *getCheckPolicyName(CheckPolicy Policy);

/// Decides whether the prologue of a block should include the signature
/// check under \p Policy. Usable block-locally (no whole-program CFG), as
/// required by on-demand translation: a back edge is a backward direct
/// branch, and \p HasStore says whether the block's body writes memory.
bool policyChecksBlock(CheckPolicy Policy, OpKind TermKind,
                       bool HasBackEdge, bool HasStore);

/// Returns true if \p Op writes to data memory (stores, pushes, calls).
bool opcodeStoresMemory(Opcode Op);

/// One signature-monitoring technique. Stateless across blocks except for
/// data computed by prepare().
class ControlFlowChecker {
public:
  virtual ~ControlFlowChecker();

  virtual Technique technique() const = 0;
  const char *name() const { return getTechniqueName(technique()); }

  /// True if the technique assigns signatures from the whole-program CFG
  /// and therefore cannot run under on-demand translation (the paper's
  /// reason for excluding CFCSS and ECCA from its DBT).
  virtual bool requiresWholeProgramCfg() const { return false; }

  /// Supplies the whole-program CFG (eager mode). Returns false if the
  /// program cannot be instrumented by this technique (e.g. indirect
  /// calls defeat CFCSS's static signature assignment).
  virtual bool prepare(const Cfg &Graph);

  /// Initializes the reserved signature registers for a program whose
  /// entry block has signature \p EntryL.
  virtual void initState(CpuState &State, uint64_t EntryL) const = 0;

  /// Adversarial-precision oracle: if an attacker redirects the return in
  /// the block with signature \p RetBlock to the entry of the block with
  /// signature \p Target, does the technique's signature algebra still
  /// hold (i.e. is \p Target a valid-signature gadget)? Address-mapped
  /// schemes (ECF/EdgCF/RCF — and trivially None) compute the indirect
  /// update from the *corrupted* return address itself, so the update and
  /// the forged target's entry signature cancel for every translated
  /// block: any block head is a gadget, hence the default. CFCSS and ECCA
  /// override this with their static assignment algebra, which only
  /// admits targets in the same return-signature class.
  virtual bool acceptsForgedReturn(uint64_t RetBlock, uint64_t Target) const {
    (void)RetBlock;
    (void)Target;
    return true;
  }

  /// Registers this checker's emission counters
  /// ("cfc.<tech>.check_sig_emitted", "cfc.<tech>.gen_sig_emitted",
  /// "cfc.<tech>.instr_insns") in \p Registry. Until bound, the emit
  /// wrappers below skip counting.
  void bindMetrics(telemetry::MetricsRegistry &Registry);

  /// Enables shadow-signature duplication (the self-integrity
  /// extension): every emitted signature sequence is re-applied to
  /// shadow copies of PCP/RTS (RegPCPShadow/RegRTSShadow), and checked
  /// prologues are preceded by a cross-check that traps with
  /// BrkMonitorCorruption (0x5EC) when a signature register diverges
  /// from its shadow — distinguishing a flipped signature variable from
  /// a real control-flow error.
  void setShadowSignature(bool Enabled) { ShadowSig = Enabled; }
  bool shadowSignature() const { return ShadowSig; }

  /// Copies the live signature registers into their shadow copies.
  /// Callers invoke this right after initState() when shadow signatures
  /// are enabled.
  void seedShadowState(CpuState &State) const;

  /// Emits the block prologue for the block with signature \p L. When
  /// \p DoCheck is false (relaxed policies) only the entry update is
  /// emitted. Counts CHECK_SIG emissions when metrics are bound.
  void emitPrologue(std::vector<Instruction> &Out, uint64_t L,
                    bool DoCheck) const;

  /// Emits the exit update for an unconditional direct edge L -> Target.
  /// This and the remaining emit wrappers count GEN_SIG emissions.
  void emitDirectUpdate(std::vector<Instruction> &Out, uint64_t L,
                        uint64_t Target) const;

  /// Emits the exit update for a conditional (flags) branch: control goes
  /// to \p Taken when \p CC holds, else to \p Fall. Emitted immediately
  /// before the branch; must not clobber FLAGS.
  void emitCondUpdate(std::vector<Instruction> &Out, uint64_t L, CondCode CC,
                      uint64_t Taken, uint64_t Fall) const;

  /// Like emitCondUpdate for register-zero branches (Jzr/Jnzr on
  /// \p Reg). These have no CMOVcc equivalent (like jcxz on IA-32), so
  /// every flavor uses an inserted register-zero jump.
  void emitRegCondUpdate(std::vector<Instruction> &Out, uint64_t L,
                         Opcode BranchOp, uint8_t Reg, uint64_t Taken,
                         uint64_t Fall) const;

  /// Emits the exit update for an indirect edge whose guest target is in
  /// \p TargetReg (Figure 7). Must not clobber \p TargetReg.
  void emitIndirectUpdate(std::vector<Instruction> &Out, uint64_t L,
                          uint8_t TargetReg) const;

protected:
  // Technique implementations. Techniques that reuse their direct-edge
  // sequence internally (ECF/EdgCF/RCF call directUpdateImpl from their
  // conditional updates) call the Impl directly so no emission is
  // double-counted by the public wrappers.
  virtual void prologueImpl(std::vector<Instruction> &Out, uint64_t L,
                            bool DoCheck) const = 0;
  virtual void directUpdateImpl(std::vector<Instruction> &Out, uint64_t L,
                                uint64_t Target) const = 0;
  virtual void condUpdateImpl(std::vector<Instruction> &Out, uint64_t L,
                              CondCode CC, uint64_t Taken,
                              uint64_t Fall) const = 0;
  virtual void regCondUpdateImpl(std::vector<Instruction> &Out, uint64_t L,
                                 Opcode BranchOp, uint8_t Reg,
                                 uint64_t Taken, uint64_t Fall) const = 0;
  virtual void indirectUpdateImpl(std::vector<Instruction> &Out, uint64_t L,
                                  uint8_t TargetReg) const = 0;

private:
  /// Charges \p Emitted instructions to the instrumentation counters and
  /// \p SigCounter (when anything was emitted and metrics are bound).
  void chargeEmission(telemetry::Counter *SigCounter, size_t Emitted) const;

  /// Re-emits Out[Begin..) with PCP/RTS renamed to their shadow
  /// registers, appended after the primary sequence. Emitted sequences
  /// are position-independent (internal branches skip a fixed number of
  /// following instructions), so the copy stays correct.
  void appendShadowCopy(std::vector<Instruction> &Out, size_t Begin) const;

  /// Emits the PCP==PCP' and RTS==RTS' cross-checks (trap 0x5EC on
  /// divergence). Flag-neutral; clobbers only AUX.
  void emitCrossCheck(std::vector<Instruction> &Out) const;

  bool ShadowSig = false;

  // Bound by bindMetrics(); null until then.
  telemetry::Counter *CheckSigEmitted = nullptr;
  telemetry::Counter *GenSigEmitted = nullptr;
  telemetry::Counter *InstrInsns = nullptr;
};

/// Creates a checker for \p T with conditional updates in \p Flavor.
std::unique_ptr<ControlFlowChecker> createChecker(Technique T,
                                                  UpdateFlavor Flavor);

/// All techniques the on-demand DBT supports, in the order the paper's
/// figures present them.
inline constexpr Technique DbtTechniques[] = {Technique::Rcf,
                                              Technique::EdgCf,
                                              Technique::Ecf};

} // namespace cfed

#endif // CFED_CFC_CHECKER_H
