//===- NoneChecker.cpp - Uninstrumented baseline -------------------------------===//

#include "cfc/Checkers.h"

using namespace cfed;

void NoneChecker::initState(CpuState &, uint64_t) const {}

void NoneChecker::prologueImpl(std::vector<Instruction> &, uint64_t,
                               bool) const {}

void NoneChecker::directUpdateImpl(std::vector<Instruction> &, uint64_t,
                                   uint64_t) const {}

void NoneChecker::condUpdateImpl(std::vector<Instruction> &, uint64_t,
                                 CondCode, uint64_t, uint64_t) const {}

void NoneChecker::regCondUpdateImpl(std::vector<Instruction> &, uint64_t,
                                    Opcode, uint8_t, uint64_t,
                                    uint64_t) const {}

void NoneChecker::indirectUpdateImpl(std::vector<Instruction> &, uint64_t,
                                     uint8_t) const {}
