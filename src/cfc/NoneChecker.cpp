//===- NoneChecker.cpp - Uninstrumented baseline -------------------------------===//

#include "cfc/Checkers.h"

using namespace cfed;

void NoneChecker::initState(CpuState &, uint64_t) const {}

void NoneChecker::emitPrologue(std::vector<Instruction> &, uint64_t,
                               bool) const {}

void NoneChecker::emitDirectUpdate(std::vector<Instruction> &, uint64_t,
                                   uint64_t) const {}

void NoneChecker::emitCondUpdate(std::vector<Instruction> &, uint64_t,
                                 CondCode, uint64_t, uint64_t) const {}

void NoneChecker::emitRegCondUpdate(std::vector<Instruction> &, uint64_t,
                                    Opcode, uint8_t, uint64_t,
                                    uint64_t) const {}

void NoneChecker::emitIndirectUpdate(std::vector<Instruction> &, uint64_t,
                                     uint8_t) const {}
