//===- RcfChecker.cpp - Region-based control-flow checking (Section 3.2) -----===//
//
// RCF refines EdgCF with per-block regions (Figure 9):
//
//   on an edge into block L       : PC' == L      (region R1E)
//   inside the body of block L    : PC' == L + 1  (region R1)
//
// Block addresses are 8-aligned, so L+1 is unique per block and collides
// with no edge signature. The prologue checks PC' *before* transitioning
// into the body region, so the inserted check branch executes under the
// block-unique value L, and each inserted update branch executes under
// the distinct edge value it has just established — a fault on any
// instrumentation branch lands somewhere its signature cannot match.
// This is what makes RCF safe even with Jcc-flavor updates (Figure 14).
//
//===----------------------------------------------------------------------===//

#include "cfc/Checkers.h"

#include "cfc/EmitUtil.h"

using namespace cfed;
using namespace cfed::emitutil;

void RcfChecker::initState(CpuState &State, uint64_t EntryL) const {
  State.Regs[RegPCP] = EntryL;
}

void RcfChecker::prologueImpl(std::vector<Instruction> &Out, uint64_t L,
                              bool DoCheck) const {
  if (DoCheck) {
    // Check in region R1E: compare into a scratch so PC' keeps the value
    // L that protects the check branch (Figure 13 does the same with the
    // saved-CX jcxz sequence).
    Out.push_back(insn::rri(Opcode::Lea, RegAUX, RegPCP,
                            imm32(-static_cast<int64_t>(L))));
    emitTrapUnlessZero(Out, RegAUX);
  }
  // Transition R1E -> R1 (body region).
  Out.push_back(insn::rri(Opcode::Lea, RegPCP, RegPCP,
                          imm32(bodySig(L) - static_cast<int64_t>(L))));
}

void RcfChecker::directUpdateImpl(std::vector<Instruction> &Out, uint64_t L,
                                  uint64_t Target) const {
  emitSignatureAdd(Out, RegPCP, static_cast<int64_t>(Target) - bodySig(L));
}

void RcfChecker::condUpdateImpl(std::vector<Instruction> &Out, uint64_t L,
                                CondCode CC, uint64_t Taken,
                                uint64_t Fall) const {
  if (Flavor == UpdateFlavor::CMovcc) {
    Out.push_back(insn::rr(Opcode::Mov, RegAUX, RegPCP));
    directUpdateImpl(Out, L, Fall);
    Out.push_back(insn::rri(Opcode::Lea, RegAUX, RegAUX,
                            imm32(static_cast<int64_t>(Taken) - bodySig(L))));
    Out.push_back(insn::cmov(RegPCP, RegAUX, CC));
    return;
  }
  // Jcc flavor: the inserted branch executes with PC' == Fall — an edge
  // region distinct per block, so a fault on it is detected (unlike in
  // EdgCF, where PC' would be the global body value 0). Degenerate
  // branches (both arms reach the same block) need no fixup or skip.
  directUpdateImpl(Out, L, Fall);
  int64_t Delta = static_cast<int64_t>(Taken) - static_cast<int64_t>(Fall);
  if (Delta == 0)
    return;
  emitSkipUnlessTaken(Out, Opcode::Jcc, 0, CC);
  emitSignatureAdd(Out, RegPCP, Delta);
}

void RcfChecker::regCondUpdateImpl(std::vector<Instruction> &Out, uint64_t L,
                                   Opcode BranchOp, uint8_t Reg,
                                   uint64_t Taken, uint64_t Fall) const {
  directUpdateImpl(Out, L, Fall);
  int64_t Delta = static_cast<int64_t>(Taken) - static_cast<int64_t>(Fall);
  if (Delta == 0)
    return;
  emitSkipUnlessTaken(Out, BranchOp, Reg, CondCode::EQ);
  emitSignatureAdd(Out, RegPCP, Delta);
}

void RcfChecker::indirectUpdateImpl(std::vector<Instruction> &Out, uint64_t L,
                                    uint8_t TargetReg) const {
  // PC' += target - bodySig: two flag-neutral adds keep the recursive
  // dependence on the previous signature.
  Out.push_back(insn::rrr(Opcode::LeaR, RegPCP, RegPCP, TargetReg));
  Out.push_back(insn::rri(Opcode::Lea, RegPCP, RegPCP, imm32(-bodySig(L))));
}
