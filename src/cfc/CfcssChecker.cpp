//===- CfcssChecker.cpp - Control-flow checking by software signatures --------===//
//
// Classic CFCSS (Oh et al., IEEE Trans. Reliability 2002) on the binary
// CFG. Register map: G (the run-time signature) lives in RTS, the
// run-time adjusting register D lives in PCP, AUX is scratch.
//
//   entry:  G ^= d_i            where d_i = s_i xor s_basePred
//           G ^= D              at branch-fan-in nodes
//   check:  trap unless G == s_i
//   exit:   D = s_j xor s_basePred(succ) for fan-in successors
//
// Signature assignment needs the whole-program CFG, hence eager mode
// only (the paper's reason for excluding CFCSS from its DBT). Return
// sites of a function are forced to share one signature so that d is
// well-defined across return edges — the signature aliasing that costs
// CFCSS some D/E coverage. Flags are clobbered at block entries, which
// is safe under the repository-wide discipline that flags never live
// across block boundaries.
//
//===----------------------------------------------------------------------===//

#include "cfc/Checkers.h"

#include "cfc/EmitUtil.h"
#include "support/Prng.h"

#include <algorithm>
#include <set>

using namespace cfed;
using namespace cfed::emitutil;

namespace {

/// Union-find over block addresses, used to merge signature classes.
class SigClasses {
public:
  uint64_t find(uint64_t Addr) {
    auto It = Parent.find(Addr);
    if (It == Parent.end() || It->second == Addr)
      return Addr;
    uint64_t Root = find(It->second);
    Parent[Addr] = Root;
    return Root;
  }
  void merge(uint64_t A, uint64_t B) { Parent[find(A)] = find(B); }

private:
  std::map<uint64_t, uint64_t> Parent;
};

} // namespace

bool CfcssChecker::prepare(const Cfg &Graph) {
  Cfg Copy = Graph; // computeRetSuccessors mutates; keep caller's intact.
  if (!Copy.computeRetSuccessors())
    return false;

  // Merge the signature classes of each ret block's successors (the
  // return sites of one function).
  SigClasses Classes;
  for (const auto &[Addr, Block] : Copy.blocks())
    for (size_t I = 1; I < Block.RetSuccessors.size(); ++I)
      Classes.merge(Block.RetSuccessors[I], Block.RetSuccessors[0]);

  // Assign distinct signatures per class (deterministic).
  Prng Rng(0xCFC55);
  std::map<uint64_t, uint32_t> ClassSigs;
  std::set<uint32_t> Used;
  auto SigOf = [&](uint64_t Addr) {
    uint64_t Root = Classes.find(Addr);
    auto It = ClassSigs.find(Root);
    if (It != ClassSigs.end())
      return It->second;
    uint32_t Sig;
    do {
      Sig = static_cast<uint32_t>(Rng.nextBelow(1u << 24)) | 1u;
    } while (!Used.insert(Sig).second);
    ClassSigs.emplace(Root, Sig);
    return Sig;
  };

  Infos.clear();
  for (const auto &[Addr, Block] : Copy.blocks()) {
    BlockInfo &BI = Infos[Addr];
    BI.Sig = SigOf(Addr);
  }
  EntrySig = Infos.at(Copy.entry()).Sig;

  // Predecessor analysis: base pred (smallest address) defines d_i; a
  // node is fan-in when its predecessors carry distinct signatures.
  std::map<uint64_t, std::vector<uint64_t>> Preds;
  for (const auto &[Addr, Block] : Copy.blocks()) {
    if (Block.HasTakenTarget)
      Preds[Block.TakenTarget].push_back(Addr);
    if (Block.HasFallThrough)
      Preds[Block.FallThrough].push_back(Addr);
    // Call return sites are reached via the callee's ret edges below.
    for (uint64_t Site : Block.RetSuccessors)
      Preds[Site].push_back(Addr);
  }

  auto BasePredSig = [&](uint64_t Addr, bool &Exists) -> uint32_t {
    auto It = Preds.find(Addr);
    if (It == Preds.end() || It->second.empty()) {
      Exists = false;
      return 0;
    }
    Exists = true;
    uint64_t Base = *std::min_element(It->second.begin(), It->second.end());
    return Infos.at(Base).Sig;
  };

  for (auto &[Addr, BI] : Infos) {
    bool HasPreds = false;
    uint32_t BaseSig = BasePredSig(Addr, HasPreds);
    BI.HasEntry = HasPreds;
    BI.Diff = HasPreds ? (BI.Sig ^ BaseSig) : 0;
    if (!HasPreds)
      continue;
    std::set<uint32_t> PredSigs;
    for (uint64_t Pred : Preds.at(Addr))
      PredSigs.insert(Infos.at(Pred).Sig);
    BI.FanIn = PredSigs.size() > 1;
  }

  // Each predecessor of a fan-in node must establish D for the edge it
  // takes: D = s_self xor s_basePred(target).
  auto DFor = [&](uint64_t From, uint64_t To) -> uint32_t {
    bool HasPreds = false;
    uint32_t BaseSig = BasePredSig(To, HasPreds);
    assert(HasPreds && "fan-in node without predecessors");
    return Infos.at(From).Sig ^ BaseSig;
  };
  for (const auto &[Addr, Block] : Copy.blocks()) {
    BlockInfo &BI = Infos.at(Addr);
    if (Block.HasTakenTarget) {
      BI.TakenAddr = Block.TakenTarget;
      if (Infos.at(Block.TakenTarget).FanIn) {
        BI.DTaken = DFor(Addr, Block.TakenTarget);
        BI.NeedDTaken = true;
      }
    }
    if (Block.HasFallThrough) {
      BI.FallAddr = Block.FallThrough;
      if (Infos.at(Block.FallThrough).FanIn) {
        BI.DFall = DFor(Addr, Block.FallThrough);
        BI.NeedDFall = true;
      }
    }
    if (!Block.RetSuccessors.empty()) {
      // All sites of the function share one signature class, and their
      // base predecessor is a function of the pred set — assume the D
      // values agree (they do by construction: sites share sig class and
      // pred sets are the same rets).
      BI.DRet = DFor(Addr, Block.RetSuccessors.front());
      BI.NeedDRet = true;
    }
  }
  return true;
}

const CfcssChecker::BlockInfo &CfcssChecker::info(uint64_t L) const {
  auto It = Infos.find(L);
  assert(It != Infos.end() &&
         "CFCSS emission for a block missing from prepare()");
  return It->second;
}

bool CfcssChecker::acceptsForgedReturn(uint64_t RetBlock,
                                       uint64_t Target) const {
  auto LIt = Infos.find(RetBlock);
  auto TIt = Infos.find(Target);
  if (LIt == Infos.end() || TIt == Infos.end())
    return false;
  const BlockInfo &LI = LIt->second;
  const BlockInfo &TI = TIt->second;
  // State at the corrupted return: G = s_RetBlock, D = DRet (established
  // by the indirect update). Replay the forged target's entry sequence.
  uint32_t D = LI.NeedDRet ? LI.DRet : 0;
  uint32_t G = LI.Sig ^ TI.Diff ^ (TI.FanIn ? D : 0);
  return G == TI.Sig;
}

void CfcssChecker::initState(CpuState &State, uint64_t) const {
  State.Regs[RegRTS] = EntrySig; // G
  State.Regs[RegPCP] = 0;        // D
}

void CfcssChecker::prologueImpl(std::vector<Instruction> &Out, uint64_t L,
                                bool DoCheck) const {
  const BlockInfo &BI = info(L);
  if (BI.Diff != 0)
    Out.push_back(insn::rri(Opcode::XorI, RegRTS, RegRTS,
                            static_cast<int32_t>(BI.Diff)));
  if (BI.FanIn)
    Out.push_back(insn::rrr(Opcode::Xor, RegRTS, RegRTS, RegPCP));
  if (DoCheck) {
    Out.push_back(insn::rri(Opcode::XorI, RegAUX, RegRTS,
                            static_cast<int32_t>(BI.Sig)));
    emitTrapUnlessZero(Out, RegAUX);
  }
}

void CfcssChecker::emitDPair(std::vector<Instruction> &Out,
                             const BlockInfo &BI, Opcode BranchOp,
                             uint8_t Reg, CondCode CC) const {
  // Establish D for a two-successor exit without clobbering flags.
  if (!BI.NeedDTaken && !BI.NeedDFall)
    return;
  if (BI.NeedDTaken && BI.NeedDFall && BI.DTaken == BI.DFall) {
    Out.push_back(
        insn::ri(Opcode::MovI, RegPCP, static_cast<int32_t>(BI.DTaken)));
    return;
  }
  if (BI.NeedDTaken != BI.NeedDFall) {
    // Only one successor needs D; set it unconditionally (the other
    // successor ignores D).
    uint32_t Value = BI.NeedDTaken ? BI.DTaken : BI.DFall;
    Out.push_back(insn::ri(Opcode::MovI, RegPCP,
                           static_cast<int32_t>(Value)));
    return;
  }
  // Both need distinct values: choose with a flag-neutral conditional.
  if (BranchOp == Opcode::Jcc) {
    Out.push_back(
        insn::ri(Opcode::MovI, RegPCP, static_cast<int32_t>(BI.DFall)));
    Out.push_back(
        insn::ri(Opcode::MovI, RegAUX, static_cast<int32_t>(BI.DTaken)));
    Out.push_back(insn::cmov(RegPCP, RegAUX, CC));
    return;
  }
  Out.push_back(
      insn::ri(Opcode::MovI, RegPCP, static_cast<int32_t>(BI.DFall)));
  emitSkipUnlessTaken(Out, BranchOp, Reg, CC);
  Out.push_back(
      insn::ri(Opcode::MovI, RegPCP, static_cast<int32_t>(BI.DTaken)));
}

void CfcssChecker::directUpdateImpl(std::vector<Instruction> &Out, uint64_t L,
                                    uint64_t Target) const {
  const BlockInfo &BI = info(L);
  if (BI.NeedDTaken && Target == BI.TakenAddr)
    Out.push_back(
        insn::ri(Opcode::MovI, RegPCP, static_cast<int32_t>(BI.DTaken)));
  else if (BI.NeedDFall && Target == BI.FallAddr)
    Out.push_back(
        insn::ri(Opcode::MovI, RegPCP, static_cast<int32_t>(BI.DFall)));
}

void CfcssChecker::condUpdateImpl(std::vector<Instruction> &Out, uint64_t L,
                                  CondCode CC, uint64_t, uint64_t) const {
  emitDPair(Out, info(L), Opcode::Jcc, 0, CC);
}

void CfcssChecker::regCondUpdateImpl(std::vector<Instruction> &Out,
                                     uint64_t L, Opcode BranchOp, uint8_t Reg,
                                     uint64_t, uint64_t) const {
  emitDPair(Out, info(L), BranchOp, Reg, CondCode::EQ);
}

void CfcssChecker::indirectUpdateImpl(std::vector<Instruction> &Out,
                                      uint64_t L, uint8_t) const {
  const BlockInfo &BI = info(L);
  if (BI.NeedDRet)
    Out.push_back(
        insn::ri(Opcode::MovI, RegPCP, static_cast<int32_t>(BI.DRet)));
}
