//===- DataFlow.cpp - SWIFT-style data-flow checking extension -----------------===//

#include "cfc/DataFlow.h"

#include "support/Diagnostics.h"
#include "vm/Interp.h"

using namespace cfed;
using namespace cfed::dfc;

namespace {

uint8_t shadowOf(uint8_t Reg) {
  assert(Reg < NumGuestIntRegs && "body instruction names a reserved reg");
  return shadowIntReg(Reg);
}

uint8_t fpShadowOf(uint8_t Reg) {
  assert(Reg < NumGuestFpRegs && "body instruction names a reserved freg");
  return shadowFpReg(Reg);
}

/// The duplicated form of \p I with every register operand moved into
/// shadow space, per the opcode's operand spec.
Instruction shadowed(const Instruction &I) {
  Instruction S = I;
  uint8_t *Fields[3] = {&S.A, &S.B, &S.C};
  unsigned FieldIndex = 0;
  for (const char *P = getOpcodeSpec(I.Op); *P; ++P) {
    switch (*P) {
    case 'r':
    case 'm':
      *Fields[FieldIndex] = shadowOf(*Fields[FieldIndex]);
      ++FieldIndex;
      break;
    case 'f':
      *Fields[FieldIndex] = fpShadowOf(*Fields[FieldIndex]);
      ++FieldIndex;
      break;
    case 'c':
      ++FieldIndex;
      break;
    case 'i':
      break;
    default:
      cfed_unreachable("bad operand spec character");
    }
  }
  return S;
}

/// Emits "trap unless Reg == its shadow". Clobbers FLAGS and AUX — legal
/// immediately before a store/output under the flags-across-stores
/// discipline.
void emitIntCheck(std::vector<Instruction> &Out, uint8_t Reg) {
  Out.push_back(insn::rrr(Opcode::Xor, RegAUX, Reg, shadowOf(Reg)));
  Out.push_back(
      insn::rri(Opcode::Jzr, RegAUX, 0, static_cast<int32_t>(InsnSize)));
  Out.push_back(insn::i(Opcode::Brk, BrkDataFlowError));
}

/// Emits "trap unless FReg == its shadow" (clobbers FLAGS).
void emitFpCheck(std::vector<Instruction> &Out, uint8_t FReg) {
  Out.push_back(insn::rr(Opcode::FCmp, FReg, fpShadowOf(FReg)));
  Out.push_back(insn::jcc(CondCode::EQ, static_cast<int32_t>(InsnSize)));
  Out.push_back(insn::i(Opcode::Brk, BrkDataFlowError));
}

} // namespace

Expansion cfed::dfc::expand(const Instruction &I) {
  Expansion E;
  switch (I.Op) {
  // Pure computations: run the shadow copy first (the original's FLAGS
  // result lands last, preserving guest semantics).
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::Sar:
  case Opcode::Mul:
  case Opcode::AddI:
  case Opcode::AndI:
  case Opcode::OrI:
  case Opcode::XorI:
  case Opcode::ShlI:
  case Opcode::ShrI:
  case Opcode::SarI:
  case Opcode::MulI:
  case Opcode::Lea:
  case Opcode::LeaR:
  case Opcode::Mov:
  case Opcode::MovI:
  case Opcode::MovHi:
  case Opcode::Neg:
  case Opcode::Not:
  case Opcode::SetCC:
  case Opcode::CMov:
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv:
  case Opcode::FMA:
  case Opcode::FSqrt:
  case Opcode::FAbs:
  case Opcode::FNeg:
  case Opcode::FMov:
  case Opcode::FMovI:
  case Opcode::IToF:
  case Opcode::FToI:
    E.Before.push_back(shadowed(I));
    return E;

  // Compares only produce FLAGS: branch checking is the control-flow
  // checkers' job, so no duplication (SWIFT does the same).
  case Opcode::Cmp:
  case Opcode::CmpI:
  case Opcode::Test:
  case Opcode::FCmp:
    return E;

  // Potentially trapping computations re-synchronize instead of running
  // twice, so a genuine guest div-by-zero traps at the original
  // instruction (keeping trap attribution to guest code).
  case Opcode::Div:
  case Opcode::Rem:
    E.After.push_back(insn::rr(Opcode::Mov, shadowOf(I.A), I.A));
    return E;

  // Loads trust memory (ECC in SWIFT's model): re-synchronize.
  case Opcode::Ld:
  case Opcode::LdB:
  case Opcode::Pop:
    E.After.push_back(insn::rr(Opcode::Mov, shadowOf(I.A), I.A));
    return E;
  case Opcode::FLd:
    E.After.push_back(insn::rr(Opcode::FMov, fpShadowOf(I.A), I.A));
    return E;

  // Egress points: validate both the data and the address against their
  // shadows before the value leaves the processor.
  case Opcode::St:
  case Opcode::StB:
    emitIntCheck(E.Before, I.A); // Address base.
    emitIntCheck(E.Before, I.B); // Stored value.
    return E;
  case Opcode::FSt:
    emitIntCheck(E.Before, I.A);
    emitFpCheck(E.Before, I.B);
    return E;
  case Opcode::Push:
  case Opcode::Out:
  case Opcode::OutC:
    emitIntCheck(E.Before, I.A);
    return E;

  case Opcode::Nop:
    return E;

  default:
    cfed_unreachable("terminator or DBT-internal opcode in a block body");
  }
}
