//===- Checker.cpp - Technique interface, names, policy, factory --------------===//

#include "cfc/Checker.h"

#include "cfc/Checkers.h"
#include "support/Diagnostics.h"

using namespace cfed;

ControlFlowChecker::~ControlFlowChecker() = default;

bool ControlFlowChecker::prepare(const Cfg &Graph) {
  (void)Graph;
  return true;
}

void ControlFlowChecker::bindMetrics(telemetry::MetricsRegistry &Registry) {
  std::string Prefix = std::string("cfc.") + name() + '.';
  CheckSigEmitted = &Registry.counter(Prefix + "check_sig_emitted");
  GenSigEmitted = &Registry.counter(Prefix + "gen_sig_emitted");
  InstrInsns = &Registry.counter(Prefix + "instr_insns");
}

void ControlFlowChecker::chargeEmission(telemetry::Counter *SigCounter,
                                        size_t Emitted) const {
  if (!Emitted || !InstrInsns)
    return;
  InstrInsns->inc(Emitted);
  if (SigCounter)
    SigCounter->inc();
}

void ControlFlowChecker::emitPrologue(std::vector<Instruction> &Out,
                                      uint64_t L, bool DoCheck) const {
  size_t Before = Out.size();
  prologueImpl(Out, L, DoCheck);
  chargeEmission(DoCheck ? CheckSigEmitted : nullptr, Out.size() - Before);
}

void ControlFlowChecker::emitDirectUpdate(std::vector<Instruction> &Out,
                                          uint64_t L, uint64_t Target) const {
  size_t Before = Out.size();
  directUpdateImpl(Out, L, Target);
  chargeEmission(GenSigEmitted, Out.size() - Before);
}

void ControlFlowChecker::emitCondUpdate(std::vector<Instruction> &Out,
                                        uint64_t L, CondCode CC,
                                        uint64_t Taken, uint64_t Fall) const {
  size_t Before = Out.size();
  condUpdateImpl(Out, L, CC, Taken, Fall);
  chargeEmission(GenSigEmitted, Out.size() - Before);
}

void ControlFlowChecker::emitRegCondUpdate(std::vector<Instruction> &Out,
                                           uint64_t L, Opcode BranchOp,
                                           uint8_t Reg, uint64_t Taken,
                                           uint64_t Fall) const {
  size_t Before = Out.size();
  regCondUpdateImpl(Out, L, BranchOp, Reg, Taken, Fall);
  chargeEmission(GenSigEmitted, Out.size() - Before);
}

void ControlFlowChecker::emitIndirectUpdate(std::vector<Instruction> &Out,
                                            uint64_t L,
                                            uint8_t TargetReg) const {
  size_t Before = Out.size();
  indirectUpdateImpl(Out, L, TargetReg);
  chargeEmission(GenSigEmitted, Out.size() - Before);
}

const char *cfed::getTechniqueName(Technique T) {
  switch (T) {
  case Technique::None:
    return "None";
  case Technique::Cfcss:
    return "CFCSS";
  case Technique::Ecca:
    return "ECCA";
  case Technique::Ecf:
    return "ECF";
  case Technique::EdgCf:
    return "EdgCF";
  case Technique::Rcf:
    return "RCF";
  }
  cfed_unreachable("covered switch");
}

const char *cfed::getUpdateFlavorName(UpdateFlavor Flavor) {
  return Flavor == UpdateFlavor::Jcc ? "Jcc" : "CMOVcc";
}

const char *cfed::getCheckPolicyName(CheckPolicy Policy) {
  switch (Policy) {
  case CheckPolicy::AllBB:
    return "ALLBB";
  case CheckPolicy::RetBE:
    return "RET-BE";
  case CheckPolicy::Ret:
    return "RET";
  case CheckPolicy::End:
    return "END";
  case CheckPolicy::StoreBB:
    return "STORE";
  }
  cfed_unreachable("covered switch");
}

bool cfed::opcodeStoresMemory(Opcode Op) {
  switch (Op) {
  case Opcode::St:
  case Opcode::StB:
  case Opcode::FSt:
  case Opcode::Push:
  case Opcode::Call:
  case Opcode::CallR:
    return true;
  default:
    return false;
  }
}

bool cfed::policyChecksBlock(CheckPolicy Policy, OpKind TermKind,
                             bool HasBackEdge, bool HasStore) {
  // Every policy checks at the end of the application so that the final
  // signature state is validated at least once (the END policy's one
  // check).
  if (TermKind == OpKind::Halt)
    return true;
  switch (Policy) {
  case CheckPolicy::AllBB:
    return true;
  case CheckPolicy::RetBE:
    return TermKind == OpKind::Ret || HasBackEdge;
  case CheckPolicy::Ret:
    return TermKind == OpKind::Ret;
  case CheckPolicy::End:
    return false;
  case CheckPolicy::StoreBB:
    return HasStore;
  }
  cfed_unreachable("covered switch");
}

std::unique_ptr<ControlFlowChecker> cfed::createChecker(Technique T,
                                                        UpdateFlavor Flavor) {
  switch (T) {
  case Technique::None:
    return std::make_unique<NoneChecker>();
  case Technique::Cfcss:
    return std::make_unique<CfcssChecker>();
  case Technique::Ecca:
    return std::make_unique<EccaChecker>();
  case Technique::Ecf:
    return std::make_unique<EcfChecker>(Flavor);
  case Technique::EdgCf:
    return std::make_unique<EdgCfChecker>(Flavor);
  case Technique::Rcf:
    return std::make_unique<RcfChecker>(Flavor);
  }
  cfed_unreachable("covered switch");
}
