//===- Checker.cpp - Technique interface, names, policy, factory --------------===//

#include "cfc/Checker.h"

#include "cfc/Checkers.h"
#include "support/Diagnostics.h"

using namespace cfed;

ControlFlowChecker::~ControlFlowChecker() = default;

bool ControlFlowChecker::prepare(const Cfg &Graph) {
  (void)Graph;
  return true;
}

void ControlFlowChecker::bindMetrics(telemetry::MetricsRegistry &Registry) {
  std::string Prefix = std::string("cfc.") + name() + '.';
  CheckSigEmitted = &Registry.counter(Prefix + "check_sig_emitted");
  GenSigEmitted = &Registry.counter(Prefix + "gen_sig_emitted");
  InstrInsns = &Registry.counter(Prefix + "instr_insns");
}

void ControlFlowChecker::chargeEmission(telemetry::Counter *SigCounter,
                                        size_t Emitted) const {
  if (!Emitted || !InstrInsns)
    return;
  InstrInsns->inc(Emitted);
  if (SigCounter)
    SigCounter->inc();
}

namespace {

uint8_t shadowSigReg(uint8_t Reg) {
  if (Reg == RegPCP)
    return RegPCPShadow;
  if (Reg == RegRTS)
    return RegRTSShadow;
  return Reg;
}

/// Renames PCP/RTS to their shadow registers in \p I's register operands.
/// Spec-aware: fields bind to A/B/C in order of appearance, 'i' consumes
/// no field, and fp/condition fields are skipped.
Instruction substituteShadowRegs(Instruction I) {
  uint8_t *Fields[3] = {&I.A, &I.B, &I.C};
  unsigned FieldIndex = 0;
  for (const char *P = getOpcodeSpec(I.Op); *P; ++P) {
    switch (*P) {
    case 'r':
    case 'm':
      *Fields[FieldIndex] = shadowSigReg(*Fields[FieldIndex]);
      ++FieldIndex;
      break;
    case 'f':
    case 'c':
      ++FieldIndex;
      break;
    default:
      break;
    }
  }
  return I;
}

} // namespace

void ControlFlowChecker::seedShadowState(CpuState &State) const {
  State.Regs[RegPCPShadow] = State.Regs[RegPCP];
  State.Regs[RegRTSShadow] = State.Regs[RegRTS];
}

void ControlFlowChecker::appendShadowCopy(std::vector<Instruction> &Out,
                                          size_t Begin) const {
  size_t End = Out.size();
  Out.reserve(End + (End - Begin));
  for (size_t I = Begin; I < End; ++I) {
    Instruction Copy = substituteShadowRegs(Out[I]);
    // A duplicated check sequence traps on the *shadow* value: if it
    // fires while the primary check passed, the shadow diverged — that
    // is monitor corruption (0x5EC), never a guest CFE. Primary flips
    // are caught earlier by the cross-check, so 0xCFE stays reserved
    // for faults in the guest's own control flow.
    if (Copy.Op == Opcode::Brk && Copy.Imm == BrkControlFlowError)
      Copy.Imm = BrkMonitorCorruption;
    Out.push_back(Copy);
  }
}

void ControlFlowChecker::emitCrossCheck(std::vector<Instruction> &Out) const {
  auto CheckPair = [&Out](uint8_t Primary, uint8_t Shadow) {
    // AUX = Primary - Shadow via two's complement: the ISA has no
    // flag-neutral register subtract, and FLAGS are live at block entry.
    Out.push_back(insn::rr(Opcode::Not, RegAUX, Shadow));
    Out.push_back(insn::rri(Opcode::Lea, RegAUX, RegAUX, 1));
    Out.push_back(insn::rrr(Opcode::LeaR, RegAUX, Primary, RegAUX));
    Out.push_back(insn::rri(Opcode::Jzr, RegAUX, 0,
                            static_cast<int32_t>(InsnSize)));
    Out.push_back(insn::i(Opcode::Brk, BrkMonitorCorruption));
  };
  CheckPair(RegPCP, RegPCPShadow);
  CheckPair(RegRTS, RegRTSShadow);
}

void ControlFlowChecker::emitPrologue(std::vector<Instruction> &Out,
                                      uint64_t L, bool DoCheck) const {
  size_t Before = Out.size();
  // The cross-check precedes the technique's own check so that a flipped
  // signature register reports 0x5EC (monitor corruption), never 0xCFE.
  if (ShadowSig && DoCheck)
    emitCrossCheck(Out);
  size_t Primary = Out.size();
  prologueImpl(Out, L, DoCheck);
  if (ShadowSig)
    appendShadowCopy(Out, Primary);
  chargeEmission(DoCheck ? CheckSigEmitted : nullptr, Out.size() - Before);
}

void ControlFlowChecker::emitDirectUpdate(std::vector<Instruction> &Out,
                                          uint64_t L, uint64_t Target) const {
  size_t Before = Out.size();
  directUpdateImpl(Out, L, Target);
  if (ShadowSig)
    appendShadowCopy(Out, Before);
  chargeEmission(GenSigEmitted, Out.size() - Before);
}

void ControlFlowChecker::emitCondUpdate(std::vector<Instruction> &Out,
                                        uint64_t L, CondCode CC,
                                        uint64_t Taken, uint64_t Fall) const {
  size_t Before = Out.size();
  condUpdateImpl(Out, L, CC, Taken, Fall);
  if (ShadowSig)
    appendShadowCopy(Out, Before);
  chargeEmission(GenSigEmitted, Out.size() - Before);
}

void ControlFlowChecker::emitRegCondUpdate(std::vector<Instruction> &Out,
                                           uint64_t L, Opcode BranchOp,
                                           uint8_t Reg, uint64_t Taken,
                                           uint64_t Fall) const {
  size_t Before = Out.size();
  regCondUpdateImpl(Out, L, BranchOp, Reg, Taken, Fall);
  if (ShadowSig)
    appendShadowCopy(Out, Before);
  chargeEmission(GenSigEmitted, Out.size() - Before);
}

void ControlFlowChecker::emitIndirectUpdate(std::vector<Instruction> &Out,
                                            uint64_t L,
                                            uint8_t TargetReg) const {
  size_t Before = Out.size();
  indirectUpdateImpl(Out, L, TargetReg);
  if (ShadowSig)
    appendShadowCopy(Out, Before);
  chargeEmission(GenSigEmitted, Out.size() - Before);
}

const char *cfed::getTechniqueName(Technique T) {
  switch (T) {
  case Technique::None:
    return "None";
  case Technique::Cfcss:
    return "CFCSS";
  case Technique::Ecca:
    return "ECCA";
  case Technique::Ecf:
    return "ECF";
  case Technique::EdgCf:
    return "EdgCF";
  case Technique::Rcf:
    return "RCF";
  }
  cfed_unreachable("covered switch");
}

const char *cfed::getUpdateFlavorName(UpdateFlavor Flavor) {
  return Flavor == UpdateFlavor::Jcc ? "Jcc" : "CMOVcc";
}

const char *cfed::getCheckPolicyName(CheckPolicy Policy) {
  switch (Policy) {
  case CheckPolicy::AllBB:
    return "ALLBB";
  case CheckPolicy::RetBE:
    return "RET-BE";
  case CheckPolicy::Ret:
    return "RET";
  case CheckPolicy::End:
    return "END";
  case CheckPolicy::StoreBB:
    return "STORE";
  }
  cfed_unreachable("covered switch");
}

bool cfed::opcodeStoresMemory(Opcode Op) {
  switch (Op) {
  case Opcode::St:
  case Opcode::StB:
  case Opcode::FSt:
  case Opcode::Push:
  case Opcode::Call:
  case Opcode::CallR:
    return true;
  default:
    return false;
  }
}

bool cfed::policyChecksBlock(CheckPolicy Policy, OpKind TermKind,
                             bool HasBackEdge, bool HasStore) {
  // Every policy checks at the end of the application so that the final
  // signature state is validated at least once (the END policy's one
  // check).
  if (TermKind == OpKind::Halt)
    return true;
  switch (Policy) {
  case CheckPolicy::AllBB:
    return true;
  case CheckPolicy::RetBE:
    return TermKind == OpKind::Ret || HasBackEdge;
  case CheckPolicy::Ret:
    return TermKind == OpKind::Ret;
  case CheckPolicy::End:
    return false;
  case CheckPolicy::StoreBB:
    return HasStore;
  }
  cfed_unreachable("covered switch");
}

std::unique_ptr<ControlFlowChecker> cfed::createChecker(Technique T,
                                                        UpdateFlavor Flavor) {
  switch (T) {
  case Technique::None:
    return std::make_unique<NoneChecker>();
  case Technique::Cfcss:
    return std::make_unique<CfcssChecker>();
  case Technique::Ecca:
    return std::make_unique<EccaChecker>();
  case Technique::Ecf:
    return std::make_unique<EcfChecker>(Flavor);
  case Technique::EdgCf:
    return std::make_unique<EdgCfChecker>(Flavor);
  case Technique::Rcf:
    return std::make_unique<RcfChecker>(Flavor);
  }
  cfed_unreachable("covered switch");
}
