//===- CodeBuilder.h - Backend instruction buffer (internal) ----*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The translation buffer the frontend emits into, with the backend's
/// peephole built in: adjacent flag-neutral signature updates
/// (lea r, r, imm pairs on the same register) are folded into one
/// instruction when enabled. Folding is suppressed
///
///   * across explicit barriers (block entry points that chained jumps
///     may target), and
///   * for the instruction following a one-instruction skip branch
///     (jcc/jzr/jnzr with offset +8): merging the conditionally skipped
///     update with its successor would change which updates the skip
///     covers.
///
/// Folding is semantically legal for signature code because the algebra
/// only requires the signature to be *checked* between updates, never
/// observed — the same slack the relaxed checking policies exploit.
///
//===----------------------------------------------------------------------===//

#ifndef CFED_DBT_CODEBUILDER_H
#define CFED_DBT_CODEBUILDER_H

#include "isa/Isa.h"

#include <cstdint>
#include <vector>

namespace cfed {

class CodeBuilder {
public:
  explicit CodeBuilder(bool FoldUpdates) : Fold(FoldUpdates) {}

  /// Appends \p I, possibly folding it into the previous instruction.
  void push(const Instruction &I) {
    bool Folded = false;
    if (Fold && !PendingBarrier && canFoldInto(I)) {
      Code.back().Imm += I.Imm;
      Folded = true;
      ++NumFolded;
    } else {
      Code.push_back(I);
    }
    PendingBarrier = false;
    if (isSkipBranch(I)) {
      SkippedNext = true;
    } else if (SkippedNext) {
      // This instruction is the conditionally skipped one; the next must
      // not be folded into it.
      SkippedNext = false;
      PendingBarrier = true;
    }
    (void)Folded;
  }

  /// Marks the next pushed instruction as a jump target: it must exist at
  /// its own position and cannot fold into its predecessor.
  void markBarrier() { PendingBarrier = true; }

  size_t size() const { return Code.size(); }
  const std::vector<Instruction> &code() const { return Code; }
  uint64_t foldedCount() const { return NumFolded; }

private:
  bool canFoldInto(const Instruction &I) const {
    if (Code.empty())
      return false;
    const Instruction &Prev = Code.back();
    if (I.Op != Opcode::Lea || Prev.Op != Opcode::Lea)
      return false;
    if (I.A != I.B || Prev.A != Prev.B || I.A != Prev.A)
      return false;
    int64_t Sum = static_cast<int64_t>(Prev.Imm) + I.Imm;
    return Sum >= INT32_MIN && Sum <= INT32_MAX;
  }

  static bool isSkipBranch(const Instruction &I) {
    switch (getOpcodeKind(I.Op)) {
    case OpKind::CondJump:
    case OpKind::RegZeroJump:
      return I.Imm == static_cast<int32_t>(InsnSize);
    default:
      return false;
    }
  }

  std::vector<Instruction> Code;
  bool Fold;
  bool PendingBarrier = false;
  bool SkippedNext = false;
  uint64_t NumFolded = 0;
};

} // namespace cfed

#endif // CFED_DBT_CODEBUILDER_H
