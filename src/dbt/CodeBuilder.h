//===- CodeBuilder.h - Backend instruction buffer (internal) ----*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The translation buffer the frontend emits into, with the backend's
/// peephole built in. When folding is enabled, a signature update
/// (lea r, r, imm) merges into the nearest earlier update of the same
/// register, looking back through a small window of instructions that
/// neither touch the register nor transfer control (profiling bumps,
/// nops, and disjoint flag-neutral moves/updates — the shapes the
/// checkers interleave between a block's exit update and its successor's
/// entry update). Folding is suppressed
///
///   * across explicit barriers (block entry points that chained jumps
///     may target),
///   * for the instruction following a one-instruction skip branch
///     (jcc/jzr/jnzr with offset +8): merging the conditionally skipped
///     update with its successor would change which updates the skip
///     covers, and
///   * across any control-flow instruction (the lookback stops there),
///     so updates never migrate past a check, a branch, or an exit.
///
/// Two cleanups ride on the fold machinery: an update whose immediate
/// folds to zero is a dead update and is rewritten to a nop in place
/// (positions of already-emitted instructions never move), and
/// `movi r, k; lea r, r, d` strength-reduces to `movi r, k+d`.
///
/// Folding is semantically legal for signature code because the algebra
/// only requires the signature to be *checked* between updates, never
/// observed — the same slack the relaxed checking policies exploit.
///
//===----------------------------------------------------------------------===//

#ifndef CFED_DBT_CODEBUILDER_H
#define CFED_DBT_CODEBUILDER_H

#include "isa/Isa.h"

#include <cstdint>
#include <vector>

namespace cfed {

class CodeBuilder {
public:
  explicit CodeBuilder(bool FoldUpdates) : Fold(FoldUpdates) {}

  /// Appends \p I, possibly folding it into an earlier instruction.
  void push(const Instruction &I) {
    if (Fold && !PendingBarrier && tryFold(I)) {
      PendingBarrier = false;
      // A folded instruction occupies no position, so the skip-branch
      // bookkeeping is unchanged: a skip branch is never a fold
      // candidate, and the skipped successor is barrier-protected.
      return;
    }
    // An update that is already the identity contributes nothing but a
    // cycle; emit a nop in its place so positions stay stable.
    if (Fold && isSelfUpdate(I) && I.Imm == 0) {
      Code.push_back(insn::none(Opcode::Nop));
      ++NumDead;
    } else {
      Code.push_back(I);
    }
    PendingBarrier = false;
    if (isSkipBranch(I)) {
      SkippedNext = true;
    } else if (SkippedNext) {
      // This instruction is the conditionally skipped one; the next must
      // not be folded into it, and no fold may reach past it.
      SkippedNext = false;
      PendingBarrier = true;
      FoldFloor = Code.size();
    }
  }

  /// Marks the next pushed instruction as a jump target: it must exist at
  /// its own position and cannot fold into its predecessor. Later
  /// updates may still fold *into* it, but never past it.
  void markBarrier() {
    PendingBarrier = true;
    FoldFloor = Code.size();
  }

  size_t size() const { return Code.size(); }
  const std::vector<Instruction> &code() const { return Code; }
  uint64_t foldedCount() const { return NumFolded; }
  /// Updates that folded to the identity and were rewritten to nops.
  uint64_t deadCount() const { return NumDead; }

private:
  /// How far back a fold may look for a matching update.
  static constexpr size_t LookbackWindow = 6;

  static bool isSelfUpdate(const Instruction &I) {
    return I.Op == Opcode::Lea && I.A == I.B;
  }

  /// True when \p P neither reads nor writes \p Reg and has no control
  /// or memory effect — a fold may look back through it.
  static bool isTransparentFor(const Instruction &P, uint8_t Reg) {
    switch (P.Op) {
    case Opcode::Nop:
    case Opcode::Prof:
      return true;
    case Opcode::Digest:
      // A digest marker reads every guest-visible register, so folding a
      // guest self-update across it would change the captured digest;
      // the monitor's reserved registers are not digested and may fold
      // freely past it.
      return Reg >= FirstReservedReg;
    case Opcode::Lea: // lea A, B, imm: writes A, reads B.
    case Opcode::Mov: // mov A, B: writes A, reads B.
      return P.A != Reg && P.B != Reg;
    case Opcode::MovI: // movi/movhi A, imm: writes A.
    case Opcode::MovHi:
      return P.A != Reg;
    default:
      return false;
    }
  }

  /// Attempts to fold \p I into an earlier instruction. Returns true
  /// when \p I was absorbed and must not be appended.
  bool tryFold(const Instruction &I) {
    if (!isSelfUpdate(I))
      return false;
    size_t Steps = 0;
    for (size_t Pos = Code.size(); Pos > FoldFloor && Steps < LookbackWindow;
         --Pos, ++Steps) {
      Instruction &Prev = Code[Pos - 1];
      if (isSelfUpdate(Prev) && Prev.A == I.A) {
        int64_t Sum = static_cast<int64_t>(Prev.Imm) + I.Imm;
        if (Sum < INT32_MIN || Sum > INT32_MAX)
          return false;
        Prev.Imm = static_cast<int32_t>(Sum);
        ++NumFolded;
        if (Prev.Imm == 0) {
          // The pair cancelled: the earlier update is now dead weight.
          Prev = insn::none(Opcode::Nop);
          ++NumDead;
        }
        return true;
      }
      // Strength reduction: movi r, k directly below the update absorbs
      // it (movi sign-extends, so the merged constant must stay in
      // range — guaranteed by the same sum check).
      if (Pos == Code.size() && Prev.Op == Opcode::MovI && Prev.A == I.A) {
        int64_t Sum = static_cast<int64_t>(Prev.Imm) + I.Imm;
        if (Sum < INT32_MIN || Sum > INT32_MAX)
          return false;
        Prev.Imm = static_cast<int32_t>(Sum);
        ++NumFolded;
        return true;
      }
      if (!isTransparentFor(Prev, I.A))
        return false;
    }
    return false;
  }

  static bool isSkipBranch(const Instruction &I) {
    switch (getOpcodeKind(I.Op)) {
    case OpKind::CondJump:
    case OpKind::RegZeroJump:
      return I.Imm == static_cast<int32_t>(InsnSize);
    default:
      return false;
    }
  }

  std::vector<Instruction> Code;
  bool Fold;
  bool PendingBarrier = false;
  bool SkippedNext = false;
  /// Folds may not reach instructions below this position (set at
  /// barriers and after conditionally skipped instructions).
  size_t FoldFloor = 0;
  uint64_t NumFolded = 0;
  uint64_t NumDead = 0;
};

} // namespace cfed

#endif // CFED_DBT_CODEBUILDER_H
