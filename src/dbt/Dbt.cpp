//===- Dbt.cpp - Dynamic binary translator --------------------------------------===//

#include "dbt/Dbt.h"

#include "cfc/DataFlow.h"
#include "cfg/Cfg.h"
#include "dbt/CodeBuilder.h"
#include "isa/Disasm.h"
#include "support/Diagnostics.h"
#include "support/Format.h"
#include "vm/Layout.h"
#include "vm/Loader.h"

#include <algorithm>
#include <set>

using namespace cfed;

namespace {
/// Largest number of guest instructions fused into one dynamic block.
constexpr size_t MaxBlockInsns = 4096;
} // namespace

const char *cfed::getDbtTierName(DbtTier Tier) {
  switch (Tier) {
  case DbtTier::Base:
    return "base";
  case DbtTier::Opt:
    return "opt";
  }
  return "?";
}

Dbt::Dbt(Memory &Mem, DbtConfig Config, telemetry::MetricsRegistry *Metrics)
    : Mem(Mem), Config(Config),
      OwnedMetrics(Metrics ? nullptr
                           : std::make_unique<telemetry::MetricsRegistry>()),
      Metrics(Metrics ? Metrics : OwnedMetrics.get()), CacheAlloc(CacheBase),
      Translations(this->Metrics->counter("dbt.translations")),
      Dispatches(this->Metrics->counter("dbt.dispatches")),
      Chains(this->Metrics->counter("dbt.chains")),
      IbtcHits(this->Metrics->counter("dbt.ibtc_hits")),
      IbtcMisses(this->Metrics->counter("dbt.ibtc_misses")),
      Flushes(this->Metrics->counter("dbt.flushes")),
      FoldedUpdates(this->Metrics->counter("dbt.folded_updates")),
      SuperblockFusions(this->Metrics->counter("dbt.superblock_fusions")),
      Degrades(this->Metrics->counter("dbt.degrades")),
      IntegrityScrubs(this->Metrics->counter("integrity.scrubs")),
      IntegrityMismatches(this->Metrics->counter("integrity.mismatches")),
      IntegrityRetranslations(
          this->Metrics->counter("integrity.retranslations")),
      TracePromotions(this->Metrics->counter("trace.promotions")),
      TracesFormed(this->Metrics->counter("trace.formed")),
      TraceCondFusions(this->Metrics->counter("trace.cond_fusions")),
      TraceChecksElided(this->Metrics->counter("trace.checks_elided")),
      TraceDeadUpdates(this->Metrics->counter("trace.dead_updates")) {
  Checker = createChecker(Config.Tech, Config.Flavor);
  Checker->setShadowSignature(this->Config.ShadowSignature);
  Checker->bindMetrics(*this->Metrics);
  // Bound lazily so registries of shadow-stack-off runs stay identical
  // to their pre-adversarial-mode shape (campaign outputs are compared
  // byte-for-byte in CI).
  if (this->Config.ShadowStack)
    ShadowStack.bindMetrics(*this->Metrics);
}

Dbt::~Dbt() = default;

bool Dbt::load(const AsmProgram &Program, CpuState &State) {
  LoadError.clear();
  if (Checker->requiresWholeProgramCfg() && !Config.EagerTranslate) {
    // The paper's on-demand limitation (Section 5).
    LoadError = "technique requires whole-program CFG but eager translation "
                "is off";
    return false;
  }

  // The optimizing tier re-forms hot units from profile data, which the
  // frozen translation set of eager mode cannot accommodate.
  if (Config.EagerTranslate)
    Config.Tier = DbtTier::Base;
  if (Config.Tier == DbtTier::Opt && !Profile) {
    OwnedProfile = std::make_unique<telemetry::BlockProfile>();
    Profile = OwnedProfile.get();
  }

  GuestCodeBase = CodeBase;
  GuestCodeSize = Program.Code.size();
  GuestEntry = Program.Entry;
  if (!loadProgramChecked(Program, LoadMode::Translated, Mem, State,
                          LoadError))
    return false;

  if (Config.EagerTranslate) {
    Cfg Graph = Cfg::build(Program.Code.data(), Program.Code.size(),
                           CodeBase, Program.Entry, Program.CodeLabels);
    if (!Checker->prepare(Graph)) {
      LoadError = "checker cannot instrument this program (indirect "
                  "control flow outside the static CFG)";
      return false;
    }
    EagerLeaders.clear();
    for (const auto &[Addr, Block] : Graph.blocks())
      EagerLeaders.push_back(Addr);
    for (uint64_t Leader : EagerLeaders)
      if (!BlockMap.contains(Leader))
        translate(Leader);
  }

  Checker->initState(State, GuestEntry);
  if (Config.ShadowSignature)
    Checker->seedShadowState(State);
  if (Config.ShadowStack) {
    // The ring sits below CacheBase so the recovery manager's write
    // observer journals it: rollback restores ring contents together
    // with RegSSP, keeping the shadow stack checkpoint-consistent.
    Mem.mapRegion(ShadowStackBase, ShadowStackBytes, PermRW);
    ShadowStack.initState(State);
  }
  State.PC = lookupOrTranslate(GuestEntry);
  return true;
}

StopInfo Dbt::run(Interpreter &Interp, uint64_t MaxInsns) {
  Interp.setDbtHooks(this);
  if (Profile)
    Interp.setBlockProfile(Profile);
  if (DigestRec) {
    DigestRec->setMode(telemetry::DigestRecorder::Mode::Marker);
    Interp.setDigestRecorder(DigestRec);
  }
  ClockSource = &Interp;
  // Execute encloses the run: translate time spent servicing exits is
  // charged to both, so exclusive execute time is execute - translate.
  telemetry::PhaseProfiler::Scope Timer(Profiler,
                                        telemetry::Phase::Execute);
  return Interp.run(MaxInsns);
}

void Dbt::reprotectCodePages() {
  if (!CodePagesWritable)
    return;
  Mem.setPerms(GuestCodeBase, GuestCodeSize, PermR);
  CodePagesWritable = false;
}

uint64_t Dbt::lookupOrTranslate(uint64_t GuestTarget) {
  if (const TranslatedBlock *TB = BlockMap.find(GuestTarget))
    return TB->CacheAddr;
  // Eager mode translated the whole program up front; the translation
  // set is frozen because the whole-program techniques (CFCSS/ECCA)
  // assigned signatures from the static CFG. A miss on a static leader
  // can only mean the cache was flushed (degradation rollback) — the
  // signature assignment is still valid, so retranslate it. Any other
  // miss is an erroneous target: execute it raw and let the page
  // protection trap.
  if (Config.EagerTranslate) {
    if (std::binary_search(EagerLeaders.begin(), EagerLeaders.end(),
                           GuestTarget))
      return translate(GuestTarget);
    return GuestTarget;
  }
  // Only instruction-aligned targets inside the code segment are
  // translatable; anything else executes raw and traps on the guest's
  // non-executable pages (the hardware category-F detector).
  if (GuestTarget < GuestCodeBase ||
      GuestTarget >= GuestCodeBase + GuestCodeSize ||
      (GuestTarget - GuestCodeBase) % InsnSize != 0)
    return GuestTarget;
  return translate(GuestTarget);
}

uint64_t Dbt::translate(uint64_t EntryGuest) {
  reprotectCodePages();
  Translations.inc();
  telemetry::PhaseProfiler::Scope Timer(Profiler,
                                        telemetry::Phase::Translate);

  // Promoted translations always run the folding backend: their inner
  // sub-blocks are never registered as chain targets, so the spine can
  // fold freely across seams.
  CodeBuilder Builder(Config.FoldSignatureUpdates || Promoting);
  struct SubBlock {
    uint64_t Guest = 0;
    size_t StartIdx = 0;
    std::vector<std::pair<size_t, size_t>> InstrIdx;
    bool Checked = false;
    uint64_t GuestEnd = 0;
    uint64_t GuestInsns = 0;
  };
  std::vector<SubBlock> Subs;
  std::set<uint64_t> InThisSuper;
  uint32_t CondSeamsFormed = 0;

  // Once the attached profile has observed executions, superblock fusion
  // extends only into blocks it knows to be hot; until it warms up,
  // first-seen order stands in for hotness.
  const bool ProfileWarm = Profile && Profile->hasExecutions();
  // Promoted traces may fuse past the superblock cap, up to the trace
  // limit, and may tail-duplicate already-translated successors.
  const unsigned FuseLimit =
      Promoting ? std::max(Config.SuperblockLimit, Config.TraceLimit)
                : Config.SuperblockLimit;
  // Adaptive per-region check placement: one policy per translation
  // unit, decided from the unit head's measured hotness.
  const CheckPolicy RegionPol = regionPolicy(EntryGuest);
  auto WantsFusion = [&](uint64_t Target) {
    return !Profile || !ProfileWarm || Profile->isHot(Target);
  };
  auto CanFuseInto = [&](uint64_t Target) {
    if (Target == EntryGuest || InThisSuper.count(Target))
      return false;
    if (Target < GuestCodeBase || Target >= GuestCodeBase + GuestCodeSize ||
        (Target - GuestCodeBase) % InsnSize != 0)
      return false;
    if (!Promoting && BlockMap.contains(Target))
      return false;
    return WantsFusion(Target);
  };
  auto EmitEdgeProf = [&](uint64_t From, uint64_t To) {
    if (Profile)
      Builder.push(insn::i(
          Opcode::Prof, static_cast<int32_t>(Profile->edgeSlot(From, To))));
  };

  uint64_t Guest = EntryGuest;
  unsigned Fused = 0;
  bool Done = false;
  while (!Done) {
    // Decode the dynamic block entered at Guest.
    std::vector<Instruction> Body;
    bool HasTerm = false;
    uint64_t Addr = Guest;
    uint64_t BlockLimit = GuestCodeBase + GuestCodeSize;
    if (Config.EagerTranslate) {
      // Stop at the next static leader so eager blocks match the CFG.
      auto Next = std::upper_bound(EagerLeaders.begin(), EagerLeaders.end(),
                                   Guest);
      if (Next != EagerLeaders.end())
        BlockLimit = *Next;
    }
    while (Addr + InsnSize <= GuestCodeBase + GuestCodeSize &&
           Addr < BlockLimit && Body.size() < MaxBlockInsns) {
      uint8_t Raw[InsnSize];
      Mem.readRaw(Addr, Raw, InsnSize);
      auto I = Instruction::decode(Raw);
      if (!I)
        break;
      Body.push_back(*I);
      Addr += InsnSize;
      if (isBlockTerminator(I->Op)) {
        HasTerm = true;
        break;
      }
    }
    if (Body.empty()) {
      if (Subs.empty())
        return EntryGuest; // Undecodable entry: execute raw and trap.
      Builder.push(insn::i(Opcode::Tramp,
                           static_cast<int32_t>(EntryGuest)));
      break;
    }

    uint64_t L = Guest;
    const Instruction *Term = HasTerm ? &Body.back() : nullptr;
    uint64_t TermAddr = Addr - InsnSize;
    OpKind TermKind = Term ? getOpcodeKind(Term->Op) : OpKind::None;
    bool BackEdge = Term && hasBranchOffset(Term->Op) &&
                    Term->branchTarget(TermAddr) <= L;
    bool HasStore = false;
    for (const Instruction &I : Body)
      if (opcodeStoresMemory(I.Op))
        HasStore = true;
    bool DoCheck =
        policyChecksBlock(RegionPol, TermKind, BackEdge, HasStore);
    if (RegionPol != Config.Policy && !DoCheck &&
        policyChecksBlock(Config.Policy, TermKind, BackEdge, HasStore))
      TraceChecksElided.inc();

    // Inner sub-blocks stay chain targets unless folding may merge their
    // entry instruction away (then they are not registered at all).
    // Promoted traces never register inner sub-blocks, so no barrier.
    if (!Config.FoldSignatureUpdates && !Promoting)
      Builder.markBarrier();
    Subs.push_back(SubBlock{Guest, Builder.size(), {}, DoCheck, Addr,
                            Body.size()});
    SubBlock &Sub = Subs.back();
    // The counter bump leads the prologue so that chained jumps (which
    // land on StartIdx) are attributed too.
    if (Profile)
      Builder.push(insn::i(Opcode::Prof,
                           static_cast<int32_t>(Profile->blockSlot(Guest))));

    auto EmitChecked = [&](auto EmitFn) {
      std::vector<Instruction> Seq;
      EmitFn(Seq);
      size_t Begin = Builder.size();
      for (const Instruction &I : Seq)
        Builder.push(I);
      Sub.InstrIdx.emplace_back(Begin, Builder.size());
    };

    EmitChecked([&](std::vector<Instruction> &Seq) {
      Checker->emitPrologue(Seq, L, DoCheck);
    });
    size_t BodyCount = Body.size() - (Term ? 1 : 0);
    for (size_t I = 0; I < BodyCount; ++I) {
      if (!Config.DataFlowCheck) {
        Builder.push(Body[I]);
        continue;
      }
      dfc::Expansion Expanded = dfc::expand(Body[I]);
      EmitChecked([&](std::vector<Instruction> &Seq) {
        Seq = std::move(Expanded.Before);
      });
      Builder.push(Body[I]);
      EmitChecked([&](std::vector<Instruction> &Seq) {
        Seq = std::move(Expanded.After);
      });
    }

    auto EmitTramp = [&](uint64_t Target) {
      Builder.push(insn::i(Opcode::Tramp, static_cast<int32_t>(Target)));
    };

    // One digest marker per sub-block, after the guest body and before
    // the checker's exit updates and the terminator lowering: the
    // captured state matches what the native interpreter sees at the
    // top of the terminator's handler, for every tier and fusion shape.
    // Seams with no terminator (fell into a leader or the size cap)
    // have no native transfer event, so their marker only advances the
    // retired-instruction key past the body.
    if (DigestRec) {
      bool CaptureHere = TermKind != OpKind::None;
      // The record's Checked bit means "a signature check actually runs
      // here": under Technique::None the policy still nominates blocks
      // but the checker emits nothing, so no boundary is checked.
      bool CheckRuns = DoCheck && Config.Tech != Technique::None;
      uint32_t Slot = DigestRec->defineMarker(
          static_cast<uint32_t>(BodyCount), TermAddr, CaptureHere, CheckRuns);
      Builder.push(insn::i(Opcode::Digest, static_cast<int32_t>(Slot)));
    }

    switch (TermKind) {
    case OpKind::None: { // Fell into a leader / block-size cap.
      uint64_t Target = Addr;
      EmitChecked([&](std::vector<Instruction> &Seq) {
        Checker->emitDirectUpdate(Seq, L, Target);
      });
      EmitEdgeProf(L, Target);
      if (Fused + 1 < FuseLimit && CanFuseInto(Target)) {
        InThisSuper.insert(Guest);
        Guest = Target;
        ++Fused;
        SuperblockFusions.inc();
        continue;
      }
      EmitTramp(Target);
      Done = true;
      break;
    }
    case OpKind::Jump: {
      uint64_t Target = Term->branchTarget(TermAddr);
      EmitChecked([&](std::vector<Instruction> &Seq) {
        Checker->emitDirectUpdate(Seq, L, Target);
      });
      EmitEdgeProf(L, Target);
      if (Fused + 1 < FuseLimit && CanFuseInto(Target)) {
        InThisSuper.insert(Guest);
        Guest = Target;
        ++Fused;
        SuperblockFusions.inc();
        continue;
      }
      EmitTramp(Target);
      Done = true;
      break;
    }
    case OpKind::CondJump:
    case OpKind::RegZeroJump: {
      uint64_t Taken = Term->branchTarget(TermAddr);
      uint64_t Fall = TermAddr + InsnSize;
      EmitChecked([&](std::vector<Instruction> &Seq) {
        if (TermKind == OpKind::CondJump)
          Checker->emitCondUpdate(Seq, L, Term->cond(), Taken, Fall);
        else
          Checker->emitRegCondUpdate(Seq, L, Term->Op, Term->A, Taken,
                                     Fall);
      });
      // Trace formation across the seam (promoted translations only):
      // continue inline along the measured-hotter side, leaving the cold
      // side as an exit stub. When the fall side wins, the branch is
      // inverted so the taken target becomes the stub.
      bool FuseTaken = false, FuseFall = false;
      if (Promoting && ProfileWarm && Fused + 1 < FuseLimit) {
        uint64_t TakenCount = Profile->edgeCount(L, Taken);
        uint64_t FallCount = Profile->edgeCount(L, Fall);
        FuseTaken = TakenCount > 0 && TakenCount >= FallCount &&
                    CanFuseInto(Taken);
        FuseFall = !FuseTaken && FallCount > 0 && CanFuseInto(Fall);
      }
      // jcc cc, +8 over the fall-through tramp onto the taken tramp.
      // With profiling, each stub grows a leading edge bump and the skip
      // widens to +16.
      int32_t Skip = static_cast<int32_t>(Profile ? 2 * InsnSize : InsnSize);
      Instruction Branch = *Term;
      Branch.Imm = Skip;
      if (FuseFall) {
        if (TermKind == OpKind::CondJump)
          Branch = insn::jcc(negateCondCode(Term->cond()), Skip);
        else
          Branch = insn::rri(Term->Op == Opcode::Jzr ? Opcode::Jnzr
                                                     : Opcode::Jzr,
                             Term->A, 0, Skip);
      }
      Builder.push(Branch);
      uint64_t StubTarget = FuseFall ? Taken : Fall;
      EmitEdgeProf(L, StubTarget);
      EmitTramp(StubTarget);
      if (FuseTaken || FuseFall) {
        uint64_t InlineTarget = FuseFall ? Fall : Taken;
        EmitEdgeProf(L, InlineTarget);
        InThisSuper.insert(Guest);
        Guest = InlineTarget;
        ++Fused;
        ++CondSeamsFormed;
        TraceCondFusions.inc();
        continue;
      }
      EmitEdgeProf(L, Taken);
      EmitTramp(Taken);
      Done = true;
      break;
    }
    case OpKind::Call: {
      uint64_t Target = Term->branchTarget(TermAddr);
      uint64_t ReturnSite = TermAddr + InsnSize;
      EmitChecked([&](std::vector<Instruction> &Seq) {
        Checker->emitDirectUpdate(Seq, L, Target);
      });
      // Push the *guest* return address so that returns carry guest
      // targets (free address-to-signature mapping, Section 5).
      Builder.push(insn::ri(Opcode::MovI, RegAUX2,
                            static_cast<int32_t>(ReturnSite)));
      Builder.push(insn::r(Opcode::Push, RegAUX2));
      if (Config.ShadowStack)
        EmitChecked([&](std::vector<Instruction> &Seq) {
          ShadowStack.emitCallPush(Seq, RegAUX2);
        });
      EmitEdgeProf(L, Target);
      EmitTramp(Target);
      Done = true;
      break;
    }
    case OpKind::IndCall: {
      uint64_t ReturnSite = TermAddr + InsnSize;
      EmitChecked([&](std::vector<Instruction> &Seq) {
        Checker->emitIndirectUpdate(Seq, L, Term->A);
      });
      Builder.push(insn::ri(Opcode::MovI, RegAUX2,
                            static_cast<int32_t>(ReturnSite)));
      Builder.push(insn::r(Opcode::Push, RegAUX2));
      if (Config.ShadowStack)
        EmitChecked([&](std::vector<Instruction> &Seq) {
          ShadowStack.emitCallPush(Seq, RegAUX2);
        });
      Builder.push(insn::r(Opcode::TrampR, Term->A));
      Done = true;
      break;
    }
    case OpKind::IndJump: {
      EmitChecked([&](std::vector<Instruction> &Seq) {
        Checker->emitIndirectUpdate(Seq, L, Term->A);
      });
      Builder.push(insn::r(Opcode::TrampR, Term->A));
      Done = true;
      break;
    }
    case OpKind::Ret: {
      Builder.push(insn::r(Opcode::Pop, RegAUX2));
      // The shadow check runs before the signature update: a forged
      // return traps 0x5AC before it can poison the signature stream,
      // so the matrix's detected-by-shadow-stack-only cell is exact.
      if (Config.ShadowStack)
        EmitChecked([&](std::vector<Instruction> &Seq) {
          ShadowStack.emitReturnCheck(Seq, RegAUX2);
        });
      EmitChecked([&](std::vector<Instruction> &Seq) {
        Checker->emitIndirectUpdate(Seq, L, RegAUX2);
      });
      Builder.push(insn::r(Opcode::TrampR, RegAUX2));
      Done = true;
      break;
    }
    case OpKind::Halt:
    case OpKind::Trap:
      Builder.push(*Term);
      Done = true;
      break;
    case OpKind::DbtExit:
    case OpKind::DbtExitInd:
      reportFatalErrorf("DBT-internal opcode in guest code at 0x%llx",
                        static_cast<unsigned long long>(TermAddr));
    }
  }

  // Install into the code cache.
  const std::vector<Instruction> &Code = Builder.code();
  assert(!Code.empty() && "empty translation");
  uint64_t Bytes = Code.size() * InsnSize;
  uint64_t Base = CacheAlloc;
  if (Base + Bytes > CacheBase + CacheMaxSize)
    reportFatalError("code cache exhausted");
  Mem.mapRegion(Base, Bytes, PermX);
  std::vector<uint8_t> Encoded(Bytes);
  for (size_t I = 0; I < Code.size(); ++I)
    Code[I].encode(&Encoded[I * InsnSize]);
  Mem.writeRaw(Base, Encoded.data(), Bytes);
  CacheAlloc = Base + Bytes;
  FoldedUpdates.inc(Builder.foldedCount());
  TraceDeadUpdates.inc(Builder.deadCount());
  if (Promoting && Subs.size() > 1)
    TracesFormed.inc();
  if (Tracer)
    Tracer->record(now(), telemetry::TraceEventKind::BlockTranslated,
                   nullptr, EntryGuest, Code.size());

  if (Profile) {
    for (size_t SubIndex = 0; SubIndex < Subs.size(); ++SubIndex) {
      const SubBlock &Sub = Subs[SubIndex];
      size_t EndIdx = SubIndex + 1 < Subs.size() ? Subs[SubIndex + 1].StartIdx
                                                 : Code.size();
      uint64_t InstrBytes = 0;
      for (const auto &[BeginIdx, EndI] : Sub.InstrIdx)
        InstrBytes += (EndI - BeginIdx) * InsnSize;
      Profile->noteBlock(Sub.Guest, Sub.GuestEnd, Sub.GuestInsns, InstrBytes,
                         (EndIdx - Sub.StartIdx) * InsnSize);
    }
  }

  // Register sub-blocks. With folding, inner entry points may have been
  // merged away, so only the superblock head is registered then; a
  // promoted trace registers only its head for the same reason (its
  // inner blocks are tail-duplicated copies, and the primary
  // translations — where they exist — stand on their own).
  bool HeadOnly = Config.FoldSignatureUpdates || Promoting;
  for (size_t SubIndex = 0; SubIndex < Subs.size(); ++SubIndex) {
    const SubBlock &Sub = Subs[SubIndex];
    if (SubIndex > 0 && HeadOnly)
      break;
    TranslatedBlock TB;
    TB.GuestAddr = Sub.Guest;
    TB.CacheAddr = Base + Sub.StartIdx * InsnSize;
    TB.CacheSize = Base + Bytes - TB.CacheAddr;
    TB.UnitHead = EntryGuest;
    TB.UnitBlocks = static_cast<uint32_t>(Subs.size());
    TB.CondSeams = CondSeamsFormed;
    TB.Promoted = Promoting;
    // When only the head is registered, its entry covers the whole
    // unit's bytes — so it must also carry every inner sub-block's
    // instrumentation ranges, or checker-emitted branches deep in the
    // trace would classify as original-program sites (fault campaigns
    // and --dump-cache both key off these ranges).
    size_t LastSub = HeadOnly ? Subs.size() : SubIndex + 1;
    for (size_t Inner = SubIndex; Inner < LastSub; ++Inner)
      for (const auto &[BeginIdx, EndIdx] : Subs[Inner].InstrIdx)
        TB.InstrRanges.emplace_back(Base + BeginIdx * InsnSize,
                                    Base + EndIdx * InsnSize);
    // The prologue start of a registered sub-block is a guest-consistent
    // re-entry point: record it for the recovery subsystem.
    SafePoints[TB.CacheAddr] = SafePointInfo{Sub.Guest, Sub.Checked};
    NumCheckSites += Sub.Checked;
    if (integrityEnabled())
      TB.IntegrityWord = computeIntegrityWord(TB);
    BlockMap.insert(Sub.Guest, std::move(TB));
  }
  return Base;
}

uint64_t Dbt::onDirectExit(uint64_t SiteAddr, uint64_t GuestTarget) {
  Dispatches.inc();
  maybeScrub();
  uint64_t Cache = lookupOrTranslate(GuestTarget);
  // Verify before chaining: a corrupted target must be healed, not
  // wired into the fast path.
  if (Config.VerifyDispatchInterval && dispatchVerify(GuestTarget))
    Cache = lookupOrTranslate(GuestTarget);
  if (Config.Tier == DbtTier::Opt)
    Cache = maybePromote(GuestTarget, Cache);
  bool Translated = BlockMap.contains(GuestTarget);
  if (Config.Tier == DbtTier::Opt && Translated) {
    // Hold chaining until the target's unit is promoted: a chain patch
    // would freeze this edge on the unoptimized translation and starve
    // the promoter of the dispatches it watches. Every edge pays at
    // most PromoteThreshold trampoline dispatches before its target
    // either promotes (then chains) or proves cold.
    const TranslatedBlock *TB = BlockMap.find(GuestTarget);
    if (TB && !TB->Promoted)
      Translated = false;
  }
  if (Config.ChainDirectExits && Translated && isCacheAddr(SiteAddr)) {
    // Patch the Tramp into a direct jump (block chaining).
    Instruction Jump = insn::i(Opcode::Jmp,
                               Instruction::offsetFor(SiteAddr, Cache));
    uint8_t Raw[InsnSize];
    Jump.encode(Raw);
    Mem.writeRaw(SiteAddr, Raw, InsnSize);
    Patches.push_back({SiteAddr, GuestTarget});
    Chains.inc();
    // The patch legitimately mutated cache bytes: reseal the blocks
    // whose integrity words cover the site.
    if (integrityEnabled())
      resealBlocksContaining(SiteAddr);
    if (Tracer)
      Tracer->record(now(), telemetry::TraceEventKind::BlockChained, nullptr,
                     GuestTarget);
  }
  return Cache;
}

uint64_t Dbt::onIndirectExit(uint64_t SiteAddr, uint64_t GuestTarget) {
  (void)SiteAddr;
  Dispatches.inc();
  maybeScrub();
  // Indirect-branch translation cache: one direct-mapped probe before the
  // full lookup. Only committed translations enter the table, so a hit
  // can never swallow a trap a raw (untranslated) target would raise.
  IbtcEntry &Entry = Ibtc[(GuestTarget / InsnSize) % IbtcSlots];
  if (Entry.Guest == GuestTarget) {
    // A flipped entry would redirect control silently; with integrity
    // checking on, drop any entry whose seal no longer matches and fall
    // through to the full lookup (self-heal).
    if (integrityEnabled() &&
        Entry.Check != ibtcCheckWord(Entry.Guest, Entry.Cache)) {
      IntegrityMismatches.inc();
      Entry = IbtcEntry{};
    } else {
      IbtcHits.inc();
      if (Config.VerifyDispatchInterval && dispatchVerify(GuestTarget))
        return lookupOrTranslate(GuestTarget);
      // Indirect-only targets would otherwise hit here forever and
      // never promote; the check is two hash probes on the hit path.
      if (Config.Tier == DbtTier::Opt)
        return maybePromote(GuestTarget, Entry.Cache);
      return Entry.Cache;
    }
  }
  IbtcMisses.inc();
  uint64_t Cache = lookupOrTranslate(GuestTarget);
  if (Config.VerifyDispatchInterval && dispatchVerify(GuestTarget))
    Cache = lookupOrTranslate(GuestTarget);
  if (Config.Tier == DbtTier::Opt)
    Cache = maybePromote(GuestTarget, Cache);
  if (BlockMap.contains(GuestTarget))
    Entry = {GuestTarget, Cache, ibtcCheckWord(GuestTarget, Cache)};
  return Cache;
}

bool Dbt::onWriteViolation(uint64_t DataAddr) {
  if (DataAddr < GuestCodeBase || DataAddr >= GuestCodeBase + GuestCodeSize)
    return false; // A genuine protection fault, not self-modification.
  if (Checker->requiresWholeProgramCfg())
    reportFatalError("self-modifying code under a whole-program-CFG "
                     "technique (CFCSS/ECCA) is not supported");
  // Self-modification invalidates the static CFG an eager translator
  // worked from: fall back to on-demand translation of the new code.
  if (Config.EagerTranslate) {
    Config.EagerTranslate = false;
    EagerLeaders.clear();
  }
  flushTranslations();
  // Let the faulting store retry and future stores to this page proceed;
  // the page is re-protected before the next translation reads it.
  Mem.setPerms(DataAddr & ~(PageSize - 1), PageSize, PermRW);
  CodePagesWritable = true;
  Flushes.inc();
  if (Tracer)
    Tracer->record(now(), telemetry::TraceEventKind::CacheFlush, "smc",
                   DataAddr);
  return true;
}

//===----------------------------------------------------------------------===//
// Optimizing tier: hot-trace promotion and adaptive check placement
// (DESIGN.md §11).
//===----------------------------------------------------------------------===//

namespace {
/// How many checks a policy sinks, for choosing the laxer of two.
unsigned policyLaxity(CheckPolicy P) {
  switch (P) {
  case CheckPolicy::AllBB:
    return 0;
  case CheckPolicy::StoreBB:
    return 1;
  case CheckPolicy::RetBE:
    return 2;
  case CheckPolicy::Ret:
    return 3;
  case CheckPolicy::End:
    return 4;
  }
  return 0;
}
} // namespace

CheckPolicy Dbt::regionPolicy(uint64_t RegionHead) const {
  if (Config.Tier != DbtTier::Opt || !Profile)
    return Config.Policy;
  // Only ever relax relative to the configured policy, and only once
  // the region is measurably hot. Updates are emitted under every
  // policy, so sinking a check delays detection to the region's next
  // checking block; it never loses it (DESIGN.md §11).
  if (Profile->execCount(RegionHead) < Config.PromoteThreshold)
    return Config.Policy;
  return policyLaxity(Config.HotPolicy) > policyLaxity(Config.Policy)
             ? Config.HotPolicy
             : Config.Policy;
}

uint64_t Dbt::maybePromote(uint64_t GuestTarget, uint64_t Cache) {
  if (Config.Tier != DbtTier::Opt || !Profile || Promoting)
    return Cache;
  TranslatedBlock *TB = BlockMap.findMutable(GuestTarget);
  if (!TB || TB->Promoted)
    return Cache;
  // Heat is judged at the unit head (the retranslation entry), but an
  // inner member crossing the threshold also qualifies the unit — its
  // head may sit outside the hot loop.
  if (Profile->execCount(TB->UnitHead) < Config.PromoteThreshold &&
      Profile->execCount(GuestTarget) < Config.PromoteThreshold)
    return Cache;
  telemetry::PhaseProfiler::Scope Timer(Profiler, telemetry::Phase::Trace);
  uint64_t Head = evictUnit(TB->CacheAddr + TB->CacheSize);
  if (Head == ~0ULL)
    return Cache;
  TracePromotions.inc();
  Promoting = true;
  translate(Head);
  Promoting = false;
  uint64_t NewCache = lookupOrTranslate(GuestTarget);
  if (Tracer)
    Tracer->record(now(), telemetry::TraceEventKind::TracePromoted, nullptr,
                   Head, Profile->execCount(Head));
  return NewCache;
}

//===----------------------------------------------------------------------===//
// Self-integrity: integrity words, dispatch verification, scrubbing, and
// quarantine (DESIGN.md §10).
//===----------------------------------------------------------------------===//

uint64_t Dbt::ibtcCheckWord(uint64_t Guest, uint64_t Cache) {
  uint64_t H = Guest * 0x9e3779b97f4a7c15ULL;
  H ^= H >> 32;
  H += Cache * 0xff51afd7ed558ccdULL;
  H ^= H >> 29;
  return H | 1;
}

namespace {

constexpr uint64_t FnvOffset = 1469598103934665603ULL;
constexpr uint64_t FnvPrime = 1099511628211ULL;

void fnvFold(uint64_t &H, const uint8_t *Data, size_t N) {
  for (size_t I = 0; I < N; ++I)
    H = (H ^ Data[I]) * FnvPrime;
}

void fnvFold64(uint64_t &H, uint64_t V) {
  uint8_t Bytes[8];
  for (unsigned I = 0; I < 8; ++I)
    Bytes[I] = static_cast<uint8_t>(V >> (I * 8));
  fnvFold(H, Bytes, 8);
}

} // namespace

uint64_t Dbt::computeIntegrityWord(const TranslatedBlock &TB) const {
  uint64_t H = FnvOffset;
  uint8_t Buf[256];
  uint64_t End = TB.CacheAddr + TB.CacheSize;
  for (uint64_t Addr = TB.CacheAddr; Addr < End;) {
    uint64_t Chunk = std::min<uint64_t>(sizeof(Buf), End - Addr);
    Mem.readRaw(Addr, Buf, Chunk);
    fnvFold(H, Buf, Chunk);
    Addr += Chunk;
  }
  // Sealed header: the entry metadata a flipped BlockTable slot would
  // change. Folding it into the same word makes one verification cover
  // both the emitted code and the table entry describing it.
  fnvFold64(H, TB.GuestAddr);
  fnvFold64(H, TB.CacheAddr);
  fnvFold64(H, TB.CacheSize);
  return H;
}

bool Dbt::verifyIntegrityWord(const TranslatedBlock &TB) const {
  // Plausibility before hashing: a flipped CacheAddr/CacheSize could
  // point the hash walk outside the mapped cache region.
  if (TB.CacheAddr < CacheBase || TB.CacheSize == 0 ||
      TB.CacheAddr + TB.CacheSize < TB.CacheAddr ||
      TB.CacheAddr + TB.CacheSize > CacheAlloc)
    return false;
  return computeIntegrityWord(TB) == TB.IntegrityWord;
}

void Dbt::resealBlocksContaining(uint64_t CacheAddr) {
  for (TranslatedBlock &TB : BlockMap)
    if (TB.containsCacheAddr(CacheAddr))
      TB.IntegrityWord = computeIntegrityWord(TB);
}

bool Dbt::dispatchVerify(uint64_t GuestTarget) {
  TranslatedBlock *TB = BlockMap.findMutable(GuestTarget);
  if (!TB)
    return false;
  if (++TB->Hits % Config.VerifyDispatchInterval != 0)
    return false;
  if (verifyIntegrityWord(*TB))
    return false;
  IntegrityMismatches.inc();
  quarantineUnit(TB->CacheAddr + TB->CacheSize, "dispatch-verify");
  return true;
}

void Dbt::maybeScrub() {
  if (!Config.ScrubInterval)
    return;
  if (++DispatchesSinceScrub < Config.ScrubInterval)
    return;
  DispatchesSinceScrub = 0;
  scrubCodeCache();
}

size_t Dbt::scrubCodeCache() {
  if (!integrityEnabled())
    return 0; // Blocks were never sealed; nothing to verify against.
  telemetry::PhaseProfiler::Scope Timer(Profiler, telemetry::Phase::Scrub);
  IntegrityScrubs.inc();
  // Collect corrupted units first: quarantining mutates the table, so
  // no eviction happens mid-iteration.
  std::vector<uint64_t> BadUnits;
  size_t BadBlocks = 0;
  for (const TranslatedBlock &TB : BlockMap) {
    if (verifyIntegrityWord(TB))
      continue;
    ++BadBlocks;
    IntegrityMismatches.inc();
    uint64_t UnitEnd = TB.CacheAddr + TB.CacheSize;
    if (std::find(BadUnits.begin(), BadUnits.end(), UnitEnd) ==
        BadUnits.end())
      BadUnits.push_back(UnitEnd);
  }
  if (Tracer)
    Tracer->record(now(), telemetry::TraceEventKind::IntegrityScrub, nullptr,
                   0, BlockMap.size());
  for (uint64_t UnitEnd : BadUnits)
    quarantineUnit(UnitEnd, "scrub");
  return BadBlocks;
}

bool Dbt::verifyGuestBlock(uint64_t GuestAddr) const {
  const TranslatedBlock *TB = BlockMap.find(GuestAddr);
  if (!TB || !integrityEnabled())
    return true;
  return verifyIntegrityWord(*TB);
}

bool Dbt::quarantineGuestBlock(uint64_t GuestAddr) {
  const TranslatedBlock *TB = BlockMap.find(GuestAddr);
  if (!TB)
    return false;
  quarantineUnit(TB->CacheAddr + TB->CacheSize, "recovery");
  return true;
}

bool Dbt::faultFlipBlockMetaBit(size_t Index, unsigned Word, unsigned Bit) {
  if (BlockMap.empty())
    return false;
  auto It = BlockMap.begin();
  std::advance(It, Index % BlockMap.size());
  TranslatedBlock &TB = *It;
  uint64_t Mask = 1ull << (Bit % 64);
  switch (Word % 3) {
  case 0:
    TB.GuestAddr ^= Mask;
    break;
  case 1:
    TB.CacheAddr ^= Mask;
    break;
  default:
    TB.CacheSize ^= Mask;
    break;
  }
  return true;
}

bool Dbt::attackSwapIbtcEntry(uint64_t GuestTarget, uint64_t ForgedGuest) {
  const TranslatedBlock *TB = BlockMap.find(ForgedGuest);
  if (!TB)
    return false;
  // A valid seal over the *forged* pair: integrity verification accepts
  // the entry, so only the signature algebra can catch the redirect.
  IbtcEntry &Entry = Ibtc[(GuestTarget / InsnSize) % IbtcSlots];
  Entry = {GuestTarget, TB->CacheAddr,
           ibtcCheckWord(GuestTarget, TB->CacheAddr)};
  return true;
}

bool Dbt::attackPatchDirectExit(uint64_t SiteAddr, uint64_t ForgedGuest) {
  const TranslatedBlock *Forged = BlockMap.find(ForgedGuest);
  if (!Forged || !isCacheAddr(SiteAddr))
    return false;
  uint8_t Raw[InsnSize];
  Mem.readRaw(SiteAddr, Raw, InsnSize);
  auto Site = Instruction::decode(Raw);
  if (!Site)
    return false;
  Instruction Patched = *Site;
  if (Site->Op == Opcode::Tramp) {
    Patched.Imm = static_cast<int32_t>(ForgedGuest);
  } else if (Site->Op == Opcode::Jmp) {
    // Already chained: redirect the jump straight at the forged block's
    // translation.
    Patched.Imm = Instruction::offsetFor(SiteAddr, Forged->CacheAddr);
  } else {
    return false;
  }
  // Keep the patch signature-compatible for the additive schemes: the
  // exit's lea update (when present immediately before the site) moves
  // by the difference between the original and the forged target, so
  // the forged block's entry algebra still cancels. CFCSS/ECCA updates
  // are not lea-shaped; a naive patch stays signature-incompatible
  // there, which is exactly what the precision matrix measures.
  if (SiteAddr >= CacheBase + InsnSize) {
    uint8_t PrevRaw[InsnSize];
    Mem.readRaw(SiteAddr - InsnSize, PrevRaw, InsnSize);
    auto Prev = Instruction::decode(PrevRaw);
    if (Prev && Prev->Op == Opcode::Lea && Prev->A == Prev->B &&
        (Prev->A == RegPCP || Prev->A == RegRTS)) {
      uint64_t RealTarget = 0;
      bool HaveReal = false;
      if (Site->Op == Opcode::Tramp) {
        RealTarget = static_cast<uint64_t>(
            static_cast<int64_t>(Site->Imm));
        HaveReal = true;
      } else if (const TranslatedBlock *RealTB =
                     cacheBlockContaining(Site->branchTarget(SiteAddr))) {
        RealTarget = RealTB->GuestAddr;
        HaveReal = true;
      }
      int64_t Delta = HaveReal
                          ? static_cast<int64_t>(ForgedGuest) -
                                static_cast<int64_t>(RealTarget)
                          : 0;
      int64_t NewImm = static_cast<int64_t>(Prev->Imm) + Delta;
      if (Delta != 0 && NewImm >= INT32_MIN && NewImm <= INT32_MAX) {
        Instruction Adjusted = *Prev;
        Adjusted.Imm = static_cast<int32_t>(NewImm);
        uint8_t AdjRaw[InsnSize];
        Adjusted.encode(AdjRaw);
        Mem.writeRaw(SiteAddr - InsnSize, AdjRaw, InsnSize);
      }
    }
  }
  uint8_t PatchRaw[InsnSize];
  Patched.encode(PatchRaw);
  Mem.writeRaw(SiteAddr, PatchRaw, InsnSize);
  // Deliberately no reseal: a real SMC attacker does not get to update
  // the monitor's integrity words. The scrubber / dispatch verifier are
  // the intended detectors.
  if (Tracer)
    Tracer->record(now(), telemetry::TraceEventKind::AttackApplied, nullptr,
                   SiteAddr);
  return true;
}

bool Dbt::faultFlipIbtcBit(size_t Index, unsigned Bit) {
  std::vector<IbtcEntry *> Occupied;
  for (IbtcEntry &Entry : Ibtc)
    if (Entry.Guest != ~0ULL)
      Occupied.push_back(&Entry);
  if (Occupied.empty())
    return false;
  Occupied[Index % Occupied.size()]->Cache ^= 1ull << (Bit % 64);
  return true;
}

void Dbt::quarantineUnit(uint64_t UnitEnd, const char *Origin) {
  // Enumerate the members before eviction for the diagnostics.
  std::vector<uint64_t> Guests;
  uint64_t UnitStart = UnitEnd;
  uint64_t HeadGuest = 0;
  for (const TranslatedBlock &TB : BlockMap) {
    if (TB.CacheAddr + TB.CacheSize != UnitEnd)
      continue;
    Guests.push_back(TB.GuestAddr);
    if (TB.CacheAddr <= UnitStart) {
      UnitStart = TB.CacheAddr;
      HeadGuest = TB.GuestAddr;
    }
  }
  if (Guests.empty())
    return;

  // Post-mortem before eviction so the bundle still disassembles the
  // corrupt host bytes.
  if (Recorder && ClockSource) {
    StopInfo S;
    S.Kind = StopKind::Halted;
    S.PC = std::max(UnitStart, CacheBase);
    telemetry::PostMortem PM = buildPostMortem("quarantine", S, *ClockSource);
    PM.Note = Origin;
    PM.Annotations.emplace_back("guest_addr", HeadGuest);
    PM.Annotations.emplace_back("unit_start", UnitStart);
    PM.Annotations.emplace_back("unit_end", UnitEnd);
    PM.Annotations.emplace_back("blocks", Guests.size());
    Recorder->write(PM);
  }
  if (Tracer)
    Tracer->record(now(), telemetry::TraceEventKind::BlockQuarantined, Origin,
                   HeadGuest, Guests.size());

  evictUnit(UnitEnd);

  // Self-heal: retranslate the unit head when it is still a
  // translatable guest target. (A flipped GuestAddr falls back to lazy
  // retranslation at the next dispatch of the real address.)
  if (!BlockMap.contains(HeadGuest)) {
    uint64_t Cache = lookupOrTranslate(HeadGuest);
    if (isCacheAddr(Cache))
      IntegrityRetranslations.inc();
  }
}

uint64_t Dbt::evictUnit(uint64_t UnitEnd) {
  // All sub-blocks of one translation unit share the unit's end address
  // (each CacheSize extends to it), which identifies the unit's members
  // even when one entry's other metadata is corrupted.
  std::vector<uint64_t> Guests;
  uint64_t UnitStart = UnitEnd;
  uint64_t HeadGuest = 0;
  for (const TranslatedBlock &TB : BlockMap) {
    if (TB.CacheAddr + TB.CacheSize != UnitEnd)
      continue;
    Guests.push_back(TB.GuestAddr);
    if (TB.CacheAddr <= UnitStart) {
      UnitStart = TB.CacheAddr;
      HeadGuest = TB.GuestAddr;
    }
  }
  if (Guests.empty())
    return ~0ULL;
  // Clamp the cleanup range to the live cache: corrupted metadata can
  // push the nominal range out of bounds.
  uint64_t RangeBegin = std::max(UnitStart, CacheBase);
  uint64_t RangeEnd = std::min(UnitEnd, CacheAlloc);

  // Safe points (and the check-site census) of the evicted range.
  if (RangeBegin < RangeEnd)
    for (auto It = SafePoints.begin(); It != SafePoints.end();) {
      if (It->first >= RangeBegin && It->first < RangeEnd) {
        NumCheckSites -= It->second.Checked;
        It = SafePoints.erase(It);
      } else {
        ++It;
      }
    }

  // IBTC entries keyed by an evicted guest or pointing into the unit.
  for (IbtcEntry &Entry : Ibtc) {
    if (Entry.Guest == ~0ULL)
      continue;
    bool InRange = Entry.Cache >= RangeBegin && Entry.Cache < RangeEnd;
    bool EvictedGuest = std::find(Guests.begin(), Guests.end(),
                                  Entry.Guest) != Guests.end();
    if (InRange || EvictedGuest)
      Entry = IbtcEntry{};
  }

  // Unchain predecessors jumping into the unit (restore their Tramp so
  // they re-dispatch into the fresh translation) and drop bookkeeping
  // for patch sites inside the unit (their bytes are stale).
  std::vector<uint64_t> UnchainedSites;
  std::vector<ChainPatch> Kept;
  for (const ChainPatch &Patch : Patches) {
    bool SiteInUnit =
        Patch.SiteAddr >= RangeBegin && Patch.SiteAddr < RangeEnd;
    bool TargetsUnit = std::find(Guests.begin(), Guests.end(),
                                 Patch.GuestTarget) != Guests.end();
    if (SiteInUnit)
      continue;
    if (TargetsUnit) {
      Instruction Tramp =
          insn::i(Opcode::Tramp, static_cast<int32_t>(Patch.GuestTarget));
      uint8_t Raw[InsnSize];
      Tramp.encode(Raw);
      Mem.writeRaw(Patch.SiteAddr, Raw, InsnSize);
      UnchainedSites.push_back(Patch.SiteAddr);
      continue;
    }
    Kept.push_back(Patch);
  }
  Patches = std::move(Kept);

  // Retire the unit's byte range before dropping its blocks: the bytes
  // stay allocated (cache storage is never reused), and branch-site
  // classification must keep seeing the old translation's
  // instrumentation ranges for executions that happened before the
  // eviction.
  if (RangeBegin < RangeEnd) {
    RetiredRange RR;
    RR.Begin = RangeBegin;
    RR.End = RangeEnd;
    RR.GuestHead = HeadGuest;
    for (const TranslatedBlock &TB : BlockMap)
      if (TB.CacheAddr + TB.CacheSize == UnitEnd)
        for (const auto &Range : TB.InstrRanges)
          RR.InstrRanges.push_back(Range);
    Retired.push_back(std::move(RR));
  }

  // Evict the unit's blocks and any stale decode of its bytes.
  BlockMap.eraseIf([UnitEnd](const TranslatedBlock &TB) {
    return TB.CacheAddr + TB.CacheSize == UnitEnd;
  });
  if (RangeBegin < RangeEnd)
    Mem.invalidatePredecode(RangeBegin, RangeEnd - RangeBegin);

  // The unchaining writes mutated live predecessor blocks: reseal them.
  for (uint64_t Site : UnchainedSites)
    resealBlocksContaining(Site);
  return HeadGuest;
}

void Dbt::flushTranslations() {
  // Unchain every patched exit so stale translations always re-dispatch;
  // the translator then picks up the modified guest code. Cache storage
  // is not reclaimed (stale code stays fetchable until control leaves
  // it), matching the usual DBT flush discipline.
  for (const ChainPatch &Patch : Patches) {
    Instruction Tramp =
        insn::i(Opcode::Tramp, static_cast<int32_t>(Patch.GuestTarget));
    uint8_t Raw[InsnSize];
    Tramp.encode(Raw);
    Mem.writeRaw(Patch.SiteAddr, Raw, InsnSize);
  }
  Patches.clear();
  BlockMap.clear();
  SafePoints.clear();
  NumCheckSites = 0;
  // Stale guest→cache mappings must not short-circuit re-dispatch.
  Ibtc.fill(IbtcEntry{});
  // The unchaining writes above already dropped the predecode arrays of
  // the pages they touched; drop the whole cache region explicitly so no
  // stale decode survives a flush.
  Mem.invalidatePredecode(CacheBase, CacheAlloc - CacheBase);
}

void Dbt::degradeToConservative() {
  flushTranslations();
  Config.ChainDirectExits = false;
  Config.SuperblockLimit = 1;
  Config.FoldSignatureUpdates = false;
  Config.Policy = CheckPolicy::AllBB;
  // The optimizing tier is the first thing to go: no trace re-forming,
  // no check sinking on a translator that is already misbehaving.
  Config.Tier = DbtTier::Base;
  Degrades.inc();
  if (Tracer)
    Tracer->record(now(), telemetry::TraceEventKind::DegradationStep,
                   "conservative-retranslate");
}

uint64_t Dbt::guestPCFor(uint64_t PC) const {
  if (!isCacheAddr(PC))
    return PC;
  if (const TranslatedBlock *TB = cacheBlockContaining(PC))
    return TB->GuestAddr;
  return PC;
}

const TranslatedBlock *Dbt::cacheBlockContaining(uint64_t Addr) const {
  const TranslatedBlock *Best = nullptr;
  for (const TranslatedBlock &TB : BlockMap)
    if (TB.containsCacheAddr(Addr))
      if (!Best || TB.CacheAddr > Best->CacheAddr) // Innermost sub-block.
        Best = &TB;
  return Best;
}

std::vector<BranchSiteInfo> Dbt::enumerateBranchSites() const {
  std::vector<BranchSiteInfo> Sites;
  // Visit outermost blocks only: sub-blocks alias superblock bytes.
  std::vector<const TranslatedBlock *> ByCache;
  for (const TranslatedBlock &TB : BlockMap)
    ByCache.push_back(&TB);
  std::sort(ByCache.begin(), ByCache.end(),
            [](const TranslatedBlock *A, const TranslatedBlock *B) {
              return A->CacheAddr < B->CacheAddr;
            });
  uint64_t CoveredEnd = 0;
  for (const TranslatedBlock *TB : ByCache) {
    if (TB->CacheAddr < CoveredEnd)
      continue;
    CoveredEnd = TB->CacheAddr + TB->CacheSize;
    for (uint64_t Addr = TB->CacheAddr; Addr < CoveredEnd;
         Addr += InsnSize) {
      uint8_t Raw[InsnSize];
      Mem.readRaw(Addr, Raw, InsnSize);
      auto I = Instruction::decode(Raw);
      if (!I || !hasBranchOffset(I->Op))
        continue;
      BranchSiteInfo Site;
      Site.CacheAddr = Addr;
      Site.Op = I->Op;
      // Instrumentation ranges live on the innermost sub-block.
      const TranslatedBlock *Inner = cacheBlockContaining(Addr);
      Site.IsInstrumentation = Inner && Inner->isInstrumentation(Addr);
      Site.GuestBlock = Inner ? Inner->GuestAddr : TB->GuestAddr;
      Sites.push_back(Site);
    }
  }
  // Retired ranges: translations evicted by promotion or quarantine.
  // Their storage is never reused, so the ranges are disjoint from every
  // live block and from each other.
  for (const RetiredRange &RR : Retired) {
    for (uint64_t Addr = RR.Begin; Addr < RR.End; Addr += InsnSize) {
      uint8_t Raw[InsnSize];
      Mem.readRaw(Addr, Raw, InsnSize);
      auto I = Instruction::decode(Raw);
      if (!I || !hasBranchOffset(I->Op))
        continue;
      BranchSiteInfo Site;
      Site.CacheAddr = Addr;
      Site.Op = I->Op;
      for (const auto &[Begin, End] : RR.InstrRanges)
        if (Addr >= Begin && Addr < End) {
          Site.IsInstrumentation = true;
          break;
        }
      Site.GuestBlock = RR.GuestHead;
      Sites.push_back(Site);
    }
  }
  return Sites;
}

telemetry::PostMortem Dbt::buildPostMortem(const char *Reason,
                                           const StopInfo &Stop,
                                           const Interpreter &Interp) const {
  telemetry::PostMortem PM;
  PM.Reason = Reason;
  switch (Stop.Kind) {
  case StopKind::Halted:
    PM.StopKind = "halted";
    break;
  case StopKind::Trapped:
    PM.StopKind = "trap";
    PM.TrapName = getTrapKindName(Stop.Trap);
    break;
  case StopKind::InsnLimit:
    PM.StopKind = "insn-limit";
    break;
  }
  PM.Description = describeStop(Stop);
  PM.GuestPC = guestPCFor(Stop.PC);
  PM.CachePC = Stop.PC;
  PM.TrapAddr = Stop.TrapAddr;
  PM.BreakCode = Stop.BreakCode;
  PM.Insns = Interp.instructionCount();
  PM.Cycles = Interp.cycleCount();

  const CpuState &State = Interp.state();
  PM.Regs.assign(State.Regs, State.Regs + NumIntRegs);
  PM.FlagBits = State.F.pack();

  if (Tracer)
    PM.Events = Tracer->events();
  PM.Registry = Metrics->snapshot();

  // Disassemble the faulting block: the guest view from the sub-block's
  // entry, and the code-cache view including the woven instrumentation.
  constexpr uint64_t MaxGuestInsns = 16;
  constexpr uint64_t MaxHostInsns = 32;
  if (const TranslatedBlock *TB = cacheBlockContaining(Stop.PC)) {
    uint64_t GStart = TB->GuestAddr;
    uint64_t GEnd = std::min(GuestCodeBase + GuestCodeSize,
                             GStart + MaxGuestInsns * InsnSize);
    if (GStart >= GuestCodeBase && GStart < GEnd) {
      std::vector<uint8_t> Buf(GEnd - GStart);
      Mem.readRaw(GStart, Buf.data(), Buf.size());
      PM.GuestDisasm = disassembleRange(Buf.data(), Buf.size(), GStart);
    }
    uint64_t HBytes = std::min<uint64_t>(TB->CacheSize,
                                         MaxHostInsns * InsnSize);
    std::vector<uint8_t> HBuf(HBytes);
    Mem.readRaw(TB->CacheAddr, HBuf.data(), HBytes);
    PM.HostDisasm = disassembleRange(HBuf.data(), HBytes, TB->CacheAddr);
  } else if (PM.GuestPC >= GuestCodeBase &&
             PM.GuestPC < GuestCodeBase + GuestCodeSize) {
    // Stopped outside the cache (interpreter fallback, raw execution):
    // disassemble the guest code around the stop PC instead.
    uint64_t GStart =
        PM.GuestPC - (PM.GuestPC - GuestCodeBase) % InsnSize;
    uint64_t GEnd = std::min(GuestCodeBase + GuestCodeSize,
                             GStart + MaxGuestInsns * InsnSize);
    std::vector<uint8_t> Buf(GEnd - GStart);
    Mem.readRaw(GStart, Buf.data(), Buf.size());
    PM.GuestDisasm = disassembleRange(Buf.data(), Buf.size(), GStart);
  }
  return PM;
}
