//===- Dbt.h - Dynamic binary translator ------------------------*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic binary translator of Section 5, structured like the
/// paper's Figure 11:
///
///  * Runtime  — loads the program image (guest code pages readable but
///    not executable, so wild jumps out of the code cache trap: the
///    category-F detector), initializes the signature registers, services
///    code-cache exits, and handles write-protection faults from
///    self-modifying code by flushing and unchaining translations.
///  * Frontend — translates guest basic blocks on demand into the code
///    cache, weaving in the configured control-flow checker's prologue
///    and exit updates, and chains direct exits (patching the Tramp exit
///    into a plain jmp once the target is translated). An eager mode
///    translates the whole program up front from the CFG — what CFCSS
///    and ECCA require and the paper's DBT could not do.
///  * Backend  — optional optimizations: superblock formation along
///    unconditional chains and peephole folding of adjacent signature
///    updates (legal because signatures only need checking, not
///    observing, between updates — the same algebraic slack the paper's
///    relaxed checking policies exploit).
///
/// All control transfers in translated code go through:
///   direct:   [updates] tramp <guest-target>        (patched to jmp)
///   cond:     [updates] jcc cc, +8-to-taken-stub; tramp <fall>;
///             taken-stub: tramp <taken>
///   call:     [updates] movi aux2, <guest-return>; push aux2;
///             tramp <callee>
///   ret:      pop aux2; [updates]; trampr aux2
///   indirect: [updates]; trampr <reg>   (callr also pushes the return)
///
/// The guest return addresses kept on the stack are guest addresses, so
/// the block-address-as-signature scheme maps dynamic targets to
/// signatures for free (Section 5's "the address to signature mapping has
/// no cost").
///
//===----------------------------------------------------------------------===//

#ifndef CFED_DBT_DBT_H
#define CFED_DBT_DBT_H

#include "asm/Assembler.h"
#include "cfc/Checker.h"
#include "cfc/ShadowStack.h"
#include "dbt/BlockTable.h"
#include "telemetry/BlockProfile.h"
#include "telemetry/FlightRecorder.h"
#include "telemetry/Metrics.h"
#include "telemetry/Profile.h"
#include "telemetry/Provenance.h"
#include "telemetry/Trace.h"
#include "vm/Interp.h"
#include "vm/Memory.h"

#include <array>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace cfed {

/// Translation tiers. Base translates block-at-a-time on first dispatch
/// (plus optional superblock fusion along unconditional chains). Opt
/// starts every block at Base and, once the attached block profile shows
/// a unit's head crossing the promotion threshold, retranslates the unit
/// as an optimized *trace*: multi-block fusion across the hotter side of
/// conditional branches (tail duplication), spine signature-update
/// folding with dead-update elimination, and adaptive per-region check
/// placement. (An interpreter-only "interp" tier exists at the CLI
/// level; it is the absence of a translator.)
enum class DbtTier : uint8_t { Base, Opt };

/// Returns "base" or "opt".
const char *getDbtTierName(DbtTier Tier);

/// Translator configuration.
struct DbtConfig {
  Technique Tech = Technique::None;
  UpdateFlavor Flavor = UpdateFlavor::Jcc;
  CheckPolicy Policy = CheckPolicy::AllBB;
  /// Patch direct exits into plain jumps once the target is translated.
  bool ChainDirectExits = true;
  /// Translate the whole program up front from the static CFG. Required
  /// by techniques with requiresWholeProgramCfg().
  bool EagerTranslate = false;
  /// Backend: maximum number of guest blocks fused into one superblock
  /// along unconditional direct chains (1 = off).
  unsigned SuperblockLimit = 1;
  /// Backend: peephole-fold adjacent signature updates.
  bool FoldSignatureUpdates = false;
  /// Layer SWIFT-style data-flow checking under the control-flow
  /// technique: duplicate computations into shadow registers and compare
  /// before stores/outputs (the paper's future-work extension; see
  /// cfc/DataFlow.h).
  bool DataFlowCheck = false;
  /// Self-integrity: lazily verify a translated block's integrity word
  /// every N dispatches that land on it (0 = off).
  uint64_t VerifyDispatchInterval = 0;
  /// Self-integrity: eagerly verify every live translation (the
  /// scrubber) once per N cache-exit dispatches (0 = off).
  uint64_t ScrubInterval = 0;
  /// Self-integrity: duplicate the runtime signature into shadow
  /// registers (RegPCPShadow/RegRTSShadow) and cross-check at CHECK_SIG
  /// sites, so a flipped signature variable reports monitor corruption
  /// (0x5EC) instead of a guest control-flow error.
  bool ShadowSignature = false;
  /// Shadow return stack (adversarial mode): record each call's return
  /// site in a monitor-private ring and compare it at every return,
  /// trapping with 0x5AC on mismatch. Composable under any technique,
  /// like DataFlowCheck; catches forged returns whose attacker-chosen
  /// target carries a valid signature (see cfc/ShadowStack.h).
  bool ShadowStack = false;
  /// Translation tier (see DbtTier). Opt is incompatible with eager
  /// translation (the whole-program techniques freeze the translation
  /// set); load() silently falls back to Base there.
  DbtTier Tier = DbtTier::Base;
  /// Opt tier: maximum number of guest blocks fused into one trace
  /// (conditional and unconditional edges combined). Also raises the
  /// effective superblock limit for promoted translations.
  unsigned TraceLimit = 8;
  /// Opt tier: executions a unit head must accumulate before the unit
  /// is evicted and retranslated as an optimized trace.
  uint64_t PromoteThreshold = 16;
  /// Opt tier: the relaxed check policy applied to regions the profile
  /// has measured as hot (cold regions keep Policy). The default RetBE
  /// retains back-edge and return checks, so every loop still contains
  /// a checking block and the errant-flow watchdog stays anchored;
  /// sinking the remaining checks is detection-preserving because
  /// signature *updates* are still emitted in every block (the
  /// discrepancy persists until the next check — DESIGN.md §11).
  CheckPolicy HotPolicy = CheckPolicy::RetBE;
};

/// One translated guest block resident in the code cache.
struct TranslatedBlock {
  uint64_t GuestAddr = 0;
  uint64_t CacheAddr = 0;
  uint64_t CacheSize = 0;
  /// FNV-1a over the block's emitted cache bytes plus a sealed header of
  /// its entry metadata (GuestAddr/CacheAddr/CacheSize), computed when
  /// self-integrity checking is enabled and resealed after legitimate
  /// cache mutation (chain patches). 0 when integrity is off.
  uint64_t IntegrityWord = 0;
  /// Dispatches that landed on this block; drives the lazy
  /// every-N-dispatches verification.
  uint64_t Hits = 0;
  /// Cache-address ranges [begin, end) occupied by checker-emitted
  /// instrumentation.
  std::vector<std::pair<uint64_t, uint64_t>> InstrRanges;
  /// Guest address of the head block of the translation unit this entry
  /// belongs to. Sub-blocks of one superblock/trace share a head (and a
  /// unit end), which makes the unit enumerable from any member —
  /// quarantine, flight-recorder bundles and --dump-cache all see
  /// traces as chained units.
  uint64_t UnitHead = 0;
  /// Guest blocks fused into this translation unit (1 = unfused).
  uint32_t UnitBlocks = 1;
  /// Conditional-branch seams fused along the unit's spine (nonzero
  /// only for traces formed by the optimizing tier).
  uint32_t CondSeams = 0;
  /// True when this unit was produced by the optimizing tier's
  /// promotion pass (hot-trace retranslation).
  bool Promoted = false;

  bool containsCacheAddr(uint64_t Addr) const {
    return Addr >= CacheAddr && Addr < CacheAddr + CacheSize;
  }
  bool isInstrumentation(uint64_t Addr) const {
    for (const auto &[Begin, End] : InstrRanges)
      if (Addr >= Begin && Addr < End)
        return true;
    return false;
  }
};

/// A guest-consistent re-entry point in the code cache: the first
/// instruction of a registered sub-block's prologue. At these cache
/// addresses all architectural state is guest state (no partially
/// executed block), so the recovery subsystem may checkpoint there and
/// resume from the corresponding guest address after a rollback.
struct SafePointInfo {
  /// Guest address of the sub-block entered here.
  uint64_t GuestAddr = 0;
  /// True when the checker emitted a signature *check* (not just an
  /// update) in this prologue — the anchors the errant-flow watchdog
  /// counts instructions between.
  bool Checked = false;
};

/// A branch fault site discovered in translated code.
struct BranchSiteInfo {
  uint64_t CacheAddr = 0;
  Opcode Op = Opcode::Nop;
  bool IsInstrumentation = false;
  /// Guest address of the translated block containing the site.
  uint64_t GuestBlock = 0;
};

/// The translator. Owns the code cache region inside the given Memory and
/// acts as the interpreter's DbtHooks.
class Dbt : public DbtHooks {
public:
  /// \p Metrics is the registry this translator publishes its counters
  /// into; when null the translator owns a private registry, which keeps
  /// per-instance counts isolated (parallel fault campaigns create many
  /// concurrent translators). The CLI tools pass
  /// telemetry::MetricsRegistry::global().
  Dbt(Memory &Mem, DbtConfig Config,
      telemetry::MetricsRegistry *Metrics = nullptr);
  ~Dbt() override;

  /// Loads \p Program in translated mode, prepares the checker (eager
  /// CFG when required), translates the entry and points \p State at it.
  /// Returns false when the configured technique cannot instrument the
  /// program (e.g. CFCSS with indirect calls) or is incompatible with
  /// on-demand mode.
  bool load(const AsmProgram &Program, CpuState &State);

  /// Runs \p Interp (whose state was set up by load) to completion under
  /// this translator's hooks.
  StopInfo run(Interpreter &Interp, uint64_t MaxInsns);

  // DbtHooks:
  uint64_t onDirectExit(uint64_t SiteAddr, uint64_t GuestTarget) override;
  uint64_t onIndirectExit(uint64_t SiteAddr, uint64_t GuestTarget) override;
  bool onWriteViolation(uint64_t DataAddr) override;

  /// Live translated blocks, in translation order. Use
  /// blocks().find(GuestAddr) for keyed lookup.
  const BlockTable<TranslatedBlock> &blocks() const { return BlockMap; }

  /// Returns the translated block whose cache range contains \p Addr, or
  /// nullptr (stale translations from before a flush are not included).
  const TranslatedBlock *cacheBlockContaining(uint64_t Addr) const;

  /// Safe points of all live translations, keyed by cache address.
  /// Cleared on flush; repopulated as blocks retranslate.
  const std::unordered_map<uint64_t, SafePointInfo> &safePoints() const {
    return SafePoints;
  }

  /// True when at least one live safe point carries a signature check —
  /// the precondition for the errant-flow watchdog to be meaningful.
  bool hasCheckSites() const { return NumCheckSites > 0; }

  /// Public lookup for the recovery subsystem: cache address to resume at
  /// for \p GuestAddr (translating on demand if needed), or \p GuestAddr
  /// itself when it is not translatable.
  uint64_t resolveGuestTarget(uint64_t GuestAddr) {
    return lookupOrTranslate(GuestAddr);
  }

  /// Best-effort guest attribution of a stop: maps a code-cache PC back
  /// to the guest address of the innermost sub-block containing it;
  /// non-cache PCs pass through unchanged.
  uint64_t guestPCFor(uint64_t PC) const;

  /// Flushes all translations and permanently reconfigures this
  /// translator conservatively: chaining off, superblocks off, signature
  /// folding off, AllBB check policy. The degradation ladder's first
  /// rung — subsequent retranslations maximize detection latency bounds
  /// at the cost of throughput.
  void degradeToConservative();

  /// Number of degradeToConservative() calls.
  uint64_t degradeCount() const { return Degrades.value(); }

  /// True when any self-integrity verification is configured (the
  /// dispatch verifier or the scrubber).
  bool integrityEnabled() const {
    return Config.VerifyDispatchInterval > 0 || Config.ScrubInterval > 0;
  }

  /// One eager scrubber pass: verifies every live translation's
  /// integrity word between sub-block safe points, quarantining and
  /// retranslating any corrupted unit. Returns the number of corrupted
  /// blocks found. Runs automatically every Config.ScrubInterval
  /// dispatches; public for tools and tests.
  size_t scrubCodeCache();

  /// Side-effect-free integrity probe of the translation of
  /// \p GuestAddr: no counters, no quarantine. Returns false when the
  /// integrity word does not match, true when the block is clean or not
  /// translated. The healing paths are dispatch verification, the
  /// scrubber and quarantineGuestBlock().
  bool verifyGuestBlock(uint64_t GuestAddr) const;

  /// Quarantines the translation unit containing the translation of
  /// \p GuestAddr: evicts its blocks, unchains patched predecessors,
  /// drops its IBTC entries, and retranslates the unit head. Returns
  /// true if a unit was quarantined. The recovery ladder uses this as
  /// the rung before degradeToConservative().
  bool quarantineGuestBlock(uint64_t GuestAddr);

  /// Scrubber passes completed ("integrity.scrubs").
  uint64_t integrityScrubCount() const { return IntegrityScrubs.value(); }
  /// Integrity-word / IBTC check-word mismatches found
  /// ("integrity.mismatches").
  uint64_t integrityMismatchCount() const {
    return IntegrityMismatches.value();
  }
  /// Self-healing retranslations after quarantine
  /// ("integrity.retranslations").
  uint64_t integrityRetranslationCount() const {
    return IntegrityRetranslations.value();
  }

  /// Attaches/detaches a flight recorder that receives a "quarantine"
  /// post-mortem bundle whenever an integrity mismatch evicts a unit.
  void setFlightRecorder(telemetry::FlightRecorder *R) { Recorder = R; }

  /// The configured control-flow checker (adversarial campaigns consult
  /// its acceptsForgedReturn oracle during gadget search).
  const ControlFlowChecker &checker() const { return *Checker; }

  /// Adversarial surface: redirects the IBTC entry of \p GuestTarget to
  /// the live translation of \p ForgedGuest, resealing the entry with a
  /// *valid* check word — modeling an attacker who understands the seal
  /// and swaps in another signature-carrying block. The swapped entry
  /// survives integrity verification by construction; whether the
  /// redirect survives the *signature* algebra is the technique's
  /// problem. Returns false when \p ForgedGuest has no live translation.
  bool attackSwapIbtcEntry(uint64_t GuestTarget, uint64_t ForgedGuest);

  /// Adversarial surface: patches the direct exit at cache address
  /// \p SiteAddr (a Tramp stub or an already-chained Jmp) to dispatch to
  /// \p ForgedGuest instead, and keeps the patch signature-compatible
  /// for the additive schemes by adjusting the immediately preceding
  /// lea signature update (when there is one) by the target delta. The
  /// integrity word is deliberately NOT resealed: this is the SMC-style
  /// code patch the scrubber/dispatch verifier exist to catch. Returns
  /// false when the site does not hold a patchable direct exit or the
  /// forged target is not translated.
  bool attackPatchDirectExit(uint64_t SiteAddr, uint64_t ForgedGuest);

  /// Fault surface for the checker-targeted injection campaigns: flips
  /// bit \p Bit of metadata word \p Word (0 = GuestAddr, 1 = CacheAddr,
  /// 2 = CacheSize) of the \p Index-th live translated block
  /// (translation order). Returns false when no block exists.
  bool faultFlipBlockMetaBit(size_t Index, unsigned Word, unsigned Bit);
  /// Flips bit \p Bit of the cached target address of the \p Index-th
  /// occupied IBTC entry. Returns false when the IBTC is empty.
  bool faultFlipIbtcBit(size_t Index, unsigned Bit);

  /// Guest program entry and code segment, as captured by load().
  uint64_t guestEntry() const { return GuestEntry; }
  uint64_t guestCodeBase() const { return GuestCodeBase; }
  uint64_t guestCodeSize() const { return GuestCodeSize; }

  /// Descriptive reason for the most recent load() failure.
  const std::string &loadError() const { return LoadError; }

  /// Scans all live translations for offset-branch instructions — the
  /// fault sites of the error model. Call after a warm-up run so that
  /// chaining has stabilized the code.
  std::vector<BranchSiteInfo> enumerateBranchSites() const;

  /// Number of block translations performed (includes re-translations
  /// after self-modification flushes). Served from the metrics registry
  /// ("dbt.translations"), as are all the counters below.
  uint64_t translationCount() const { return Translations.value(); }
  /// Number of cache-exit dispatches serviced ("dbt.dispatches").
  uint64_t dispatchCount() const { return Dispatches.value(); }
  /// Indirect-branch translation cache hits: TrampR exits answered from
  /// the direct-mapped guest→cache table without a block-table lookup
  /// ("dbt.ibtc_hits").
  uint64_t ibtcHitCount() const { return IbtcHits.value(); }
  /// Indirect-branch dispatches that fell through to the full lookup
  /// ("dbt.ibtc_misses").
  uint64_t ibtcMissCount() const { return IbtcMisses.value(); }
  /// Number of full cache flushes ("dbt.flushes").
  uint64_t flushCount() const { return Flushes.value(); }
  /// Number of signature updates removed by the backend peephole
  /// ("dbt.folded_updates").
  uint64_t foldedUpdateCount() const { return FoldedUpdates.value(); }
  /// Number of direct exits patched into plain jumps ("dbt.chains").
  uint64_t chainCount() const { return Chains.value(); }
  /// Hot units retranslated as optimized traces ("trace.promotions").
  uint64_t tracePromotionCount() const { return TracePromotions.value(); }
  /// Promoted translations that fused at least two guest blocks
  /// ("trace.formed").
  uint64_t traceCount() const { return TracesFormed.value(); }
  /// Conditional-branch seams fused into trace spines
  /// ("trace.cond_fusions").
  uint64_t traceCondFusionCount() const { return TraceCondFusions.value(); }
  /// Signature checks elided by adaptive per-region check placement
  /// relative to the configured policy ("trace.checks_elided").
  uint64_t checksElidedCount() const { return TraceChecksElided.value(); }
  /// Signature updates that folded to identity and were rewritten to
  /// Nop by the backend ("trace.dead_updates").
  uint64_t deadUpdateCount() const { return TraceDeadUpdates.value(); }

  /// The registry this translator's counters live in (the injected one,
  /// or the private default).
  telemetry::MetricsRegistry &metrics() { return *Metrics; }
  const telemetry::MetricsRegistry &metrics() const { return *Metrics; }

  /// Attaches/detaches a structured event tracer. Null disables tracing
  /// (the default); events are timestamped with the interpreter's guest
  /// instruction count once run() binds one.
  void setTracer(telemetry::EventTracer *T) { Tracer = T; }
  telemetry::EventTracer *tracer() const { return Tracer; }

  /// Attaches/detaches a phase profiler (translate/execute scopes).
  void setProfiler(telemetry::PhaseProfiler *P) { Profiler = P; }
  telemetry::PhaseProfiler *profiler() const { return Profiler; }

  /// Attaches/detaches a block-execution profile. When attached, every
  /// translated sub-block gets a Prof counter bump in its prologue and
  /// each direct exit stub gets an edge bump, and superblock fusion only
  /// extends into targets the profile has observed as hot (first-seen
  /// order until the profile warms up). Null (the default) emits nothing
  /// and costs nothing.
  void setBlockProfile(telemetry::BlockProfile *P) { Profile = P; }
  telemetry::BlockProfile *blockProfile() const { return Profile; }

  /// Attaches/detaches a digest recorder (DESIGN.md §14). When attached
  /// *before translation*, every sub-block gets one Digest capture
  /// marker after its guest body and before the checker's exit updates,
  /// and run() binds the recorder to the interpreter in Marker mode.
  /// Null (the default) emits nothing and costs nothing. Note that
  /// attaching changes the code-cache layout, so a provenance-enabled
  /// campaign is only comparable against a provenance-enabled golden
  /// run.
  void setDigestRecorder(telemetry::DigestRecorder *R) { DigestRec = R; }
  telemetry::DigestRecorder *digestRecorder() const { return DigestRec; }

  /// Assembles a post-mortem bundle for \p Stop: stop classification,
  /// guest-attributed PC, CPU state, trace events (when a tracer is
  /// attached), a metrics snapshot, and guest/host disassembly of the
  /// faulting block. Callers add recovery status and annotations before
  /// handing the bundle to a FlightRecorder.
  telemetry::PostMortem buildPostMortem(const char *Reason,
                                        const StopInfo &Stop,
                                        const Interpreter &Interp) const;

  const DbtConfig &config() const { return Config; }

private:
  struct ChainPatch {
    uint64_t SiteAddr;
    uint64_t GuestTarget;
  };

  /// Translates the block entered at \p GuestAddr (and possibly
  /// following blocks into a superblock or, when Promoting, a trace);
  /// returns its cache address.
  uint64_t translate(uint64_t GuestAddr);
  uint64_t lookupOrTranslate(uint64_t GuestTarget);
  void flushTranslations();
  void reprotectCodePages();

  /// Opt tier: when \p GuestTarget's unit head has crossed the
  /// promotion threshold, evicts the unit and retranslates it as an
  /// optimized trace. Returns the (possibly new) cache address to
  /// dispatch to.
  uint64_t maybePromote(uint64_t GuestTarget, uint64_t Cache);
  /// Chooses the check policy for the region headed at \p RegionHead:
  /// the configured policy for cold regions, the relaxed HotPolicy once
  /// the profile shows the head past the promotion threshold (opt tier
  /// only).
  CheckPolicy regionPolicy(uint64_t RegionHead) const;

  /// Trace timestamp: the bound interpreter's instruction count.
  uint64_t now() const {
    return ClockSource ? ClockSource->instructionCount() : 0;
  }

  /// One entry of the indirect-branch translation cache: a direct-mapped
  /// guest→cache-address table consulted before the block-table lookup on
  /// every TrampR exit (the DBT analogue of a hardware BTB). Check seals
  /// the (Guest, Cache) pair so that a flipped entry is dropped on hit
  /// instead of redirecting control (verified only when self-integrity
  /// checking is enabled).
  struct IbtcEntry {
    uint64_t Guest = ~0ULL;
    uint64_t Cache = 0;
    uint64_t Check = 0;
  };
  static constexpr size_t IbtcSlots = 512; // Power of two.

  /// Seals an IBTC entry: a cheap two-multiply mix of (Guest, Cache),
  /// never zero so a cleared entry cannot masquerade as sealed.
  static uint64_t ibtcCheckWord(uint64_t Guest, uint64_t Cache);

  /// FNV-1a over the block's cache byte range plus its sealed entry
  /// metadata (guest address, cache address, size).
  uint64_t computeIntegrityWord(const TranslatedBlock &TB) const;
  /// Plausibility-checks \p TB's metadata and recomputes its integrity
  /// word. False means the block (or its table entry) is corrupted.
  bool verifyIntegrityWord(const TranslatedBlock &TB) const;
  /// Recomputes the integrity words of every live block whose range
  /// contains \p CacheAddr (after a legitimate chain-patch write).
  void resealBlocksContaining(uint64_t CacheAddr);
  /// Lazy per-dispatch verification of \p GuestTarget's block. Returns
  /// true when a mismatch was found and the unit was quarantined (the
  /// caller must re-resolve its cache address).
  bool dispatchVerify(uint64_t GuestTarget);
  /// Runs a scrubber pass when the dispatch-count interval expired.
  void maybeScrub();
  /// Evicts the translation unit ending at \p UnitEnd: drops its blocks,
  /// safe points, IBTC entries, and chain bookkeeping, unchains patched
  /// predecessors, and retranslates the unit head when possible.
  /// \p Origin tags the flight-recorder bundle ("scrub",
  /// "dispatch-verify", "recovery").
  void quarantineUnit(uint64_t UnitEnd, const char *Origin);
  /// The eviction half of quarantineUnit, shared with trace promotion
  /// (which evicts clean units without diagnostics or retranslation).
  /// Returns the unit's head guest address, or ~0 when no live block
  /// belongs to the unit.
  uint64_t evictUnit(uint64_t UnitEnd);

  Memory &Mem;
  DbtConfig Config;
  /// Owned storage when no registry was injected.
  std::unique_ptr<telemetry::MetricsRegistry> OwnedMetrics;
  telemetry::MetricsRegistry *Metrics;
  std::unique_ptr<ControlFlowChecker> Checker;
  ShadowStackChecker ShadowStack;
  BlockTable<TranslatedBlock> BlockMap;
  std::unordered_map<uint64_t, SafePointInfo> SafePoints;
  /// Cache ranges whose translations were evicted (trace promotion,
  /// quarantine) but whose bytes stay allocated. Branch-site
  /// enumeration still reports them: a fault campaign's golden run
  /// executes the pre-promotion translation during warm-up, so its
  /// instrumentation branches must keep classifying as instrumentation
  /// after the promoted trace replaces them in the block table.
  struct RetiredRange {
    uint64_t Begin = 0;
    uint64_t End = 0;
    uint64_t GuestHead = 0;
    std::vector<std::pair<uint64_t, uint64_t>> InstrRanges;
  };
  std::vector<RetiredRange> Retired;
  uint64_t NumCheckSites = 0;
  std::string LoadError;
  std::array<IbtcEntry, IbtcSlots> Ibtc;
  std::vector<ChainPatch> Patches;
  uint64_t CacheAlloc;      ///< Next free cache address.
  uint64_t GuestCodeBase = 0;
  uint64_t GuestCodeSize = 0;
  uint64_t GuestEntry = 0;
  bool CodePagesWritable = false;
  // Registry-backed counters, cached once at construction so the hot
  // paths bump them without name lookups.
  telemetry::Counter &Translations;
  telemetry::Counter &Dispatches;
  telemetry::Counter &Chains;
  telemetry::Counter &IbtcHits;
  telemetry::Counter &IbtcMisses;
  telemetry::Counter &Flushes;
  telemetry::Counter &FoldedUpdates;
  telemetry::Counter &SuperblockFusions;
  telemetry::Counter &Degrades;
  telemetry::Counter &IntegrityScrubs;
  telemetry::Counter &IntegrityMismatches;
  telemetry::Counter &IntegrityRetranslations;
  telemetry::Counter &TracePromotions;
  telemetry::Counter &TracesFormed;
  telemetry::Counter &TraceCondFusions;
  telemetry::Counter &TraceChecksElided;
  telemetry::Counter &TraceDeadUpdates;
  /// Cache-exit dispatches since the last scrubber pass.
  uint64_t DispatchesSinceScrub = 0;
  /// True while translate() runs on behalf of a trace promotion: fusion
  /// crosses hot conditional seams (with tail duplication), the backend
  /// folds the spine, and only the unit head is registered.
  bool Promoting = false;
  telemetry::FlightRecorder *Recorder = nullptr;
  telemetry::EventTracer *Tracer = nullptr;
  telemetry::PhaseProfiler *Profiler = nullptr;
  telemetry::BlockProfile *Profile = nullptr;
  telemetry::DigestRecorder *DigestRec = nullptr;
  /// The opt tier needs hotness data to promote; when no profile was
  /// attached, load() creates this private one.
  std::unique_ptr<telemetry::BlockProfile> OwnedProfile;
  const Interpreter *ClockSource = nullptr;
  /// Leaders from the assembler side table (eager mode).
  std::vector<uint64_t> EagerLeaders;
};

} // namespace cfed

#endif // CFED_DBT_DBT_H
