//===- BlockTable.h - Flat guest-address block index ------------*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A flat open-addressing hash from guest address to TranslatedBlock,
/// replacing the std::map on the code-cache exit path: every unchained
/// Tramp/TrampR dispatch performs exactly one lookup here, so it must be
/// a couple of cache lines, not a red-black-tree walk.
///
/// Blocks live in a deque (stable references across insertion); the index
/// holds (key, pool-position) pairs probed linearly from a multiplicative
/// hash. There is no per-key erase on the hot path: translations die
/// wholesale at a self-modification flush (clear()) or in batches when
/// the integrity scrubber quarantines a unit (eraseIf(), which rebuilds
/// the index — cold-path only).
///
//===----------------------------------------------------------------------===//

#ifndef CFED_DBT_BLOCKTABLE_H
#define CFED_DBT_BLOCKTABLE_H

#include <cassert>
#include <cstdint>
#include <deque>
#include <vector>

namespace cfed {

/// Flat hash of translated blocks keyed by guest address. BlockT needs a
/// GuestAddr member; iteration yields blocks in translation order.
template <typename BlockT> class BlockTable {
public:
  BlockTable() { Slots.resize(InitialSlots, Empty); }

  /// Inserts \p Block under \p GuestAddr, which must not be present yet.
  /// The reference stays valid until clear() or eraseIf().
  BlockT &insert(uint64_t GuestAddr, BlockT &&Block) {
    assert(!find(GuestAddr) && "duplicate guest address");
    if ((Pool.size() + 1) * 10 >= Slots.size() * 7)
      grow();
    Pool.push_back(std::move(Block));
    placeIndex(GuestAddr, static_cast<uint32_t>(Pool.size() - 1));
    return Pool.back();
  }

  /// Returns the block translated at \p GuestAddr, or nullptr.
  const BlockT *find(uint64_t GuestAddr) const {
    uint64_t Mask = Slots.size() - 1;
    for (uint64_t Slot = hash(GuestAddr);; Slot = (Slot + 1) & Mask) {
      uint32_t Pos = Slots[Slot & Mask];
      if (Pos == Empty)
        return nullptr;
      if (Pool[Pos].GuestAddr == GuestAddr)
        return &Pool[Pos];
    }
  }

  bool contains(uint64_t GuestAddr) const { return find(GuestAddr); }

  /// Mutable lookup for bookkeeping fields (dispatch hit counts,
  /// integrity words). The key must not change through the result.
  BlockT *findMutable(uint64_t GuestAddr) {
    return const_cast<BlockT *>(
        static_cast<const BlockTable *>(this)->find(GuestAddr));
  }

  /// Removes every block \p Pred accepts and rebuilds the index. O(n)
  /// and invalidates references — quarantine path only, never dispatch.
  /// Returns the number of blocks removed.
  template <typename PredT> size_t eraseIf(PredT Pred) {
    std::deque<BlockT> Kept;
    size_t Removed = 0;
    for (BlockT &Block : Pool) {
      if (Pred(static_cast<const BlockT &>(Block)))
        ++Removed;
      else
        Kept.push_back(std::move(Block));
    }
    Pool = std::move(Kept);
    size_t NewSlots = InitialSlots;
    while ((Pool.size() + 1) * 10 >= NewSlots * 7)
      NewSlots *= 2;
    Slots.assign(NewSlots, Empty);
    for (uint32_t Pos = 0; Pos < Pool.size(); ++Pos)
      placeIndex(Pool[Pos].GuestAddr, Pos);
    return Removed;
  }

  void clear() {
    Pool.clear();
    Slots.assign(InitialSlots, Empty);
  }

  size_t size() const { return Pool.size(); }
  bool empty() const { return Pool.empty(); }

  auto begin() const { return Pool.begin(); }
  auto end() const { return Pool.end(); }
  auto begin() { return Pool.begin(); }
  auto end() { return Pool.end(); }

private:
  static constexpr uint32_t Empty = UINT32_MAX;
  static constexpr size_t InitialSlots = 256; // Power of two.

  uint64_t hash(uint64_t Key) const {
    // Guest addresses are 8-aligned; mix so consecutive blocks spread.
    Key *= 0x9e3779b97f4a7c15ULL;
    return (Key >> 32) & (Slots.size() - 1);
  }

  void placeIndex(uint64_t GuestAddr, uint32_t Pos) {
    uint64_t Mask = Slots.size() - 1;
    uint64_t Slot = hash(GuestAddr);
    while (Slots[Slot] != Empty)
      Slot = (Slot + 1) & Mask;
    Slots[Slot] = Pos;
  }

  void grow() {
    Slots.assign(Slots.size() * 2, Empty);
    for (uint32_t Pos = 0; Pos < Pool.size(); ++Pos)
      placeIndex(Pool[Pos].GuestAddr, Pos);
  }

  std::deque<BlockT> Pool;
  std::vector<uint32_t> Slots;
};

} // namespace cfed

#endif // CFED_DBT_BLOCKTABLE_H
