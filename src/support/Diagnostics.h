//===- Diagnostics.h - Fatal errors and unreachable markers ----*- C++ -*-===//
//
// Part of the CFED project: reproduction of Borin et al., "Software-Based
// Transparent and Comprehensive Control-Flow Error Detection" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-terminating diagnostics for programmatic errors, in the spirit of
/// LLVM's report_fatal_error / llvm_unreachable. Library code never throws;
/// invariant violations abort with a message.
///
//===----------------------------------------------------------------------===//

#ifndef CFED_SUPPORT_DIAGNOSTICS_H
#define CFED_SUPPORT_DIAGNOSTICS_H

#include <string>

namespace cfed {

/// Prints \p Message to stderr and aborts. Used for invariant violations
/// that cannot be expressed as a recoverable status.
[[noreturn]] void reportFatalError(const std::string &Message);

/// printf-style variant of reportFatalError, so invariant messages are
/// formatted through one helper instead of ad-hoc
/// reportFatalError(formatString(...)) pairs at every call site.
[[noreturn]] void reportFatalErrorf(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Marks a point in the code that must never be reached. Aborts with the
/// location and \p Message when executed.
[[noreturn]] void unreachableInternal(const char *Message, const char *File,
                                      unsigned Line);

/// Prints an informational "[cfed] ..." line to stderr. The single
/// routing point for tool status output (final stats reports, stop
/// summaries), keeping diagnostics off stdout where tools emit data.
void reportNote(const std::string &Message);

/// printf-style variant of reportNote.
void reportNotef(const char *Fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace cfed

#define cfed_unreachable(MSG)                                                  \
  ::cfed::unreachableInternal(MSG, __FILE__, __LINE__)

#endif // CFED_SUPPORT_DIAGNOSTICS_H
