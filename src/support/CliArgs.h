//===- CliArgs.h - Strict command-line argument parsing ---------*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared strict parsing helpers for the CLI tools (cfed-run,
/// cfed-stat). Tools keep their own option tables; these helpers make
/// the failure modes uniform: unknown options, options with missing or
/// trailing-junk values, and flags given a value they do not take all
/// produce one clear "error: ..." line on stderr and a false return the
/// tool turns into its usage text and exit code 2. Header-only.
///
//===----------------------------------------------------------------------===//

#ifndef CFED_SUPPORT_CLIARGS_H
#define CFED_SUPPORT_CLIARGS_H

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace cfed {
namespace cli {

/// Strict full-string parse of a non-negative integer (base 0, so 0x..
/// hex and 0.. octal work). Rejects empty text, any trailing junk,
/// minus signs and overflow.
inline bool parseUint(const std::string &Text, uint64_t &Out) {
  if (Text.empty() || Text[0] == '-' || Text[0] == '+')
    return false;
  errno = 0;
  char *End = nullptr;
  unsigned long long Value = std::strtoull(Text.c_str(), &End, 0);
  if (errno == ERANGE || End != Text.c_str() + Text.size())
    return false;
  Out = Value;
  return true;
}

/// Strict full-string parse of a finite double.
inline bool parseDouble(const std::string &Text, double &Out) {
  if (Text.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  double Value = std::strtod(Text.c_str(), &End);
  if (errno == ERANGE || End != Text.c_str() + Text.size())
    return false;
  Out = Value;
  return true;
}

/// "error: unknown option '--frobnicate'". Always returns false so
/// option tables can `return unknownOption(Arg);`.
inline bool unknownOption(const std::string &Arg) {
  std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
  return false;
}

/// "error: option --inject needs <count>, got 'abc'" (or "needs
/// <count>, got nothing" when the value is missing/empty).
inline bool badValue(const std::string &Name, const char *Expected,
                     const std::string &Text) {
  if (Text.empty())
    std::fprintf(stderr, "error: option %s needs %s, got nothing\n",
                 Name.c_str(), Expected);
  else
    std::fprintf(stderr, "error: option %s needs %s, got '%s'\n",
                 Name.c_str(), Expected, Text.c_str());
  return false;
}

/// "error: option --eager does not take a value".
inline bool unexpectedValue(const std::string &Name) {
  std::fprintf(stderr, "error: option %s does not take a value\n",
               Name.c_str());
  return false;
}

/// "error: unexpected extra argument 'foo'" (a second positional).
inline bool extraPositional(const std::string &Arg) {
  std::fprintf(stderr, "error: unexpected extra argument '%s'\n",
               Arg.c_str());
  return false;
}

/// One "--name" / "--name=value" argument split at the first '='.
/// Returns false for positionals (no leading "--").
struct Flag {
  std::string Name;  ///< Up to (excluding) the '='; includes the "--".
  std::string Value; ///< Text after the '='; empty when absent.
  bool HasValue = false;
};

inline bool splitFlag(const std::string &Arg, Flag &Out) {
  if (Arg.rfind("--", 0) != 0)
    return false;
  size_t Eq = Arg.find('=');
  Out.Name = Arg.substr(0, Eq);
  Out.HasValue = Eq != std::string::npos;
  Out.Value = Out.HasValue ? Arg.substr(Eq + 1) : std::string();
  return true;
}

} // namespace cli
} // namespace cfed

#endif // CFED_SUPPORT_CLIARGS_H
