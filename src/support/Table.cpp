//===- Table.cpp - Aligned text table rendering ----------------------------===//

#include "support/Table.h"

#include <cassert>

using namespace cfed;

void Table::setHeader(std::vector<std::string> Cells) {
  assert(Rows.empty() && "header must be set before rows");
  Header = std::move(Cells);
}

void Table::addRow(std::vector<std::string> Cells) {
  assert(!Header.empty() && "set a header first");
  assert(Cells.size() == Header.size() && "row width must match header");
  Rows.push_back(std::move(Cells));
}

void Table::addSeparator() { Rows.emplace_back(); }

std::string Table::render() const {
  assert(!Header.empty() && "cannot render a table without a header");
  std::vector<size_t> Widths(Header.size(), 0);
  auto Widen = [&Widths](const std::vector<std::string> &Cells) {
    for (size_t I = 0; I < Cells.size(); ++I)
      if (Cells[I].size() > Widths[I])
        Widths[I] = Cells[I].size();
  };
  Widen(Header);
  for (const auto &Row : Rows)
    Widen(Row);

  size_t TotalWidth = 0;
  for (size_t Width : Widths)
    TotalWidth += Width + 2;

  auto RenderRow = [&](const std::vector<std::string> &Cells,
                       std::string &Out) {
    for (size_t I = 0; I < Cells.size(); ++I) {
      size_t Pad = Widths[I] - Cells[I].size();
      if (I == 0) { // Left-align the label column.
        Out += Cells[I];
        Out.append(Pad, ' ');
      } else {
        Out.append(Pad, ' ');
        Out += Cells[I];
      }
      if (I + 1 != Cells.size())
        Out += "  ";
    }
    Out += '\n';
  };

  std::string Out;
  RenderRow(Header, Out);
  Out.append(TotalWidth, '-');
  Out += '\n';
  for (const auto &Row : Rows) {
    if (Row.empty()) {
      Out.append(TotalWidth, '-');
      Out += '\n';
      continue;
    }
    RenderRow(Row, Out);
  }
  return Out;
}
