//===- Json.h - Minimal JSON reader -----------------------------*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal recursive-descent JSON reader — just enough to parse back
/// what this repository's own sinks emit (registry snapshots, Chrome
/// trace_event output, flight-recorder bundles, BENCH_perf.json).
/// Header-only so the analysis tool and the tests share one parser.
/// Not a general-purpose JSON library: no \uXXXX escapes, no surrogate
/// pairs, duplicate keys keep the first value.
///
//===----------------------------------------------------------------------===//

#ifndef CFED_SUPPORT_JSON_H
#define CFED_SUPPORT_JSON_H

#include <cctype>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace cfed {
namespace json {

struct JsonValue {
  enum Kind { Null, Bool, Number, String, Array, Object } K = Null;
  bool B = false;
  double Num = 0.0;
  std::string Str;
  std::vector<JsonValue> Items;
  std::map<std::string, JsonValue> Fields;

  /// Object member access; returns a shared Null value when absent.
  const JsonValue &operator[](const std::string &Name) const {
    static const JsonValue Missing;
    auto It = Fields.find(Name);
    return It == Fields.end() ? Missing : It->second;
  }
};

class JsonParser {
public:
  explicit JsonParser(const std::string &Text) : Text(Text) {}

  /// Parses the whole input as one value; trailing garbage fails.
  bool parse(JsonValue &Out) {
    return value(Out) && (skipWs(), Pos == Text.size());
  }

private:
  const std::string &Text;
  size_t Pos = 0;

  void skipWs() {
    while (Pos < Text.size() && (Text[Pos] == ' ' || Text[Pos] == '\n' ||
                                 Text[Pos] == '\r' || Text[Pos] == '\t'))
      ++Pos;
  }
  bool consume(char C) {
    skipWs();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }
  bool stringLit(std::string &Out) {
    skipWs();
    if (Pos >= Text.size() || Text[Pos] != '"')
      return false;
    ++Pos;
    Out.clear();
    while (Pos < Text.size() && Text[Pos] != '"') {
      char C = Text[Pos++];
      if (C == '\\' && Pos < Text.size()) {
        char E = Text[Pos++];
        switch (E) {
        case 'n': Out += '\n'; break;
        case 't': Out += '\t'; break;
        case 'r': Out += '\r'; break;
        case '"': Out += '"'; break;
        case '\\': Out += '\\'; break;
        default: Out += E; break;
        }
      } else
        Out += C;
    }
    return Pos < Text.size() && Text[Pos++] == '"';
  }
  bool value(JsonValue &Out) {
    skipWs();
    if (Pos >= Text.size())
      return false;
    char C = Text[Pos];
    if (C == '{') {
      ++Pos;
      Out.K = JsonValue::Object;
      skipWs();
      if (consume('}'))
        return true;
      do {
        std::string Key;
        JsonValue Val;
        if (!stringLit(Key) || !consume(':') || !value(Val))
          return false;
        Out.Fields.emplace(std::move(Key), std::move(Val));
      } while (consume(','));
      return consume('}');
    }
    if (C == '[') {
      ++Pos;
      Out.K = JsonValue::Array;
      skipWs();
      if (consume(']'))
        return true;
      do {
        JsonValue Val;
        if (!value(Val))
          return false;
        Out.Items.push_back(std::move(Val));
      } while (consume(','));
      return consume(']');
    }
    if (C == '"') {
      Out.K = JsonValue::String;
      return stringLit(Out.Str);
    }
    if (Text.compare(Pos, 4, "true") == 0) {
      Out.K = JsonValue::Bool;
      Out.B = true;
      Pos += 4;
      return true;
    }
    if (Text.compare(Pos, 5, "false") == 0) {
      Out.K = JsonValue::Bool;
      Pos += 5;
      return true;
    }
    if (Text.compare(Pos, 4, "null") == 0) {
      Pos += 4;
      return true;
    }
    size_t End = Pos;
    while (End < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[End])) ||
            Text[End] == '-' || Text[End] == '+' || Text[End] == '.' ||
            Text[End] == 'e' || Text[End] == 'E'))
      ++End;
    if (End == Pos)
      return false;
    Out.K = JsonValue::Number;
    Out.Num = std::strtod(Text.substr(Pos, End - Pos).c_str(), nullptr);
    Pos = End;
    return true;
  }
};

} // namespace json
} // namespace cfed

#endif // CFED_SUPPORT_JSON_H
