//===- Prng.cpp - Deterministic pseudo-random number generator -----------===//

#include "support/Prng.h"

using namespace cfed;

static uint64_t splitmix64(uint64_t &X) {
  X += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

static uint64_t rotl64(uint64_t X, int K) {
  return (X << K) | (X >> (64 - K));
}

void Prng::reseed(uint64_t Seed) {
  for (uint64_t &Word : State)
    Word = splitmix64(Seed);
}

uint64_t Prng::next() {
  uint64_t Result = rotl64(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl64(State[3], 45);
  return Result;
}

uint64_t Prng::nextBelow(uint64_t Bound) {
  assert(Bound != 0 && "nextBelow bound must be nonzero");
  // Rejection sampling: draw until the value falls in the largest multiple
  // of Bound that fits in 64 bits.
  uint64_t Threshold = -Bound % Bound;
  for (;;) {
    uint64_t Value = next();
    if (Value >= Threshold)
      return Value % Bound;
  }
}

int64_t Prng::nextInRange(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "empty range");
  uint64_t Span = static_cast<uint64_t>(Hi - Lo) + 1;
  if (Span == 0) // Full 64-bit range.
    return static_cast<int64_t>(next());
  return Lo + static_cast<int64_t>(nextBelow(Span));
}

bool Prng::chance(uint64_t Num, uint64_t Den) {
  assert(Den != 0 && "denominator must be nonzero");
  return nextBelow(Den) < Num;
}

double Prng::nextDouble() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}
