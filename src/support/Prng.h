//===- Prng.h - Deterministic pseudo-random number generator ---*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic, seedable xoshiro256** generator. Every experiment in the
/// repository is reproducible because all randomness flows through this
/// class with explicit seeds.
///
//===----------------------------------------------------------------------===//

#ifndef CFED_SUPPORT_PRNG_H
#define CFED_SUPPORT_PRNG_H

#include <cassert>
#include <cstdint>

namespace cfed {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation), seeded via splitmix64.
class Prng {
public:
  explicit Prng(uint64_t Seed) { reseed(Seed); }

  /// Re-initializes the state from \p Seed via splitmix64.
  void reseed(uint64_t Seed);

  /// Returns the next 64 uniformly distributed bits.
  uint64_t next();

  /// Returns a uniformly distributed value in [0, Bound). \p Bound must be
  /// nonzero. Uses rejection sampling to avoid modulo bias.
  uint64_t nextBelow(uint64_t Bound);

  /// Returns a uniformly distributed value in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi);

  /// Returns true with probability \p Num / \p Den.
  bool chance(uint64_t Num, uint64_t Den);

  /// Returns a double uniformly distributed in [0, 1).
  double nextDouble();

private:
  uint64_t State[4];
};

} // namespace cfed

#endif // CFED_SUPPORT_PRNG_H
