//===- Stats.cpp - Small statistical helpers ------------------------------===//

#include "support/Stats.h"

#include <cassert>
#include <cmath>

using namespace cfed;

double cfed::geometricMean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double Value : Values) {
    assert(Value > 0.0 && "geometric mean requires positive values");
    LogSum += std::log(Value);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

double cfed::arithmeticMean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double Value : Values)
    Sum += Value;
  return Sum / static_cast<double>(Values.size());
}
