//===- Stats.cpp - Small statistical helpers ------------------------------===//

#include "support/Stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace cfed;

double cfed::geometricMean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double Value : Values) {
    assert(Value > 0.0 && "geometric mean requires positive values");
    LogSum += std::log(Value);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

double cfed::arithmeticMean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double Value : Values)
    Sum += Value;
  return Sum / static_cast<double>(Values.size());
}

WilsonInterval cfed::wilsonInterval(uint64_t Successes, uint64_t Trials,
                                    double Z) {
  assert(Successes <= Trials && "more successes than trials");
  assert(Z > 0.0 && "critical value must be positive");
  if (Trials == 0)
    return {0.0, 1.0};
  double N = static_cast<double>(Trials);
  double P = static_cast<double>(Successes) / N;
  double Z2 = Z * Z;
  double Denom = 1.0 + Z2 / N;
  double Center = (P + Z2 / (2.0 * N)) / Denom;
  double Margin =
      (Z / Denom) * std::sqrt(P * (1.0 - P) / N + Z2 / (4.0 * N * N));
  WilsonInterval I;
  I.Low = std::max(0.0, Center - Margin);
  I.High = std::min(1.0, Center + Margin);
  // At the boundaries the exact Wilson bound is 0 (resp. 1), but the
  // arithmetic above leaves ~1e-17 of rounding noise that would make
  // the interval "exclude" a true rate of exactly 0 or 1.
  if (Successes == 0)
    I.Low = 0.0;
  if (Successes == Trials)
    I.High = 1.0;
  return I;
}
