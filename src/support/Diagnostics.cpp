//===- Diagnostics.cpp - Fatal errors and unreachable markers ------------===//

#include "support/Diagnostics.h"

#include <cstdio>
#include <cstdlib>

using namespace cfed;

void cfed::reportFatalError(const std::string &Message) {
  std::fprintf(stderr, "cfed fatal error: %s\n", Message.c_str());
  std::abort();
}

void cfed::unreachableInternal(const char *Message, const char *File,
                               unsigned Line) {
  std::fprintf(stderr, "cfed unreachable at %s:%u: %s\n", File, Line, Message);
  std::abort();
}
