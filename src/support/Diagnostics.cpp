//===- Diagnostics.cpp - Fatal errors and unreachable markers ------------===//

#include "support/Diagnostics.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

using namespace cfed;

void cfed::reportFatalError(const std::string &Message) {
  std::fprintf(stderr, "cfed fatal error: %s\n", Message.c_str());
  std::abort();
}

void cfed::reportFatalErrorf(const char *Fmt, ...) {
  std::fprintf(stderr, "cfed fatal error: ");
  va_list Args;
  va_start(Args, Fmt);
  std::vfprintf(stderr, Fmt, Args);
  va_end(Args);
  std::fprintf(stderr, "\n");
  std::abort();
}

void cfed::reportNote(const std::string &Message) {
  std::fprintf(stderr, "[cfed] %s\n", Message.c_str());
}

void cfed::reportNotef(const char *Fmt, ...) {
  std::fprintf(stderr, "[cfed] ");
  va_list Args;
  va_start(Args, Fmt);
  std::vfprintf(stderr, Fmt, Args);
  va_end(Args);
  std::fprintf(stderr, "\n");
}

void cfed::unreachableInternal(const char *Message, const char *File,
                               unsigned Line) {
  std::fprintf(stderr, "cfed unreachable at %s:%u: %s\n", File, Line, Message);
  std::abort();
}
