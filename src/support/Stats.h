//===- Stats.h - Small statistical helpers ----------------------*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Geometric and arithmetic means used when aggregating per-benchmark
/// slowdowns the same way the paper's figures do.
///
//===----------------------------------------------------------------------===//

#ifndef CFED_SUPPORT_STATS_H
#define CFED_SUPPORT_STATS_H

#include <vector>

namespace cfed {

/// Geometric mean of \p Values; all values must be positive. Returns 0 for
/// an empty input.
double geometricMean(const std::vector<double> &Values);

/// Arithmetic mean of \p Values. Returns 0 for an empty input.
double arithmeticMean(const std::vector<double> &Values);

} // namespace cfed

#endif // CFED_SUPPORT_STATS_H
