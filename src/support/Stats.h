//===- Stats.h - Small statistical helpers ----------------------*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Geometric and arithmetic means used when aggregating per-benchmark
/// slowdowns the same way the paper's figures do.
///
//===----------------------------------------------------------------------===//

#ifndef CFED_SUPPORT_STATS_H
#define CFED_SUPPORT_STATS_H

#include <cstdint>
#include <vector>

namespace cfed {

/// Geometric mean of \p Values; all values must be positive. Returns 0 for
/// an empty input.
double geometricMean(const std::vector<double> &Values);

/// Arithmetic mean of \p Values. Returns 0 for an empty input.
double arithmeticMean(const std::vector<double> &Values);

/// A Wilson-score confidence interval on a binomial proportion. Unlike
/// the Wald interval it stays inside [0, 1] and behaves sanely at 0 or
/// n successes — the regimes fault campaigns live in (SDC rates near
/// zero with small samples).
struct WilsonInterval {
  double Low = 0.0;
  double High = 1.0;

  double halfWidth() const { return (High - Low) / 2.0; }
  bool contains(double P) const { return P >= Low && P <= High; }
};

/// Wilson interval for \p Successes out of \p Trials at critical value
/// \p Z (1.96 for 95%, 2.576 for 99%). Zero trials yields [0, 1].
WilsonInterval wilsonInterval(uint64_t Successes, uint64_t Trials, double Z);

} // namespace cfed

#endif // CFED_SUPPORT_STATS_H
