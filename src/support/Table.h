//===- Table.h - Aligned text table rendering -------------------*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders the paper-style result tables printed by the bench binaries:
/// a header row, string cells, and column-aligned monospace output.
///
//===----------------------------------------------------------------------===//

#ifndef CFED_SUPPORT_TABLE_H
#define CFED_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace cfed {

/// A simple column-aligned table. Append a header and rows of cells, then
/// render to a string. The first column is left-aligned, all other columns
/// right-aligned (matching how the paper prints benchmark rows).
class Table {
public:
  /// Sets the header row. Must be called before adding rows.
  void setHeader(std::vector<std::string> Cells);

  /// Appends one data row; the cell count must match the header.
  void addRow(std::vector<std::string> Cells);

  /// Appends a horizontal separator line.
  void addSeparator();

  /// Renders the table with padded columns.
  std::string render() const;

private:
  std::vector<std::string> Header;
  // A separator is encoded as an empty row.
  std::vector<std::vector<std::string>> Rows;
};

} // namespace cfed

#endif // CFED_SUPPORT_TABLE_H
