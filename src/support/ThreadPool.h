//===- ThreadPool.h - Fixed-size thread pool --------------------*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed pool of worker threads driving an index-space parallel-for.
/// Built for fault-injection campaigns: thousands of fully independent
/// runs whose results land in per-index slots, so scheduling order never
/// affects the merged outcome. Work distribution is a single atomic
/// cursor (no per-worker queues, no stealing); with one job, or one item,
/// everything runs inline on the caller with zero thread traffic.
///
//===----------------------------------------------------------------------===//

#ifndef CFED_SUPPORT_THREADPOOL_H
#define CFED_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cfed {

class ThreadPool {
public:
  /// Creates \p Jobs workers (including the calling thread; 0 is treated
  /// as 1, so only Jobs - 1 threads are actually spawned).
  explicit ThreadPool(unsigned Jobs) : NumJobs(Jobs < 1 ? 1 : Jobs) {
    for (unsigned I = 1; I < NumJobs; ++I)
      Workers.emplace_back([this] { workerLoop(); });
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> Lock(M);
      Stopping = true;
      ++Generation;
    }
    WakeCV.notify_all();
    for (std::thread &T : Workers)
      T.join();
  }

  unsigned jobCount() const { return NumJobs; }

  /// Runs Fn(I) for every I in [0, Count), spread over the pool. Blocks
  /// until all indices are done. Must not be called re-entrantly.
  void parallelFor(uint64_t Count, const std::function<void(uint64_t)> &Fn) {
    if (Workers.empty() || Count <= 1) {
      for (uint64_t I = 0; I < Count; ++I)
        Fn(I);
      return;
    }
    {
      std::lock_guard<std::mutex> Lock(M);
      Task = &Fn;
      TaskCount = Count;
      Cursor.store(0, std::memory_order_relaxed);
      Pending = Workers.size();
      ++Generation;
    }
    WakeCV.notify_all();
    drainTask(Fn);
    std::unique_lock<std::mutex> Lock(M);
    DoneCV.wait(Lock, [this] { return Pending == 0; });
    Task = nullptr;
  }

  /// Job count for "use the machine" callers: the CFED_JOBS environment
  /// variable if set, otherwise the hardware thread count.
  static unsigned defaultJobCount() {
    if (const char *Env = std::getenv("CFED_JOBS")) {
      long Value = std::strtol(Env, nullptr, 10);
      if (Value >= 1)
        return static_cast<unsigned>(Value);
    }
    unsigned Hw = std::thread::hardware_concurrency();
    return Hw < 1 ? 1 : Hw;
  }

private:
  void drainTask(const std::function<void(uint64_t)> &Fn) {
    for (;;) {
      uint64_t I = Cursor.fetch_add(1, std::memory_order_relaxed);
      if (I >= TaskCount)
        return;
      Fn(I);
    }
  }

  void workerLoop() {
    uint64_t SeenGeneration = 0;
    for (;;) {
      const std::function<void(uint64_t)> *Fn = nullptr;
      {
        std::unique_lock<std::mutex> Lock(M);
        WakeCV.wait(Lock, [&] {
          return Stopping || Generation != SeenGeneration;
        });
        if (Stopping)
          return;
        SeenGeneration = Generation;
        Fn = Task;
      }
      if (Fn)
        drainTask(*Fn);
      {
        std::lock_guard<std::mutex> Lock(M);
        if (--Pending == 0)
          DoneCV.notify_all();
      }
    }
  }

  unsigned NumJobs;
  std::vector<std::thread> Workers;
  std::mutex M;
  std::condition_variable WakeCV;
  std::condition_variable DoneCV;
  const std::function<void(uint64_t)> *Task = nullptr;
  uint64_t TaskCount = 0;
  std::atomic<uint64_t> Cursor{0};
  size_t Pending = 0;
  uint64_t Generation = 0;
  bool Stopping = false;
};

} // namespace cfed

#endif // CFED_SUPPORT_THREADPOOL_H
