//===- Format.cpp - printf-style formatting into std::string -------------===//

#include "support/Format.h"

#include <cstdarg>
#include <cstdio>

using namespace cfed;

std::string cfed::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Size = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  if (Size < 0) {
    va_end(ArgsCopy);
    return std::string();
  }
  std::string Result(static_cast<size_t>(Size), '\0');
  std::vsnprintf(Result.data(), Result.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Result;
}
