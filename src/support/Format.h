//===- Format.h - printf-style formatting into std::string -----*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny printf-to-std::string helper so that library code can build
/// messages without <iostream>.
///
//===----------------------------------------------------------------------===//

#ifndef CFED_SUPPORT_FORMAT_H
#define CFED_SUPPORT_FORMAT_H

#include <string>

namespace cfed {

/// Formats like std::snprintf but returns a std::string of exactly the
/// right size.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace cfed

#endif // CFED_SUPPORT_FORMAT_H
