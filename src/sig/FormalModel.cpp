//===- FormalModel.cpp - Section 4 formal framework ----------------------------===//

#include "sig/FormalModel.h"

#include "support/Diagnostics.h"

#include <algorithm>

using namespace cfed;
using namespace cfed::sig;

Scheme::~Scheme() = default;

void Scheme::prepare(const AbstractCfg &Cfg) { (void)Cfg; }

bool Scheme::checkHeadEntry(State, unsigned) const { return true; }

bool Scheme::checkTailEntry(State, unsigned) const { return true; }

AbstractCfg AbstractCfg::random(Prng &Rng, unsigned NumBlocks) {
  assert(NumBlocks >= 2 && "need at least an entry and an exit");
  AbstractCfg Cfg;
  Cfg.Succs.resize(NumBlocks);
  // A spine guarantees connectivity and an exit at the last block.
  for (unsigned I = 0; I + 1 < NumBlocks; ++I)
    Cfg.Succs[I].push_back(I + 1);
  // Random extra successors (forward or backward, never the entry — like
  // real programs, nothing branches back to the start) on half the
  // blocks.
  for (unsigned I = 0; I + 1 < NumBlocks; ++I) {
    if (!Rng.chance(1, 2))
      continue;
    unsigned Extra = 1 + static_cast<unsigned>(Rng.nextBelow(NumBlocks - 1));
    if (Extra != Cfg.Succs[I][0])
      Cfg.Succs[I].push_back(Extra);
  }
  return Cfg;
}

namespace {

/// Unique head signature of a block: the "address of the first
/// instruction" of Section 5, abstracted.
uint64_t hid(unsigned Block) { return (uint64_t(Block) + 1) * 16; }

//===----------------------------------------------------------------------===//
// EdgCF: PC' is the next head signature on edges, 0 inside tails.
//===----------------------------------------------------------------------===//

class EdgCfScheme : public Scheme {
public:
  const char *name() const override { return "EdgCF"; }
  State initial(const AbstractCfg &Cfg) const override {
    return {hid(Cfg.Entry), 0};
  }
  State genHeadExit(State S, unsigned Block) const override {
    S.A -= hid(Block);
    return S;
  }
  State genTailExit(State S, unsigned, unsigned Target) const override {
    S.A += hid(Target);
    return S;
  }
  bool checkTailEntry(State S, unsigned) const override { return S.A == 0; }
};

//===----------------------------------------------------------------------===//
// RCF: like EdgCF, but each tail is its own region with a unique
// signature instead of the shared 0.
//===----------------------------------------------------------------------===//

class RcfScheme : public Scheme {
public:
  const char *name() const override { return "RCF"; }
  static uint64_t tid(unsigned Block) { return hid(Block) + 1; }
  State initial(const AbstractCfg &Cfg) const override {
    return {hid(Cfg.Entry), 0};
  }
  State genHeadExit(State S, unsigned Block) const override {
    S.A += tid(Block) - hid(Block);
    return S;
  }
  State genTailExit(State S, unsigned Block, unsigned Target) const override {
    S.A += hid(Target) - tid(Block);
    return S;
  }
  bool checkTailEntry(State S, unsigned Block) const override {
    return S.A == tid(Block);
  }
};

//===----------------------------------------------------------------------===//
// ECF: PC' holds the current block signature; RTS the edge delta
// (Figure 4 / Section 4.2).
//===----------------------------------------------------------------------===//

class EcfScheme : public Scheme {
public:
  const char *name() const override { return "ECF"; }
  State initial(const AbstractCfg &Cfg) const override {
    return {hid(Cfg.Entry), 0};
  }
  State genHeadExit(State S, unsigned) const override {
    S.A += S.B;
    S.B = 0;
    return S;
  }
  State genTailExit(State S, unsigned Block, unsigned Target) const override {
    S.B = hid(Target) - hid(Block);
    return S;
  }
  bool checkTailEntry(State S, unsigned Block) const override {
    return S.A == hid(Block);
  }
};

//===----------------------------------------------------------------------===//
// CFCSS: compile-time xor signatures with the run-time adjusting D
// register at branch-fan-in nodes.
//===----------------------------------------------------------------------===//

class CfcssScheme : public Scheme {
public:
  const char *name() const override { return "CFCSS"; }

  void prepare(const AbstractCfg &Cfg) override {
    unsigned N = Cfg.numBlocks();
    Sig.resize(N);
    Diff.assign(N, 0);
    FanIn.assign(N, false);
    BasePred.assign(N, ~0u);
    for (unsigned I = 0; I < N; ++I)
      Sig[I] = (uint64_t(I) + 1) * 2654435761u; // Distinct per block.
    std::vector<std::vector<unsigned>> Preds(N);
    for (unsigned I = 0; I < N; ++I)
      for (unsigned Succ : Cfg.Succs[I])
        Preds[Succ].push_back(I);
    for (unsigned I = 0; I < N; ++I) {
      // The entry keeps d = 0: G is initialized to its signature, and
      // nothing branches back to the entry (AbstractCfg::random never
      // creates such edges, matching real programs).
      if (Preds[I].empty() || I == Cfg.Entry)
        continue;
      BasePred[I] =
          *std::min_element(Preds[I].begin(), Preds[I].end());
      Diff[I] = Sig[I] ^ Sig[BasePred[I]];
      FanIn[I] = Preds[I].size() > 1;
    }
    EntrySig = Sig[Cfg.Entry];
  }

  State initial(const AbstractCfg &) const override {
    return {EntrySig, 0};
  }
  State genHeadExit(State S, unsigned Block) const override {
    S.A ^= Diff[Block];
    if (FanIn[Block])
      S.A ^= S.B;
    return S;
  }
  State genTailExit(State S, unsigned Block, unsigned Target) const override {
    if (FanIn[Target])
      S.B = Sig[Block] ^ Sig[BasePred[Target]];
    return S;
  }
  bool checkTailEntry(State S, unsigned Block) const override {
    return S.A == Sig[Block];
  }

private:
  std::vector<uint64_t> Sig;
  std::vector<uint64_t> Diff;
  std::vector<bool> FanIn;
  std::vector<unsigned> BasePred;
  uint64_t EntrySig = 0;
};

//===----------------------------------------------------------------------===//
// ECCA: odd prime BIDs; the entry assertion is the check, the exit SET
// admits the product of all legal successors (hence category A escapes).
//===----------------------------------------------------------------------===//

class EccaScheme : public Scheme {
public:
  const char *name() const override { return "ECCA"; }

  void prepare(const AbstractCfg &Cfg) override {
    unsigned N = Cfg.numBlocks();
    Bid.resize(N);
    Next.assign(N, 0);
    int64_t Candidate = 3;
    auto NextPrime = [&Candidate]() {
      for (;; Candidate += 2) {
        bool Prime = true;
        for (int64_t P = 3; P * P <= Candidate; P += 2)
          if (Candidate % P == 0) {
            Prime = false;
            break;
          }
        if (Prime) {
          int64_t Result = Candidate;
          Candidate += 2;
          return Result;
        }
      }
    };
    for (unsigned I = 0; I < N; ++I)
      Bid[I] = NextPrime();
    for (unsigned I = 0; I < N; ++I) {
      int64_t Product = 1;
      for (unsigned Succ : Cfg.Succs[I])
        Product *= Bid[Succ];
      Next[I] = Cfg.Succs[I].empty() ? 0 : Product;
    }
    EntryBid = Bid[Cfg.Entry];
  }

  State initial(const AbstractCfg &) const override {
    return {static_cast<uint64_t>(EntryBid), 0};
  }
  bool checkHeadEntry(State S, unsigned Block) const override {
    int64_t Id = static_cast<int64_t>(S.A);
    return Id > 0 && Id % Bid[Block] == 0 && (Id & 1) != 0;
  }
  State genHeadExit(State S, unsigned Block) const override {
    // The TEST normalizes id to BID (the divide).
    S.A = static_cast<uint64_t>(Bid[Block]);
    return S;
  }
  State genTailExit(State S, unsigned Block, unsigned) const override {
    S.A = static_cast<uint64_t>(Next[Block] +
                                (static_cast<int64_t>(S.A) - Bid[Block]));
    return S;
  }

private:
  std::vector<int64_t> Bid;
  std::vector<int64_t> Next;
  int64_t EntryBid = 0;
};

} // namespace

std::unique_ptr<Scheme> cfed::sig::makeEdgCfScheme() {
  return std::make_unique<EdgCfScheme>();
}
std::unique_ptr<Scheme> cfed::sig::makeRcfScheme() {
  return std::make_unique<RcfScheme>();
}
std::unique_ptr<Scheme> cfed::sig::makeEcfScheme() {
  return std::make_unique<EcfScheme>();
}
std::unique_ptr<Scheme> cfed::sig::makeCfcssScheme() {
  return std::make_unique<CfcssScheme>();
}
std::unique_ptr<Scheme> cfed::sig::makeEccaScheme() {
  return std::make_unique<EccaScheme>();
}

std::vector<bool> cfed::sig::backEdgeAndExitMask(const AbstractCfg &Cfg) {
  std::vector<bool> Mask(Cfg.numBlocks(), false);
  for (unsigned Block = 0; Block < Cfg.numBlocks(); ++Block) {
    if (Cfg.Succs[Block].empty()) {
      Mask[Block] = true; // Exit: the END check every policy keeps.
      continue;
    }
    for (unsigned Succ : Cfg.Succs[Block])
      if (Succ <= Block)
        Mask[Block] = true; // Loop latch: RET-BE's back-edge check.
  }
  return Mask;
}

ConditionReport cfed::sig::verifySingleErrorDetection(
    Scheme &S, const AbstractCfg &Cfg, unsigned PathLen,
    unsigned ContinueSteps, uint64_t Seed,
    const std::vector<bool> *CheckMask) {
  S.prepare(Cfg);
  ConditionReport Report;
  Prng Rng(Seed);

  // Build the correct logical path (random walk until an exit block).
  std::vector<unsigned> Path = {Cfg.Entry};
  while (Path.size() < PathLen) {
    const std::vector<unsigned> &Succs = Cfg.Succs[Path.back()];
    if (Succs.empty())
      break;
    Path.push_back(Succs[Rng.nextBelow(Succs.size())]);
  }

  auto Checks = [&](unsigned Block) {
    return !CheckMask || (*CheckMask)[Block];
  };

  // Necessary condition: simulate the correct path, collecting the state
  // at each tail exit on the way.
  std::vector<Scheme::State> ExitStates; // After genTailExit at step i.
  Scheme::State State = S.initial(Cfg);
  for (size_t I = 0; I < Path.size(); ++I) {
    unsigned Block = Path[I];
    if (Checks(Block) && !S.checkHeadEntry(State, Block))
      ++Report.FalsePositives;
    State = S.genHeadExit(State, Block);
    if (Checks(Block) && !S.checkTailEntry(State, Block))
      ++Report.FalsePositives;
    if (I + 1 < Path.size()) {
      State = S.genTailExit(State, Block, Path[I + 1]);
      ExitStates.push_back(State);
    }
  }

  // Continue deterministically from a faulted landing point; returns
  // true if some check fails within the step budget.
  auto ContinuationDetects = [&](Scheme::State Current, Node Landing) {
    Node At = Landing;
    for (unsigned Step = 0; Step < ContinueSteps; ++Step) {
      if (At.IsHead) {
        if (Checks(At.Block) && !S.checkHeadEntry(Current, At.Block))
          return true;
        Current = S.genHeadExit(Current, At.Block);
        At = Node{At.Block, /*IsHead=*/false};
        continue;
      }
      if (Checks(At.Block) && !S.checkTailEntry(Current, At.Block))
        return true;
      const std::vector<unsigned> &Succs = Cfg.Succs[At.Block];
      if (Succs.empty())
        return false; // Escaped to an exit without detection.
      unsigned Target = Succs[Step % Succs.size()];
      Current = S.genTailExit(Current, At.Block, Target);
      At = Node{Target, /*IsHead=*/true};
    }
    return false;
  };

  // Exhaustive single errors: every tail-exit position x every wrong
  // physical landing node.
  for (size_t J = 0; J + 1 < Path.size(); ++J) {
    unsigned From = Path[J];
    unsigned Logical = Path[J + 1];
    const Scheme::State &ExitState = ExitStates[J];
    for (unsigned Block = 0; Block < Cfg.numBlocks(); ++Block) {
      for (bool IsHead : {true, false}) {
        Node Landing{Block, IsHead};
        if (Landing == Node{Logical, true})
          continue; // The correct transfer.
        ++Report.ErrorsTotal;
        if (ContinuationDetects(ExitState, Landing)) {
          ++Report.Detected;
          continue;
        }
        ++Report.Undetected;
        const std::vector<unsigned> &Sibs = Cfg.Succs[From];
        bool IsSibling =
            IsHead && std::find(Sibs.begin(), Sibs.end(), Block) != Sibs.end();
        if (IsSibling)
          ++Report.UndetectedMistaken;
        else if (!IsHead && Block == From)
          ++Report.UndetectedSameTail;
        else if (IsHead)
          ++Report.UndetectedOtherHead;
        else
          ++Report.UndetectedOtherTail;
      }
    }
  }
  return Report;
}

namespace {

/// One operation of the linearized correct execution.
enum class EventKind : uint8_t { CheckHead, GenHead, CheckTail, GenTail };

struct PathEvent {
  EventKind Kind;
  unsigned Block;
  unsigned Target; // GenTail only.
};

} // namespace

MonitorCorruptionReport cfed::sig::verifyMonitorCorruptionDetection(
    Scheme &S, const AbstractCfg &Cfg, unsigned PathLen, uint64_t Seed) {
  S.prepare(Cfg);
  Prng Rng(Seed);

  std::vector<unsigned> Path = {Cfg.Entry};
  while (Path.size() < PathLen) {
    const std::vector<unsigned> &Succs = Cfg.Succs[Path.back()];
    if (Succs.empty())
      break;
    Path.push_back(Succs[Rng.nextBelow(Succs.size())]);
  }

  // Linearize the correct execution into events, recording the clean
  // state after each — that clean state doubles as the shadow copy,
  // which by construction evolves exactly like an uncorrupted primary.
  std::vector<PathEvent> Events;
  std::vector<Scheme::State> CleanAfter;
  Scheme::State State = S.initial(Cfg);
  auto Push = [&](EventKind Kind, unsigned Block, unsigned Target) {
    Events.push_back({Kind, Block, Target});
    CleanAfter.push_back(State);
  };
  for (size_t I = 0; I < Path.size(); ++I) {
    unsigned Block = Path[I];
    Push(EventKind::CheckHead, Block, 0);
    State = S.genHeadExit(State, Block);
    Push(EventKind::GenHead, Block, 0);
    Push(EventKind::CheckTail, Block, 0);
    if (I + 1 < Path.size()) {
      State = S.genTailExit(State, Block, Path[I + 1]);
      Push(EventKind::GenTail, Block, Path[I + 1]);
    }
  }

  MonitorCorruptionReport Report;
  for (size_t E = 0; E < Events.size(); ++E) {
    for (unsigned Bit = 0; Bit < 128; ++Bit) {
      Scheme::State Corrupt = CleanAfter[E];
      if (Bit < 64)
        Corrupt.A ^= 1ull << Bit;
      else
        Corrupt.B ^= 1ull << (Bit - 64);
      ++Report.FlipsTotal;

      // The guest's control flow is untouched: the walk continues on
      // the correct path carrying a corrupted monitor state.
      bool Flagged = false;
      bool Misclassified = false;
      for (size_t F = E + 1; F < Events.size(); ++F) {
        const PathEvent &Ev = Events[F];
        switch (Ev.Kind) {
        case EventKind::CheckHead:
        case EventKind::CheckTail: {
          // Shadow cross-check first, matching the emitted order: any
          // divergence from the duplicate is monitor corruption.
          if (!Flagged && !(Corrupt == CleanAfter[F]))
            Flagged = true;
          // Hypothetical no-shadow deployment: the scheme's own check
          // runs on the corrupted state and a failure is misreported
          // as a guest control-flow error.
          bool Pass = Ev.Kind == EventKind::CheckHead
                          ? S.checkHeadEntry(Corrupt, Ev.Block)
                          : S.checkTailEntry(Corrupt, Ev.Block);
          if (!Pass)
            Misclassified = true;
          break;
        }
        case EventKind::GenHead:
          Corrupt = S.genHeadExit(Corrupt, Ev.Block);
          break;
        case EventKind::GenTail:
          Corrupt = S.genTailExit(Corrupt, Ev.Block, Ev.Target);
          break;
        }
        if (Flagged && Misclassified)
          break;
      }
      if (Flagged)
        ++Report.FlaggedAsMonitor;
      else
        ++Report.SilentlyMasked;
      if (Misclassified)
        ++Report.MisclassifiedWithoutShadow;
    }
  }
  return Report;
}
