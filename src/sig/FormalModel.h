//===- FormalModel.h - Section 4 formal framework ---------------*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An executable version of the paper's Section 4 formalization of
/// signature-based control-flow checking:
///
///  * every block B is split into a head Bh and a tail Bt with an
///    error-free fall-through edge Bh -> Bt (Figure 10);
///  * a program execution path is a sequence of blocks where B_{i+1} is
///    the physical target and T_{i+1} the logic target of B_i's final
///    branch (Definition 3);
///  * a technique is a pair (GEN_SIG, CHECK_SIG), modeled here as
///    signature transforms at head/tail exits and predicates at
///    head/tail entries;
///  * the sufficient condition (any single T_j != B_j makes some later
///    CHECK_SIG fail) and the necessary condition (no CHECK_SIG fails on
///    a correct path) are verified by exhaustive enumeration of all
///    single errors along execution paths of random abstract CFGs.
///
/// This layer proves/refutes the Section 4 claims at the algebraic
/// granularity of the paper's proof (where the EdgCF scheme detects
/// every single error). The instrumentation-granularity distinction
/// between EdgCF and RCF (faults on the checking branches themselves)
/// only exists below this abstraction and is covered by the
/// fault-injection campaigns instead.
///
//===----------------------------------------------------------------------===//

#ifndef CFED_SIG_FORMALMODEL_H
#define CFED_SIG_FORMALMODEL_H

#include "support/Prng.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace cfed {
namespace sig {

/// An abstract CFG: blocks 0..N-1 with successor lists; block 0 is the
/// entry. Blocks without successors are exit blocks.
struct AbstractCfg {
  std::vector<std::vector<unsigned>> Succs;
  unsigned Entry = 0;

  unsigned numBlocks() const { return static_cast<unsigned>(Succs.size()); }

  /// Generates a random connected CFG with \p NumBlocks blocks: a spine
  /// from the entry plus random extra edges, every block with 0-2
  /// successors.
  static AbstractCfg random(Prng &Rng, unsigned NumBlocks);
};

/// A point in the split-block graph: the head or the tail of a block.
struct Node {
  unsigned Block = 0;
  bool IsHead = true;

  bool operator==(const Node &Other) const = default;
};

/// One signature-monitoring scheme in the formal model. State carries up
/// to two 64-bit registers (PC' and RTS / G and D / id).
class Scheme {
public:
  struct State {
    uint64_t A = 0;
    uint64_t B = 0;
    bool operator==(const State &Other) const = default;
  };

  virtual ~Scheme();
  virtual const char *name() const = 0;

  /// Signature assignment; called once per CFG before simulation.
  virtual void prepare(const AbstractCfg &Cfg);

  /// Initial state on entering the entry block's head.
  virtual State initial(const AbstractCfg &Cfg) const = 0;

  /// GEN_SIG at the exit of head(Block) (the fall-through into the
  /// tail; never faulty).
  virtual State genHeadExit(State S, unsigned Block) const = 0;

  /// GEN_SIG at the exit of tail(Block) with logic target
  /// \p LogicalTarget (the head of the next block).
  virtual State genTailExit(State S, unsigned Block,
                            unsigned LogicalTarget) const = 0;

  /// CHECK_SIG at the entry of head(Block); true = pass.
  virtual bool checkHeadEntry(State S, unsigned Block) const;

  /// CHECK_SIG at the entry of tail(Block); true = pass.
  virtual bool checkTailEntry(State S, unsigned Block) const;
};

/// Creates the formal model of each technique.
std::unique_ptr<Scheme> makeEdgCfScheme();
std::unique_ptr<Scheme> makeRcfScheme();
std::unique_ptr<Scheme> makeEcfScheme();
std::unique_ptr<Scheme> makeCfcssScheme();
std::unique_ptr<Scheme> makeEccaScheme();

/// Tally of the exhaustive single-error enumeration.
struct ConditionReport {
  uint64_t ErrorsTotal = 0;
  uint64_t Detected = 0;
  uint64_t Undetected = 0;
  /// Checks failing on the error-free path: violations of the necessary
  /// condition (false positives).
  uint64_t FalsePositives = 0;
  /// Undetected errors by the shape of the wrong physical target
  /// (the Figure 1 category analogues in the formal model).
  uint64_t UndetectedMistaken = 0;  ///< Wrong legal successor (A).
  uint64_t UndetectedSameTail = 0;  ///< Tail of the current block (B/C).
  uint64_t UndetectedOtherHead = 0; ///< Head of another block (D).
  uint64_t UndetectedOtherTail = 0; ///< Tail of another block (E).
};

/// Simulates the correct path of length at most \p PathLen from the
/// entry (random walk seeded by \p Seed), checks the necessary
/// condition, then enumerates *every* single control-flow error (every
/// tail-exit position x every wrong physical node) and reports which
/// escape all subsequent checks within \p ContinueSteps.
///
/// \p CheckMask, when given, models a relaxed checking policy: one entry
/// per block, and CHECK_SIG only runs at blocks whose entry is true
/// (GEN_SIG still runs everywhere — the Section 6 policies and the
/// optimizing tier's adaptive placement only move checks, never
/// updates). Null means check in every block (ALLBB).
ConditionReport verifySingleErrorDetection(
    Scheme &S, const AbstractCfg &Cfg, unsigned PathLen,
    unsigned ContinueSteps, uint64_t Seed,
    const std::vector<bool> *CheckMask = nullptr);

/// The RET-BE-analogue mask for \p Cfg: back-edge blocks (some successor
/// has an index no larger than the block's — every cycle contains one)
/// plus exit blocks (no successors; the END check every policy keeps).
std::vector<bool> backEdgeAndExitMask(const AbstractCfg &Cfg);

/// Tally of the exhaustive corrupted-monitor enumeration: faults that
/// hit the *checker's own state* (the signature registers) instead of
/// the guest's control flow.
struct MonitorCorruptionReport {
  /// Single-bit flips enumerated (every path position x every bit of
  /// the two state registers).
  uint64_t FlipsTotal = 0;
  /// Flips a shadow duplicate of the state exposes: the corrupted
  /// primary diverges from the shadow at a later check position and the
  /// cross-check classifies the fault as monitor corruption.
  uint64_t FlaggedAsMonitor = 0;
  /// Flips that re-converge (a later GEN_SIG overwrites the corrupted
  /// register) or outlive the last check position — dead state, benign.
  uint64_t SilentlyMasked = 0;
  /// Flips that, *without* the shadow, make the scheme's own CHECK_SIG
  /// fail: a monitor fault misreported as a guest control-flow error.
  /// The shadow cross-check runs first and reclassifies every one.
  uint64_t MisclassifiedWithoutShadow = 0;
};

/// The corrupted-monitor condition: simulates the correct path (random
/// walk of length at most \p PathLen seeded by \p Seed), then flips
/// every bit of the monitor state at every position along it. Guest
/// control flow is untouched — the walk continues on the correct path —
/// so every detection must come from the state duplicate, never from a
/// (spurious) control-flow-error verdict. Invariant checked by the
/// tests: FlaggedAsMonitor + SilentlyMasked == FlipsTotal.
MonitorCorruptionReport verifyMonitorCorruptionDetection(Scheme &S,
                                                         const AbstractCfg &Cfg,
                                                         unsigned PathLen,
                                                         uint64_t Seed);

} // namespace sig
} // namespace cfed

#endif // CFED_SIG_FORMALMODEL_H
