//===- Isa.cpp - VISA instruction set definition ---------------------------===//

#include "isa/Isa.h"

#include "support/Diagnostics.h"
#include "support/Format.h"

#include <array>
#include <cstring>

using namespace cfed;

namespace {

struct OpcodeInfo {
  const char *Mnemonic;
  const char *Spec;
  unsigned Cost;
  bool WritesFlags;
  OpKind Kind;
};

const OpcodeInfo OpcodeTable[] = {
#define HANDLE_OPCODE(ENUM, MNEMONIC, SPEC, COST, WRITES_FLAGS, KIND)          \
  {MNEMONIC, SPEC, COST, WRITES_FLAGS, KIND},
#include "isa/Opcodes.def"
};

constexpr unsigned NumOpcodesValue =
    sizeof(OpcodeTable) / sizeof(OpcodeTable[0]);

const OpcodeInfo &getInfo(Opcode Op) {
  unsigned Index = static_cast<unsigned>(Op);
  assert(Index < NumOpcodesValue && "opcode out of range");
  return OpcodeTable[Index];
}

} // namespace

unsigned cfed::getNumOpcodes() { return NumOpcodesValue; }

const char *cfed::getOpcodeMnemonic(Opcode Op) { return getInfo(Op).Mnemonic; }

const char *cfed::getOpcodeSpec(Opcode Op) { return getInfo(Op).Spec; }

unsigned cfed::getOpcodeCost(Opcode Op) { return getInfo(Op).Cost; }

bool cfed::opcodeWritesFlags(Opcode Op) { return getInfo(Op).WritesFlags; }

OpKind cfed::getOpcodeKind(Opcode Op) { return getInfo(Op).Kind; }

bool cfed::isBlockTerminator(Opcode Op) {
  return getOpcodeKind(Op) != OpKind::None;
}

bool cfed::hasBranchOffset(Opcode Op) {
  switch (getOpcodeKind(Op)) {
  case OpKind::Jump:
  case OpKind::CondJump:
  case OpKind::RegZeroJump:
  case OpKind::Call:
    return true;
  case OpKind::None:
  case OpKind::IndJump:
  case OpKind::IndCall:
  case OpKind::Ret:
  case OpKind::Halt:
  case OpKind::Trap:
  case OpKind::DbtExit:
  case OpKind::DbtExitInd:
    return false;
  }
  cfed_unreachable("covered switch");
}

static const char *const CondCodeNames[NumCondCodes] = {
    "eq", "ne", "lt", "le", "gt", "ge", "b", "be", "a", "ae", "s", "ns",
    "o",  "no"};

const char *cfed::getCondCodeName(CondCode CC) {
  unsigned Index = static_cast<unsigned>(CC);
  assert(Index < NumCondCodes && "condition code out of range");
  return CondCodeNames[Index];
}

std::optional<CondCode> cfed::parseCondCode(const std::string &Name) {
  for (unsigned I = 0; I < NumCondCodes; ++I)
    if (Name == CondCodeNames[I])
      return static_cast<CondCode>(I);
  return std::nullopt;
}

CondCode cfed::negateCondCode(CondCode CC) {
  switch (CC) {
  case CondCode::EQ:
    return CondCode::NE;
  case CondCode::NE:
    return CondCode::EQ;
  case CondCode::LT:
    return CondCode::GE;
  case CondCode::LE:
    return CondCode::GT;
  case CondCode::GT:
    return CondCode::LE;
  case CondCode::GE:
    return CondCode::LT;
  case CondCode::B:
    return CondCode::AE;
  case CondCode::BE:
    return CondCode::A;
  case CondCode::A:
    return CondCode::BE;
  case CondCode::AE:
    return CondCode::B;
  case CondCode::S:
    return CondCode::NS;
  case CondCode::NS:
    return CondCode::S;
  case CondCode::O:
    return CondCode::NO;
  case CondCode::NO:
    return CondCode::O;
  }
  cfed_unreachable("covered switch");
}

bool cfed::evalCondCode(CondCode CC, const Flags &F) {
  switch (CC) {
  case CondCode::EQ:
    return F.ZF;
  case CondCode::NE:
    return !F.ZF;
  case CondCode::LT:
    return F.SF != F.OF;
  case CondCode::LE:
    return F.ZF || F.SF != F.OF;
  case CondCode::GT:
    return !F.ZF && F.SF == F.OF;
  case CondCode::GE:
    return F.SF == F.OF;
  case CondCode::B:
    return F.CF;
  case CondCode::BE:
    return F.CF || F.ZF;
  case CondCode::A:
    return !F.CF && !F.ZF;
  case CondCode::AE:
    return !F.CF;
  case CondCode::S:
    return F.SF;
  case CondCode::NS:
    return !F.SF;
  case CondCode::O:
    return F.OF;
  case CondCode::NO:
    return !F.OF;
  }
  cfed_unreachable("covered switch");
}

void Instruction::encode(uint8_t *Buffer) const {
  Buffer[0] = static_cast<uint8_t>(Op);
  Buffer[1] = A;
  Buffer[2] = B;
  Buffer[3] = C;
  uint32_t Bits = static_cast<uint32_t>(Imm);
  Buffer[4] = static_cast<uint8_t>(Bits);
  Buffer[5] = static_cast<uint8_t>(Bits >> 8);
  Buffer[6] = static_cast<uint8_t>(Bits >> 16);
  Buffer[7] = static_cast<uint8_t>(Bits >> 24);
}

namespace {

/// Per-opcode upper bounds for the A/B/C fields, derived from the
/// operand spec (0 = field unused, accept anything). Decoding rejects
/// out-of-range operands — the IA-32 #UD analogue — which both models
/// hardware behavior for wild jumps into garbage bytes and keeps the
/// interpreter memory-safe when executing them.
struct FieldLimits {
  uint8_t Limit[3] = {0, 0, 0};
};

FieldLimits computeFieldLimits(Opcode Op) {
  FieldLimits Limits;
  unsigned FieldIndex = 0;
  for (const char *P = getOpcodeSpec(Op); *P; ++P) {
    switch (*P) {
    case 'r':
    case 'm':
      Limits.Limit[FieldIndex++] = NumIntRegs;
      break;
    case 'f':
      Limits.Limit[FieldIndex++] = NumFpRegs;
      break;
    case 'c':
      Limits.Limit[FieldIndex++] = NumCondCodes;
      break;
    case 'i':
      break;
    default:
      cfed_unreachable("bad operand spec character");
    }
  }
  return Limits;
}

const FieldLimits *getFieldLimitTable() {
  static const auto Table = [] {
    std::array<FieldLimits, 256> Limits{};
    for (unsigned I = 0; I < NumOpcodesValue; ++I)
      Limits[I] = computeFieldLimits(static_cast<Opcode>(I));
    return Limits;
  }();
  return Table.data();
}

} // namespace

std::optional<Instruction> Instruction::decode(const uint8_t *Buffer) {
  if (Buffer[0] >= NumOpcodesValue)
    return std::nullopt;
  const FieldLimits &Limits = getFieldLimitTable()[Buffer[0]];
  for (unsigned Field = 0; Field < 3; ++Field)
    if (Limits.Limit[Field] != 0 && Buffer[1 + Field] >= Limits.Limit[Field])
      return std::nullopt;
  Instruction I;
  I.Op = static_cast<Opcode>(Buffer[0]);
  I.A = Buffer[1];
  I.B = Buffer[2];
  I.C = Buffer[3];
  uint32_t Bits = static_cast<uint32_t>(Buffer[4]) |
                  (static_cast<uint32_t>(Buffer[5]) << 8) |
                  (static_cast<uint32_t>(Buffer[6]) << 16) |
                  (static_cast<uint32_t>(Buffer[7]) << 24);
  I.Imm = static_cast<int32_t>(Bits);
  return I;
}

CondCode Instruction::cond() const {
  // The condition code binds to the field dictated by the operand spec:
  // Jcc -> A, SetCC -> B, CMov -> C (see Opcodes.def).
  switch (Op) {
  case Opcode::Jcc:
    return static_cast<CondCode>(A);
  case Opcode::SetCC:
    return static_cast<CondCode>(B);
  case Opcode::CMov:
    return static_cast<CondCode>(C);
  default:
    cfed_unreachable("opcode has no condition code");
  }
}

Instruction cfed::insn::rrr(Opcode Op, uint8_t Rd, uint8_t Rs1, uint8_t Rs2) {
  return Instruction(Op, Rd, Rs1, Rs2, 0);
}

Instruction cfed::insn::rri(Opcode Op, uint8_t Rd, uint8_t Rs1, int32_t Imm) {
  return Instruction(Op, Rd, Rs1, 0, Imm);
}

Instruction cfed::insn::rr(Opcode Op, uint8_t Rd, uint8_t Rs1) {
  return Instruction(Op, Rd, Rs1, 0, 0);
}

Instruction cfed::insn::ri(Opcode Op, uint8_t Rd, int32_t Imm) {
  return Instruction(Op, Rd, 0, 0, Imm);
}

Instruction cfed::insn::r(Opcode Op, uint8_t Rd) {
  return Instruction(Op, Rd, 0, 0, 0);
}

Instruction cfed::insn::i(Opcode Op, int32_t Imm) {
  return Instruction(Op, 0, 0, 0, Imm);
}

Instruction cfed::insn::none(Opcode Op) {
  return Instruction(Op, 0, 0, 0, 0);
}

Instruction cfed::insn::jcc(CondCode CC, int32_t Offset) {
  return Instruction(Opcode::Jcc, static_cast<uint8_t>(CC), 0, 0, Offset);
}

Instruction cfed::insn::cmov(uint8_t Rd, uint8_t Rs1, CondCode CC) {
  return Instruction(Opcode::CMov, Rd, Rs1, static_cast<uint8_t>(CC), 0);
}

Instruction cfed::insn::setcc(uint8_t Rd, CondCode CC) {
  return Instruction(Opcode::SetCC, Rd, static_cast<uint8_t>(CC), 0, 0);
}

std::string cfed::getRegName(unsigned Reg) {
  assert(Reg < NumIntRegs && "register out of range");
  switch (Reg) {
  case RegSP:
    return "sp";
  case RegPCP:
    return "pcp";
  case RegRTS:
    return "rts";
  case RegAUX:
    return "aux";
  case RegAUX2:
    return "aux2";
  default:
    return formatString("r%u", Reg);
  }
}

std::optional<unsigned> cfed::parseRegName(const std::string &Name) {
  if (Name == "sp")
    return RegSP;
  if (Name == "pcp")
    return RegPCP;
  if (Name == "rts")
    return RegRTS;
  if (Name == "aux")
    return RegAUX;
  if (Name == "aux2")
    return RegAUX2;
  if (Name.size() >= 2 && Name[0] == 'r') {
    unsigned Value = 0;
    for (size_t I = 1; I < Name.size(); ++I) {
      if (Name[I] < '0' || Name[I] > '9')
        return std::nullopt;
      Value = Value * 10 + static_cast<unsigned>(Name[I] - '0');
      if (Value >= NumIntRegs)
        return std::nullopt;
    }
    return Value;
  }
  return std::nullopt;
}
