//===- Isa.h - VISA instruction set definition ------------------*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The VISA virtual instruction set: opcodes, condition codes, the FLAGS
/// register, the fixed 8-byte instruction word, and its encoder/decoder.
///
/// VISA substitutes for the paper's IA-32 guest / EM64T host pair. It keeps
/// exactly the architectural features the control-flow checking techniques
/// depend on; see Opcodes.def for the rationale per instruction.
///
//===----------------------------------------------------------------------===//

#ifndef CFED_ISA_ISA_H
#define CFED_ISA_ISA_H

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>

namespace cfed {

/// Size in bytes of every encoded VISA instruction.
inline constexpr uint64_t InsnSize = 8;

/// Number of architectural integer registers. r0..r15 belong to the
/// guest; r16..r19 are the "extra EM64T registers" the DBT reserves for
/// signature state (Section 5.1: no spilling needed); r32..r47 are the
/// shadow registers of the data-flow checking extension (the paper's
/// future work), holding the duplicated computation.
inline constexpr unsigned NumIntRegs = 64;
/// Number of floating-point registers (f16..f31 are data-flow shadows).
inline constexpr unsigned NumFpRegs = 32;

/// Number of guest-visible integer / fp registers.
inline constexpr unsigned NumGuestIntRegs = 16;
inline constexpr unsigned NumGuestFpRegs = 16;

/// Shadow register of guest integer register \p Reg (data-flow checking).
inline constexpr uint8_t shadowIntReg(uint8_t Reg) {
  return static_cast<uint8_t>(Reg + 32);
}
/// Shadow register of guest fp register \p Reg.
inline constexpr uint8_t shadowFpReg(uint8_t Reg) {
  return static_cast<uint8_t>(Reg + 16);
}

/// Guest stack pointer register (r15 by ABI convention).
inline constexpr uint8_t RegSP = 15;
/// PC' — the shadow program counter holding the run-time signature.
inline constexpr uint8_t RegPCP = 16;
/// RTS — the run-time adjusting signature register of the ECF technique.
inline constexpr uint8_t RegRTS = 17;
/// Scratch register for conditional signature updates (the AUX of Fig. 8).
inline constexpr uint8_t RegAUX = 18;
/// Second instrumentation scratch register.
inline constexpr uint8_t RegAUX2 = 19;
/// SSP — shadow-stack pointer of the ShadowStackChecker: points at the
/// next free slot of the bounded return-address ring the adversarial
/// mode uses to catch forged returns that carry a valid signature.
inline constexpr uint8_t RegSSP = 20;
/// Scratch register of the shadow-stack push/check sequences.
inline constexpr uint8_t RegSSC = 21;
/// Shadow copy of PC' kept by the self-integrity extension: every
/// signature update is re-applied to this register so a flipped PCP can
/// be told apart from a real control-flow error. Lives above the
/// data-flow-checking shadow range (r32..r47), which never reaches the
/// reserved registers.
inline constexpr uint8_t RegPCPShadow = 48;
/// Shadow copy of RTS (see RegPCPShadow).
inline constexpr uint8_t RegRTSShadow = 49;

/// First register reserved for instrumentation; guest programs must not
/// touch registers >= this.
inline constexpr uint8_t FirstReservedReg = 16;

/// Control-flow classes of an opcode.
enum class OpKind : uint8_t {
  None,        ///< Straight-line instruction.
  Jump,        ///< Direct unconditional jump (PC-relative offset).
  CondJump,    ///< Conditional jump reading FLAGS (Jcc).
  RegZeroJump, ///< Conditional jump on a register, flag-free (Jzr/Jnzr).
  IndJump,     ///< Indirect jump through a register.
  Call,        ///< Direct call (pushes the return address).
  IndCall,     ///< Indirect call through a register.
  Ret,         ///< Return (pops the target).
  Halt,        ///< Normal program termination.
  Trap,        ///< Software trap (Brk) — used by .report_error stubs.
  DbtExit,     ///< Code-cache exit to the translator, direct guest target.
  DbtExitInd,  ///< Code-cache exit, guest target in a register.
};

/// VISA opcodes. Generated from Opcodes.def.
enum class Opcode : uint8_t {
#define HANDLE_OPCODE(ENUM, MNEMONIC, SPEC, COST, WRITES_FLAGS, KIND) ENUM,
#include "isa/Opcodes.def"
};

/// Number of defined opcodes.
unsigned getNumOpcodes();

/// Returns the assembly mnemonic for \p Op.
const char *getOpcodeMnemonic(Opcode Op);

/// Returns the operand spec string for \p Op (see Opcodes.def).
const char *getOpcodeSpec(Opcode Op);

/// Returns the cycle cost of \p Op in the performance model.
unsigned getOpcodeCost(Opcode Op);

/// Returns true if \p Op overwrites the FLAGS register.
bool opcodeWritesFlags(Opcode Op);

/// Returns the control-flow kind of \p Op.
OpKind getOpcodeKind(Opcode Op);

/// Returns true if \p Op ends a basic block (any control transfer,
/// including Halt and Trap).
bool isBlockTerminator(Opcode Op);

/// Returns true if \p Op is a branch with a PC-relative offset encoded in
/// the Imm field — the "address offset" fault sites of the error model.
bool hasBranchOffset(Opcode Op);

/// Condition codes, evaluated against FLAGS exactly like their IA-32
/// counterparts.
enum class CondCode : uint8_t {
  EQ, ///< ZF
  NE, ///< !ZF
  LT, ///< SF != OF          (signed <)
  LE, ///< ZF || SF != OF    (signed <=)
  GT, ///< !ZF && SF == OF   (signed >)
  GE, ///< SF == OF          (signed >=)
  B,  ///< CF                (unsigned <)
  BE, ///< CF || ZF          (unsigned <=)
  A,  ///< !CF && !ZF        (unsigned >)
  AE, ///< !CF               (unsigned >=)
  S,  ///< SF
  NS, ///< !SF
  O,  ///< OF
  NO, ///< !OF
};

/// Number of condition codes.
inline constexpr unsigned NumCondCodes = 14;

/// Returns the textual name of \p CC (e.g. "le").
const char *getCondCodeName(CondCode CC);

/// Parses a condition code name; returns std::nullopt if unknown.
std::optional<CondCode> parseCondCode(const std::string &Name);

/// Returns the logical negation of \p CC.
CondCode negateCondCode(CondCode CC);

/// The FLAGS register: four bits, each an independent fault site in the
/// error model ("flags which affect the branch instruction", Section 2).
struct Flags {
  bool ZF = false;
  bool SF = false;
  bool CF = false;
  bool OF = false;

  /// Packs the flags into the low 4 bits (ZF=bit0, SF=1, CF=2, OF=3).
  uint8_t pack() const {
    return static_cast<uint8_t>(ZF | (SF << 1) | (CF << 2) | (OF << 3));
  }

  /// Unpacks from the representation produced by pack().
  static Flags unpack(uint8_t Bits) {
    Flags F;
    F.ZF = Bits & 1;
    F.SF = Bits & 2;
    F.CF = Bits & 4;
    F.OF = Bits & 8;
    return F;
  }

  /// Returns a copy with flag bit \p BitIndex (0..3) inverted — the
  /// flag-flip fault of the error model.
  Flags withBitFlipped(unsigned BitIndex) const {
    assert(BitIndex < NumFlagBits && "flag bit out of range");
    return unpack(pack() ^ static_cast<uint8_t>(1u << BitIndex));
  }

  /// Returns a copy with every flag bit set in \p Mask (low 4 bits)
  /// inverted — the multi-bit/burst variants of the error model.
  Flags withMaskFlipped(uint8_t Mask) const {
    assert((Mask >> NumFlagBits) == 0 && "flag mask out of range");
    return unpack(pack() ^ Mask);
  }

  bool operator==(const Flags &Other) const = default;

  /// Number of independently flippable flag bits.
  static constexpr unsigned NumFlagBits = 4;
};

/// Evaluates condition \p CC against \p F.
bool evalCondCode(CondCode CC, const Flags &F);

/// One decoded VISA instruction. Fields A, B and C carry register numbers
/// or a condition code depending on the opcode's operand spec; Imm carries
/// immediates and PC-relative branch offsets.
struct Instruction {
  Opcode Op = Opcode::Nop;
  uint8_t A = 0;
  uint8_t B = 0;
  uint8_t C = 0;
  int32_t Imm = 0;

  Instruction() = default;
  Instruction(Opcode Op, uint8_t A, uint8_t B, uint8_t C, int32_t Imm)
      : Op(Op), A(A), B(B), C(C), Imm(Imm) {}

  /// Encodes into 8 bytes at \p Buffer.
  void encode(uint8_t *Buffer) const;

  /// Decodes 8 bytes at \p Buffer; returns std::nullopt on an undefined
  /// opcode byte (the interpreter turns that into an illegal-instruction
  /// trap).
  static std::optional<Instruction> decode(const uint8_t *Buffer);

  /// For PC-relative branches: the target of the instruction located at
  /// \p InsnAddr (offsets are relative to the next instruction, as on
  /// IA-32).
  uint64_t branchTarget(uint64_t InsnAddr) const {
    assert(hasBranchOffset(Op) && "not an offset branch");
    return InsnAddr + InsnSize + static_cast<int64_t>(Imm);
  }

  /// Returns the Imm that makes an offset branch at \p InsnAddr target
  /// \p Target.
  static int32_t offsetFor(uint64_t InsnAddr, uint64_t Target) {
    int64_t Delta =
        static_cast<int64_t>(Target) - static_cast<int64_t>(InsnAddr + InsnSize);
    assert(Delta >= INT32_MIN && Delta <= INT32_MAX && "offset overflow");
    return static_cast<int32_t>(Delta);
  }

  /// Condition code of a Jcc / CMov / SetCC instruction.
  CondCode cond() const;

  bool operator==(const Instruction &Other) const = default;
};

/// Convenience builders for common shapes.
namespace insn {
Instruction rrr(Opcode Op, uint8_t Rd, uint8_t Rs1, uint8_t Rs2);
Instruction rri(Opcode Op, uint8_t Rd, uint8_t Rs1, int32_t Imm);
Instruction rr(Opcode Op, uint8_t Rd, uint8_t Rs1);
Instruction ri(Opcode Op, uint8_t Rd, int32_t Imm);
Instruction r(Opcode Op, uint8_t Rd);
Instruction i(Opcode Op, int32_t Imm);
Instruction none(Opcode Op);
/// jcc CC, offset.
Instruction jcc(CondCode CC, int32_t Offset);
/// cmov Rd, Rs1, CC.
Instruction cmov(uint8_t Rd, uint8_t Rs1, CondCode CC);
/// setcc Rd, CC.
Instruction setcc(uint8_t Rd, CondCode CC);
} // namespace insn

/// Returns the canonical register name ("r7", "sp", "pcp", ...).
std::string getRegName(unsigned Reg);

/// Parses a register name, accepting both "rN" and the aliases sp/pcp/rts/
/// aux/aux2; returns std::nullopt if unknown.
std::optional<unsigned> parseRegName(const std::string &Name);

} // namespace cfed

#endif // CFED_ISA_ISA_H
