//===- Disasm.cpp - VISA disassembler ---------------------------------------===//

#include "isa/Disasm.h"

#include "support/Format.h"

using namespace cfed;

static std::string renderOperands(const Instruction &I) {
  const char *Spec = getOpcodeSpec(I.Op);
  std::string Out;
  // Fields bind to A, B, C in order of appearance in the spec.
  const uint8_t Fields[3] = {I.A, I.B, I.C};
  unsigned FieldIndex = 0;
  bool First = true;
  auto Comma = [&]() {
    if (!First)
      Out += ", ";
    First = false;
  };
  for (const char *P = Spec; *P; ++P) {
    switch (*P) {
    case 'r':
      Comma();
      Out += getRegName(Fields[FieldIndex++]);
      break;
    case 'f':
      Comma();
      Out += formatString("f%u", Fields[FieldIndex++]);
      break;
    case 'c':
      Comma();
      Out += getCondCodeName(static_cast<CondCode>(Fields[FieldIndex++]));
      break;
    case 'i':
      Comma();
      Out += formatString("%d", I.Imm);
      break;
    case 'm':
      Comma();
      Out += formatString("[%s%+d]", getRegName(Fields[FieldIndex]).c_str(),
                          I.Imm);
      ++FieldIndex;
      break;
    default:
      Out += "?";
      break;
    }
  }
  return Out;
}

std::string cfed::disassemble(const Instruction &I) {
  std::string Operands = renderOperands(I);
  if (Operands.empty())
    return getOpcodeMnemonic(I.Op);
  return formatString("%s %s", getOpcodeMnemonic(I.Op), Operands.c_str());
}

std::string cfed::disassemble(const Instruction &I, uint64_t InsnAddr) {
  std::string Text = disassemble(I);
  if (hasBranchOffset(I.Op))
    Text += formatString("  ; -> 0x%llx",
                         static_cast<unsigned long long>(
                             I.branchTarget(InsnAddr)));
  return Text;
}

std::string cfed::disassembleRange(const uint8_t *Code, uint64_t NumBytes,
                                   uint64_t BaseAddr) {
  std::string Out;
  for (uint64_t Offset = 0; Offset + InsnSize <= NumBytes;
       Offset += InsnSize) {
    uint64_t Addr = BaseAddr + Offset;
    Out += formatString("%08llx:  ", static_cast<unsigned long long>(Addr));
    if (auto I = Instruction::decode(Code + Offset))
      Out += disassemble(*I, Addr);
    else
      Out += ".bad";
    Out += '\n';
  }
  return Out;
}
