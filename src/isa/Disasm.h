//===- Disasm.h - VISA disassembler -----------------------------*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders decoded VISA instructions back to assembly text, used by tests,
/// debug dumps and the DBT's code-cache listings.
///
//===----------------------------------------------------------------------===//

#ifndef CFED_ISA_DISASM_H
#define CFED_ISA_DISASM_H

#include "isa/Isa.h"

#include <string>

namespace cfed {

/// Disassembles one instruction. Branch offsets are printed numerically;
/// when \p InsnAddr is provided the resolved absolute target is appended as
/// a comment.
std::string disassemble(const Instruction &I);
std::string disassemble(const Instruction &I, uint64_t InsnAddr);

/// Disassembles \p NumBytes of encoded code starting at \p Code, one
/// instruction per line, prefixed with addresses starting at \p BaseAddr.
/// Undecodable words are printed as ".bad".
std::string disassembleRange(const uint8_t *Code, uint64_t NumBytes,
                             uint64_t BaseAddr);

} // namespace cfed

#endif // CFED_ISA_DISASM_H
