//===- ErrorModel.h - Analytic branch-error probability model ---*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The error model of Section 2: a soft error flips exactly one bit of a
/// branch instruction's 32-bit address offset or one of the four flag
/// bits the branch reads, with every bit equally likely, weighted by
/// dynamic execution frequency. For every executed offset branch the
/// model classifies all 36 possible single-bit faults analytically —
/// without injecting them — exactly as the paper's DBT-based model does,
/// and accumulates the Figure 2 table (categories x taken/not-taken x
/// addr/flags) from which Figure 3 (A-E normalized) follows.
///
/// Indirect branches are excluded, as in the paper (they account for
/// under 5% of branch executions and their targets are data, not encoded
/// offsets).
///
//===----------------------------------------------------------------------===//

#ifndef CFED_FAULT_ERRORMODEL_H
#define CFED_FAULT_ERRORMODEL_H

#include "asm/Assembler.h"
#include "cfg/Cfg.h"
#include "fault/Category.h"
#include "vm/Interp.h"

#include <array>
#include <cstdint>

namespace cfed {

class Prng;

/// How many bits one fault event corrupts. SingleBit is the paper's
/// Section 2 model; MultiBit (2-3 independent bits) and Burst (2-4
/// adjacent bits) are the SEU/MBU variants the related SEU/SET
/// evaluation work injects, reused by the register-fault campaigns and
/// the campaign engine's plan enumeration.
enum class FaultModel : uint8_t {
  SingleBit,
  MultiBit,
  Burst,
};

/// Returns "single", "multi" or "burst".
const char *getFaultModelName(FaultModel Model);

/// Parses a getFaultModelName() string back; false on no match.
bool parseFaultModel(const std::string &Name, FaultModel &Out);

/// Draws an XOR fault mask of \p Model's shape over a \p Width-bit
/// field (Width <= 64). SingleBit consumes exactly one nextBelow(Width)
/// draw, so existing single-bit plans reproduce bit-for-bit; MultiBit
/// flips 2-3 distinct bits, Burst flips a run of 2-4 adjacent bits
/// (clamped to the field). The mask is never zero.
uint64_t drawFaultMask(Prng &Rng, FaultModel Model, unsigned Width);

/// Classifies where a control transfer from the branch at \p BranchAddr
/// to \p Target lands, relative to the block structure in \p Graph:
/// beginning/middle of the same or another block, or outside the code
/// region (category F). \p Target equal to the correct destination must
/// be filtered by the caller (that is NoError, not a category).
BranchErrorCategory classifyBranchTarget(const Cfg &Graph,
                                         uint64_t BranchAddr,
                                         uint64_t Target);

/// One cell row of Figure 2: counts per (taken x addr/flags) fault site
/// class.
struct CategoryCounts {
  uint64_t TakenAddr = 0;
  uint64_t TakenFlags = 0;
  uint64_t NotTakenAddr = 0;
  uint64_t NotTakenFlags = 0;

  uint64_t total() const {
    return TakenAddr + TakenFlags + NotTakenAddr + NotTakenFlags;
  }
};

/// The accumulated model: one row per category (A..F, NoError).
struct ErrorModelResult {
  std::array<CategoryCounts, NumBranchErrorCategories> Counts;
  uint64_t BranchExecutions = 0;

  CategoryCounts &of(BranchErrorCategory Cat) {
    return Counts[static_cast<unsigned>(Cat)];
  }
  const CategoryCounts &of(BranchErrorCategory Cat) const {
    return Counts[static_cast<unsigned>(Cat)];
  }
  /// Total number of modeled fault sites (36 per branch execution).
  uint64_t totalSites() const;
  /// Probability of a fault landing in \p Cat (Figure 2's Total column).
  double probability(BranchErrorCategory Cat) const;
  /// Probability of \p Cat among the silent-data-corruption-capable
  /// categories A-E only (Figure 3).
  double probabilityAmongAtoE(BranchErrorCategory Cat) const;

  /// Merges another result in (suite-level aggregation).
  void merge(const ErrorModelResult &Other);
};

/// Runs \p Program natively with the model attached and returns the
/// accumulated Figure 2 counts. \p MaxInsns bounds the run.
ErrorModelResult runErrorModel(const AsmProgram &Program, uint64_t MaxInsns);

} // namespace cfed

#endif // CFED_FAULT_ERRORMODEL_H
