//===- ErrorModel.cpp - Analytic branch-error probability model ----------------===//

#include "fault/ErrorModel.h"

#include "support/Diagnostics.h"
#include "support/Prng.h"
#include "vm/Layout.h"
#include "vm/Loader.h"

using namespace cfed;

const char *cfed::getFaultModelName(FaultModel Model) {
  switch (Model) {
  case FaultModel::SingleBit:
    return "single";
  case FaultModel::MultiBit:
    return "multi";
  case FaultModel::Burst:
    return "burst";
  }
  return "?";
}

bool cfed::parseFaultModel(const std::string &Name, FaultModel &Out) {
  if (Name == "single")
    Out = FaultModel::SingleBit;
  else if (Name == "multi")
    Out = FaultModel::MultiBit;
  else if (Name == "burst")
    Out = FaultModel::Burst;
  else
    return false;
  return true;
}

uint64_t cfed::drawFaultMask(Prng &Rng, FaultModel Model, unsigned Width) {
  assert(Width >= 1 && Width <= 64 && "mask width out of range");
  switch (Model) {
  case FaultModel::SingleBit:
    return uint64_t(1) << Rng.nextBelow(Width);
  case FaultModel::MultiBit: {
    // 2-3 distinct bits (an SEU upsetting neighbouring storage cells
    // that are not physically adjacent in the encoded word).
    unsigned Bits = Width < 3 ? 2 : 2 + static_cast<unsigned>(Rng.nextBelow(2));
    if (Bits > Width)
      Bits = Width; // Degenerate 1-bit fields fall back to a single flip.
    uint64_t Mask = 0;
    while (static_cast<unsigned>(__builtin_popcountll(Mask)) < Bits)
      Mask |= uint64_t(1) << Rng.nextBelow(Width);
    return Mask;
  }
  case FaultModel::Burst: {
    // A run of 2-4 adjacent bits, clamped to the field width.
    unsigned Len = 2 + static_cast<unsigned>(Rng.nextBelow(3));
    if (Len > Width)
      Len = Width;
    unsigned Start = static_cast<unsigned>(Rng.nextBelow(Width - Len + 1));
    uint64_t Run = Len == 64 ? ~uint64_t(0) : (uint64_t(1) << Len) - 1;
    return Run << Start;
  }
  }
  cfed_unreachable("covered switch");
}

BranchErrorCategory cfed::classifyBranchTarget(const Cfg &Graph,
                                               uint64_t BranchAddr,
                                               uint64_t Target) {
  if (Target < Graph.codeBase() || Target >= Graph.codeEnd())
    return BranchErrorCategory::F;
  const BasicBlock *Own = Graph.blockContaining(BranchAddr);
  const BasicBlock *Dest = Graph.blockContaining(Target);
  if (!Dest)
    return BranchErrorCategory::F;
  if (Own && Dest->Addr == Own->Addr)
    return Target == Own->Addr ? BranchErrorCategory::B
                               : BranchErrorCategory::C;
  return Target == Dest->Addr ? BranchErrorCategory::D
                              : BranchErrorCategory::E;
}

uint64_t ErrorModelResult::totalSites() const {
  uint64_t Total = 0;
  for (const CategoryCounts &Row : Counts)
    Total += Row.total();
  return Total;
}

double ErrorModelResult::probability(BranchErrorCategory Cat) const {
  uint64_t Total = totalSites();
  if (Total == 0)
    return 0.0;
  return static_cast<double>(of(Cat).total()) / static_cast<double>(Total);
}

double
ErrorModelResult::probabilityAmongAtoE(BranchErrorCategory Cat) const {
  uint64_t AtoE = 0;
  for (BranchErrorCategory C :
       {BranchErrorCategory::A, BranchErrorCategory::B,
        BranchErrorCategory::C, BranchErrorCategory::D,
        BranchErrorCategory::E})
    AtoE += of(C).total();
  if (AtoE == 0)
    return 0.0;
  return static_cast<double>(of(Cat).total()) / static_cast<double>(AtoE);
}

void ErrorModelResult::merge(const ErrorModelResult &Other) {
  for (unsigned I = 0; I < NumBranchErrorCategories; ++I) {
    Counts[I].TakenAddr += Other.Counts[I].TakenAddr;
    Counts[I].TakenFlags += Other.Counts[I].TakenFlags;
    Counts[I].NotTakenAddr += Other.Counts[I].NotTakenAddr;
    Counts[I].NotTakenFlags += Other.Counts[I].NotTakenFlags;
  }
  BranchExecutions += Other.BranchExecutions;
}

namespace {

/// The BranchObserver that evaluates all 36 single-bit faults per
/// executed branch.
class ModelObserver : public BranchObserver {
public:
  explicit ModelObserver(const Cfg &Graph) : Graph(Graph) {}

  ErrorModelResult Result;

  void onBranch(uint64_t InsnAddr, const Instruction &I, const Flags &F,
                bool Taken, uint64_t NextPC) override {
    (void)NextPC;
    ++Result.BranchExecutions;
    uint64_t CorrectTarget = I.branchTarget(InsnAddr);
    uint64_t FallThrough = InsnAddr + InsnSize;

    // 32 address-offset bits.
    if (!Taken) {
      // A not-taken branch never consumes its offset: no error.
      Result.of(BranchErrorCategory::NoError).NotTakenAddr += 32;
    } else {
      for (unsigned Bit = 0; Bit < 32; ++Bit) {
        uint32_t Mutated = static_cast<uint32_t>(I.Imm) ^ (1u << Bit);
        uint64_t Target = InsnAddr + InsnSize +
                          static_cast<int64_t>(static_cast<int32_t>(Mutated));
        BranchErrorCategory Cat;
        if (Target == CorrectTarget)
          Cat = BranchErrorCategory::NoError; // Unreachable: bit flips move.
        else if (Target == FallThrough)
          Cat = BranchErrorCategory::A; // Behaves like a mistaken branch.
        else
          Cat = classifyBranchTarget(Graph, InsnAddr, Target);
        Result.of(Cat).TakenAddr += 1;
      }
    }

    // 4 flag bits. Only Jcc reads FLAGS; other branch kinds are immune,
    // so their flag faults are NoError sites.
    if (I.Op == Opcode::Jcc) {
      CondCode CC = I.cond();
      for (unsigned Bit = 0; Bit < Flags::NumFlagBits; ++Bit) {
        bool NewDir = evalCondCode(CC, F.withBitFlipped(Bit));
        BranchErrorCategory Cat = NewDir == Taken
                                      ? BranchErrorCategory::NoError
                                      : BranchErrorCategory::A;
        if (Taken)
          Result.of(Cat).TakenFlags += 1;
        else
          Result.of(Cat).NotTakenFlags += 1;
      }
    } else if (Taken) {
      Result.of(BranchErrorCategory::NoError).TakenFlags +=
          Flags::NumFlagBits;
    } else {
      Result.of(BranchErrorCategory::NoError).NotTakenFlags +=
          Flags::NumFlagBits;
    }
  }

private:
  const Cfg &Graph;
};

} // namespace

ErrorModelResult cfed::runErrorModel(const AsmProgram &Program,
                                     uint64_t MaxInsns) {
  Cfg Graph = Cfg::build(Program.Code.data(), Program.Code.size(), CodeBase,
                         Program.Entry, Program.CodeLabels);
  Memory Mem;
  Interpreter Interp(Mem);
  loadProgram(Program, LoadMode::Native, Mem, Interp.state());
  ModelObserver Observer(Graph);
  Interp.setBranchObserver(&Observer);
  StopInfo Stop = Interp.run(MaxInsns);
  if (Stop.Kind == StopKind::Trapped)
    reportFatalError("error-model workload trapped; workloads must run "
                     "clean");
  return Observer.Result;
}
