//===- IntegrityFault.h - Checker-targeted fault injection ------*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The expanded fault model that targets the checker itself — the "who
/// checks the checker" campaigns validating the self-integrity subsystem
/// (DESIGN.md §10). Three new injection targets, each striking monitor
/// state instead of guest state:
///
///  * CodeByte   — one bit of a translated block's emitted cache bytes
///                 (the scrubber's and dispatch verifier's domain);
///  * TableEntry — one bit of DBT dispatch metadata: a BlockTable
///                 entry's guest/cache address or size, or an IBTC
///                 entry's cached target (the sealed-header and
///                 check-word domain);
///  * SigState   — one bit of the live signature registers (PCP/RTS or
///                 their shadows; the shadow cross-check's domain).
///
/// Outcomes reuse the campaign Outcome enum: a BrkMonitorCorruption
/// (0x5EC) trap counts as a signature detection, a run that completes
/// with the golden output after the integrity machinery fired counts as
/// Recovered (the self-healing path), and a golden run with no
/// machinery involvement is Masked. Campaigns are jobs-invariant the
/// same way the branch campaigns are: coordinates are drawn serially up
/// front, injections fill position-indexed slots, and the tally into
/// the "fault.int_<target>.<outcome>" counters is serial.
///
//===----------------------------------------------------------------------===//

#ifndef CFED_FAULT_INTEGRITYFAULT_H
#define CFED_FAULT_INTEGRITYFAULT_H

#include "asm/Assembler.h"
#include "dbt/Dbt.h"
#include "fault/Campaign.h"
#include "recovery/Recovery.h"

#include <array>
#include <cstdint>

namespace cfed {

/// What checker state the fault strikes.
enum class IntegrityTarget : uint8_t { CodeByte, TableEntry, SigState };

inline constexpr unsigned NumIntegrityTargets = 3;

inline constexpr IntegrityTarget AllIntegrityTargets[] = {
    IntegrityTarget::CodeByte, IntegrityTarget::TableEntry,
    IntegrityTarget::SigState};

/// Returns "code", "meta" or "sig".
const char *getIntegrityTargetName(IntegrityTarget T);

/// The registry counter name tallying \p O for target \p T:
/// "fault.int_<target>.<outcome>".
std::string getIntegrityOutcomeCounterName(IntegrityTarget T, Outcome O);

/// Flips one bit of checker state immediately before the \p Instance-th
/// executed instruction. CodeByte picks a victim block outside the
/// translation unit currently executing (corruption inside the running
/// unit cannot be caught before it executes — dispatch verification
/// happens at unit boundaries); TableEntry alternates between BlockTable
/// metadata and IBTC entries. When no victim exists yet at the firing
/// instant (nothing translated, IBTC empty), the injector stays armed
/// and fires at the next opportunity.
class IntegrityFaultInjector : public PreInsnHook {
public:
  /// \p Pick selects the victim (block index, table word, register) and
  /// \p Bit the bit; both are reduced modulo the victim's ranges.
  IntegrityFaultInjector(Memory &Mem, Dbt &Translator, IntegrityTarget Target,
                         uint64_t Instance, uint64_t Pick, unsigned Bit)
      : Mem(Mem), Translator(Translator), Target(Target), Instance(Instance),
        Pick(Pick), Bit(Bit) {}

  bool fired() const { return Fired; }

  void onInsn(uint64_t InsnAddr, const Instruction &I,
              CpuState &State) override;

private:
  void fireCodeByte(uint64_t InsnAddr);
  void fireTableEntry();
  void fireSigState(CpuState &State);

  Memory &Mem;
  Dbt &Translator;
  IntegrityTarget Target;
  uint64_t Instance;
  uint64_t Pick;
  unsigned Bit;
  uint64_t Counter = 0;
  bool Fired = false;
};

/// Per-target outcome tallies of a checker-targeted campaign.
struct IntegrityCampaignResult {
  std::array<OutcomeCounts, NumIntegrityTargets> PerTarget;
  uint64_t Injections = 0;

  OutcomeCounts &of(IntegrityTarget T) {
    return PerTarget[static_cast<unsigned>(T)];
  }
  const OutcomeCounts &of(IntegrityTarget T) const {
    return PerTarget[static_cast<unsigned>(T)];
  }
  OutcomeCounts totals() const;
};

/// Runs \p PerTarget single-bit checker faults per integrity target
/// against \p Program translated under \p Config (which carries the
/// self-integrity knobs being evaluated). The program must halt within
/// \p MaxInsns fault-free. With a \p Recovery config every injection
/// executes under a RecoveryManager and rollback-cured runs classify as
/// Recovered. Coordinates are drawn up front from \p Seed and outcomes
/// are tallied serially into \p Metrics (when given) under
/// "fault.int_<target>.<outcome>", so results are identical for any
/// \p Jobs value.
IntegrityCampaignResult
runIntegrityCampaign(const AsmProgram &Program, const DbtConfig &Config,
                     uint64_t PerTarget, uint64_t Seed, uint64_t MaxInsns,
                     unsigned Jobs = 1, const RecoveryConfig *Recovery = nullptr,
                     telemetry::MetricsRegistry *Metrics = nullptr);

} // namespace cfed

#endif // CFED_FAULT_INTEGRITYFAULT_H
