//===- Category.h - Branch-error categories ---------------------*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The branch-error classification of Section 2 / Figure 1.
///
//===----------------------------------------------------------------------===//

#ifndef CFED_FAULT_CATEGORY_H
#define CFED_FAULT_CATEGORY_H

#include <cstdint>

namespace cfed {

/// Figure 1's branch-error categories, plus NoError for faults that do
/// not deviate the control flow (e.g. an offset bit flip on a not-taken
/// branch).
enum class BranchErrorCategory : uint8_t {
  A,      ///< Mistaken branch (wrong direction).
  B,      ///< Jump to the beginning of the same basic block.
  C,      ///< Jump to the middle (including the end) of the same block.
  D,      ///< Jump to the beginning of another basic block.
  E,      ///< Jump to the middle of another basic block.
  F,      ///< Jump to a non-code memory region.
  NoError ///< The fault does not change the control flow.
};

inline constexpr unsigned NumBranchErrorCategories = 7;

/// Returns "A".."F" or "NoError".
inline const char *getCategoryName(BranchErrorCategory Cat) {
  switch (Cat) {
  case BranchErrorCategory::A:
    return "A";
  case BranchErrorCategory::B:
    return "B";
  case BranchErrorCategory::C:
    return "C";
  case BranchErrorCategory::D:
    return "D";
  case BranchErrorCategory::E:
    return "E";
  case BranchErrorCategory::F:
    return "F";
  case BranchErrorCategory::NoError:
    return "NoError";
  }
  return "?";
}

} // namespace cfed

#endif // CFED_FAULT_CATEGORY_H
