//===- Category.h - Branch-error categories ---------------------*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The branch-error classification of Section 2 / Figure 1.
///
//===----------------------------------------------------------------------===//

#ifndef CFED_FAULT_CATEGORY_H
#define CFED_FAULT_CATEGORY_H

#include <cstdint>

namespace cfed {

/// Figure 1's branch-error categories, plus NoError for faults that do
/// not deviate the control flow (e.g. an offset bit flip on a not-taken
/// branch).
enum class BranchErrorCategory : uint8_t {
  A,       ///< Mistaken branch (wrong direction).
  B,       ///< Jump to the beginning of the same basic block.
  C,       ///< Jump to the middle (including the end) of the same block.
  D,       ///< Jump to the beginning of another basic block.
  E,       ///< Jump to the middle of another basic block.
  F,       ///< Jump to a non-code memory region.
  NoError, ///< The fault does not change the control flow.
  // Adversarial categories (attack campaigns). Appended strictly after
  // NoError so the numeric IDs of the Figure 1 taxonomy never change:
  // serialized checkpoints and merge files carry raw category indices,
  // and NumBranchErrorCategories below deliberately still counts only
  // the transient-fault categories (campaign result arrays and the
  // engine checkpoint reserve-cursor layout are sized by it).
  AttackReturn,   ///< ROP-style return-address corruption.
  AttackIndirect, ///< Indirect-jump / IBTC target swap.
  AttackCodePatch ///< SMC-style patch of translated code.
};

/// Number of *transient-fault* categories (Figure 1 + NoError). Attack
/// categories are intentionally excluded: every serialized artifact that
/// predates the adversarial mode sized its arrays with this constant.
inline constexpr unsigned NumBranchErrorCategories = 7;

/// Total number of categories including the adversarial ones.
inline constexpr unsigned NumTotalErrorCategories = 10;

/// Returns "A".."F" or "NoError".
inline const char *getCategoryName(BranchErrorCategory Cat) {
  switch (Cat) {
  case BranchErrorCategory::A:
    return "A";
  case BranchErrorCategory::B:
    return "B";
  case BranchErrorCategory::C:
    return "C";
  case BranchErrorCategory::D:
    return "D";
  case BranchErrorCategory::E:
    return "E";
  case BranchErrorCategory::F:
    return "F";
  case BranchErrorCategory::NoError:
    return "NoError";
  case BranchErrorCategory::AttackReturn:
    return "AttackReturn";
  case BranchErrorCategory::AttackIndirect:
    return "AttackIndirect";
  case BranchErrorCategory::AttackCodePatch:
    return "AttackCodePatch";
  }
  return "?";
}

} // namespace cfed

#endif // CFED_FAULT_CATEGORY_H
