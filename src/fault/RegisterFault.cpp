//===- RegisterFault.cpp - Datapath fault injection -----------------------------===//

#include "fault/RegisterFault.h"

#include "support/Diagnostics.h"
#include "support/Prng.h"
#include "support/ThreadPool.h"

#include <vector>

using namespace cfed;

OutcomeCounts cfed::runRegisterFaultCampaign(const AsmProgram &Program,
                                             const DbtConfig &Config,
                                             uint64_t NumInjections,
                                             uint64_t Seed,
                                             uint64_t MaxInsns,
                                             unsigned Jobs) {
  // Golden run.
  uint64_t GoldenInsns = 0, GoldenHash = 0;
  {
    Memory Mem;
    Interpreter Interp(Mem);
    Dbt Translator(Mem, Config);
    if (!Translator.load(Program, Interp.state()))
      reportFatalError("register-fault campaign: program failed to load");
    StopInfo Stop = Translator.run(Interp, MaxInsns);
    if (Stop.Kind != StopKind::Halted)
      reportFatalError("register-fault campaign: golden run did not halt");
    GoldenInsns = Interp.instructionCount();
    GoldenHash = hashOutput(Interp.output());
  }

  // Draw every fault's coordinates up front: the Prng is consumed in the
  // same serial order regardless of job count, so only the injections
  // themselves run concurrently.
  struct FaultCoords {
    uint64_t Instance;
    uint8_t Reg;
    unsigned Bit;
  };
  Prng Rng(Seed);
  std::vector<FaultCoords> Coords;
  Coords.reserve(NumInjections);
  for (uint64_t I = 0; I < NumInjections; ++I) {
    FaultCoords C;
    C.Instance = 1 + Rng.nextBelow(GoldenInsns);
    C.Reg = static_cast<uint8_t>(Rng.nextBelow(15)); // r0..r14.
    C.Bit = static_cast<unsigned>(Rng.nextBelow(64));
    Coords.push_back(C);
  }

  uint64_t Budget = GoldenInsns * 4 + 100000;
  std::vector<Outcome> Outcomes(Coords.size());
  ThreadPool Pool(Jobs);
  Pool.parallelFor(Coords.size(), [&](uint64_t I) {
    RegisterFaultInjector Hook(Coords[I].Instance, Coords[I].Reg,
                               Coords[I].Bit);
    Memory Mem;
    Interpreter Interp(Mem);
    Dbt Translator(Mem, Config);
    if (!Translator.load(Program, Interp.state()))
      reportFatalError("register-fault campaign: reload failed");
    Interp.setPreInsnHook(&Hook);
    StopInfo Stop = Translator.run(Interp, Budget);

    switch (Stop.Kind) {
    case StopKind::Halted:
      Outcomes[I] = hashOutput(Interp.output()) == GoldenHash ? Outcome::Masked
                                                              : Outcome::Sdc;
      return;
    case StopKind::InsnLimit:
      Outcomes[I] = Outcome::Timeout;
      return;
    case StopKind::Trapped:
      break;
    }
    if (Stop.Trap == TrapKind::BreakTrap &&
        (Stop.BreakCode == BrkDataFlowError ||
         Stop.BreakCode == BrkControlFlowError))
      Outcomes[I] = Outcome::DetectedSignature;
    else
      Outcomes[I] = Outcome::DetectedHardware;
  });

  OutcomeCounts Totals;
  for (Outcome O : Outcomes)
    Totals.add(O);
  return Totals;
}
