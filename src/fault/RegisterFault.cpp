//===- RegisterFault.cpp - Datapath fault injection -----------------------------===//

#include "fault/RegisterFault.h"

#include "support/Diagnostics.h"
#include "support/Prng.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <vector>

using namespace cfed;

double RegisterCampaignReport::latencyMean() const {
  if (DetectionLatencies.empty())
    return 0.0;
  uint64_t Sum = 0;
  for (uint64_t L : DetectionLatencies)
    Sum += L;
  return static_cast<double>(Sum) /
         static_cast<double>(DetectionLatencies.size());
}

uint64_t RegisterCampaignReport::latencyMax() const {
  uint64_t Max = 0;
  for (uint64_t L : DetectionLatencies)
    Max = std::max(Max, L);
  return Max;
}

RegisterCampaignReport cfed::runRegisterFaultCampaignDetailed(
    const AsmProgram &Program, const DbtConfig &Config,
    uint64_t NumInjections, uint64_t Seed, uint64_t MaxInsns,
    FaultModel Model, unsigned Jobs) {
  // Golden run.
  uint64_t GoldenInsns = 0, GoldenHash = 0;
  {
    Memory Mem;
    Interpreter Interp(Mem);
    Dbt Translator(Mem, Config);
    if (!Translator.load(Program, Interp.state()))
      reportFatalError("register-fault campaign: program failed to load");
    StopInfo Stop = Translator.run(Interp, MaxInsns);
    if (Stop.Kind != StopKind::Halted)
      reportFatalError("register-fault campaign: golden run did not halt");
    GoldenInsns = Interp.instructionCount();
    GoldenHash = hashOutput(Interp.output());
  }

  // Draw every fault's coordinates up front: the Prng is consumed in the
  // same serial order regardless of job count, so only the injections
  // themselves run concurrently. SingleBit's drawFaultMask consumes one
  // nextBelow(64) — the same draw the original bit pick made.
  struct FaultCoords {
    uint64_t Instance;
    uint8_t Reg;
    uint64_t Mask;
  };
  Prng Rng(Seed);
  std::vector<FaultCoords> Coords;
  Coords.reserve(NumInjections);
  for (uint64_t I = 0; I < NumInjections; ++I) {
    FaultCoords C;
    C.Instance = 1 + Rng.nextBelow(GoldenInsns);
    C.Reg = static_cast<uint8_t>(Rng.nextBelow(15)); // r0..r14.
    C.Mask = drawFaultMask(Rng, Model, 64);
    Coords.push_back(C);
  }

  uint64_t Budget = GoldenInsns * 4 + 100000;
  constexpr uint64_t NoLatency = ~uint64_t(0);
  std::vector<Outcome> Outcomes(Coords.size());
  std::vector<uint64_t> Latencies(Coords.size(), NoLatency);
  ThreadPool Pool(Jobs);
  Pool.parallelFor(Coords.size(), [&](uint64_t I) {
    RegisterFaultInjector Hook = RegisterFaultInjector::fromMask(
        Coords[I].Instance, Coords[I].Reg, Coords[I].Mask);
    Memory Mem;
    Interpreter Interp(Mem);
    Dbt Translator(Mem, Config);
    if (!Translator.load(Program, Interp.state()))
      reportFatalError("register-fault campaign: reload failed");
    Interp.setPreInsnHook(&Hook);
    StopInfo Stop = Translator.run(Interp, Budget);

    switch (Stop.Kind) {
    case StopKind::Halted:
      Outcomes[I] = hashOutput(Interp.output()) == GoldenHash ? Outcome::Masked
                                                              : Outcome::Sdc;
      return;
    case StopKind::InsnLimit:
      Outcomes[I] = Outcome::Timeout;
      return;
    case StopKind::Trapped:
      break;
    }
    if (Stop.Trap == TrapKind::BreakTrap &&
        (Stop.BreakCode == BrkDataFlowError ||
         Stop.BreakCode == BrkControlFlowError))
      Outcomes[I] = Outcome::DetectedSignature;
    else
      Outcomes[I] = Outcome::DetectedHardware;
    // The hook fires before executing its Instance-th instruction, so
    // Instance-1 instructions had retired at fire time.
    if (Hook.fired())
      Latencies[I] = Interp.instructionCount() - (Coords[I].Instance - 1);
  });

  // Serial in-order tally: position-indexed slots make the report
  // byte-identical for any job count.
  RegisterCampaignReport Report;
  for (uint64_t I = 0; I < Outcomes.size(); ++I) {
    Report.Counts.add(Outcomes[I]);
    if (Latencies[I] != NoLatency)
      Report.DetectionLatencies.push_back(Latencies[I]);
  }
  return Report;
}

OutcomeCounts cfed::runRegisterFaultCampaign(const AsmProgram &Program,
                                             const DbtConfig &Config,
                                             uint64_t NumInjections,
                                             uint64_t Seed,
                                             uint64_t MaxInsns,
                                             unsigned Jobs) {
  return runRegisterFaultCampaignDetailed(Program, Config, NumInjections,
                                          Seed, MaxInsns,
                                          FaultModel::SingleBit, Jobs)
      .Counts;
}
