//===- RegisterFault.cpp - Datapath fault injection -----------------------------===//

#include "fault/RegisterFault.h"

#include "support/Diagnostics.h"
#include "support/Prng.h"

using namespace cfed;

OutcomeCounts cfed::runRegisterFaultCampaign(const AsmProgram &Program,
                                             const DbtConfig &Config,
                                             uint64_t NumInjections,
                                             uint64_t Seed,
                                             uint64_t MaxInsns) {
  // Golden run.
  uint64_t GoldenInsns = 0, GoldenHash = 0;
  {
    Memory Mem;
    Interpreter Interp(Mem);
    Dbt Translator(Mem, Config);
    if (!Translator.load(Program, Interp.state()))
      reportFatalError("register-fault campaign: program failed to load");
    StopInfo Stop = Translator.run(Interp, MaxInsns);
    if (Stop.Kind != StopKind::Halted)
      reportFatalError("register-fault campaign: golden run did not halt");
    GoldenInsns = Interp.instructionCount();
    GoldenHash = hashOutput(Interp.output());
  }

  Prng Rng(Seed);
  OutcomeCounts Totals;
  uint64_t Budget = GoldenInsns * 4 + 100000;
  for (uint64_t I = 0; I < NumInjections; ++I) {
    uint64_t Instance = 1 + Rng.nextBelow(GoldenInsns);
    uint8_t Reg = static_cast<uint8_t>(Rng.nextBelow(15)); // r0..r14.
    unsigned Bit = static_cast<unsigned>(Rng.nextBelow(64));
    RegisterFaultInjector Hook(Instance, Reg, Bit);

    Memory Mem;
    Interpreter Interp(Mem);
    Dbt Translator(Mem, Config);
    if (!Translator.load(Program, Interp.state()))
      reportFatalError("register-fault campaign: reload failed");
    Interp.setPreInsnHook(&Hook);
    StopInfo Stop = Translator.run(Interp, Budget);

    switch (Stop.Kind) {
    case StopKind::Halted:
      Totals.add(hashOutput(Interp.output()) == GoldenHash ? Outcome::Masked
                                                           : Outcome::Sdc);
      continue;
    case StopKind::InsnLimit:
      Totals.add(Outcome::Timeout);
      continue;
    case StopKind::Trapped:
      break;
    }
    if (Stop.Trap == TrapKind::BreakTrap &&
        (Stop.BreakCode == BrkDataFlowError ||
         Stop.BreakCode == BrkControlFlowError))
      Totals.add(Outcome::DetectedSignature);
    else
      Totals.add(Outcome::DetectedHardware);
  }
  return Totals;
}
