//===- Attack.cpp - Adversarial control-flow attack campaigns -------------------===//

#include "fault/Attack.h"

#include "support/Diagnostics.h"
#include "support/Format.h"
#include "support/Prng.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <set>

using namespace cfed;

const char *cfed::getAttackFamilyName(AttackFamily F) {
  switch (F) {
  case AttackFamily::Return:
    return "return";
  case AttackFamily::Indirect:
    return "indirect";
  case AttackFamily::CodePatch:
    return "code-patch";
  }
  return "?";
}

BranchErrorCategory cfed::attackCategory(AttackFamily F) {
  switch (F) {
  case AttackFamily::Return:
    return BranchErrorCategory::AttackReturn;
  case AttackFamily::Indirect:
    return BranchErrorCategory::AttackIndirect;
  case AttackFamily::CodePatch:
    return BranchErrorCategory::AttackCodePatch;
  }
  cfed_unreachable("covered switch");
}

const char *cfed::getAttackOutcomeName(AttackOutcome O) {
  switch (O) {
  case AttackOutcome::DetectedSignature:
    return "det-sig";
  case AttackOutcome::DetectedShadowStack:
    return "det-shadow";
  case AttackOutcome::DetectedIntegrity:
    return "det-integ";
  case AttackOutcome::DetectedHardware:
    return "det-hw";
  case AttackOutcome::Evaded:
    return "evaded";
  case AttackOutcome::Masked:
    return "masked";
  case AttackOutcome::Timeout:
    return "timeout";
  case AttackOutcome::Recovered:
    return "recovered";
  case AttackOutcome::RecoveryFailed:
    return "rec-fail";
  }
  return "?";
}

std::string cfed::getAttackCounterName(AttackFamily F, AttackOutcome O) {
  return std::string("attack.") + getAttackFamilyName(F) + '.' +
         getAttackOutcomeName(O);
}

void AttackOutcomeCounts::add(AttackOutcome O) {
  switch (O) {
  case AttackOutcome::DetectedSignature:
    ++DetectedSig;
    return;
  case AttackOutcome::DetectedShadowStack:
    ++DetectedShadow;
    return;
  case AttackOutcome::DetectedIntegrity:
    ++DetectedIntegrity;
    return;
  case AttackOutcome::DetectedHardware:
    ++DetectedHw;
    return;
  case AttackOutcome::Evaded:
    ++Evaded;
    return;
  case AttackOutcome::Masked:
    ++Masked;
    return;
  case AttackOutcome::Timeout:
    ++Timeout;
    return;
  case AttackOutcome::Recovered:
    ++Recovered;
    return;
  case AttackOutcome::RecoveryFailed:
    ++RecoveryFailed;
    return;
  }
  cfed_unreachable("covered switch");
}

void AttackOutcomeCounts::merge(const AttackOutcomeCounts &Other) {
  DetectedSig += Other.DetectedSig;
  DetectedShadow += Other.DetectedShadow;
  DetectedIntegrity += Other.DetectedIntegrity;
  DetectedHw += Other.DetectedHw;
  Evaded += Other.Evaded;
  Masked += Other.Masked;
  Timeout += Other.Timeout;
  Recovered += Other.Recovered;
  RecoveryFailed += Other.RecoveryFailed;
}

AttackOutcomeCounts AttackResult::totals() const {
  AttackOutcomeCounts Totals;
  for (const AttackOutcomeCounts &Row : PerFamily)
    Totals.merge(Row);
  return Totals;
}

AttackResult
cfed::attackResultFromSnapshot(const telemetry::RegistrySnapshot &Snap) {
  AttackResult Result;
  for (unsigned F = 0; F < NumAttackFamilies; ++F) {
    auto Family = static_cast<AttackFamily>(F);
    for (unsigned O = 0; O < NumAttackOutcomes; ++O) {
      auto Out = static_cast<AttackOutcome>(O);
      uint64_t N = Snap.counterOr(getAttackCounterName(Family, Out));
      for (uint64_t I = 0; I < N; ++I)
        Result.of(Family).add(Out);
    }
  }
  Result.Attacks = Snap.counterOr("attack.attacks");
  return Result;
}

bool cfed::hasAttackTallies(const telemetry::RegistrySnapshot &Snap) {
  if (Snap.counterOr("attack.attacks"))
    return true;
  for (unsigned F = 0; F < NumAttackFamilies; ++F)
    for (unsigned O = 0; O < NumAttackOutcomes; ++O)
      if (Snap.counterOr(getAttackCounterName(static_cast<AttackFamily>(F),
                                              static_cast<AttackOutcome>(O))))
        return true;
  return false;
}

std::string
cfed::renderPrecisionMatrix(const telemetry::RegistrySnapshot &Snap) {
  AttackResult Result = attackResultFromSnapshot(Snap);
  if (!Result.Attacks && !Result.totals().total())
    return "";

  auto Row = [](const char *Name, const AttackOutcomeCounts &C) {
    return formatString("  %-10s %7llu %8llu %9llu %7llu %7llu %7llu %7llu "
                        "%9llu %8llu %7llu\n",
                        Name, static_cast<unsigned long long>(C.DetectedSig),
                        static_cast<unsigned long long>(C.DetectedShadow),
                        static_cast<unsigned long long>(C.DetectedIntegrity),
                        static_cast<unsigned long long>(C.DetectedHw),
                        static_cast<unsigned long long>(C.Evaded),
                        static_cast<unsigned long long>(C.Masked),
                        static_cast<unsigned long long>(C.Timeout),
                        static_cast<unsigned long long>(C.Recovered),
                        static_cast<unsigned long long>(C.RecoveryFailed),
                        static_cast<unsigned long long>(C.total()));
  };

  std::string Out = "precision matrix (attack family x outcome):\n";
  Out += formatString("  %-10s %7s %8s %9s %7s %7s %7s %7s %9s %8s %7s\n",
                      "family", "det-sig", "det-shdw", "det-integ", "det-hw",
                      "evaded", "masked", "timeout", "recovered", "rec-fail",
                      "total");
  for (unsigned F = 0; F < NumAttackFamilies; ++F) {
    auto Family = static_cast<AttackFamily>(F);
    if (!Result.of(Family).total())
      continue;
    Out += Row(getAttackFamilyName(Family), Result.of(Family));
  }
  Out += Row("total", Result.totals());
  return Out;
}

std::string
cfed::renderPrecisionSummaryLine(const telemetry::RegistrySnapshot &Snap) {
  AttackResult Result = attackResultFromSnapshot(Snap);
  AttackOutcomeCounts T = Result.totals();
  return formatString(
      "precision-summary: attacks=%llu detected=%llu shadow_only=%llu "
      "undetected=%llu recovered=%llu benign=%llu",
      static_cast<unsigned long long>(Result.Attacks),
      static_cast<unsigned long long>(T.detected()),
      static_cast<unsigned long long>(T.DetectedShadow),
      static_cast<unsigned long long>(T.undetected()),
      static_cast<unsigned long long>(T.Recovered),
      static_cast<unsigned long long>(T.Masked));
}

//===----------------------------------------------------------------------===//
// Campaign
//===----------------------------------------------------------------------===//

struct AttackCampaign::Instance {
  Memory Mem;
  Dbt Translator;
  Interpreter Interp;
  bool Ok;

  Instance(const AsmProgram &Program, const DbtConfig &Config)
      : Translator(Mem, Config), Interp(Mem) {
    Ok = Translator.load(Program, Interp.state());
  }
};

namespace {

/// Classifies one executed instruction as an attackable dynamic event.
/// Returns true with \p F set when it is one. The streams:
///  * Return    — the ret lowering's `pop aux2` (guest code never names
///                reserved registers, so the pattern is unambiguous).
///  * Indirect  — a TrampR dispatching on a guest register (the ret
///                lowering's TrampR runs on aux2 and is excluded: its
///                corruption surface is the stack, not the IBTC).
///  * CodePatch — a direct exit: an unchained Tramp stub or the Jmp it
///                was chained into (the only plain Jmps in the cache).
bool classifyEvent(uint64_t InsnAddr, const Instruction &I, AttackFamily &F) {
  if (InsnAddr < CacheBase)
    return false;
  if (I.Op == Opcode::Pop && I.A == RegAUX2) {
    F = AttackFamily::Return;
    return true;
  }
  if (I.Op == Opcode::TrampR && I.A < FirstReservedReg) {
    F = AttackFamily::Indirect;
    return true;
  }
  if (I.Op == Opcode::Tramp || I.Op == Opcode::Jmp) {
    F = AttackFamily::CodePatch;
    return true;
  }
  return false;
}

/// Counts dynamic attackable events per family (golden run).
class EventCountingHook : public PreInsnHook {
public:
  std::array<uint64_t, NumAttackFamilies> Counts{};

  void onInsn(uint64_t InsnAddr, const Instruction &I, CpuState &) override {
    AttackFamily F;
    if (classifyEvent(InsnAddr, I, F))
      ++Counts[static_cast<unsigned>(F)];
  }
};

/// The guest target the event would transfer to, read from the live
/// pre-execution state.
uint64_t eventRealTarget(const Dbt &Translator, const Memory &Mem,
                         uint64_t InsnAddr, const Instruction &I,
                         const CpuState &State, AttackFamily F) {
  switch (F) {
  case AttackFamily::Return: {
    MemResult R;
    return Mem.read64(State.Regs[RegSP], R);
  }
  case AttackFamily::Indirect:
    return State.Regs[I.A];
  case AttackFamily::CodePatch: {
    if (I.Op == Opcode::Tramp)
      return static_cast<uint64_t>(static_cast<int64_t>(I.Imm));
    // A chained Jmp: map its cache target back to the guest block.
    uint64_t Target = InsnAddr + InsnSize + static_cast<int64_t>(I.Imm);
    return Translator.guestPCFor(Target);
  }
  }
  cfed_unreachable("covered switch");
}

/// Picks the gadget for one planned attack: a translated block (live at
/// the event instant) other than the real target, preferring one the
/// checker's oracle certifies as signature-compatible with the forged
/// edge. \p Salt rotates the deterministic scan start so a campaign
/// exercises many gadgets. Returns false when no candidate exists.
bool pickGadget(const Dbt &Translator, uint64_t SiteGuestBlock,
                uint64_t RealTarget, uint64_t Salt, uint64_t &Forged,
                bool &Valid) {
  std::vector<uint64_t> Pool;
  Pool.reserve(Translator.blocks().size());
  for (const TranslatedBlock &TB : Translator.blocks())
    Pool.push_back(TB.GuestAddr);
  std::sort(Pool.begin(), Pool.end());
  Pool.erase(std::unique(Pool.begin(), Pool.end()), Pool.end());
  if (Pool.empty())
    return false;

  const ControlFlowChecker &Checker = Translator.checker();
  uint64_t Start = Salt % Pool.size();
  uint64_t Fallback = 0;
  bool HaveFallback = false;
  for (size_t I = 0; I < Pool.size(); ++I) {
    uint64_t C = Pool[(Start + I) % Pool.size()];
    if (C == RealTarget)
      continue;
    if (Checker.acceptsForgedReturn(SiteGuestBlock, C)) {
      Forged = C;
      Valid = true;
      return true;
    }
    if (!HaveFallback) {
      Fallback = C;
      HaveFallback = true;
    }
  }
  if (!HaveFallback)
    return false;
  // No oracle-certified gadget: attack with the first candidate anyway
  // (the run measures whether the signature actually catches it).
  Forged = Fallback;
  Valid = false;
  return true;
}

/// Planning hook: walks all three families' event streams in one run
/// and fills each pre-drawn attack at its chosen instance.
class AttackPlanningHook : public PreInsnHook {
public:
  AttackPlanningHook(const Dbt &Translator, const Memory &Mem,
                     std::array<std::vector<PlannedAttack>,
                                NumAttackFamilies> &Plans,
                     const std::array<std::vector<uint64_t>,
                                      NumAttackFamilies> &Salts)
      : Translator(Translator), Mem(Mem), Plans(Plans), Salts(Salts) {}

  void onInsn(uint64_t InsnAddr, const Instruction &I,
              CpuState &State) override {
    AttackFamily F;
    if (!classifyEvent(InsnAddr, I, F))
      return;
    unsigned Idx = static_cast<unsigned>(F);
    ++Counter[Idx];
    std::vector<PlannedAttack> &Plan = Plans[Idx];
    size_t &Cursor = Next[Idx];
    while (Cursor < Plan.size() && Plan[Cursor].Instance == Counter[Idx]) {
      PlannedAttack &Attack = Plan[Cursor];
      Attack.SiteAddr = InsnAddr;
      Attack.RealTarget =
          eventRealTarget(Translator, Mem, InsnAddr, I, State, F);
      uint64_t Forged = 0;
      bool Valid = false;
      if (pickGadget(Translator, Translator.guestPCFor(InsnAddr),
                     Attack.RealTarget, Salts[Idx][Cursor], Forged, Valid)) {
        Attack.ForgedTarget = Forged;
        Attack.GadgetValid = Valid;
      }
      ++Cursor;
    }
  }

private:
  const Dbt &Translator;
  const Memory &Mem;
  std::array<std::vector<PlannedAttack>, NumAttackFamilies> &Plans;
  const std::array<std::vector<uint64_t>, NumAttackFamilies> &Salts;
  std::array<uint64_t, NumAttackFamilies> Counter{};
  std::array<size_t, NumAttackFamilies> Next{};
};

/// Injection hook: applies the attack at the chosen instance.
class AttackInjectionHook : public PreInsnHook {
public:
  AttackInjectionHook(const PlannedAttack &Attack, Dbt &Translator,
                      Memory &Mem, const Interpreter &Interp)
      : Attack(Attack), Translator(Translator), Mem(Mem), Interp(Interp) {}

  bool Fired = false;

  void onInsn(uint64_t InsnAddr, const Instruction &I,
              CpuState &State) override {
    AttackFamily F;
    if (Fired || !classifyEvent(InsnAddr, I, F) || F != Attack.Family)
      return;
    if (++Counter != Attack.Instance)
      return;
    Fired = true;
    switch (Attack.Family) {
    case AttackFamily::Return:
      // Overwrite the return address the imminent Pop consumes. Raw
      // writes still feed the page-write observer, so recovery's undo
      // log captures the corruption like any guest store.
      Mem.writeRaw(State.Regs[RegSP], &Attack.ForgedTarget, 8);
      break;
    case AttackFamily::Indirect:
      // Key the swap on the live dispatch value (equals the planned
      // RealTarget in a deterministic replay).
      Translator.attackSwapIbtcEntry(State.Regs[I.A], Attack.ForgedTarget);
      break;
    case AttackFamily::CodePatch:
      // Emits its own AttackApplied trace event; the patch takes effect
      // at this site's next execution (this instruction is already
      // fetched).
      Translator.attackPatchDirectExit(InsnAddr, Attack.ForgedTarget);
      return;
    }
    if (telemetry::EventTracer *T = Translator.tracer())
      T->record(Interp.instructionCount(),
                telemetry::TraceEventKind::AttackApplied,
                getAttackFamilyName(Attack.Family), InsnAddr,
                Attack.ForgedTarget);
  }

private:
  const PlannedAttack &Attack;
  Dbt &Translator;
  Memory &Mem;
  const Interpreter &Interp;
  uint64_t Counter = 0;
};

/// Annotates and writes one attack bundle. Evasions get their own
/// reason so CI and DESIGN.md §15 can cite the proof artifacts.
void writeAttackBundle(telemetry::FlightRecorder &Recorder, Dbt &Translator,
                       Interpreter &Interp, const StopInfo &Stop,
                       const PlannedAttack &Attack, bool Fired,
                       AttackOutcome Result) {
  bool Evasion = Result == AttackOutcome::Evaded ||
                 Result == AttackOutcome::Timeout;
  telemetry::PostMortem PM = Translator.buildPostMortem(
      Evasion ? "attack-evasion" : "attack-injection", Stop, Interp);
  PM.Annotations.emplace_back("instance", Attack.Instance);
  PM.Annotations.emplace_back("family",
                              static_cast<uint64_t>(Attack.Family));
  PM.Annotations.emplace_back("site_addr", Attack.SiteAddr);
  PM.Annotations.emplace_back("real_target", Attack.RealTarget);
  PM.Annotations.emplace_back("forged_target", Attack.ForgedTarget);
  PM.Annotations.emplace_back("gadget_valid", Attack.GadgetValid ? 1 : 0);
  PM.Annotations.emplace_back("fired", Fired ? 1 : 0);
  PM.Note = getAttackOutcomeName(Result);
  Recorder.write(PM);
}

} // namespace

AttackCampaign::AttackCampaign(const AsmProgram &Program, DbtConfig Config)
    : Program(Program), Config(Config) {}

bool AttackCampaign::prepare(uint64_t MaxInsns) {
  Instance Ref(Program, Config);
  if (!Ref.Ok)
    return false;
  EventCountingHook Hook;
  Ref.Interp.setPreInsnHook(&Hook);
  StopInfo Stop = Ref.Translator.run(Ref.Interp, MaxInsns);
  if (Stop.Kind != StopKind::Halted)
    return false;
  GoldenInsns = Ref.Interp.instructionCount();
  GoldenHash = hashOutput(Ref.Interp.output());
  InsnBudget = GoldenInsns * 4 + 100000;
  EventCounts = Hook.Counts;
  Prepared = true;
  return true;
}

std::vector<PlannedAttack> AttackCampaign::plan(uint64_t NumCandidates,
                                                uint64_t Seed) {
  assert(Prepared && "call prepare() first");

  // Even split over the families with a non-empty stream; per-family
  // Prngs run on derived seeds so each family's draw sequence is
  // independent of the others' populations.
  unsigned Active = 0;
  for (uint64_t Count : EventCounts)
    Active += Count > 0;
  if (!Active)
    return {};

  std::array<std::vector<PlannedAttack>, NumAttackFamilies> Plans;
  std::array<std::vector<uint64_t>, NumAttackFamilies> Salts;
  unsigned Nth = 0;
  for (unsigned F = 0; F < NumAttackFamilies; ++F) {
    uint64_t Population = EventCounts[F];
    if (!Population)
      continue;
    uint64_t Want = NumCandidates / Active + (Nth < NumCandidates % Active);
    ++Nth;
    Want = std::min(Want, Population);
    Prng Rng(Seed + 0x9e3779b97f4a7c15ULL * (F + 1));
    std::set<uint64_t> Instances;
    while (Instances.size() < Want)
      Instances.insert(1 + Rng.nextBelow(Population));
    for (uint64_t InstanceIdx : Instances) {
      PlannedAttack Attack;
      Attack.Instance = InstanceIdx;
      Attack.Family = static_cast<AttackFamily>(F);
      Plans[F].push_back(Attack);
      Salts[F].push_back(Rng.next());
    }
  }

  Instance Planner(Program, Config);
  if (!Planner.Ok)
    reportFatalError("planning instance failed to load after prepare()");
  AttackPlanningHook Hook(Planner.Translator, Planner.Mem, Plans, Salts);
  Planner.Interp.setPreInsnHook(&Hook);
  Planner.Translator.run(Planner.Interp, InsnBudget);

  // Interleave round-robin so a truncated selection still covers every
  // family.
  std::vector<PlannedAttack> Out;
  size_t MaxLen = 0;
  for (const auto &Plan : Plans)
    MaxLen = std::max(MaxLen, Plan.size());
  for (size_t I = 0; I < MaxLen; ++I)
    for (const auto &Plan : Plans)
      if (I < Plan.size())
        Out.push_back(Plan[I]);
  return Out;
}

AttackCampaign::AttackReport
AttackCampaign::injectAttack(const PlannedAttack &Attack,
                             telemetry::FlightRecorder *Recorder) const {
  assert(Prepared && "call prepare() first");
  Instance Run(Program, Config);
  if (!Run.Ok)
    reportFatalError("attack instance failed to load after prepare()");
  AttackInjectionHook Hook(Attack, Run.Translator, Run.Mem, Run.Interp);
  Run.Interp.setPreInsnHook(&Hook);
  std::unique_ptr<telemetry::EventTracer> Tracer;
  if (Recorder) {
    Tracer = std::make_unique<telemetry::EventTracer>(Recorder->maxEvents());
    Run.Translator.setTracer(Tracer.get());
  }
  StopInfo Stop = Run.Translator.run(Run.Interp, InsnBudget);

  AttackReport Report;
  Report.Fired = Hook.Fired;
  switch (Stop.Kind) {
  case StopKind::Halted:
    if (hashOutput(Run.Interp.output()) == GoldenHash)
      // A healed run (integrity caught the tamper, quarantined, and
      // retranslated) completes golden with mismatches on record.
      Report.Result = Run.Translator.integrityMismatchCount() > 0
                          ? AttackOutcome::DetectedIntegrity
                          : AttackOutcome::Masked;
    else
      Report.Result = AttackOutcome::Evaded;
    break;
  case StopKind::InsnLimit:
    Report.Result = AttackOutcome::Timeout;
    break;
  case StopKind::Trapped:
    Report.Result = AttackOutcome::DetectedHardware;
    if (Stop.Trap == TrapKind::BreakTrap) {
      if (Stop.BreakCode == BrkShadowStackViolation)
        Report.Result = AttackOutcome::DetectedShadowStack;
      else if (Stop.BreakCode == BrkControlFlowError ||
               Stop.BreakCode == BrkMonitorCorruption)
        Report.Result = AttackOutcome::DetectedSignature;
    } else if (Stop.Trap == TrapKind::DivByZero) {
      const TranslatedBlock *Block =
          Run.Translator.cacheBlockContaining(Stop.TrapAddr);
      if (Block && Block->isInstrumentation(Stop.TrapAddr))
        Report.Result = AttackOutcome::DetectedSignature;
    }
    break;
  }
  if (Recorder)
    writeAttackBundle(*Recorder, Run.Translator, Run.Interp, Stop, Attack,
                      Hook.Fired, Report.Result);
  return Report;
}

AttackCampaign::AttackReport
AttackCampaign::injectWithRecovery(const PlannedAttack &Attack,
                                   const RecoveryConfig &Recovery,
                                   telemetry::FlightRecorder *Recorder) const {
  assert(Prepared && "call prepare() first");
  Instance Run(Program, Config);
  if (!Run.Ok)
    reportFatalError("attack instance failed to load after prepare()");
  // The manager saves and forwards to the installed hook, so the attack
  // still fires at its planned event under recovery.
  AttackInjectionHook Hook(Attack, Run.Translator, Run.Mem, Run.Interp);
  Run.Interp.setPreInsnHook(&Hook);
  RecoveryManager Manager(Run.Interp, Run.Translator, Recovery);
  RecoveryReport Report = Manager.run(InsnBudget);

  AttackReport Injection;
  Injection.Fired = Hook.Fired;
  if (Report.Completed) {
    bool Golden = hashOutput(Run.Interp.output()) == GoldenHash;
    if (Golden)
      Injection.Result = Report.NumRollbacks > 0 ? AttackOutcome::Recovered
                                                 : AttackOutcome::Masked;
    else
      Injection.Result = Report.NumRollbacks > 0
                             ? AttackOutcome::RecoveryFailed
                             : AttackOutcome::Evaded;
  } else if (Report.FinalStop.Kind == StopKind::InsnLimit) {
    Injection.Result = Report.NumRollbacks > 0 ? AttackOutcome::RecoveryFailed
                                               : AttackOutcome::Timeout;
  } else {
    Injection.Result = AttackOutcome::RecoveryFailed;
  }
  if (Recorder)
    writeAttackBundle(*Recorder, Run.Translator, Run.Interp,
                      Report.FinalStop, Attack, Hook.Fired,
                      Injection.Result);
  return Injection;
}

namespace {

/// Serial selection shared by run() and runWithRecovery(): the first
/// NumAttacks actionable candidates (a gadget was found) in plan order.
std::vector<const PlannedAttack *>
selectAttacks(const std::vector<PlannedAttack> &Candidates,
              uint64_t NumAttacks) {
  std::vector<const PlannedAttack *> Selected;
  Selected.reserve(std::min<uint64_t>(NumAttacks, Candidates.size()));
  for (const PlannedAttack &Attack : Candidates) {
    if (!Attack.ForgedTarget)
      continue;
    if (Selected.size() >= NumAttacks)
      break;
    Selected.push_back(&Attack);
  }
  return Selected;
}

} // namespace

AttackResult
AttackCampaign::tallyOutcomes(const std::vector<const PlannedAttack *> &Sel,
                              const std::vector<AttackOutcome> &Outcomes) {
  // Serial tally from position-indexed slots, like FaultCampaign: the
  // registry contents are identical for any job count.
  telemetry::MetricsRegistry RunMetrics;
  for (size_t I = 0; I < Sel.size(); ++I) {
    RunMetrics.counter(getAttackCounterName(Sel[I]->Family, Outcomes[I]))
        .inc();
    RunMetrics.counter("attack.attacks").inc();
    if (Sel[I]->GadgetValid)
      RunMetrics.counter("attack.gadget_valid").inc();
  }
  telemetry::RegistrySnapshot Snap = RunMetrics.snapshot();
  Metrics.merge(Snap);
  AttackResult Result = attackResultFromSnapshot(Snap);
  assert(Result.totals().total() == Result.Attacks &&
         "registry tallies must cover every attack");
  return Result;
}

AttackResult AttackCampaign::run(uint64_t NumAttacks, uint64_t Seed,
                                 unsigned Jobs,
                                 telemetry::FlightRecorder *Recorder) {
  // Over-plan 2x: gadget search can fail on tiny programs.
  std::vector<PlannedAttack> Candidates = plan(NumAttacks * 2, Seed);
  std::vector<const PlannedAttack *> Selected =
      selectAttacks(Candidates, NumAttacks);

  std::vector<AttackOutcome> Outcomes(Selected.size());
  ThreadPool Pool(Jobs);
  Pool.parallelFor(Selected.size(), [&](uint64_t I) {
    Outcomes[I] = injectAttack(*Selected[I]).Result;
  });
  AttackResult Result = tallyOutcomes(Selected, Outcomes);

  // Evasion proof bundles: replay the undetected attacks serially with
  // the recorder attached (injection is deterministic, so the replay is
  // the run the tally counted).
  if (Recorder)
    for (size_t I = 0; I < Selected.size(); ++I)
      if (Outcomes[I] == AttackOutcome::Evaded ||
          Outcomes[I] == AttackOutcome::Timeout)
        injectAttack(*Selected[I], Recorder);
  return Result;
}

AttackResult AttackCampaign::runWithRecovery(uint64_t NumAttacks,
                                             uint64_t Seed,
                                             const RecoveryConfig &Recovery,
                                             unsigned Jobs) {
  std::vector<PlannedAttack> Candidates = plan(NumAttacks * 2, Seed);
  std::vector<const PlannedAttack *> Selected =
      selectAttacks(Candidates, NumAttacks);

  std::vector<AttackOutcome> Outcomes(Selected.size());
  ThreadPool Pool(Jobs);
  Pool.parallelFor(Selected.size(), [&](uint64_t I) {
    Outcomes[I] = injectWithRecovery(*Selected[I], Recovery).Result;
  });
  return tallyOutcomes(Selected, Outcomes);
}
