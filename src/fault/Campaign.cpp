//===- Campaign.cpp - Fault-injection campaigns --------------------------------===//

#include "fault/Campaign.h"

#include "support/Diagnostics.h"
#include "support/Format.h"
#include "support/Prng.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <array>
#include <set>

using namespace cfed;

const char *cfed::getOutcomeName(Outcome O) {
  switch (O) {
  case Outcome::DetectedSignature:
    return "det-sig";
  case Outcome::DetectedHardware:
    return "det-hw";
  case Outcome::Masked:
    return "masked";
  case Outcome::Sdc:
    return "SDC";
  case Outcome::Timeout:
    return "timeout";
  case Outcome::Recovered:
    return "recovered";
  case Outcome::RecoveryFailed:
    return "rec-fail";
  }
  return "?";
}

std::string cfed::getOutcomeCounterName(BranchErrorCategory Cat, Outcome O) {
  return std::string("fault.cat_") + getCategoryName(Cat) + '.' +
         getOutcomeName(O);
}

telemetry::PropOutcome cfed::toPropOutcome(Outcome O) {
  switch (O) {
  case Outcome::DetectedSignature:
  case Outcome::DetectedHardware:
  case Outcome::Recovered:
    return telemetry::PropOutcome::Detected;
  case Outcome::Sdc:
  case Outcome::RecoveryFailed:
    return telemetry::PropOutcome::Sdc;
  case Outcome::Masked:
    return telemetry::PropOutcome::Masked;
  case Outcome::Timeout:
    return telemetry::PropOutcome::Timeout;
  }
  cfed_unreachable("covered switch");
}

std::string cfed::getPropagationCounterName(BranchErrorCategory Cat,
                                            telemetry::PropClass C) {
  return telemetry::getPropCounterName(getCategoryName(Cat), C);
}

std::string cfed::getPropagationDistanceName(BranchErrorCategory Cat) {
  return telemetry::getPropDistanceHistogramName(getCategoryName(Cat));
}

std::string
cfed::renderPropagationFunnel(const telemetry::RegistrySnapshot &Snap) {
  // Column order mirrors the funnel: detection first, then the bad
  // outcomes, then the benign tail.
  static constexpr telemetry::PropClass Cols[] = {
      telemetry::PropClass::DetectedClean,
      telemetry::PropClass::DetectedAfterDivergence,
      telemetry::PropClass::SdcExplained,
      telemetry::PropClass::SdcUnexplained,
      telemetry::PropClass::MaskedClean,
      telemetry::PropClass::MaskedConverged,
      telemetry::PropClass::MaskedLatent,
      telemetry::PropClass::TimeoutClean,
      telemetry::PropClass::TimeoutAfterDivergence,
  };
  static constexpr const char *ColNames[] = {
      "det-cln", "det-div", "sdc-exp", "sdc-unx", "msk-cln",
      "msk-cnv", "msk-lat", "to-cln",  "to-div",
  };
  constexpr size_t NumCols = sizeof(Cols) / sizeof(Cols[0]);

  uint64_t Grand = 0;
  uint64_t ColTotals[NumCols] = {};
  std::string Rows;
  for (unsigned C = 0; C < NumBranchErrorCategories; ++C) {
    BranchErrorCategory Cat = static_cast<BranchErrorCategory>(C);
    uint64_t RowTotal = 0;
    uint64_t Counts[NumCols];
    for (size_t I = 0; I < NumCols; ++I) {
      Counts[I] = Snap.counterOr(getPropagationCounterName(Cat, Cols[I]));
      RowTotal += Counts[I];
      ColTotals[I] += Counts[I];
    }
    if (!RowTotal)
      continue;
    Grand += RowTotal;
    Rows += formatString("  %-9s %7llu", getCategoryName(Cat),
                         static_cast<unsigned long long>(RowTotal));
    for (size_t I = 0; I < NumCols; ++I)
      Rows += formatString(" %7llu",
                           static_cast<unsigned long long>(Counts[I]));
    std::string Dist = "-";
    for (const auto &[Name, H] : Snap.Histograms)
      if (Name == getPropagationDistanceName(Cat) && H.Count)
        Dist = formatString("%s/%s", H.quantileText(0.5).c_str(),
                            H.quantileText(0.9).c_str());
    Rows += formatString("  %s\n", Dist.c_str());
  }
  if (!Grand)
    return "";

  std::string Out =
      "propagation funnel (first divergence -> outcome, per category):\n";
  Out += formatString("  %-9s %7s", "cell", "inj");
  for (size_t I = 0; I < NumCols; ++I)
    Out += formatString(" %7s", ColNames[I]);
  Out += formatString("  %s\n", "dist p50/p90");
  Out += Rows;
  Out += formatString("  %-9s %7llu", "total",
                      static_cast<unsigned long long>(Grand));
  for (size_t I = 0; I < NumCols; ++I)
    Out += formatString(" %7llu",
                        static_cast<unsigned long long>(ColTotals[I]));
  Out += "  -\n";
  return Out;
}

CampaignResult
cfed::campaignResultFromSnapshot(const telemetry::RegistrySnapshot &Snap) {
  CampaignResult Result;
  for (unsigned C = 0; C < NumBranchErrorCategories; ++C) {
    auto Cat = static_cast<BranchErrorCategory>(C);
    for (unsigned O = 0; O < NumOutcomes; ++O) {
      auto Out = static_cast<Outcome>(O);
      uint64_t N = Snap.counterOr(getOutcomeCounterName(Cat, Out));
      for (uint64_t I = 0; I < N; ++I)
        Result.of(Cat).add(Out);
    }
  }
  Result.Injections = Snap.counterOr("fault.injections");
  return Result;
}

void OutcomeCounts::add(Outcome O) {
  switch (O) {
  case Outcome::DetectedSignature:
    ++DetectedSig;
    return;
  case Outcome::DetectedHardware:
    ++DetectedHw;
    return;
  case Outcome::Masked:
    ++Masked;
    return;
  case Outcome::Sdc:
    ++Sdc;
    return;
  case Outcome::Timeout:
    ++Timeout;
    return;
  case Outcome::Recovered:
    ++Recovered;
    return;
  case Outcome::RecoveryFailed:
    ++RecoveryFailed;
    return;
  }
  cfed_unreachable("covered switch");
}

void OutcomeCounts::merge(const OutcomeCounts &Other) {
  DetectedSig += Other.DetectedSig;
  DetectedHw += Other.DetectedHw;
  Masked += Other.Masked;
  Sdc += Other.Sdc;
  Timeout += Other.Timeout;
  Recovered += Other.Recovered;
  RecoveryFailed += Other.RecoveryFailed;
}

OutcomeCounts CampaignResult::totals() const {
  OutcomeCounts Totals;
  for (const OutcomeCounts &Row : PerCategory)
    Totals.merge(Row);
  return Totals;
}

struct FaultCampaign::Instance {
  Memory Mem;
  Dbt Translator;
  Interpreter Interp;
  bool Ok;

  /// \p Digests must be attached before load(): eager configurations
  /// translate at load time, and the Digest markers must be in the
  /// cache from the first translation so every run of the campaign
  /// shares one layout.
  Instance(const AsmProgram &Program, const DbtConfig &Config,
           telemetry::DigestRecorder *Digests = nullptr)
      : Translator(Mem, Config), Interp(Mem) {
    if (Digests)
      Translator.setDigestRecorder(Digests);
    Ok = Translator.load(Program, Interp.state());
  }
};

namespace {

/// Shared logic: decide whether a branch will be taken given the real
/// architectural state.
bool branchTaken(const Instruction &I, const Flags &F,
                 const CpuState &State) {
  switch (getOpcodeKind(I.Op)) {
  case OpKind::Jump:
  case OpKind::Call:
    return true;
  case OpKind::CondJump:
    return evalCondCode(I.cond(), F);
  case OpKind::RegZeroJump:
    return I.Op == Opcode::Jzr ? State.Regs[I.A] == 0
                               : State.Regs[I.A] != 0;
  default:
    cfed_unreachable("not an offset branch");
  }
}

/// Classifies an erroneous transfer from the cache branch at \p SiteAddr
/// to \p Target against the translator's live block layout.
BranchErrorCategory classifyCacheTarget(const Dbt &Translator,
                                        uint64_t SiteAddr, uint64_t Target) {
  const TranslatedBlock *Own = Translator.cacheBlockContaining(SiteAddr);
  const TranslatedBlock *Dest = Translator.cacheBlockContaining(Target);
  if (!Dest)
    return BranchErrorCategory::F;
  if (Own && Dest->CacheAddr == Own->CacheAddr)
    return Target == Own->CacheAddr ? BranchErrorCategory::B
                                    : BranchErrorCategory::C;
  return Target == Dest->CacheAddr ? BranchErrorCategory::D
                                   : BranchErrorCategory::E;
}

/// Determines the branch-error category a (Kind, Mask) fault would cause
/// at this dynamic branch execution, without applying it.
BranchErrorCategory categorize(const Dbt &Translator, uint64_t InsnAddr,
                               const Instruction &I, const Flags &F,
                               const CpuState &State, FaultKind Kind,
                               uint64_t Mask) {
  if (Kind == FaultKind::FlagBit) {
    if (I.Op != Opcode::Jcc)
      return BranchErrorCategory::NoError;
    bool Orig = evalCondCode(I.cond(), F);
    bool Mutated = evalCondCode(
        I.cond(), F.withMaskFlipped(static_cast<uint8_t>(Mask)));
    return Orig == Mutated ? BranchErrorCategory::NoError
                           : BranchErrorCategory::A;
  }
  if (!branchTaken(I, F, State))
    return BranchErrorCategory::NoError;
  uint32_t MutatedImm =
      static_cast<uint32_t>(I.Imm) ^ static_cast<uint32_t>(Mask);
  uint64_t Target = InsnAddr + InsnSize +
                    static_cast<int64_t>(static_cast<int32_t>(MutatedImm));
  uint64_t FallThrough = InsnAddr + InsnSize;
  if (Target == FallThrough)
    return BranchErrorCategory::A; // Behaves like a mistaken branch.
  return classifyCacheTarget(Translator, InsnAddr, Target);
}

/// Counts dynamic branch executions per site (golden run).
class CountingHook : public FaultHook {
public:
  std::unordered_map<uint64_t, uint64_t> PerSite;
  void apply(uint64_t InsnAddr, Instruction &, Flags &,
             const CpuState &) override {
    ++PerSite[InsnAddr];
  }
};

/// Base for hooks that index dynamic branch executions within a site
/// class.
class ClassCountingHook : public FaultHook {
public:
  ClassCountingHook(const FaultCampaign &Campaign, SiteClass Sites,
                    const std::unordered_map<uint64_t, bool> &InstrMap)
      : Sites(Sites), InstrMap(InstrMap) {
    (void)Campaign;
  }

protected:
  bool matches(uint64_t SiteAddr) const {
    if (Sites == SiteClass::Any)
      return true;
    auto It = InstrMap.find(SiteAddr);
    bool IsInstr = It != InstrMap.end() && It->second;
    return Sites == SiteClass::InstrumentationOnly ? IsInstr : !IsInstr;
  }

  SiteClass Sites;
  const std::unordered_map<uint64_t, bool> &InstrMap;
  uint64_t Counter = 0;
};

/// Planning hook: at each selected instance, records the analytic
/// category for the pre-drawn fault.
class PlanningHook : public ClassCountingHook {
public:
  PlanningHook(const FaultCampaign &Campaign, SiteClass Sites,
               const std::unordered_map<uint64_t, bool> &InstrMap,
               const Dbt &Translator, std::vector<PlannedFault> &Faults)
      : ClassCountingHook(Campaign, Sites, InstrMap), Translator(Translator),
        Faults(Faults) {}

  void apply(uint64_t InsnAddr, Instruction &I, Flags &F,
             const CpuState &State) override {
    if (!matches(InsnAddr))
      return;
    ++Counter;
    while (Next < Faults.size() && Faults[Next].Instance == Counter) {
      PlannedFault &Fault = Faults[Next];
      Fault.Category = categorize(Translator, InsnAddr, I, F, State,
                                  Fault.Kind, Fault.Mask);
      auto It = InstrMap.find(InsnAddr);
      Fault.InstrSite = It != InstrMap.end() && It->second;
      Fault.SiteAddr = InsnAddr;
      ++Next;
    }
  }

private:
  const Dbt &Translator;
  std::vector<PlannedFault> &Faults; // Sorted by Instance.
  size_t Next = 0;
};

/// Injection hook: applies the fault at the chosen instance.
class InjectionHook : public ClassCountingHook {
public:
  InjectionHook(const FaultCampaign &Campaign, SiteClass Sites,
                const std::unordered_map<uint64_t, bool> &InstrMap,
                const PlannedFault &Fault, const Interpreter &Interp)
      : ClassCountingHook(Campaign, Sites, InstrMap), Fault(Fault),
        Interp(Interp) {}

  bool Fired = false;
  /// Dynamic instruction count at the moment the fault fired.
  uint64_t InsnsAtFire = 0;

  void apply(uint64_t InsnAddr, Instruction &I, Flags &F,
             const CpuState &) override {
    if (Fired || !matches(InsnAddr))
      return;
    if (++Counter != Fault.Instance)
      return;
    Fired = true;
    InsnsAtFire = Interp.instructionCount();
    if (Fault.Kind == FaultKind::AddrBit)
      I.Imm = static_cast<int32_t>(static_cast<uint32_t>(I.Imm) ^
                                   static_cast<uint32_t>(Fault.Mask));
    else
      F = F.withMaskFlipped(static_cast<uint8_t>(Fault.Mask));
  }

private:
  const PlannedFault &Fault;
  const Interpreter &Interp;
};

} // namespace

FaultCampaign::FaultCampaign(const AsmProgram &Program, DbtConfig Config)
    : Program(Program), Config(Config) {}

bool FaultCampaign::matchesClass(uint64_t SiteAddr, SiteClass Class) const {
  if (Class == SiteClass::Any)
    return true;
  auto It = Sites.find(SiteAddr);
  bool IsInstr = It != Sites.end() && It->second.IsInstr;
  return Class == SiteClass::InstrumentationOnly ? IsInstr : !IsInstr;
}

bool FaultCampaign::prepare(uint64_t MaxInsns) {
  telemetry::DigestRecorder Digests;
  Instance Ref(Program, Config, PropEnabled ? &Digests : nullptr);
  if (!Ref.Ok)
    return false;
  CountingHook Hook;
  Ref.Interp.setFaultHook(&Hook);
  StopInfo Stop = Ref.Translator.run(Ref.Interp, MaxInsns);
  if (Stop.Kind != StopKind::Halted)
    return false;
  GoldenInsns = Ref.Interp.instructionCount();
  GoldenHash = hashOutput(Ref.Interp.output());
  InsnBudget = GoldenInsns * 4 + 100000;
  if (PropEnabled) {
    Golden.Records = Digests.takeRecords();
    // Fingerprint the reference execution, not the bytes of the image:
    // the output hash and retired count together reject an oracle
    // recorded from a different program or configuration.
    Golden.ProgramFp = GoldenHash;
    Golden.ConfigFp = GoldenInsns;
  }

  Sites.clear();
  InstrMap.clear();
  for (const BranchSiteInfo &Site : Ref.Translator.enumerateBranchSites()) {
    Sites[Site.CacheAddr].IsInstr = Site.IsInstrumentation;
    InstrMap[Site.CacheAddr] = Site.IsInstrumentation;
  }

  ExecAll = ExecInstr = ExecOrig = 0;
  for (const auto &[Addr, Count] : Hook.PerSite) {
    ExecAll += Count;
    auto It = Sites.find(Addr);
    if (It != Sites.end() && It->second.IsInstr)
      ExecInstr += Count;
    else
      ExecOrig += Count;
  }
  Prepared = true;
  return true;
}

uint64_t FaultCampaign::branchExecutions(SiteClass Class) const {
  switch (Class) {
  case SiteClass::Any:
    return ExecAll;
  case SiteClass::OriginalOnly:
    return ExecOrig;
  case SiteClass::InstrumentationOnly:
    return ExecInstr;
  }
  cfed_unreachable("covered switch");
}

std::vector<PlannedFault> FaultCampaign::plan(uint64_t NumCandidates,
                                              uint64_t Seed, SiteClass Class,
                                              FaultModel Model) {
  assert(Prepared && "call prepare() first");
  uint64_t Population = branchExecutions(Class);
  if (Population == 0)
    return {};

  Prng Rng(Seed);
  std::set<uint64_t> Instances;
  uint64_t Want = std::min(NumCandidates, Population);
  while (Instances.size() < Want)
    Instances.insert(1 + Rng.nextBelow(Population));

  std::vector<PlannedFault> Faults;
  Faults.reserve(Instances.size());
  for (uint64_t InstanceIdx : Instances) {
    PlannedFault Fault;
    Fault.Instance = InstanceIdx;
    Fault.Class = Class;
    // 32 addr bits + 4 flag bits, uniformly (the Section 2 model). The
    // domain draw doubles as the SingleBit mask draw, so single-bit
    // plans reproduce the pre-FaultModel sequences bit-for-bit.
    uint64_t Pick = Rng.nextBelow(36);
    if (Pick < 32) {
      Fault.Kind = FaultKind::AddrBit;
      Fault.Mask = Model == FaultModel::SingleBit
                       ? uint64_t(1) << Pick
                       : drawFaultMask(Rng, Model, 32);
    } else {
      Fault.Kind = FaultKind::FlagBit;
      Fault.Mask = Model == FaultModel::SingleBit
                       ? uint64_t(1) << (Pick - 32)
                       : drawFaultMask(Rng, Model, Flags::NumFlagBits);
    }
    Fault.Bit = static_cast<unsigned>(__builtin_ctzll(Fault.Mask));
    Faults.push_back(Fault);
  }

  // A prop-enabled campaign plants Digest markers in every instance —
  // including this one, or the cache layout (and so the site addresses
  // recorded in prepare()) would not reproduce.
  telemetry::DigestRecorder Digests;
  Instance Planner(Program, Config, PropEnabled ? &Digests : nullptr);
  if (!Planner.Ok)
    reportFatalError("planning instance failed to load after prepare()");
  PlanningHook Hook(*this, Class, InstrMap, Planner.Translator, Faults);
  Planner.Interp.setFaultHook(&Hook);
  Planner.Translator.run(Planner.Interp, InsnBudget);
  return Faults;
}

Outcome FaultCampaign::inject(const PlannedFault &Fault) const {
  return injectDetailed(Fault).Result;
}

namespace {

/// Annotates and writes one "campaign-injection" bundle.
void writeInjectionBundle(telemetry::FlightRecorder &Recorder, Dbt &Translator,
                          Interpreter &Interp, const StopInfo &Stop,
                          const PlannedFault &Fault, bool Fired,
                          Outcome Result, const telemetry::PropagationReport &Prop) {
  telemetry::PostMortem PM =
      Translator.buildPostMortem("campaign-injection", Stop, Interp);
  PM.Annotations.emplace_back("instance", Fault.Instance);
  PM.Annotations.emplace_back("bit", Fault.Bit);
  PM.Annotations.emplace_back(
      "flag_bit_fault", Fault.Kind == FaultKind::FlagBit ? 1 : 0);
  PM.Annotations.emplace_back("site_addr", Fault.SiteAddr);
  PM.Annotations.emplace_back("fired", Fired ? 1 : 0);
  if (Prop.Enabled) {
    PM.Propagation.Present = true;
    PM.Propagation.Class = telemetry::getPropClassName(Prop.Class);
    PM.Propagation.Diverged = Prop.Diverged;
    PM.Propagation.DivergenceOrdinal = Prop.DivergenceOrdinal;
    PM.Propagation.DivergenceKey = Prop.DivergenceKey;
    PM.Propagation.DivergencePC = Prop.DivergencePC;
    PM.Propagation.TaintedBlocks = Prop.TaintedBlocks;
    PM.Propagation.ChecksCrossed = Prop.ChecksCrossed;
    PM.Propagation.InsnsCrossed = Prop.InsnsCrossed;
  }
  PM.Note = getOutcomeName(Result);
  Recorder.write(PM);
}

} // namespace

InjectionReport
FaultCampaign::injectDetailed(const PlannedFault &Fault,
                              telemetry::FlightRecorder *Recorder) const {
  assert(Prepared && "call prepare() first");
  telemetry::DigestRecorder Digests;
  Instance Run(Program, Config, PropEnabled ? &Digests : nullptr);
  if (!Run.Ok)
    reportFatalError("injection instance failed to load after prepare()");
  InjectionHook Hook(*this, Fault.Class, InstrMap, Fault, Run.Interp);
  Run.Interp.setFaultHook(&Hook);
  std::unique_ptr<telemetry::EventTracer> Tracer;
  if (Recorder) {
    Tracer = std::make_unique<telemetry::EventTracer>(Recorder->maxEvents());
    Run.Translator.setTracer(Tracer.get());
  }
  StopInfo Stop = Run.Translator.run(Run.Interp, InsnBudget);

  InjectionReport Report;
  Report.Fired = Hook.Fired;
  Report.LatencyInsns =
      Hook.Fired ? Run.Interp.instructionCount() - Hook.InsnsAtFire : 0;

  switch (Stop.Kind) {
  case StopKind::Halted:
    Report.Result = hashOutput(Run.Interp.output()) == GoldenHash
                        ? Outcome::Masked
                        : Outcome::Sdc;
    break;
  case StopKind::InsnLimit:
    Report.Result = Outcome::Timeout;
    break;
  case StopKind::Trapped: {
    Report.Result = Outcome::DetectedHardware;
    if (Stop.Trap == TrapKind::BreakTrap &&
        Stop.BreakCode == BrkControlFlowError) {
      Report.Result = Outcome::DetectedSignature;
    } else if (Stop.Trap == TrapKind::DivByZero) {
      // ECCA reports through the div-by-zero handler: the fault is a
      // signature detection when the div is instrumentation (Section 3.1's
      // discussion of the ECCA exception handler).
      const TranslatedBlock *Block =
          Run.Translator.cacheBlockContaining(Stop.TrapAddr);
      if (Block && Block->isInstrumentation(Stop.TrapAddr))
        Report.Result = Outcome::DetectedSignature;
    }
    break;
  }
  }
  if (PropEnabled)
    Report.Prop = telemetry::analyzePropagation(
        Golden.Records, Digests.records(), toPropOutcome(Report.Result));
  if (Recorder)
    writeInjectionBundle(*Recorder, Run.Translator, Run.Interp, Stop, Fault,
                         Hook.Fired, Report.Result, Report.Prop);
  return Report;
}

FaultCampaign::RecoveryInjection
FaultCampaign::injectWithRecovery(const PlannedFault &Fault,
                                  const RecoveryConfig &Recovery,
                                  telemetry::FlightRecorder *Recorder) const {
  assert(Prepared && "call prepare() first");
  // Recovery campaigns do not track propagation, but the layout must
  // still match prepare()'s when the campaign is prop-enabled.
  telemetry::DigestRecorder Digests;
  Instance Run(Program, Config, PropEnabled ? &Digests : nullptr);
  if (!Run.Ok)
    reportFatalError("injection instance failed to load after prepare()");
  InjectionHook Hook(*this, Fault.Class, InstrMap, Fault, Run.Interp);
  Run.Interp.setFaultHook(&Hook);
  std::unique_ptr<telemetry::EventTracer> Tracer;
  if (Recorder) {
    Tracer = std::make_unique<telemetry::EventTracer>(Recorder->maxEvents());
    Run.Translator.setTracer(Tracer.get());
  }
  RecoveryManager Manager(Run.Interp, Run.Translator, Recovery);
  RecoveryReport Report = Manager.run(InsnBudget);

  RecoveryInjection Injection;
  Injection.Fired = Hook.Fired;
  if (Report.Completed) {
    bool Golden = hashOutput(Run.Interp.output()) == GoldenHash;
    if (Report.NumRollbacks > 0)
      Injection.Result = Golden ? Outcome::Recovered : Outcome::RecoveryFailed;
    else
      Injection.Result = Golden ? Outcome::Masked : Outcome::Sdc;
  } else if (Report.FinalStop.Kind == StopKind::InsnLimit) {
    Injection.Result = Report.NumRollbacks > 0 ? Outcome::RecoveryFailed
                                               : Outcome::Timeout;
  } else {
    // A final trap means even the interpreter fallback could not make
    // progress: the ladder is exhausted.
    Injection.Result = Outcome::RecoveryFailed;
  }
  if (Recorder) {
    telemetry::PostMortem PM = Run.Translator.buildPostMortem(
        "campaign-injection", Report.FinalStop, Run.Interp);
    PM.Recovery.Present = true;
    PM.Recovery.Checkpoints = Report.NumCheckpoints;
    PM.Recovery.Rollbacks = Report.NumRollbacks;
    PM.Recovery.WatchdogFires = Report.NumWatchdogFires;
    PM.Recovery.Degraded = Report.Degraded;
    PM.Recovery.InterpreterFallback = Report.InterpreterFallback;
    PM.Annotations.emplace_back("instance", Fault.Instance);
    PM.Annotations.emplace_back("bit", Fault.Bit);
    PM.Annotations.emplace_back(
        "flag_bit_fault", Fault.Kind == FaultKind::FlagBit ? 1 : 0);
    PM.Annotations.emplace_back("site_addr", Fault.SiteAddr);
    PM.Annotations.emplace_back("fired", Hook.Fired ? 1 : 0);
    PM.Note = getOutcomeName(Injection.Result);
    Recorder->write(PM);
  }
  Injection.Recovery = std::move(Report);
  return Injection;
}

namespace {

/// Serial selection shared by run() and runWithRecovery(): the first
/// NumInjections candidates that can actually deviate control flow, in
/// plan order — keeping the two phases' fault sets identical.
std::vector<const PlannedFault *>
selectFaults(const std::vector<PlannedFault> &Candidates,
             uint64_t NumInjections) {
  std::vector<const PlannedFault *> Selected;
  Selected.reserve(std::min<uint64_t>(NumInjections, Candidates.size()));
  for (const PlannedFault &Fault : Candidates) {
    if (Fault.Category == BranchErrorCategory::NoError)
      continue;
    if (Selected.size() >= NumInjections)
      break;
    Selected.push_back(&Fault);
  }
  return Selected;
}

} // namespace

CampaignResult
FaultCampaign::tallyOutcomes(const std::vector<const PlannedFault *> &Sel,
                             const std::vector<Outcome> &Outcomes) {
  // Serial tally from position-indexed slots: workers never touch shared
  // counters, so the registry contents — and the result rebuilt from
  // them — are identical for any job count.
  telemetry::MetricsRegistry RunMetrics;
  for (size_t I = 0; I < Sel.size(); ++I) {
    RunMetrics.counter(getOutcomeCounterName(Sel[I]->Category, Outcomes[I]))
        .inc();
    RunMetrics.counter("fault.injections").inc();
  }
  telemetry::RegistrySnapshot Snap = RunMetrics.snapshot();
  Metrics.merge(Snap);
  CampaignResult Result = campaignResultFromSnapshot(Snap);
  assert(Result.totals().total() == Result.Injections &&
         "registry tallies must cover every injection");
  return Result;
}

void FaultCampaign::tallyPropagation(
    const std::vector<const PlannedFault *> &Sel,
    const std::vector<telemetry::PropagationReport> &Prop) {
  // Same discipline as tallyOutcomes: serial, position-indexed, into a
  // fresh registry that folds into Metrics — so the prop.* instruments
  // are identical for any job count (and, at the engine level, for any
  // shard split).
  telemetry::MetricsRegistry PropMetrics;
  std::vector<uint64_t> Bounds = telemetry::propDistanceBounds();
  for (size_t I = 0; I < Sel.size(); ++I) {
    if (!Prop[I].Enabled)
      continue;
    PropMetrics.counter(getPropagationCounterName(Sel[I]->Category,
                                                  Prop[I].Class))
        .inc();
    if (Prop[I].Class == telemetry::PropClass::DetectedAfterDivergence)
      PropMetrics.histogram(getPropagationDistanceName(Sel[I]->Category),
                            Bounds)
          .observe(Prop[I].InsnsCrossed);
  }
  Metrics.merge(PropMetrics.snapshot());
}

CampaignResult FaultCampaign::run(uint64_t NumInjections, uint64_t Seed,
                                  SiteClass Class, unsigned Jobs) {
  // Over-plan: a sizeable share of random faults are NoError.
  std::vector<PlannedFault> Candidates =
      plan(NumInjections * 4, Seed, Class);
  std::vector<const PlannedFault *> Selected =
      selectFaults(Candidates, NumInjections);

  // Parallel injection into position-indexed slots. Each worker touches
  // only its own slot; the merge into the registry stays serial.
  std::vector<Outcome> Outcomes(Selected.size());
  std::vector<telemetry::PropagationReport> Prop(Selected.size());
  ThreadPool Pool(Jobs);
  Pool.parallelFor(Selected.size(), [&](uint64_t I) {
    InjectionReport Rep = injectDetailed(*Selected[I]);
    Outcomes[I] = Rep.Result;
    Prop[I] = Rep.Prop;
  });
  CampaignResult Result = tallyOutcomes(Selected, Outcomes);
  if (PropEnabled)
    tallyPropagation(Selected, Prop);
  return Result;
}

CampaignResult FaultCampaign::runWithRecovery(uint64_t NumInjections,
                                              uint64_t Seed, SiteClass Class,
                                              const RecoveryConfig &Recovery,
                                              unsigned Jobs) {
  std::vector<PlannedFault> Candidates =
      plan(NumInjections * 4, Seed, Class);
  std::vector<const PlannedFault *> Selected =
      selectFaults(Candidates, NumInjections);

  // Position-indexed slots for the outcome and the recovery ladder's
  // activity, so the serial sums below are jobs-invariant.
  std::vector<Outcome> Outcomes(Selected.size());
  std::vector<std::array<uint64_t, 5>> Ladder(Selected.size());
  ThreadPool Pool(Jobs);
  Pool.parallelFor(Selected.size(), [&](uint64_t I) {
    RecoveryInjection Inj = injectWithRecovery(*Selected[I], Recovery);
    Outcomes[I] = Inj.Result;
    Ladder[I] = {Inj.Recovery.NumCheckpoints, Inj.Recovery.NumRollbacks,
                 Inj.Recovery.NumWatchdogFires,
                 Inj.Recovery.Degraded ? uint64_t(1) : 0,
                 Inj.Recovery.InterpreterFallback ? uint64_t(1) : 0};
  });
  CampaignResult Result = tallyOutcomes(Selected, Outcomes);

  // Each injection's RecoveryManager counted into its own worker
  // registry, which dies with the worker; re-aggregate the per-slot
  // records under the same names so campaign-level snapshots carry the
  // recovery story too.
  static const char *const LadderNames[5] = {
      "recovery.checkpoints", "recovery.rollbacks",
      "recovery.watchdog_fires", "recovery.degradations",
      "recovery.interp_fallbacks"};
  for (unsigned K = 0; K < 5; ++K) {
    uint64_t Sum = 0;
    for (const auto &Slot : Ladder)
      Sum += Slot[K];
    Metrics.counter(LadderNames[K]).inc(Sum);
  }
  return Result;
}
