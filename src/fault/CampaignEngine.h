//===- CampaignEngine.h - Resumable sharded campaign engine -----*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The campaign engine: a long-running fault-injection service layered
/// on FaultCampaign that adds what the paper's "soft-error injection"
/// future-work item needs at scale:
///
///  - Persistent resumable campaigns. Progress is checkpointed to a
///    versioned file (injection cursor, reserve cursors, the merged
///    metrics snapshot) atomically every CheckpointInterval schedule
///    slots, so a killed run continues exactly where it stopped. The
///    plan is re-derived deterministically from the seed on resume and
///    validated against the checkpoint's plan hash.
///
///  - Work-stealing batch scheduling plus multi-process sharding.
///    Within a batch the injections self-schedule over the ThreadPool's
///    atomic cursor into position-indexed slots; across processes the
///    primary schedule is partitioned deterministically (slot i belongs
///    to shard i mod NumShards), and shard result files merge into one
///    report identical to the unsharded run for any job/shard split.
///
///  - Statistical early stopping. Per branch-error-category cell the
///    engine tracks a Wilson confidence interval on the SDC rate; once
///    an interval is tighter than the configured half-width the cell
///    closes, its remaining scheduled injections are skipped (counted,
///    never silently dropped), and the freed budget is reallocated to
///    the loosest still-open cell from the reserve plan.
///
///  - Detection-latency histograms: per-cell "fault.latency.cat_*"
///    instruments (instructions from fault firing to detection), the
///    quantity the relaxed checking policies of Section 6 trade
///    against performance.
///
//===----------------------------------------------------------------------===//

#ifndef CFED_FAULT_CAMPAIGNENGINE_H
#define CFED_FAULT_CAMPAIGNENGINE_H

#include "fault/Attack.h"
#include "fault/Campaign.h"
#include "support/Stats.h"

#include <functional>
#include <string>

namespace cfed {
namespace json {
struct JsonValue;
} // namespace json

/// Engine configuration on top of a FaultCampaign's program/DbtConfig.
struct EngineConfig {
  /// Primary injection budget (schedule slots across all shards).
  uint64_t NumInjections = 0;
  uint64_t Seed = 1;
  SiteClass Sites = SiteClass::Any;
  FaultModel Model = FaultModel::SingleBit;
  /// Golden-run instruction budget handed to prepare().
  uint64_t MaxInsns = 50000000;
  unsigned Jobs = 1;

  /// Schedule slots per batch; a checkpoint is written after every
  /// batch. Injections within a batch run in parallel, so this is also
  /// the unit of work lost to a kill.
  uint64_t CheckpointInterval = 64;
  /// Checkpoint file path; empty disables checkpointing (the run is
  /// then neither resumable nor killable without losing everything).
  std::string CheckpointFile;

  /// This process handles primary schedule slots with
  /// index % NumShards == ShardIndex.
  unsigned ShardIndex = 0;
  unsigned NumShards = 1;

  /// Early stopping: close a cell once the Wilson interval on its SDC
  /// rate has half-width <= StopHalfWidth. 0 disables. With
  /// NumShards > 1 this requires CoordinatorDir (a lone shard cannot
  /// see global cell tightness).
  double StopHalfWidth = 0.0;
  /// Critical value of the Wilson interval (1.96 = 95%).
  double StopZ = 1.96;

  /// Cross-shard coordination directory (DESIGN.md §13). When set, the
  /// shards of one campaign run in lockstep over the *global* batch
  /// sequence: each shard deterministically replays every batch's
  /// skip/reallocation decisions but executes only the slots it owns
  /// (global slot index mod NumShards), publishes an atomic live
  /// snapshot of its cumulative registry after every batch, and waits
  /// for its siblings' snapshots before opening the next batch. Early
  /// stopping then closes cells on the *merged* counts, so the merged
  /// campaign result is byte-identical to the unsharded early-stopping
  /// run.
  std::string CoordinatorDir;
  /// Fatal timeout waiting for a sibling's batch snapshot.
  uint64_t CoordinatorTimeoutMs = 120000;

  /// Live telemetry: when set, the engine publishes a live snapshot
  /// (registry + heartbeat) to this file atomically at every batch
  /// boundary (deterministic inline mode). Coordinated runs default to
  /// CoordinatorDir/shard_<K>.live.json when empty.
  std::string LiveExportFile;
  /// Run identifier stamped into live snapshots; defaults to
  /// "campaign-<seed>".
  std::string RunId;

  /// Fault-propagation provenance (DESIGN.md §14): the golden run
  /// records a digest oracle and every injection replays against it,
  /// feeding prop.cat_*.* funnel counters and prop.distance.cat_*
  /// histograms into the cumulative registry. The prop.* instruments
  /// live in the same checkpointed registry as the outcome counters,
  /// so they are jobs- and shard-invariant and resume-safe for free.
  /// Note the digest markers change the code-cache layout: a
  /// propagation campaign's plan is not interchangeable with a plain
  /// one (the plan hash differs, so checkpoints refuse the mix).
  bool TrackPropagation = false;
  /// When non-empty (and TrackPropagation), the golden run's digest
  /// oracle is also saved to this file after prepare().
  std::string GoldenTraceFile;

  /// Test hook: stop (with Finished = false) after this many batches.
  /// 0 = run to completion. A subsequent run with the same checkpoint
  /// file continues where this one stopped.
  uint64_t MaxBatches = 0;
  /// Test hook: invoked after every successful checkpoint write with
  /// the number of completed injections.
  std::function<void(uint64_t)> OnCheckpoint;
};

/// Per-cell (branch-error category) accounting in the final report.
struct CellReport {
  BranchErrorCategory Category = BranchErrorCategory::A;
  OutcomeCounts Counts;
  /// Observed SDC rate and its Wilson interval at StopZ.
  double SdcRate = 0.0;
  WilsonInterval Interval;
  /// The cell closed by early stopping.
  bool Stopped = false;
  /// Scheduled injections skipped because the cell had closed.
  uint64_t Skipped = 0;
  /// Injections this cell received from other cells' freed budget.
  uint64_t Reallocated = 0;
};

/// Result of one engine run (one shard's share when sharded).
struct EngineReport {
  CampaignResult Result;
  /// Cumulative instruments: fault.cat_*.* outcome counters,
  /// fault.latency.cat_* histograms, fault.engine.* accounting.
  telemetry::RegistrySnapshot Registry;
  std::vector<CellReport> Cells;
  /// Injections actually executed (including resumed-from-checkpoint).
  uint64_t Completed = 0;
  /// Primary schedule slots assigned to this shard.
  uint64_t Planned = 0;
  /// Slots skipped by early stopping, total.
  uint64_t Skipped = 0;
  /// False when MaxBatches truncated the run before the schedule was
  /// exhausted.
  bool Finished = true;
  /// The run continued from an existing checkpoint.
  bool Resumed = false;
};

/// A parsed campaign result file (one shard's output).
struct ShardResult {
  unsigned Shard = 0;
  unsigned NumShards = 1;
  uint64_t Seed = 0;
  uint64_t Completed = 0;
  uint64_t Skipped = 0;
  bool Finished = true;
  telemetry::RegistrySnapshot Registry;
};

/// On-disk checkpoint state, exposed for the torture tests.
struct EngineCheckpoint {
  uint64_t Version = 0;
  uint64_t PlanHash = 0;
  unsigned Shard = 0;
  unsigned NumShards = 1;
  /// Index of the next unprocessed slot. Counts this shard's own
  /// schedule slots normally, but *global* schedule slots when the
  /// checkpoint was written in coordinated mode — the two are not
  /// interchangeable, so Coordinated is validated on resume.
  uint64_t Cursor = 0;
  uint64_t Completed = 0;
  /// The checkpoint was written by a coordinated (lockstep) run.
  bool Coordinated = false;
  /// Per-category consumption of the reserve plan.
  std::array<uint64_t, NumBranchErrorCategories> ReserveCursors{};
  telemetry::RegistrySnapshot Registry;
};

/// The current checkpoint format version.
inline constexpr uint64_t EngineCheckpointVersion = 1;

class CampaignEngine {
public:
  /// Validates \p Engine (fatal on an invalid shard spec, a zero
  /// checkpoint interval, or early stopping combined with sharding).
  CampaignEngine(const AsmProgram &Program, DbtConfig Config,
                 EngineConfig Engine);

  /// Runs the campaign: golden run, deterministic plan, batched
  /// injection with checkpointing, early stopping, and final report.
  /// Resumes from Engine.CheckpointFile when it holds a matching
  /// checkpoint; fatal when it holds a corrupt or mismatching one.
  EngineReport run();

  /// Serializes \p Report as a single-line campaign result file.
  static std::string resultToJson(const EngineReport &Report,
                                  const EngineConfig &Engine);

  /// Parses a resultToJson() file; false (and \p Error) on mismatch.
  static bool parseShardResult(const std::string &Text, ShardResult &Out,
                               std::string &Error);

  /// Folds shard results into one report equal to the unsharded run:
  /// counters sum, histograms fold, completed/skipped add. Validates
  /// that seeds and shard counts agree and no shard repeats.
  static bool mergeShards(const std::vector<ShardResult> &Shards,
                          ShardResult &Out, std::string &Error);

  /// How loading a checkpoint file ended.
  enum class LoadStatus {
    Ok,      ///< Parsed and structurally valid.
    Missing, ///< No file at the path (a fresh campaign).
    Corrupt, ///< Truncated, unparsable, or structurally invalid.
  };

  /// Loads and validates the checkpoint structure (not the plan hash —
  /// run() checks that against the live plan). \p Error describes
  /// Corrupt results.
  static LoadStatus loadCheckpoint(const std::string &Path,
                                   EngineCheckpoint &Out,
                                   std::string &Error);

  /// Writes \p Ckpt atomically (temp file + rename), so a kill at any
  /// point leaves either the previous checkpoint or the new one.
  static bool writeCheckpoint(const std::string &Path,
                              const EngineCheckpoint &Ckpt,
                              std::string &Error);

  /// Histogram bounds shared by every fault.latency.* instrument
  /// (powers of two, 1 .. 2^20 instructions).
  static std::vector<uint64_t> latencyBounds();

  /// Name of the per-category detection-latency histogram.
  static std::string getLatencyHistogramName(BranchErrorCategory Cat);

  /// Path of shard \p Shard's per-batch barrier snapshot inside \p Dir.
  static std::string coordinatorBatchPath(const std::string &Dir,
                                          unsigned Shard, uint64_t Batch);
  /// Path of shard \p Shard's latest live snapshot inside \p Dir.
  static std::string coordinatorLivePath(const std::string &Dir,
                                         unsigned Shard);

private:
  EngineReport runCoordinated(
      FaultCampaign &Campaign,
      const std::vector<const PlannedFault *> &Primary,
      std::array<std::vector<const PlannedFault *>,
                 NumBranchErrorCategories> &Reserve,
      uint64_t PlanHash);

  const AsmProgram &Program;
  DbtConfig Config;
  EngineConfig Engine;
};

/// Engine configuration for adversarial attack campaigns — the subset
/// of EngineConfig the attack engine supports (no early stopping or
/// coordination: attack plans are small and every slot is actionable).
struct AttackEngineConfig {
  /// Primary attack budget (schedule slots across all shards).
  uint64_t NumAttacks = 0;
  uint64_t Seed = 1;
  /// Golden-run instruction budget handed to prepare().
  uint64_t MaxInsns = 50000000;
  unsigned Jobs = 1;

  /// Schedule slots per batch; a checkpoint is written after every
  /// batch.
  uint64_t CheckpointInterval = 64;
  /// Checkpoint file path; empty disables checkpointing.
  std::string CheckpointFile;

  /// This process handles primary schedule slots with
  /// index % NumShards == ShardIndex.
  unsigned ShardIndex = 0;
  unsigned NumShards = 1;

  /// Test hook: stop (with Finished = false) after this many batches.
  uint64_t MaxBatches = 0;
  /// Test hook: invoked after every successful checkpoint write.
  std::function<void(uint64_t)> OnCheckpoint;
};

/// Result of one attack-engine run (one shard's share when sharded).
struct AttackEngineReport {
  AttackResult Result;
  /// Cumulative instruments: attack.<family>.* outcome counters plus
  /// attack.attacks / attack.gadget_valid.
  telemetry::RegistrySnapshot Registry;
  uint64_t Completed = 0;
  uint64_t Planned = 0;
  bool Finished = true;
  bool Resumed = false;
};

/// Resumable, shardable adversarial campaigns on top of AttackCampaign.
/// Reuses the campaign engine's machinery: the same EngineCheckpoint
/// record (written under kind "cfed-attack-checkpoint" so fault and
/// attack checkpoints can never be confused), the same atomic
/// temp-and-rename discipline, and result files of kind
/// "cfed-campaign-result" so CampaignEngine::parseShardResult and
/// mergeShards fold attack shards exactly like fault shards.
class AttackEngine {
public:
  /// Validates \p Engine (fatal on an invalid shard spec or a zero
  /// checkpoint interval).
  AttackEngine(const AsmProgram &Program, DbtConfig Config,
               AttackEngineConfig Engine);

  /// Runs the campaign: golden run, deterministic plan, batched
  /// injection with checkpointing. Resumes from Engine.CheckpointFile
  /// when it holds a matching checkpoint; byte-identical to an
  /// uninterrupted run for any kill/resume point, job count, or shard
  /// split.
  AttackEngineReport run();

  /// Serializes \p Report as a single-line campaign result file
  /// mergeable by CampaignEngine::mergeShards.
  static std::string resultToJson(const AttackEngineReport &Report,
                                  const AttackEngineConfig &Engine);

  /// Checkpoint I/O under the attack kind; same structure and
  /// atomicity as CampaignEngine's.
  static bool writeCheckpoint(const std::string &Path,
                              const EngineCheckpoint &Ckpt,
                              std::string &Error);
  static CampaignEngine::LoadStatus
  loadCheckpoint(const std::string &Path, EngineCheckpoint &Out,
                 std::string &Error);

private:
  const AsmProgram &Program;
  DbtConfig Config;
  AttackEngineConfig Engine;
};

} // namespace cfed

#endif // CFED_FAULT_CAMPAIGNENGINE_H
