//===- Attack.h - Adversarial control-flow attack campaigns -----*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Adversarial-mode campaigns: instead of flipping random bits (the
/// paper's soft-error model, fault/Campaign.h), an attacker picks the
/// *worst case* — control transfers redirected to targets that carry a
/// valid signature under the configured technique, so the signature
/// check has nothing to catch. Three adversary families:
///
///  * Return    — ROP-style corruption of a return address on the VISA
///                stack, applied immediately before the ret lowering's
///                Pop consumes it. Gadget search consults the checker's
///                acceptsForgedReturn() oracle: for the address-mapped
///                schemes (EdgCF/RCF/ECF) every translated block is a
///                valid gadget (the signature is derived from the popped
///                value itself), which is exactly why a shadow return
///                stack is needed.
///  * Indirect  — an IBTC entry is swapped to the live translation of
///                another signature-carrying block, with a correctly
///                resealed check word (an attacker who understands the
///                seal). Models indirect-jump/call target hijacking.
///  * CodePatch — SMC-style patching of a direct exit (Tramp stub or
///                chained Jmp) in translated code, keeping the patch
///                signature-compatible for the additive schemes by
///                adjusting the preceding lea signature update. The
///                self-integrity machinery (scrubber / dispatch verify),
///                not the signature algebra, is the intended catcher.
///
/// The campaign runs like a fault campaign: prepare() golden run,
/// deterministic plan() over per-family dynamic event streams, one
/// fresh instance per injected attack, jobs-invariant tally. Outcomes
/// are finer-grained than fault outcomes: detection is attributed to
/// the signature scheme (0xCFE/0x5EC), the shadow return stack (0x5AC),
/// the self-integrity layer, or hardware — the per-technique precision
/// matrix of DESIGN.md §15.
///
//===----------------------------------------------------------------------===//

#ifndef CFED_FAULT_ATTACK_H
#define CFED_FAULT_ATTACK_H

#include "asm/Assembler.h"
#include "dbt/Dbt.h"
#include "fault/Category.h"
#include "recovery/Recovery.h"
#include "telemetry/FlightRecorder.h"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace cfed {

/// The adversary families. Keep NumAttackFamilies in sync.
enum class AttackFamily : uint8_t {
  Return,   ///< Forge a return address on the stack before its Pop.
  Indirect, ///< Swap an IBTC entry to another translated block.
  CodePatch ///< Patch a direct exit in the code cache (SMC).
};

inline constexpr unsigned NumAttackFamilies = 3;

/// Returns "return", "indirect" or "code-patch".
const char *getAttackFamilyName(AttackFamily F);

/// The appended branch-error category an attack family reports under
/// (AttackReturn/AttackIndirect/AttackCodePatch — stable numeric IDs,
/// see fault/Category.h).
BranchErrorCategory attackCategory(AttackFamily F);

/// How one attacked run ended. Finer-grained than fault Outcome: the
/// detector that fired matters (the precision matrix separates
/// shadow-stack-only catches from signature catches). Keep
/// NumAttackOutcomes in sync.
enum class AttackOutcome : uint8_t {
  DetectedSignature,   ///< 0xCFE / 0x5EC: the signature scheme caught it.
  DetectedShadowStack, ///< 0x5AC: only the shadow return stack caught it.
  DetectedIntegrity,   ///< Self-integrity quarantined the tampered code
                       ///< and the healed run completed golden.
  DetectedHardware,    ///< Memory protection / illegal instruction.
  Evaded,              ///< Run completed with corrupted output and no
                       ///< detector fired: the attack won.
  Masked,              ///< Run completed with the golden output.
  Timeout,             ///< Run exceeded the instruction budget without
                       ///< any detector firing.
  Recovered,           ///< Detected, rolled back, completed golden
                       ///< (recovery campaigns only).
  RecoveryFailed       ///< Detected and rolled back, but the run did not
                       ///< reproduce the golden output.
};

inline constexpr unsigned NumAttackOutcomes = 9;

/// Returns a short display name for \p O.
const char *getAttackOutcomeName(AttackOutcome O);

/// The registry counter name tallying \p O for \p F attacks:
/// "attack.<family>.<outcome>".
std::string getAttackCounterName(AttackFamily F, AttackOutcome O);

/// One planned attack: at the \p Instance-th dynamic event of \p Family
/// (return-pop / indirect-dispatch / direct-exit execution), redirect
/// the transfer from \p RealTarget to \p ForgedTarget.
struct PlannedAttack {
  uint64_t Instance = 0;
  AttackFamily Family = AttackFamily::Return;
  /// Cache address of the event instruction.
  uint64_t SiteAddr = 0;
  /// Guest target the unattacked run would have taken.
  uint64_t RealTarget = 0;
  /// Guest address of the gadget block control is redirected to.
  /// 0 when the gadget search found no candidate (unactionable).
  uint64_t ForgedTarget = 0;
  /// The checker's acceptsForgedReturn() oracle accepted the forged
  /// edge — the signature check provably cannot fire on it.
  bool GadgetValid = false;
};

/// Per-family outcome tallies.
struct AttackOutcomeCounts {
  uint64_t DetectedSig = 0;
  uint64_t DetectedShadow = 0;
  uint64_t DetectedIntegrity = 0;
  uint64_t DetectedHw = 0;
  uint64_t Evaded = 0;
  uint64_t Masked = 0;
  uint64_t Timeout = 0;
  uint64_t Recovered = 0;
  uint64_t RecoveryFailed = 0;

  uint64_t total() const {
    return DetectedSig + DetectedShadow + DetectedIntegrity + DetectedHw +
           Evaded + Masked + Timeout + Recovered + RecoveryFailed;
  }
  /// Detections the technique can claim without the shadow stack.
  uint64_t detected() const {
    return DetectedSig + DetectedIntegrity + DetectedHw + RecoveryFailed;
  }
  /// Attacks no detector caught (the attacker's score).
  uint64_t undetected() const { return Evaded + Timeout; }
  void add(AttackOutcome O);
  void merge(const AttackOutcomeCounts &Other);

  bool operator==(const AttackOutcomeCounts &Other) const = default;
};

/// Aggregated campaign results, bucketed by attack family.
struct AttackResult {
  std::array<AttackOutcomeCounts, NumAttackFamilies> PerFamily;
  uint64_t Attacks = 0;

  AttackOutcomeCounts &of(AttackFamily F) {
    return PerFamily[static_cast<unsigned>(F)];
  }
  const AttackOutcomeCounts &of(AttackFamily F) const {
    return PerFamily[static_cast<unsigned>(F)];
  }
  AttackOutcomeCounts totals() const;

  bool operator==(const AttackResult &Other) const = default;
};

/// Rebuilds per-family outcome tallies from the "attack.<family>.*"
/// counters of \p Snap — the inverse of the campaign's tally pass, so
/// results and telemetry can never disagree (and shard merges reuse the
/// registry fold).
AttackResult
attackResultFromSnapshot(const telemetry::RegistrySnapshot &Snap);

/// True when \p Snap carries any attack campaign tallies — how
/// cfed-stat decides whether a result file is an attack campaign.
bool hasAttackTallies(const telemetry::RegistrySnapshot &Snap);

/// Renders the per-family precision matrix (one row per attack family,
/// one column per outcome, plus a totals row) from the attack.*
/// counters of \p Snap. Returns "" when the snapshot carries none.
std::string renderPrecisionMatrix(const telemetry::RegistrySnapshot &Snap);

/// The fixed machine-readable summary line CI greps:
/// "precision-summary: attacks=N detected=X shadow_only=Y undetected=Z
///  recovered=R benign=B". The five cells partition every attack:
/// detected = signature + integrity + hardware + failed recoveries,
/// shadow_only = caught by the shadow return stack alone,
/// undetected = evaded + timeout, benign = masked.
std::string
renderPrecisionSummaryLine(const telemetry::RegistrySnapshot &Snap);

/// An adversarial campaign against one program under one DBT
/// configuration.
class AttackCampaign {
public:
  AttackCampaign(const AsmProgram &Program, DbtConfig Config);

  /// Golden run: records the reference output hash, the instruction
  /// budget and the per-family dynamic event populations. Returns false
  /// if the program fails to load or does not halt within \p MaxInsns.
  bool prepare(uint64_t MaxInsns);

  /// Plans \p NumCandidates attacks split evenly over the families with
  /// a non-empty event stream, interleaved round-robin. Deterministic in
  /// \p Seed: per-family draws use derived seeds, so the plan is
  /// identical for any job count and shard split. Gadgets are drawn from
  /// the blocks live at the event instant, preferring targets the
  /// checker's acceptsForgedReturn() oracle accepts.
  std::vector<PlannedAttack> plan(uint64_t NumCandidates, uint64_t Seed);

  /// Full record of one attacked run.
  struct AttackReport {
    AttackOutcome Result = AttackOutcome::Masked;
    /// The attack actually fired.
    bool Fired = false;
  };

  /// Executes one planned attack and classifies the outcome. Thread-safe
  /// after prepare(): every run uses a fresh Memory/Dbt/Interp instance.
  /// With a \p Recorder one post-mortem bundle is written — reason
  /// "attack-evasion" for Evaded/Timeout outcomes (the proof artifact
  /// the precision matrix cites), "attack-injection" otherwise.
  /// Recorder use is serial-only.
  AttackReport
  injectAttack(const PlannedAttack &Attack,
               telemetry::FlightRecorder *Recorder = nullptr) const;

  /// Executes one planned attack under checkpoint/rollback recovery.
  AttackReport
  injectWithRecovery(const PlannedAttack &Attack,
                     const RecoveryConfig &Recovery,
                     telemetry::FlightRecorder *Recorder = nullptr) const;

  /// Runs a full campaign: plan, drop unactionable candidates, inject.
  /// Jobs-invariant like FaultCampaign::run (position-indexed slots,
  /// serial tally). With a \p Recorder, every Evaded/Timeout attack is
  /// re-injected serially afterwards to write its evasion bundle
  /// (injections are deterministic, so the replay reproduces the run).
  AttackResult run(uint64_t NumAttacks, uint64_t Seed, unsigned Jobs = 1,
                   telemetry::FlightRecorder *Recorder = nullptr);

  /// The recovery-effectiveness variant: same plan and selection as
  /// run() for equal arguments, every injection under recovery.
  AttackResult runWithRecovery(uint64_t NumAttacks, uint64_t Seed,
                               const RecoveryConfig &Recovery,
                               unsigned Jobs = 1);

  uint64_t goldenInsns() const { return GoldenInsns; }
  uint64_t goldenHash() const { return GoldenHash; }
  /// Dynamic events of \p F in the golden run (the plan population).
  uint64_t eventExecutions(AttackFamily F) const {
    return EventCounts[static_cast<unsigned>(F)];
  }

  /// Cumulative "attack.<family>.<outcome>" counters plus
  /// "attack.attacks" across every run()/runWithRecovery() call,
  /// tallied serially from position-indexed slots.
  const telemetry::MetricsRegistry &metrics() const { return Metrics; }

private:
  struct Instance;

  AttackResult
  tallyOutcomes(const std::vector<const PlannedAttack *> &Sel,
                const std::vector<AttackOutcome> &Outcomes);

  const AsmProgram &Program;
  DbtConfig Config;
  telemetry::MetricsRegistry Metrics;
  uint64_t GoldenInsns = 0;
  uint64_t GoldenHash = 0;
  uint64_t InsnBudget = 0;
  std::array<uint64_t, NumAttackFamilies> EventCounts{};
  bool Prepared = false;
};

} // namespace cfed

#endif // CFED_FAULT_ATTACK_H
