//===- IntegrityFault.cpp - Checker-targeted fault injection -------------------===//

#include "fault/IntegrityFault.h"

#include "support/Diagnostics.h"
#include "support/Prng.h"
#include "support/ThreadPool.h"

#include <vector>

using namespace cfed;

const char *cfed::getIntegrityTargetName(IntegrityTarget T) {
  switch (T) {
  case IntegrityTarget::CodeByte:
    return "code";
  case IntegrityTarget::TableEntry:
    return "meta";
  case IntegrityTarget::SigState:
    return "sig";
  }
  cfed_unreachable("covered switch");
}

std::string cfed::getIntegrityOutcomeCounterName(IntegrityTarget T,
                                                 Outcome O) {
  return std::string("fault.int_") + getIntegrityTargetName(T) + '.' +
         getOutcomeName(O);
}

OutcomeCounts IntegrityCampaignResult::totals() const {
  OutcomeCounts Totals;
  for (const OutcomeCounts &Counts : PerTarget)
    Totals.merge(Counts);
  return Totals;
}

void IntegrityFaultInjector::onInsn(uint64_t InsnAddr, const Instruction &,
                                    CpuState &State) {
  if (Fired)
    return;
  if (++Counter < Instance)
    return;
  // Armed: fire at the first instruction with an eligible victim.
  switch (Target) {
  case IntegrityTarget::CodeByte:
    fireCodeByte(InsnAddr);
    return;
  case IntegrityTarget::TableEntry:
    fireTableEntry();
    return;
  case IntegrityTarget::SigState:
    fireSigState(State);
    return;
  }
}

void IntegrityFaultInjector::fireCodeByte(uint64_t InsnAddr) {
  // Exclude the translation unit currently executing: dispatch
  // verification happens at unit boundaries, so corruption inside the
  // running unit could execute before any check sees it.
  const TranslatedBlock *Current = Translator.cacheBlockContaining(InsnAddr);
  uint64_t CurrentUnit = Current ? Current->CacheAddr + Current->CacheSize : 0;
  std::vector<const TranslatedBlock *> Eligible;
  for (const TranslatedBlock &TB : Translator.blocks())
    if (TB.CacheAddr + TB.CacheSize != CurrentUnit)
      Eligible.push_back(&TB);
  if (Eligible.empty())
    return;
  const TranslatedBlock *Victim = Eligible[Pick % Eligible.size()];
  uint64_t Addr = Victim->CacheAddr + (Pick >> 8) % Victim->CacheSize;
  uint8_t Byte;
  Mem.readRaw(Addr, &Byte, 1);
  Byte ^= static_cast<uint8_t>(1u << (Bit % 8));
  Mem.writeRaw(Addr, &Byte, 1);
  Mem.invalidatePredecode(Addr, 1);
  Fired = true;
}

void IntegrityFaultInjector::fireTableEntry() {
  size_t Index = static_cast<size_t>(Pick >> 1);
  unsigned Word = static_cast<unsigned>(Pick >> 33);
  if ((Pick & 1) != 0) {
    if (Translator.faultFlipIbtcBit(Index, Bit) ||
        Translator.faultFlipBlockMetaBit(Index, Word, Bit))
      Fired = true;
    return;
  }
  if (Translator.faultFlipBlockMetaBit(Index, Word, Bit) ||
      Translator.faultFlipIbtcBit(Index, Bit))
    Fired = true;
}

void IntegrityFaultInjector::fireSigState(CpuState &State) {
  static constexpr uint8_t Candidates[4] = {RegPCP, RegRTS, RegPCPShadow,
                                            RegRTSShadow};
  unsigned NumCandidates = Translator.config().ShadowSignature ? 4 : 2;
  State.Regs[Candidates[Pick % NumCandidates]] ^= 1ull << (Bit % 64);
  Fired = true;
}

namespace {

/// Classifies a run executed without recovery. A golden-output run in
/// which the integrity machinery found (and healed) a mismatch is
/// Recovered, not Masked: the corruption was real and cured, not
/// harmless.
Outcome classifyPlain(const StopInfo &Stop, const Interpreter &Interp,
                      const Dbt &Translator, uint64_t GoldenHash) {
  switch (Stop.Kind) {
  case StopKind::Halted:
    if (hashOutput(Interp.output()) != GoldenHash)
      return Outcome::Sdc;
    return Translator.integrityMismatchCount() > 0 ? Outcome::Recovered
                                                   : Outcome::Masked;
  case StopKind::InsnLimit:
    return Outcome::Timeout;
  case StopKind::Trapped:
    break;
  }
  if (Stop.Trap == TrapKind::BreakTrap &&
      (Stop.BreakCode == BrkMonitorCorruption ||
       Stop.BreakCode == BrkControlFlowError ||
       Stop.BreakCode == BrkDataFlowError))
    return Outcome::DetectedSignature;
  return Outcome::DetectedHardware;
}

/// Classifies a run executed under a RecoveryManager, mirroring the
/// branch campaigns' recovery classification.
Outcome classifyRecovered(const RecoveryReport &Report,
                          const Interpreter &Interp, const Dbt &Translator,
                          uint64_t GoldenHash) {
  if (Report.Completed) {
    if (hashOutput(Interp.output()) == GoldenHash)
      return Report.NumRollbacks > 0 ||
                     Translator.integrityMismatchCount() > 0
                 ? Outcome::Recovered
                 : Outcome::Masked;
    return Report.NumRollbacks > 0 ? Outcome::RecoveryFailed : Outcome::Sdc;
  }
  if (Report.FinalStop.Kind == StopKind::InsnLimit)
    return Report.NumRollbacks > 0 ? Outcome::RecoveryFailed
                                   : Outcome::Timeout;
  return Outcome::RecoveryFailed;
}

} // namespace

IntegrityCampaignResult cfed::runIntegrityCampaign(
    const AsmProgram &Program, const DbtConfig &Config, uint64_t PerTarget,
    uint64_t Seed, uint64_t MaxInsns, unsigned Jobs,
    const RecoveryConfig *Recovery, telemetry::MetricsRegistry *Metrics) {
  // Golden run.
  uint64_t GoldenInsns = 0, GoldenHash = 0;
  {
    Memory Mem;
    Interpreter Interp(Mem);
    Dbt Translator(Mem, Config);
    if (!Translator.load(Program, Interp.state()))
      reportFatalError("integrity campaign: program failed to load");
    StopInfo Stop = Translator.run(Interp, MaxInsns);
    if (Stop.Kind != StopKind::Halted)
      reportFatalError("integrity campaign: golden run did not halt");
    GoldenInsns = Interp.instructionCount();
    GoldenHash = hashOutput(Interp.output());
  }

  // Draw every fault's coordinates up front in serial order, so only
  // the injections themselves run concurrently.
  struct Coords {
    IntegrityTarget Target;
    uint64_t Instance;
    uint64_t Pick;
    unsigned Bit;
  };
  Prng Rng(Seed);
  std::vector<Coords> Plan;
  Plan.reserve(PerTarget * NumIntegrityTargets);
  for (IntegrityTarget Target : AllIntegrityTargets)
    for (uint64_t I = 0; I < PerTarget; ++I) {
      Coords C;
      C.Target = Target;
      C.Instance = 1 + Rng.nextBelow(GoldenInsns);
      C.Pick = Rng.next();
      C.Bit = static_cast<unsigned>(Rng.nextBelow(64));
      Plan.push_back(C);
    }

  uint64_t Budget = GoldenInsns * 4 + 100000;
  std::vector<Outcome> Outcomes(Plan.size());
  ThreadPool Pool(Jobs);
  Pool.parallelFor(Plan.size(), [&](uint64_t I) {
    const Coords &C = Plan[I];
    Memory Mem;
    Interpreter Interp(Mem);
    Dbt Translator(Mem, Config);
    if (!Translator.load(Program, Interp.state()))
      reportFatalError("integrity campaign: reload failed");
    IntegrityFaultInjector Hook(Mem, Translator, C.Target, C.Instance, C.Pick,
                                C.Bit);
    Interp.setPreInsnHook(&Hook);
    if (Recovery) {
      RecoveryManager Manager(Interp, Translator, *Recovery);
      RecoveryReport Report = Manager.run(Budget);
      Outcomes[I] = classifyRecovered(Report, Interp, Translator, GoldenHash);
    } else {
      StopInfo Stop = Translator.run(Interp, Budget);
      Outcomes[I] = classifyPlain(Stop, Interp, Translator, GoldenHash);
    }
  });

  // Serial, position-indexed tally: identical for any job count.
  IntegrityCampaignResult Result;
  Result.Injections = Plan.size();
  for (size_t I = 0; I < Plan.size(); ++I)
    Result.of(Plan[I].Target).add(Outcomes[I]);
  if (Metrics) {
    for (size_t I = 0; I < Plan.size(); ++I)
      Metrics->counter(
          getIntegrityOutcomeCounterName(Plan[I].Target, Outcomes[I]))
          .inc();
    Metrics->counter("fault.int_injections").inc(Plan.size());
  }
  return Result;
}
