//===- Campaign.h - Fault-injection campaigns -------------------*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic single-bit fault-injection campaigns against translated
/// programs — the paper's future-work item ("soft-error injection to
/// measure the actual effectiveness"), used here to validate the
/// coverage claims of Sections 2-3 empirically.
///
/// A campaign runs in three phases:
///
///  1. prepare(): a golden run records the reference output hash, the
///     instruction budget, the stabilized code-cache layout and the
///     per-site dynamic branch execution counts (translation is
///     deterministic, so later runs reproduce the same cache layout).
///  2. plan():    a planning run picks random dynamic branch instances
///     and one single-bit fault each (32 offset bits + 4 flag bits, as
///     in Section 2's model) and classifies each candidate's branch-error
///     category analytically, enabling stratified per-category sampling.
///  3. inject():  one fresh run per planned fault; the outcome is
///     classified as detected-by-signature (the instrumentation's
///     .report_error, or ECCA's div-by-zero inside instrumentation),
///     detected-by-hardware (memory protection / illegal instruction —
///     the category-F detectors), masked (golden output), silent data
///     corruption, or timeout (the infinite-loop hazard of the relaxed
///     checking policies, Section 6).
///
//===----------------------------------------------------------------------===//

#ifndef CFED_FAULT_CAMPAIGN_H
#define CFED_FAULT_CAMPAIGN_H

#include "asm/Assembler.h"
#include "dbt/Dbt.h"
#include "fault/Category.h"
#include "fault/ErrorModel.h"
#include "recovery/Recovery.h"
#include "telemetry/Provenance.h"

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace cfed {

/// Which single bit the fault flips.
enum class FaultKind : uint8_t {
  AddrBit, ///< One of the 32 bits of the branch's encoded offset.
  FlagBit, ///< One of the 4 FLAGS bits the branch observes.
};

/// Which fault sites a campaign draws from.
enum class SiteClass : uint8_t {
  Any,                  ///< Every offset branch in translated code.
  OriginalOnly,         ///< Branches translated from guest code.
  InstrumentationOnly,  ///< Branches the checker inserted (the RCF-vs-
                        ///< EdgCF safety experiment of Section 3.2).
};

/// One planned fault: XOR \p Mask into the offset or flag bits at the
/// \p Instance-th dynamic execution of a branch in the campaign's site
/// class. Under the single-bit model Mask has exactly one set bit and
/// \p Bit names it; multi-bit and burst masks keep Bit at the lowest
/// set bit for display.
struct PlannedFault {
  uint64_t Instance = 0;
  FaultKind Kind = FaultKind::AddrBit;
  unsigned Bit = 0;
  /// XOR mask over the 32 offset bits (AddrBit) or 4 flag bits
  /// (FlagBit). Never zero.
  uint64_t Mask = 1;
  /// The site class the instance index counts within.
  SiteClass Class = SiteClass::Any;
  /// Analytically determined branch-error category.
  BranchErrorCategory Category = BranchErrorCategory::NoError;
  /// The fault strikes an instrumentation-inserted branch.
  bool InstrSite = false;
  /// Cache address of the faulted branch.
  uint64_t SiteAddr = 0;
};

/// How one injected run ended. Keep NumOutcomes in sync.
enum class Outcome : uint8_t {
  DetectedSignature, ///< The checking technique reported the error.
  DetectedHardware,  ///< Memory protection / illegal instruction / trap.
  Masked,            ///< Run completed with the golden output.
  Sdc,               ///< Run completed with corrupted output.
  Timeout,           ///< Run exceeded the instruction budget.
  Recovered,         ///< Detected, rolled back, completed with the golden
                     ///< output (recovery campaigns only).
  RecoveryFailed,    ///< Detected and rolled back, but the run did not
                     ///< reproduce the golden output.
};

inline constexpr unsigned NumOutcomes = 7;

/// Returns a short display name for \p O.
const char *getOutcomeName(Outcome O);

/// The registry counter name tallying \p O for faults of category
/// \p Cat: "fault.cat_<category>.<outcome>".
std::string getOutcomeCounterName(BranchErrorCategory Cat, Outcome O);

/// Maps a campaign outcome down to the telemetry layer's propagation
/// outcome (Recovered folds to Detected and RecoveryFailed to Sdc, but
/// recovery campaigns do not track propagation today).
telemetry::PropOutcome toPropOutcome(Outcome O);

/// Counter name "prop.cat_<category>.<class>" for campaign aggregation.
std::string getPropagationCounterName(BranchErrorCategory Cat,
                                      telemetry::PropClass C);

/// Histogram name "prop.distance.cat_<category>": divergence-to-detection
/// distance in guest instructions for DetectedAfterDivergence injections.
std::string getPropagationDistanceName(BranchErrorCategory Cat);

/// Renders the per-category divergence→outcome funnel from the
/// prop.cat_*.* counters (and prop.distance.cat_* histograms) of
/// \p Snap as an aligned table with a totals row. Returns "" when the
/// snapshot carries no propagation tallies — callers print nothing for
/// non-propagation campaigns.
std::string renderPropagationFunnel(const telemetry::RegistrySnapshot &Snap);

/// Rebuilds per-category outcome tallies from the
/// "fault.cat_*.*" counters of \p Snap — the inverse of the tally pass
/// campaigns use, so results and telemetry can never disagree.
struct CampaignResult;
CampaignResult campaignResultFromSnapshot(
    const telemetry::RegistrySnapshot &Snap);

/// Full record of one injected run.
struct InjectionReport {
  Outcome Result = Outcome::Masked;
  /// Dynamic instructions executed between the fault firing and the run
  /// ending — for detected outcomes, the detection latency that the
  /// relaxed checking policies trade performance against (Section 6).
  uint64_t LatencyInsns = 0;
  /// The fault actually fired (always true when the instance index is
  /// within the golden run's branch count).
  bool Fired = false;
  /// Propagation provenance versus the golden digest oracle. Only
  /// populated (Prop.Enabled) when the campaign ran with
  /// enablePropagation(true).
  telemetry::PropagationReport Prop;
};

/// Outcome tallies.
struct OutcomeCounts {
  uint64_t DetectedSig = 0;
  uint64_t DetectedHw = 0;
  uint64_t Masked = 0;
  uint64_t Sdc = 0;
  uint64_t Timeout = 0;
  uint64_t Recovered = 0;
  uint64_t RecoveryFailed = 0;

  uint64_t total() const {
    return DetectedSig + DetectedHw + Masked + Sdc + Timeout + Recovered +
           RecoveryFailed;
  }
  void add(Outcome O);
  void merge(const OutcomeCounts &Other);

  bool operator==(const OutcomeCounts &Other) const {
    return DetectedSig == Other.DetectedSig && DetectedHw == Other.DetectedHw &&
           Masked == Other.Masked && Sdc == Other.Sdc &&
           Timeout == Other.Timeout && Recovered == Other.Recovered &&
           RecoveryFailed == Other.RecoveryFailed;
  }
  bool operator!=(const OutcomeCounts &Other) const {
    return !(*this == Other);
  }
};

/// Aggregated campaign results, bucketed by branch-error category.
struct CampaignResult {
  std::array<OutcomeCounts, NumBranchErrorCategories> PerCategory;
  uint64_t Injections = 0;

  OutcomeCounts &of(BranchErrorCategory Cat) {
    return PerCategory[static_cast<unsigned>(Cat)];
  }
  const OutcomeCounts &of(BranchErrorCategory Cat) const {
    return PerCategory[static_cast<unsigned>(Cat)];
  }
  OutcomeCounts totals() const;

  bool operator==(const CampaignResult &Other) const {
    return Injections == Other.Injections && PerCategory == Other.PerCategory;
  }
  bool operator!=(const CampaignResult &Other) const {
    return !(*this == Other);
  }
};

/// A fault-injection campaign against one program under one DBT
/// configuration.
class FaultCampaign {
public:
  FaultCampaign(const AsmProgram &Program, DbtConfig Config);

  /// Enables the fault-propagation provenance layer (DESIGN.md §14).
  /// Must be set before prepare(): the golden run then records the
  /// digest oracle, and every injection replays against it to fill
  /// InjectionReport::Prop. Attaching the digest recorder changes the
  /// code-cache layout (one Digest marker per sub-block), so results
  /// are comparable only within one enablePropagation setting.
  void enablePropagation(bool On) { PropEnabled = On; }
  bool propagationEnabled() const { return PropEnabled; }

  /// The golden digest oracle recorded by prepare() when propagation is
  /// enabled. ProgramFp/ConfigFp carry the golden output hash and
  /// instruction count — enough to reject an oracle file recorded from
  /// a different program or configuration.
  const telemetry::GoldenTrace &goldenTrace() const { return Golden; }

  /// Golden run. Returns false if the program fails to load or does not
  /// halt within \p MaxInsns.
  bool prepare(uint64_t MaxInsns);

  /// Plans \p NumCandidates random faults over the \p Sites class.
  /// Candidates whose fault provably does not deviate control flow are
  /// returned with Category == NoError; callers typically filter them.
  /// \p Model selects the mask shape (the default reproduces the
  /// Section 2 single-bit model draw-for-draw).
  std::vector<PlannedFault> plan(uint64_t NumCandidates, uint64_t Seed,
                                 SiteClass Sites,
                                 FaultModel Model = FaultModel::SingleBit);

  /// Executes one planned fault and classifies the outcome. Thread-safe
  /// after prepare(): every injection runs in a fresh Memory/Dbt/Interp
  /// instance and only reads campaign state.
  Outcome inject(const PlannedFault &Fault) const;

  /// Like inject(), additionally reporting detection latency. With a
  /// \p Recorder the run is traced and one post-mortem bundle (reason
  /// "campaign-injection", annotated with the fault parameters and the
  /// outcome) is written per injection. Recorder use is serial-only.
  InjectionReport
  injectDetailed(const PlannedFault &Fault,
                 telemetry::FlightRecorder *Recorder = nullptr) const;

  /// Outcome of one injected run executed under a RecoveryManager.
  struct RecoveryInjection {
    Outcome Result = Outcome::Masked;
    /// The fault actually fired.
    bool Fired = false;
    /// Full recovery-subsystem record of the run.
    RecoveryReport Recovery;
  };

  /// Executes one planned fault under checkpoint/rollback recovery. A run
  /// that detects, rolls back and reproduces the golden output classifies
  /// as Recovered; a rolled-back run with wrong output or no forward
  /// progress classifies as RecoveryFailed. Thread-safe like inject().
  RecoveryInjection
  injectWithRecovery(const PlannedFault &Fault,
                     const RecoveryConfig &Recovery,
                     telemetry::FlightRecorder *Recorder = nullptr) const;

  /// The recovery-effectiveness phase: same plan and serial selection as
  /// run() (the fault sets are identical for equal NumInjections, Seed
  /// and Sites), but every injection executes under recovery. Results are
  /// byte-identical for any \p Jobs value.
  CampaignResult runWithRecovery(uint64_t NumInjections, uint64_t Seed,
                                 SiteClass Sites,
                                 const RecoveryConfig &Recovery,
                                 unsigned Jobs = 1);

  /// Runs a full campaign: plan, filter out NoError candidates, inject.
  /// With \p Jobs > 1 the injections execute on a thread pool; the fault
  /// selection and the merge stay serial and position-indexed, so the
  /// result is identical to the serial run for any job count.
  CampaignResult run(uint64_t NumInjections, uint64_t Seed, SiteClass Sites,
                     unsigned Jobs = 1);

  uint64_t goldenInsns() const { return GoldenInsns; }
  uint64_t goldenHash() const { return GoldenHash; }
  /// Dynamic branch executions in the golden run for \p Sites.
  uint64_t branchExecutions(SiteClass Sites) const;

  /// Cumulative outcome telemetry across every run()/runWithRecovery()
  /// call on this campaign: "fault.cat_<category>.<outcome>" counters
  /// plus "fault.injections". Tallied serially from position-indexed
  /// per-injection slots, so the counters are identical for any job
  /// count.
  const telemetry::MetricsRegistry &metrics() const { return Metrics; }

private:
  struct SiteInfo {
    bool IsInstr = false;
  };

  /// Creates a fresh memory/translator/interpreter trio and loads the
  /// program; aborts on load failure (prepare() validated it).
  struct Instance;
  bool matchesClass(uint64_t SiteAddr, SiteClass Sites) const;

  /// Tallies one run's outcome slots into a fresh registry, folds it
  /// into Metrics, and returns the result rebuilt from the snapshot.
  CampaignResult tallyOutcomes(const std::vector<const PlannedFault *> &Sel,
                               const std::vector<Outcome> &Outcomes);

  /// Serial prop.* tally from position-indexed propagation slots — the
  /// propagation analogue of tallyOutcomes, jobs-invariant the same way.
  void tallyPropagation(const std::vector<const PlannedFault *> &Sel,
                        const std::vector<telemetry::PropagationReport> &Prop);

  const AsmProgram &Program;
  DbtConfig Config;
  telemetry::MetricsRegistry Metrics;
  uint64_t GoldenInsns = 0;
  uint64_t GoldenHash = 0;
  uint64_t InsnBudget = 0;
  std::unordered_map<uint64_t, SiteInfo> Sites;
  /// Site → is-instrumentation, in the shape the per-run hooks consume.
  /// Built once in prepare() instead of per injection.
  std::unordered_map<uint64_t, bool> InstrMap;
  uint64_t ExecAll = 0, ExecInstr = 0, ExecOrig = 0;
  bool Prepared = false;
  bool PropEnabled = false;
  telemetry::GoldenTrace Golden;
};

} // namespace cfed

#endif // CFED_FAULT_CAMPAIGN_H
