//===- RegisterFault.h - Datapath fault injection ---------------*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Register-file fault injection for evaluating the data-flow checking
/// extension: one bit of one guest register flips at one dynamic
/// instruction (the datapath counterpart of the Section 2 branch error
/// model). Outcomes use the same classification as the control-flow
/// campaigns; a BrkDataFlowError report counts as a signature detection.
///
//===----------------------------------------------------------------------===//

#ifndef CFED_FAULT_REGISTERFAULT_H
#define CFED_FAULT_REGISTERFAULT_H

#include "asm/Assembler.h"
#include "dbt/Dbt.h"
#include "fault/Campaign.h"

namespace cfed {

/// XORs a mask into guest register \p Reg immediately before the
/// \p Instance-th executed instruction. The bit constructor is the
/// single-bit model; fromMask() carries the multi-bit/burst variants.
class RegisterFaultInjector : public PreInsnHook {
public:
  RegisterFaultInjector(uint64_t Instance, uint8_t Reg, unsigned Bit)
      : Instance(Instance), Reg(Reg), Mask(uint64_t(1) << Bit) {}

  /// Builds an injector XORing an arbitrary non-zero 64-bit \p Mask
  /// (from drawFaultMask) instead of a single bit.
  static RegisterFaultInjector fromMask(uint64_t Instance, uint8_t Reg,
                                        uint64_t Mask) {
    RegisterFaultInjector Injector(Instance, Reg, 0);
    Injector.Mask = Mask;
    return Injector;
  }

  bool fired() const { return Fired; }

  void onInsn(uint64_t, const Instruction &, CpuState &State) override {
    if (Fired || ++Counter != Instance)
      return;
    Fired = true;
    State.Regs[Reg] ^= Mask;
  }

private:
  uint64_t Instance;
  uint8_t Reg;
  uint64_t Mask;
  uint64_t Counter = 0;
  bool Fired = false;
};

/// Results of a register-fault campaign: outcome tallies plus the
/// detection latency (instructions from the fault firing to the trap)
/// of every detected run, in injection order.
struct RegisterCampaignReport {
  OutcomeCounts Counts;
  std::vector<uint64_t> DetectionLatencies;

  double latencyMean() const;
  uint64_t latencyMax() const;
};

/// Runs \p NumInjections register faults of \p Model shape against
/// \p Program translated under \p Config, at uniformly random
/// (instruction, register r0-r14, mask) coordinates. The program must
/// halt within \p MaxInsns fault-free. All fault coordinates are drawn
/// up front from \p Seed, so with \p Jobs > 1 the injections run on a
/// thread pool and still tally identically to the serial campaign; the
/// SingleBit model consumes the Prng exactly like the original
/// single-bit campaign did.
RegisterCampaignReport runRegisterFaultCampaignDetailed(
    const AsmProgram &Program, const DbtConfig &Config,
    uint64_t NumInjections, uint64_t Seed, uint64_t MaxInsns,
    FaultModel Model = FaultModel::SingleBit, unsigned Jobs = 1);

/// The original single-bit entry point: tallies of
/// runRegisterFaultCampaignDetailed under FaultModel::SingleBit.
OutcomeCounts runRegisterFaultCampaign(const AsmProgram &Program,
                                       const DbtConfig &Config,
                                       uint64_t NumInjections, uint64_t Seed,
                                       uint64_t MaxInsns, unsigned Jobs = 1);

} // namespace cfed

#endif // CFED_FAULT_REGISTERFAULT_H
