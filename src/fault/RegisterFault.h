//===- RegisterFault.h - Datapath fault injection ---------------*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Register-file fault injection for evaluating the data-flow checking
/// extension: one bit of one guest register flips at one dynamic
/// instruction (the datapath counterpart of the Section 2 branch error
/// model). Outcomes use the same classification as the control-flow
/// campaigns; a BrkDataFlowError report counts as a signature detection.
///
//===----------------------------------------------------------------------===//

#ifndef CFED_FAULT_REGISTERFAULT_H
#define CFED_FAULT_REGISTERFAULT_H

#include "asm/Assembler.h"
#include "dbt/Dbt.h"
#include "fault/Campaign.h"

namespace cfed {

/// Flips bit \p Bit of guest register \p Reg immediately before the
/// \p Instance-th executed instruction.
class RegisterFaultInjector : public PreInsnHook {
public:
  RegisterFaultInjector(uint64_t Instance, uint8_t Reg, unsigned Bit)
      : Instance(Instance), Reg(Reg), Bit(Bit) {}

  bool fired() const { return Fired; }

  void onInsn(uint64_t, const Instruction &, CpuState &State) override {
    if (Fired || ++Counter != Instance)
      return;
    Fired = true;
    State.Regs[Reg] ^= uint64_t(1) << Bit;
  }

private:
  uint64_t Instance;
  uint8_t Reg;
  unsigned Bit;
  uint64_t Counter = 0;
  bool Fired = false;
};

/// Runs \p NumInjections single-bit register faults against \p Program
/// translated under \p Config, at uniformly random (instruction,
/// register r0-r14, bit) coordinates. The program must halt within
/// \p MaxInsns fault-free. All fault coordinates are drawn up front from
/// \p Seed, so with \p Jobs > 1 the injections run on a thread pool and
/// still tally identically to the serial campaign.
OutcomeCounts runRegisterFaultCampaign(const AsmProgram &Program,
                                       const DbtConfig &Config,
                                       uint64_t NumInjections, uint64_t Seed,
                                       uint64_t MaxInsns, unsigned Jobs = 1);

} // namespace cfed

#endif // CFED_FAULT_REGISTERFAULT_H
