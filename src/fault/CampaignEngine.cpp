//===- CampaignEngine.cpp - Resumable sharded campaign engine -------------------===//

#include "fault/CampaignEngine.h"

#include "support/Diagnostics.h"
#include "support/Json.h"
#include "support/ThreadPool.h"
#include "telemetry/LiveExport.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <unistd.h>

using namespace cfed;

//===----------------------------------------------------------------------===//
// Names, bounds, hashing
//===----------------------------------------------------------------------===//

std::vector<uint64_t> CampaignEngine::latencyBounds() {
  std::vector<uint64_t> Bounds;
  for (unsigned Shift = 0; Shift <= 20; ++Shift)
    Bounds.push_back(uint64_t(1) << Shift);
  return Bounds;
}

std::string CampaignEngine::getLatencyHistogramName(BranchErrorCategory Cat) {
  return std::string("fault.latency.cat_") + getCategoryName(Cat);
}

namespace {

std::string getSkipCounterName(BranchErrorCategory Cat) {
  return std::string("fault.engine.skipped.cat_") + getCategoryName(Cat);
}

std::string getReallocCounterName(BranchErrorCategory Cat) {
  return std::string("fault.engine.realloc.cat_") + getCategoryName(Cat);
}

uint64_t fnv1a(uint64_t Hash, uint64_t Value) {
  for (unsigned I = 0; I < 8; ++I) {
    Hash ^= (Value >> (I * 8)) & 0xff;
    Hash *= 0x100000001b3ULL;
  }
  return Hash;
}

/// Deterministic fingerprint of the plan and the knobs that shape it.
/// A checkpoint taken under a different program, seed, model or budget
/// must never silently continue into this plan.
uint64_t hashPlan(const EngineConfig &Engine,
                  const std::vector<PlannedFault> &Candidates) {
  uint64_t Hash = 0xcbf29ce484222325ULL;
  Hash = fnv1a(Hash, Engine.NumInjections);
  Hash = fnv1a(Hash, Engine.Seed);
  Hash = fnv1a(Hash, static_cast<uint64_t>(Engine.Sites));
  Hash = fnv1a(Hash, static_cast<uint64_t>(Engine.Model));
  Hash = fnv1a(Hash, Engine.NumShards);
  for (const PlannedFault &F : Candidates) {
    Hash = fnv1a(Hash, F.Instance);
    Hash = fnv1a(Hash, static_cast<uint64_t>(F.Kind));
    Hash = fnv1a(Hash, F.Mask);
    Hash = fnv1a(Hash, static_cast<uint64_t>(F.Category));
    Hash = fnv1a(Hash, F.SiteAddr);
    Hash = fnv1a(Hash, F.InstrSite ? 1 : 0);
  }
  return Hash;
}

std::string toHex(uint64_t Value) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%016" PRIx64, Value);
  return Buf;
}

bool fromHex(const std::string &Text, uint64_t &Out) {
  if (Text.empty() || Text.size() > 16)
    return false;
  Out = 0;
  for (char C : Text) {
    unsigned Digit;
    if (C >= '0' && C <= '9')
      Digit = C - '0';
    else if (C >= 'a' && C <= 'f')
      Digit = 10 + (C - 'a');
    else
      return false;
    Out = (Out << 4) | Digit;
  }
  return true;
}

/// The error categories cells range over (NoError is never scheduled).
bool isCellCategory(BranchErrorCategory Cat) {
  return Cat != BranchErrorCategory::NoError;
}

struct CellState {
  OutcomeCounts Counts;
  WilsonInterval Interval;
  bool Closed = false;
};

/// Rebuilds per-cell tallies and Wilson intervals from the cumulative
/// snapshot — the only state that survives a kill, so closing decisions
/// are identical between an interrupted-and-resumed run and an
/// uninterrupted one.
std::array<CellState, NumBranchErrorCategories>
computeCells(const telemetry::RegistrySnapshot &Snap, double StopHalfWidth,
             double StopZ) {
  CampaignResult Result = campaignResultFromSnapshot(Snap);
  std::array<CellState, NumBranchErrorCategories> Cells;
  for (unsigned C = 0; C < NumBranchErrorCategories; ++C) {
    auto Cat = static_cast<BranchErrorCategory>(C);
    CellState &Cell = Cells[C];
    Cell.Counts = Result.of(Cat);
    Cell.Interval =
        wilsonInterval(Cell.Counts.Sdc, Cell.Counts.total(), StopZ);
    Cell.Closed = StopHalfWidth > 0.0 && isCellCategory(Cat) &&
                  Cell.Interval.halfWidth() <= StopHalfWidth;
  }
  return Cells;
}

/// Total early-stopping skips recorded in \p Snap.
uint64_t totalSkipped(const telemetry::RegistrySnapshot &Snap) {
  uint64_t Total = 0;
  for (unsigned C = 0; C < NumBranchErrorCategories; ++C) {
    auto Cat = static_cast<BranchErrorCategory>(C);
    if (isCellCategory(Cat))
      Total += Snap.counterOr(getSkipCounterName(Cat));
  }
  return Total;
}

/// Heartbeat for a live snapshot: this shard's progress, its own
/// per-cell counts/intervals (\p OwnCells — so merging heartbeats
/// across shards never double-counts), and the closure flags of the
/// state the last stopping decision actually used (\p DecisionCells —
/// the merged state in coordinated mode).
telemetry::Heartbeat
makeHeartbeat(const EngineConfig &Engine, uint64_t Cursor, uint64_t Planned,
              uint64_t Completed, const telemetry::RegistrySnapshot &Own,
              const std::array<CellState, NumBranchErrorCategories> &OwnCells,
              const std::array<CellState, NumBranchErrorCategories>
                  &DecisionCells) {
  telemetry::Heartbeat Beat;
  Beat.Present = true;
  Beat.Shard = Engine.ShardIndex;
  Beat.NumShards = Engine.NumShards;
  Beat.Cursor = Cursor;
  Beat.Planned = Planned;
  Beat.Completed = Completed;
  Beat.Skipped = totalSkipped(Own);
  Beat.Rung = telemetry::recoveryRungFromSnapshot(Own);
  for (unsigned C = 0; C < NumBranchErrorCategories; ++C) {
    auto Cat = static_cast<BranchErrorCategory>(C);
    if (!isCellCategory(Cat))
      continue;
    telemetry::HeartbeatCell Cell;
    Cell.Name = getCategoryName(Cat);
    Cell.Total = OwnCells[C].Counts.total();
    Cell.Sdc = OwnCells[C].Counts.Sdc;
    Cell.Low = OwnCells[C].Interval.Low;
    Cell.High = OwnCells[C].Interval.High;
    Cell.Closed = DecisionCells[C].Closed;
    Beat.Cells.push_back(std::move(Cell));
  }
  return Beat;
}

/// Atomic live-snapshot write; failures are fatal like checkpoint
/// failures (in coordinated mode siblings block on these files, so a
/// silent skip would hang the campaign, not degrade it).
void publishLiveFile(const std::string &Path, const std::string &RunId,
                     uint64_t Seq,
                     const telemetry::RegistrySnapshot &Registry,
                     const telemetry::Heartbeat &Beat) {
  telemetry::LiveSnapshot Snap;
  Snap.RunId = RunId;
  Snap.Pid = static_cast<uint64_t>(::getpid());
  Snap.Seq = Seq;
  Snap.WallMs = telemetry::wallClockMs();
  Snap.Registry = Registry;
  Snap.Beat = Beat;
  std::string Error;
  if (!telemetry::writeLiveSnapshot(Path, Snap, Error))
    reportFatalErrorf("live export failed: %s", Error.c_str());
}

/// Run id stamped into live snapshots.
std::string effectiveRunId(const EngineConfig &Engine) {
  return Engine.RunId.empty() ? "campaign-" + std::to_string(Engine.Seed)
                              : Engine.RunId;
}

/// Folds one injection's propagation provenance into the cumulative
/// registry (a no-op when the campaign does not track propagation).
/// Runs inside the serial position-indexed tally loops, so the prop.*
/// instruments inherit their jobs/shard invariance.
void tallyPropagation(telemetry::MetricsRegistry &Cumulative,
                      BranchErrorCategory Cat, const InjectionReport &Report,
                      const std::vector<uint64_t> &DistBounds) {
  if (!Report.Prop.Enabled)
    return;
  Cumulative.counter(getPropagationCounterName(Cat, Report.Prop.Class)).inc();
  if (Report.Prop.Class == telemetry::PropClass::DetectedAfterDivergence)
    Cumulative.histogram(getPropagationDistanceName(Cat), DistBounds)
        .observe(Report.Prop.InsnsCrossed);
}

} // namespace

//===----------------------------------------------------------------------===//
// Checkpoint I/O
//===----------------------------------------------------------------------===//

namespace {

std::string checkpointToJson(const EngineCheckpoint &Ckpt,
                             const char *Kind) {
  std::string Out = "{\"kind\":\"";
  Out += Kind;
  Out += "\",\"version\":";
  Out += std::to_string(Ckpt.Version);
  Out += ",\"plan_hash\":\"" + toHex(Ckpt.PlanHash) + '"';
  Out += ",\"shard\":" + std::to_string(Ckpt.Shard);
  Out += ",\"num_shards\":" + std::to_string(Ckpt.NumShards);
  Out += ",\"cursor\":" + std::to_string(Ckpt.Cursor);
  Out += ",\"completed\":" + std::to_string(Ckpt.Completed);
  Out += ",\"coordinated\":";
  Out += Ckpt.Coordinated ? "true" : "false";
  Out += ",\"reserve_cursors\":[";
  for (unsigned C = 0; C < NumBranchErrorCategories; ++C) {
    if (C)
      Out += ',';
    Out += std::to_string(Ckpt.ReserveCursors[C]);
  }
  Out += "],\"registry\":";
  Out += Ckpt.Registry.toJson();
  Out += '}';
  return Out;
}

/// Kind strings distinguishing fault-campaign from attack-campaign
/// checkpoints: a resume must never silently mix the two.
constexpr const char *CampaignCheckpointKind = "cfed-campaign-checkpoint";
constexpr const char *AttackCheckpointKind = "cfed-attack-checkpoint";

bool writeCheckpointKind(const std::string &Path,
                         const EngineCheckpoint &Ckpt, const char *Kind,
                         std::string &Error) {
  // Temp file + rename: readers (and a resume after a kill landing
  // anywhere in here) see either the previous checkpoint or the new
  // one, never a torn write.
  std::string Tmp = Path + ".tmp";
  std::FILE *File = std::fopen(Tmp.c_str(), "w");
  if (!File) {
    Error = "cannot open '" + Tmp + "' for writing";
    return false;
  }
  std::string Json = checkpointToJson(Ckpt, Kind);
  Json += '\n';
  bool Ok = std::fwrite(Json.data(), 1, Json.size(), File) == Json.size();
  Ok = std::fflush(File) == 0 && Ok;
  Ok = std::fclose(File) == 0 && Ok;
  if (!Ok) {
    Error = "short write to '" + Tmp + '\'';
    std::remove(Tmp.c_str());
    return false;
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    Error = "cannot rename '" + Tmp + "' to '" + Path + '\'';
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}

using LoadStatus = CampaignEngine::LoadStatus;

LoadStatus loadCheckpointKind(const std::string &Path, EngineCheckpoint &Out,
                              const char *Kind, std::string &Error) {
  std::ifstream In(Path, std::ios::binary);
  if (!In.is_open())
    return LoadStatus::Missing;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  std::string Text = Buffer.str();

  json::JsonValue Root;
  json::JsonParser Parser(Text);
  if (!Parser.parse(Root) || Root.K != json::JsonValue::Object) {
    Error = "checkpoint '" + Path + "' is truncated or not valid JSON";
    return LoadStatus::Corrupt;
  }
  if (Root["kind"].Str != Kind) {
    Error = "'" + Path +
            (Kind == std::string(AttackCheckpointKind)
                 ? "' is not an attack campaign checkpoint"
                 : "' is not a campaign checkpoint");
    return LoadStatus::Corrupt;
  }
  Out.Version = static_cast<uint64_t>(Root["version"].Num);
  if (Out.Version != EngineCheckpointVersion) {
    Error = "checkpoint '" + Path + "' has version " +
            std::to_string(Out.Version) + "; this build reads version " +
            std::to_string(EngineCheckpointVersion);
    return LoadStatus::Corrupt;
  }
  if (!fromHex(Root["plan_hash"].Str, Out.PlanHash)) {
    Error = "checkpoint '" + Path + "' has a malformed plan hash";
    return LoadStatus::Corrupt;
  }
  const json::JsonValue &Reserve = Root["reserve_cursors"];
  if (Root["cursor"].K != json::JsonValue::Number ||
      Root["completed"].K != json::JsonValue::Number ||
      Reserve.K != json::JsonValue::Array ||
      Reserve.Items.size() != NumBranchErrorCategories) {
    Error = "checkpoint '" + Path + "' has a malformed progress record";
    return LoadStatus::Corrupt;
  }
  Out.Shard = static_cast<unsigned>(Root["shard"].Num);
  Out.NumShards = static_cast<unsigned>(Root["num_shards"].Num);
  Out.Cursor = static_cast<uint64_t>(Root["cursor"].Num);
  Out.Completed = static_cast<uint64_t>(Root["completed"].Num);
  // Absent in pre-coordinator checkpoints, which were by definition
  // uncoordinated.
  Out.Coordinated = Root["coordinated"].B;
  for (unsigned C = 0; C < NumBranchErrorCategories; ++C)
    Out.ReserveCursors[C] = static_cast<uint64_t>(Reserve.Items[C].Num);
  std::string SnapError;
  if (!telemetry::snapshotFromJson(Root["registry"], Out.Registry,
                                   SnapError)) {
    Error = "checkpoint '" + Path + "' registry: " + SnapError;
    return LoadStatus::Corrupt;
  }
  return LoadStatus::Ok;
}

} // namespace

bool CampaignEngine::writeCheckpoint(const std::string &Path,
                                     const EngineCheckpoint &Ckpt,
                                     std::string &Error) {
  return writeCheckpointKind(Path, Ckpt, CampaignCheckpointKind, Error);
}

CampaignEngine::LoadStatus
CampaignEngine::loadCheckpoint(const std::string &Path, EngineCheckpoint &Out,
                               std::string &Error) {
  return loadCheckpointKind(Path, Out, CampaignCheckpointKind, Error);
}

bool AttackEngine::writeCheckpoint(const std::string &Path,
                                   const EngineCheckpoint &Ckpt,
                                   std::string &Error) {
  return writeCheckpointKind(Path, Ckpt, AttackCheckpointKind, Error);
}

CampaignEngine::LoadStatus
AttackEngine::loadCheckpoint(const std::string &Path, EngineCheckpoint &Out,
                             std::string &Error) {
  return loadCheckpointKind(Path, Out, AttackCheckpointKind, Error);
}

//===----------------------------------------------------------------------===//
// Result files and shard merging
//===----------------------------------------------------------------------===//

std::string CampaignEngine::resultToJson(const EngineReport &Report,
                                         const EngineConfig &Engine) {
  std::string Out = "{\"kind\":\"cfed-campaign-result\",\"version\":1";
  Out += ",\"shard\":" + std::to_string(Engine.ShardIndex);
  Out += ",\"num_shards\":" + std::to_string(Engine.NumShards);
  Out += ",\"seed\":" + std::to_string(Engine.Seed);
  Out += ",\"model\":\"";
  Out += getFaultModelName(Engine.Model);
  Out += "\",\"completed\":" + std::to_string(Report.Completed);
  Out += ",\"skipped\":" + std::to_string(Report.Skipped);
  Out += ",\"finished\":";
  Out += Report.Finished ? "true" : "false";
  Out += ",\"registry\":";
  Out += Report.Registry.toJson();
  Out += '}';
  return Out;
}

bool CampaignEngine::parseShardResult(const std::string &Text,
                                      ShardResult &Out, std::string &Error) {
  json::JsonValue Root;
  json::JsonParser Parser(Text);
  if (!Parser.parse(Root) || Root.K != json::JsonValue::Object) {
    Error = "not valid JSON";
    return false;
  }
  // Live-exporter snapshots are in-flight partial data: folding one into
  // a merge would silently undercount the campaign. Refuse them before
  // the kind check so the diagnostic names the actual mistake.
  if (telemetry::isLiveSnapshotJson(Root)) {
    Error = "this is a live telemetry snapshot (seq/heartbeat fields), "
            "not a final campaign result; live files are in-flight "
            "partial data — merge the --campaign-out files written when "
            "the shards finish";
    return false;
  }
  std::string Kind = Root["kind"].Str;
  if (Kind != "cfed-campaign-result" && Kind != "cfed-campaign-merged") {
    Error = "not a campaign result file (kind '" + Kind + "')";
    return false;
  }
  Out.Shard = static_cast<unsigned>(Root["shard"].Num);
  Out.NumShards = static_cast<unsigned>(Root["num_shards"].Num);
  Out.Seed = static_cast<uint64_t>(Root["seed"].Num);
  Out.Completed = static_cast<uint64_t>(Root["completed"].Num);
  Out.Skipped = static_cast<uint64_t>(Root["skipped"].Num);
  Out.Finished = Root["finished"].B;
  std::string SnapError;
  if (!telemetry::snapshotFromJson(Root["registry"], Out.Registry,
                                   SnapError)) {
    Error = "registry: " + SnapError;
    return false;
  }
  return true;
}

bool CampaignEngine::mergeShards(const std::vector<ShardResult> &Shards,
                                 ShardResult &Out, std::string &Error) {
  if (Shards.empty()) {
    Error = "no shard results to merge";
    return false;
  }
  std::vector<bool> Seen(Shards[0].NumShards, false);
  for (const ShardResult &S : Shards) {
    if (S.Seed != Shards[0].Seed || S.NumShards != Shards[0].NumShards) {
      Error = "shard results disagree on seed or shard count; they are "
              "not slices of one campaign";
      return false;
    }
    if (S.Shard >= S.NumShards) {
      Error = "shard index " + std::to_string(S.Shard) +
              " out of range for " + std::to_string(S.NumShards) + " shards";
      return false;
    }
    if (Seen[S.Shard]) {
      Error = "shard " + std::to_string(S.Shard) +
              " appears twice; merging it would double-count";
      return false;
    }
    Seen[S.Shard] = true;
  }

  // Counters and histograms are pure sums over disjoint injection sets,
  // so folding through a registry reproduces the unsharded run's
  // snapshot regardless of merge order (names keep the registry's
  // sorted ordering).
  telemetry::MetricsRegistry Merged;
  Out = ShardResult();
  Out.NumShards = Shards[0].NumShards;
  Out.Seed = Shards[0].Seed;
  Out.Finished = true;
  for (const ShardResult &S : Shards) {
    Merged.merge(S.Registry);
    Out.Completed += S.Completed;
    Out.Skipped += S.Skipped;
    Out.Finished = Out.Finished && S.Finished;
  }
  Out.Registry = Merged.snapshot();
  return true;
}

//===----------------------------------------------------------------------===//
// Engine
//===----------------------------------------------------------------------===//

CampaignEngine::CampaignEngine(const AsmProgram &Program, DbtConfig Config,
                               EngineConfig Engine)
    : Program(Program), Config(Config), Engine(std::move(Engine)) {
  if (this->Engine.NumShards < 1 ||
      this->Engine.ShardIndex >= this->Engine.NumShards)
    reportFatalErrorf("invalid shard spec %u/%u: the shard index must be "
                      "below the shard count",
                      this->Engine.ShardIndex, this->Engine.NumShards);
  if (this->Engine.CheckpointInterval < 1)
    reportFatalError("campaign checkpoint interval must be at least 1");
  if (this->Engine.StopHalfWidth > 0.0 && this->Engine.NumShards > 1 &&
      this->Engine.CoordinatorDir.empty())
    reportFatalError(
        "early stopping cannot be combined with sharding: a shard only "
        "sees its own slice of each cell, so its Wilson intervals say "
        "nothing about the campaign-wide SDC rate. Pass "
        "--campaign-coordinator=DIR so shards stop on merged cell "
        "counts, run the sharded campaign without a stop width, or run "
        "early stopping unsharded.");
}

std::string CampaignEngine::coordinatorBatchPath(const std::string &Dir,
                                                 unsigned Shard,
                                                 uint64_t Batch) {
  return Dir + "/shard_" + std::to_string(Shard) + ".batch_" +
         std::to_string(Batch) + ".json";
}

std::string CampaignEngine::coordinatorLivePath(const std::string &Dir,
                                                unsigned Shard) {
  return Dir + "/shard_" + std::to_string(Shard) + ".live.json";
}

EngineReport CampaignEngine::run() {
  FaultCampaign Campaign(Program, Config);
  Campaign.enablePropagation(Engine.TrackPropagation);
  if (!Campaign.prepare(Engine.MaxInsns))
    reportFatalError("campaign engine: golden run failed (program does not "
                     "load or halt within the instruction budget)");
  if (Engine.TrackPropagation && !Engine.GoldenTraceFile.empty()) {
    std::string Error;
    if (!Campaign.goldenTrace().save(Engine.GoldenTraceFile, &Error))
      reportFatalErrorf("campaign engine: %s", Error.c_str());
  }

  // Deterministic plan. Over-plan 4x: the surplus beyond the primary
  // schedule is the reserve pool early stopping reallocates from.
  std::vector<PlannedFault> Candidates =
      Campaign.plan(Engine.NumInjections * 4, Engine.Seed, Engine.Sites,
                    Engine.Model);
  std::vector<const PlannedFault *> Primary;
  std::array<std::vector<const PlannedFault *>, NumBranchErrorCategories>
      Reserve;
  for (const PlannedFault &Fault : Candidates) {
    if (Fault.Category == BranchErrorCategory::NoError)
      continue;
    if (Primary.size() < Engine.NumInjections)
      Primary.push_back(&Fault);
    else
      Reserve[static_cast<unsigned>(Fault.Category)].push_back(&Fault);
  }
  uint64_t PlanHash = hashPlan(Engine, Candidates);

  // Coordinated mode iterates the *global* schedule in lockstep with
  // its siblings; everything below here is the independent-shard path.
  if (!Engine.CoordinatorDir.empty())
    return runCoordinated(Campaign, Primary, Reserve, PlanHash);

  // This shard's deterministic slice of the primary schedule.
  std::vector<const PlannedFault *> ShardPlan;
  for (size_t I = Engine.ShardIndex; I < Primary.size();
       I += Engine.NumShards)
    ShardPlan.push_back(Primary[I]);

  // Cumulative state; a checkpoint restores it exactly.
  telemetry::MetricsRegistry Cumulative;
  uint64_t Cursor = 0;
  uint64_t Completed = 0;
  std::array<uint64_t, NumBranchErrorCategories> ReserveCursors{};
  bool Resumed = false;

  if (!Engine.CheckpointFile.empty()) {
    EngineCheckpoint Ckpt;
    std::string Error;
    switch (loadCheckpoint(Engine.CheckpointFile, Ckpt, Error)) {
    case LoadStatus::Missing:
      break;
    case LoadStatus::Corrupt:
      reportFatalErrorf("%s (delete the file to restart the campaign "
                        "from scratch)",
                        Error.c_str());
      break;
    case LoadStatus::Ok:
      if (Ckpt.PlanHash != PlanHash)
        reportFatalErrorf(
            "checkpoint '%s' belongs to a different campaign (plan hash "
            "%s, this campaign is %s); refusing to mix results",
            Engine.CheckpointFile.c_str(), toHex(Ckpt.PlanHash).c_str(),
            toHex(PlanHash).c_str());
      if (Ckpt.Shard != Engine.ShardIndex ||
          Ckpt.NumShards != Engine.NumShards)
        reportFatalErrorf("checkpoint '%s' was written by shard %u/%u, not "
                          "%u/%u",
                          Engine.CheckpointFile.c_str(), Ckpt.Shard,
                          Ckpt.NumShards, Engine.ShardIndex,
                          Engine.NumShards);
      if (Ckpt.Coordinated)
        reportFatalErrorf(
            "checkpoint '%s' was written by a coordinated run (its "
            "cursor counts global slots, not shard slots); pass "
            "--campaign-coordinator to continue it",
            Engine.CheckpointFile.c_str());
      if (Ckpt.Cursor > ShardPlan.size())
        reportFatalErrorf("checkpoint '%s' cursor %llu exceeds the plan "
                          "(%zu slots)",
                          Engine.CheckpointFile.c_str(),
                          static_cast<unsigned long long>(Ckpt.Cursor),
                          ShardPlan.size());
      Cumulative.merge(Ckpt.Registry);
      Cursor = Ckpt.Cursor;
      Completed = Ckpt.Completed;
      ReserveCursors = Ckpt.ReserveCursors;
      Resumed = true;
      break;
    }
  }

  const bool EarlyStop = Engine.StopHalfWidth > 0.0;
  std::array<CellState, NumBranchErrorCategories> Cells = computeCells(
      Cumulative.snapshot(), Engine.StopHalfWidth, Engine.StopZ);

  ThreadPool Pool(Engine.Jobs);
  std::vector<uint64_t> LatBounds = latencyBounds();
  std::vector<uint64_t> DistBounds = telemetry::propDistanceBounds();
  uint64_t Batches = 0;
  bool Finished = true;

  while (Cursor < ShardPlan.size()) {
    if (Engine.MaxBatches && Batches >= Engine.MaxBatches) {
      Finished = false;
      break;
    }
    ++Batches;

    // Build the batch serially: skip/reallocate decisions read only the
    // cumulative tallies frozen at the last batch boundary, so the
    // schedule is a pure function of checkpointed state.
    std::vector<const PlannedFault *> Batch;
    Batch.reserve(Engine.CheckpointInterval);
    for (uint64_t Slot = 0;
         Slot < Engine.CheckpointInterval && Cursor < ShardPlan.size();
         ++Slot, ++Cursor) {
      const PlannedFault *Fault = ShardPlan[Cursor];
      unsigned Cat = static_cast<unsigned>(Fault->Category);
      if (!EarlyStop || !Cells[Cat].Closed) {
        Batch.push_back(Fault);
        continue;
      }
      // The cell closed: record the skip (never silently) and hand the
      // slot to the loosest still-open cell with reserve left.
      Cumulative.counter(getSkipCounterName(Fault->Category)).inc();
      int Loosest = -1;
      for (unsigned C = 0; C < NumBranchErrorCategories; ++C) {
        auto CellCat = static_cast<BranchErrorCategory>(C);
        if (!isCellCategory(CellCat) || Cells[C].Closed ||
            ReserveCursors[C] >= Reserve[C].size())
          continue;
        if (Loosest < 0 || Cells[C].Interval.halfWidth() >
                               Cells[Loosest].Interval.halfWidth())
          Loosest = static_cast<int>(C);
      }
      if (Loosest >= 0) {
        const PlannedFault *Replacement =
            Reserve[Loosest][ReserveCursors[Loosest]++];
        Cumulative.counter(getReallocCounterName(Replacement->Category))
            .inc();
        Batch.push_back(Replacement);
      }
    }

    if (!Batch.empty()) {
      // Work-stealing dispatch: workers pull batch indices off the
      // pool's atomic cursor and write into their own slot; the tally
      // below replays the slots serially in batch order, so the
      // registry is byte-identical for any job count.
      std::vector<InjectionReport> Reports(Batch.size());
      Pool.parallelFor(Batch.size(), [&](uint64_t I) {
        Reports[I] = Campaign.injectDetailed(*Batch[I]);
      });
      for (size_t I = 0; I < Batch.size(); ++I) {
        const InjectionReport &Report = Reports[I];
        BranchErrorCategory Cat = Batch[I]->Category;
        Cumulative.counter(getOutcomeCounterName(Cat, Report.Result)).inc();
        Cumulative.counter("fault.injections").inc();
        if (Report.Fired &&
            (Report.Result == Outcome::DetectedSignature ||
             Report.Result == Outcome::DetectedHardware))
          Cumulative.histogram(getLatencyHistogramName(Cat), LatBounds)
              .observe(Report.LatencyInsns);
        tallyPropagation(Cumulative, Cat, Report, DistBounds);
      }
      Completed += Batch.size();
    }

    telemetry::RegistrySnapshot Boundary = Cumulative.snapshot();
    if (EarlyStop || !Engine.LiveExportFile.empty())
      Cells = computeCells(Boundary, Engine.StopHalfWidth, Engine.StopZ);

    // Deterministic inline live export: one publish per batch boundary,
    // sequence-numbered by batch so a resumed run continues the
    // sequence instead of restarting it.
    if (!Engine.LiveExportFile.empty())
      publishLiveFile(Engine.LiveExportFile, effectiveRunId(Engine),
                      (Cursor + Engine.CheckpointInterval - 1) /
                          Engine.CheckpointInterval,
                      Boundary,
                      makeHeartbeat(Engine, Cursor, ShardPlan.size(),
                                    Completed, Boundary, Cells, Cells));

    if (!Engine.CheckpointFile.empty()) {
      EngineCheckpoint Ckpt;
      Ckpt.Version = EngineCheckpointVersion;
      Ckpt.PlanHash = PlanHash;
      Ckpt.Shard = Engine.ShardIndex;
      Ckpt.NumShards = Engine.NumShards;
      Ckpt.Cursor = Cursor;
      Ckpt.Completed = Completed;
      Ckpt.ReserveCursors = ReserveCursors;
      Ckpt.Registry = Boundary;
      std::string Error;
      if (!writeCheckpoint(Engine.CheckpointFile, Ckpt, Error))
        reportFatalErrorf("campaign checkpoint failed: %s", Error.c_str());
      if (Engine.OnCheckpoint)
        Engine.OnCheckpoint(Completed);
    }
  }

  EngineReport Report;
  Report.Registry = Cumulative.snapshot();
  Report.Result = campaignResultFromSnapshot(Report.Registry);
  Report.Completed = Completed;
  Report.Planned = ShardPlan.size();
  Report.Finished = Finished;
  Report.Resumed = Resumed;
  Cells = computeCells(Report.Registry, Engine.StopHalfWidth, Engine.StopZ);
  for (unsigned C = 0; C < NumBranchErrorCategories; ++C) {
    auto Cat = static_cast<BranchErrorCategory>(C);
    if (!isCellCategory(Cat))
      continue;
    CellReport Cell;
    Cell.Category = Cat;
    Cell.Counts = Cells[C].Counts;
    Cell.Interval = Cells[C].Interval;
    Cell.Stopped = Cells[C].Closed;
    uint64_t Total = Cell.Counts.total();
    Cell.SdcRate = Total == 0 ? 0.0
                              : static_cast<double>(Cell.Counts.Sdc) /
                                    static_cast<double>(Total);
    Cell.Skipped = Report.Registry.counterOr(getSkipCounterName(Cat));
    Cell.Reallocated = Report.Registry.counterOr(getReallocCounterName(Cat));
    Report.Skipped += Cell.Skipped;
    Report.Cells.push_back(Cell);
  }
  return Report;
}

//===----------------------------------------------------------------------===//
// Coordinated (lockstep) shards
//===----------------------------------------------------------------------===//
//
// The coordinated protocol lifts the stop-x-shard refusal by making
// every shard take its stopping decisions on the *merged* campaign
// state, in lockstep over the global batch sequence:
//
//  1. All shards iterate the same global batches (CheckpointInterval
//     slots of the global primary schedule per batch).
//  2. Before constructing batch B > 0, a shard waits for every
//     sibling's batch B-1 snapshot in CoordinatorDir and merges those
//     registries with its own cumulative registry. By induction this
//     merged state equals the unsharded run's cumulative state at the
//     same boundary, so computeCells closes exactly the same cells.
//  3. Each shard then *replays the whole global batch construction* —
//     the skip decisions and the global reserve-cursor advancement are
//     pure functions of the (shared) merged boundary state — but
//     executes only the slots it owns (global slot index mod NumShards)
//     and bumps skip/realloc counters only for owned slots. Summed over
//     shards, every counter therefore matches the unsharded run, which
//     is what makes `cfed-stat merge` byte-identical to the unsharded
//     --campaign-stop-ci reference.
//  4. After the batch it publishes its snapshot (atomic tmp+rename)
//     BEFORE writing its checkpoint: a kill between the two re-executes
//     the batch on resume and republishes identical registry content,
//     so siblings never block on durably-completed work.
//
// A sibling can be at most one barrier ahead (it cannot pass barrier X
// without this shard's batch X-1 file), so deleting one's own batch
// files two generations back is safe and keeps the directory bounded.

EngineReport CampaignEngine::runCoordinated(
    FaultCampaign &Campaign,
    const std::vector<const PlannedFault *> &Primary,
    std::array<std::vector<const PlannedFault *>, NumBranchErrorCategories>
        &Reserve,
    uint64_t PlanHash) {
  const uint64_t Interval = Engine.CheckpointInterval;
  const bool EarlyStop = Engine.StopHalfWidth > 0.0;
  const std::string RunId = effectiveRunId(Engine);
  const std::string LivePath =
      Engine.LiveExportFile.empty()
          ? coordinatorLivePath(Engine.CoordinatorDir, Engine.ShardIndex)
          : Engine.LiveExportFile;

  // This shard's share of the global schedule (for the report; the
  // cursor below counts global slots).
  uint64_t OwnPlanned = 0;
  for (size_t I = Engine.ShardIndex; I < Primary.size();
       I += Engine.NumShards)
    ++OwnPlanned;

  telemetry::MetricsRegistry Cumulative;
  uint64_t Cursor = 0;
  uint64_t Completed = 0;
  std::array<uint64_t, NumBranchErrorCategories> ReserveCursors{};
  bool Resumed = false;

  if (!Engine.CheckpointFile.empty()) {
    EngineCheckpoint Ckpt;
    std::string Error;
    switch (loadCheckpoint(Engine.CheckpointFile, Ckpt, Error)) {
    case LoadStatus::Missing:
      break;
    case LoadStatus::Corrupt:
      reportFatalErrorf("%s (delete the file to restart the campaign "
                        "from scratch)",
                        Error.c_str());
      break;
    case LoadStatus::Ok:
      if (Ckpt.PlanHash != PlanHash)
        reportFatalErrorf(
            "checkpoint '%s' belongs to a different campaign (plan hash "
            "%s, this campaign is %s); refusing to mix results",
            Engine.CheckpointFile.c_str(), toHex(Ckpt.PlanHash).c_str(),
            toHex(PlanHash).c_str());
      if (Ckpt.Shard != Engine.ShardIndex ||
          Ckpt.NumShards != Engine.NumShards)
        reportFatalErrorf("checkpoint '%s' was written by shard %u/%u, not "
                          "%u/%u",
                          Engine.CheckpointFile.c_str(), Ckpt.Shard,
                          Ckpt.NumShards, Engine.ShardIndex,
                          Engine.NumShards);
      if (!Ckpt.Coordinated)
        reportFatalErrorf(
            "checkpoint '%s' was written without --campaign-coordinator "
            "(its cursor counts shard slots, not global slots); continue "
            "it uncoordinated or delete it",
            Engine.CheckpointFile.c_str());
      if (Ckpt.Cursor > Primary.size())
        reportFatalErrorf("checkpoint '%s' cursor %llu exceeds the plan "
                          "(%zu slots)",
                          Engine.CheckpointFile.c_str(),
                          static_cast<unsigned long long>(Ckpt.Cursor),
                          Primary.size());
      Cumulative.merge(Ckpt.Registry);
      Cursor = Ckpt.Cursor;
      Completed = Ckpt.Completed;
      ReserveCursors = Ckpt.ReserveCursors;
      Resumed = true;
      break;
    }
  }

  // Waits for sibling \p Shard's batch \p Batch snapshot. Snapshots are
  // written atomically, so an unparsable file is corruption, never an
  // in-progress write.
  auto AwaitSibling = [&](unsigned Shard,
                          uint64_t Batch) -> telemetry::LiveSnapshot {
    std::string Path =
        coordinatorBatchPath(Engine.CoordinatorDir, Shard, Batch);
    auto Deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(Engine.CoordinatorTimeoutMs);
    for (;;) {
      std::ifstream In(Path, std::ios::binary);
      if (In.is_open()) {
        std::stringstream Buffer;
        Buffer << In.rdbuf();
        std::string Text = Buffer.str();
        json::JsonValue Root;
        json::JsonParser Parser(Text);
        telemetry::LiveSnapshot Snap;
        std::string Error;
        if (!Parser.parse(Root) ||
            !telemetry::liveSnapshotFromJson(Root, Snap, Error))
          reportFatalErrorf(
              "campaign coordinator: snapshot '%s' is corrupt: %s",
              Path.c_str(), Error.empty() ? "not valid JSON"
                                          : Error.c_str());
        if (!Snap.Beat.Present || Snap.Beat.Shard != Shard ||
            Snap.Beat.NumShards != Engine.NumShards)
          reportFatalErrorf(
              "campaign coordinator: snapshot '%s' was published by "
              "shard %u/%u, expected shard %u of %u",
              Path.c_str(), Snap.Beat.Shard, Snap.Beat.NumShards, Shard,
              Engine.NumShards);
        return Snap;
      }
      if (std::chrono::steady_clock::now() >= Deadline)
        reportFatalErrorf(
            "campaign coordinator: shard %u has not published batch %llu "
            "in '%s' within %llu ms; restart the missing shard (it "
            "resumes from its checkpoint) or raise the timeout",
            Shard, static_cast<unsigned long long>(Batch),
            Engine.CoordinatorDir.c_str(),
            static_cast<unsigned long long>(Engine.CoordinatorTimeoutMs));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };

  // Merged campaign state at the boundary before batch \p Batch.
  auto MergedBoundary = [&](uint64_t Batch) -> telemetry::RegistrySnapshot {
    telemetry::MetricsRegistry Merged;
    Merged.merge(Cumulative.snapshot());
    if (Batch > 0)
      for (unsigned J = 0; J < Engine.NumShards; ++J)
        if (J != Engine.ShardIndex)
          Merged.merge(AwaitSibling(J, Batch - 1).Registry);
    return Merged.snapshot();
  };

  ThreadPool Pool(Engine.Jobs);
  std::vector<uint64_t> LatBounds = latencyBounds();
  std::vector<uint64_t> DistBounds = telemetry::propDistanceBounds();
  uint64_t Batches = 0;
  bool Finished = true;

  while (Cursor < Primary.size()) {
    if (Engine.MaxBatches && Batches >= Engine.MaxBatches) {
      Finished = false;
      break;
    }
    ++Batches;
    uint64_t Batch = Cursor / Interval;

    // Stopping decisions for this batch read the merged boundary state
    // (the barrier). Without early stopping no decision depends on
    // siblings, so the shards run free.
    std::array<CellState, NumBranchErrorCategories> DecisionCells =
        computeCells(EarlyStop ? MergedBoundary(Batch)
                               : Cumulative.snapshot(),
                     Engine.StopHalfWidth, Engine.StopZ);

    // Replay the global batch construction; execute only owned slots.
    std::vector<const PlannedFault *> Mine;
    uint64_t BatchEnd =
        std::min<uint64_t>(Primary.size(), (Batch + 1) * Interval);
    for (; Cursor < BatchEnd; ++Cursor) {
      const PlannedFault *Fault = Primary[Cursor];
      bool Owned = Cursor % Engine.NumShards == Engine.ShardIndex;
      unsigned Cat = static_cast<unsigned>(Fault->Category);
      const PlannedFault *Chosen = nullptr;
      if (!EarlyStop || !DecisionCells[Cat].Closed) {
        Chosen = Fault;
      } else {
        if (Owned)
          Cumulative.counter(getSkipCounterName(Fault->Category)).inc();
        int Loosest = -1;
        for (unsigned C = 0; C < NumBranchErrorCategories; ++C) {
          auto CellCat = static_cast<BranchErrorCategory>(C);
          if (!isCellCategory(CellCat) || DecisionCells[C].Closed ||
              ReserveCursors[C] >= Reserve[C].size())
            continue;
          if (Loosest < 0 ||
              DecisionCells[C].Interval.halfWidth() >
                  DecisionCells[Loosest].Interval.halfWidth())
            Loosest = static_cast<int>(C);
        }
        if (Loosest >= 0) {
          const PlannedFault *Replacement =
              Reserve[Loosest][ReserveCursors[Loosest]++];
          if (Owned)
            Cumulative.counter(getReallocCounterName(Replacement->Category))
                .inc();
          Chosen = Replacement;
        }
      }
      if (Chosen && Owned)
        Mine.push_back(Chosen);
    }

    if (!Mine.empty()) {
      std::vector<InjectionReport> Reports(Mine.size());
      Pool.parallelFor(Mine.size(), [&](uint64_t I) {
        Reports[I] = Campaign.injectDetailed(*Mine[I]);
      });
      for (size_t I = 0; I < Mine.size(); ++I) {
        const InjectionReport &Report = Reports[I];
        BranchErrorCategory Cat = Mine[I]->Category;
        Cumulative.counter(getOutcomeCounterName(Cat, Report.Result)).inc();
        Cumulative.counter("fault.injections").inc();
        if (Report.Fired &&
            (Report.Result == Outcome::DetectedSignature ||
             Report.Result == Outcome::DetectedHardware))
          Cumulative.histogram(getLatencyHistogramName(Cat), LatBounds)
              .observe(Report.LatencyInsns);
        tallyPropagation(Cumulative, Cat, Report, DistBounds);
      }
      Completed += Mine.size();
    }

    // Publish before checkpointing (see the protocol comment above).
    telemetry::RegistrySnapshot Boundary = Cumulative.snapshot();
    std::array<CellState, NumBranchErrorCategories> OwnCells =
        computeCells(Boundary, Engine.StopHalfWidth, Engine.StopZ);
    telemetry::Heartbeat Beat =
        makeHeartbeat(Engine, Cursor, Primary.size(), Completed, Boundary,
                      OwnCells, DecisionCells);
    publishLiveFile(coordinatorBatchPath(Engine.CoordinatorDir,
                                         Engine.ShardIndex, Batch),
                    RunId, Batch + 1, Boundary, Beat);
    publishLiveFile(LivePath, RunId, Batch + 1, Boundary, Beat);
    if (Batch >= 2)
      std::remove(coordinatorBatchPath(Engine.CoordinatorDir,
                                       Engine.ShardIndex, Batch - 2)
                      .c_str());

    if (!Engine.CheckpointFile.empty()) {
      EngineCheckpoint Ckpt;
      Ckpt.Version = EngineCheckpointVersion;
      Ckpt.PlanHash = PlanHash;
      Ckpt.Shard = Engine.ShardIndex;
      Ckpt.NumShards = Engine.NumShards;
      Ckpt.Cursor = Cursor;
      Ckpt.Completed = Completed;
      Ckpt.Coordinated = true;
      Ckpt.ReserveCursors = ReserveCursors;
      Ckpt.Registry = Boundary;
      std::string Error;
      if (!writeCheckpoint(Engine.CheckpointFile, Ckpt, Error))
        reportFatalErrorf("campaign checkpoint failed: %s", Error.c_str());
      if (Engine.OnCheckpoint)
        Engine.OnCheckpoint(Completed);
    }
  }

  EngineReport Report;
  Report.Registry = Cumulative.snapshot();
  Report.Result = campaignResultFromSnapshot(Report.Registry);
  Report.Completed = Completed;
  Report.Planned = OwnPlanned;
  Report.Finished = Finished;
  Report.Resumed = Resumed;

  // Per-cell counts/intervals describe this shard's own slice, but
  // Stopped reports the *coordinated* decision: the closure set of the
  // merged state at the final boundary, identical on every shard and
  // equal to the unsharded run's. Every shard publishes its final batch
  // before waiting here, so the final barrier cannot deadlock.
  std::array<CellState, NumBranchErrorCategories> OwnCells =
      computeCells(Report.Registry, Engine.StopHalfWidth, Engine.StopZ);
  std::array<CellState, NumBranchErrorCategories> FinalCells = OwnCells;
  uint64_t NumBatches = (Primary.size() + Interval - 1) / Interval;
  if (EarlyStop && Finished && Engine.NumShards > 1 && NumBatches > 0) {
    telemetry::MetricsRegistry Merged;
    Merged.merge(Report.Registry);
    for (unsigned J = 0; J < Engine.NumShards; ++J)
      if (J != Engine.ShardIndex)
        Merged.merge(AwaitSibling(J, NumBatches - 1).Registry);
    FinalCells = computeCells(Merged.snapshot(), Engine.StopHalfWidth,
                              Engine.StopZ);
  }
  for (unsigned C = 0; C < NumBranchErrorCategories; ++C) {
    auto Cat = static_cast<BranchErrorCategory>(C);
    if (!isCellCategory(Cat))
      continue;
    CellReport Cell;
    Cell.Category = Cat;
    Cell.Counts = OwnCells[C].Counts;
    Cell.Interval = OwnCells[C].Interval;
    Cell.Stopped = FinalCells[C].Closed;
    uint64_t Total = Cell.Counts.total();
    Cell.SdcRate = Total == 0 ? 0.0
                              : static_cast<double>(Cell.Counts.Sdc) /
                                    static_cast<double>(Total);
    Cell.Skipped = Report.Registry.counterOr(getSkipCounterName(Cat));
    Cell.Reallocated = Report.Registry.counterOr(getReallocCounterName(Cat));
    Report.Skipped += Cell.Skipped;
    Report.Cells.push_back(Cell);
  }
  return Report;
}

//===----------------------------------------------------------------------===//
// Attack engine
//===----------------------------------------------------------------------===//

namespace {

/// Deterministic fingerprint of an attack plan and the knobs that shape
/// it, so an attack checkpoint can never continue into a different
/// campaign (or a fault campaign's — the kind string already separates
/// those).
uint64_t hashAttackPlan(const AttackEngineConfig &Engine,
                        const std::vector<PlannedAttack> &Candidates) {
  uint64_t Hash = 0xcbf29ce484222325ULL;
  Hash = fnv1a(Hash, Engine.NumAttacks);
  Hash = fnv1a(Hash, Engine.Seed);
  Hash = fnv1a(Hash, Engine.NumShards);
  for (const PlannedAttack &A : Candidates) {
    Hash = fnv1a(Hash, A.Instance);
    Hash = fnv1a(Hash, static_cast<uint64_t>(A.Family));
    Hash = fnv1a(Hash, A.SiteAddr);
    Hash = fnv1a(Hash, A.RealTarget);
    Hash = fnv1a(Hash, A.ForgedTarget);
    Hash = fnv1a(Hash, A.GadgetValid ? 1 : 0);
  }
  return Hash;
}

} // namespace

AttackEngine::AttackEngine(const AsmProgram &Program, DbtConfig Config,
                           AttackEngineConfig Engine)
    : Program(Program), Config(Config), Engine(std::move(Engine)) {
  if (this->Engine.NumShards < 1 ||
      this->Engine.ShardIndex >= this->Engine.NumShards)
    reportFatalErrorf("invalid shard spec %u/%u: the shard index must be "
                      "below the shard count",
                      this->Engine.ShardIndex, this->Engine.NumShards);
  if (this->Engine.CheckpointInterval < 1)
    reportFatalError("attack checkpoint interval must be at least 1");
}

std::string AttackEngine::resultToJson(const AttackEngineReport &Report,
                                       const AttackEngineConfig &Engine) {
  // Kind "cfed-campaign-result" on purpose: parseShardResult and
  // mergeShards treat attack shards exactly like fault shards (the
  // registries carry attack.* counters instead of fault.*).
  std::string Out = "{\"kind\":\"cfed-campaign-result\",\"version\":1";
  Out += ",\"shard\":" + std::to_string(Engine.ShardIndex);
  Out += ",\"num_shards\":" + std::to_string(Engine.NumShards);
  Out += ",\"seed\":" + std::to_string(Engine.Seed);
  Out += ",\"model\":\"attack\"";
  Out += ",\"completed\":" + std::to_string(Report.Completed);
  Out += ",\"skipped\":0,\"finished\":";
  Out += Report.Finished ? "true" : "false";
  Out += ",\"registry\":";
  Out += Report.Registry.toJson();
  Out += '}';
  return Out;
}

AttackEngineReport AttackEngine::run() {
  AttackCampaign Campaign(Program, Config);
  if (!Campaign.prepare(Engine.MaxInsns))
    reportFatalError("attack engine: golden run failed (program does not "
                     "load or halt within the instruction budget)");

  // Deterministic plan; over-plan 2x so gadget-search misses on tiny
  // programs do not starve the primary schedule.
  std::vector<PlannedAttack> Candidates =
      Campaign.plan(Engine.NumAttacks * 2, Engine.Seed);
  std::vector<const PlannedAttack *> Primary;
  for (const PlannedAttack &Attack : Candidates) {
    if (!Attack.ForgedTarget)
      continue;
    if (Primary.size() >= Engine.NumAttacks)
      break;
    Primary.push_back(&Attack);
  }
  uint64_t PlanHash = hashAttackPlan(Engine, Candidates);

  // This shard's deterministic slice of the primary schedule.
  std::vector<const PlannedAttack *> ShardPlan;
  for (size_t I = Engine.ShardIndex; I < Primary.size();
       I += Engine.NumShards)
    ShardPlan.push_back(Primary[I]);

  telemetry::MetricsRegistry Cumulative;
  uint64_t Cursor = 0;
  uint64_t Completed = 0;
  bool Resumed = false;

  if (!Engine.CheckpointFile.empty()) {
    EngineCheckpoint Ckpt;
    std::string Error;
    switch (loadCheckpoint(Engine.CheckpointFile, Ckpt, Error)) {
    case CampaignEngine::LoadStatus::Missing:
      break;
    case CampaignEngine::LoadStatus::Corrupt:
      reportFatalErrorf("%s (delete the file to restart the campaign "
                        "from scratch)",
                        Error.c_str());
      break;
    case CampaignEngine::LoadStatus::Ok:
      if (Ckpt.PlanHash != PlanHash)
        reportFatalErrorf(
            "checkpoint '%s' belongs to a different attack campaign; "
            "refusing to mix results",
            Engine.CheckpointFile.c_str());
      if (Ckpt.Shard != Engine.ShardIndex ||
          Ckpt.NumShards != Engine.NumShards)
        reportFatalErrorf("checkpoint '%s' was written by shard %u/%u, not "
                          "%u/%u",
                          Engine.CheckpointFile.c_str(), Ckpt.Shard,
                          Ckpt.NumShards, Engine.ShardIndex,
                          Engine.NumShards);
      if (Ckpt.Cursor > ShardPlan.size())
        reportFatalErrorf("checkpoint '%s' cursor %llu exceeds the plan "
                          "(%zu slots)",
                          Engine.CheckpointFile.c_str(),
                          static_cast<unsigned long long>(Ckpt.Cursor),
                          ShardPlan.size());
      Cumulative.merge(Ckpt.Registry);
      Cursor = Ckpt.Cursor;
      Completed = Ckpt.Completed;
      Resumed = true;
      break;
    }
  }

  ThreadPool Pool(Engine.Jobs);
  uint64_t Batches = 0;
  bool Finished = true;

  while (Cursor < ShardPlan.size()) {
    if (Engine.MaxBatches && Batches >= Engine.MaxBatches) {
      Finished = false;
      break;
    }
    ++Batches;

    size_t BatchBegin = Cursor;
    size_t BatchEnd = std::min<size_t>(
        Cursor + Engine.CheckpointInterval, ShardPlan.size());
    Cursor = BatchEnd;
    size_t BatchSize = BatchEnd - BatchBegin;

    // Work-stealing dispatch into position-indexed slots; the tally
    // below replays the slots serially in batch order, so the registry
    // is byte-identical for any job count.
    std::vector<AttackOutcome> Outcomes(BatchSize);
    Pool.parallelFor(BatchSize, [&](uint64_t I) {
      Outcomes[I] =
          Campaign.injectAttack(*ShardPlan[BatchBegin + I]).Result;
    });
    for (size_t I = 0; I < BatchSize; ++I) {
      const PlannedAttack &Attack = *ShardPlan[BatchBegin + I];
      Cumulative.counter(getAttackCounterName(Attack.Family, Outcomes[I]))
          .inc();
      Cumulative.counter("attack.attacks").inc();
      if (Attack.GadgetValid)
        Cumulative.counter("attack.gadget_valid").inc();
    }
    Completed += BatchSize;

    if (!Engine.CheckpointFile.empty()) {
      EngineCheckpoint Ckpt;
      Ckpt.Version = EngineCheckpointVersion;
      Ckpt.PlanHash = PlanHash;
      Ckpt.Shard = Engine.ShardIndex;
      Ckpt.NumShards = Engine.NumShards;
      Ckpt.Cursor = Cursor;
      Ckpt.Completed = Completed;
      Ckpt.Registry = Cumulative.snapshot();
      std::string Error;
      if (!writeCheckpoint(Engine.CheckpointFile, Ckpt, Error))
        reportFatalErrorf("attack checkpoint failed: %s", Error.c_str());
      if (Engine.OnCheckpoint)
        Engine.OnCheckpoint(Completed);
    }
  }

  AttackEngineReport Report;
  Report.Registry = Cumulative.snapshot();
  Report.Result = attackResultFromSnapshot(Report.Registry);
  Report.Completed = Completed;
  Report.Planned = ShardPlan.size();
  Report.Finished = Finished;
  Report.Resumed = Resumed;
  return Report;
}
