//===- Profile.cpp - Scoped phase profiling --------------------------------===//

#include "telemetry/Profile.h"

#include "telemetry/Metrics.h"

#include <string>

using namespace cfed;
using namespace cfed::telemetry;

const char *cfed::telemetry::getPhaseName(Phase P) {
  switch (P) {
  case Phase::Translate:
    return "translate";
  case Phase::Execute:
    return "execute";
  case Phase::Check:
    return "check";
  case Phase::Recover:
    return "recover";
  case Phase::Scrub:
    return "scrub";
  case Phase::Trace:
    return "trace";
  case Phase::Wall:
    return "wall";
  }
  return "?";
}

void PhaseProfiler::reset() {
  for (unsigned I = 0; I < NumPhases; ++I) {
    Accum[I].store(0, std::memory_order_relaxed);
    Calls[I].store(0, std::memory_order_relaxed);
  }
}

void PhaseProfiler::publishTo(MetricsRegistry &Registry) const {
  for (unsigned I = 0; I < NumPhases; ++I) {
    Phase P = static_cast<Phase>(I);
    if (callCount(P) == 0)
      continue;
    std::string Prefix = std::string("profile.") + getPhaseName(P);
    Registry.gauge(Prefix + ".ns").set(static_cast<double>(totalNs(P)));
    Registry.gauge(Prefix + ".calls").set(static_cast<double>(callCount(P)));
  }
}
