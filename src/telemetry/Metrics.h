//===- Metrics.h - Named counters, gauges, and histograms -------*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The process-wide metrics registry: every subsystem publishes its
/// counts through named instruments obtained from a MetricsRegistry
/// instead of keeping private ad-hoc fields. Instruments are created
/// lazily on first lookup, live for the registry's lifetime at a stable
/// address, and are cheap to bump (a relaxed atomic add). Snapshots are
/// plain value objects that can be diffed, merged, and rendered as
/// text, single-line JSON, or CSV.
///
//===----------------------------------------------------------------------===//

#ifndef CFED_TELEMETRY_METRICS_H
#define CFED_TELEMETRY_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cfed {
namespace json {
struct JsonValue;
} // namespace json
namespace telemetry {

/// A monotonically increasing event count. Thread-safe; bumping is a
/// single relaxed atomic add so it is safe on translation/dispatch
/// paths (but still too hot for per-instruction loops — see the
/// overhead policy in DESIGN.md §8).
class Counter {
public:
  void inc(uint64_t N = 1) { Value.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return Value.load(std::memory_order_relaxed); }
  void reset() { Value.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> Value{0};
};

/// A last-value-wins measurement (hit rates, published totals).
class Gauge {
public:
  void set(double V) { Value.store(V, std::memory_order_relaxed); }
  double value() const { return Value.load(std::memory_order_relaxed); }
  void reset() { Value.store(0.0, std::memory_order_relaxed); }

private:
  std::atomic<double> Value{0.0};
};

/// A fixed-bucket histogram: ascending inclusive upper bounds plus an
/// implicit overflow bucket. observe() is thread-safe.
class Histogram {
public:
  explicit Histogram(std::vector<uint64_t> UpperBounds);

  void observe(uint64_t Sample);
  /// Folds pre-aggregated bucket counts in (same shape as
  /// bucketCounts()); used when merging snapshots.
  void add(const std::vector<uint64_t> &OtherBuckets, uint64_t OtherCount,
           uint64_t OtherSum);
  /// Buckets.size() == bounds().size() + 1; the last is the overflow.
  std::vector<uint64_t> bucketCounts() const;
  const std::vector<uint64_t> &bounds() const { return Bounds; }
  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  void reset();

private:
  std::vector<uint64_t> Bounds;
  std::vector<std::atomic<uint64_t>> Buckets;
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
};

/// A point-in-time copy of a registry's instruments, sorted by name.
struct RegistrySnapshot {
  struct HistogramValue {
    std::vector<uint64_t> Bounds;
    std::vector<uint64_t> Buckets; ///< Bounds.size() + 1 entries.
    uint64_t Count = 0;
    uint64_t Sum = 0;

    /// Sum / Count; 0 when empty.
    double mean() const;
    /// Upper bound of the bucket containing the \p Q-quantile sample
    /// (Q in [0,1]); 0 when empty. When the sample falls in the
    /// open-ended overflow bucket this clamps to the largest bound —
    /// check quantileOverflows() (or use quantileText(), which renders
    /// ">=max") rather than trusting the clamped number: the actual
    /// sample may be arbitrarily larger.
    uint64_t quantile(double Q) const;
    /// True when the \p Q-quantile sample falls in the overflow bucket,
    /// i.e. quantile(Q) is a clamp, not a bound.
    bool quantileOverflows(double Q) const;
    /// Display form of quantile(Q): the bound in decimal, or ">=max"
    /// for the open-ended overflow bucket. The one renderer every
    /// text/JSON sink shares.
    std::string quantileText(double Q) const;

    bool operator==(const HistogramValue &) const = default;
  };

  std::vector<std::pair<std::string, uint64_t>> Counters;
  std::vector<std::pair<std::string, double>> Gauges;
  std::vector<std::pair<std::string, HistogramValue>> Histograms;

  /// Value of the named counter, or Default when absent.
  uint64_t counterOr(const std::string &Name, uint64_t Default = 0) const;
  /// Value of the named gauge, or Default when absent.
  double gaugeOr(const std::string &Name, double Default = 0.0) const;

  /// Single-line JSON object (BENCH_perf.json's merge parser is
  /// line-based, so snapshots must never span lines).
  std::string toJson() const;
  /// One "kind,name,value" row per instrument.
  std::string toCsv() const;
  /// Human-readable aligned listing.
  std::string toText() const;

  bool operator==(const RegistrySnapshot &) const = default;
};

/// Rebuilds a snapshot from the JSON shape toJson() emits (an object
/// with "counters"/"gauges"/"histograms" members). \p Json is the
/// parsed value; returns false (and sets \p Error) on a shape mismatch.
/// Lives next to toJson() so the two can never drift apart.
bool snapshotFromJson(const json::JsonValue &Json, RegistrySnapshot &Out,
                      std::string &Error);

/// Owns named instruments. Lookup is mutex-guarded and creates the
/// instrument on first use; the returned references stay valid for the
/// registry's lifetime, so callers cache them once and bump lock-free
/// afterwards.
class MetricsRegistry {
public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  /// The process-wide registry used by the CLI tools.
  static MetricsRegistry &global();

  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  /// Bounds are only used on first creation; later lookups with
  /// different bounds return the existing instrument unchanged.
  Histogram &histogram(const std::string &Name,
                       std::vector<uint64_t> UpperBounds);

  RegistrySnapshot snapshot() const;
  /// Zeroes every instrument (instruments stay registered).
  void reset();
  /// Folds a snapshot in: counters and histograms add, gauges take the
  /// incoming value. Used to merge per-run tallies into campaign-level
  /// cumulative metrics.
  void merge(const RegistrySnapshot &Delta);

private:
  mutable std::mutex Mutex;
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
};

} // namespace telemetry
} // namespace cfed

#endif // CFED_TELEMETRY_METRICS_H
