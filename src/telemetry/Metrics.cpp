//===- Metrics.cpp - Named counters, gauges, and histograms ----------------===//

#include "telemetry/Metrics.h"

#include "support/Diagnostics.h"
#include "support/Json.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

using namespace cfed;
using namespace cfed::telemetry;

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

Histogram::Histogram(std::vector<uint64_t> UpperBounds)
    : Bounds(std::move(UpperBounds)), Buckets(Bounds.size() + 1) {
  // Bucket edges are part of the instrument's identity: silently
  // repairing a bad configuration would make the caller's reading of
  // the bucket counts wrong. Reject it at registration instead.
  if (Bounds.empty())
    reportFatalError("histogram bucket bounds must not be empty");
  for (size_t I = 1; I < Bounds.size(); ++I)
    if (Bounds[I] <= Bounds[I - 1])
      reportFatalErrorf("histogram bucket bounds must be strictly "
                        "increasing: bound[%zu]=%llu does not exceed "
                        "bound[%zu]=%llu",
                        I, static_cast<unsigned long long>(Bounds[I]), I - 1,
                        static_cast<unsigned long long>(Bounds[I - 1]));
}

void Histogram::observe(uint64_t Sample) {
  size_t Index =
      std::lower_bound(Bounds.begin(), Bounds.end(), Sample) - Bounds.begin();
  Buckets[Index].fetch_add(1, std::memory_order_relaxed);
  Count.fetch_add(1, std::memory_order_relaxed);
  Sum.fetch_add(Sample, std::memory_order_relaxed);
}

void Histogram::add(const std::vector<uint64_t> &OtherBuckets,
                    uint64_t OtherCount, uint64_t OtherSum) {
  size_t N = std::min(OtherBuckets.size(), Buckets.size());
  for (size_t I = 0; I < N; ++I)
    Buckets[I].fetch_add(OtherBuckets[I], std::memory_order_relaxed);
  // Shape mismatch (different bounds): fold the tail into the overflow
  // bucket so Count stays consistent with the bucket total.
  for (size_t I = N; I < OtherBuckets.size(); ++I)
    Buckets.back().fetch_add(OtherBuckets[I], std::memory_order_relaxed);
  Count.fetch_add(OtherCount, std::memory_order_relaxed);
  Sum.fetch_add(OtherSum, std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::bucketCounts() const {
  std::vector<uint64_t> Out(Buckets.size());
  for (size_t I = 0; I < Buckets.size(); ++I)
    Out[I] = Buckets[I].load(std::memory_order_relaxed);
  return Out;
}

void Histogram::reset() {
  for (auto &B : Buckets)
    B.store(0, std::memory_order_relaxed);
  Count.store(0, std::memory_order_relaxed);
  Sum.store(0, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// RegistrySnapshot
//===----------------------------------------------------------------------===//

double RegistrySnapshot::HistogramValue::mean() const {
  if (Count == 0)
    return 0.0;
  return static_cast<double>(Sum) / static_cast<double>(Count);
}

namespace {

/// Index of the bucket holding the \p Q-quantile sample; Buckets.size()
/// when the histogram is empty.
size_t quantileBucket(const std::vector<uint64_t> &Buckets, uint64_t Count,
                      double Q) {
  if (Count == 0)
    return Buckets.size();
  Q = std::min(1.0, std::max(0.0, Q));
  // Rank of the wanted sample (1-based, ceil) within the cumulated
  // bucket counts.
  uint64_t Rank = static_cast<uint64_t>(
      std::ceil(Q * static_cast<double>(Count)));
  if (Rank == 0)
    Rank = 1;
  uint64_t Cumulative = 0;
  for (size_t I = 0; I < Buckets.size(); ++I) {
    Cumulative += Buckets[I];
    if (Cumulative >= Rank)
      return I;
  }
  return Buckets.size() - 1;
}

} // namespace

uint64_t RegistrySnapshot::HistogramValue::quantile(double Q) const {
  size_t I = quantileBucket(Buckets, Count, Q);
  if (I >= Buckets.size() || Bounds.empty())
    return 0;
  // The overflow bucket is open-ended: clamp to the largest finite
  // bound (the old "+ 1" both understated large samples and could wrap)
  // and let quantileOverflows()/quantileText() carry the ">=" signal.
  return I < Bounds.size() ? Bounds[I] : Bounds.back();
}

bool RegistrySnapshot::HistogramValue::quantileOverflows(double Q) const {
  size_t I = quantileBucket(Buckets, Count, Q);
  return I < Buckets.size() && I >= Bounds.size();
}

std::string RegistrySnapshot::HistogramValue::quantileText(double Q) const {
  if (quantileOverflows(Q))
    return ">=" + std::to_string(Bounds.empty() ? 0 : Bounds.back());
  return std::to_string(quantile(Q));
}

uint64_t RegistrySnapshot::counterOr(const std::string &Name,
                                     uint64_t Default) const {
  for (const auto &[N, V] : Counters)
    if (N == Name)
      return V;
  return Default;
}

double RegistrySnapshot::gaugeOr(const std::string &Name,
                                 double Default) const {
  for (const auto &[N, V] : Gauges)
    if (N == Name)
      return V;
  return Default;
}

namespace {

void appendJsonString(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += C;
    } else if (static_cast<unsigned char>(C) < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
      Out += Buf;
    } else {
      Out += C;
    }
  }
  Out += '"';
}

std::string formatDouble(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  return Buf;
}

} // namespace

std::string RegistrySnapshot::toJson() const {
  std::string Out = "{\"counters\":{";
  bool First = true;
  for (const auto &[Name, Value] : Counters) {
    if (!First)
      Out += ',';
    First = false;
    appendJsonString(Out, Name);
    Out += ':';
    Out += std::to_string(Value);
  }
  Out += "},\"gauges\":{";
  First = true;
  for (const auto &[Name, Value] : Gauges) {
    if (!First)
      Out += ',';
    First = false;
    appendJsonString(Out, Name);
    Out += ':';
    Out += formatDouble(Value);
  }
  Out += "},\"histograms\":{";
  First = true;
  for (const auto &[Name, H] : Histograms) {
    if (!First)
      Out += ',';
    First = false;
    appendJsonString(Out, Name);
    Out += ":{\"bounds\":[";
    for (size_t I = 0; I < H.Bounds.size(); ++I) {
      if (I)
        Out += ',';
      Out += std::to_string(H.Bounds[I]);
    }
    Out += "],\"buckets\":[";
    for (size_t I = 0; I < H.Buckets.size(); ++I) {
      if (I)
        Out += ',';
      Out += std::to_string(H.Buckets[I]);
    }
    Out += "],\"count\":";
    Out += std::to_string(H.Count);
    Out += ",\"sum\":";
    Out += std::to_string(H.Sum);
    Out += '}';
  }
  Out += "}}";
  return Out;
}

std::string RegistrySnapshot::toCsv() const {
  std::string Out = "kind,name,value\n";
  for (const auto &[Name, Value] : Counters)
    Out += "counter," + Name + ',' + std::to_string(Value) + '\n';
  for (const auto &[Name, Value] : Gauges)
    Out += "gauge," + Name + ',' + formatDouble(Value) + '\n';
  for (const auto &[Name, H] : Histograms)
    Out += "histogram," + Name + ',' + std::to_string(H.Count) + '\n';
  return Out;
}

std::string RegistrySnapshot::toText() const {
  size_t Width = 0;
  for (const auto &[Name, Value] : Counters)
    Width = std::max(Width, Name.size());
  for (const auto &[Name, Value] : Gauges)
    Width = std::max(Width, Name.size());
  for (const auto &[Name, H] : Histograms)
    Width = std::max(Width, Name.size());

  std::string Out;
  for (const auto &[Name, Value] : Counters) {
    Out += "  " + Name + std::string(Width - Name.size() + 2, ' ') +
           std::to_string(Value) + '\n';
  }
  for (const auto &[Name, Value] : Gauges) {
    Out += "  " + Name + std::string(Width - Name.size() + 2, ' ') +
           formatDouble(Value) + '\n';
  }
  for (const auto &[Name, H] : Histograms) {
    Out += "  " + Name + std::string(Width - Name.size() + 2, ' ') +
           "count=" + std::to_string(H.Count) +
           " sum=" + std::to_string(H.Sum) + '\n';
  }
  return Out;
}

bool telemetry::snapshotFromJson(const json::JsonValue &Json,
                                 RegistrySnapshot &Out, std::string &Error) {
  using json::JsonValue;
  if (Json.K != JsonValue::Object) {
    Error = "snapshot is not a JSON object";
    return false;
  }
  Out = RegistrySnapshot();

  const JsonValue &Counters = Json["counters"];
  if (Counters.K == JsonValue::Object) {
    for (const auto &[Name, V] : Counters.Fields) {
      if (V.K != JsonValue::Number) {
        Error = "counter '" + Name + "' is not a number";
        return false;
      }
      Out.Counters.emplace_back(Name, static_cast<uint64_t>(V.Num));
    }
  }

  const JsonValue &Gauges = Json["gauges"];
  if (Gauges.K == JsonValue::Object) {
    for (const auto &[Name, V] : Gauges.Fields) {
      if (V.K != JsonValue::Number) {
        Error = "gauge '" + Name + "' is not a number";
        return false;
      }
      Out.Gauges.emplace_back(Name, V.Num);
    }
  }

  const JsonValue &Histograms = Json["histograms"];
  if (Histograms.K == JsonValue::Object) {
    for (const auto &[Name, V] : Histograms.Fields) {
      const JsonValue &Bounds = V["bounds"];
      const JsonValue &Buckets = V["buckets"];
      if (V.K != JsonValue::Object || Bounds.K != JsonValue::Array ||
          Buckets.K != JsonValue::Array ||
          V["count"].K != JsonValue::Number ||
          V["sum"].K != JsonValue::Number) {
        Error = "histogram '" + Name + "' has a malformed shape";
        return false;
      }
      RegistrySnapshot::HistogramValue H;
      for (const JsonValue &B : Bounds.Items)
        H.Bounds.push_back(static_cast<uint64_t>(B.Num));
      for (const JsonValue &B : Buckets.Items)
        H.Buckets.push_back(static_cast<uint64_t>(B.Num));
      if (H.Buckets.size() != H.Bounds.size() + 1) {
        Error = "histogram '" + Name + "' bucket/bound size mismatch";
        return false;
      }
      H.Count = static_cast<uint64_t>(V["count"].Num);
      H.Sum = static_cast<uint64_t>(V["sum"].Num);
      Out.Histograms.emplace_back(Name, std::move(H));
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

MetricsRegistry &MetricsRegistry::global() {
  static MetricsRegistry Registry;
  return Registry;
}

Counter &MetricsRegistry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto &Slot = Counters[Name];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

Gauge &MetricsRegistry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto &Slot = Gauges[Name];
  if (!Slot)
    Slot = std::make_unique<Gauge>();
  return *Slot;
}

Histogram &MetricsRegistry::histogram(const std::string &Name,
                                      std::vector<uint64_t> UpperBounds) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto &Slot = Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<Histogram>(std::move(UpperBounds));
  return *Slot;
}

RegistrySnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  RegistrySnapshot Snap;
  Snap.Counters.reserve(Counters.size());
  for (const auto &[Name, C] : Counters)
    Snap.Counters.emplace_back(Name, C->value());
  Snap.Gauges.reserve(Gauges.size());
  for (const auto &[Name, G] : Gauges)
    Snap.Gauges.emplace_back(Name, G->value());
  Snap.Histograms.reserve(Histograms.size());
  for (const auto &[Name, H] : Histograms) {
    RegistrySnapshot::HistogramValue V;
    V.Bounds = H->bounds();
    V.Buckets = H->bucketCounts();
    V.Count = H->count();
    V.Sum = H->sum();
    Snap.Histograms.emplace_back(Name, std::move(V));
  }
  return Snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto &[Name, C] : Counters)
    C->reset();
  for (auto &[Name, G] : Gauges)
    G->reset();
  for (auto &[Name, H] : Histograms)
    H->reset();
}

void MetricsRegistry::merge(const RegistrySnapshot &Delta) {
  for (const auto &[Name, Value] : Delta.Counters)
    counter(Name).inc(Value);
  for (const auto &[Name, Value] : Delta.Gauges)
    gauge(Name).set(Value);
  for (const auto &[Name, V] : Delta.Histograms)
    histogram(Name, V.Bounds).add(V.Buckets, V.Count, V.Sum);
}
