//===- Provenance.h - Fault-propagation provenance layer --------*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Golden-run digest oracle and divergence tracing (DESIGN.md §14).
///
/// A DigestRecorder captures one compact architectural digest per
/// sub-block boundary — a word-folding FNV-1a over the guest registers,
/// FLAGS, FP registers, a store-address/value summary and a rolling
/// output summary — keyed by the retired guest instruction count. The
/// capture points are the *guest terminators*: the native interpreter
/// captures at the top of every transfer handler, and the translator
/// plants one Digest marker per sub-block after the guest body and
/// before the checker's exit updates, so interp, base-tier and opt-tier
/// runs produce byte-identical digest streams by construction (for the
/// flag-neutral techniques; see DESIGN.md §14 for the CFCSS/ECCA
/// caveat).
///
/// A reference run's records form a GoldenTrace oracle; replaying a
/// faulted run against it pinpoints the first architectural divergence
/// and tracks propagation up to detection, SDC or mask — the
/// per-injection PropagationReport.
///
/// Like the rest of the telemetry library this sits below vm/dbt in the
/// link order: the capture API takes raw register arrays, never a
/// CpuState.
///
//===----------------------------------------------------------------------===//

#ifndef CFED_TELEMETRY_PROVENANCE_H
#define CFED_TELEMETRY_PROVENANCE_H

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace cfed {
namespace telemetry {

/// Guest-visible register window folded into digests. Registers at and
/// above the reserved boundary belong to the monitor (signature state,
/// DBT scratch) and differ across tiers by design, so they are excluded.
inline constexpr unsigned NumDigestIntRegs = 16;
inline constexpr unsigned NumDigestFpRegs = 16;

/// One captured sub-block boundary.
struct DigestRecord {
  /// Retired guest instruction count at the terminator (0-based index of
  /// the terminating instruction in the dynamic stream).
  uint64_t Key = 0;
  /// Guest PC of the terminator.
  uint64_t TermPC = 0;
  /// State-only digest: regs, FLAGS, FP regs, store summary, output
  /// summary. Deliberately excludes Key/TermPC so that two runs whose
  /// architectural state reconverges compare equal here even when their
  /// paths (and so their keys) differ.
  uint64_t Local = 0;
  /// Chained digest: folds the previous record's chain with this
  /// record's Key, TermPC and Local. The first chain mismatch against
  /// the golden run is the first architectural divergence; once diverged
  /// the chain never re-matches.
  uint64_t Chain = 0;
  /// The sub-block carrying this boundary ran a signature check. This
  /// is capture-configuration metadata, not architectural state: the
  /// uninstrumented native reference records false everywhere, so only
  /// streams captured under the same technique agree on it (which the
  /// within-campaign oracle replay always does).
  bool Checked = false;

  /// Architectural content only — the tier-identity relation. Streams
  /// from the interpreter and from either DBT tier agree on these four
  /// fields for the flag-neutral techniques regardless of where checks
  /// are placed.
  bool sameArch(const DigestRecord &O) const {
    return Key == O.Key && TermPC == O.TermPC && Local == O.Local &&
           Chain == O.Chain;
  }

  bool operator==(const DigestRecord &O) const {
    return sameArch(O) && Checked == O.Checked;
  }
};

/// Captures the digest stream of one run.
///
/// Two capture modes, matching the two execution engines:
///  * Interp — the native interpreter calls onTransfer() at the top of
///    every transfer handler.
///  * Marker — the translator registered one marker slot per sub-block
///    (defineMarker) and planted a Digest instruction carrying the slot;
///    the interpreter's Digest handler calls onMarker().
///
/// The marker table is append-only and survives cache flushes and
/// retranslation (stale cache code is never re-entered, and live code
/// always carries valid slots) — the same lifetime contract as
/// BlockProfile's slot table.
class DigestRecorder {
public:
  enum class Mode : uint8_t { Interp, Marker };

  static constexpr uint64_t FnvOffset = 0xcbf29ce484222325ULL;
  static constexpr uint64_t FnvPrime = 0x100000001b3ULL;

  /// One multiply per folded word; the byte-at-a-time FNV would put the
  /// capture cost well past the digest_overhead gate.
  static uint64_t foldWord(uint64_t H, uint64_t V) {
    return (H ^ V) * FnvPrime;
  }

  /// Rotate left (N in 1..63). Pre-mixing word groups with distinct
  /// rotations before one shared fold keeps the multiply count per
  /// capture independent of the window size.
  static uint64_t rotl(uint64_t V, unsigned N) {
    return V << N | V >> (64 - N);
  }

  /// Swaps the 32-bit halves.
  static uint64_t rotHalf(uint64_t V) { return rotl(V, 32); }

  /// Scalar reference for the 16-word window mix: XOR of every word
  /// rotated by a distinct odd amount (1,9,..,57 for the low half,
  /// 5,13,..,61 for the high), so permuted or swapped operands still
  /// change the result. This is the digest definition; mixWindow is
  /// the dispatched implementation and must compute the same function
  /// bit for bit (DigestSimdMatchesScalar pins that).
  static uint64_t mixWindowScalar(const uint64_t *W) {
    uint64_t X = 0;
    for (unsigned I = 0; I < 8; ++I)
      X ^= rotl(W[I], 8 * I + 1);
    for (unsigned I = 0; I < 8; ++I)
      X ^= rotl(W[8 + I], 8 * I + 5);
    return X;
  }

  /// The window mix the capture path uses: the scalar reference above,
  /// or an AVX-512 variant (two rotate-and-XOR vector ops plus a
  /// horizontal reduce) picked once at startup when the host supports
  /// it. Out of line (Provenance.cpp) with the rest of the capture
  /// body.
  static uint64_t mixWindow(const uint64_t *W);

  void setMode(Mode M) { CaptureMode = M; }
  Mode mode() const { return CaptureMode; }
  /// True when the native interpreter's transfer handlers should
  /// capture (Marker mode leaves capture to the planted Digest insns).
  bool interpMode() const { return CaptureMode == Mode::Interp; }

  /// Registers a sub-block marker at translate time. \p Delta is the
  /// number of guest body instructions preceding the terminator;
  /// \p Capture is false for seams with no terminator (fell into a
  /// leader or the block-size cap), which only advance the key.
  uint32_t defineMarker(uint32_t Delta, uint64_t TermPC, bool Capture,
                        bool Checked) {
    Markers.push_back(MarkerInfo{TermPC, Delta, Capture, Checked});
    return static_cast<uint32_t>(Markers.size() - 1);
  }
  size_t markerCount() const { return Markers.size(); }

  /// Interp-mode capture at a native transfer. \p Key is the 0-based
  /// dynamic index of the transfer instruction itself.
  void onTransfer(uint64_t Key, uint64_t TermPC, const uint64_t *Regs,
                  const double *FpRegs, unsigned FlagBits) {
    captureRecord(Key, TermPC, /*Checked=*/false, Regs, FpRegs, FlagBits);
  }

  /// Marker-mode capture from a planted Digest instruction. Out of
  /// line (Provenance.cpp) together with captureRecord: the interpreter
  /// pays one call per marker and keeps the capture body out of its
  /// dispatch loop's code footprint.
  void onMarker(uint32_t Slot, const uint64_t *Regs, const double *FpRegs,
                unsigned FlagBits);

  /// Folds one successful guest store into the summary accumulator.
  /// Single fold: stores are the most frequent capture event, and their
  /// cost is part of the gated digest_overhead budget.
  void noteStore(uint64_t Addr, uint64_t Value) {
    StoreAcc = foldWord(StoreAcc, Addr ^ rotHalf(Value));
    ++StoreCount;
  }

  /// Marks the FP register file live for the rest of the run. The
  /// interpreter core calls this from every FP-register-writing handler
  /// (all tiers execute guest FP writes through that core, so the flag's
  /// history — and with it the digest stream — stays tier-identical),
  /// letting captureRecord skip the 16 FP folds for the integer-only
  /// majority of boundaries.
  void noteFpWrite() { FpActive = 1; }

  /// Folds bytes appended to the program output into the rolling output
  /// summary (byte-at-a-time, matching hashOutput; output is rare).
  void noteOutput(const char *Data, size_t Len) {
    uint64_t H = OutAcc;
    for (size_t I = 0; I < Len; ++I) {
      H ^= static_cast<uint8_t>(Data[I]);
      H *= FnvPrime;
    }
    OutAcc = H;
    OutLen += Len;
  }

  /// Clears the per-run capture state (records, key counter, summary
  /// accumulators) while keeping the marker table.
  void resetRun() {
    Records.clear();
    Staged.clear();
    GuestRetired = 0;
    PrevChain = FnvOffset;
    StoreAcc = FnvOffset;
    StoreCount = 0;
    OutAcc = FnvOffset;
    OutLen = 0;
    FpActive = 0;
  }

  /// Materializes and returns the run's records. The Chain digests are
  /// folded here, not in the hot capture path: the chain is a strictly
  /// sequential multiply fold, so deferring it takes that multiply (and
  /// the PrevChain read-modify-write) off every capture and pays one
  /// linear pass at analysis time instead — where the stream is about
  /// to be walked anyway (oracle replay, trace save).
  const std::vector<DigestRecord> &records() {
    materialize();
    return Records;
  }
  std::vector<DigestRecord> takeRecords() {
    materialize();
    return std::move(Records);
  }
  uint64_t guestRetired() const { return GuestRetired; }

private:
  struct MarkerInfo {
    uint64_t TermPC = 0;
    uint32_t Delta = 0;
    bool Capture = true;
    bool Checked = false;
  };

  /// What the hot capture path writes: only the fields that cannot be
  /// reconstructed afterwards. Size matters more than shape here — a
  /// million-instruction run stages ~50k boundaries, and at 24 bytes
  /// (versus the 40-byte DigestRecord) the staging stream stays inside
  /// the cache instead of evicting the interpreter's working set, a
  /// measured slice of the digest_overhead gate. Checked rides in the
  /// key's top bit; keys are retired-instruction counts, nowhere near
  /// 2^63, and the public DigestRecord keeps the honest separate field.
  struct StagedRecord {
    uint64_t KeyAndChecked = 0;
    uint64_t TermPC = 0;
    uint64_t Local = 0;
  };
  static constexpr uint64_t StagedCheckedBit = uint64_t(1) << 63;

  /// Out of line (Provenance.cpp): the capture body is large enough
  /// that inlining it into the interpreter's dispatch loop costs more
  /// in code footprint than the call costs in overhead.
  void captureRecord(uint64_t Key, uint64_t TermPC, bool Checked,
                     const uint64_t *Regs, const double *FpRegs,
                     unsigned FlagBits);

  /// Folds the chain over the staged records and appends them to
  /// Records (Provenance.cpp). Idempotent between captures; incremental
  /// calls continue the chain where the last one stopped.
  void materialize();

  Mode CaptureMode = Mode::Interp;
  std::vector<MarkerInfo> Markers;
  std::vector<DigestRecord> Records;
  std::vector<StagedRecord> Staged;
  uint64_t GuestRetired = 0;
  uint64_t PrevChain = FnvOffset;
  uint64_t StoreAcc = FnvOffset;
  uint64_t StoreCount = 0;
  uint64_t OutAcc = FnvOffset;
  uint64_t OutLen = 0;
  uint64_t FpActive = 0;
};

/// A reference run's digest stream plus identifying fingerprints,
/// serializable as the --golden-trace oracle file.
struct GoldenTrace {
  /// FNV over the guest program image (caller-computed; 0 = unknown).
  uint64_t ProgramFp = 0;
  /// FNV over the digest-relevant configuration (caller-computed).
  uint64_t ConfigFp = 0;
  std::vector<DigestRecord> Records;

  /// Binary serialization ("CFEDGT01" magic). Returns false and fills
  /// \p Error on failure.
  bool save(const std::string &Path, std::string *Error = nullptr) const;
  bool load(const std::string &Path, std::string *Error = nullptr);
};

/// How a faulted run ended, from the oracle's point of view. The fault
/// layer maps its Outcome enum down to this before analysis so the
/// telemetry library stays below it in the link order.
enum class PropOutcome : uint8_t { Detected, Sdc, Masked, Timeout };

/// The divergence→outcome funnel cell an injection lands in.
enum class PropClass : uint8_t {
  None, ///< Propagation tracking was not enabled for this injection.
  DetectedClean,           ///< Detected with no architectural divergence.
  DetectedAfterDivergence, ///< State diverged first, then a check fired.
  SdcExplained,            ///< SDC with a concrete first-divergence point.
  SdcUnexplained,          ///< SDC the oracle could not localize (bug trap).
  MaskedClean,             ///< Truly masked: no divergence at all.
  MaskedConverged,         ///< Diverged, but final state reconverged.
  MaskedLatent,            ///< Output matched; state still corrupt at exit.
  TimeoutClean,            ///< Timed out without diverging.
  TimeoutAfterDivergence,  ///< Diverged, then hung past the budget.
};

inline constexpr unsigned NumPropClasses = 10;

/// Short stable name ("detected-clean", "sdc-explained", ...).
const char *getPropClassName(PropClass C);

/// All classes except None, in funnel order — the iteration set for
/// aggregation and rendering.
extern const PropClass AllPropClasses[NumPropClasses - 1];

/// Per-injection propagation provenance.
struct PropagationReport {
  bool Enabled = false;
  bool Diverged = false;
  /// Index of the first mismatching record in the digest stream.
  uint64_t DivergenceOrdinal = 0;
  /// Guest instruction count at the first divergence.
  uint64_t DivergenceKey = 0;
  /// Guest PC of the sub-block terminator where state first diverged.
  uint64_t DivergencePC = 0;
  /// Distinct sub-blocks touched between divergence and the end.
  uint64_t TaintedBlocks = 0;
  /// Signature checks crossed between divergence and the end.
  uint64_t ChecksCrossed = 0;
  /// Guest instructions between divergence and the last boundary.
  uint64_t InsnsCrossed = 0;
  PropClass Class = PropClass::None;
};

/// Replays \p Faulted against the \p Golden oracle: finds the first
/// chain divergence, measures the propagation tail, and classifies the
/// injection into the funnel given how the run ended.
PropagationReport analyzePropagation(const std::vector<DigestRecord> &Golden,
                                     const std::vector<DigestRecord> &Faulted,
                                     PropOutcome HowItEnded);

/// Counter name "prop.cat_<cat>.<class>" — per-category funnel tallies.
std::string getPropCounterName(const char *CategoryName, PropClass C);

/// Histogram name "prop.distance.cat_<cat>" — divergence-to-detection
/// distance in guest instructions.
std::string getPropDistanceHistogramName(const char *CategoryName);

/// Bounds shared by every prop.distance.* histogram (powers of two,
/// 1 .. 2^20 guest instructions — mirroring the detection-latency
/// histograms so the two distributions line up bucket for bucket).
std::vector<uint64_t> propDistanceBounds();

} // namespace telemetry
} // namespace cfed

#endif // CFED_TELEMETRY_PROVENANCE_H
