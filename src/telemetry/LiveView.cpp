//===- LiveView.cpp - Merge and render live snapshots ----------------------===//

#include "telemetry/LiveView.h"

#include "support/Format.h"
#include "support/Stats.h"

#include <algorithm>
#include <map>

using namespace cfed;
using namespace cfed::telemetry;

double telemetry::counterRatePerSec(const ShardSample &S,
                                    const std::string &Name) {
  if (!S.HavePrev)
    return -1.0;
  // A sequence that did not advance means the file was re-read between
  // publishes; one that went backwards means the publisher restarted.
  // Either way the delta is meaningless.
  if (S.Snap.Seq <= S.Prev.Seq || S.Snap.WallMs <= S.Prev.WallMs)
    return -1.0;
  uint64_t Cur = S.Snap.Registry.counterOr(Name);
  uint64_t Old = S.Prev.Registry.counterOr(Name);
  if (Cur < Old)
    return -1.0;
  double Seconds =
      static_cast<double>(S.Snap.WallMs - S.Prev.WallMs) / 1000.0;
  return static_cast<double>(Cur - Old) / Seconds;
}

RegistrySnapshot
telemetry::mergeSamples(const std::vector<ShardSample> &Samples) {
  MetricsRegistry Merged;
  for (const ShardSample &S : Samples)
    Merged.merge(S.Snap.Registry);
  return Merged.snapshot();
}

namespace {

/// Sum of per-shard rates for \p Name; negative when no shard has a
/// valid delta yet.
double mergedRatePerSec(const std::vector<ShardSample> &Samples,
                        const std::string &Name) {
  double Total = 0.0;
  bool Any = false;
  for (const ShardSample &S : Samples) {
    double R = counterRatePerSec(S, Name);
    if (R >= 0.0) {
      Total += R;
      Any = true;
    }
  }
  return Any ? Total : -1.0;
}

std::string formatAge(double Seconds) {
  if (Seconds < 0)
    return "-";
  if (Seconds < 120.0)
    return formatString("%.1fs", Seconds);
  return formatString("%.1fm", Seconds / 60.0);
}

std::string formatRate(double Rate) {
  if (Rate < 0.0)
    return "-";
  if (Rate >= 1000.0)
    return formatString("%.0f/s", Rate);
  return formatString("%.1f/s", Rate);
}

struct MergedCell {
  uint64_t Total = 0;
  uint64_t Sdc = 0;
  bool Closed = true;
  bool Any = false;
};

} // namespace

std::string telemetry::renderLiveView(const std::vector<ShardSample> &Samples,
                                      const LiveViewOptions &Opts) {
  uint64_t NowMs = Opts.NowMs;
  if (NowMs == 0)
    for (const ShardSample &S : Samples)
      NowMs = std::max(NowMs, S.Snap.WallMs);

  std::string Out =
      formatString("cfed live view — %zu shard(s)\n", Samples.size());

  // --- Per-shard status --------------------------------------------------
  size_t LabelW = 5;
  for (const ShardSample &S : Samples)
    LabelW = std::max(LabelW, S.Label.size());
  Out += formatString("  %-*s %-14s %7s %6s %8s %9s %-8s %s\n",
                      static_cast<int>(LabelW), "shard", "run-id", "pid",
                      "seq", "age", "progress", "state", "rung");
  size_t Stalled = 0;
  for (const ShardSample &S : Samples) {
    double AgeSec =
        NowMs >= S.Snap.WallMs
            ? static_cast<double>(NowMs - S.Snap.WallMs) / 1000.0
            : 0.0;
    const Heartbeat &Beat = S.Snap.Beat;
    bool Done = Beat.Present && Beat.Cursor >= Beat.Planned;
    bool IsStalled = !Done && AgeSec > Opts.StallAfterSec;
    if (IsStalled)
      ++Stalled;
    std::string Progress =
        Beat.Present ? formatString("%llu/%llu",
                                    static_cast<unsigned long long>(
                                        Beat.Cursor),
                                    static_cast<unsigned long long>(
                                        Beat.Planned))
                     : "-";
    const char *State = Done ? "done" : (IsStalled ? "STALLED" : "ok");
    std::string Rung = Beat.Present
                           ? Beat.Rung
                           : recoveryRungFromSnapshot(S.Snap.Registry);
    Out += formatString("  %-*s %-14s %7llu %6llu %8s %9s %-8s %s\n",
                        static_cast<int>(LabelW), S.Label.c_str(),
                        S.Snap.RunId.c_str(),
                        static_cast<unsigned long long>(S.Snap.Pid),
                        static_cast<unsigned long long>(S.Snap.Seq),
                        formatAge(AgeSec).c_str(), Progress.c_str(), State,
                        Rung.c_str());
  }
  if (Stalled)
    Out += formatString("  ** %zu shard(s) STALLED (heartbeat older than "
                        "%.0fs) **\n",
                        Stalled, Opts.StallAfterSec);

  RegistrySnapshot Merged = mergeSamples(Samples);

  // --- Merged counters with rates ----------------------------------------
  std::vector<std::pair<std::string, uint64_t>> Top = Merged.Counters;
  std::stable_sort(Top.begin(), Top.end(),
                   [](const auto &A, const auto &B) {
                     return A.second > B.second;
                   });
  if (Top.size() > Opts.TopCounters)
    Top.resize(Opts.TopCounters);
  if (!Top.empty()) {
    size_t NameW = 7;
    for (const auto &[Name, Value] : Top)
      NameW = std::max(NameW, Name.size());
    Out += "  merged counters:\n";
    for (const auto &[Name, Value] : Top)
      Out += formatString("    %-*s %12llu %12s\n",
                          static_cast<int>(NameW), Name.c_str(),
                          static_cast<unsigned long long>(Value),
                          formatRate(mergedRatePerSec(Samples, Name))
                              .c_str());
  }
  uint64_t Hits = Merged.counterOr("dbt.ibtc_hits");
  uint64_t Misses = Merged.counterOr("dbt.ibtc_misses");
  if (Hits + Misses)
    Out += formatString("  ibtc_hit_rate (merged): %.4f\n",
                        static_cast<double>(Hits) /
                            static_cast<double>(Hits + Misses));
  uint64_t Dropped = Merged.counterOr("trace.dropped");
  if (Dropped)
    Out += formatString("  warning: %llu trace event(s) dropped across "
                        "shards\n",
                        static_cast<unsigned long long>(Dropped));

  // --- Merged campaign cells ---------------------------------------------
  // Heartbeat cells carry the counts the publishing shard based its last
  // stopping decision on; summing them across shards and recomputing the
  // Wilson interval reproduces the coordinator's merged view.
  std::map<std::string, MergedCell> Cells;
  for (const ShardSample &S : Samples)
    for (const HeartbeatCell &C : S.Snap.Beat.Cells) {
      MergedCell &M = Cells[C.Name];
      M.Total += C.Total;
      M.Sdc += C.Sdc;
      // Coordinated shards agree on closure; for uncoordinated shards
      // the conservative reading is "closed only if every shard closed".
      M.Closed = (M.Any ? M.Closed : true) && C.Closed;
      M.Any = true;
    }
  if (!Cells.empty()) {
    Out += "  cells (merged, z=1.96):\n";
    Out += formatString("    %-5s %8s %8s %8s %19s %8s %s\n", "cell", "inj",
                        "sdc", "rate", "ci95", "half", "state");
    for (const auto &[Name, M] : Cells) {
      WilsonInterval CI = wilsonInterval(M.Sdc, M.Total, 1.96);
      double Rate = M.Total ? static_cast<double>(M.Sdc) /
                                  static_cast<double>(M.Total)
                            : 0.0;
      Out += formatString("    %-5s %8llu %8llu %8.4f [%7.4f, %7.4f] %8.4f "
                          "%s\n",
                          Name.c_str(),
                          static_cast<unsigned long long>(M.Total),
                          static_cast<unsigned long long>(M.Sdc), Rate,
                          CI.Low, CI.High, CI.halfWidth(),
                          M.Closed ? "closed" : "open");
    }
  }

  // --- Merged detection-latency quantiles --------------------------------
  bool Header = false;
  for (const auto &[Name, H] : Merged.Histograms) {
    if (Name.rfind("fault.latency.", 0) != 0 || H.Count == 0)
      continue;
    if (!Header) {
      Out += "  detection latency (merged, insns):\n";
      Out += formatString("    %-22s %8s %10s %8s %8s %8s\n", "histogram",
                          "count", "mean", "p50", "p90", "p99");
      Header = true;
    }
    Out += formatString("    %-22s %8llu %10.1f %8s %8s %8s\n", Name.c_str(),
                        static_cast<unsigned long long>(H.Count), H.mean(),
                        H.quantileText(0.5).c_str(),
                        H.quantileText(0.9).c_str(),
                        H.quantileText(0.99).c_str());
  }
  return Out;
}
