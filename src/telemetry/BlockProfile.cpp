//===- BlockProfile.cpp - Per-block execution attribution -----------------------===//

#include "telemetry/BlockProfile.h"

#include "support/Format.h"
#include "support/Table.h"
#include "telemetry/Metrics.h"

#include <algorithm>

using namespace cfed;
using namespace cfed::telemetry;

uint32_t BlockProfile::allocSlot() {
  if (NumSlots % ChunkSize == 0)
    Chunks.push_back(std::make_unique<Chunk>());
  return NumSlots++;
}

uint32_t BlockProfile::blockSlot(uint64_t GuestAddr) {
  auto [It, Inserted] = Blocks.try_emplace(GuestAddr);
  if (Inserted)
    It->second.Slot = allocSlot();
  return It->second.Slot;
}

uint32_t BlockProfile::edgeSlot(uint64_t From, uint64_t To) {
  auto [It, Inserted] = EdgeSlots.try_emplace({From, To});
  if (Inserted)
    It->second = allocSlot();
  return It->second;
}

void BlockProfile::noteBlock(uint64_t GuestAddr, uint64_t GuestEnd,
                             uint64_t GuestInsns, uint64_t InstrBytes,
                             uint64_t CacheBytes) {
  auto [It, Inserted] = Blocks.try_emplace(GuestAddr);
  BlockInfo &Info = It->second;
  if (Inserted)
    Info.Slot = allocSlot();
  Info.GuestEnd = GuestEnd;
  Info.GuestInsns = GuestInsns;
  Info.InstrBytes = InstrBytes;
  Info.CacheBytes = CacheBytes;
}

uint64_t BlockProfile::slotCount(uint32_t Slot) const {
  if (Slot >= NumSlots)
    return 0;
  return Chunks[Slot / ChunkSize]->Counts[Slot % ChunkSize];
}

uint64_t BlockProfile::execCount(uint64_t GuestAddr) const {
  auto It = Blocks.find(GuestAddr);
  return It == Blocks.end() ? 0 : slotCount(It->second.Slot);
}

uint64_t BlockProfile::edgeCount(uint64_t From, uint64_t To) const {
  auto It = EdgeSlots.find({From, To});
  return It == EdgeSlots.end() ? 0 : slotCount(It->second);
}

bool BlockProfile::hasExecutions() const {
  for (const auto &[Addr, Info] : Blocks)
    if (slotCount(Info.Slot) > 0)
      return true;
  return false;
}

uint64_t BlockProfile::totalBlockExecs() const {
  uint64_t Total = 0;
  for (const auto &[Addr, Info] : Blocks)
    Total += slotCount(Info.Slot);
  return Total;
}

uint64_t BlockProfile::totalDynInsns() const {
  uint64_t Total = 0;
  for (const auto &[Addr, Info] : Blocks)
    Total += slotCount(Info.Slot) * Info.GuestInsns;
  return Total;
}

std::vector<BlockProfile::BlockStats>
BlockProfile::topBlocks(size_t N) const {
  std::vector<BlockStats> All;
  All.reserve(Blocks.size());
  for (const auto &[Addr, Info] : Blocks) {
    BlockStats S;
    S.GuestAddr = Addr;
    S.GuestEnd = Info.GuestEnd;
    S.Execs = slotCount(Info.Slot);
    S.GuestInsns = Info.GuestInsns;
    S.InstrBytes = Info.InstrBytes;
    S.CacheBytes = Info.CacheBytes;
    All.push_back(S);
  }
  std::sort(All.begin(), All.end(),
            [](const BlockStats &A, const BlockStats &B) {
              if (A.Execs != B.Execs)
                return A.Execs > B.Execs;
              return A.GuestAddr < B.GuestAddr;
            });
  if (All.size() > N)
    All.resize(N);
  return All;
}

std::vector<BlockProfile::EdgeStats> BlockProfile::topEdges(size_t N) const {
  std::vector<EdgeStats> All;
  All.reserve(EdgeSlots.size());
  for (const auto &[Key, Slot] : EdgeSlots)
    All.push_back({Key.first, Key.second, slotCount(Slot)});
  std::sort(All.begin(), All.end(),
            [](const EdgeStats &A, const EdgeStats &B) {
              if (A.Count != B.Count)
                return A.Count > B.Count;
              return std::tie(A.From, A.To) < std::tie(B.From, B.To);
            });
  if (All.size() > N)
    All.resize(N);
  return All;
}

std::string BlockProfile::renderReport(size_t TopN) const {
  uint64_t DynTotal = totalDynInsns();
  std::string Out = formatString(
      "hot blocks (top %zu of %zu):\n", std::min(TopN, Blocks.size()),
      Blocks.size());

  Table BlockTable;
  BlockTable.setHeader({"guest range", "execs", "insns", "dyn insns",
                        "%dyn", "instr bytes", "cache bytes"});
  for (const BlockStats &S : topBlocks(TopN)) {
    double Share =
        DynTotal ? 100.0 * double(S.dynInsns()) / double(DynTotal) : 0.0;
    BlockTable.addRow(
        {formatString("0x%llx..0x%llx",
                      static_cast<unsigned long long>(S.GuestAddr),
                      static_cast<unsigned long long>(S.GuestEnd)),
         std::to_string(S.Execs), std::to_string(S.GuestInsns),
         std::to_string(S.dynInsns()), formatString("%.2f%%", Share),
         std::to_string(S.InstrBytes), std::to_string(S.CacheBytes)});
  }
  Out += BlockTable.render();

  if (!EdgeSlots.empty()) {
    Out += formatString("hot edges (top %zu of %zu):\n",
                        std::min(TopN, EdgeSlots.size()), EdgeSlots.size());
    Table EdgeTable;
    EdgeTable.setHeader({"from", "to", "taken"});
    for (const EdgeStats &E : topEdges(TopN))
      EdgeTable.addRow(
          {formatString("0x%llx", static_cast<unsigned long long>(E.From)),
           formatString("0x%llx", static_cast<unsigned long long>(E.To)),
           std::to_string(E.Count)});
    Out += EdgeTable.render();
  }

  Out += formatString(
      "totals: %llu block executions across %zu blocks, %llu dynamic "
      "guest insns\n",
      static_cast<unsigned long long>(totalBlockExecs()), Blocks.size(),
      static_cast<unsigned long long>(DynTotal));
  return Out;
}

void BlockProfile::publishTo(MetricsRegistry &Registry) const {
  Registry.gauge("blockprofile.blocks")
      .set(static_cast<double>(Blocks.size()));
  Registry.gauge("blockprofile.edges")
      .set(static_cast<double>(EdgeSlots.size()));
  Registry.gauge("blockprofile.execs")
      .set(static_cast<double>(totalBlockExecs()));
  Registry.gauge("blockprofile.dyn_insns")
      .set(static_cast<double>(totalDynInsns()));
}

void BlockProfile::reset() {
  for (std::unique_ptr<Chunk> &C : Chunks)
    *C = Chunk{};
}
