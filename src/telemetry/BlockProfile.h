//===- BlockProfile.h - Per-block execution attribution ---------*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hot-spot attribution for translated guest code. The translator embeds
/// one Prof instruction (a counter bump) in each sub-block's prologue and
/// before each direct exit stub; the interpreter forwards the bump here.
/// That yields per-guest-block execution counts and taken-edge
/// frequencies that survive chaining (chained jumps land on the Prof at
/// the sub-block start), superblock fusion (every fused sub-block keeps
/// its own slot) and cache flushes (slots are keyed by guest address, not
/// cache address, so retranslation reuses them).
///
/// Counter storage is chunked: slot addresses never move once handed
/// out, so translated code can keep bumping across registrations of new
/// blocks. Off by default — a Dbt without an attached profile emits no
/// Prof instructions and the dispatch loop pays nothing.
///
//===----------------------------------------------------------------------===//

#ifndef CFED_TELEMETRY_BLOCKPROFILE_H
#define CFED_TELEMETRY_BLOCKPROFILE_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace cfed {
namespace telemetry {

class MetricsRegistry;

class BlockProfile {
public:
  /// Aggregated view of one profiled guest block.
  struct BlockStats {
    uint64_t GuestAddr = 0;
    /// Exclusive end of the guest range this sub-block covers.
    uint64_t GuestEnd = 0;
    uint64_t Execs = 0;
    uint64_t GuestInsns = 0;
    /// Bytes of checker-emitted instrumentation in the translation.
    uint64_t InstrBytes = 0;
    /// Total translated bytes attributed to this sub-block.
    uint64_t CacheBytes = 0;

    /// Dynamic guest instructions attributed to this block.
    uint64_t dynInsns() const { return Execs * GuestInsns; }
  };

  /// One profiled control-flow edge (direct transfers only; indirect
  /// targets are not statically enumerable at translation time).
  struct EdgeStats {
    uint64_t From = 0;
    uint64_t To = 0;
    uint64_t Count = 0;
  };

  BlockProfile() = default;
  BlockProfile(const BlockProfile &) = delete;
  BlockProfile &operator=(const BlockProfile &) = delete;

  /// Returns the counter slot for the block entered at \p GuestAddr,
  /// creating it on first use. Stable across retranslations.
  uint32_t blockSlot(uint64_t GuestAddr);

  /// Returns the counter slot for the direct edge \p From -> \p To.
  uint32_t edgeSlot(uint64_t From, uint64_t To);

  /// Records translation-time metadata for \p GuestAddr's block. Called
  /// on every (re)translation; the latest layout wins.
  void noteBlock(uint64_t GuestAddr, uint64_t GuestEnd, uint64_t GuestInsns,
                 uint64_t InstrBytes, uint64_t CacheBytes);

  /// The hot path: executed once per Prof instruction. Out-of-range
  /// slots (corrupted immediates) are ignored rather than trapped.
  void bump(uint32_t Slot) {
    if (Slot < NumSlots)
      ++Chunks[Slot / ChunkSize]->Counts[Slot % ChunkSize];
  }

  uint64_t slotCount(uint32_t Slot) const;
  /// Executions of the block entered at \p GuestAddr (0 if unknown).
  uint64_t execCount(uint64_t GuestAddr) const;
  /// Taken count of the direct edge \p From -> \p To (0 if unknown).
  uint64_t edgeCount(uint64_t From, uint64_t To) const;

  /// True once any profiled block has executed. Until then hotness is
  /// unknowable and consumers should fall back to their unprofiled
  /// behavior.
  bool hasExecutions() const;

  /// A block is hot when its exec count reaches the threshold
  /// (default 1: any observed execution counts as hot).
  void setHotThreshold(uint64_t T) { HotThreshold = T; }
  uint64_t hotThreshold() const { return HotThreshold; }
  bool isHot(uint64_t GuestAddr) const {
    return execCount(GuestAddr) >= HotThreshold;
  }

  size_t numBlocks() const { return Blocks.size(); }
  size_t numEdges() const { return EdgeSlots.size(); }
  /// Sum of all block execution counts.
  uint64_t totalBlockExecs() const;
  /// Sum of Execs * GuestInsns over all blocks — the denominator of the
  /// report's %-of-dynamic-instructions column.
  uint64_t totalDynInsns() const;

  /// The \p N most-executed blocks, descending by exec count (ties by
  /// guest address for determinism).
  std::vector<BlockStats> topBlocks(size_t N) const;
  /// The \p N most-taken direct edges, descending by count.
  std::vector<EdgeStats> topEdges(size_t N) const;

  /// Annotated top-N report: guest PC range, exec count, share of
  /// dynamic instructions, instrumentation bytes per block, plus a hot
  /// edge table and totals footer.
  std::string renderReport(size_t TopN) const;

  /// Publishes summary gauges (blockprofile.blocks/edges/execs/
  /// dyn_insns) into \p Registry.
  void publishTo(MetricsRegistry &Registry) const;

  /// Zeroes all counters; slot assignments and metadata survive.
  void reset();

private:
  static constexpr size_t ChunkSize = 4096;
  struct Chunk {
    uint64_t Counts[ChunkSize] = {};
  };

  struct BlockInfo {
    uint32_t Slot = 0;
    uint64_t GuestEnd = 0;
    uint64_t GuestInsns = 0;
    uint64_t InstrBytes = 0;
    uint64_t CacheBytes = 0;
  };

  uint32_t allocSlot();

  /// Stable-address chunked counter storage: growing never moves a slot.
  std::vector<std::unique_ptr<Chunk>> Chunks;
  uint32_t NumSlots = 0;
  uint64_t HotThreshold = 1;

  std::unordered_map<uint64_t, BlockInfo> Blocks;
  /// (From, To) -> slot. Ordered map: translation-time only, and the
  /// report wants deterministic iteration.
  std::map<std::pair<uint64_t, uint64_t>, uint32_t> EdgeSlots;
};

} // namespace telemetry
} // namespace cfed

#endif // CFED_TELEMETRY_BLOCKPROFILE_H
