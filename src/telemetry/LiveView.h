//===- LiveView.h - Merge and render live snapshots -------------*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reader half of the live telemetry plane: takes one sample per
/// shard (the current live snapshot plus, when available, the
/// previously observed one), merges the registries with the same
/// jobs-invariant fold campaign results use, computes rates from
/// sequence-numbered deltas, and renders a top-style text view. Both
/// cfed-top (refreshing watch mode) and `cfed-stat tail` (one-shot, for
/// CI logs) go through this code, so the parsing/rate logic is
/// exercised even where a watch-mode TUI cannot run.
///
//===----------------------------------------------------------------------===//

#ifndef CFED_TELEMETRY_LIVEVIEW_H
#define CFED_TELEMETRY_LIVEVIEW_H

#include "telemetry/LiveExport.h"

#include <string>
#include <vector>

namespace cfed {
namespace telemetry {

/// One shard's contribution to the view: the latest snapshot read from
/// its live file, plus the previous one when the reader has seen this
/// shard before (rates need two sequence-numbered points).
struct ShardSample {
  std::string Label; ///< Display name (usually the file path).
  LiveSnapshot Snap;
  bool HavePrev = false;
  LiveSnapshot Prev;
};

struct LiveViewOptions {
  /// Reader's wall clock (ms since epoch) used to age heartbeats; 0
  /// means "use the newest sample's timestamp" (deterministic renders
  /// in tests).
  uint64_t NowMs = 0;
  /// A shard whose snapshot is older than this and whose cursor has not
  /// reached its plan is flagged STALLED.
  double StallAfterSec = 10.0;
  /// Counters shown in the merged table (largest first).
  size_t TopCounters = 10;
};

/// Events per second for counter \p Name between S.Prev and S.Snap.
/// Negative when no valid delta exists (no previous sample, stale or
/// reset sequence, non-advancing clock, or a counter that went
/// backwards — i.e. a restarted publisher).
double counterRatePerSec(const ShardSample &S, const std::string &Name);

/// All shard registries folded with the jobs-invariant snapshot merge
/// (counters/histograms add, gauges last-wins).
RegistrySnapshot mergeSamples(const std::vector<ShardSample> &Samples);

/// Renders the full top-view: per-shard status lines (seq, age, stall
/// flag, cursor progress, recovery rung), merged counters with rates,
/// merged per-cell Wilson intervals, and merged detection-latency
/// quantiles. Pure text; the caller decides whether to clear the
/// screen around it.
std::string renderLiveView(const std::vector<ShardSample> &Samples,
                           const LiveViewOptions &Opts);

} // namespace telemetry
} // namespace cfed

#endif // CFED_TELEMETRY_LIVEVIEW_H
