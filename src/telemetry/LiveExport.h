//===- LiveExport.h - Live telemetry snapshot export ------------*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The live telemetry plane: every other observability surface in this
/// repository (registry snapshots, traces, flight-recorder bundles) is
/// post-hoc, written when the run ends. The LiveExporter instead
/// publishes the current registry snapshot *while the run executes*, as
/// an atomically-replaced (temp file + rename, like campaign
/// checkpoints) single-line-JSON file stamped with a run id, the pid, a
/// monotonic sequence number and a wall-clock timestamp, plus an
/// optional per-shard heartbeat record (engine cursor, completed and
/// skipped slots, per-cell Wilson intervals, the current recovery
/// ladder rung). Readers (cfed-top, cfed-stat tail, the campaign
/// coordinator) always see a complete snapshot, never a torn write.
///
/// Two drive modes:
///  - Service mode: start() spawns a background thread that publishes
///    every IntervalMs. Safe beside a running DBT because the registry
///    instruments are relaxed atomics and snapshot() takes only the
///    registry's registration mutex.
///  - Deterministic mode: the owner calls publish() (or the static
///    writeLiveSnapshot()) at its own boundaries — the campaign engine
///    publishes at batch boundaries so live output is reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef CFED_TELEMETRY_LIVEEXPORT_H
#define CFED_TELEMETRY_LIVEEXPORT_H

#include "telemetry/Metrics.h"

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace cfed {
namespace json {
struct JsonValue;
} // namespace json
namespace telemetry {

/// One campaign cell (branch-error category) in a heartbeat: the counts
/// and Wilson interval the publishing shard based its last stopping
/// decision on.
struct HeartbeatCell {
  std::string Name; ///< Category name ("A".."F").
  uint64_t Total = 0;
  uint64_t Sdc = 0;
  double Low = 0.0; ///< Wilson interval on the SDC rate.
  double High = 1.0;
  bool Closed = false; ///< Early stopping closed this cell.

  bool operator==(const HeartbeatCell &) const = default;
};

/// Per-shard liveness record embedded in a live snapshot. Present only
/// for campaign-engine runs; plain runs publish registry-only
/// snapshots.
struct Heartbeat {
  bool Present = false;
  unsigned Shard = 0;
  unsigned NumShards = 1;
  /// Next unprocessed slot in the schedule the cursor counts over
  /// (global slots in coordinated mode, shard slots otherwise).
  uint64_t Cursor = 0;
  uint64_t Planned = 0; ///< Total slots in that schedule.
  uint64_t Completed = 0;
  uint64_t Skipped = 0;
  /// Current recovery-ladder rung (recoveryRungFromSnapshot()).
  std::string Rung;
  std::vector<HeartbeatCell> Cells;

  bool operator==(const Heartbeat &) const = default;
};

inline constexpr uint64_t LiveSnapshotVersion = 1;

/// The unit the live plane publishes and readers consume.
struct LiveSnapshot {
  uint64_t Version = LiveSnapshotVersion;
  std::string RunId;
  uint64_t Pid = 0;
  /// Strictly increasing per publisher; readers compute rates from
  /// sequence-numbered deltas and detect restarts from decreases.
  uint64_t Seq = 0;
  /// Wall-clock milliseconds since the Unix epoch at publish time;
  /// readers age it against their own clock to flag stalled shards.
  uint64_t WallMs = 0;
  RegistrySnapshot Registry;
  Heartbeat Beat;

  bool operator==(const LiveSnapshot &) const = default;
};

/// Single-line JSON (kind "cfed-live-snapshot"); the inverse of
/// liveSnapshotFromJson so the two can never drift apart.
std::string liveSnapshotToJson(const LiveSnapshot &Snap);

/// Parses the shape liveSnapshotToJson emits. Returns false (and sets
/// \p Error) on a mismatch.
bool liveSnapshotFromJson(const json::JsonValue &Json, LiveSnapshot &Out,
                          std::string &Error);

/// True when \p Json carries live-exporter markers (the live-snapshot
/// kind, or sequence/heartbeat fields): such files are in-flight
/// partial data and must never fold into final campaign results.
bool isLiveSnapshotJson(const json::JsonValue &Json);

/// Wall-clock milliseconds since the Unix epoch.
uint64_t wallClockMs();

/// The recovery-ladder rung a run is currently on, judged from its
/// registry counters: "interp-fallback" > "degraded" > "retranslate" >
/// "rollback" > "normal".
const char *recoveryRungFromSnapshot(const RegistrySnapshot &Snap);

/// Writes \p Snap to \p Path atomically (temp file + rename): readers
/// see either the previous snapshot or this one, never a torn write.
bool writeLiveSnapshot(const std::string &Path, const LiveSnapshot &Snap,
                       std::string &Error);

/// Periodic or caller-driven publisher of live snapshots.
class LiveExporter {
public:
  struct Config {
    std::string Path;
    std::string RunId;
    /// Service-mode publish period.
    uint64_t IntervalMs = 1000;
  };

  /// Pull hook invoked at every publish; fills the registry snapshot
  /// and (optionally) the heartbeat. Runs on the exporter thread in
  /// service mode, so it must only touch thread-safe state (registry
  /// snapshots are).
  using Source = std::function<void(RegistrySnapshot &, Heartbeat &)>;

  LiveExporter(Config C, Source S);
  LiveExporter(const LiveExporter &) = delete;
  LiveExporter &operator=(const LiveExporter &) = delete;
  /// Stops the service thread if running.
  ~LiveExporter();

  /// Publishes one snapshot now (deterministic mode, also usable while
  /// the service thread runs). Returns false and sets \p Error on I/O
  /// failure.
  bool publish(std::string *Error = nullptr);

  /// Starts the background publisher; idempotent.
  void start();
  /// Publishes one final snapshot and joins the thread; idempotent.
  void stop();
  bool running() const { return Started; }

  /// Snapshots published so far (the Seq of the latest file).
  uint64_t sequence() const { return Seq.load(std::memory_order_relaxed); }
  /// Publishes that failed (service mode keeps going; the count is the
  /// observable).
  uint64_t failureCount() const {
    return Failures.load(std::memory_order_relaxed);
  }
  const std::string &path() const { return Cfg.Path; }

private:
  void serviceLoop();

  Config Cfg;
  Source Src;
  std::atomic<uint64_t> Seq{0};
  std::atomic<uint64_t> Failures{0};
  /// Serializes writers: a service tick and a caller-driven publish
  /// share the temp file, and the on-disk sequence must be ordered.
  std::mutex PublishMutex;
  std::mutex M;
  std::condition_variable CV;
  std::thread Worker;
  bool Started = false;
  bool Stopping = false;
};

} // namespace telemetry
} // namespace cfed

#endif // CFED_TELEMETRY_LIVEEXPORT_H
