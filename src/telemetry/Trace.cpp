//===- Trace.cpp - Structured event tracing --------------------------------===//

#include "telemetry/Trace.h"

#include <cstdio>

using namespace cfed;
using namespace cfed::telemetry;

const char *cfed::telemetry::getTraceEventName(TraceEventKind Kind) {
  switch (Kind) {
  case TraceEventKind::BlockTranslated:
    return "block-translated";
  case TraceEventKind::BlockChained:
    return "block-chained";
  case TraceEventKind::CacheFlush:
    return "cache-flush";
  case TraceEventKind::TrapRaised:
    return "trap-raised";
  case TraceEventKind::CheckpointTaken:
    return "checkpoint-taken";
  case TraceEventKind::Rollback:
    return "rollback";
  case TraceEventKind::WatchdogFire:
    return "watchdog-fire";
  case TraceEventKind::DegradationStep:
    return "degradation-step";
  case TraceEventKind::InterpreterFallback:
    return "interpreter-fallback";
  case TraceEventKind::CampaignInjection:
    return "campaign-injection";
  case TraceEventKind::IntegrityScrub:
    return "integrity-scrub";
  case TraceEventKind::BlockQuarantined:
    return "block-quarantined";
  case TraceEventKind::TracePromoted:
    return "trace-promoted";
  case TraceEventKind::AttackApplied:
    return "attack-applied";
  }
  return "?";
}

EventTracer::EventTracer(size_t Capacity) : Cap(Capacity ? Capacity : 1) {
  Buf.resize(Cap);
}

void EventTracer::record(uint64_t Ts, TraceEventKind Kind,
                         const char *Category, uint64_t Addr, uint64_t Arg) {
  TraceEvent &Slot = Buf[Total % Cap];
  Slot.Ts = Ts;
  Slot.Kind = Kind;
  Slot.Category = Category;
  Slot.Addr = Addr;
  Slot.Arg = Arg;
  ++Total;
}

std::vector<TraceEvent> EventTracer::events() const {
  std::vector<TraceEvent> Out;
  size_t N = size();
  Out.reserve(N);
  size_t Start = Total < Cap ? 0 : Total % Cap;
  for (size_t I = 0; I < N; ++I)
    Out.push_back(Buf[(Start + I) % Cap]);
  return Out;
}

std::string EventTracer::renderText() const {
  std::string Out;
  char Line[160];
  for (const TraceEvent &E : events()) {
    std::snprintf(Line, sizeof(Line), "ts=%llu %s addr=0x%llx",
                  static_cast<unsigned long long>(E.Ts),
                  getTraceEventName(E.Kind),
                  static_cast<unsigned long long>(E.Addr));
    Out += Line;
    if (E.Category) {
      Out += " cat=";
      Out += E.Category;
    }
    if (E.Arg) {
      std::snprintf(Line, sizeof(Line), " arg=%llu",
                    static_cast<unsigned long long>(E.Arg));
      Out += Line;
    }
    Out += '\n';
  }
  if (uint64_t D = dropped()) {
    std::snprintf(Line, sizeof(Line), "(%llu earlier events dropped)\n",
                  static_cast<unsigned long long>(D));
    Out += Line;
  }
  return Out;
}

std::string EventTracer::renderChromeJson() const {
  // Instant events; ts is the guest instruction count, which the viewer
  // displays as microseconds — deterministic and monotonic, which is
  // what matters for ordering.
  std::string Out = "{\"traceEvents\":[";
  char Buf[256];
  bool First = true;
  for (const TraceEvent &E : events()) {
    if (!First)
      Out += ",\n";
    First = false;
    std::snprintf(Buf, sizeof(Buf),
                  "{\"name\":\"%s\",\"ph\":\"i\",\"ts\":%llu,\"pid\":1,"
                  "\"tid\":1,\"s\":\"g\",\"args\":{\"addr\":\"0x%llx\"",
                  getTraceEventName(E.Kind),
                  static_cast<unsigned long long>(E.Ts),
                  static_cast<unsigned long long>(E.Addr));
    Out += Buf;
    if (E.Category) {
      Out += ",\"cat\":\"";
      Out += E.Category; // Category names are static identifiers.
      Out += '"';
    }
    if (E.Arg) {
      std::snprintf(Buf, sizeof(Buf), ",\"arg\":%llu",
                    static_cast<unsigned long long>(E.Arg));
      Out += Buf;
    }
    Out += "}}";
  }
  Out += "],\"displayTimeUnit\":\"ms\"";
  if (uint64_t D = dropped()) {
    std::snprintf(Buf, sizeof(Buf), ",\"droppedEvents\":%llu",
                  static_cast<unsigned long long>(D));
    Out += Buf;
  }
  Out += "}";
  return Out;
}
