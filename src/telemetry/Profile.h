//===- Profile.h - Scoped phase profiling -----------------------*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock accounting by pipeline phase. Subsystems open an RAII
/// Scope around translate/execute/check/recover regions; accumulated
/// nanoseconds are published into a MetricsRegistry as gauges, which
/// is what bench/ consumes instead of private stopwatches.
///
/// Scopes tolerate a null profiler (zero work), so instrumented code
/// needs no branches of its own around profiling being detached.
///
//===----------------------------------------------------------------------===//

#ifndef CFED_TELEMETRY_PROFILE_H
#define CFED_TELEMETRY_PROFILE_H

#include <atomic>
#include <chrono>
#include <cstdint>

namespace cfed {
namespace telemetry {

class MetricsRegistry;

enum class Phase : uint8_t {
  Translate, ///< Guest decode + instrumentation + cache emission.
  Execute,   ///< Running translated code (encloses nested phases).
  Check,     ///< Signature checking outside generated code.
  Recover,   ///< Checkpoint/rollback machinery.
  Scrub,     ///< Code-cache integrity scrubbing (self-integrity subsystem).
  Trace,     ///< Opt-tier trace promotion (eviction + retranslation).
  Wall       ///< Whole-run wall clock (bench harnesses).
};

inline constexpr unsigned NumPhases = 7;

const char *getPhaseName(Phase P);

/// Accumulates per-phase wall time and entry counts. Thread-safe
/// accumulation (relaxed atomics); typical use is single-threaded.
class PhaseProfiler {
public:
  void add(Phase P, uint64_t Ns) {
    Accum[static_cast<size_t>(P)].fetch_add(Ns, std::memory_order_relaxed);
    Calls[static_cast<size_t>(P)].fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t totalNs(Phase P) const {
    return Accum[static_cast<size_t>(P)].load(std::memory_order_relaxed);
  }
  uint64_t callCount(Phase P) const {
    return Calls[static_cast<size_t>(P)].load(std::memory_order_relaxed);
  }
  void reset();

  /// Writes gauges "profile.<phase>.ns" and "profile.<phase>.calls"
  /// for every phase with at least one entry.
  void publishTo(MetricsRegistry &Registry) const;

  /// RAII timer charging its phase on destruction. Null profiler: no-op.
  class Scope {
  public:
    Scope(PhaseProfiler *Prof, Phase P) : Prof(Prof), P(P) {
      if (Prof)
        Start = std::chrono::steady_clock::now();
    }
    ~Scope() {
      if (Prof)
        Prof->add(P, std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now() - Start)
                         .count());
    }
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    PhaseProfiler *Prof;
    Phase P;
    std::chrono::steady_clock::time_point Start;
  };

private:
  std::atomic<uint64_t> Accum[NumPhases]{};
  std::atomic<uint64_t> Calls[NumPhases]{};
};

} // namespace telemetry
} // namespace cfed

#endif // CFED_TELEMETRY_PROFILE_H
