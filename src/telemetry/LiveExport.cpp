//===- LiveExport.cpp - Live telemetry snapshot export ---------------------===//

#include "telemetry/LiveExport.h"

#include "support/Json.h"

#include <chrono>
#include <cstdio>
#include <unistd.h>

using namespace cfed;
using namespace cfed::telemetry;

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

namespace {

const char *LiveSnapshotKind = "cfed-live-snapshot";

void appendJsonString(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += C;
    } else if (static_cast<unsigned char>(C) < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
      Out += Buf;
    } else {
      Out += C;
    }
  }
  Out += '"';
}

// %.17g so a parse-back reproduces the exact double (Wilson interval
// endpoints round-trip through the coordinator byte-identically).
std::string formatDoubleExact(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  return Buf;
}

bool numberField(const json::JsonValue &Obj, const char *Name, uint64_t &Out,
                 std::string &Error) {
  const json::JsonValue &V = Obj[Name];
  if (V.K != json::JsonValue::Number) {
    Error = std::string("live snapshot field '") + Name + "' is not a number";
    return false;
  }
  Out = static_cast<uint64_t>(V.Num);
  return true;
}

} // namespace

std::string telemetry::liveSnapshotToJson(const LiveSnapshot &Snap) {
  std::string Out = "{\"kind\":\"";
  Out += LiveSnapshotKind;
  Out += "\",\"version\":";
  Out += std::to_string(Snap.Version);
  Out += ",\"run_id\":";
  appendJsonString(Out, Snap.RunId);
  Out += ",\"pid\":";
  Out += std::to_string(Snap.Pid);
  Out += ",\"seq\":";
  Out += std::to_string(Snap.Seq);
  Out += ",\"wall_ms\":";
  Out += std::to_string(Snap.WallMs);
  Out += ",\"registry\":";
  Out += Snap.Registry.toJson();
  if (Snap.Beat.Present) {
    Out += ",\"heartbeat\":{\"shard\":";
    Out += std::to_string(Snap.Beat.Shard);
    Out += ",\"num_shards\":";
    Out += std::to_string(Snap.Beat.NumShards);
    Out += ",\"cursor\":";
    Out += std::to_string(Snap.Beat.Cursor);
    Out += ",\"planned\":";
    Out += std::to_string(Snap.Beat.Planned);
    Out += ",\"completed\":";
    Out += std::to_string(Snap.Beat.Completed);
    Out += ",\"skipped\":";
    Out += std::to_string(Snap.Beat.Skipped);
    Out += ",\"rung\":";
    appendJsonString(Out, Snap.Beat.Rung);
    Out += ",\"cells\":[";
    for (size_t I = 0; I < Snap.Beat.Cells.size(); ++I) {
      const HeartbeatCell &Cell = Snap.Beat.Cells[I];
      if (I)
        Out += ',';
      Out += "{\"name\":";
      appendJsonString(Out, Cell.Name);
      Out += ",\"total\":";
      Out += std::to_string(Cell.Total);
      Out += ",\"sdc\":";
      Out += std::to_string(Cell.Sdc);
      Out += ",\"low\":";
      Out += formatDoubleExact(Cell.Low);
      Out += ",\"high\":";
      Out += formatDoubleExact(Cell.High);
      Out += ",\"closed\":";
      Out += Cell.Closed ? "true" : "false";
      Out += '}';
    }
    Out += "]}";
  }
  Out += '}';
  return Out;
}

bool telemetry::liveSnapshotFromJson(const json::JsonValue &Json,
                                     LiveSnapshot &Out, std::string &Error) {
  using json::JsonValue;
  if (Json.K != JsonValue::Object) {
    Error = "live snapshot is not a JSON object";
    return false;
  }
  if (Json["kind"].Str != LiveSnapshotKind) {
    Error = "not a live snapshot (kind is not 'cfed-live-snapshot')";
    return false;
  }
  Out = LiveSnapshot();
  if (!numberField(Json, "version", Out.Version, Error))
    return false;
  if (Out.Version != LiveSnapshotVersion) {
    Error = "unsupported live snapshot version " + std::to_string(Out.Version);
    return false;
  }
  if (Json["run_id"].K != JsonValue::String) {
    Error = "live snapshot field 'run_id' is not a string";
    return false;
  }
  Out.RunId = Json["run_id"].Str;
  if (!numberField(Json, "pid", Out.Pid, Error) ||
      !numberField(Json, "seq", Out.Seq, Error) ||
      !numberField(Json, "wall_ms", Out.WallMs, Error))
    return false;
  if (!snapshotFromJson(Json["registry"], Out.Registry, Error)) {
    Error = "live snapshot registry: " + Error;
    return false;
  }
  const JsonValue &Beat = Json["heartbeat"];
  if (Beat.K == JsonValue::Null)
    return true;
  if (Beat.K != JsonValue::Object) {
    Error = "live snapshot field 'heartbeat' is not an object";
    return false;
  }
  Out.Beat.Present = true;
  uint64_t Shard = 0, NumShards = 1;
  if (!numberField(Beat, "shard", Shard, Error) ||
      !numberField(Beat, "num_shards", NumShards, Error) ||
      !numberField(Beat, "cursor", Out.Beat.Cursor, Error) ||
      !numberField(Beat, "planned", Out.Beat.Planned, Error) ||
      !numberField(Beat, "completed", Out.Beat.Completed, Error) ||
      !numberField(Beat, "skipped", Out.Beat.Skipped, Error))
    return false;
  Out.Beat.Shard = static_cast<unsigned>(Shard);
  Out.Beat.NumShards = static_cast<unsigned>(NumShards);
  if (Beat["rung"].K != JsonValue::String) {
    Error = "heartbeat field 'rung' is not a string";
    return false;
  }
  Out.Beat.Rung = Beat["rung"].Str;
  const JsonValue &Cells = Beat["cells"];
  if (Cells.K != JsonValue::Array) {
    Error = "heartbeat field 'cells' is not an array";
    return false;
  }
  for (const JsonValue &C : Cells.Items) {
    if (C.K != JsonValue::Object || C["name"].K != JsonValue::String ||
        C["low"].K != JsonValue::Number || C["high"].K != JsonValue::Number ||
        C["closed"].K != JsonValue::Bool) {
      Error = "heartbeat cell has a malformed shape";
      return false;
    }
    HeartbeatCell Cell;
    Cell.Name = C["name"].Str;
    if (!numberField(C, "total", Cell.Total, Error) ||
        !numberField(C, "sdc", Cell.Sdc, Error))
      return false;
    Cell.Low = C["low"].Num;
    Cell.High = C["high"].Num;
    Cell.Closed = C["closed"].B;
    Out.Beat.Cells.push_back(std::move(Cell));
  }
  return true;
}

bool telemetry::isLiveSnapshotJson(const json::JsonValue &Json) {
  if (Json.K != json::JsonValue::Object)
    return false;
  if (Json["kind"].Str == LiveSnapshotKind)
    return true;
  // Defensive: even a re-wrapped or hand-edited file that still carries
  // live-exporter markers (a sequence number or a heartbeat) is
  // in-flight data, not a final result.
  return Json.Fields.count("seq") != 0 || Json.Fields.count("heartbeat") != 0;
}

//===----------------------------------------------------------------------===//
// Environment probes
//===----------------------------------------------------------------------===//

uint64_t telemetry::wallClockMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

const char *telemetry::recoveryRungFromSnapshot(const RegistrySnapshot &Snap) {
  // Highest rung wins: the ladder only escalates within a run, so the
  // strongest counter that has fired names the current operating mode.
  if (Snap.counterOr("recovery.interp_fallbacks"))
    return "interp-fallback";
  if (Snap.counterOr("recovery.degradations"))
    return "degraded";
  if (Snap.counterOr("integrity.retranslations"))
    return "retranslate";
  if (Snap.counterOr("recovery.rollbacks"))
    return "rollback";
  return "normal";
}

//===----------------------------------------------------------------------===//
// Atomic publish
//===----------------------------------------------------------------------===//

bool telemetry::writeLiveSnapshot(const std::string &Path,
                                  const LiveSnapshot &Snap,
                                  std::string &Error) {
  // Same discipline as campaign checkpoints: write a sibling temp file,
  // then rename over the destination. rename(2) is atomic within a
  // filesystem, so a concurrent reader sees the old file or the new
  // one, never a prefix.
  std::string Tmp = Path + ".tmp";
  std::FILE *F = std::fopen(Tmp.c_str(), "w");
  if (!F) {
    Error = "cannot open live snapshot temp file '" + Tmp + "'";
    return false;
  }
  std::string Text = liveSnapshotToJson(Snap);
  Text += '\n';
  bool Ok = std::fwrite(Text.data(), 1, Text.size(), F) == Text.size();
  Ok = std::fclose(F) == 0 && Ok;
  if (!Ok) {
    Error = "cannot write live snapshot temp file '" + Tmp + "'";
    std::remove(Tmp.c_str());
    return false;
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    Error = "cannot rename live snapshot '" + Tmp + "' to '" + Path + "'";
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// LiveExporter
//===----------------------------------------------------------------------===//

LiveExporter::LiveExporter(Config C, Source S)
    : Cfg(std::move(C)), Src(std::move(S)) {}

LiveExporter::~LiveExporter() { stop(); }

bool LiveExporter::publish(std::string *Error) {
  // One writer at a time: a service-mode tick and a caller-driven
  // publish share the temp file, and sequence numbers must match the
  // order the files land on disk.
  std::lock_guard<std::mutex> Lock(PublishMutex);
  LiveSnapshot Snap;
  Snap.RunId = Cfg.RunId;
  Snap.Pid = static_cast<uint64_t>(::getpid());
  Snap.Seq = Seq.load(std::memory_order_relaxed) + 1;
  Snap.WallMs = wallClockMs();
  Src(Snap.Registry, Snap.Beat);
  std::string Err;
  if (!writeLiveSnapshot(Cfg.Path, Snap, Err)) {
    Failures.fetch_add(1, std::memory_order_relaxed);
    if (Error)
      *Error = Err;
    return false;
  }
  Seq.store(Snap.Seq, std::memory_order_relaxed);
  return true;
}

void LiveExporter::start() {
  std::lock_guard<std::mutex> Lock(M);
  if (Started)
    return;
  Stopping = false;
  Started = true;
  Worker = std::thread([this] { serviceLoop(); });
}

void LiveExporter::stop() {
  {
    std::lock_guard<std::mutex> Lock(M);
    if (!Started)
      return;
    Stopping = true;
  }
  CV.notify_all();
  Worker.join();
  {
    std::lock_guard<std::mutex> Lock(M);
    Started = false;
  }
  // Final publish so the file on disk reflects the end state even when
  // the last periodic tick raced the run's completion.
  publish();
}

void LiveExporter::serviceLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> Lock(M);
      CV.wait_for(Lock, std::chrono::milliseconds(Cfg.IntervalMs),
                  [this] { return Stopping; });
      if (Stopping)
        return;
    }
    publish();
  }
}
