//===- FlightRecorder.h - Post-mortem bundle serialization ------*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Crash-time observability: when a trap fires, the watchdog trips, or the
/// recovery ladder escalates, the runtime assembles a PostMortem — the last
/// N trace events, a full metrics snapshot, the CPU state, guest/host
/// disassembly of the faulting block, and recovery ring status — and the
/// FlightRecorder serializes it as one JSON bundle per incident.
///
/// PostMortem is a plain data bag on purpose: the telemetry library sits
/// below vm/dbt in the link order, so producers (Dbt::buildPostMortem,
/// RecoveryManager, FaultCampaign) translate their own types into strings
/// and integers before handing the bundle over.
///
//===----------------------------------------------------------------------===//

#ifndef CFED_TELEMETRY_FLIGHTRECORDER_H
#define CFED_TELEMETRY_FLIGHTRECORDER_H

#include "telemetry/Metrics.h"
#include "telemetry/Trace.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace cfed {
namespace telemetry {

/// Recovery-subsystem state at bundle time. Present only when a
/// RecoveryManager was driving the run.
struct PostMortemRecovery {
  bool Present = false;
  uint64_t Checkpoints = 0;
  uint64_t Rollbacks = 0;
  uint64_t WatchdogFires = 0;
  /// Checkpoints currently live in the ring.
  uint64_t RingDepth = 0;
  bool Degraded = false;
  bool InterpreterFallback = false;
};

/// Fault-propagation provenance at bundle time (DESIGN.md §14). Present
/// only for campaign injections run against a golden digest oracle —
/// its arrival is what bumped the bundle format to version 2 (version-1
/// bundles simply have no "propagation" member; readers treat that as
/// Present = false).
struct PostMortemPropagation {
  bool Present = false;
  /// Funnel class name ("detected-after-divergence", ...).
  std::string Class;
  bool Diverged = false;
  uint64_t DivergenceOrdinal = 0;
  uint64_t DivergenceKey = 0;
  uint64_t DivergencePC = 0;
  uint64_t TaintedBlocks = 0;
  uint64_t ChecksCrossed = 0;
  uint64_t InsnsCrossed = 0;
};

/// Everything a bundle records. All fields optional; empty strings and
/// zero values serialize as such.
struct PostMortem {
  /// Why the bundle exists: "trap", "watchdog", "degradation",
  /// "interpreter-fallback", "campaign-injection", ...
  std::string Reason;
  /// Stop classification: "halted", "trap", "insn-limit".
  std::string StopKind;
  /// Trap kind name when StopKind == "trap" (e.g. "break").
  std::string TrapName;
  /// Human-readable one-line description of the stop.
  std::string Description;

  uint64_t GuestPC = 0;
  uint64_t CachePC = 0;
  uint64_t TrapAddr = 0;
  int64_t BreakCode = 0;
  uint64_t Insns = 0;
  uint64_t Cycles = 0;

  /// Integer register file snapshot.
  std::vector<uint64_t> Regs;
  /// Packed FLAGS bits (ZF=bit0, SF=1, CF=2, OF=3).
  unsigned FlagBits = 0;

  /// Last-N trace events, oldest first.
  std::vector<TraceEvent> Events;
  RegistrySnapshot Registry;
  PostMortemRecovery Recovery;
  PostMortemPropagation Propagation;

  /// Disassembly of the faulting block (guest view and code-cache view).
  std::string GuestDisasm;
  std::string HostDisasm;

  /// Free-form key/value annotations (campaign metadata and the like).
  std::vector<std::pair<std::string, uint64_t>> Annotations;
  /// Free-form note (e.g. injection outcome).
  std::string Note;
};

/// Writes PostMortem bundles as numbered JSON files under one directory.
/// Not thread-safe: parallel fault campaigns keep their recorders on the
/// serial paths.
class FlightRecorder {
public:
  explicit FlightRecorder(std::string Dir, size_t MaxEvents = 256)
      : Dir(std::move(Dir)), MaxEvents(MaxEvents) {}

  const std::string &dir() const { return Dir; }
  size_t maxEvents() const { return MaxEvents; }

  /// Filename prefix for the numbered bundles (default "postmortem_").
  void setPrefix(std::string P) { Prefix = std::move(P); }
  const std::string &prefix() const { return Prefix; }

  /// Renders \p PM as a JSON document. When \p MaxEvents is nonzero only
  /// the last MaxEvents trace events are emitted.
  static std::string renderJson(const PostMortem &PM, size_t MaxEvents = 0);

  /// Serializes \p PM to "<dir>/<prefix><seq>.json", creating the
  /// directory on first use. Returns the path written, or "" on failure
  /// (see lastError()).
  std::string write(const PostMortem &PM);

  /// Bundles successfully written so far.
  uint64_t bundleCount() const { return Seq; }
  const std::string &lastPath() const { return LastPath; }
  const std::string &lastError() const { return LastError; }

private:
  std::string Dir;
  size_t MaxEvents;
  std::string Prefix = "postmortem_";
  uint64_t Seq = 0;
  std::string LastPath;
  std::string LastError;
};

} // namespace telemetry
} // namespace cfed

#endif // CFED_TELEMETRY_FLIGHTRECORDER_H
