//===- Provenance.cpp - Fault-propagation provenance layer ----------------===//

#include "telemetry/Provenance.h"

#include "support/Format.h"

#include <algorithm>
#include <cstdio>

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define CFED_DIGEST_AVX512 1
#endif

using namespace cfed;
using namespace cfed::telemetry;

#if CFED_DIGEST_AVX512
namespace {

/// mixWindowScalar, vectorized: one variable-rotate per 8-word half,
/// one XOR to merge the halves, one horizontal reduce — versus 16
/// scalar rotate+XOR pairs. Compiled for AVX-512F via the target
/// attribute (the repo builds without -march flags) and only reached
/// when the CPUID probe below says the host has it.
__attribute__((target("avx512f"))) uint64_t
mixWindowAvx512(const uint64_t *W) {
  const __m512i RotLo = _mm512_setr_epi64(1, 9, 17, 25, 33, 41, 49, 57);
  const __m512i RotHi = _mm512_setr_epi64(5, 13, 21, 29, 37, 45, 53, 61);
  __m512i Lo = _mm512_loadu_si512(W);
  __m512i Hi = _mm512_loadu_si512(W + 8);
  __m512i X = _mm512_xor_si512(_mm512_rolv_epi64(Lo, RotLo),
                               _mm512_rolv_epi64(Hi, RotHi));
  // Horizontal XOR by halving (GCC has no _mm512_reduce_xor_epi64).
  __m256i Y = _mm256_xor_si256(_mm512_extracti64x4_epi64(X, 0),
                               _mm512_extracti64x4_epi64(X, 1));
  __m128i Z = _mm_xor_si128(_mm256_extracti128_si256(Y, 0),
                            _mm256_extracti128_si256(Y, 1));
  return static_cast<uint64_t>(_mm_cvtsi128_si64(Z)) ^
         static_cast<uint64_t>(_mm_extract_epi64(Z, 1));
}

/// Probed once at startup (namespace-scope initializer, so the per-call
/// path is a plain bool load with no init guard).
const bool UseAvx512 = __builtin_cpu_supports("avx512f");

} // namespace
#endif

uint64_t DigestRecorder::mixWindow(const uint64_t *W) {
#if CFED_DIGEST_AVX512
  if (UseAvx512)
    return mixWindowAvx512(W);
#endif
  return mixWindowScalar(W);
}

void DigestRecorder::onMarker(uint32_t Slot, const uint64_t *Regs,
                              const double *FpRegs, unsigned FlagBits) {
  if (Slot >= Markers.size())
    return;
  const MarkerInfo &M = Markers[Slot];
  if (!M.Capture) {
    GuestRetired += M.Delta;
    return;
  }
  captureRecord(GuestRetired + M.Delta, M.TermPC, M.Checked, Regs, FpRegs,
                FlagBits);
  GuestRetired += M.Delta + 1; // Body plus the terminator itself.
}

void DigestRecorder::captureRecord(uint64_t Key, uint64_t TermPC, bool Checked,
                                   const uint64_t *Regs, const double *FpRegs,
                                   unsigned FlagBits) {
  // Capture cost sets the digest_overhead gate, so the fold is built
  // around one rotate-and-XOR pre-mix of the whole 16-word register
  // window (vectorized on AVX-512 hosts) per multiply: two to three
  // multiplies per capture total, versus one per word for a naive
  // FNV-over-words.
  uint64_t R = foldWord(FnvOffset, mixWindow(Regs));
  // The FP file is folded only once it has been written this run (see
  // noteFpWrite): the flag's history is tier-identical, FpActive
  // itself rides in the Misc word so a faulted path that first touches
  // FP state flips the digest, and the integer-only majority of
  // boundaries skips all 16 FP folds.
  if (FpActive) {
    uint64_t FpBits[NumDigestFpRegs];
    std::memcpy(FpBits, FpRegs, sizeof(FpBits));
    R = foldWord(R, mixWindow(FpBits));
  }
  // StoreAcc/OutAcc are already multiply-mixed, and the low-entropy
  // FLAGS/count fields ride on disjoint shifts, so one fold suffices
  // for the whole summary word.
  uint64_t Misc = FlagBits ^ FpActive << 8 ^ StoreCount << 9 ^
                  OutLen << 48 ^ rotl(StoreAcc, 16) ^ rotl(OutAcc, 40);
  uint64_t H = foldWord(R, Misc);
  Staged.push_back(
      StagedRecord{Key | (Checked ? StagedCheckedBit : 0), TermPC, H});
  // The store summary is a per-boundary delta; output is cumulative.
  StoreAcc = FnvOffset;
  StoreCount = 0;
}

void DigestRecorder::materialize() {
  if (Staged.empty())
    return;
  Records.reserve(Records.size() + Staged.size());
  for (const StagedRecord &S : Staged) {
    DigestRecord R;
    R.Key = S.KeyAndChecked & ~StagedCheckedBit;
    R.TermPC = S.TermPC;
    R.Local = S.Local;
    R.Chain = foldWord(PrevChain ^ R.Key ^ rotHalf(R.TermPC), R.Local);
    R.Checked = (S.KeyAndChecked & StagedCheckedBit) != 0;
    PrevChain = R.Chain;
    Records.push_back(R);
  }
  Staged.clear();
}

const char *telemetry::getPropClassName(PropClass C) {
  switch (C) {
  case PropClass::None:
    return "none";
  case PropClass::DetectedClean:
    return "detected-clean";
  case PropClass::DetectedAfterDivergence:
    return "detected-after-divergence";
  case PropClass::SdcExplained:
    return "sdc-explained";
  case PropClass::SdcUnexplained:
    return "sdc-unexplained";
  case PropClass::MaskedClean:
    return "masked-clean";
  case PropClass::MaskedConverged:
    return "masked-converged";
  case PropClass::MaskedLatent:
    return "masked-latent";
  case PropClass::TimeoutClean:
    return "timeout-clean";
  case PropClass::TimeoutAfterDivergence:
    return "timeout-after-divergence";
  }
  return "?";
}

const PropClass telemetry::AllPropClasses[NumPropClasses - 1] = {
    PropClass::DetectedClean,  PropClass::DetectedAfterDivergence,
    PropClass::SdcExplained,   PropClass::SdcUnexplained,
    PropClass::MaskedClean,    PropClass::MaskedConverged,
    PropClass::MaskedLatent,   PropClass::TimeoutClean,
    PropClass::TimeoutAfterDivergence,
};

std::string telemetry::getPropCounterName(const char *CategoryName,
                                          PropClass C) {
  return formatString("prop.cat_%s.%s", CategoryName, getPropClassName(C));
}

std::string telemetry::getPropDistanceHistogramName(const char *CategoryName) {
  return formatString("prop.distance.cat_%s", CategoryName);
}

std::vector<uint64_t> telemetry::propDistanceBounds() {
  std::vector<uint64_t> Bounds;
  for (uint64_t B = 1; B <= (uint64_t(1) << 20); B <<= 1)
    Bounds.push_back(B);
  return Bounds;
}

PropagationReport
telemetry::analyzePropagation(const std::vector<DigestRecord> &Golden,
                              const std::vector<DigestRecord> &Faulted,
                              PropOutcome HowItEnded) {
  PropagationReport R;
  R.Enabled = true;

  // First chain mismatch over the common prefix; a length difference
  // with a clean prefix diverges at the first extra/missing record.
  size_t Common = std::min(Golden.size(), Faulted.size());
  size_t Div = Common;
  for (size_t I = 0; I < Common; ++I) {
    if (Golden[I].Chain != Faulted[I].Chain) {
      Div = I;
      break;
    }
  }
  bool Diverged =
      Div < Common ||
      (Golden.size() != Faulted.size() && Faulted.size() > Golden.size());
  // A faulted run that is a strict prefix of the golden stream stopped
  // early (a check or trap cut it short) without corrupting state: for
  // a detected, masked or timed-out run that is not an architectural
  // divergence. For an SDC the truncation itself is the divergence —
  // the output went wrong precisely because the run left the golden
  // path by ending at this boundary — so the first missing record is
  // its concrete first-divergence point (in golden coordinates; the
  // tail metrics stay zero, nothing executed past it).
  if (!Diverged && HowItEnded == PropOutcome::Sdc &&
      Faulted.size() < Golden.size()) {
    Diverged = true;
    Div = Faulted.size();
  }
  if (Diverged) {
    R.Diverged = true;
    R.DivergenceOrdinal = Div;
    const DigestRecord &At =
        Div < Faulted.size() ? Faulted[Div] : Golden[Div];
    R.DivergenceKey = At.Key;
    R.DivergencePC = At.TermPC;

    // The propagation tail: every faulted boundary from the divergence
    // on (once the chain breaks it never re-matches).
    std::vector<uint64_t> Blocks;
    for (size_t I = Div; I < Faulted.size(); ++I) {
      Blocks.push_back(Faulted[I].TermPC);
      if (Faulted[I].Checked)
        ++R.ChecksCrossed;
    }
    std::sort(Blocks.begin(), Blocks.end());
    R.TaintedBlocks =
        std::unique(Blocks.begin(), Blocks.end()) - Blocks.begin();
    if (!Faulted.empty() && Faulted.back().Key >= R.DivergenceKey)
      R.InsnsCrossed = Faulted.back().Key - R.DivergenceKey;
  }

  bool FinalStateMatches = !Golden.empty() && !Faulted.empty() &&
                           Golden.back().Local == Faulted.back().Local;
  switch (HowItEnded) {
  case PropOutcome::Detected:
    R.Class = R.Diverged ? PropClass::DetectedAfterDivergence
                         : PropClass::DetectedClean;
    break;
  case PropOutcome::Sdc:
    R.Class =
        R.Diverged ? PropClass::SdcExplained : PropClass::SdcUnexplained;
    break;
  case PropOutcome::Masked:
    R.Class = !R.Diverged           ? PropClass::MaskedClean
              : FinalStateMatches   ? PropClass::MaskedConverged
                                    : PropClass::MaskedLatent;
    break;
  case PropOutcome::Timeout:
    R.Class = R.Diverged ? PropClass::TimeoutAfterDivergence
                         : PropClass::TimeoutClean;
    break;
  }
  return R;
}

namespace {

constexpr char GoldenTraceMagic[8] = {'C', 'F', 'E', 'D',
                                      'G', 'T', '0', '1'};

void putU64(FILE *F, uint64_t V) {
  uint8_t Bytes[8];
  for (int I = 0; I < 8; ++I)
    Bytes[I] = static_cast<uint8_t>(V >> (I * 8));
  std::fwrite(Bytes, 1, 8, F);
}

bool getU64(FILE *F, uint64_t &V) {
  uint8_t Bytes[8];
  if (std::fread(Bytes, 1, 8, F) != 8)
    return false;
  V = 0;
  for (int I = 0; I < 8; ++I)
    V |= static_cast<uint64_t>(Bytes[I]) << (I * 8);
  return true;
}

bool fail(std::string *Error, std::string Text) {
  if (Error)
    *Error = std::move(Text);
  return false;
}

} // namespace

bool GoldenTrace::save(const std::string &Path, std::string *Error) const {
  FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return fail(Error, formatString("cannot open '%s' for writing",
                                    Path.c_str()));
  std::fwrite(GoldenTraceMagic, 1, sizeof(GoldenTraceMagic), F);
  putU64(F, ProgramFp);
  putU64(F, ConfigFp);
  putU64(F, Records.size());
  for (const DigestRecord &R : Records) {
    putU64(F, R.Key);
    putU64(F, R.TermPC);
    putU64(F, R.Local);
    putU64(F, R.Chain);
    putU64(F, R.Checked ? 1 : 0);
  }
  bool Ok = std::fflush(F) == 0 && !std::ferror(F);
  std::fclose(F);
  if (!Ok)
    return fail(Error, formatString("short write to '%s'", Path.c_str()));
  return true;
}

bool GoldenTrace::load(const std::string &Path, std::string *Error) {
  FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return fail(Error,
                formatString("cannot open '%s' for reading", Path.c_str()));
  char Magic[sizeof(GoldenTraceMagic)];
  bool Ok = std::fread(Magic, 1, sizeof(Magic), F) == sizeof(Magic) &&
            std::memcmp(Magic, GoldenTraceMagic, sizeof(Magic)) == 0;
  uint64_t Count = 0;
  Ok = Ok && getU64(F, ProgramFp) && getU64(F, ConfigFp) &&
       getU64(F, Count);
  // Records are fixed-size, so the payload length must match the count
  // exactly; without this a corrupt count could drive a huge reserve.
  constexpr uint64_t RecordBytes = 5 * 8;
  if (Ok) {
    long Here = std::ftell(F);
    Ok = Here >= 0 && std::fseek(F, 0, SEEK_END) == 0;
    long End = Ok ? std::ftell(F) : -1;
    uint64_t Payload = End >= Here ? static_cast<uint64_t>(End - Here) : 0;
    Ok = Ok && End >= Here && Payload % RecordBytes == 0 &&
         Count == Payload / RecordBytes &&
         std::fseek(F, Here, SEEK_SET) == 0;
  }
  Records.clear();
  if (Ok)
    Records.reserve(static_cast<size_t>(Count));
  for (uint64_t I = 0; Ok && I < Count; ++I) {
    DigestRecord R;
    uint64_t Checked = 0;
    Ok = getU64(F, R.Key) && getU64(F, R.TermPC) && getU64(F, R.Local) &&
         getU64(F, R.Chain) && getU64(F, Checked);
    R.Checked = Checked != 0;
    if (Ok)
      Records.push_back(R);
  }
  std::fclose(F);
  if (!Ok) {
    Records.clear();
    return fail(Error, formatString("'%s' is not a golden-trace file",
                                    Path.c_str()));
  }
  return true;
}
