//===- FlightRecorder.cpp - Post-mortem bundle serialization --------------===//

#include "telemetry/FlightRecorder.h"

#include "support/Format.h"

#include <cstdio>
#include <filesystem>

using namespace cfed;
using namespace cfed::telemetry;

namespace {

void appendEscaped(std::string &Out, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '\\':
      Out += "\\\\";
      break;
    case '"':
      Out += "\\\"";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      Out += C;
    }
  }
}

void appendStringField(std::string &Out, const char *Key,
                       const std::string &Value, bool Comma = true) {
  Out += formatString("  \"%s\": \"", Key);
  appendEscaped(Out, Value);
  Out += Comma ? "\",\n" : "\"\n";
}

std::string hexString(uint64_t V) {
  return formatString("0x%llx", static_cast<unsigned long long>(V));
}

} // namespace

std::string FlightRecorder::renderJson(const PostMortem &PM,
                                       size_t MaxEvents) {
  // Version 2 added the optional "propagation" section; everything a
  // version-1 reader understood is unchanged.
  std::string Out = "{\n";
  Out += "  \"version\": 2,\n";
  appendStringField(Out, "reason", PM.Reason);

  Out += "  \"stop\": {";
  Out += "\"kind\": \"";
  appendEscaped(Out, PM.StopKind);
  Out += "\", \"trap\": \"";
  appendEscaped(Out, PM.TrapName);
  Out += "\", \"description\": \"";
  appendEscaped(Out, PM.Description);
  Out += "\"},\n";

  appendStringField(Out, "guest_pc", hexString(PM.GuestPC));
  appendStringField(Out, "cache_pc", hexString(PM.CachePC));
  appendStringField(Out, "trap_addr", hexString(PM.TrapAddr));
  Out += formatString("  \"break_code\": %lld,\n",
                      static_cast<long long>(PM.BreakCode));
  Out += formatString("  \"insns\": %llu,\n",
                      static_cast<unsigned long long>(PM.Insns));
  Out += formatString("  \"cycles\": %llu,\n",
                      static_cast<unsigned long long>(PM.Cycles));

  Out += "  \"cpu\": {\"flags\": ";
  Out += std::to_string(PM.FlagBits);
  Out += ", \"regs\": [";
  for (size_t I = 0; I < PM.Regs.size(); ++I) {
    if (I)
      Out += ", ";
    Out += "\"" + hexString(PM.Regs[I]) + "\"";
  }
  Out += "]},\n";

  size_t First = 0;
  if (MaxEvents && PM.Events.size() > MaxEvents)
    First = PM.Events.size() - MaxEvents;
  Out += "  \"events\": [\n";
  for (size_t I = First; I < PM.Events.size(); ++I) {
    const TraceEvent &E = PM.Events[I];
    Out += formatString(
        "    {\"ts\": %llu, \"kind\": \"%s\", \"category\": \"",
        static_cast<unsigned long long>(E.Ts), getTraceEventName(E.Kind));
    appendEscaped(Out, E.Category ? E.Category : "");
    Out += formatString("\", \"addr\": \"%s\", \"arg\": %llu}",
                        hexString(E.Addr).c_str(),
                        static_cast<unsigned long long>(E.Arg));
    Out += I + 1 < PM.Events.size() ? ",\n" : "\n";
  }
  Out += "  ],\n";

  Out += "  \"registry\": " + PM.Registry.toJson() + ",\n";

  Out += formatString(
      "  \"recovery\": {\"present\": %s, \"checkpoints\": %llu, "
      "\"rollbacks\": %llu, \"watchdog_fires\": %llu, \"ring_depth\": %llu, "
      "\"degraded\": %s, \"interpreter_fallback\": %s},\n",
      PM.Recovery.Present ? "true" : "false",
      static_cast<unsigned long long>(PM.Recovery.Checkpoints),
      static_cast<unsigned long long>(PM.Recovery.Rollbacks),
      static_cast<unsigned long long>(PM.Recovery.WatchdogFires),
      static_cast<unsigned long long>(PM.Recovery.RingDepth),
      PM.Recovery.Degraded ? "true" : "false",
      PM.Recovery.InterpreterFallback ? "true" : "false");

  if (PM.Propagation.Present) {
    Out += formatString(
        "  \"propagation\": {\"present\": true, \"class\": \"%s\", "
        "\"diverged\": %s, \"divergence_ordinal\": %llu, "
        "\"divergence_key\": %llu, \"divergence_pc\": \"%s\", "
        "\"tainted_blocks\": %llu, \"checks_crossed\": %llu, "
        "\"insns_crossed\": %llu},\n",
        PM.Propagation.Class.c_str(),
        PM.Propagation.Diverged ? "true" : "false",
        static_cast<unsigned long long>(PM.Propagation.DivergenceOrdinal),
        static_cast<unsigned long long>(PM.Propagation.DivergenceKey),
        hexString(PM.Propagation.DivergencePC).c_str(),
        static_cast<unsigned long long>(PM.Propagation.TaintedBlocks),
        static_cast<unsigned long long>(PM.Propagation.ChecksCrossed),
        static_cast<unsigned long long>(PM.Propagation.InsnsCrossed));
  }

  appendStringField(Out, "guest_disasm", PM.GuestDisasm);
  appendStringField(Out, "host_disasm", PM.HostDisasm);

  Out += "  \"annotations\": {";
  for (size_t I = 0; I < PM.Annotations.size(); ++I) {
    if (I)
      Out += ", ";
    Out += "\"";
    appendEscaped(Out, PM.Annotations[I].first);
    Out += formatString(
        "\": %llu",
        static_cast<unsigned long long>(PM.Annotations[I].second));
  }
  Out += "},\n";

  appendStringField(Out, "note", PM.Note, /*Comma=*/false);
  Out += "}\n";
  return Out;
}

std::string FlightRecorder::write(const PostMortem &PM) {
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  if (EC) {
    LastError = formatString("cannot create directory '%s': %s", Dir.c_str(),
                             EC.message().c_str());
    return "";
  }

  std::string Path =
      formatString("%s/%s%04llu.json", Dir.c_str(), Prefix.c_str(),
                   static_cast<unsigned long long>(Seq));
  std::string Json = renderJson(PM, MaxEvents);

  FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    LastError = formatString("cannot open '%s' for writing", Path.c_str());
    return "";
  }
  size_t Written = std::fwrite(Json.data(), 1, Json.size(), F);
  std::fclose(F);
  if (Written != Json.size()) {
    LastError = formatString("short write to '%s'", Path.c_str());
    return "";
  }

  ++Seq;
  LastPath = Path;
  LastError.clear();
  return Path;
}
