//===- Trace.h - Structured event tracing -----------------------*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded ring buffer of typed trace records. Subsystems append
/// events (block translated, block chained, trap raised, checkpoint,
/// rollback, degradation step, ...) timestamped with the guest
/// instruction count, which keeps traces deterministic across runs.
/// The buffer can be rendered as plain text or as Chrome
/// `trace_event` JSON loadable in about://tracing / Perfetto.
///
//===----------------------------------------------------------------------===//

#ifndef CFED_TELEMETRY_TRACE_H
#define CFED_TELEMETRY_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

namespace cfed {
namespace telemetry {

enum class TraceEventKind : uint8_t {
  BlockTranslated,     ///< A guest block was translated into the cache.
  BlockChained,        ///< A trampoline exit was patched to a direct jump.
  CacheFlush,          ///< The code cache was invalidated.
  TrapRaised,          ///< A detection fired (Category carries A-F).
  CheckpointTaken,     ///< Recovery saved a safe-point checkpoint.
  Rollback,            ///< Recovery restored a checkpoint.
  WatchdogFire,        ///< The errant-flow watchdog expired.
  DegradationStep,     ///< The degradation ladder advanced a rung.
  InterpreterFallback, ///< Translation abandoned; interpreting guest code.
  CampaignInjection,   ///< A fault-campaign injection completed.
  IntegrityScrub,      ///< The scrubber walked the code cache.
  BlockQuarantined,    ///< An integrity mismatch evicted a cached block.
  TracePromoted,       ///< A hot unit was retranslated as an optimized
                       ///< trace by the opt tier.
  AttackApplied        ///< An adversarial campaign mutated guest-visible
                       ///< state (stack/IBTC/code) at its planned instant.
};

/// Stable lowercase names used in both sinks.
const char *getTraceEventName(TraceEventKind Kind);

struct TraceEvent {
  uint64_t Ts = 0; ///< Guest instructions executed when recorded.
  TraceEventKind Kind = TraceEventKind::BlockTranslated;
  /// Kind-specific tag: branch-error category name for TrapRaised,
  /// outcome name for CampaignInjection, ladder rung for
  /// DegradationStep. May be null.
  const char *Category = nullptr;
  uint64_t Addr = 0; ///< Guest address the event concerns (0 if none).
  uint64_t Arg = 0;  ///< Kind-specific payload (size, depth, count...).

  bool operator==(const TraceEvent &) const = default;
};

/// Fixed-capacity ring of TraceEvents. Oldest records are overwritten
/// once the buffer is full; dropped() reports how many were lost.
/// Single-threaded by design: each Dbt/campaign instance owns at most
/// one tracer and records from its own thread only.
class EventTracer {
public:
  explicit EventTracer(size_t Capacity);

  void record(uint64_t Ts, TraceEventKind Kind, const char *Category = nullptr,
              uint64_t Addr = 0, uint64_t Arg = 0);

  /// Buffered events, oldest first.
  std::vector<TraceEvent> events() const;
  size_t size() const { return Total < Cap ? Total : Cap; }
  size_t capacity() const { return Cap; }
  /// Events overwritten because the ring was full.
  uint64_t dropped() const { return Total < Cap ? 0 : Total - Cap; }
  uint64_t totalRecorded() const { return Total; }
  void clear() { Total = 0; }

  /// One line per event: "ts=N kind addr=0x... [cat] [arg=N]".
  std::string renderText() const;
  /// Chrome trace_event JSON: {"traceEvents":[...],"displayTimeUnit":"ms"}.
  /// Events are instant events ("ph":"i") with ts in guest instructions.
  std::string renderChromeJson() const;

private:
  size_t Cap;
  uint64_t Total = 0;
  std::vector<TraceEvent> Buf;
};

} // namespace telemetry
} // namespace cfed

#endif // CFED_TELEMETRY_TRACE_H
