//===- Cfg.h - Binary-level control-flow graph ------------------*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Basic-block discovery and control-flow graph construction over encoded
/// VISA code. The CFG serves three clients:
///
///  * the eager (whole-program) translation mode, which CFCSS and ECCA
///    need for their compile-time signature assignment;
///  * the RET-BE checking policy, which places checks in blocks that have
///    back edges (Section 6);
///  * the fault classifier, which decides whether an erroneous branch
///    target is the beginning or the middle of the same or another block
///    (the category B/C/D/E split of Figure 1).
///
//===----------------------------------------------------------------------===//

#ifndef CFED_CFG_CFG_H
#define CFED_CFG_CFG_H

#include "isa/Isa.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cfed {

/// One discovered basic block.
struct BasicBlock {
  /// Address of the first instruction.
  uint64_t Addr = 0;
  /// Size in bytes (always a multiple of InsnSize).
  uint64_t Size = 0;
  /// Decoded instructions.
  std::vector<Instruction> Insns;
  /// Control-flow kind of the last instruction (OpKind::None when the
  /// block simply falls into the next leader).
  OpKind TermKind = OpKind::None;
  /// Direct branch / call target, 0 if none.
  uint64_t TakenTarget = 0;
  bool HasTakenTarget = false;
  /// Fall-through successor address, 0 if none (unconditional transfers,
  /// Ret, Halt, Trap have no fall-through).
  uint64_t FallThrough = 0;
  bool HasFallThrough = false;
  /// Successor addresses of Ret blocks, filled in by
  /// Cfg::computeRetSuccessors().
  std::vector<uint64_t> RetSuccessors;

  /// Address one past the last instruction.
  uint64_t endAddr() const { return Addr + Size; }
  /// Address of the last (terminating) instruction.
  uint64_t termAddr() const { return Addr + Size - InsnSize; }
  /// True if the block ends in a conditional branch.
  bool isConditional() const {
    return TermKind == OpKind::CondJump || TermKind == OpKind::RegZeroJump;
  }
  /// True if any successor lies at or before this block (a backward
  /// branch — the binary-level back-edge test used by the RET-BE policy).
  bool hasBackEdge() const {
    return HasTakenTarget && TakenTarget <= Addr;
  }
};

/// A whole-program CFG keyed by block start address.
class Cfg {
public:
  /// Discovers blocks in [Base, Base+Size). Leaders are: \p Entry,
  /// every address in \p ExtraLeaders (the assembler's code-label side
  /// table, which covers all indirect-branch targets), every direct
  /// branch/call target, and every instruction following a terminator.
  static Cfg build(const uint8_t *Code, uint64_t Size, uint64_t Base,
                   uint64_t Entry, const std::vector<uint64_t> &ExtraLeaders);

  /// Blocks ordered by address.
  const std::map<uint64_t, BasicBlock> &blocks() const { return Blocks; }
  std::map<uint64_t, BasicBlock> &blocks() { return Blocks; }

  /// Returns the block starting exactly at \p Addr, or nullptr.
  const BasicBlock *blockAt(uint64_t Addr) const;

  /// Returns the block whose byte range contains \p Addr, or nullptr.
  const BasicBlock *blockContaining(uint64_t Addr) const;

  /// Entry address used at build time.
  uint64_t entry() const { return Entry; }

  /// Start of the analyzed code region.
  uint64_t codeBase() const { return Base; }
  /// One past the end of the analyzed code region.
  uint64_t codeEnd() const { return Base + CodeSize; }

  /// Fills BasicBlock::RetSuccessors: a Ret block's successors are the
  /// return sites of every call to the function containing it. Requires
  /// all calls to be direct; returns false (leaving the CFG unchanged) if
  /// an indirect call or an unresolvable Ret is present. Functions are
  /// the address ranges reachable from call targets and the entry.
  bool computeRetSuccessors();

  /// Returns the addresses of every predecessor of block \p Addr
  /// (via taken, fall-through and ret edges).
  std::vector<uint64_t> predecessorsOf(uint64_t Addr) const;

  /// Renders the CFG in Graphviz DOT format.
  std::string toDot() const;

  /// Checks the repository's flag discipline: every FLAGS-reading
  /// instruction (Jcc, CMov, SetCC) must be preceded, within its own
  /// basic block, by a FLAGS-writing instruction — i.e. flags never live
  /// across block boundaries. Techniques whose prologues clobber flags
  /// at block entries (CFCSS, ECCA, and ECF's Figure 4 check) are only
  /// sound on programs satisfying this. Returns the addresses of
  /// violating instructions (empty = clean).
  std::vector<uint64_t> findFlagDisciplineViolations() const;

  /// Checks the stronger discipline the data-flow checking extension
  /// needs: no FLAGS-reading instruction may consume flags produced
  /// before an intervening memory-egress instruction (store, push, Out)
  /// — the compare-before-store sequences clobber FLAGS at those points.
  /// Returns the addresses of violating flag readers (empty = clean).
  std::vector<uint64_t> findFlagsAcrossStoreViolations() const;

private:
  std::map<uint64_t, BasicBlock> Blocks;
  uint64_t Base = 0;
  uint64_t CodeSize = 0;
  uint64_t Entry = 0;
};

} // namespace cfed

#endif // CFED_CFG_CFG_H
