//===- Cfg.cpp - Binary-level control-flow graph ------------------------------===//

#include "cfg/Cfg.h"

#include "support/Diagnostics.h"
#include "support/Format.h"

#include <algorithm>
#include <set>

using namespace cfed;

Cfg Cfg::build(const uint8_t *Code, uint64_t Size, uint64_t Base,
               uint64_t Entry, const std::vector<uint64_t> &ExtraLeaders) {
  assert(Size % InsnSize == 0 && "code size must be instruction-aligned");
  Cfg Graph;
  Graph.Base = Base;
  Graph.CodeSize = Size;
  Graph.Entry = Entry;

  uint64_t NumInsns = Size / InsnSize;
  std::vector<Instruction> Decoded;
  Decoded.reserve(NumInsns);
  for (uint64_t Index = 0; Index < NumInsns; ++Index) {
    auto I = Instruction::decode(Code + Index * InsnSize);
    if (!I)
      reportFatalErrorf("undecodable instruction at 0x%llx while building CFG",
                        static_cast<unsigned long long>(Base + Index * InsnSize));
    Decoded.push_back(*I);
  }

  auto InRange = [&](uint64_t Addr) {
    return Addr >= Base && Addr < Base + Size && (Addr - Base) % InsnSize == 0;
  };

  std::set<uint64_t> Leaders;
  if (InRange(Entry))
    Leaders.insert(Entry);
  Leaders.insert(Base);
  for (uint64_t Leader : ExtraLeaders)
    if (InRange(Leader))
      Leaders.insert(Leader);
  for (uint64_t Index = 0; Index < NumInsns; ++Index) {
    const Instruction &I = Decoded[Index];
    uint64_t Addr = Base + Index * InsnSize;
    if (isBlockTerminator(I.Op)) {
      if (InRange(Addr + InsnSize))
        Leaders.insert(Addr + InsnSize);
      if (hasBranchOffset(I.Op)) {
        uint64_t Target = I.branchTarget(Addr);
        if (InRange(Target))
          Leaders.insert(Target);
      }
    }
  }

  std::vector<uint64_t> Sorted(Leaders.begin(), Leaders.end());
  for (size_t LeaderIndex = 0; LeaderIndex < Sorted.size(); ++LeaderIndex) {
    uint64_t Start = Sorted[LeaderIndex];
    uint64_t Limit = LeaderIndex + 1 < Sorted.size() ? Sorted[LeaderIndex + 1]
                                                     : Base + Size;
    BasicBlock Block;
    Block.Addr = Start;
    uint64_t Addr = Start;
    while (Addr < Limit) {
      const Instruction &I = Decoded[(Addr - Base) / InsnSize];
      Block.Insns.push_back(I);
      Addr += InsnSize;
      if (isBlockTerminator(I.Op)) {
        Block.TermKind = getOpcodeKind(I.Op);
        break;
      }
    }
    Block.Size = Addr - Start;
    if (Block.Insns.empty())
      continue;

    const Instruction &Term = Block.Insns.back();
    switch (Block.TermKind) {
    case OpKind::None: // Fell into the next leader.
      Block.FallThrough = Addr;
      Block.HasFallThrough = InRange(Addr);
      break;
    case OpKind::Jump:
      Block.TakenTarget = Term.branchTarget(Block.termAddr());
      Block.HasTakenTarget = true;
      break;
    case OpKind::CondJump:
    case OpKind::RegZeroJump:
      Block.TakenTarget = Term.branchTarget(Block.termAddr());
      Block.HasTakenTarget = true;
      Block.FallThrough = Addr;
      Block.HasFallThrough = InRange(Addr);
      break;
    case OpKind::Call:
      // Control enters the callee; the return site is reached through the
      // callee's Ret, not by falling through.
      Block.TakenTarget = Term.branchTarget(Block.termAddr());
      Block.HasTakenTarget = true;
      break;
    case OpKind::IndJump:
    case OpKind::IndCall:
    case OpKind::Ret:
    case OpKind::Halt:
    case OpKind::Trap:
    case OpKind::DbtExit:
    case OpKind::DbtExitInd:
      break;
    }
    Graph.Blocks.emplace(Start, std::move(Block));
  }
  return Graph;
}

const BasicBlock *Cfg::blockAt(uint64_t Addr) const {
  auto It = Blocks.find(Addr);
  return It == Blocks.end() ? nullptr : &It->second;
}

const BasicBlock *Cfg::blockContaining(uint64_t Addr) const {
  auto It = Blocks.upper_bound(Addr);
  if (It == Blocks.begin())
    return nullptr;
  --It;
  const BasicBlock &Block = It->second;
  return Addr < Block.endAddr() ? &Block : nullptr;
}

bool Cfg::computeRetSuccessors() {
  // Indirect control flow defeats the static call-graph analysis.
  for (const auto &[Addr, Block] : Blocks)
    if (Block.TermKind == OpKind::IndCall || Block.TermKind == OpKind::IndJump)
      return false;

  // Function entries: the program entry plus every direct call target.
  // Collect the call sites per entry as we go.
  std::map<uint64_t, std::vector<uint64_t>> ReturnSites; // entry -> sites
  std::set<uint64_t> FuncEntries;
  FuncEntries.insert(Entry);
  for (const auto &[Addr, Block] : Blocks) {
    if (Block.TermKind != OpKind::Call)
      continue;
    FuncEntries.insert(Block.TakenTarget);
    ReturnSites[Block.TakenTarget].push_back(Block.endAddr());
  }

  // Flood-fill intraprocedural reachability from each function entry.
  // Call edges are not followed (they enter another function); the return
  // site after a call belongs to the caller.
  std::map<uint64_t, uint64_t> Owner; // block -> function entry
  for (uint64_t FuncEntry : FuncEntries) {
    std::vector<uint64_t> Work = {FuncEntry};
    while (!Work.empty()) {
      uint64_t Addr = Work.back();
      Work.pop_back();
      auto It = Blocks.find(Addr);
      if (It == Blocks.end())
        continue;
      auto [OwnerIt, Inserted] = Owner.emplace(Addr, FuncEntry);
      if (!Inserted) {
        // A block shared between two functions makes the static ret
        // analysis ambiguous.
        if (OwnerIt->second != FuncEntry)
          return false;
        continue;
      }
      const BasicBlock &Block = It->second;
      if (Block.TermKind == OpKind::Call) {
        Work.push_back(Block.endAddr()); // Return site, same function.
        continue;
      }
      if (Block.HasTakenTarget)
        Work.push_back(Block.TakenTarget);
      if (Block.HasFallThrough)
        Work.push_back(Block.FallThrough);
    }
  }

  for (auto &[Addr, Block] : Blocks) {
    Block.RetSuccessors.clear();
    if (Block.TermKind != OpKind::Ret)
      continue;
    auto OwnerIt = Owner.find(Addr);
    if (OwnerIt == Owner.end())
      continue; // Unreachable ret block; no successors.
    auto SitesIt = ReturnSites.find(OwnerIt->second);
    if (SitesIt == ReturnSites.end()) {
      // A ret in the entry function returns to the host; no successors.
      if (OwnerIt->second == Entry)
        continue;
      return false;
    }
    Block.RetSuccessors = SitesIt->second;
    std::sort(Block.RetSuccessors.begin(), Block.RetSuccessors.end());
  }
  return true;
}

std::vector<uint64_t> Cfg::predecessorsOf(uint64_t Addr) const {
  std::vector<uint64_t> Preds;
  for (const auto &[PredAddr, Block] : Blocks) {
    bool IsPred = (Block.HasTakenTarget && Block.TakenTarget == Addr) ||
                  (Block.HasFallThrough && Block.FallThrough == Addr) ||
                  (Block.TermKind == OpKind::Call && Block.endAddr() == Addr);
    if (!IsPred)
      IsPred = std::binary_search(Block.RetSuccessors.begin(),
                                  Block.RetSuccessors.end(), Addr);
    if (IsPred)
      Preds.push_back(PredAddr);
  }
  return Preds;
}

std::vector<uint64_t> Cfg::findFlagDisciplineViolations() const {
  std::vector<uint64_t> Violations;
  for (const auto &[Addr, Block] : Blocks) {
    bool FlagsWritten = false;
    uint64_t InsnAddr = Addr;
    for (const Instruction &I : Block.Insns) {
      bool Reads = I.Op == Opcode::Jcc || I.Op == Opcode::CMov ||
                   I.Op == Opcode::SetCC;
      if (Reads && !FlagsWritten)
        Violations.push_back(InsnAddr);
      if (opcodeWritesFlags(I.Op))
        FlagsWritten = true;
      InsnAddr += InsnSize;
    }
  }
  return Violations;
}

std::vector<uint64_t> Cfg::findFlagsAcrossStoreViolations() const {
  auto IsEgress = [](Opcode Op) {
    switch (Op) {
    case Opcode::St:
    case Opcode::StB:
    case Opcode::FSt:
    case Opcode::Push:
    case Opcode::Out:
    case Opcode::OutC:
      return true;
    default:
      return false;
    }
  };
  std::vector<uint64_t> Violations;
  for (const auto &[Addr, Block] : Blocks) {
    bool EgressSinceWrite = false;
    uint64_t InsnAddr = Addr;
    for (const Instruction &I : Block.Insns) {
      bool Reads = I.Op == Opcode::Jcc || I.Op == Opcode::CMov ||
                   I.Op == Opcode::SetCC;
      if (Reads && EgressSinceWrite)
        Violations.push_back(InsnAddr);
      if (opcodeWritesFlags(I.Op))
        EgressSinceWrite = false;
      else if (IsEgress(I.Op))
        EgressSinceWrite = true;
      InsnAddr += InsnSize;
    }
  }
  return Violations;
}

std::string Cfg::toDot() const {
  std::string Out = "digraph cfg {\n  node [shape=box fontname=monospace];\n";
  for (const auto &[Addr, Block] : Blocks) {
    Out += formatString("  b%llx [label=\"0x%llx (%zu insns)%s\"];\n",
                        static_cast<unsigned long long>(Addr),
                        static_cast<unsigned long long>(Addr),
                        Block.Insns.size(),
                        Block.hasBackEdge() ? "\\nback-edge" : "");
    if (Block.HasTakenTarget)
      Out += formatString("  b%llx -> b%llx;\n",
                          static_cast<unsigned long long>(Addr),
                          static_cast<unsigned long long>(Block.TakenTarget));
    if (Block.HasFallThrough)
      Out += formatString("  b%llx -> b%llx [style=dashed];\n",
                          static_cast<unsigned long long>(Addr),
                          static_cast<unsigned long long>(Block.FallThrough));
    for (uint64_t Succ : Block.RetSuccessors)
      Out += formatString("  b%llx -> b%llx [style=dotted];\n",
                          static_cast<unsigned long long>(Addr),
                          static_cast<unsigned long long>(Succ));
  }
  Out += "}\n";
  return Out;
}
