//===- Assembler.h - Two-pass VISA assembler --------------------*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A two-pass assembler for textual VISA programs. Produces the code and
/// data images, the entry point, the symbol table, and the code-label side
/// table that enables whole-program (eager) translation — the capability
/// that lets this repository implement CFCSS/ECCA faithfully even though
/// the paper's DBT could not (Section 5: "we do not implement the
/// techniques that need the CFG").
///
/// Syntax:
///   ; or # start a comment
///   label:            defines a label at the current location
///   .entry NAME       sets the entry point (default: start of code)
///   .data / .code     switch sections
///   .word A, B, ...   64-bit words; labels allowed (jump/call tables)
///   .byte A, B, ...   bytes
///   .space N          N zero bytes
///   .ascii "..."      bytes with C escapes
///   .align N          align the current section counter
///
/// Immediate operands accept decimal, hex (0x...), character ('c') and
/// label references. Branch-offset instructions resolve labels
/// PC-relative; all other uses resolve to absolute addresses.
///
//===----------------------------------------------------------------------===//

#ifndef CFED_ASM_ASSEMBLER_H
#define CFED_ASM_ASSEMBLER_H

#include "isa/Isa.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cfed {

/// One assembly diagnostic.
struct AsmError {
  unsigned Line = 0;
  std::string Message;
};

/// A fully assembled program image.
struct AsmProgram {
  /// Encoded code bytes, to be loaded at CodeBase.
  std::vector<uint8_t> Code;
  /// Data bytes, to be loaded at DataBase.
  std::vector<uint8_t> Data;
  /// Entry point (absolute guest address).
  uint64_t Entry = 0;
  /// All symbols (absolute guest addresses).
  std::map<std::string, uint64_t> Symbols;
  /// Sorted absolute addresses of labels in the code section: potential
  /// basic-block leaders, including every indirect-branch target.
  std::vector<uint64_t> CodeLabels;
};

/// Result of assembling; success iff Errors is empty.
struct AsmResult {
  AsmProgram Program;
  std::vector<AsmError> Errors;

  bool succeeded() const { return Errors.empty(); }
  /// Formats all errors into one string for reporting.
  std::string errorText() const;
};

/// Assembler options.
struct AsmOptions {
  /// Permit guest code to name the instrumentation-reserved registers
  /// (r16..r19). Off by default: those registers belong to the DBT.
  bool AllowReservedRegs = false;
};

/// Assembles \p Source into a program image.
AsmResult assembleProgram(const std::string &Source,
                          const AsmOptions &Options = AsmOptions());

} // namespace cfed

#endif // CFED_ASM_ASSEMBLER_H
