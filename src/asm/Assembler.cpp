//===- Assembler.cpp - Two-pass VISA assembler -------------------------------===//

#include "asm/Assembler.h"

#include "support/Format.h"
#include "vm/Layout.h"

#include <algorithm>
#include <cctype>
#include <unordered_map>

using namespace cfed;

std::string AsmResult::errorText() const {
  std::string Out;
  for (const AsmError &Error : Errors)
    Out += formatString("line %u: %s\n", Error.Line, Error.Message.c_str());
  return Out;
}

namespace {

/// An operand before symbol resolution.
struct PendingOperand {
  bool IsLabel = false;
  std::string Label;
  int64_t Value = 0;
};

/// One parsed instruction awaiting encoding.
struct PendingInsn {
  unsigned Line = 0;
  Opcode Op = Opcode::Nop;
  uint8_t Fields[3] = {0, 0, 0};
  PendingOperand Imm;
  bool HasImm = false;
  uint64_t Addr = 0; // Absolute address of this instruction.
};

/// One pending data item in the data section.
struct PendingData {
  unsigned Line = 0;
  enum class Kind { Word, Byte } ItemKind = Kind::Word;
  PendingOperand Value;
  uint64_t Offset = 0; // Offset within the data image.
};

class Assembler {
public:
  Assembler(const std::string &Source, const AsmOptions &Options)
      : Source(Source), Options(Options) {
    buildMnemonicMap();
  }

  AsmResult run();

private:
  void buildMnemonicMap();
  void parseLine(const std::string &Line);
  void parseDirective(const std::string &Name, const std::string &Rest);
  void parseInstruction(const std::string &Mnemonic, const std::string &Rest);
  bool parseOperandToken(const std::string &Token, PendingOperand &Out);
  bool parseMemOperand(const std::string &Token, uint8_t &Reg,
                       PendingOperand &Imm);
  std::vector<std::string> splitOperands(const std::string &Rest);
  void error(const std::string &Message) {
    Result.Errors.push_back({CurrentLine, Message});
  }
  void defineLabel(const std::string &Name);
  void emitDataBytes(const std::vector<uint8_t> &Bytes);
  bool resolveOperand(const PendingOperand &Operand, unsigned Line,
                      int64_t &Value);

  const std::string &Source;
  AsmOptions Options;
  AsmResult Result;
  unsigned CurrentLine = 0;
  bool InData = false;
  uint64_t CodeCounter = 0; // Bytes emitted into the code section.
  uint64_t DataCounter = 0;
  std::vector<PendingInsn> Insns;
  std::vector<PendingData> DataFixups;
  std::vector<uint8_t> DataImage;
  std::string EntryLabel;
  unsigned EntryLine = 0;
  std::unordered_map<std::string, Opcode> MnemonicMap;
};

void Assembler::buildMnemonicMap() {
  for (unsigned I = 0; I < getNumOpcodes(); ++I) {
    Opcode Op = static_cast<Opcode>(I);
    MnemonicMap[getOpcodeMnemonic(Op)] = Op;
  }
}

static std::string trim(const std::string &Text) {
  size_t Begin = Text.find_first_not_of(" \t\r");
  if (Begin == std::string::npos)
    return std::string();
  size_t End = Text.find_last_not_of(" \t\r");
  return Text.substr(Begin, End - Begin + 1);
}

static bool isIdentChar(char Ch) {
  return std::isalnum(static_cast<unsigned char>(Ch)) || Ch == '_' ||
         Ch == '.' || Ch == '$';
}

static bool isIdentifier(const std::string &Text) {
  if (Text.empty() || std::isdigit(static_cast<unsigned char>(Text[0])))
    return false;
  for (char Ch : Text)
    if (!isIdentChar(Ch))
      return false;
  return true;
}

/// Parses an integer literal: decimal, hex, or a quoted character.
static bool parseIntLiteral(const std::string &Text, int64_t &Value) {
  if (Text.empty())
    return false;
  if (Text.size() >= 3 && Text.front() == '\'' && Text.back() == '\'') {
    std::string Inner = Text.substr(1, Text.size() - 2);
    if (Inner.size() == 1) {
      Value = static_cast<unsigned char>(Inner[0]);
      return true;
    }
    if (Inner.size() == 2 && Inner[0] == '\\') {
      switch (Inner[1]) {
      case 'n':
        Value = '\n';
        return true;
      case 't':
        Value = '\t';
        return true;
      case '0':
        Value = 0;
        return true;
      case '\\':
        Value = '\\';
        return true;
      case '\'':
        Value = '\'';
        return true;
      default:
        return false;
      }
    }
    return false;
  }
  size_t Pos = 0;
  bool Negative = false;
  if (Text[Pos] == '-' || Text[Pos] == '+') {
    Negative = Text[Pos] == '-';
    ++Pos;
  }
  if (Pos >= Text.size())
    return false;
  int Base = 10;
  if (Text.size() >= Pos + 2 && Text[Pos] == '0' &&
      (Text[Pos + 1] == 'x' || Text[Pos + 1] == 'X')) {
    Base = 16;
    Pos += 2;
  }
  if (Pos >= Text.size())
    return false;
  uint64_t Magnitude = 0;
  for (; Pos < Text.size(); ++Pos) {
    char Ch = Text[Pos];
    int Digit;
    if (Ch >= '0' && Ch <= '9')
      Digit = Ch - '0';
    else if (Base == 16 && Ch >= 'a' && Ch <= 'f')
      Digit = Ch - 'a' + 10;
    else if (Base == 16 && Ch >= 'A' && Ch <= 'F')
      Digit = Ch - 'A' + 10;
    else
      return false;
    Magnitude = Magnitude * static_cast<uint64_t>(Base) +
                static_cast<uint64_t>(Digit);
  }
  Value = Negative ? -static_cast<int64_t>(Magnitude)
                   : static_cast<int64_t>(Magnitude);
  return true;
}

std::vector<std::string> Assembler::splitOperands(const std::string &Rest) {
  std::vector<std::string> Parts;
  std::string Current;
  int BracketDepth = 0;
  bool InString = false;
  for (char Ch : Rest) {
    if (Ch == '"')
      InString = !InString;
    if (Ch == '[')
      ++BracketDepth;
    if (Ch == ']')
      --BracketDepth;
    if (Ch == ',' && BracketDepth == 0 && !InString) {
      Parts.push_back(trim(Current));
      Current.clear();
      continue;
    }
    Current += Ch;
  }
  std::string Last = trim(Current);
  if (!Last.empty() || !Parts.empty())
    Parts.push_back(Last);
  return Parts;
}

bool Assembler::parseOperandToken(const std::string &Token,
                                  PendingOperand &Out) {
  int64_t Value;
  if (parseIntLiteral(Token, Value)) {
    Out.IsLabel = false;
    Out.Value = Value;
    return true;
  }
  if (isIdentifier(Token)) {
    Out.IsLabel = true;
    Out.Label = Token;
    return true;
  }
  return false;
}

bool Assembler::parseMemOperand(const std::string &Token, uint8_t &Reg,
                                PendingOperand &Imm) {
  // Forms: [reg], [reg+imm], [reg-imm], [reg+label].
  if (Token.size() < 3 || Token.front() != '[' || Token.back() != ']')
    return false;
  std::string Inner = trim(Token.substr(1, Token.size() - 2));
  size_t Split = std::string::npos;
  // Find the +/- separating base register and displacement (skip a leading
  // sign inside the displacement by searching from position 1).
  for (size_t I = 1; I < Inner.size(); ++I) {
    if (Inner[I] == '+' || Inner[I] == '-') {
      Split = I;
      break;
    }
  }
  std::string RegText = trim(Split == std::string::npos
                                 ? Inner
                                 : Inner.substr(0, Split));
  auto RegNum = parseRegName(RegText);
  if (!RegNum)
    return false;
  Reg = static_cast<uint8_t>(*RegNum);
  if (Split == std::string::npos) {
    Imm.IsLabel = false;
    Imm.Value = 0;
    return true;
  }
  std::string DispText = trim(Inner.substr(Split));
  if (!DispText.empty() && DispText[0] == '+')
    DispText = trim(DispText.substr(1));
  return parseOperandToken(DispText, Imm);
}

void Assembler::defineLabel(const std::string &Name) {
  if (!isIdentifier(Name)) {
    error(formatString("invalid label name '%s'", Name.c_str()));
    return;
  }
  uint64_t Addr =
      InData ? DataBase + DataCounter : CodeBase + CodeCounter;
  auto [It, Inserted] = Result.Program.Symbols.emplace(Name, Addr);
  (void)It;
  if (!Inserted) {
    error(formatString("duplicate label '%s'", Name.c_str()));
    return;
  }
  if (!InData)
    Result.Program.CodeLabels.push_back(Addr);
}

void Assembler::emitDataBytes(const std::vector<uint8_t> &Bytes) {
  DataImage.insert(DataImage.end(), Bytes.begin(), Bytes.end());
  DataCounter += Bytes.size();
}

void Assembler::parseDirective(const std::string &Name,
                               const std::string &Rest) {
  if (Name == ".data") {
    InData = true;
    return;
  }
  if (Name == ".code" || Name == ".text") {
    InData = false;
    return;
  }
  if (Name == ".entry") {
    std::string Label = trim(Rest);
    if (!isIdentifier(Label)) {
      error(".entry expects a label name");
      return;
    }
    EntryLabel = Label;
    EntryLine = CurrentLine;
    return;
  }
  if (Name == ".align") {
    int64_t Alignment;
    if (!parseIntLiteral(trim(Rest), Alignment) || Alignment <= 0 ||
        (Alignment & (Alignment - 1)) != 0) {
      error(".align expects a positive power of two");
      return;
    }
    uint64_t &Counter = InData ? DataCounter : CodeCounter;
    uint64_t Aligned = (Counter + Alignment - 1) &
                       ~static_cast<uint64_t>(Alignment - 1);
    if (InData) {
      DataImage.resize(Aligned, 0);
      DataCounter = Aligned;
    } else if (Aligned != Counter) {
      error(".align that pads code is not supported");
    }
    return;
  }
  if (!InData && (Name == ".word" || Name == ".byte" || Name == ".space" ||
                  Name == ".ascii")) {
    error(formatString("%s is only valid in the .data section",
                       Name.c_str()));
    return;
  }
  if (Name == ".space") {
    int64_t Count;
    if (!parseIntLiteral(trim(Rest), Count) || Count < 0) {
      error(".space expects a non-negative size");
      return;
    }
    emitDataBytes(std::vector<uint8_t>(static_cast<size_t>(Count), 0));
    return;
  }
  if (Name == ".ascii") {
    std::string Text = trim(Rest);
    if (Text.size() < 2 || Text.front() != '"' || Text.back() != '"') {
      error(".ascii expects a quoted string");
      return;
    }
    std::vector<uint8_t> Bytes;
    for (size_t I = 1; I + 1 < Text.size(); ++I) {
      char Ch = Text[I];
      if (Ch == '\\' && I + 2 < Text.size()) {
        ++I;
        switch (Text[I]) {
        case 'n':
          Ch = '\n';
          break;
        case 't':
          Ch = '\t';
          break;
        case '0':
          Ch = '\0';
          break;
        case '\\':
          Ch = '\\';
          break;
        case '"':
          Ch = '"';
          break;
        default:
          error(formatString("unknown escape '\\%c'", Text[I]));
          continue;
        }
      }
      Bytes.push_back(static_cast<uint8_t>(Ch));
    }
    emitDataBytes(Bytes);
    return;
  }
  if (Name == ".word") {
    // No implicit alignment: VISA memory supports unaligned access, and
    // labels bind before the directive runs. Use .align when layout
    // matters.
    for (const std::string &Token : splitOperands(Rest)) {
      PendingOperand Operand;
      if (!parseOperandToken(Token, Operand)) {
        error(formatString("bad .word operand '%s'", Token.c_str()));
        continue;
      }
      DataFixups.push_back({CurrentLine, PendingData::Kind::Word, Operand,
                            DataCounter});
      emitDataBytes(std::vector<uint8_t>(8, 0));
    }
    return;
  }
  if (Name == ".byte") {
    for (const std::string &Token : splitOperands(Rest)) {
      PendingOperand Operand;
      if (!parseOperandToken(Token, Operand)) {
        error(formatString("bad .byte operand '%s'", Token.c_str()));
        continue;
      }
      DataFixups.push_back({CurrentLine, PendingData::Kind::Byte, Operand,
                            DataCounter});
      emitDataBytes({0});
    }
    return;
  }
  error(formatString("unknown directive '%s'", Name.c_str()));
}

void Assembler::parseInstruction(const std::string &Mnemonic,
                                 const std::string &Rest) {
  if (InData) {
    error("instructions are not allowed in the .data section");
    return;
  }
  auto It = MnemonicMap.find(Mnemonic);
  if (It == MnemonicMap.end()) {
    error(formatString("unknown mnemonic '%s'", Mnemonic.c_str()));
    return;
  }
  PendingInsn Insn;
  Insn.Line = CurrentLine;
  Insn.Op = It->second;
  Insn.Addr = CodeBase + CodeCounter;

  const char *Spec = getOpcodeSpec(Insn.Op);
  std::vector<std::string> Operands = splitOperands(Rest);
  size_t SpecLen = std::string(Spec).size();
  if (Operands.size() != SpecLen) {
    error(formatString("'%s' expects %zu operand(s), got %zu", Mnemonic.c_str(),
                       SpecLen, Operands.size()));
    return;
  }

  unsigned FieldIndex = 0;
  auto BindReg = [&](const std::string &Token, bool FpReg) -> bool {
    if (FpReg) {
      if (Token.size() < 2 || Token[0] != 'f')
        return false;
      int64_t Num;
      if (!parseIntLiteral(Token.substr(1), Num) || Num < 0 ||
          Num >= static_cast<int64_t>(NumFpRegs))
        return false;
      if (Num >= static_cast<int64_t>(NumGuestFpRegs) &&
          !Options.AllowReservedRegs) {
        error(formatString("register '%s' is reserved for instrumentation",
                           Token.c_str()));
        return true;
      }
      Insn.Fields[FieldIndex++] = static_cast<uint8_t>(Num);
      return true;
    }
    auto Reg = parseRegName(Token);
    if (!Reg)
      return false;
    if (*Reg >= FirstReservedReg && !Options.AllowReservedRegs) {
      error(formatString("register '%s' is reserved for instrumentation",
                         Token.c_str()));
      return true; // Error already reported; keep parsing.
    }
    Insn.Fields[FieldIndex++] = static_cast<uint8_t>(*Reg);
    return true;
  };

  for (size_t OpIndex = 0; OpIndex < SpecLen; ++OpIndex) {
    const std::string &Token = Operands[OpIndex];
    switch (Spec[OpIndex]) {
    case 'r':
      if (!BindReg(Token, /*FpReg=*/false))
        error(formatString("bad register operand '%s'", Token.c_str()));
      break;
    case 'f':
      if (!BindReg(Token, /*FpReg=*/true))
        error(formatString("bad fp register operand '%s'", Token.c_str()));
      break;
    case 'c': {
      auto CC = parseCondCode(Token);
      if (!CC) {
        error(formatString("bad condition code '%s'", Token.c_str()));
        break;
      }
      Insn.Fields[FieldIndex++] = static_cast<uint8_t>(*CC);
      break;
    }
    case 'i':
      if (!parseOperandToken(Token, Insn.Imm))
        error(formatString("bad immediate operand '%s'", Token.c_str()));
      Insn.HasImm = true;
      break;
    case 'm': {
      uint8_t Reg = 0;
      if (!parseMemOperand(Token, Reg, Insn.Imm)) {
        error(formatString("bad memory operand '%s'", Token.c_str()));
        break;
      }
      if (Reg >= FirstReservedReg && !Options.AllowReservedRegs)
        error(formatString("register r%u is reserved for instrumentation",
                           Reg));
      Insn.Fields[FieldIndex++] = Reg;
      Insn.HasImm = true;
      break;
    }
    default:
      error("internal: bad operand spec");
      break;
    }
  }

  Insns.push_back(std::move(Insn));
  CodeCounter += InsnSize;
}

void Assembler::parseLine(const std::string &RawLine) {
  // Strip comments (respecting string literals).
  std::string Line;
  bool InString = false;
  for (char Ch : RawLine) {
    if (Ch == '"')
      InString = !InString;
    if ((Ch == ';' || Ch == '#') && !InString)
      break;
    Line += Ch;
  }
  Line = trim(Line);
  if (Line.empty())
    return;

  // Peel off any leading labels.
  for (;;) {
    size_t Colon = Line.find(':');
    if (Colon == std::string::npos)
      break;
    std::string Maybe = trim(Line.substr(0, Colon));
    if (!isIdentifier(Maybe))
      break;
    defineLabel(Maybe);
    Line = trim(Line.substr(Colon + 1));
    if (Line.empty())
      return;
  }

  // Split mnemonic/directive from operands.
  size_t Space = Line.find_first_of(" \t");
  std::string Head =
      Space == std::string::npos ? Line : Line.substr(0, Space);
  std::string Rest =
      Space == std::string::npos ? std::string() : trim(Line.substr(Space));

  if (Head[0] == '.')
    parseDirective(Head, Rest);
  else
    parseInstruction(Head, Rest);
}

bool Assembler::resolveOperand(const PendingOperand &Operand, unsigned Line,
                               int64_t &Value) {
  if (!Operand.IsLabel) {
    Value = Operand.Value;
    return true;
  }
  auto It = Result.Program.Symbols.find(Operand.Label);
  if (It == Result.Program.Symbols.end()) {
    Result.Errors.push_back(
        {Line, formatString("undefined label '%s'", Operand.Label.c_str())});
    return false;
  }
  Value = static_cast<int64_t>(It->second);
  return true;
}

AsmResult Assembler::run() {
  size_t LineStart = 0;
  CurrentLine = 0;
  while (LineStart <= Source.size()) {
    size_t LineEnd = Source.find('\n', LineStart);
    if (LineEnd == std::string::npos)
      LineEnd = Source.size();
    ++CurrentLine;
    parseLine(Source.substr(LineStart, LineEnd - LineStart));
    LineStart = LineEnd + 1;
  }

  // Resolve the entry point.
  if (EntryLabel.empty()) {
    Result.Program.Entry = CodeBase;
  } else {
    auto It = Result.Program.Symbols.find(EntryLabel);
    if (It == Result.Program.Symbols.end())
      Result.Errors.push_back(
          {EntryLine,
           formatString("undefined entry label '%s'", EntryLabel.c_str())});
    else
      Result.Program.Entry = It->second;
  }

  // Pass 2: encode instructions with resolved operands.
  Result.Program.Code.resize(Insns.size() * InsnSize);
  for (size_t Index = 0; Index < Insns.size(); ++Index) {
    const PendingInsn &Pending = Insns[Index];
    Instruction Insn(Pending.Op, Pending.Fields[0], Pending.Fields[1],
                     Pending.Fields[2], 0);
    if (Pending.HasImm) {
      int64_t Value = 0;
      if (!resolveOperand(Pending.Imm, Pending.Line, Value))
        continue;
      if (Pending.Imm.IsLabel && hasBranchOffset(Pending.Op))
        Value -= static_cast<int64_t>(Pending.Addr + InsnSize);
      if (Value < INT32_MIN || Value > INT32_MAX) {
        Result.Errors.push_back(
            {Pending.Line, formatString("immediate %lld out of 32-bit range",
                                        static_cast<long long>(Value))});
        continue;
      }
      Insn.Imm = static_cast<int32_t>(Value);
    }
    Insn.encode(&Result.Program.Code[Index * InsnSize]);
  }

  // Resolve data fixups.
  Result.Program.Data = std::move(DataImage);
  for (const PendingData &Fixup : DataFixups) {
    int64_t Value = 0;
    if (!resolveOperand(Fixup.Value, Fixup.Line, Value))
      continue;
    if (Fixup.ItemKind == PendingData::Kind::Word) {
      uint64_t Bits = static_cast<uint64_t>(Value);
      for (unsigned ByteIndex = 0; ByteIndex < 8; ++ByteIndex)
        Result.Program.Data[Fixup.Offset + ByteIndex] =
            static_cast<uint8_t>(Bits >> (8 * ByteIndex));
    } else {
      Result.Program.Data[Fixup.Offset] = static_cast<uint8_t>(Value);
    }
  }

  std::sort(Result.Program.CodeLabels.begin(),
            Result.Program.CodeLabels.end());
  return std::move(Result);
}

} // namespace

AsmResult cfed::assembleProgram(const std::string &Source,
                                const AsmOptions &Options) {
  Assembler Asm(Source, Options);
  return Asm.run();
}
