//===- Recovery.h - Checkpoint/rollback error recovery ----------*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Detect → contain → recover: the layer the paper names as future work.
/// Detection (signature mismatches, execute-disable traps, illegal
/// instructions) only tells you the run is wrong; this subsystem makes the
/// run *survive*:
///
///  * Checkpointing — at safe points (sub-block prologue starts, where all
///    architectural state is guest state) the manager snapshots the
///    CpuState and starts a copy-on-write undo log of guest memory:
///    Memory's page-write observer hands it each page's pre-image on the
///    first write per epoch. A small ring of checkpoints is kept so a
///    detection that slipped past one checkpoint (errant flow crossing a
///    checkpoint trigger before being caught) can roll back deeper.
///
///  * Errant-flow watchdog — relaxed checking policies admit the Section 6
///    infinite-loop hazard: a corrupted branch can spin in checked-free
///    code forever. The watchdog bounds instructions-between-signature-
///    checks; exceeding the bound is treated exactly like a detection.
///
///  * Graceful degradation — rollback + re-execute cures transient faults.
///    For persistent ones the manager climbs a ladder: after
///    MaxSiteRollbacks rollbacks attributed to the same guest code region
///    it first quarantines and retranslates just that region's translation
///    unit (the self-integrity rung: a corrupted translation is surgically
///    replaced); if the same site keeps failing it flushes the code cache
///    and retranslates conservatively (chaining and superblocks off, AllBB
///    checks); after MaxTotalRollbacks total it
///    abandons translation entirely and finishes the run under the plain
///    interpreter on the guest pages, reporting a structured
///    RecoveryReport instead of dying in reportFatalError.
///
//===----------------------------------------------------------------------===//

#ifndef CFED_RECOVERY_RECOVERY_H
#define CFED_RECOVERY_RECOVERY_H

#include "dbt/Dbt.h"
#include "vm/Interp.h"
#include "vm/Memory.h"

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace cfed {

/// Tuning knobs for the recovery subsystem.
struct RecoveryConfig {
  /// Take a checkpoint at the first safe point after this many
  /// instructions since the previous checkpoint.
  uint64_t CheckpointInterval = 10000;
  /// Soft cap on undo-log bytes across the checkpoint ring; exceeding it
  /// forces a checkpoint (retiring the oldest ring entry and its log).
  uint64_t MemoryBudget = 16ull << 20;
  /// Errant-flow watchdog: maximum instructions between signature checks
  /// before the flow is declared errant (0 disables the watchdog).
  /// Detection latency is at most twice this bound (slice granularity).
  uint64_t WatchdogBound = 1000000;
  /// Rollbacks attributed to the same guest code region before the DBT is
  /// degraded to its conservative configuration.
  unsigned MaxSiteRollbacks = 2;
  /// Total rollbacks before giving up on translation and finishing the
  /// run under the plain interpreter.
  unsigned MaxTotalRollbacks = 6;
  /// Checkpoint ring depth (>= 1). Deeper rings survive detections that
  /// cross a checkpoint boundary before firing.
  unsigned MaxCheckpoints = 2;
};

/// What happened across a recovered run. This is the structured
/// alternative to reportFatalError the degradation ladder ends in.
struct RecoveryReport {
  /// True when the program ran to Halt (possibly after rollbacks).
  bool Completed = false;
  /// Final interpreter stop (the Halt, or whatever ended the run).
  StopInfo FinalStop;
  /// Guest-level attribution of FinalStop.PC.
  uint64_t GuestStopPC = 0;
  uint64_t NumCheckpoints = 0;
  uint64_t NumRollbacks = 0;
  uint64_t NumWatchdogFires = 0;
  /// The DBT was degraded to its conservative configuration.
  bool Degraded = false;
  /// The run finished under the plain interpreter (last ladder rung).
  bool InterpreterFallback = false;
  /// Diagnostic line for the first detection, empty for a clean run
  /// (see formatTrapDiagnostic).
  std::string FirstDetection;
  /// Instructions executed including all rolled-back work.
  uint64_t TotalExecuted = 0;
};

/// Drives an Interpreter + Dbt pair with checkpointing, watchdog
/// supervision and rollback recovery. Use after Dbt::load in place of
/// Dbt::run. Installs itself as the interpreter's PreInsnHook (forwarding
/// to any previously installed hook, so fault injectors compose) and as
/// the Memory's page-write observer for the duration of run().
class RecoveryManager : public PreInsnHook, public PageWriteObserver {
public:
  RecoveryManager(Interpreter &Interp, Dbt &Translator,
                  RecoveryConfig Config);
  ~RecoveryManager() override;

  /// Runs to completion with recovery. \p MaxInsns bounds forward
  /// progress (like Interpreter::run); total work including re-execution
  /// is additionally bounded by MaxInsns * (MaxTotalRollbacks + 2).
  RecoveryReport run(uint64_t MaxInsns);

  /// Attaches/detaches a flight recorder: every detection (trap,
  /// watchdog fire) and every ladder escalation (quarantine,
  /// degradation, interpreter fallback) then writes a post-mortem
  /// bundle. Also forwarded to the translator so integrity quarantines
  /// found by its scrubber/dispatch verifier are bundled too.
  void setFlightRecorder(telemetry::FlightRecorder *FR) {
    Recorder = FR;
    Translator.setFlightRecorder(FR);
  }

  // PreInsnHook: safe-point bookkeeping (checkpoints, watchdog anchors).
  void onInsn(uint64_t InsnAddr, const Instruction &I,
              CpuState &State) override;

  // PageWriteObserver: undo-log pre-image capture.
  void onPageDirtied(uint64_t PageBase, const uint8_t *OldBytes) override;

private:
  struct Checkpoint {
    uint64_t GuestPC = 0;
    CpuState State;
    uint64_t Insns = 0;
    uint64_t Cycles = 0;
    size_t OutputLen = 0;
    /// Page base -> pre-image of the page at checkpoint time, for every
    /// page written since this checkpoint (while it was newest).
    std::unordered_map<uint64_t, std::vector<uint8_t>> UndoLog;
    uint64_t UndoBytes = 0;
  };

  void takeCheckpoint(uint64_t GuestPC, uint64_t InsnsNow, uint64_t CyclesNow);
  /// Rolls back \p Depth checkpoints (1 = newest). Returns the guest PC
  /// of the restored checkpoint.
  uint64_t rollbackTo(size_t Depth);
  /// Handles one detection attributed to \p SiteKey; climbs the
  /// degradation ladder as counters dictate. \p Stop is the interpreter
  /// stop that triggered the detection (post-mortem context).
  void recover(uint64_t SiteKey, const StopInfo &Stop);
  void enterInterpreterFallback(const StopInfo &Stop);
  /// Writes a post-mortem bundle when a recorder is attached.
  void dumpPostMortem(const char *Reason, const StopInfo &Stop);
  uint64_t totalUndoBytes() const;

  Interpreter &Interp;
  Dbt &Translator;
  RecoveryConfig Config;
  RecoveryReport Report;

  // Registry-backed counters (the translator's registry), cached once.
  // The per-run RecoveryReport fields are kept alongside: the report is
  // this run's result object, the registry the cumulative telemetry.
  telemetry::Counter &CkptCounter;
  telemetry::Counter &RollbackCounter;
  telemetry::Counter &WatchdogCounter;
  telemetry::Counter &DegradeCounter;
  telemetry::Counter &FallbackCounter;

  std::deque<Checkpoint> Checkpoints;
  std::unordered_map<uint64_t, unsigned> SiteRollbacks;
  /// Sites already given the quarantine-retranslate rung; a second
  /// escalation at such a site climbs to degradeToConservative().
  std::unordered_set<uint64_t> QuarantinedSites;
  unsigned TotalRollbacks = 0;
  /// Instruction count at the newest checkpoint.
  uint64_t CheckpointInsns = 0;
  /// Instruction count when a signature check site last executed.
  uint64_t LastCheck = 0;
  bool Fallback = false;
  bool InRestore = false;
  PreInsnHook *SavedHook = nullptr;
  telemetry::FlightRecorder *Recorder = nullptr;
};

} // namespace cfed

#endif // CFED_RECOVERY_RECOVERY_H
