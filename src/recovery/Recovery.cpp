//===- Recovery.cpp - Checkpoint/rollback error recovery -------------------===//

#include "recovery/Recovery.h"

#include "support/Format.h"
#include "vm/Layout.h"

#include <algorithm>
#include <cassert>
#include <cstring>

using namespace cfed;

RecoveryManager::RecoveryManager(Interpreter &Interp, Dbt &Translator,
                                 RecoveryConfig Config)
    : Interp(Interp), Translator(Translator), Config(Config),
      CkptCounter(Translator.metrics().counter("recovery.checkpoints")),
      RollbackCounter(Translator.metrics().counter("recovery.rollbacks")),
      WatchdogCounter(
          Translator.metrics().counter("recovery.watchdog_fires")),
      DegradeCounter(Translator.metrics().counter("recovery.degradations")),
      FallbackCounter(
          Translator.metrics().counter("recovery.interp_fallbacks")) {
  if (this->Config.MaxCheckpoints == 0)
    this->Config.MaxCheckpoints = 1;
}

RecoveryManager::~RecoveryManager() = default;

void RecoveryManager::onPageDirtied(uint64_t PageBase,
                                    const uint8_t *OldBytes) {
  if (InRestore || Checkpoints.empty())
    return;
  Checkpoint &CP = Checkpoints.back();
  auto [It, Inserted] = CP.UndoLog.try_emplace(PageBase);
  if (!Inserted)
    return; // Already have this page's pre-image for this checkpoint.
  It->second.assign(OldBytes, OldBytes + PageSize);
  CP.UndoBytes += PageSize;
}

void RecoveryManager::onInsn(uint64_t InsnAddr, const Instruction &I,
                             CpuState &State) {
  if (!Fallback) {
    const auto &Points = Translator.safePoints();
    auto It = Points.find(InsnAddr);
    if (It != Points.end()) {
      const SafePointInfo &SP = It->second;
      // The hook runs after the counters were charged for this
      // instruction but before it executes; the checkpointed counts must
      // not include it (it re-executes after a rollback).
      uint64_t InsnsNow = Interp.instructionCount() - 1;
      uint64_t CyclesNow = Interp.cycleCount() - getOpcodeCost(I.Op);
      if (SP.Checked)
        LastCheck = InsnsNow;
      bool IntervalDue =
          InsnsNow - CheckpointInsns >= Config.CheckpointInterval;
      bool BudgetDue = totalUndoBytes() > Config.MemoryBudget;
      if (Checkpoints.empty() || IntervalDue || BudgetDue)
        takeCheckpoint(SP.GuestAddr, InsnsNow, CyclesNow);
    }
  }
  if (SavedHook)
    SavedHook->onInsn(InsnAddr, I, State);
}

uint64_t RecoveryManager::totalUndoBytes() const {
  uint64_t Total = 0;
  for (const Checkpoint &CP : Checkpoints)
    Total += CP.UndoBytes;
  return Total;
}

void RecoveryManager::takeCheckpoint(uint64_t GuestPC, uint64_t InsnsNow,
                                     uint64_t CyclesNow) {
  Checkpoints.emplace_back();
  Checkpoint &CP = Checkpoints.back();
  CP.GuestPC = GuestPC;
  CP.State = Interp.state();
  CP.Insns = InsnsNow;
  CP.Cycles = CyclesNow;
  CP.OutputLen = Interp.output().size();
  while (Checkpoints.size() > Config.MaxCheckpoints)
    Checkpoints.pop_front();
  // New epoch: the next write to any tracked page lands in this
  // checkpoint's undo log.
  Interp.memory().resetWriteEpoch();
  CheckpointInsns = InsnsNow;
  ++Report.NumCheckpoints;
  CkptCounter.inc();
  if (telemetry::EventTracer *T = Translator.tracer())
    T->record(InsnsNow, telemetry::TraceEventKind::CheckpointTaken, nullptr,
              GuestPC, Checkpoints.size());
}

uint64_t RecoveryManager::rollbackTo(size_t Depth) {
  assert(!Checkpoints.empty() && "rollback without a checkpoint");
  Depth = std::min(Depth, Checkpoints.size());
  size_t Target = Checkpoints.size() - Depth;

  // Apply undo logs newest-first so that where logs overlap the older
  // pre-image (the state at the older checkpoint) wins.
  Memory &Mem = Interp.memory();
  InRestore = true;
  for (size_t Index = Checkpoints.size(); Index-- > Target;)
    for (const auto &[PageBase, Bytes] : Checkpoints[Index].UndoLog)
      Mem.writeRaw(PageBase, Bytes.data(), PageSize);
  InRestore = false;

  Checkpoints.resize(Target + 1);
  Checkpoint &CP = Checkpoints.back();
  CP.UndoLog.clear();
  CP.UndoBytes = 0;
  Mem.resetWriteEpoch();

  CpuState Restored = CP.State;
  Restored.PC = Translator.resolveGuestTarget(CP.GuestPC);
  Interp.state() = Restored;
  Interp.restoreProgress(CP.Insns, CP.Cycles, CP.OutputLen);
  CheckpointInsns = CP.Insns;
  LastCheck = CP.Insns; // The checkpoint is the new watchdog anchor.
  return CP.GuestPC;
}

void RecoveryManager::dumpPostMortem(const char *Reason,
                                     const StopInfo &Stop) {
  if (!Recorder)
    return;
  telemetry::PostMortem PM = Translator.buildPostMortem(Reason, Stop, Interp);
  PM.Recovery.Present = true;
  PM.Recovery.Checkpoints = Report.NumCheckpoints;
  PM.Recovery.Rollbacks = Report.NumRollbacks;
  PM.Recovery.WatchdogFires = Report.NumWatchdogFires;
  PM.Recovery.RingDepth = Checkpoints.size();
  PM.Recovery.Degraded = Report.Degraded;
  PM.Recovery.InterpreterFallback = Report.InterpreterFallback;
  Recorder->write(PM);
}

void RecoveryManager::enterInterpreterFallback(const StopInfo &Stop) {
  FallbackCounter.inc();
  if (telemetry::EventTracer *T = Translator.tracer())
    T->record(Interp.instructionCount(),
              telemetry::TraceEventKind::InterpreterFallback);
  uint64_t GuestPC = rollbackTo(Checkpoints.size());
  // Abandon translation: run the guest pages directly. Translated calls
  // pushed *guest* return addresses, so the guest stack is directly
  // consumable by raw guest code.
  if (Translator.guestCodeSize() > 0)
    Interp.memory().setPerms(Translator.guestCodeBase(),
                             Translator.guestCodeSize(), PermRX);
  Interp.state().PC = GuestPC;
  Fallback = true;
  Report.InterpreterFallback = true;
  dumpPostMortem("interpreter-fallback", Stop);
}

void RecoveryManager::recover(uint64_t SiteKey, const StopInfo &Stop) {
  telemetry::PhaseProfiler::Scope Timer(Translator.profiler(),
                                        telemetry::Phase::Recover);
  ++TotalRollbacks;
  ++Report.NumRollbacks;
  RollbackCounter.inc();
  if (telemetry::EventTracer *T = Translator.tracer())
    T->record(Interp.instructionCount(), telemetry::TraceEventKind::Rollback,
              nullptr, SiteKey, TotalRollbacks);
  if (TotalRollbacks > Config.MaxTotalRollbacks) {
    enterInterpreterFallback(Stop);
    return;
  }
  unsigned &SiteCount = SiteRollbacks[SiteKey];
  ++SiteCount;
  if (SiteCount > Config.MaxSiteRollbacks) {
    // Self-integrity rung: before the whole-cache degradation, try to
    // surgically quarantine and retranslate just the failing site's
    // translation unit — this cures persistent corruption confined to
    // one translation (flipped code-cache bytes, a mangled table
    // entry). Granted once per site; a repeat escalation climbs on.
    if (!Fallback && QuarantinedSites.insert(SiteKey).second &&
        Translator.quarantineGuestBlock(SiteKey)) {
      SiteCount = 0;
      dumpPostMortem("quarantine-retranslate", Stop);
      rollbackTo(Checkpoints.size());
      return;
    }
    // Same region keeps failing: flush and retranslate conservatively,
    // and roll back as deep as the ring allows in case a corrupted
    // checkpoint is what keeps bringing us back here.
    Translator.degradeToConservative();
    Report.Degraded = true;
    DegradeCounter.inc();
    SiteRollbacks.clear();
    dumpPostMortem("degradation", Stop);
    rollbackTo(Checkpoints.size());
    return;
  }
  rollbackTo(1);
}

RecoveryReport RecoveryManager::run(uint64_t MaxInsns) {
  Report = RecoveryReport();
  Checkpoints.clear();
  SiteRollbacks.clear();
  QuarantinedSites.clear();
  TotalRollbacks = 0;
  Fallback = false;

  Memory &Mem = Interp.memory();
  // Splice in front of any existing per-instruction hook (a fault
  // injector, typically) and forward to it from onInsn.
  SavedHook = Interp.preInsnHook();
  Interp.setPreInsnHook(this);
  Interp.setDbtHooks(&Translator);
  Mem.setWriteObserver(this, CacheBase);

  // Seed checkpoint: the program entry is trivially a safe point.
  takeCheckpoint(Translator.guestEntry(), Interp.instructionCount(),
                 Interp.cycleCount());

  uint64_t TotalBudgetFactor = Config.MaxTotalRollbacks + 2ull;
  uint64_t TotalBudget = MaxInsns > ~0ull / TotalBudgetFactor
                             ? ~0ull
                             : MaxInsns * TotalBudgetFactor;

  StopInfo Stop;
  for (;;) {
    uint64_t Progress = Interp.instructionCount();
    if (Progress >= MaxInsns) {
      Stop.Kind = StopKind::InsnLimit;
      Stop.Trap = TrapKind::None;
      Stop.PC = Interp.state().PC;
      break;
    }
    uint64_t Slice = MaxInsns - Progress;
    // Armed whenever a checking technique is configured — not gated on
    // translated-so-far check sites: under on-demand translation with a
    // relaxed policy the first checked block may only be translated near
    // the end of the run, and a flow spinning check-free before that is
    // exactly what the watchdog must bound.
    bool WatchdogOn = !Fallback && Config.WatchdogBound > 0 &&
                      Translator.config().Tech != Technique::None;
    if (WatchdogOn)
      Slice = std::min(Slice, Config.WatchdogBound);

    uint64_t Before = Interp.instructionCount();
    Stop = Interp.run(Slice);
    Report.TotalExecuted += Interp.instructionCount() - Before;

    if (Stop.Kind == StopKind::Halted)
      break;
    if (Report.TotalExecuted >= TotalBudget)
      break; // Livelock guard: stop with whatever the last slice said.

    if (Stop.Kind == StopKind::Trapped) {
      uint64_t GuestPC = Translator.guestPCFor(Stop.PC);
      Translator.metrics()
          .counter(std::string("trap.") + getTrapKindName(Stop.Trap))
          .inc();
      if (Stop.Trap == TrapKind::BreakTrap &&
          Stop.BreakCode == BrkShadowStackViolation)
        Translator.metrics().counter("recovery.shadow_stack_traps").inc();
      if (telemetry::EventTracer *T = Translator.tracer())
        T->record(Interp.instructionCount(),
                  telemetry::TraceEventKind::TrapRaised,
                  getTrapKindName(Stop.Trap), GuestPC);
      if (Report.FirstDetection.empty())
        Report.FirstDetection =
            formatTrapDiagnostic(Stop, Interp.state(), GuestPC);
      dumpPostMortem("trap", Stop);
      if (Fallback)
        break; // No further containment below the interpreter.
      recover(GuestPC, Stop);
      continue;
    }

    // InsnLimit inside a slice: check the watchdog, then keep running.
    if (WatchdogOn &&
        Interp.instructionCount() - LastCheck > Config.WatchdogBound) {
      ++Report.NumWatchdogFires;
      WatchdogCounter.inc();
      uint64_t GuestPC = Translator.guestPCFor(Interp.state().PC);
      if (telemetry::EventTracer *T = Translator.tracer())
        T->record(Interp.instructionCount(),
                  telemetry::TraceEventKind::WatchdogFire, nullptr, GuestPC,
                  Interp.instructionCount() - LastCheck);
      if (Report.FirstDetection.empty())
        Report.FirstDetection = formatString(
            "watchdog: %llu instructions since last signature check, "
            "guest-pc=0x%llx",
            static_cast<unsigned long long>(Interp.instructionCount() -
                                            LastCheck),
            static_cast<unsigned long long>(GuestPC));
      dumpPostMortem("watchdog", Stop);
      recover(GuestPC, Stop);
    }
  }

  Report.Completed = Stop.Kind == StopKind::Halted;
  Report.FinalStop = Stop;
  Report.GuestStopPC = Translator.guestPCFor(Stop.PC);

  Mem.setWriteObserver(nullptr, 0);
  Interp.setPreInsnHook(SavedHook);
  SavedHook = nullptr;
  Checkpoints.clear();
  return Report;
}
