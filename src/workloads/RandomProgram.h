//===- RandomProgram.h - Random terminating program generator ---*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A generator of random, guaranteed-terminating VISA programs used by
/// the property-based tests: translated execution must match native
/// execution for every technique on every generated program, and injected
/// single faults must never be detected on a fault-free run (no false
/// positives — the necessary condition of Section 4.4).
///
/// Programs are structured as a sequence of counted loop segments whose
/// bodies contain random arithmetic, random data-dependent diamonds, and
/// optional calls into small helper functions, honoring the repository
/// discipline that flags never live across basic-block boundaries.
///
//===----------------------------------------------------------------------===//

#ifndef CFED_WORKLOADS_RANDOMPROGRAM_H
#define CFED_WORKLOADS_RANDOMPROGRAM_H

#include <cstdint>
#include <string>

namespace cfed {

/// Tuning knobs for the generator.
struct RandomProgramOptions {
  unsigned NumSegments = 6;   ///< Sequential loop segments in main.
  unsigned MaxBodyInsns = 6;  ///< Arithmetic instructions per body block.
  unsigned LoopTrip = 12;     ///< Iterations per segment loop.
  unsigned NumHelpers = 2;    ///< Callable helper functions (0 = none).
  bool UseFp = false;         ///< Mix in floating-point arithmetic.
  uint64_t Seed = 1;
};

/// Generates the assembly text of a random program. Deterministic in
/// \p Options.Seed.
std::string generateRandomProgram(const RandomProgramOptions &Options);

} // namespace cfed

#endif // CFED_WORKLOADS_RANDOMPROGRAM_H
