//===- RandomProgram.cpp - Random terminating program generator ----------------===//

#include "workloads/RandomProgram.h"

#include "support/Format.h"
#include "support/Prng.h"

using namespace cfed;

namespace {

/// Emits one random flag-safe arithmetic instruction over r1..r8 (and
/// f1..f4 when FP is enabled).
std::string randomArith(Prng &Rng, bool UseFp) {
  auto Reg = [&Rng] { return formatString("r%u", 1 + unsigned(Rng.nextBelow(8))); };
  if (UseFp && Rng.chance(1, 4)) {
    auto FReg = [&Rng] {
      return formatString("f%u", 1 + unsigned(Rng.nextBelow(4)));
    };
    switch (Rng.nextBelow(4)) {
    case 0:
      return formatString("  fadd %s, %s, %s\n", FReg().c_str(),
                          FReg().c_str(), FReg().c_str());
    case 1:
      return formatString("  fmul %s, %s, %s\n", FReg().c_str(),
                          FReg().c_str(), FReg().c_str());
    case 2:
      return formatString("  itof %s, %s\n", FReg().c_str(), Reg().c_str());
    default:
      return formatString("  fsub %s, %s, %s\n", FReg().c_str(),
                          FReg().c_str(), FReg().c_str());
    }
  }
  switch (Rng.nextBelow(8)) {
  case 0:
    return formatString("  add %s, %s, %s\n", Reg().c_str(), Reg().c_str(),
                        Reg().c_str());
  case 1:
    return formatString("  sub %s, %s, %s\n", Reg().c_str(), Reg().c_str(),
                        Reg().c_str());
  case 2:
    return formatString("  xor %s, %s, %s\n", Reg().c_str(), Reg().c_str(),
                        Reg().c_str());
  case 3:
    return formatString("  addi %s, %s, %d\n", Reg().c_str(), Reg().c_str(),
                        int(Rng.nextInRange(-64, 64)));
  case 4:
    return formatString("  muli %s, %s, %d\n", Reg().c_str(), Reg().c_str(),
                        int(Rng.nextInRange(1, 17)));
  case 5:
    return formatString("  shri %s, %s, %d\n", Reg().c_str(), Reg().c_str(),
                        int(Rng.nextInRange(0, 7)));
  case 6:
    return formatString("  or %s, %s, %s\n", Reg().c_str(), Reg().c_str(),
                        Reg().c_str());
  default:
    return formatString("  andi %s, %s, %d\n", Reg().c_str(), Reg().c_str(),
                        int(Rng.nextInRange(0, 4095)));
  }
}

const char *randomSignedCond(Prng &Rng) {
  static const char *const Conds[] = {"eq", "ne", "lt", "le", "gt", "ge"};
  return Conds[Rng.nextBelow(6)];
}

} // namespace

std::string cfed::generateRandomProgram(const RandomProgramOptions &Options) {
  Prng Rng(Options.Seed);
  std::string S = ".entry main\n";

  // Helper functions: short arithmetic bodies, one optional diamond.
  for (unsigned H = 0; H < Options.NumHelpers; ++H) {
    S += formatString("helper%u:\n", H);
    unsigned Count = 1 + unsigned(Rng.nextBelow(Options.MaxBodyInsns));
    for (unsigned I = 0; I < Count; ++I)
      S += randomArith(Rng, Options.UseFp);
    if (Rng.chance(1, 2)) {
      S += formatString("  cmp r%u, r%u\n", 1 + unsigned(Rng.nextBelow(8)),
                        1 + unsigned(Rng.nextBelow(8)));
      S += formatString("  jcc %s, h%u_else\n", randomSignedCond(Rng), H);
      S += randomArith(Rng, Options.UseFp);
      S += formatString("  jmp h%u_end\n", H);
      S += formatString("h%u_else:\n", H);
      S += randomArith(Rng, Options.UseFp);
      S += formatString("h%u_end:\n", H);
    }
    S += "  ret\n";
  }

  S += "main:\n";
  // Seed the working registers deterministically.
  for (unsigned R = 1; R <= 8; ++R)
    S += formatString("  movi r%u, %d\n", R,
                      int(Rng.nextInRange(-1000, 1000)));
  if (Options.UseFp)
    for (unsigned F = 1; F <= 4; ++F)
      S += formatString("  fmovi f%u, %d\n", F, int(Rng.nextInRange(1, 50)));
  S += "  movi r14, 0\n"; // Checksum accumulator.

  for (unsigned Seg = 0; Seg < Options.NumSegments; ++Seg) {
    S += formatString("  movi r13, %u\n", Options.LoopTrip);
    S += formatString("seg%u:\n", Seg);
    unsigned Count = 1 + unsigned(Rng.nextBelow(Options.MaxBodyInsns));
    for (unsigned I = 0; I < Count; ++I)
      S += randomArith(Rng, Options.UseFp);
    // A data-dependent diamond.
    if (Rng.chance(2, 3)) {
      S += formatString("  cmp r%u, r%u\n", 1 + unsigned(Rng.nextBelow(8)),
                        1 + unsigned(Rng.nextBelow(8)));
      S += formatString("  jcc %s, s%u_else\n", randomSignedCond(Rng), Seg);
      S += randomArith(Rng, Options.UseFp);
      S += formatString("  jmp s%u_end\n", Seg);
      S += formatString("s%u_else:\n", Seg);
      S += randomArith(Rng, Options.UseFp);
      S += formatString("s%u_end:\n", Seg);
    }
    if (Options.NumHelpers > 0 && Rng.chance(1, 2))
      S += formatString("  call helper%u\n",
                        unsigned(Rng.nextBelow(Options.NumHelpers)));
    // Fold the live registers into the checksum.
    S += formatString("  add r14, r14, r%u\n",
                      1 + unsigned(Rng.nextBelow(8)));
    S += "  addi r13, r13, -1\n";
    S += formatString("  jcc ne, seg%u\n", Seg);
  }

  S += "  out r14\n";
  if (Options.UseFp)
    S += "  ftoi r1, f1\n  out r1\n";
  S += "  halt\n";
  return S;
}
