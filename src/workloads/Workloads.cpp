//===- Workloads.cpp - SPEC2000 stand-in workload suite -----------------------===//

#include "workloads/Workloads.h"

#include "support/Diagnostics.h"
#include "support/Format.h"

using namespace cfed;

namespace {

/// Emits the linear-congruential step on register \p Reg (the same LCG
/// every kernel uses; constants from the classic glibc generator).
std::string lcg(const char *Reg) {
  return formatString("  muli %s, %s, 1103515245\n"
                      "  addi %s, %s, 12345\n",
                      Reg, Reg, Reg, Reg);
}

//===----------------------------------------------------------------------===//
// Integer kernels: branchy code with small basic blocks.
//===----------------------------------------------------------------------===//

/// LZ-style compression scan (gzip, bzip2): fill a buffer with skewed
/// random symbols, then scan with a 256-entry chain hash counting
/// back-references vs literals.
std::string lzKernel(int N, int SymMask, int Seed) {
  std::string S;
  S += ".entry main\n.data\n";
  S += formatString("buf: .space %d\n", N + 8);
  S += "hash: .space 2048\n.code\nmain:\n";
  S += formatString("  movi r1, buf\n  movi r2, %d\n  movi r3, %d\n", N,
                    Seed);
  S += "fill:\n";
  S += lcg("r3");
  S += formatString("  shri r4, r3, 16\n  andi r4, r4, %d\n", SymMask);
  S += "  stb [r1], r4\n  addi r1, r1, 1\n  addi r2, r2, -1\n"
       "  jcc ne, fill\n";
  S += formatString("  movi r1, buf\n  movi r2, %d\n  movi r5, 0\n"
                    "  movi r6, 0\n",
                    N - 1);
  S += "scan:\n"
       "  ldb r4, [r1]\n"
       "  ldb r7, [r1+1]\n"
       "  shli r8, r4, 5\n"
       "  xor r8, r8, r7\n"
       "  andi r8, r8, 255\n"
       "  shli r8, r8, 3\n"
       "  movi r9, hash\n"
       "  add r9, r9, r8\n"
       "  ld r10, [r9]\n"
       "  st [r9], r1\n"
       "  jzr r10, nomatch\n"
       "  ldb r11, [r10]\n"
       "  cmp r11, r4\n"
       "  jcc ne, nomatch\n"
       "  addi r6, r6, 1\n"
       "nomatch:\n"
       "  muli r5, r5, 31\n"
       "  add r5, r5, r4\n"
       "  addi r1, r1, 1\n"
       "  addi r2, r2, -1\n"
       "  jcc ne, scan\n"
       "  out r5\n"
       "  out r6\n"
       "  halt\n";
  return S;
}

/// Bellman-Ford relaxation over a random graph (mcf). V must be a power
/// of two.
std::string bellmanKernel(int V, int E, int Rounds, int Seed) {
  std::string S;
  S += ".entry main\n.data\n";
  S += formatString("edges: .space %d\n", E * 24);
  S += formatString("dist: .space %d\n", V * 8);
  S += ".code\nmain:\n";
  S += formatString("  movi r1, edges\n  movi r2, %d\n  movi r3, %d\n", E,
                    Seed);
  S += "genloop:\n";
  S += lcg("r3");
  S += formatString("  shri r4, r3, 16\n  andi r4, r4, %d\n"
                    "  st [r1], r4\n",
                    V - 1);
  S += lcg("r3");
  S += formatString("  shri r5, r3, 16\n  andi r5, r5, %d\n"
                    "  st [r1+8], r5\n",
                    V - 1);
  S += lcg("r3");
  S += "  shri r6, r3, 16\n  andi r6, r6, 1023\n  addi r6, r6, 1\n"
       "  st [r1+16], r6\n"
       "  addi r1, r1, 24\n  addi r2, r2, -1\n  jcc ne, genloop\n";
  S += formatString("  movi r1, dist\n  movi r2, %d\n  movi r4, 1\n"
                    "  shli r4, r4, 40\n",
                    V);
  S += "initloop:\n"
       "  st [r1], r4\n  addi r1, r1, 8\n  addi r2, r2, -1\n"
       "  jcc ne, initloop\n"
       "  movi r1, dist\n  movi r2, 0\n  st [r1], r2\n";
  S += formatString("  movi r9, %d\n", Rounds);
  S += "round:\n";
  S += formatString("  movi r1, edges\n  movi r2, %d\n", E);
  S += "edge:\n"
       "  ld r4, [r1]\n"
       "  ld r5, [r1+8]\n"
       "  ld r6, [r1+16]\n"
       "  movi r7, dist\n"
       "  shli r8, r4, 3\n"
       "  add r8, r7, r8\n"
       "  ld r10, [r8]\n"
       "  add r10, r10, r6\n"
       "  shli r8, r5, 3\n"
       "  add r8, r7, r8\n"
       "  ld r11, [r8]\n"
       "  cmp r10, r11\n"
       "  jcc ge, norelax\n"
       "  st [r8], r10\n"
       "norelax:\n"
       "  addi r1, r1, 24\n  addi r2, r2, -1\n  jcc ne, edge\n"
       "  addi r9, r9, -1\n  jcc ne, round\n";
  S += formatString("  movi r1, dist\n  movi r2, %d\n  movi r5, 0\n", V);
  S += "cksum:\n"
       "  ld r4, [r1]\n"
       "  muli r5, r5, 31\n"
       "  add r5, r5, r4\n"
       "  addi r1, r1, 8\n  addi r2, r2, -1\n  jcc ne, cksum\n"
       "  out r5\n  halt\n";
  return S;
}

/// Tokenizing state machine over random text (parser).
std::string parserKernel(int N, int Seed) {
  std::string S;
  S += ".entry main\n.data\n";
  S += formatString("buf: .space %d\n", N);
  S += ".code\nmain:\n";
  S += formatString("  movi r1, buf\n  movi r2, %d\n  movi r3, %d\n", N,
                    Seed);
  S += "fillp:\n";
  S += lcg("r3");
  S += "  shri r4, r3, 16\n  andi r4, r4, 127\n"
       "  stb [r1], r4\n  addi r1, r1, 1\n  addi r2, r2, -1\n"
       "  jcc ne, fillp\n";
  S += formatString("  movi r1, buf\n  movi r2, %d\n", N);
  S += "  movi r5, 0\n  movi r8, 0\n  movi r9, 0\n  movi r10, 0\n"
       "scanp:\n"
       "  ldb r4, [r1]\n"
       "  cmpi r4, 97\n"
       "  jcc lt, notlower\n"
       "  cmpi r4, 122\n"
       "  jcc gt, notlower\n"
       "  cmpi r5, 1\n"
       "  jcc eq, stayword\n"
       "  addi r8, r8, 1\n"
       "  movi r5, 1\n"
       "stayword:\n"
       "  jmp nextp\n"
       "notlower:\n"
       "  cmpi r4, 48\n"
       "  jcc lt, issep\n"
       "  cmpi r4, 57\n"
       "  jcc gt, issep\n"
       "  cmpi r5, 2\n"
       "  jcc eq, staynum\n"
       "  addi r9, r9, 1\n"
       "  movi r5, 2\n"
       "staynum:\n"
       "  jmp nextp\n"
       "issep:\n"
       "  addi r10, r10, 1\n"
       "  movi r5, 0\n"
       "nextp:\n"
       "  addi r1, r1, 1\n  addi r2, r2, -1\n  jcc ne, scanp\n"
       "  out r8\n  out r9\n  out r10\n  halt\n";
  return S;
}

/// Recursive alpha-beta game-tree search (crafty, eon): heavy call/ret
/// traffic with data-dependent pruning branches.
std::string alphaBetaKernel(int Depth, int Branch, int Seed) {
  std::string S;
  S += ".entry main\n.code\n";
  S += "search:\n"
       "  jnzr r1, sint\n";
  S += formatString("  muli r1, r2, %d\n", Seed);
  S += "  addi r1, r1, 12345\n"
       "  shri r1, r1, 16\n"
       "  andi r1, r1, 1023\n"
       "  addi r1, r1, -512\n"
       "  ret\n"
       "sint:\n"
       "  movi r5, 0\n"
       "  movi r6, -100000\n"
       "sloop:\n";
  S += formatString("  muli r7, r2, %d\n", Branch);
  S += "  add r7, r7, r5\n"
       "  addi r7, r7, 1\n"
       "  push r1\n  push r2\n  push r3\n  push r4\n  push r5\n  push r6\n"
       "  addi r1, r1, -1\n"
       "  mov r2, r7\n"
       "  mov r8, r3\n"
       "  neg r3, r4\n"
       "  neg r4, r8\n"
       "  call search\n"
       "  neg r7, r1\n"
       "  pop r6\n  pop r5\n  pop r4\n  pop r3\n  pop r2\n  pop r1\n"
       "  cmp r7, r6\n"
       "  jcc le, nobest\n"
       "  mov r6, r7\n"
       "nobest:\n"
       "  cmp r6, r3\n"
       "  jcc le, noalpha\n"
       "  mov r3, r6\n"
       "noalpha:\n"
       "  cmp r3, r4\n"
       "  jcc ge, sdone\n"
       "  addi r5, r5, 1\n";
  S += formatString("  cmpi r5, %d\n", Branch);
  S += "  jcc lt, sloop\n"
       "sdone:\n"
       "  mov r1, r6\n"
       "  ret\n"
       "main:\n";
  S += formatString("  movi r1, %d\n", Depth);
  S += "  movi r2, 1\n"
       "  movi r3, -1000000\n"
       "  movi r4, 1000000\n"
       "  call search\n"
       "  out r1\n  halt\n";
  return S;
}

/// Shell sort plus binary searches (vpr, twolf).
std::string sortSearchKernel(int N, int Lookups, int Seed) {
  std::string S;
  S += ".entry main\n.data\n";
  S += formatString("arr: .space %d\n", N * 8);
  S += ".code\nmain:\n";
  S += formatString("  movi r1, arr\n  movi r4, 0\n  movi r9, %d\n", Seed);
  S += "fills:\n";
  S += lcg("r9");
  S += "  shri r7, r9, 16\n"
       "  andi r7, r7, 65535\n"
       "  shli r8, r4, 3\n"
       "  add r8, r1, r8\n"
       "  st [r8], r7\n"
       "  addi r4, r4, 1\n";
  S += formatString("  cmpi r4, %d\n  jcc lt, fills\n", N);
  S += formatString("  movi r3, %d\n  shri r3, r3, 1\n", N);
  S += "gaploop:\n"
       "  jzr r3, sorted\n"
       "  mov r4, r3\n"
       "iloop:\n";
  S += formatString("  cmpi r4, %d\n  jcc ge, idone\n", N);
  S += "  shli r8, r4, 3\n"
       "  add r8, r1, r8\n"
       "  ld r6, [r8]\n"
       "  mov r5, r4\n"
       "jloop:\n"
       "  cmp r5, r3\n"
       "  jcc lt, jdone\n"
       "  sub r7, r5, r3\n"
       "  shli r8, r7, 3\n"
       "  add r8, r1, r8\n"
       "  ld r12, [r8]\n"
       "  cmp r12, r6\n"
       "  jcc le, jdone\n"
       "  shli r13, r5, 3\n"
       "  add r13, r1, r13\n"
       "  st [r13], r12\n"
       "  mov r5, r7\n"
       "  jmp jloop\n"
       "jdone:\n"
       "  shli r13, r5, 3\n"
       "  add r13, r1, r13\n"
       "  st [r13], r6\n"
       "  addi r4, r4, 1\n"
       "  jmp iloop\n"
       "idone:\n"
       "  shri r3, r3, 1\n"
       "  jmp gaploop\n"
       "sorted:\n";
  S += formatString("  movi r11, 0\n  movi r4, %d\n", Lookups);
  S += "bsl:\n";
  S += lcg("r9");
  S += "  shri r6, r9, 16\n"
       "  andi r6, r6, 65535\n"
       "  movi r5, 0\n";
  S += formatString("  movi r7, %d\n", N);
  // Note: each jcc has its compare in the same basic block (the flag
  // discipline techniques with flag-clobbering prologues rely on).
  S += "bsloop:\n"
       "  cmp r5, r7\n"
       "  jcc ge, bsdone\n"
       "  add r8, r5, r7\n"
       "  shri r8, r8, 1\n"
       "  shli r12, r8, 3\n"
       "  add r12, r1, r12\n"
       "  ld r12, [r12]\n"
       "  cmp r12, r6\n"
       "  jcc lt, bright\n"
       "  cmp r12, r6\n"
       "  jcc eq, bfound\n"
       "  mov r7, r8\n"
       "  jmp bsloop\n"
       "bright:\n"
       "  lea r5, r8, 1\n"
       "  jmp bsloop\n"
       "bfound:\n"
       "  addi r11, r11, 1\n"
       "bsdone:\n"
       "  addi r4, r4, -1\n"
       "  jcc ne, bsl\n"
       "  out r11\n  halt\n";
  return S;
}

/// Open-addressing hash-table churn (gcc, vortex, gap). TableBits gives
/// the power-of-two table size.
std::string hashChurnKernel(int Inserts, int Lookups, int TableBits,
                            int Seed) {
  int Mask = (1 << TableBits) - 1;
  std::string S;
  S += ".entry main\n.data\n";
  S += formatString("table: .space %d\n", (Mask + 1) * 8);
  S += ".code\nmain:\n";
  S += formatString("  movi r9, %d\n  movi r2, %d\n", Seed, Inserts);
  S += "insl:\n";
  S += lcg("r9");
  S += "  shri r4, r9, 8\n"
       "  andi r4, r4, 1048575\n"
       "  addi r4, r4, 1\n"
       "  muli r5, r4, 999983\n"
       "  shri r5, r5, 8\n";
  S += formatString("  andi r5, r5, %d\n", Mask);
  S += "probe:\n"
       "  shli r6, r5, 3\n"
       "  movi r7, table\n"
       "  add r6, r7, r6\n"
       "  ld r8, [r6]\n"
       "  jzr r8, insert\n"
       "  cmp r8, r4\n"
       "  jcc eq, nextins\n"
       "  addi r5, r5, 1\n";
  S += formatString("  andi r5, r5, %d\n", Mask);
  S += "  jmp probe\n"
       "insert:\n"
       "  st [r6], r4\n"
       "nextins:\n"
       "  addi r2, r2, -1\n"
       "  jcc ne, insl\n";
  S += formatString("  movi r9, %d\n  movi r2, %d\n  movi r10, 0\n",
                    Seed + 77, Lookups);
  S += "lkl:\n";
  S += lcg("r9");
  S += "  shri r4, r9, 8\n"
       "  andi r4, r4, 1048575\n"
       "  addi r4, r4, 1\n"
       "  muli r5, r4, 999983\n"
       "  shri r5, r5, 8\n";
  S += formatString("  andi r5, r5, %d\n", Mask);
  S += "lprobe:\n"
       "  shli r6, r5, 3\n"
       "  movi r7, table\n"
       "  add r6, r7, r6\n"
       "  ld r8, [r6]\n"
       "  jzr r8, miss\n"
       "  cmp r8, r4\n"
       "  jcc eq, hit\n"
       "  addi r5, r5, 1\n";
  S += formatString("  andi r5, r5, %d\n", Mask);
  S += "  jmp lprobe\n"
       "hit:\n"
       "  addi r10, r10, 1\n"
       "miss:\n"
       "  addi r2, r2, -1\n"
       "  jcc ne, lkl\n"
       "  out r10\n  halt\n";
  return S;
}

/// String transform / compare / substring scan loops (perlbmk).
std::string stringOpsKernel(int Iters, int Seed) {
  std::string S;
  S += ".entry main\n.data\n"
       "sa: .space 260\n"
       "sb: .space 260\n"
       ".code\nmain:\n";
  S += formatString("  movi r9, %d\n  movi r1, sa\n  movi r2, 256\n", Seed);
  S += "fa:\n";
  S += lcg("r9");
  // Map 0..31 into 'a'..'z' with wraparound via rem 26.
  S += "  shri r4, r9, 16\n"
       "  andi r4, r4, 31\n"
       "  movi r6, 26\n"
       "  rem r4, r4, r6\n"
       "  addi r4, r4, 97\n"
       "  stb [r1], r4\n"
       "  addi r1, r1, 1\n"
       "  addi r2, r2, -1\n"
       "  jcc ne, fa\n";
  S += formatString("  movi r11, %d\n  movi r10, 0\n", Iters);
  S += "outer:\n"
       "  movi r1, sa\n"
       "  movi r2, sb\n"
       "  movi r3, 256\n"
       "  movi r5, 0\n"
       "cp:\n"
       "  ldb r4, [r1]\n"
       "  movi r7, 3\n"
       "  rem r6, r5, r7\n"
       "  jnzr r6, keep\n"
       "  addi r4, r4, -32\n"
       "keep:\n"
       "  stb [r2], r4\n"
       "  addi r1, r1, 1\n"
       "  addi r2, r2, 1\n"
       "  addi r5, r5, 1\n"
       "  addi r3, r3, -1\n"
       "  jcc ne, cp\n"
       "  movi r1, sa\n"
       "  movi r3, 255\n"
       "sc:\n"
       "  ldb r4, [r1]\n"
       "  cmpi r4, 97\n"
       "  jcc ne, nsc\n"
       "  ldb r5, [r1+1]\n"
       "  cmpi r5, 98\n"
       "  jcc ne, nsc\n"
       "  addi r10, r10, 1\n"
       "nsc:\n"
       "  addi r1, r1, 1\n"
       "  addi r3, r3, -1\n"
       "  jcc ne, sc\n"
       "  addi r11, r11, -1\n"
       "  jcc ne, outer\n"
       "  out r10\n  halt\n";
  return S;
}

//===----------------------------------------------------------------------===//
// Floating-point kernels: large unrolled blocks, expensive instructions.
//===----------------------------------------------------------------------===//

/// Dense matrix multiply, inner loop unrolled by four (wupwise, galgel).
/// N must be a multiple of 4.
std::string matMulKernel(int N, int Seed) {
  int Row = N * 8;
  std::string S;
  S += ".entry main\n.data\n";
  S += formatString("ma: .space %d\nmb: .space %d\nmc: .space %d\n", N * N * 8,
                    N * N * 8, N * N * 8);
  S += ".code\nmain:\n";
  S += formatString("  movi r9, %d\n  movi r1, ma\n  movi r2, %d\n", Seed,
                    2 * N * N);
  S += "fi:\n";
  S += lcg("r9");
  S += "  shri r4, r9, 20\n"
       "  andi r4, r4, 255\n"
       "  itof f1, r4\n"
       "  fst [r1], f1\n"
       "  addi r1, r1, 8\n"
       "  addi r2, r2, -1\n"
       "  jcc ne, fi\n"
       "  movi r3, 0\n"
       "li:\n"
       "  movi r4, 0\n"
       "lj:\n"
       "  fmovi f2, 0\n"
       "  movi r5, 0\n";
  S += formatString("  muli r6, r3, %d\n", Row);
  S += "  movi r7, ma\n"
       "  add r6, r7, r6\n"
       "  movi r7, mb\n"
       "  shli r8, r4, 3\n"
       "  add r7, r7, r8\n"
       "lk:\n"
       "  fld f3, [r6]\n"
       "  fld f4, [r7]\n"
       "  fma f2, f3, f4\n"
       "  fld f3, [r6+8]\n";
  S += formatString("  fld f4, [r7+%d]\n", Row);
  S += "  fma f2, f3, f4\n"
       "  fld f3, [r6+16]\n";
  S += formatString("  fld f4, [r7+%d]\n", 2 * Row);
  S += "  fma f2, f3, f4\n"
       "  fld f3, [r6+24]\n";
  S += formatString("  fld f4, [r7+%d]\n", 3 * Row);
  S += "  fma f2, f3, f4\n"
       "  addi r6, r6, 32\n";
  S += formatString("  addi r7, r7, %d\n", 4 * Row);
  S += "  addi r5, r5, 4\n";
  S += formatString("  cmpi r5, %d\n  jcc lt, lk\n", N);
  S += formatString("  muli r8, r3, %d\n", Row);
  S += "  movi r10, mc\n"
       "  add r8, r10, r8\n"
       "  shli r11, r4, 3\n"
       "  add r8, r8, r11\n"
       "  fst [r8], f2\n"
       "  addi r4, r4, 1\n";
  S += formatString("  cmpi r4, %d\n  jcc lt, lj\n", N);
  S += "  addi r3, r3, 1\n";
  S += formatString("  cmpi r3, %d\n  jcc lt, li\n", N);
  S += formatString("  movi r1, mc\n  movi r2, %d\n  fmovi f5, 0\n", N * N);
  S += "ck:\n"
       "  fld f6, [r1]\n"
       "  fadd f5, f5, f6\n"
       "  addi r1, r1, 8\n"
       "  addi r2, r2, -1\n"
       "  jcc ne, ck\n"
       "  ftoi r4, f5\n"
       "  out r4\n  halt\n";
  return S;
}

/// 5-point Jacobi stencil, unrolled by two (swim, mgrid, apsi). G must
/// be even.
std::string stencilKernel(int G, int T, int Seed) {
  int Row = G * 8;
  std::string S;
  S += ".entry main\n.data\n";
  S += formatString("g1: .space %d\ng2: .space %d\n", G * G * 8, G * G * 8);
  S += ".code\nmain:\n";
  S += formatString("  movi r9, %d\n  movi r1, g1\n  movi r2, %d\n", Seed,
                    2 * G * G);
  S += "si:\n";
  S += lcg("r9");
  S += "  shri r4, r9, 18\n"
       "  andi r4, r4, 511\n"
       "  itof f1, r4\n"
       "  fst [r1], f1\n"
       "  addi r1, r1, 8\n"
       "  addi r2, r2, -1\n"
       "  jcc ne, si\n"
       "  fmovi f7, 1\n"
       "  fmovi f8, 4\n"
       "  fdiv f7, f7, f8\n"
       "  movi r11, g1\n"
       "  movi r12, g2\n";
  S += formatString("  movi r10, %d\n", T);
  S += "tloop:\n"
       "  movi r3, 1\n"
       "iloop:\n"
       "  movi r4, 1\n";
  S += formatString("  muli r5, r3, %d\n", Row);
  S += "  add r5, r11, r5\n";
  S += formatString("  muli r6, r3, %d\n", Row);
  S += "  add r6, r12, r6\n"
       "jloop:\n"
       "  shli r7, r4, 3\n"
       "  add r8, r5, r7\n"
       "  fld f1, [r8-8]\n"
       "  fld f2, [r8+8]\n";
  S += formatString("  fld f3, [r8%+d]\n  fld f4, [r8%+d]\n", -Row, Row);
  S += "  fadd f1, f1, f2\n"
       "  fadd f3, f3, f4\n"
       "  fadd f1, f1, f3\n"
       "  fmul f1, f1, f7\n"
       "  add r13, r6, r7\n"
       "  fst [r13], f1\n"
       "  fld f1, [r8]\n"
       "  fld f2, [r8+16]\n";
  S += formatString("  fld f3, [r8%+d]\n  fld f4, [r8%+d]\n", -Row + 8,
                    Row + 8);
  S += "  fadd f1, f1, f2\n"
       "  fadd f3, f3, f4\n"
       "  fadd f1, f1, f3\n"
       "  fmul f1, f1, f7\n"
       "  lea r13, r13, 8\n"
       "  fst [r13], f1\n"
       "  addi r4, r4, 2\n";
  S += formatString("  cmpi r4, %d\n  jcc lt, jloop\n", G - 1);
  S += "  addi r3, r3, 1\n";
  S += formatString("  cmpi r3, %d\n  jcc lt, iloop\n", G - 1);
  S += "  mov r13, r11\n"
       "  mov r11, r12\n"
       "  mov r12, r13\n"
       "  addi r10, r10, -1\n"
       "  jcc ne, tloop\n";
  S += formatString("  mov r1, r11\n  movi r2, %d\n  fmovi f5, 0\n", G * G);
  S += "ck2:\n"
       "  fld f6, [r1]\n"
       "  fadd f5, f5, f6\n"
       "  addi r1, r1, 8\n"
       "  addi r2, r2, -1\n"
       "  jcc ne, ck2\n"
       "  ftoi r4, f5\n"
       "  out r4\n  halt\n";
  return S;
}

/// All-pairs N-body forces with softening (ammp, art, sixtrack):
/// fsqrt/fdiv-heavy straight-line inner block.
std::string nbodyKernel(int P, int Steps, int Seed) {
  std::string S;
  S += ".entry main\n.data\n";
  S += formatString("px: .space %d\npy: .space %d\npz: .space %d\n", P * 8,
                    P * 8, P * 8);
  S += ".code\nmain:\n";
  S += formatString("  movi r9, %d\n  movi r1, px\n  movi r2, %d\n", Seed,
                    3 * P);
  S += "ni:\n";
  S += lcg("r9");
  S += "  shri r4, r9, 16\n"
       "  andi r4, r4, 1023\n"
       "  itof f1, r4\n"
       "  fst [r1], f1\n"
       "  addi r1, r1, 8\n"
       "  addi r2, r2, -1\n"
       "  jcc ne, ni\n"
       "  fmovi f14, 1\n"          // one
       "  fmovi f13, 1024\n"
       "  fdiv f13, f14, f13\n"    // dt = 1/1024
       "  fmovi f12, 0\n";         // energy-ish accumulator
  S += formatString("  movi r10, %d\n", Steps);
  S += "nstep:\n"
       "  movi r3, 0\n"
       "niloop:\n"
       "  fmovi f9, 0\n"           // acc x
       "  fmovi f10, 0\n"          // acc y
       "  fmovi f11, 0\n"          // acc z
       "  shli r5, r3, 3\n"
       "  movi r6, px\n"
       "  add r6, r6, r5\n"
       "  fld f1, [r6]\n"          // xi
       "  movi r6, py\n"
       "  add r6, r6, r5\n"
       "  fld f2, [r6]\n"          // yi
       "  movi r6, pz\n"
       "  add r6, r6, r5\n"
       "  fld f3, [r6]\n"          // zi
       "  movi r4, 0\n"
       "njloop:\n"
       "  cmp r4, r3\n"
       "  jcc eq, nskip\n"
       "  shli r7, r4, 3\n"
       "  movi r8, px\n"
       "  add r8, r8, r7\n"
       "  fld f4, [r8]\n"
       "  movi r8, py\n"
       "  add r8, r8, r7\n"
       "  fld f5, [r8]\n"
       "  movi r8, pz\n"
       "  add r8, r8, r7\n"
       "  fld f6, [r8]\n"
       "  fsub f4, f4, f1\n"       // dx
       "  fsub f5, f5, f2\n"
       "  fsub f6, f6, f3\n"
       "  fmov f7, f14\n"          // softening 1
       "  fma f7, f4, f4\n"
       "  fma f7, f5, f5\n"
       "  fma f7, f6, f6\n"        // r2 + 1
       "  fsqrt f8, f7\n"
       "  fmul f8, f8, f7\n"       // r^3
       "  fdiv f8, f14, f8\n"      // 1/r^3
       "  fma f9, f4, f8\n"
       "  fma f10, f5, f8\n"
       "  fma f11, f6, f8\n"
       "nskip:\n"
       "  addi r4, r4, 1\n";
  S += formatString("  cmpi r4, %d\n  jcc lt, njloop\n", P);
  // Integrate: x_i += dt * acc.
  S += "  movi r6, px\n"
       "  add r6, r6, r5\n"
       "  fmul f9, f9, f13\n"
       "  fadd f1, f1, f9\n"
       "  fst [r6], f1\n"
       "  movi r6, py\n"
       "  add r6, r6, r5\n"
       "  fmul f10, f10, f13\n"
       "  fadd f2, f2, f10\n"
       "  fst [r6], f2\n"
       "  movi r6, pz\n"
       "  add r6, r6, r5\n"
       "  fmul f11, f11, f13\n"
       "  fadd f3, f3, f11\n"
       "  fst [r6], f3\n"
       "  fadd f12, f12, f1\n"
       "  addi r3, r3, 1\n";
  S += formatString("  cmpi r3, %d\n  jcc lt, niloop\n", P);
  S += "  addi r10, r10, -1\n"
       "  jcc ne, nstep\n"
       "  fmovi f4, 1000\n"
       "  fmul f12, f12, f4\n"
       "  ftoi r4, f12\n"
       "  out r4\n  halt\n";
  return S;
}

/// Walsh-Hadamard butterfly passes with per-butterfly scaling (lucas,
/// fma3d). N must be a power of two.
std::string butterflyKernel(int N, int Repeats, int Seed) {
  std::string S;
  S += ".entry main\n.data\n";
  S += formatString("wd: .space %d\n", N * 8);
  S += ".code\nmain:\n";
  S += formatString("  movi r9, %d\n  movi r1, wd\n  movi r2, %d\n", Seed, N);
  S += "wi:\n";
  S += lcg("r9");
  S += "  shri r4, r9, 16\n"
       "  andi r4, r4, 255\n"
       "  itof f1, r4\n"
       "  fst [r1], f1\n"
       "  addi r1, r1, 8\n"
       "  addi r2, r2, -1\n"
       "  jcc ne, wi\n"
       "  fmovi f7, 1\n"
       "  fmovi f8, 2\n"
       "  fdiv f7, f7, f8\n";      // 0.5 scaling
  S += formatString("  movi r10, %d\n", Repeats);
  S += "wrep:\n"
       "  movi r3, 1\n"            // len
       "wlen:\n"
       "  movi r4, 0\n"            // i
       "wgrp:\n"
       "  mov r5, r4\n"            // j = i
       "wbf:\n"
       "  shli r6, r5, 3\n"
       "  movi r7, wd\n"
       "  add r6, r7, r6\n"        // &d[j]
       "  shli r8, r3, 3\n"
       "  add r8, r6, r8\n"        // &d[j+len]
       "  fld f1, [r6]\n"
       "  fld f2, [r8]\n"
       "  fadd f3, f1, f2\n"
       "  fsub f4, f1, f2\n"
       "  fmul f3, f3, f7\n"
       "  fmul f4, f4, f7\n"
       "  fst [r6], f3\n"
       "  fst [r8], f4\n"
       "  addi r5, r5, 1\n"
       "  add r11, r4, r3\n"       // i + len
       "  cmp r5, r11\n"
       "  jcc lt, wbf\n"
       "  shli r11, r3, 1\n"
       "  add r4, r4, r11\n";      // i += 2*len
  S += formatString("  cmpi r4, %d\n  jcc lt, wgrp\n", N);
  S += "  shli r3, r3, 1\n";
  S += formatString("  cmpi r3, %d\n  jcc lt, wlen\n", N);
  S += "  addi r10, r10, -1\n"
       "  jcc ne, wrep\n";
  S += formatString("  movi r1, wd\n  movi r2, %d\n  fmovi f5, 0\n", N);
  S += "wck:\n"
       "  fld f6, [r1]\n"
       "  fadd f5, f5, f6\n"
       "  addi r1, r1, 8\n"
       "  addi r2, r2, -1\n"
       "  jcc ne, wck\n"
       "  fmovi f6, 1000\n"
       "  fmul f5, f5, f6\n"
       "  ftoi r4, f5\n"
       "  out r4\n  halt\n";
  return S;
}

/// Fully unrolled Horner polynomial evaluation with a classification
/// branch (mesa, facerec): one huge straight-line FP block per element.
std::string polyKernel(int N, int Degree, int Seed) {
  std::string S;
  S += ".entry main\n.code\nmain:\n";
  S += formatString("  movi r9, %d\n  movi r2, %d\n", Seed, N);
  S += "  fmovi f8, 256\n"
       "  fmovi f9, 1\n"
       "  fdiv f8, f9, f8\n"       // 1/256
       "  fmovi f10, 3\n"          // coefficient a
       "  fmovi f11, -2\n"         // coefficient b
       "  fmovi f5, 0\n"           // sum
       "  movi r10, 0\n"           // above-threshold count
       "ploop:\n";
  S += lcg("r9");
  S += "  shri r4, r9, 16\n"
       "  andi r4, r4, 255\n"
       "  itof f1, r4\n"
       "  fmul f1, f1, f8\n"       // x in [0,1)
       "  fmov f2, f10\n";         // acc = a
  for (int I = 0; I < Degree; ++I) {
    S += "  fmul f2, f2, f1\n";
    S += (I % 2 == 0) ? "  fadd f2, f2, f11\n" : "  fadd f2, f2, f10\n";
  }
  S += "  fadd f5, f5, f2\n"
       "  fcmp f2, f9\n"           // acc < 1 ?
       "  jcc b, pnext\n"
       "  addi r10, r10, 1\n"      // acc >= 1: classify as bright
       "pnext:\n"
       "  addi r2, r2, -1\n"
       "  jcc ne, ploop\n"
       "  fmovi f6, 1000\n"
       "  fmul f5, f5, f6\n"
       "  ftoi r4, f5\n"
       "  out r4\n"
       "  out r10\n  halt\n";
  return S;
}

/// 1-D wave-equation propagation, unrolled by two (applu, equake).
std::string waveKernel(int X, int T, int Seed) {
  std::string S;
  S += ".entry main\n.data\n";
  S += formatString("u0: .space %d\nu1: .space %d\nu2: .space %d\n", X * 8,
                    X * 8, X * 8);
  S += ".code\nmain:\n";
  S += formatString("  movi r9, %d\n  movi r1, u0\n  movi r2, %d\n", Seed,
                    2 * X);
  S += "vi:\n";
  S += lcg("r9");
  S += "  shri r4, r9, 16\n"
       "  andi r4, r4, 127\n"
       "  itof f1, r4\n"
       "  fst [r1], f1\n"
       "  addi r1, r1, 8\n"
       "  addi r2, r2, -1\n"
       "  jcc ne, vi\n"
       "  fmovi f7, 1\n"
       "  fmovi f8, 4\n"
       "  fdiv f7, f7, f8\n"       // c = 0.25
       "  fmovi f6, 2\n"
       "  movi r11, u0\n"          // prev
       "  movi r12, u1\n"          // cur
       "  movi r13, u2\n";         // next
  S += formatString("  movi r10, %d\n", T);
  S += "wtl:\n"
       "  movi r3, 1\n"
       "wxl:\n"
       "  shli r4, r3, 3\n"
       "  add r5, r12, r4\n"       // &cur[i]
       "  add r6, r11, r4\n"       // &prev[i]
       "  add r7, r13, r4\n"       // &next[i]
       "  fld f1, [r5]\n"          // u
       "  fld f2, [r5-8]\n"
       "  fld f3, [r5+8]\n"
       "  fld f4, [r6]\n"          // u_prev
       "  fmul f5, f1, f6\n"       // 2u
       "  fsub f5, f5, f4\n"
       "  fadd f2, f2, f3\n"
       "  fsub f2, f2, f1\n"
       "  fsub f2, f2, f1\n"       // laplacian
       "  fma f5, f2, f7\n"
       "  fst [r7], f5\n"
       "  fld f1, [r5+8]\n"        // unrolled second point
       "  fld f2, [r5]\n"
       "  fld f3, [r5+16]\n"
       "  fld f4, [r6+8]\n"
       "  fmul f5, f1, f6\n"
       "  fsub f5, f5, f4\n"
       "  fadd f2, f2, f3\n"
       "  fsub f2, f2, f1\n"
       "  fsub f2, f2, f1\n"
       "  fma f5, f2, f7\n"
       "  fst [r7+8], f5\n"
       "  addi r3, r3, 2\n";
  S += formatString("  cmpi r3, %d\n  jcc lt, wxl\n", X - 1);
  S += "  mov r4, r11\n"
       "  mov r11, r12\n"
       "  mov r12, r13\n"
       "  mov r13, r4\n"
       "  addi r10, r10, -1\n"
       "  jcc ne, wtl\n";
  S += formatString("  mov r1, r12\n  movi r2, %d\n  fmovi f5, 0\n", X);
  S += "vck:\n"
       "  fld f6, [r1]\n"
       "  fadd f5, f5, f6\n"
       "  addi r1, r1, 8\n"
       "  addi r2, r2, -1\n"
       "  jcc ne, vck\n"
       "  ftoi r4, f5\n"
       "  out r4\n  halt\n";
  return S;
}

struct WorkloadEntry {
  WorkloadInfo Info;
  std::string (*Generate)();
};

// The 26 named workloads. Sizes are tuned for roughly 0.3-1M dynamic
// instructions each: large enough for stable statistics, small enough
// that a full campaign sweep stays laptop-scale.
std::string genGzip() { return lzKernel(30000, 31, 9001); }
std::string genVpr() { return sortSearchKernel(3000, 4000, 9002); }
std::string genGcc() { return hashChurnKernel(8000, 30000, 14, 9003); }
std::string genMcf() { return bellmanKernel(64, 512, 50, 9004); }
std::string genCrafty() { return alphaBetaKernel(7, 5, 9005); }
std::string genParser() { return parserKernel(40000, 9006); }
std::string genEon() { return alphaBetaKernel(6, 7, 9007); }
std::string genPerlbmk() { return stringOpsKernel(150, 9008); }
std::string genGap() { return hashChurnKernel(6000, 20000, 14, 9009); }
std::string genVortex() { return hashChurnKernel(12000, 40000, 15, 9010); }
std::string genBzip2() { return lzKernel(36000, 15, 9011); }
std::string genTwolf() { return sortSearchKernel(2000, 3000, 9012); }

std::string genWupwise() { return matMulKernel(44, 9101); }
std::string genSwim() { return stencilKernel(64, 10, 9102); }
std::string genMgrid() { return stencilKernel(56, 12, 9103); }
std::string genApplu() { return waveKernel(1536, 28, 9104); }
std::string genMesa() { return polyKernel(15000, 16, 9105); }
std::string genGalgel() { return matMulKernel(40, 9106); }
std::string genArt() { return nbodyKernel(36, 10, 9107); }
std::string genEquake() { return waveKernel(2048, 24, 9108); }
std::string genFacerec() { return polyKernel(12000, 12, 9109); }
std::string genAmmp() { return nbodyKernel(44, 8, 9110); }
std::string genLucas() { return butterflyKernel(4096, 2, 9111); }
std::string genFma3d() { return butterflyKernel(2048, 5, 9112); }
std::string genSixtrack() { return nbodyKernel(40, 9, 9113); }
std::string genApsi() { return stencilKernel(48, 14, 9114); }

const WorkloadEntry Suite[] = {
    {{"164.gzip", false}, genGzip},
    {{"175.vpr", false}, genVpr},
    {{"176.gcc", false}, genGcc},
    {{"181.mcf", false}, genMcf},
    {{"186.crafty", false}, genCrafty},
    {{"197.parser", false}, genParser},
    {{"252.eon", false}, genEon},
    {{"253.perlbmk", false}, genPerlbmk},
    {{"254.gap", false}, genGap},
    {{"255.vortex", false}, genVortex},
    {{"256.bzip2", false}, genBzip2},
    {{"300.twolf", false}, genTwolf},
    {{"168.wupwise", true}, genWupwise},
    {{"171.swim", true}, genSwim},
    {{"172.mgrid", true}, genMgrid},
    {{"173.applu", true}, genApplu},
    {{"177.mesa", true}, genMesa},
    {{"178.galgel", true}, genGalgel},
    {{"179.art", true}, genArt},
    {{"183.equake", true}, genEquake},
    {{"187.facerec", true}, genFacerec},
    {{"188.ammp", true}, genAmmp},
    {{"189.lucas", true}, genLucas},
    {{"191.fma3d", true}, genFma3d},
    {{"200.sixtrack", true}, genSixtrack},
    {{"301.apsi", true}, genApsi},
};

} // namespace

const std::vector<WorkloadInfo> &cfed::getWorkloadSuite() {
  static const std::vector<WorkloadInfo> Infos = [] {
    std::vector<WorkloadInfo> Result;
    for (const WorkloadEntry &Entry : Suite)
      Result.push_back(Entry.Info);
    return Result;
  }();
  return Infos;
}

std::vector<std::string> cfed::getIntWorkloadNames() {
  std::vector<std::string> Names;
  for (const WorkloadInfo &Info : getWorkloadSuite())
    if (!Info.IsFp)
      Names.push_back(Info.Name);
  return Names;
}

std::vector<std::string> cfed::getFpWorkloadNames() {
  std::vector<std::string> Names;
  for (const WorkloadInfo &Info : getWorkloadSuite())
    if (Info.IsFp)
      Names.push_back(Info.Name);
  return Names;
}

std::string cfed::getWorkloadSource(const std::string &Name) {
  for (const WorkloadEntry &Entry : Suite)
    if (Entry.Info.Name == Name)
      return Entry.Generate();
  reportFatalErrorf("unknown workload '%s'", Name.c_str());
}

AsmProgram cfed::assembleWorkload(const std::string &Name) {
  AsmResult Result = assembleProgram(getWorkloadSource(Name));
  if (!Result.succeeded())
    reportFatalErrorf("workload '%s' failed to assemble:\n%s", Name.c_str(),
                      Result.errorText().c_str());
  return std::move(Result.Program);
}
