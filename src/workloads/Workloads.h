//===- Workloads.h - SPEC2000 stand-in workload suite -----------*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 26 synthetic workloads named after the SPEC2000 programs the
/// paper evaluates on. Each is generated from one of twelve kernel
/// families chosen so that the properties the paper's figures depend on
/// hold:
///
///  * integer workloads (gzip...twolf) are branchy with small basic
///    blocks — compression, graph relaxation, parsing state machines,
///    game-tree search, sorting/searching, hash-table churn and string
///    processing;
///  * floating-point workloads (wupwise...apsi) have large unrolled
///    blocks and expensive FP instructions — stencils, dense linear
///    algebra, N-body forces, butterfly passes, polynomial evaluation
///    and wave propagation.
///
/// These are substitutes, not ports: the figures depend on branch
/// frequency, taken ratios, block-size distribution and instruction mix,
/// all of which the generators control (see DESIGN.md, Substitutions).
/// Every workload is deterministic, runs clean (no traps), and prints
/// checksums through Out — the silent-data-corruption oracle.
///
//===----------------------------------------------------------------------===//

#ifndef CFED_WORKLOADS_WORKLOADS_H
#define CFED_WORKLOADS_WORKLOADS_H

#include "asm/Assembler.h"

#include <string>
#include <vector>

namespace cfed {

/// One workload of the suite.
struct WorkloadInfo {
  std::string Name; ///< SPEC-style name, e.g. "164.gzip".
  bool IsFp;        ///< Belongs to the floating-point half of the suite.
};

/// All 26 workloads: the 12 integer ones first, then the 14 fp ones, in
/// the order the paper's figures list them.
const std::vector<WorkloadInfo> &getWorkloadSuite();

/// The integer / floating-point halves.
std::vector<std::string> getIntWorkloadNames();
std::vector<std::string> getFpWorkloadNames();

/// Returns the VISA assembly source of workload \p Name; fatal error on
/// an unknown name.
std::string getWorkloadSource(const std::string &Name);

/// Assembles \p Name; fatal error if the generated source fails to
/// assemble (that would be a bug in the generator).
AsmProgram assembleWorkload(const std::string &Name);

} // namespace cfed

#endif // CFED_WORKLOADS_WORKLOADS_H
