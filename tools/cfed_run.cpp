//===- cfed_run.cpp - Command-line driver for the CFED pipeline -----------------===//
//
// Assemble-and-run driver exposing the whole pipeline from the shell:
//
//   cfed-run [options] <file.s | workload name>
//
//   --native             run on the bare interpreter (no DBT)
//   --tech=<t>           none|cfcss|ecca|ecf|edgcf|rcf   (default none)
//   --flavor=<f>         jcc|cmov                        (default jcc)
//   --policy=<p>         allbb|retbe|ret|end|store       (default allbb)
//   --eager              whole-program translation (required for
//                        cfcss/ecca)
//   --dfc                layer SWIFT-style data-flow checking under the
//                        control-flow technique
//   --max-insns=<n>      instruction budget (default 200M)
//   --recover            run under checkpoint/rollback recovery: detections
//                        roll back and re-execute instead of terminating
//                        (with --inject: classify Recovered/RecoveryFailed)
//   --watchdog=<n>       errant-flow watchdog bound in instructions
//                        (0 disables; default 1M; needs --recover)
//   --ckpt-interval=<n>  instructions between checkpoints (default 10000;
//                        needs --recover)
//   --inject=<n>         run an n-fault injection campaign instead of a
//                        plain run
//   --seed=<n>           campaign seed (default 1)
//   --disasm             print the guest disassembly and exit
//   --dump-cfg           print the guest CFG as Graphviz DOT and exit
//   --dump-cache         print the translated code cache after the run
//   --stats              print run statistics
//
// The positional argument is a path to a VISA assembly file, or the
// name of a built-in workload (e.g. 181.mcf).
//
//===----------------------------------------------------------------------===//

#include "cfg/Cfg.h"
#include "dbt/Dbt.h"
#include "fault/Campaign.h"
#include "isa/Disasm.h"
#include "recovery/Recovery.h"
#include "support/Format.h"
#include "support/Table.h"
#include "vm/Layout.h"
#include "vm/Loader.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace cfed;

namespace {

struct Options {
  bool Native = false;
  DbtConfig Config;
  uint64_t MaxInsns = 200000000ULL;
  bool Recover = false;
  RecoveryConfig Recovery;
  uint64_t Injections = 0;
  uint64_t Seed = 1;
  bool Disasm = false;
  bool DumpCfg = false;
  bool DumpCache = false;
  bool Stats = false;
  std::string Input;
};

int usage() {
  std::fprintf(stderr,
               "usage: cfed-run [--native] [--tech=T] [--flavor=F] "
               "[--policy=P] [--eager] [--dfc]\n"
               "                [--max-insns=N] [--recover] [--watchdog=N] "
               "[--ckpt-interval=N]\n"
               "                [--inject=N] [--seed=N] "
               "[--disasm] [--dump-cfg]\n"
               "                [--dump-cache] [--stats] "
               "<file.s | workload>\n");
  return 2;
}

bool parseTech(const std::string &Name, Technique &Out) {
  if (Name == "none")
    Out = Technique::None;
  else if (Name == "cfcss")
    Out = Technique::Cfcss;
  else if (Name == "ecca")
    Out = Technique::Ecca;
  else if (Name == "ecf")
    Out = Technique::Ecf;
  else if (Name == "edgcf")
    Out = Technique::EdgCf;
  else if (Name == "rcf")
    Out = Technique::Rcf;
  else
    return false;
  return true;
}

bool parsePolicy(const std::string &Name, CheckPolicy &Out) {
  if (Name == "allbb")
    Out = CheckPolicy::AllBB;
  else if (Name == "retbe")
    Out = CheckPolicy::RetBE;
  else if (Name == "ret")
    Out = CheckPolicy::Ret;
  else if (Name == "end")
    Out = CheckPolicy::End;
  else if (Name == "store")
    Out = CheckPolicy::StoreBB;
  else
    return false;
  return true;
}

bool parseArgs(int Argc, char **Argv, Options &Opts) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&Arg]() { return Arg.substr(Arg.find('=') + 1); };
    if (Arg == "--native")
      Opts.Native = true;
    else if (Arg.rfind("--tech=", 0) == 0) {
      if (!parseTech(Value(), Opts.Config.Tech))
        return false;
    } else if (Arg.rfind("--flavor=", 0) == 0) {
      if (Value() == "jcc")
        Opts.Config.Flavor = UpdateFlavor::Jcc;
      else if (Value() == "cmov")
        Opts.Config.Flavor = UpdateFlavor::CMovcc;
      else
        return false;
    } else if (Arg.rfind("--policy=", 0) == 0) {
      if (!parsePolicy(Value(), Opts.Config.Policy))
        return false;
    } else if (Arg == "--eager")
      Opts.Config.EagerTranslate = true;
    else if (Arg == "--dfc")
      Opts.Config.DataFlowCheck = true;
    else if (Arg.rfind("--max-insns=", 0) == 0)
      Opts.MaxInsns = std::strtoull(Value().c_str(), nullptr, 0);
    else if (Arg == "--recover")
      Opts.Recover = true;
    else if (Arg.rfind("--watchdog=", 0) == 0)
      Opts.Recovery.WatchdogBound = std::strtoull(Value().c_str(), nullptr, 0);
    else if (Arg.rfind("--ckpt-interval=", 0) == 0)
      Opts.Recovery.CheckpointInterval =
          std::strtoull(Value().c_str(), nullptr, 0);
    else if (Arg.rfind("--inject=", 0) == 0)
      Opts.Injections = std::strtoull(Value().c_str(), nullptr, 0);
    else if (Arg.rfind("--seed=", 0) == 0)
      Opts.Seed = std::strtoull(Value().c_str(), nullptr, 0);
    else if (Arg == "--disasm")
      Opts.Disasm = true;
    else if (Arg == "--dump-cfg")
      Opts.DumpCfg = true;
    else if (Arg == "--dump-cache")
      Opts.DumpCache = true;
    else if (Arg == "--stats")
      Opts.Stats = true;
    else if (Arg.rfind("--", 0) == 0)
      return false;
    else if (Opts.Input.empty())
      Opts.Input = Arg;
    else
      return false;
  }
  return !Opts.Input.empty();
}

bool loadSource(const std::string &Input, std::string &Source) {
  for (const WorkloadInfo &Info : getWorkloadSuite()) {
    if (Info.Name == Input) {
      Source = getWorkloadSource(Input);
      return true;
    }
  }
  std::ifstream File(Input);
  if (!File)
    return false;
  std::ostringstream Buffer;
  Buffer << File.rdbuf();
  Source = Buffer.str();
  return true;
}

const char *describeStop(const StopInfo &Stop) {
  switch (Stop.Kind) {
  case StopKind::Halted:
    return "halted";
  case StopKind::InsnLimit:
    return "instruction limit reached";
  case StopKind::Trapped:
    return Stop.Trap == TrapKind::BreakTrap &&
                   Stop.BreakCode == BrkControlFlowError
               ? "control-flow error reported"
               : getTrapKindName(Stop.Trap);
  }
  return "?";
}

int runCampaign(const AsmProgram &Program, const Options &Opts) {
  FaultCampaign Campaign(Program, Opts.Config);
  if (!Campaign.prepare(Opts.MaxInsns)) {
    std::fprintf(stderr, "error: golden run failed (program must halt "
                         "and the technique must support the program)\n");
    return 1;
  }
  std::printf("golden: %llu insns, %llu branch executions, hash "
              "%016llx\n",
              (unsigned long long)Campaign.goldenInsns(),
              (unsigned long long)Campaign.branchExecutions(SiteClass::Any),
              (unsigned long long)Campaign.goldenHash());
  if (Opts.Recover) {
    CampaignResult Result = Campaign.runWithRecovery(
        Opts.Injections, Opts.Seed, SiteClass::Any, Opts.Recovery);
    OutcomeCounts Totals = Result.totals();
    Table T;
    T.setHeader({"outcome", "count"});
    T.addRow({"recovered", std::to_string(Totals.Recovered)});
    T.addRow({"masked", std::to_string(Totals.Masked)});
    T.addRow({"recovery failed", std::to_string(Totals.RecoveryFailed)});
    T.addRow({"silent data corruption", std::to_string(Totals.Sdc)});
    T.addRow({"timeout", std::to_string(Totals.Timeout)});
    std::printf("%s", T.render().c_str());
    return 0;
  }
  OutcomeCounts Totals;
  uint64_t LatencySum = 0;
  auto Faults =
      Campaign.plan(Opts.Injections * 4, Opts.Seed, SiteClass::Any);
  uint64_t Done = 0;
  for (const PlannedFault &Fault : Faults) {
    if (Fault.Category == BranchErrorCategory::NoError)
      continue;
    if (Done++ >= Opts.Injections)
      break;
    InjectionReport Report = Campaign.injectDetailed(Fault);
    Totals.add(Report.Result);
    if (Report.Result == Outcome::DetectedSignature)
      LatencySum += Report.LatencyInsns;
  }
  Table T;
  T.setHeader({"outcome", "count"});
  T.addRow({"detected (signature)", std::to_string(Totals.DetectedSig)});
  T.addRow({"detected (hardware)", std::to_string(Totals.DetectedHw)});
  T.addRow({"masked", std::to_string(Totals.Masked)});
  T.addRow({"silent data corruption", std::to_string(Totals.Sdc)});
  T.addRow({"timeout", std::to_string(Totals.Timeout)});
  std::printf("%s", T.render().c_str());
  if (Totals.DetectedSig)
    std::printf("mean signature-detection latency: %llu insns\n",
                (unsigned long long)(LatencySum / Totals.DetectedSig));
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return usage();

  std::string Source;
  if (!loadSource(Opts.Input, Source)) {
    std::fprintf(stderr, "error: cannot open '%s' (not a file or a "
                         "known workload)\n",
                 Opts.Input.c_str());
    return 1;
  }
  AsmResult Assembled = assembleProgram(Source);
  if (!Assembled.succeeded()) {
    std::fprintf(stderr, "assembly failed:\n%s",
                 Assembled.errorText().c_str());
    return 1;
  }
  const AsmProgram &Program = Assembled.Program;

  if (Opts.Disasm) {
    std::printf("%s", disassembleRange(Program.Code.data(),
                                       Program.Code.size(), CodeBase)
                          .c_str());
    return 0;
  }
  if (Opts.DumpCfg) {
    Cfg Graph = Cfg::build(Program.Code.data(), Program.Code.size(),
                           CodeBase, Program.Entry, Program.CodeLabels);
    std::printf("%s", Graph.toDot().c_str());
    return 0;
  }
  if (Opts.Injections > 0)
    return runCampaign(Program, Opts);

  Memory Mem;
  Interpreter Interp(Mem);
  StopInfo Stop;
  uint64_t Translations = 0, Dispatches = 0, Flushes = 0;
  uint64_t IbtcHits = 0, IbtcMisses = 0;
  std::unique_ptr<Dbt> Translator;
  if (Opts.Native) {
    loadProgram(Program, LoadMode::Native, Mem, Interp.state());
    Stop = Interp.run(Opts.MaxInsns);
  } else {
    Translator = std::make_unique<Dbt>(Mem, Opts.Config);
    if (!Translator->load(Program, Interp.state())) {
      std::fprintf(stderr,
                   Opts.Config.EagerTranslate
                       ? "error: technique %s cannot instrument this "
                         "program (indirect control flow defeats static "
                         "signature assignment)\n"
                       : "error: technique %s needs the whole-program "
                         "CFG; add --eager\n",
                   getTechniqueName(Opts.Config.Tech));
      return 1;
    }
    if (Opts.Recover) {
      RecoveryManager Manager(Interp, *Translator, Opts.Recovery);
      RecoveryReport Report = Manager.run(Opts.MaxInsns);
      Stop = Report.FinalStop;
      if (!Report.FirstDetection.empty())
        std::fprintf(stderr, "[first detection: %s]\n",
                     Report.FirstDetection.c_str());
      std::fprintf(stderr,
                   "[recovery: %llu checkpoints, %llu rollbacks, "
                   "%llu watchdog fires%s%s]\n",
                   (unsigned long long)Report.NumCheckpoints,
                   (unsigned long long)Report.NumRollbacks,
                   (unsigned long long)Report.NumWatchdogFires,
                   Report.Degraded ? ", degraded" : "",
                   Report.InterpreterFallback ? ", interpreter fallback"
                                              : "");
    } else
      Stop = Translator->run(Interp, Opts.MaxInsns);
    Translations = Translator->translationCount();
    Dispatches = Translator->dispatchCount();
    IbtcHits = Translator->ibtcHitCount();
    IbtcMisses = Translator->ibtcMissCount();
    Flushes = Translator->flushCount();
  }

  std::fputs(Interp.output().c_str(), stdout);
  std::fprintf(stderr, "[%s after %llu insns]\n", describeStop(Stop),
               (unsigned long long)Interp.instructionCount());
  if (Stop.Kind == StopKind::Trapped) {
    uint64_t GuestPC =
        Translator ? Translator->guestPCFor(Stop.PC) : Stop.PC;
    std::fprintf(stderr, "[%s]\n",
                 formatTrapDiagnostic(Stop, Interp.state(), GuestPC).c_str());
  }
  if (Opts.Stats) {
    std::fprintf(stderr,
                 "insns:        %llu\ncycles:       %llu\n"
                 "output hash:  %016llx\n",
                 (unsigned long long)Interp.instructionCount(),
                 (unsigned long long)Interp.cycleCount(),
                 (unsigned long long)hashOutput(Interp.output()));
    if (!Opts.Native)
      std::fprintf(stderr,
                   "translations: %llu\ndispatches:   %llu\n"
                   "ibtc:         %llu hits / %llu misses\n"
                   "flushes:      %llu\n",
                   (unsigned long long)Translations,
                   (unsigned long long)Dispatches,
                   (unsigned long long)IbtcHits,
                   (unsigned long long)IbtcMisses,
                   (unsigned long long)Flushes);
  }
  if (Opts.DumpCache && Translator) {
    std::vector<const TranslatedBlock *> Sorted;
    for (const TranslatedBlock &TB : Translator->blocks())
      Sorted.push_back(&TB);
    std::sort(Sorted.begin(), Sorted.end(),
              [](const TranslatedBlock *A, const TranslatedBlock *B) {
                return A->GuestAddr < B->GuestAddr;
              });
    for (const TranslatedBlock *TB : Sorted) {
      std::vector<uint8_t> Code(TB->CacheSize);
      Mem.readRaw(TB->CacheAddr, Code.data(), Code.size());
      std::printf("; guest block 0x%llx\n%s",
                  (unsigned long long)TB->GuestAddr,
                  disassembleRange(Code.data(), Code.size(), TB->CacheAddr)
                      .c_str());
    }
  }
  return Stop.Kind == StopKind::Halted ? 0 : 1;
}
