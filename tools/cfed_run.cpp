//===- cfed_run.cpp - Command-line driver for the CFED pipeline -----------------===//
//
// Assemble-and-run driver exposing the whole pipeline from the shell:
//
//   cfed-run [options] <file.s | workload name>
//
//   --native             run on the bare interpreter (no DBT)
//   --tier=<t>           interp|base|opt: interp is an alias for --native,
//                        base is the baseline translator, opt enables the
//                        optimizing trace tier (hot-trace formation,
//                        adaptive check placement, update folding)
//   --trace-limit=<n>    max blocks fused into one optimized trace
//                        (default 8; needs --tier=opt to matter)
//   --tech=<t>           none|cfcss|ecca|ecf|edgcf|rcf   (default none)
//   --flavor=<f>         jcc|cmov                        (default jcc)
//   --policy=<p>         allbb|retbe|ret|end|store       (default allbb)
//   --eager              whole-program translation (required for
//                        cfcss/ecca)
//   --dfc                layer SWIFT-style data-flow checking under the
//                        control-flow technique
//   --max-insns=<n>      instruction budget (default 200M)
//   --scrub[=<n>]        self-integrity: scrub the code cache (verify
//                        every live translation's integrity word) once
//                        per n cache-exit dispatches (default 64)
//   --verify-dispatch=<n> self-integrity: lazily verify a block's
//                        integrity word every n dispatches landing on it
//   --shadow-stack       maintain a shadow return stack and trap ret
//                        target mismatches (0x5AC) — catches forged
//                        returns every signature scheme accepts
//   --shadow-sig         self-integrity: duplicate the runtime signature
//                        into shadow registers and cross-check at
//                        CHECK_SIG sites (flipped signature state traps
//                        as monitor corruption, 0x5EC)
//   --recover            run under checkpoint/rollback recovery: detections
//                        roll back and re-execute instead of terminating
//                        (with --inject: classify Recovered/RecoveryFailed)
//   --watchdog=<n>       errant-flow watchdog bound in instructions
//                        (0 disables; default 1M; needs --recover)
//   --ckpt-interval=<n>  instructions between checkpoints (default 10000;
//                        needs --recover)
//   --inject=<n>         run an n-fault injection campaign instead of a
//                        plain run
//   --campaign=<n>       run an n-fault campaign through the campaign
//                        engine: batched, checkpointed, resumable
//   --campaign-attack=<n> adversarial mode: run an n-attack campaign
//                        (return forging / IBTC swaps / code patching)
//                        and print the per-family precision matrix;
//                        shares the engine checkpoint/shard/jobs flags;
//                        with --recover, attacks run under rollback
//                        recovery; with --postmortem-dir, every evaded
//                        attack leaves a flight-recorder bundle
//   --campaign-checkpoint=<file>
//                        checkpoint file; an existing one resumes the
//                        campaign where it stopped
//   --campaign-interval=<n>
//                        injections per checkpoint batch (default 64)
//   --campaign-shard=<k/n>
//                        run shard k of n (0-based): this process takes
//                        every n-th planned fault starting at k
//   --campaign-out=<file> write the machine-readable campaign result
//                        (merge shard files with `cfed-stat merge`)
//   --campaign-stop-ci=<w>
//                        early stopping: close a category cell once the
//                        95% Wilson interval on its SDC rate is tighter
//                        than half-width w (sharded runs additionally
//                        need --campaign-coordinator)
//   --campaign-coordinator=<dir>
//                        coordinate sharded early stopping through live
//                        snapshots in <dir>: shards run the global batch
//                        sequence in lockstep and close cells on merged
//                        counts, so the merged result equals the
//                        unsharded --campaign-stop-ci run
//   --live-export=<file> publish an atomic live telemetry snapshot to
//                        <file> while the run executes (tail it with
//                        cfed-top or `cfed-stat tail`); campaign-engine
//                        runs publish at batch boundaries
//                        (deterministic), other runs from a background
//                        thread every --live-interval ms
//   --live-interval=<ms> background live-export publish period
//                        (default 1000)
//   --run-id=<id>        run identifier stamped into live snapshots
//                        (default: the input name, or campaign-<seed>
//                        for engine runs)
//   --fault-model=<m>    single|multi|burst mask shape for planned
//                        faults (default single; applies to --inject
//                        and --campaign)
//   --jobs=<n>           injection thread count (default 1)
//   --seed=<n>           campaign seed (default 1)
//   --disasm             print the guest disassembly and exit
//   --dump-cfg           print the guest CFG as Graphviz DOT and exit
//   --dump-cache         print the translated code cache after the run
//   --stats[=json|csv]   emit the telemetry-registry snapshot: human text
//                        on stderr (default), or JSON / CSV on stdout
//   --trace=<file>       write the structured event trace as Chrome
//                        trace_event JSON (open in about://tracing)
//   --trace-buffer=<n>   event ring-buffer capacity (default 65536)
//   --profile-blocks[=N] attach a block-execution profile and print the
//                        top-N hot-block report after the run (default 10)
//   --postmortem-dir=DIR write flight-recorder post-mortem bundles (one
//                        JSON file per trap / watchdog fire / ladder
//                        escalation; per-injection bundles with --inject)
//   --golden-trace=FILE  plain run: record the per-sub-block architectural
//                        digest oracle to FILE; campaign modes: also dump
//                        the campaign's internal oracle to FILE after the
//                        golden run
//   --prop-trace         plain run: replay against --golden-trace=FILE and
//                        report the first architectural divergence;
//                        campaign modes: track fault propagation per
//                        injection (prop.* counters, divergence->outcome
//                        funnel; view with `cfed-stat prop`)
//
// The positional argument is a path to a VISA assembly file, or the
// name of a built-in workload (e.g. 181.mcf).
//
//===----------------------------------------------------------------------===//

#include "cfg/Cfg.h"
#include "dbt/Dbt.h"
#include "fault/Campaign.h"
#include "fault/CampaignEngine.h"
#include "isa/Disasm.h"
#include "recovery/Recovery.h"
#include "support/CliArgs.h"
#include "support/Diagnostics.h"
#include "support/Format.h"
#include "support/Table.h"
#include "telemetry/BlockProfile.h"
#include "telemetry/FlightRecorder.h"
#include "telemetry/LiveExport.h"
#include "telemetry/Metrics.h"
#include "telemetry/Profile.h"
#include "telemetry/Provenance.h"
#include "telemetry/Trace.h"
#include "vm/Layout.h"
#include "vm/Loader.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

using namespace cfed;

namespace {

enum class StatsMode : uint8_t { Off, Text, Json, Csv };

struct Options {
  bool Native = false;
  DbtConfig Config;
  uint64_t MaxInsns = 200000000ULL;
  bool Recover = false;
  RecoveryConfig Recovery;
  uint64_t Injections = 0;
  uint64_t Seed = 1;
  uint64_t CampaignInjections = 0;
  uint64_t AttackCount = 0;
  std::string CampaignCheckpoint;
  uint64_t CampaignInterval = 64;
  unsigned ShardIndex = 0;
  unsigned NumShards = 1;
  std::string CampaignOut;
  double StopHalfWidth = 0.0;
  std::string CoordinatorDir;
  std::string LiveExport;
  uint64_t LiveIntervalMs = 1000;
  std::string RunId;
  FaultModel Model = FaultModel::SingleBit;
  uint64_t Jobs = 1;
  bool Disasm = false;
  bool DumpCfg = false;
  bool DumpCache = false;
  StatsMode Stats = StatsMode::Off;
  std::string TraceFile;
  uint64_t TraceBuffer = 65536;
  bool ProfileBlocks = false;
  uint64_t ProfileTopN = 10;
  std::string PostmortemDir;
  std::string GoldenTraceFile;
  bool PropTrace = false;
  std::string Input;
};

int usage() {
  std::fprintf(stderr,
               "usage: cfed-run [--native] [--tier=interp|base|opt] "
               "[--trace-limit=N]\n"
               "                [--tech=T] [--flavor=F] "
               "[--policy=P] [--eager] [--dfc]\n"
               "                [--max-insns=N] [--scrub[=N]] "
               "[--verify-dispatch=N] [--shadow-sig]\n"
               "                [--recover] [--watchdog=N] "
               "[--ckpt-interval=N]\n"
               "                [--inject=N] [--seed=N] "
               "[--disasm] [--dump-cfg]\n"
               "                [--campaign=N] [--campaign-attack=N] "
               "[--shadow-stack]\n"
               "                "
               "[--campaign-checkpoint=FILE] [--campaign-interval=N]\n"
               "                [--campaign-shard=K/N] "
               "[--campaign-out=FILE] [--campaign-stop-ci=W]\n"
               "                [--campaign-coordinator=DIR] "
               "[--live-export=FILE] [--live-interval=MS]\n"
               "                [--run-id=ID] "
               "[--fault-model=single|multi|burst] "
               "[--jobs=N]\n"
               "                [--dump-cache] [--stats[=json|csv]] "
               "[--trace=FILE] [--trace-buffer=N]\n"
               "                [--profile-blocks[=N]] "
               "[--postmortem-dir=DIR]\n"
               "                [--golden-trace=FILE] [--prop-trace]\n"
               "                <file.s | workload>\n");
  return 2;
}

bool parseTech(const std::string &Name, Technique &Out) {
  if (Name == "none")
    Out = Technique::None;
  else if (Name == "cfcss")
    Out = Technique::Cfcss;
  else if (Name == "ecca")
    Out = Technique::Ecca;
  else if (Name == "ecf")
    Out = Technique::Ecf;
  else if (Name == "edgcf")
    Out = Technique::EdgCf;
  else if (Name == "rcf")
    Out = Technique::Rcf;
  else
    return false;
  return true;
}

bool parsePolicy(const std::string &Name, CheckPolicy &Out) {
  if (Name == "allbb")
    Out = CheckPolicy::AllBB;
  else if (Name == "retbe")
    Out = CheckPolicy::RetBE;
  else if (Name == "ret")
    Out = CheckPolicy::Ret;
  else if (Name == "end")
    Out = CheckPolicy::End;
  else if (Name == "store")
    Out = CheckPolicy::StoreBB;
  else
    return false;
  return true;
}

bool parseArgs(int Argc, char **Argv, Options &Opts) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    cli::Flag F;
    if (!cli::splitFlag(Arg, F)) {
      if (!Opts.Input.empty())
        return cli::extraPositional(Arg);
      Opts.Input = Arg;
      continue;
    }
    // A bare flag: "--eager=5" is an error, not a silent mismatch.
    auto Bare = [&F](bool &Out) {
      if (F.HasValue)
        return cli::unexpectedValue(F.Name);
      Out = true;
      return true;
    };
    // A flag with a required strictly-parsed number.
    auto Uint = [&F](uint64_t &Out, const char *What) {
      if (!F.HasValue || !cli::parseUint(F.Value, Out))
        return cli::badValue(F.Name, What, F.Value);
      return true;
    };
    if (F.Name == "--native") {
      if (!Bare(Opts.Native))
        return false;
    } else if (F.Name == "--tier") {
      if (F.Value == "interp")
        Opts.Native = true;
      else if (F.Value == "base")
        Opts.Config.Tier = DbtTier::Base;
      else if (F.Value == "opt")
        Opts.Config.Tier = DbtTier::Opt;
      else
        return cli::badValue(F.Name, "interp|base|opt", F.Value);
    } else if (F.Name == "--trace-limit") {
      uint64_t Limit = 0;
      if (!F.HasValue || !cli::parseUint(F.Value, Limit) || Limit == 0)
        return cli::badValue(F.Name, "<blocks >= 1>", F.Value);
      Opts.Config.TraceLimit = static_cast<unsigned>(Limit);
    } else if (F.Name == "--tech") {
      if (!F.HasValue || !parseTech(F.Value, Opts.Config.Tech))
        return cli::badValue(F.Name, "none|cfcss|ecca|ecf|edgcf|rcf",
                             F.Value);
    } else if (F.Name == "--flavor") {
      if (F.Value == "jcc")
        Opts.Config.Flavor = UpdateFlavor::Jcc;
      else if (F.Value == "cmov")
        Opts.Config.Flavor = UpdateFlavor::CMovcc;
      else
        return cli::badValue(F.Name, "jcc|cmov", F.Value);
    } else if (F.Name == "--policy") {
      if (!F.HasValue || !parsePolicy(F.Value, Opts.Config.Policy))
        return cli::badValue(F.Name, "allbb|retbe|ret|end|store", F.Value);
    } else if (F.Name == "--eager") {
      if (!Bare(Opts.Config.EagerTranslate))
        return false;
    } else if (F.Name == "--dfc") {
      if (!Bare(Opts.Config.DataFlowCheck))
        return false;
    } else if (F.Name == "--max-insns") {
      if (!Uint(Opts.MaxInsns, "<count>"))
        return false;
    } else if (F.Name == "--scrub") {
      Opts.Config.ScrubInterval = 64;
      if (F.HasValue &&
          (!cli::parseUint(F.Value, Opts.Config.ScrubInterval) ||
           Opts.Config.ScrubInterval == 0))
        return cli::badValue(F.Name, "<dispatch interval >= 1>", F.Value);
    } else if (F.Name == "--verify-dispatch") {
      if (!Uint(Opts.Config.VerifyDispatchInterval, "<dispatch interval>"))
        return false;
    } else if (F.Name == "--shadow-sig") {
      if (!Bare(Opts.Config.ShadowSignature))
        return false;
    } else if (F.Name == "--shadow-stack") {
      if (!Bare(Opts.Config.ShadowStack))
        return false;
    } else if (F.Name == "--recover") {
      if (!Bare(Opts.Recover))
        return false;
    } else if (F.Name == "--watchdog") {
      if (!Uint(Opts.Recovery.WatchdogBound, "<instruction bound>"))
        return false;
    } else if (F.Name == "--ckpt-interval") {
      if (!Uint(Opts.Recovery.CheckpointInterval, "<instruction interval>"))
        return false;
    } else if (F.Name == "--inject") {
      if (!Uint(Opts.Injections, "<count>"))
        return false;
    } else if (F.Name == "--campaign") {
      if (!Uint(Opts.CampaignInjections, "<count>"))
        return false;
    } else if (F.Name == "--campaign-attack") {
      if (!Uint(Opts.AttackCount, "<count>"))
        return false;
    } else if (F.Name == "--campaign-checkpoint") {
      if (!F.HasValue || F.Value.empty())
        return cli::badValue(F.Name, "<file>", F.Value);
      Opts.CampaignCheckpoint = F.Value;
    } else if (F.Name == "--campaign-interval") {
      if (!Uint(Opts.CampaignInterval, "<count>") ||
          Opts.CampaignInterval == 0)
        return cli::badValue(F.Name, "<count >= 1>", F.Value);
    } else if (F.Name == "--campaign-shard") {
      uint64_t K = 0, N = 0;
      size_t Slash = F.Value.find('/');
      if (!F.HasValue || Slash == std::string::npos ||
          !cli::parseUint(F.Value.substr(0, Slash), K) ||
          !cli::parseUint(F.Value.substr(Slash + 1), N) || N == 0 || K >= N)
        return cli::badValue(F.Name, "<k/n with 0 <= k < n>", F.Value);
      Opts.ShardIndex = static_cast<unsigned>(K);
      Opts.NumShards = static_cast<unsigned>(N);
    } else if (F.Name == "--campaign-out") {
      if (!F.HasValue || F.Value.empty())
        return cli::badValue(F.Name, "<file>", F.Value);
      Opts.CampaignOut = F.Value;
    } else if (F.Name == "--campaign-stop-ci") {
      if (!F.HasValue || !cli::parseDouble(F.Value, Opts.StopHalfWidth) ||
          Opts.StopHalfWidth <= 0.0 || Opts.StopHalfWidth >= 0.5)
        return cli::badValue(F.Name, "<half-width in (0, 0.5)>", F.Value);
    } else if (F.Name == "--campaign-coordinator") {
      if (!F.HasValue || F.Value.empty())
        return cli::badValue(F.Name, "<directory>", F.Value);
      Opts.CoordinatorDir = F.Value;
    } else if (F.Name == "--live-export") {
      if (!F.HasValue || F.Value.empty())
        return cli::badValue(F.Name, "<file>", F.Value);
      Opts.LiveExport = F.Value;
    } else if (F.Name == "--live-interval") {
      if (!Uint(Opts.LiveIntervalMs, "<milliseconds >= 1>") ||
          Opts.LiveIntervalMs == 0)
        return cli::badValue(F.Name, "<milliseconds >= 1>", F.Value);
    } else if (F.Name == "--run-id") {
      if (!F.HasValue || F.Value.empty())
        return cli::badValue(F.Name, "<id>", F.Value);
      Opts.RunId = F.Value;
    } else if (F.Name == "--fault-model") {
      if (!F.HasValue || !parseFaultModel(F.Value, Opts.Model))
        return cli::badValue(F.Name, "single|multi|burst", F.Value);
    } else if (F.Name == "--jobs") {
      if (!Uint(Opts.Jobs, "<count>") || Opts.Jobs == 0)
        return cli::badValue(F.Name, "<count >= 1>", F.Value);
    } else if (F.Name == "--seed") {
      if (!Uint(Opts.Seed, "<seed>"))
        return false;
    } else if (F.Name == "--disasm") {
      if (!Bare(Opts.Disasm))
        return false;
    } else if (F.Name == "--dump-cfg") {
      if (!Bare(Opts.DumpCfg))
        return false;
    } else if (F.Name == "--dump-cache") {
      if (!Bare(Opts.DumpCache))
        return false;
    } else if (F.Name == "--stats") {
      if (!F.HasValue)
        Opts.Stats = StatsMode::Text;
      else if (F.Value == "json")
        Opts.Stats = StatsMode::Json;
      else if (F.Value == "csv")
        Opts.Stats = StatsMode::Csv;
      else
        return cli::badValue(F.Name, "json|csv", F.Value);
    } else if (F.Name == "--trace") {
      if (!F.HasValue || F.Value.empty())
        return cli::badValue(F.Name, "<file>", F.Value);
      Opts.TraceFile = F.Value;
    } else if (F.Name == "--trace-buffer") {
      if (!Uint(Opts.TraceBuffer, "<capacity>"))
        return false;
    } else if (F.Name == "--profile-blocks") {
      Opts.ProfileBlocks = true;
      if (F.HasValue && (!cli::parseUint(F.Value, Opts.ProfileTopN) ||
                         Opts.ProfileTopN == 0))
        return cli::badValue(F.Name, "<top-N >= 1>", F.Value);
    } else if (F.Name == "--postmortem-dir") {
      if (!F.HasValue || F.Value.empty())
        return cli::badValue(F.Name, "<directory>", F.Value);
      Opts.PostmortemDir = F.Value;
    } else if (F.Name == "--golden-trace") {
      if (!F.HasValue || F.Value.empty())
        return cli::badValue(F.Name, "<file>", F.Value);
      Opts.GoldenTraceFile = F.Value;
    } else if (F.Name == "--prop-trace") {
      if (!Bare(Opts.PropTrace))
        return false;
    } else {
      return cli::unknownOption(Arg);
    }
  }
  if (Opts.Input.empty()) {
    std::fprintf(stderr, "error: missing <file.s | workload> argument\n");
    return false;
  }
  if (!Opts.CoordinatorDir.empty() && Opts.CampaignInjections == 0) {
    std::fprintf(stderr, "error: --campaign-coordinator needs --campaign\n");
    return false;
  }
  if (Opts.AttackCount > 0 &&
      (Opts.CampaignInjections > 0 || Opts.Injections > 0)) {
    std::fprintf(stderr, "error: --campaign-attack excludes --campaign "
                         "and --inject (one campaign mode per run)\n");
    return false;
  }
  if (Opts.AttackCount > 0 &&
      (Opts.StopHalfWidth > 0.0 || !Opts.CoordinatorDir.empty() ||
       Opts.PropTrace || !Opts.GoldenTraceFile.empty())) {
    std::fprintf(stderr,
                 "error: --campaign-stop-ci/--campaign-coordinator/"
                 "--golden-trace/--prop-trace do not apply to "
                 "--campaign-attack\n");
    return false;
  }
  // Campaign modes record their own oracle during prepare(); only a
  // plain-run replay needs an external trace file.
  if (Opts.PropTrace && Opts.GoldenTraceFile.empty() &&
      Opts.Injections == 0 && Opts.CampaignInjections == 0) {
    std::fprintf(stderr,
                 "error: --prop-trace on a plain run needs "
                 "--golden-trace=FILE (record one with a prior clean run)\n");
    return false;
  }
  if (Opts.Recover && Opts.CampaignInjections == 0 && Opts.Injections == 0 &&
      (Opts.PropTrace || !Opts.GoldenTraceFile.empty())) {
    std::fprintf(stderr, "error: --golden-trace/--prop-trace do not compose "
                         "with a plain --recover run (rollback rewinds "
                         "architectural state but not the digest stream)\n");
    return false;
  }
  return true;
}

bool loadSource(const std::string &Input, std::string &Source) {
  for (const WorkloadInfo &Info : getWorkloadSuite()) {
    if (Info.Name == Input) {
      Source = getWorkloadSource(Input);
      return true;
    }
  }
  std::ifstream File(Input);
  if (!File)
    return false;
  std::ostringstream Buffer;
  Buffer << File.rdbuf();
  Source = Buffer.str();
  return true;
}

/// Pre-registers the counters every stats report must contain even when
/// they stayed zero, so consumers can rely on the keys being present.
void registerWellKnownKeys(telemetry::MetricsRegistry &Registry) {
  for (const char *Key :
       {"dbt.translations", "dbt.dispatches", "dbt.chains", "dbt.ibtc_hits",
        "dbt.ibtc_misses", "dbt.flushes", "recovery.checkpoints",
        "recovery.rollbacks", "trace.dropped"})
    Registry.counter(Key);
  for (unsigned C = 0; C + 1 < NumBranchErrorCategories; ++C)
    Registry.counter(std::string("trap.category_") +
                     getCategoryName(static_cast<BranchErrorCategory>(C)));
}

/// Publishes derived gauges and prints the registry snapshot in the
/// requested mode: machine formats on stdout, text through Diagnostics.
void emitStats(const Options &Opts, telemetry::MetricsRegistry &Registry) {
  if (Opts.Stats == StatsMode::Off)
    return;
  telemetry::RegistrySnapshot Snap = Registry.snapshot();
  uint64_t Hits = Snap.counterOr("dbt.ibtc_hits");
  uint64_t Misses = Snap.counterOr("dbt.ibtc_misses");
  if (Hits + Misses > 0) {
    Registry.gauge("dbt.ibtc_hit_rate")
        .set(static_cast<double>(Hits) / static_cast<double>(Hits + Misses));
    Snap = Registry.snapshot();
  }
  switch (Opts.Stats) {
  case StatsMode::Json:
    std::printf("%s\n", Snap.toJson().c_str());
    break;
  case StatsMode::Csv:
    std::printf("%s", Snap.toCsv().c_str());
    break;
  case StatsMode::Text: {
    reportNote("run statistics:");
    std::string Text = Snap.toText();
    size_t Pos = 0;
    while (Pos < Text.size()) {
      size_t End = Text.find('\n', Pos);
      reportNote(Text.substr(Pos, End - Pos));
      Pos = End == std::string::npos ? Text.size() : End + 1;
    }
    break;
  }
  case StatsMode::Off:
    break;
  }
}

/// Surfaces event-ring overflow: wraparound loss is otherwise invisible
/// in the stats report, so publish it as a counter and warn when the
/// user asked for stats.
void publishTracerDrops(const Options &Opts,
                        telemetry::MetricsRegistry &Registry,
                        const telemetry::EventTracer *Tracer) {
  if (!Tracer)
    return;
  uint64_t Dropped = Tracer->dropped();
  Registry.counter("trace.dropped").inc(Dropped);
  if (Dropped > 0 && Opts.Stats != StatsMode::Off)
    reportNotef("warning: event ring overflowed; %llu trace event(s) "
                "dropped (raise --trace-buffer)",
                static_cast<unsigned long long>(Dropped));
}

/// Writes the event ring as Chrome trace_event JSON.
void writeTrace(const Options &Opts, const telemetry::EventTracer *Tracer) {
  if (!Tracer || Opts.TraceFile.empty())
    return;
  std::ofstream File(Opts.TraceFile);
  if (!File) {
    std::fprintf(stderr, "error: cannot write trace file '%s'\n",
                 Opts.TraceFile.c_str());
    return;
  }
  File << Tracer->renderChromeJson() << '\n';
  reportNotef("trace: %llu events written to %s (%llu dropped)",
              static_cast<unsigned long long>(Tracer->size()),
              Opts.TraceFile.c_str(),
              static_cast<unsigned long long>(Tracer->dropped()));
}

/// Per-category trap counter for detected campaign outcomes.
void countDetection(telemetry::MetricsRegistry &Registry,
                    BranchErrorCategory Cat, uint64_t N = 1) {
  if (Cat == BranchErrorCategory::NoError || N == 0)
    return;
  Registry.counter(std::string("trap.category_") + getCategoryName(Cat))
      .inc(N);
}

int runCampaign(const AsmProgram &Program, const Options &Opts,
                telemetry::MetricsRegistry &Registry,
                telemetry::EventTracer *Tracer) {
  FaultCampaign Campaign(Program, Opts.Config);
  // Propagation tracking must be decided before prepare(): the digest
  // markers change the code-cache layout.
  bool Prop = Opts.PropTrace || !Opts.GoldenTraceFile.empty();
  Campaign.enablePropagation(Prop);
  if (!Campaign.prepare(Opts.MaxInsns)) {
    std::fprintf(stderr, "error: golden run failed (program must halt "
                         "and the technique must support the program)\n");
    return 1;
  }
  if (Prop && !Opts.GoldenTraceFile.empty()) {
    std::string Err;
    if (!Campaign.goldenTrace().save(Opts.GoldenTraceFile, &Err)) {
      std::fprintf(stderr, "error: cannot write golden trace: %s\n",
                   Err.c_str());
      return 1;
    }
    reportNotef("golden trace: %llu records written to %s",
                (unsigned long long)Campaign.goldenTrace().Records.size(),
                Opts.GoldenTraceFile.c_str());
  }
  std::unique_ptr<telemetry::FlightRecorder> Recorder;
  if (!Opts.PostmortemDir.empty()) {
    Recorder = std::make_unique<telemetry::FlightRecorder>(
        Opts.PostmortemDir, Opts.TraceBuffer < 256 ? Opts.TraceBuffer : 256);
    Recorder->setPrefix("injection_");
  }
  std::printf("golden: %llu insns, %llu branch executions, hash "
              "%016llx\n",
              (unsigned long long)Campaign.goldenInsns(),
              (unsigned long long)Campaign.branchExecutions(SiteClass::Any),
              (unsigned long long)Campaign.goldenHash());
  if (Opts.Recover) {
    OutcomeCounts Totals;
    auto Faults = Campaign.plan(Opts.Injections * 4, Opts.Seed,
                                SiteClass::Any, Opts.Model);
    uint64_t Done = 0;
    uint64_t Ckpts = 0, Rollbacks = 0, Watchdogs = 0;
    for (const PlannedFault &Fault : Faults) {
      if (Fault.Category == BranchErrorCategory::NoError)
        continue;
      if (Done++ >= Opts.Injections)
        break;
      FaultCampaign::RecoveryInjection Inj =
          Campaign.injectWithRecovery(Fault, Opts.Recovery, Recorder.get());
      Totals.add(Inj.Result);
      Registry.counter(getOutcomeCounterName(Fault.Category, Inj.Result))
          .inc();
      Registry.counter("fault.injections").inc();
      // Recovered and RecoveryFailed runs went through a detection
      // before rolling back; count them toward the category's traps.
      if (Inj.Result == Outcome::DetectedSignature ||
          Inj.Result == Outcome::DetectedHardware ||
          Inj.Result == Outcome::Recovered ||
          Inj.Result == Outcome::RecoveryFailed)
        countDetection(Registry, Fault.Category);
      Ckpts += Inj.Recovery.NumCheckpoints;
      Rollbacks += Inj.Recovery.NumRollbacks;
      Watchdogs += Inj.Recovery.NumWatchdogFires;
      if (Tracer)
        Tracer->record(Done, telemetry::TraceEventKind::CampaignInjection,
                       getOutcomeName(Inj.Result), Fault.SiteAddr,
                       Inj.Recovery.NumRollbacks);
    }
    Registry.counter("recovery.checkpoints").inc(Ckpts);
    Registry.counter("recovery.rollbacks").inc(Rollbacks);
    Registry.counter("recovery.watchdog_fires").inc(Watchdogs);
    Table T;
    T.setHeader({"outcome", "count"});
    T.addRow({"recovered", std::to_string(Totals.Recovered)});
    T.addRow({"masked", std::to_string(Totals.Masked)});
    T.addRow({"recovery failed", std::to_string(Totals.RecoveryFailed)});
    T.addRow({"silent data corruption", std::to_string(Totals.Sdc)});
    T.addRow({"timeout", std::to_string(Totals.Timeout)});
    std::printf("%s", T.render().c_str());
    if (Recorder)
      reportNotef("post-mortem: %llu bundles written under %s",
                  (unsigned long long)Recorder->bundleCount(),
                  Recorder->dir().c_str());
    publishTracerDrops(Opts, Registry, Tracer);
    emitStats(Opts, Registry);
    writeTrace(Opts, Tracer);
    return 0;
  }
  OutcomeCounts Totals;
  uint64_t LatencySum = 0;
  auto Faults = Campaign.plan(Opts.Injections * 4, Opts.Seed,
                              SiteClass::Any, Opts.Model);
  uint64_t Done = 0;
  for (const PlannedFault &Fault : Faults) {
    if (Fault.Category == BranchErrorCategory::NoError)
      continue;
    if (Done++ >= Opts.Injections)
      break;
    InjectionReport Report = Campaign.injectDetailed(Fault, Recorder.get());
    Totals.add(Report.Result);
    Registry.counter(getOutcomeCounterName(Fault.Category, Report.Result))
        .inc();
    Registry.counter("fault.injections").inc();
    if (Report.Prop.Enabled) {
      Registry
          .counter(getPropagationCounterName(Fault.Category,
                                             Report.Prop.Class))
          .inc();
      if (Report.Prop.Class == telemetry::PropClass::DetectedAfterDivergence)
        Registry
            .histogram(getPropagationDistanceName(Fault.Category),
                       telemetry::propDistanceBounds())
            .observe(Report.Prop.InsnsCrossed);
    }
    if (Report.Result == Outcome::DetectedSignature ||
        Report.Result == Outcome::DetectedHardware)
      countDetection(Registry, Fault.Category);
    if (Tracer)
      Tracer->record(Done, telemetry::TraceEventKind::CampaignInjection,
                     getOutcomeName(Report.Result), Fault.SiteAddr,
                     Report.LatencyInsns);
    if (Report.Result == Outcome::DetectedSignature)
      LatencySum += Report.LatencyInsns;
  }
  Table T;
  T.setHeader({"outcome", "count"});
  T.addRow({"detected (signature)", std::to_string(Totals.DetectedSig)});
  T.addRow({"detected (hardware)", std::to_string(Totals.DetectedHw)});
  T.addRow({"masked", std::to_string(Totals.Masked)});
  T.addRow({"silent data corruption", std::to_string(Totals.Sdc)});
  T.addRow({"timeout", std::to_string(Totals.Timeout)});
  std::printf("%s", T.render().c_str());
  if (Totals.DetectedSig)
    std::printf("mean signature-detection latency: %llu insns\n",
                (unsigned long long)(LatencySum / Totals.DetectedSig));
  if (Prop)
    std::printf("%s", renderPropagationFunnel(Registry.snapshot()).c_str());
  if (Recorder)
    reportNotef("post-mortem: %llu bundles written under %s",
                (unsigned long long)Recorder->bundleCount(),
                Recorder->dir().c_str());
  publishTracerDrops(Opts, Registry, Tracer);
  emitStats(Opts, Registry);
  writeTrace(Opts, Tracer);
  return 0;
}

/// The --campaign path: batched, checkpointed, optionally sharded and
/// self-stopping injection through the campaign engine.
int runEngine(const AsmProgram &Program, const Options &Opts,
              telemetry::MetricsRegistry &Registry) {
  EngineConfig Engine;
  Engine.NumInjections = Opts.CampaignInjections;
  Engine.Seed = Opts.Seed;
  Engine.Sites = SiteClass::Any;
  Engine.Model = Opts.Model;
  Engine.MaxInsns = Opts.MaxInsns;
  Engine.Jobs = static_cast<unsigned>(Opts.Jobs);
  Engine.CheckpointInterval = Opts.CampaignInterval;
  Engine.CheckpointFile = Opts.CampaignCheckpoint;
  Engine.ShardIndex = Opts.ShardIndex;
  Engine.NumShards = Opts.NumShards;
  Engine.StopHalfWidth = Opts.StopHalfWidth;
  Engine.CoordinatorDir = Opts.CoordinatorDir;
  Engine.LiveExportFile = Opts.LiveExport;
  Engine.RunId = Opts.RunId;
  Engine.TrackPropagation = Opts.PropTrace || !Opts.GoldenTraceFile.empty();
  Engine.GoldenTraceFile = Opts.GoldenTraceFile;

  CampaignEngine Runner(Program, Opts.Config, Engine);
  EngineReport Report = Runner.run();

  Table T;
  T.setHeader({"cell", "inj", "det-sig", "det-hw", "masked", "SDC",
               "timeout", "SDC rate", "95% CI", "lat p50", "lat p90",
               "skip", "realloc"});
  for (const CellReport &Cell : Report.Cells) {
    if (Cell.Counts.total() == 0 && Cell.Skipped == 0)
      continue;
    const telemetry::RegistrySnapshot::HistogramValue *Lat = nullptr;
    std::string LatName = CampaignEngine::getLatencyHistogramName(
        Cell.Category);
    for (const auto &[Name, H] : Report.Registry.Histograms)
      if (Name == LatName)
        Lat = &H;
    std::string Name = getCategoryName(Cell.Category);
    if (Cell.Stopped)
      Name += " (stopped)";
    T.addRow({Name, std::to_string(Cell.Counts.total()),
              std::to_string(Cell.Counts.DetectedSig),
              std::to_string(Cell.Counts.DetectedHw),
              std::to_string(Cell.Counts.Masked),
              std::to_string(Cell.Counts.Sdc),
              std::to_string(Cell.Counts.Timeout),
              formatString("%.3f", Cell.SdcRate),
              formatString("[%.3f, %.3f]", Cell.Interval.Low,
                           Cell.Interval.High),
              Lat ? Lat->quantileText(0.5) : "-",
              Lat ? Lat->quantileText(0.9) : "-",
              std::to_string(Cell.Skipped),
              std::to_string(Cell.Reallocated)});
  }
  std::printf("%s", T.render().c_str());
  if (Engine.TrackPropagation)
    std::printf("%s", renderPropagationFunnel(Report.Registry).c_str());
  std::printf("campaign: completed=%llu planned=%llu skipped=%llu "
              "shard=%u/%u%s%s\n",
              (unsigned long long)Report.Completed,
              (unsigned long long)Report.Planned,
              (unsigned long long)Report.Skipped, Opts.ShardIndex,
              Opts.NumShards, Report.Resumed ? " resumed" : "",
              Report.Finished ? "" : " (interrupted)");

  if (!Opts.CampaignOut.empty()) {
    std::ofstream Out(Opts.CampaignOut);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write campaign result '%s'\n",
                   Opts.CampaignOut.c_str());
      return 1;
    }
    Out << CampaignEngine::resultToJson(Report, Engine) << '\n';
    reportNotef("campaign result written to %s", Opts.CampaignOut.c_str());
  }

  // Fold the engine's cumulative instruments into the global registry
  // so --stats reports them alongside everything else.
  Registry.merge(Report.Registry);
  for (const CellReport &Cell : Report.Cells)
    countDetection(Registry, Cell.Category,
                   Cell.Counts.DetectedSig + Cell.Counts.DetectedHw);
  emitStats(Opts, Registry);
  return 0;
}

/// The --campaign-attack path: adversarial campaigns with the
/// per-family precision matrix. The engine (checkpointed, shardable)
/// drives the default mode; --recover and --postmortem-dir switch to
/// the direct AttackCampaign so recovery classification and evasion
/// bundles are available.
int runAttack(const AsmProgram &Program, const Options &Opts,
              telemetry::MetricsRegistry &Registry) {
  bool Direct = Opts.Recover || !Opts.PostmortemDir.empty();
  if (Direct &&
      (!Opts.CampaignCheckpoint.empty() || Opts.NumShards > 1)) {
    std::fprintf(stderr,
                 "error: --recover/--postmortem-dir attack campaigns do "
                 "not compose with --campaign-checkpoint/"
                 "--campaign-shard\n");
    return 1;
  }

  telemetry::RegistrySnapshot Snap;
  AttackEngineConfig Engine;
  Engine.NumAttacks = Opts.AttackCount;
  Engine.Seed = Opts.Seed;
  Engine.MaxInsns = Opts.MaxInsns;
  Engine.Jobs = static_cast<unsigned>(Opts.Jobs);
  Engine.CheckpointInterval = Opts.CampaignInterval;
  Engine.CheckpointFile = Opts.CampaignCheckpoint;
  Engine.ShardIndex = Opts.ShardIndex;
  Engine.NumShards = Opts.NumShards;

  AttackEngineReport Report;
  if (Direct) {
    AttackCampaign Campaign(Program, Opts.Config);
    if (!Campaign.prepare(Opts.MaxInsns)) {
      std::fprintf(stderr, "error: golden run failed to halt within the "
                           "instruction budget\n");
      return 1;
    }
    if (Opts.Recover) {
      if (!Opts.PostmortemDir.empty())
        reportNote("--postmortem-dir is ignored for attack campaigns "
                   "under --recover");
      Report.Result = Campaign.runWithRecovery(
          Opts.AttackCount, Opts.Seed, Opts.Recovery,
          static_cast<unsigned>(Opts.Jobs));
    } else {
      telemetry::FlightRecorder Recorder(Opts.PostmortemDir, 256);
      Report.Result =
          Campaign.run(Opts.AttackCount, Opts.Seed,
                       static_cast<unsigned>(Opts.Jobs), &Recorder);
      reportNotef("post-mortem: %llu bundles written under %s",
                  static_cast<unsigned long long>(Recorder.bundleCount()),
                  Opts.PostmortemDir.c_str());
    }
    Report.Registry = Campaign.metrics().snapshot();
    Report.Completed = Report.Result.Attacks;
    Report.Planned = Report.Result.Attacks;
  } else {
    AttackEngine Runner(Program, Opts.Config, Engine);
    Report = Runner.run();
  }
  Snap = Report.Registry;

  std::printf("%s", renderPrecisionMatrix(Snap).c_str());
  std::printf("%s\n", renderPrecisionSummaryLine(Snap).c_str());
  std::printf("attack-campaign: completed=%llu planned=%llu "
              "gadget-valid=%llu shard=%u/%u%s%s\n",
              (unsigned long long)Report.Completed,
              (unsigned long long)Report.Planned,
              (unsigned long long)Snap.counterOr("attack.gadget_valid"),
              Opts.ShardIndex, Opts.NumShards,
              Report.Resumed ? " resumed" : "",
              Report.Finished ? "" : " (interrupted)");

  if (!Opts.CampaignOut.empty()) {
    std::ofstream Out(Opts.CampaignOut);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write campaign result '%s'\n",
                   Opts.CampaignOut.c_str());
      return 1;
    }
    Out << AttackEngine::resultToJson(Report, Engine) << '\n';
    reportNotef("campaign result written to %s", Opts.CampaignOut.c_str());
  }

  Registry.merge(Snap);
  for (unsigned F = 0; F < NumAttackFamilies; ++F) {
    const AttackOutcomeCounts &C =
        Report.Result.of(static_cast<AttackFamily>(F));
    countDetection(Registry, attackCategory(static_cast<AttackFamily>(F)),
                   C.detected() + C.DetectedShadow);
  }
  emitStats(Opts, Registry);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return usage();

  std::string Source;
  if (!loadSource(Opts.Input, Source)) {
    std::fprintf(stderr, "error: cannot open '%s' (not a file or a "
                         "known workload)\n",
                 Opts.Input.c_str());
    return 1;
  }
  AsmResult Assembled = assembleProgram(Source);
  if (!Assembled.succeeded()) {
    std::fprintf(stderr, "assembly failed:\n%s",
                 Assembled.errorText().c_str());
    return 1;
  }
  const AsmProgram &Program = Assembled.Program;

  if (Opts.Disasm) {
    std::printf("%s", disassembleRange(Program.Code.data(),
                                       Program.Code.size(), CodeBase)
                          .c_str());
    return 0;
  }
  if (Opts.DumpCfg) {
    Cfg Graph = Cfg::build(Program.Code.data(), Program.Code.size(),
                           CodeBase, Program.Entry, Program.CodeLabels);
    std::printf("%s", Graph.toDot().c_str());
    return 0;
  }

  telemetry::MetricsRegistry &Registry = telemetry::MetricsRegistry::global();
  registerWellKnownKeys(Registry);
  std::unique_ptr<telemetry::EventTracer> Tracer;
  if (!Opts.TraceFile.empty())
    Tracer = std::make_unique<telemetry::EventTracer>(Opts.TraceBuffer);

  if (Opts.AttackCount > 0)
    return runAttack(Program, Opts, Registry);
  if (Opts.CampaignInjections > 0)
    return runEngine(Program, Opts, Registry);

  // Live telemetry. The campaign engine publishes its own snapshots
  // inline at batch boundaries (deterministic); every other mode samples
  // the global registry from a background service thread. The exporter
  // publishes a final snapshot when it is destroyed on return, after the
  // end-of-run gauges have been folded in.
  std::unique_ptr<telemetry::LiveExporter> Live;
  if (!Opts.LiveExport.empty()) {
    telemetry::LiveExporter::Config LC;
    LC.Path = Opts.LiveExport;
    LC.RunId = Opts.RunId.empty() ? Opts.Input : Opts.RunId;
    LC.IntervalMs = Opts.LiveIntervalMs;
    Live = std::make_unique<telemetry::LiveExporter>(
        LC, [&Registry](telemetry::RegistrySnapshot &Snap,
                        telemetry::Heartbeat &) {
          Snap = Registry.snapshot();
        });
    Live->start();
  }

  if (Opts.Injections > 0)
    return runCampaign(Program, Opts, Registry, Tracer.get());

  Memory Mem;
  Interpreter Interp(Mem);
  StopInfo Stop;
  // Golden-trace record/replay for plain runs; the campaign paths above
  // manage their own oracle inside prepare().
  telemetry::DigestRecorder Digests;
  telemetry::GoldenTrace Oracle;
  bool RecordTrace = !Opts.GoldenTraceFile.empty() && !Opts.PropTrace;
  bool ReplayTrace = Opts.PropTrace;
  if (ReplayTrace) {
    std::string Err;
    if (!Oracle.load(Opts.GoldenTraceFile, &Err)) {
      std::fprintf(stderr, "error: cannot read golden trace '%s': %s\n",
                   Opts.GoldenTraceFile.c_str(), Err.c_str());
      return 1;
    }
  }
  telemetry::PhaseProfiler Profiler;
  telemetry::BlockProfile Profile;
  std::unique_ptr<telemetry::FlightRecorder> Recorder;
  if (!Opts.PostmortemDir.empty())
    Recorder = std::make_unique<telemetry::FlightRecorder>(
        Opts.PostmortemDir, Opts.TraceBuffer < 256 ? Opts.TraceBuffer : 256);
  std::unique_ptr<Dbt> Translator;
  if (Opts.Native) {
    if (Opts.ProfileBlocks)
      reportNote("--profile-blocks needs the DBT; ignored with --native");
    if (RecordTrace || ReplayTrace) {
      Digests.setMode(telemetry::DigestRecorder::Mode::Interp);
      Interp.setDigestRecorder(&Digests);
    }
    loadProgram(Program, LoadMode::Native, Mem, Interp.state());
    telemetry::PhaseProfiler::Scope Timer(&Profiler,
                                          telemetry::Phase::Execute);
    Stop = Interp.run(Opts.MaxInsns);
  } else {
    Translator = std::make_unique<Dbt>(Mem, Opts.Config, &Registry);
    Translator->setTracer(Tracer.get());
    Translator->setProfiler(&Profiler);
    Translator->setFlightRecorder(Recorder.get());
    // Must precede load(): --eager emits the digest markers at load time.
    if (RecordTrace || ReplayTrace)
      Translator->setDigestRecorder(&Digests);
    if (Opts.ProfileBlocks) {
      Translator->setBlockProfile(&Profile);
      // The recovery path drives Interp.run directly, bypassing
      // Dbt::run's binding; attach to the interpreter here too.
      Interp.setBlockProfile(&Profile);
    }
    if (!Translator->load(Program, Interp.state())) {
      std::fprintf(stderr,
                   Opts.Config.EagerTranslate
                       ? "error: technique %s cannot instrument this "
                         "program (indirect control flow defeats static "
                         "signature assignment)\n"
                       : "error: technique %s needs the whole-program "
                         "CFG; add --eager\n",
                   getTechniqueName(Opts.Config.Tech));
      return 1;
    }
    if (Opts.Recover) {
      RecoveryManager Manager(Interp, *Translator, Opts.Recovery);
      Manager.setFlightRecorder(Recorder.get());
      RecoveryReport Report = Manager.run(Opts.MaxInsns);
      Stop = Report.FinalStop;
      if (!Report.FirstDetection.empty())
        reportNotef("first detection: %s", Report.FirstDetection.c_str());
      reportNotef("recovery: %llu checkpoints, %llu rollbacks, "
                  "%llu watchdog fires%s%s",
                  (unsigned long long)Report.NumCheckpoints,
                  (unsigned long long)Report.NumRollbacks,
                  (unsigned long long)Report.NumWatchdogFires,
                  Report.Degraded ? ", degraded" : "",
                  Report.InterpreterFallback ? ", interpreter fallback" : "");
    } else
      Stop = Translator->run(Interp, Opts.MaxInsns);
  }

  // Recovery runs count their traps at each detection; the plain paths
  // count the single final trap here. An exec-violation is the
  // hardware's category-F detector (a jump landing outside code).
  if (Stop.Kind == StopKind::Trapped && !Opts.Recover) {
    Registry.counter(std::string("trap.") + getTrapKindName(Stop.Trap)).inc();
    if (Stop.Trap == TrapKind::ExecViolation)
      countDetection(Registry, BranchErrorCategory::F);
    if (Tracer)
      Tracer->record(Interp.instructionCount(),
                     telemetry::TraceEventKind::TrapRaised,
                     getTrapKindName(Stop.Trap),
                     Translator ? Translator->guestPCFor(Stop.PC) : Stop.PC);
    if (Recorder) {
      telemetry::PostMortem PM;
      if (Translator) {
        PM = Translator->buildPostMortem("trap", Stop, Interp);
      } else {
        // Native run: no translator to attribute through; record the
        // architectural state directly.
        PM.Reason = "trap";
        PM.StopKind = "trap";
        PM.TrapName = getTrapKindName(Stop.Trap);
        PM.Description = describeStop(Stop);
        PM.GuestPC = Stop.PC;
        PM.CachePC = Stop.PC;
        PM.TrapAddr = Stop.TrapAddr;
        PM.BreakCode = Stop.BreakCode;
        PM.Insns = Interp.instructionCount();
        PM.Cycles = Interp.cycleCount();
        const CpuState &State = Interp.state();
        PM.Regs.assign(State.Regs, State.Regs + NumIntRegs);
        PM.FlagBits = State.F.pack();
        if (Tracer)
          PM.Events = Tracer->events();
        PM.Registry = Registry.snapshot();
      }
      std::string Path = Recorder->write(PM);
      if (!Path.empty())
        reportNotef("post-mortem: bundle written to %s", Path.c_str());
      else
        reportNotef("post-mortem: write failed: %s",
                    Recorder->lastError().c_str());
    }
  }

  std::fputs(Interp.output().c_str(), stdout);
  reportNotef("%s after %llu insns", describeStop(Stop),
              (unsigned long long)Interp.instructionCount());
  if (Stop.Kind == StopKind::Trapped) {
    uint64_t GuestPC =
        Translator ? Translator->guestPCFor(Stop.PC) : Stop.PC;
    reportNote(formatTrapDiagnostic(Stop, Interp.state(), GuestPC));
  }

  if (RecordTrace) {
    Oracle.Records = Digests.takeRecords();
    // Execution fingerprints: consumers can tell which run this oracle
    // describes without hashing the trace itself.
    Oracle.ProgramFp = hashOutput(Interp.output());
    Oracle.ConfigFp = Interp.instructionCount();
    std::string Err;
    if (!Oracle.save(Opts.GoldenTraceFile, &Err)) {
      std::fprintf(stderr, "error: cannot write golden trace '%s': %s\n",
                   Opts.GoldenTraceFile.c_str(), Err.c_str());
      return 1;
    }
    reportNotef("golden trace: %llu records written to %s",
                (unsigned long long)Oracle.Records.size(),
                Opts.GoldenTraceFile.c_str());
  }
  if (ReplayTrace) {
    telemetry::PropOutcome PO = telemetry::PropOutcome::Timeout;
    switch (Stop.Kind) {
    case StopKind::Trapped:
      PO = telemetry::PropOutcome::Detected;
      break;
    case StopKind::InsnLimit:
      PO = telemetry::PropOutcome::Timeout;
      break;
    case StopKind::Halted:
      PO = hashOutput(Interp.output()) == Oracle.ProgramFp
               ? telemetry::PropOutcome::Masked
               : telemetry::PropOutcome::Sdc;
      break;
    }
    telemetry::PropagationReport PR =
        telemetry::analyzePropagation(Oracle.Records, Digests.records(), PO);
    if (PR.Diverged)
      reportNotef("propagation: %s — first divergence at record %llu "
                  "(guest insn %llu, block 0x%llx); crossed %llu tainted "
                  "block(s), %llu signature check(s), %llu insn(s) to the "
                  "outcome",
                  telemetry::getPropClassName(PR.Class),
                  (unsigned long long)PR.DivergenceOrdinal,
                  (unsigned long long)PR.DivergenceKey,
                  (unsigned long long)PR.DivergencePC,
                  (unsigned long long)PR.TaintedBlocks,
                  (unsigned long long)PR.ChecksCrossed,
                  (unsigned long long)PR.InsnsCrossed);
    else
      reportNotef("propagation: %s — no architectural divergence from the "
                  "golden trace (%llu record(s) compared)",
                  telemetry::getPropClassName(PR.Class),
                  (unsigned long long)Digests.records().size());
  }

  if (Translator && Translator->integrityEnabled())
    reportNotef("integrity: %llu scrubs, %llu mismatches, "
                "%llu retranslations",
                (unsigned long long)Translator->integrityScrubCount(),
                (unsigned long long)Translator->integrityMismatchCount(),
                (unsigned long long)Translator->integrityRetranslationCount());
  Interp.publishMetrics(Registry);
  Profiler.publishTo(Registry);
  // Snapshot consumers key off dbt.tier: 0 = bare interpreter, 1 = base
  // translator, 2 = optimizing trace tier.
  const char *TierName =
      Opts.Native ? "interp" : getDbtTierName(Opts.Config.Tier);
  Registry.gauge("dbt.tier").set(
      Opts.Native ? 0.0 : (Opts.Config.Tier == DbtTier::Opt ? 2.0 : 1.0));
  if (Opts.Stats != StatsMode::Off)
    reportNotef("tier: %s", TierName);
  Registry.gauge("run.output_hash")
      .set(static_cast<double>(hashOutput(Interp.output()) >> 11));
  if (Opts.ProfileBlocks && Translator) {
    Profile.publishTo(Registry);
    std::printf("%s", Profile.renderReport(Opts.ProfileTopN).c_str());
    reportNotef("block profile: %llu block executions vs %llu dbt "
                "dispatches (chained and fused transfers are counted "
                "inline, not dispatched)",
                (unsigned long long)Profile.totalBlockExecs(),
                (unsigned long long)Translator->dispatchCount());
  }
  publishTracerDrops(Opts, Registry, Tracer.get());
  emitStats(Opts, Registry);
  writeTrace(Opts, Tracer.get());

  if (Opts.DumpCache && Translator) {
    std::vector<const TranslatedBlock *> Sorted;
    for (const TranslatedBlock &TB : Translator->blocks())
      Sorted.push_back(&TB);
    std::sort(Sorted.begin(), Sorted.end(),
              [](const TranslatedBlock *A, const TranslatedBlock *B) {
                return A->GuestAddr < B->GuestAddr;
              });
    for (const TranslatedBlock *TB : Sorted) {
      std::vector<uint8_t> Code(TB->CacheSize);
      Mem.readRaw(TB->CacheAddr, Code.data(), Code.size());
      std::string Unit;
      if (TB->UnitBlocks > 1 || TB->Promoted)
        Unit = formatString(" (%s, %u blocks, %u cond seams)",
                            TB->Promoted ? "optimized trace" : "superblock",
                            TB->UnitBlocks, TB->CondSeams);
      std::printf("; guest block 0x%llx%s\n%s",
                  (unsigned long long)TB->GuestAddr, Unit.c_str(),
                  disassembleRange(Code.data(), Code.size(), TB->CacheAddr)
                      .c_str());
    }
  }
  return Stop.Kind == StopKind::Halted ? 0 : 1;
}
