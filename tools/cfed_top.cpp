//===- cfed_top.cpp - Live campaign monitor (watch mode) ------------------===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Terminal monitor over the live telemetry plane:
///
///   cfed-top [--interval=MS] [--stall-after=SEC] [--top=N] [--once] PATH...
///
/// Each PATH is either a live snapshot file (cfed-run --live-export,
/// campaign-engine inline export) or a directory to scan for
/// "*.live.json" files — pass a campaign's --campaign-coordinator
/// directory to watch every shard at once. The view refreshes every
/// --interval ms (default 1000): per-shard status rows (sequence, age,
/// progress, recovery rung; shards whose heartbeat is older than
/// --stall-after seconds flag as STALLED), merged top counters with
/// rates computed from sequence-numbered snapshot deltas, the merged
/// ibtc hit rate, merged per-cell Wilson intervals, and merged
/// detection-latency quantiles.
///
/// --once renders a single frame and exits (also what `cfed-stat tail`
/// does); exit status 2 when no snapshot could be parsed.
///
//===----------------------------------------------------------------------===//

#include "support/CliArgs.h"
#include "support/Json.h"
#include "telemetry/LiveExport.h"
#include "telemetry/LiveView.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <dirent.h>
#include <map>
#include <string>
#include <sys/stat.h>
#include <thread>
#include <vector>

using namespace cfed;
using cfed::json::JsonParser;
using cfed::json::JsonValue;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: cfed-top [--interval=MS] [--stall-after=SEC] "
               "[--top=N] [--once]\n"
               "                <file-or-dir>...\n"
               "\n"
               "Watches live telemetry snapshots (cfed-run --live-export "
               "files, or a\n--campaign-coordinator directory scanned for "
               "*.live.json).\n");
  return 2;
}

struct TopOptions {
  uint64_t IntervalMs = 1000;
  double StallAfterSec = 10.0;
  uint64_t TopCounters = 10;
  bool Once = false;
  std::vector<std::string> Paths;
};

bool parseArgs(int Argc, char **Argv, TopOptions &Opts) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    cli::Flag F;
    if (!cli::splitFlag(Arg, F)) {
      Opts.Paths.push_back(Arg);
      continue;
    }
    if (F.Name == "--interval") {
      if (!F.HasValue || !cli::parseUint(F.Value, Opts.IntervalMs) ||
          Opts.IntervalMs == 0)
        return cli::badValue(F.Name, "<milliseconds >= 1>", F.Value);
    } else if (F.Name == "--stall-after") {
      if (!F.HasValue || !cli::parseDouble(F.Value, Opts.StallAfterSec) ||
          Opts.StallAfterSec <= 0.0)
        return cli::badValue(F.Name, "<seconds > 0>", F.Value);
    } else if (F.Name == "--top") {
      if (!F.HasValue || !cli::parseUint(F.Value, Opts.TopCounters) ||
          Opts.TopCounters == 0)
        return cli::badValue(F.Name, "<count >= 1>", F.Value);
    } else if (F.Name == "--once") {
      if (F.HasValue)
        return cli::unexpectedValue(F.Name);
      Opts.Once = true;
    } else {
      return cli::unknownOption(Arg);
    }
  }
  if (Opts.Paths.empty()) {
    std::fprintf(stderr, "error: missing <file-or-dir> argument\n");
    return false;
  }
  return true;
}

bool endsWith(const std::string &Text, const char *Suffix) {
  size_t N = std::string(Suffix).size();
  return Text.size() >= N && Text.compare(Text.size() - N, N, Suffix) == 0;
}

/// Expands the PATH arguments into concrete snapshot files: directories
/// contribute their "*.live.json" entries (sorted, so shard order is
/// stable), everything else passes through as-is.
std::vector<std::string> expandPaths(const std::vector<std::string> &Paths) {
  std::vector<std::string> Files;
  for (const std::string &Path : Paths) {
    struct stat St;
    if (stat(Path.c_str(), &St) == 0 && S_ISDIR(St.st_mode)) {
      std::vector<std::string> Dir;
      if (DIR *D = opendir(Path.c_str())) {
        while (struct dirent *E = readdir(D)) {
          std::string Name = E->d_name;
          if (endsWith(Name, ".live.json"))
            Dir.push_back(Path + "/" + Name);
        }
        closedir(D);
      }
      std::sort(Dir.begin(), Dir.end());
      Files.insert(Files.end(), Dir.begin(), Dir.end());
    } else {
      Files.push_back(Path);
    }
  }
  return Files;
}

bool readFile(const std::string &Path, std::string &Out) {
  FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  char Buf[4096];
  size_t N;
  Out.clear();
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  std::fclose(F);
  return true;
}

bool loadSnapshot(const std::string &Path, telemetry::LiveSnapshot &Out,
                  std::string &Error) {
  std::string Text;
  if (!readFile(Path, Text)) {
    Error = "cannot open";
    return false;
  }
  JsonValue Root;
  JsonParser Parser(Text);
  if (!Parser.parse(Root)) {
    Error = "not parseable JSON";
    return false;
  }
  return telemetry::liveSnapshotFromJson(Root, Out, Error);
}

std::string baseName(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  return Slash == std::string::npos ? Path : Path.substr(Slash + 1);
}

} // namespace

int main(int Argc, char **Argv) {
  TopOptions Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return usage();

  // Previous snapshot per file path: the rate denominators. A file whose
  // publisher restarted (sequence decrease) naturally yields "-" rates
  // for one frame, then recovers.
  std::map<std::string, telemetry::LiveSnapshot> Prev;
  for (;;) {
    std::vector<std::string> Files = expandPaths(Opts.Paths);
    std::vector<telemetry::ShardSample> Samples;
    std::map<std::string, telemetry::LiveSnapshot> Next;
    std::vector<std::string> Errors;
    for (const std::string &File : Files) {
      telemetry::ShardSample S;
      std::string Error;
      if (!loadSnapshot(File, S.Snap, Error)) {
        Errors.push_back(File + ": " + Error);
        continue;
      }
      S.Label = baseName(File);
      auto It = Prev.find(File);
      if (It != Prev.end()) {
        S.HavePrev = true;
        S.Prev = It->second;
      }
      Next[File] = S.Snap;
      Samples.push_back(std::move(S));
    }
    Prev = std::move(Next);

    if (Samples.empty() && Opts.Once) {
      for (const std::string &E : Errors)
        std::fprintf(stderr, "cfed-top: %s\n", E.c_str());
      std::fprintf(stderr, "cfed-top: no live snapshots found\n");
      return 2;
    }

    telemetry::LiveViewOptions View;
    View.NowMs = telemetry::wallClockMs();
    View.StallAfterSec = Opts.StallAfterSec;
    View.TopCounters = Opts.TopCounters;
    std::string Frame;
    if (Samples.empty())
      Frame = "cfed-top: waiting for live snapshots...\n";
    else
      Frame = telemetry::renderLiveView(Samples, View);
    for (const std::string &E : Errors)
      Frame += "  (unreadable: " + E + ")\n";

    if (Opts.Once) {
      std::printf("%s", Frame.c_str());
      return 0;
    }
    // Clear-and-home keeps the frame flicker-free on anything ANSI.
    std::printf("\x1b[2J\x1b[H%s\nrefreshing every %llu ms — ctrl-c to "
                "quit\n",
                Frame.c_str(),
                static_cast<unsigned long long>(Opts.IntervalMs));
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(Opts.IntervalMs));
  }
}
