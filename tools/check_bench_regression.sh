#!/bin/sh
# check_bench_regression.sh - CI gate over the checked-in perf baseline.
#
# Runs the fast micro_dbt subset into a scratch BENCH_perf.json and compares
# it against the checked-in baseline with cfed-stat bench-diff. Exits 1 when
# any comparable metric (wall time, slowdown, overhead, hit rate) regresses
# by more than the threshold percentage.
#
# usage: tools/check_bench_regression.sh [BUILD_DIR] [BASELINE]
#   BUILD_DIR  cmake build tree holding bench/micro_dbt and tools/cfed-stat
#              (default: build)
#   BASELINE   baseline perf JSON (default: BENCH_perf.json)
# environment:
#   CFED_BENCH_THRESHOLD  regression threshold in percent (default: 10)

set -eu

BUILD=${1:-build}
BASELINE=${2:-BENCH_perf.json}
THRESHOLD=${CFED_BENCH_THRESHOLD:-10}

if [ ! -x "$BUILD/bench/micro_dbt" ] || [ ! -x "$BUILD/tools/cfed-stat" ]; then
  echo "check_bench_regression: build '$BUILD' is missing bench/micro_dbt" \
       "or tools/cfed-stat (build the project first)" >&2
  exit 2
fi
if [ ! -f "$BASELINE" ]; then
  echo "check_bench_regression: baseline '$BASELINE' not found" >&2
  exit 2
fi

FRESH=$(mktemp)
trap 'rm -f "$FRESH"' EXIT INT TERM

# The fast deterministic subset; the publishing code derives hit rates from
# its own reference runs, so the filter does not zero them out.
CFED_PERF_JSON=$FRESH "$BUILD/bench/micro_dbt" \
  --benchmark_filter='BM_EncodeDecode|BM_PredecodedFetch' >/dev/null

exec "$BUILD/tools/cfed-stat" bench-diff "$BASELINE" "$FRESH" \
  --threshold "$THRESHOLD"
