#!/bin/sh
# check_bench_regression.sh - CI gate over the checked-in perf baseline.
#
# Runs the fast micro_dbt subset into a scratch BENCH_perf.json and compares
# it against the checked-in baseline with cfed-stat bench-diff. Exits 1 when
# any comparable metric (wall time, slowdown, overhead, hit rate) regresses
# by more than the threshold percentage.
#
# usage: tools/check_bench_regression.sh [BUILD_DIR] [BASELINE]
#   BUILD_DIR  cmake build tree holding bench/micro_dbt and tools/cfed-stat
#              (default: build)
#   BASELINE   baseline perf JSON (default: BENCH_perf.json)
# environment:
#   CFED_BENCH_THRESHOLD    regression threshold in percent (default: 10)
#   CFED_SCRUB_OVERHEAD_MAX absolute ceiling on the self-integrity
#                           scrub_overhead ratio measured by micro_dbt's
#                           reference run (default: 0.15, i.e. 15%). An
#                           absolute gate, not a baseline diff: the
#                           scrubbing cadence is fixed, so its cost
#                           budget is documented here rather than
#                           ratcheted from a checked-in number.
#   CFED_EXPORT_OVERHEAD_MAX absolute ceiling on the live-exporter
#                           live_export_overhead ratio measured by
#                           micro_dbt's reference run (default: 0.15).
#                           Same absolute-gate rationale as the scrub
#                           ceiling: the 5 ms publish cadence is fixed,
#                           so the budget lives here, not in the
#                           baseline.
#   CFED_DIGEST_OVERHEAD_MAX absolute ceiling on the golden-trace
#                           digest_overhead ratio measured by micro_dbt's
#                           reference run (default: 0.15). Same
#                           absolute-gate rationale as the scrub ceiling:
#                           the per-sub-block capture cost is a design
#                           budget, not a ratcheted baseline number.
#   CFED_SHADOWSTACK_OVERHEAD_MAX absolute ceiling on the shadow
#                           return stack's shadow_stack_overhead ratio
#                           measured by micro_dbt's reference run on the
#                           call-heavy workload (default: 0.15). Same
#                           absolute-gate rationale: a push per call and
#                           a check per ret is a fixed design budget.
#   CFED_GEOMEAN_MAX        absolute ceiling on the Section 6 geomean
#                           DBT slowdown with the optimizing trace tier
#                           on (sec6_dbt_overhead.geomean_slowdown_opt in
#                           the checked-in baseline; default: 1.08 — the
#                           opt tier must stay measurably below the
#                           ~1.09 base-tier geomean). Read from the
#                           baseline because the sec6 sweep is too slow
#                           for this fast gate; regenerating the
#                           baseline re-arms it.

set -eu

BUILD=${1:-build}
BASELINE=${2:-BENCH_perf.json}
THRESHOLD=${CFED_BENCH_THRESHOLD:-10}
SCRUB_MAX=${CFED_SCRUB_OVERHEAD_MAX:-0.15}
EXPORT_MAX=${CFED_EXPORT_OVERHEAD_MAX:-0.15}
DIGEST_MAX=${CFED_DIGEST_OVERHEAD_MAX:-0.15}
SHADOW_MAX=${CFED_SHADOWSTACK_OVERHEAD_MAX:-0.15}
GEOMEAN_MAX=${CFED_GEOMEAN_MAX:-1.08}

if [ ! -x "$BUILD/bench/micro_dbt" ] || [ ! -x "$BUILD/tools/cfed-stat" ] \
   || [ ! -x "$BUILD/tools/cfed-run" ]; then
  echo "check_bench_regression: build '$BUILD' is missing bench/micro_dbt," \
       "tools/cfed-stat or tools/cfed-run (build the project first)" >&2
  exit 2
fi
if [ ! -f "$BASELINE" ]; then
  echo "check_bench_regression: baseline '$BASELINE' not found" >&2
  exit 2
fi

FRESH=$(mktemp)
CAMP=$(mktemp -d)
trap 'rm -f "$FRESH"; rm -rf "$CAMP"' EXIT INT TERM

# --- Sharded-campaign smoke -------------------------------------------------
# A 2-shard campaign engine run (different job counts per shard) merged by
# `cfed-stat merge` must reproduce the unsharded reference exactly: the
# merged campaign-summary line is compared verbatim. Catches any drift in
# the deterministic plan partitioning or the shard-result fold.
cat > "$CAMP/smoke.s" <<'EOF'
main:
movi r5, 5
outer:
movi r1, 12
inner:
addi r1, r1, -1
jcc ne, inner
addi r5, r5, -1
jcc ne, outer
movi r2, 1
cmpi r2, 2
jcc eq, dead
halt
dead:
movi r3, 9
halt
EOF

"$BUILD/tools/cfed-run" --tech=edgcf --campaign=40 --seed=7 --jobs=2 \
  --campaign-out="$CAMP/ref.json" "$CAMP/smoke.s" >/dev/null
for K in 0 1; do
  "$BUILD/tools/cfed-run" --tech=edgcf --campaign=40 --seed=7 \
    --jobs=$((K + 1)) --campaign-shard=$K/2 \
    --campaign-out="$CAMP/shard$K.json" "$CAMP/smoke.s" >/dev/null
done
REF_SUM=$("$BUILD/tools/cfed-stat" merge "$CAMP/ref.json" \
          | grep '^campaign-summary:')
MERGED_SUM=$("$BUILD/tools/cfed-stat" merge "$CAMP/shard0.json" \
             "$CAMP/shard1.json" -o "$CAMP/merged.json" \
             | grep '^campaign-summary:')
if [ "$REF_SUM" != "$MERGED_SUM" ]; then
  echo "check_bench_regression: sharded campaign merge diverged from the" \
       "unsharded reference" >&2
  echo "  unsharded: $REF_SUM" >&2
  echo "  merged:    $MERGED_SUM" >&2
  exit 1
fi
echo "sharded campaign merge matches unsharded reference"
echo "  $MERGED_SUM"

# --- Sharded propagation-tally smoke ----------------------------------------
# The same 2-shard/unsharded comparison with fault-propagation tracking
# on: every injection replays against the campaign's golden digest trace
# and lands in exactly one divergence->outcome class, and the merged
# prop-summary line must reproduce the unsharded reference verbatim.
# Catches drift in the per-shard propagation tallies or their fold.
"$BUILD/tools/cfed-run" --tech=edgcf --campaign=40 --seed=7 --jobs=2 \
  --prop-trace --campaign-out="$CAMP/propref.json" "$CAMP/smoke.s" >/dev/null
for K in 0 1; do
  "$BUILD/tools/cfed-run" --tech=edgcf --campaign=40 --seed=7 \
    --jobs=$((K + 1)) --campaign-shard=$K/2 --prop-trace \
    --campaign-out="$CAMP/propshard$K.json" "$CAMP/smoke.s" >/dev/null
done
PROP_REF=$("$BUILD/tools/cfed-stat" merge "$CAMP/propref.json" \
           | grep '^prop-summary:')
PROP_MERGED=$("$BUILD/tools/cfed-stat" merge "$CAMP/propshard0.json" \
              "$CAMP/propshard1.json" | grep '^prop-summary:')
if [ -z "$PROP_REF" ]; then
  echo "check_bench_regression: propagation-enabled campaign produced no" \
       "prop-summary line" >&2
  exit 1
fi
if [ "$PROP_REF" != "$PROP_MERGED" ]; then
  echo "check_bench_regression: sharded propagation tallies diverged from" \
       "the unsharded reference" >&2
  echo "  unsharded: $PROP_REF" >&2
  echo "  merged:    $PROP_MERGED" >&2
  exit 1
fi
echo "sharded propagation tallies match unsharded reference"
echo "  $PROP_MERGED"

# --- Coordinated early-stop smoke -------------------------------------------
# Two shards sharing a --campaign-coordinator directory run the Wilson
# early-stop protocol in lockstep: each merges every sibling heartbeat at
# every batch boundary, so closure decisions — and therefore the merged
# result — must reproduce the unsharded --campaign-stop-ci reference
# verbatim. The shards run concurrently (the protocol barriers on sibling
# batch files; sequential runs would deadlock).
mkdir "$CAMP/coord"
"$BUILD/tools/cfed-run" --tech=edgcf --campaign=120 --campaign-interval=16 \
  --campaign-stop-ci=0.25 --seed=7 --jobs=2 \
  --campaign-out="$CAMP/stopref.json" "$CAMP/smoke.s" >/dev/null
( "$BUILD/tools/cfed-run" --tech=edgcf --campaign=120 --campaign-interval=16 \
    --campaign-stop-ci=0.25 --seed=7 --jobs=1 --campaign-shard=0/2 \
    --campaign-coordinator="$CAMP/coord" \
    --campaign-out="$CAMP/coord0.json" "$CAMP/smoke.s" >/dev/null ) &
COORD_PID0=$!
( "$BUILD/tools/cfed-run" --tech=edgcf --campaign=120 --campaign-interval=16 \
    --campaign-stop-ci=0.25 --seed=7 --jobs=2 --campaign-shard=1/2 \
    --campaign-coordinator="$CAMP/coord" \
    --campaign-out="$CAMP/coord1.json" "$CAMP/smoke.s" >/dev/null ) &
COORD_PID1=$!
wait "$COORD_PID0"
wait "$COORD_PID1"
STOPREF_SUM=$("$BUILD/tools/cfed-stat" merge "$CAMP/stopref.json" \
              | grep '^campaign-summary:')
COORD_SUM=$("$BUILD/tools/cfed-stat" merge "$CAMP/coord0.json" \
            "$CAMP/coord1.json" | grep '^campaign-summary:')
if [ "$STOPREF_SUM" != "$COORD_SUM" ]; then
  echo "check_bench_regression: coordinated 2-shard early stop diverged" \
       "from the unsharded --campaign-stop-ci reference" >&2
  echo "  unsharded: $STOPREF_SUM" >&2
  echo "  merged:    $COORD_SUM" >&2
  exit 1
fi
echo "coordinated 2-shard early stop matches unsharded reference"
echo "  $COORD_SUM"
# The shards leave their final live snapshots behind; the one-shot tail
# view must render them, and merge must refuse them as inputs.
"$BUILD/tools/cfed-stat" tail "$CAMP/coord/shard_0.live.json" \
  "$CAMP/coord/shard_1.live.json" >/dev/null
if "$BUILD/tools/cfed-stat" merge "$CAMP/coord/shard_0.live.json" \
     >/dev/null 2>&1; then
  echo "check_bench_regression: cfed-stat merge accepted a live snapshot" >&2
  exit 1
fi
echo "cfed-stat tail renders shard live snapshots; merge refuses them"

# --- Adversarial attack-campaign smoke ---------------------------------------
# The same 2-shard/unsharded comparison for the attack engine on the
# call-heavy workload: the merged precision-summary line must reproduce
# the unsharded reference verbatim for mixed per-shard job counts.
# Catches drift in the attack plan partitioning or the precision fold.
"$BUILD/tools/cfed-run" --tech=edgcf --campaign-attack=40 --seed=7 \
  --jobs=2 --campaign-out="$CAMP/attackref.json" 186.crafty >/dev/null
for K in 0 1; do
  "$BUILD/tools/cfed-run" --tech=edgcf --campaign-attack=40 --seed=7 \
    --jobs=$((K + 1)) --campaign-shard=$K/2 \
    --campaign-out="$CAMP/attackshard$K.json" 186.crafty >/dev/null
done
ATTACK_REF=$("$BUILD/tools/cfed-stat" merge "$CAMP/attackref.json" \
             | grep '^precision-summary:')
ATTACK_MERGED=$("$BUILD/tools/cfed-stat" merge "$CAMP/attackshard0.json" \
                "$CAMP/attackshard1.json" | grep '^precision-summary:')
if [ -z "$ATTACK_REF" ]; then
  echo "check_bench_regression: attack campaign produced no" \
       "precision-summary line" >&2
  exit 1
fi
if [ "$ATTACK_REF" != "$ATTACK_MERGED" ]; then
  echo "check_bench_regression: sharded attack campaign diverged from the" \
       "unsharded reference" >&2
  echo "  unsharded: $ATTACK_REF" >&2
  echo "  merged:    $ATTACK_MERGED" >&2
  exit 1
fi
echo "sharded attack campaign merge matches unsharded reference"
echo "  $ATTACK_MERGED"

# The assurance configuration (shadow return stack + per-dispatch code
# scrubbing and dispatch verification) must leave nothing undetected:
# the shadow stack catches every forged return the signatures accept,
# and the self-integrity layer catches the code patches.
ASSURED=$("$BUILD/tools/cfed-run" --tech=edgcf --shadow-stack --scrub=1 \
          --verify-dispatch=1 --campaign-attack=40 --seed=7 --jobs=2 \
          186.crafty | grep '^precision-summary:')
case "$ASSURED" in
  *" undetected=0 "*) ;;
  *)
    echo "check_bench_regression: assurance config (shadow stack +" \
         "scrub/verify) left attacks undetected" >&2
    echo "  $ASSURED" >&2
    exit 1
    ;;
esac
echo "assurance config detects every attack (shadow stack + integrity)"
echo "  $ASSURED"
# ----------------------------------------------------------------------------

# The fast deterministic subset; the publishing code derives hit rates and
# the scrub overhead from its own reference runs, so the filter does not
# zero them out.
CFED_PERF_JSON=$FRESH "$BUILD/bench/micro_dbt" \
  --benchmark_filter='BM_EncodeDecode|BM_PredecodedFetch' >/dev/null

# Absolute gate on the self-integrity scrubbing cost (see
# CFED_SCRUB_OVERHEAD_MAX above). scrub_overhead is deliberately NOT in
# the checked-in baseline, so the relative bench-diff below never sees it.
SCRUB=$(sed -n 's/.*"scrub_overhead": *\([0-9.eE+-]*\).*/\1/p' "$FRESH" \
        | head -n 1)
if [ -n "$SCRUB" ]; then
  if awk -v s="$SCRUB" -v max="$SCRUB_MAX" 'BEGIN { exit !(s > max) }'; then
    echo "check_bench_regression: scrub_overhead $SCRUB exceeds" \
         "CFED_SCRUB_OVERHEAD_MAX=$SCRUB_MAX" >&2
    exit 1
  fi
  echo "scrub_overhead $SCRUB within CFED_SCRUB_OVERHEAD_MAX=$SCRUB_MAX"
else
  echo "check_bench_regression: no scrub_overhead in fresh run" >&2
  exit 2
fi

# Absolute gate on the active live-exporter cost (see
# CFED_EXPORT_OVERHEAD_MAX above). Like scrub_overhead, deliberately NOT
# in the checked-in baseline.
EXPORT=$(sed -n 's/.*"live_export_overhead": *\([0-9.eE+-]*\).*/\1/p' \
         "$FRESH" | head -n 1)
if [ -n "$EXPORT" ]; then
  if awk -v e="$EXPORT" -v max="$EXPORT_MAX" 'BEGIN { exit !(e > max) }'
  then
    echo "check_bench_regression: live_export_overhead $EXPORT exceeds" \
         "CFED_EXPORT_OVERHEAD_MAX=$EXPORT_MAX" >&2
    exit 1
  fi
  echo "live_export_overhead $EXPORT within CFED_EXPORT_OVERHEAD_MAX=$EXPORT_MAX"
else
  echo "check_bench_regression: no live_export_overhead in fresh run" >&2
  exit 2
fi

# Absolute gate on golden-trace digest capture (see
# CFED_DIGEST_OVERHEAD_MAX above). Like scrub_overhead, deliberately NOT
# in the checked-in baseline.
DIGEST=$(sed -n 's/.*"digest_overhead": *\([0-9.eE+-]*\).*/\1/p' \
         "$FRESH" | head -n 1)
if [ -n "$DIGEST" ]; then
  if awk -v d="$DIGEST" -v max="$DIGEST_MAX" 'BEGIN { exit !(d > max) }'
  then
    echo "check_bench_regression: digest_overhead $DIGEST exceeds" \
         "CFED_DIGEST_OVERHEAD_MAX=$DIGEST_MAX" >&2
    exit 1
  fi
  echo "digest_overhead $DIGEST within CFED_DIGEST_OVERHEAD_MAX=$DIGEST_MAX"
else
  echo "check_bench_regression: no digest_overhead in fresh run" >&2
  exit 2
fi

# Absolute gate on the shadow return stack (see
# CFED_SHADOWSTACK_OVERHEAD_MAX above). Like scrub_overhead, deliberately
# NOT in the checked-in baseline.
SHADOW=$(sed -n 's/.*"shadow_stack_overhead": *\([0-9.eE+-]*\).*/\1/p' \
         "$FRESH" | head -n 1)
if [ -n "$SHADOW" ]; then
  if awk -v s="$SHADOW" -v max="$SHADOW_MAX" 'BEGIN { exit !(s > max) }'
  then
    echo "check_bench_regression: shadow_stack_overhead $SHADOW exceeds" \
         "CFED_SHADOWSTACK_OVERHEAD_MAX=$SHADOW_MAX" >&2
    exit 1
  fi
  echo "shadow_stack_overhead $SHADOW within CFED_SHADOWSTACK_OVERHEAD_MAX=$SHADOW_MAX"
else
  echo "check_bench_regression: no shadow_stack_overhead in fresh run" >&2
  exit 2
fi

# Absolute gate on the optimizing tier's headline number: the Section 6
# geomean slowdown with traces on, from the checked-in baseline.
GEOMEAN=$(grep '"sec6_dbt_overhead"' "$BASELINE" \
          | sed -n 's/.*"geomean_slowdown_opt": *\([0-9.eE+-]*\).*/\1/p' \
          | head -n 1)
if [ -n "$GEOMEAN" ]; then
  if awk -v g="$GEOMEAN" -v max="$GEOMEAN_MAX" 'BEGIN { exit !(g > max) }'
  then
    echo "check_bench_regression: opt-tier geomean slowdown $GEOMEAN" \
         "exceeds CFED_GEOMEAN_MAX=$GEOMEAN_MAX" >&2
    exit 1
  fi
  echo "opt-tier geomean slowdown $GEOMEAN within CFED_GEOMEAN_MAX=$GEOMEAN_MAX"
else
  echo "check_bench_regression: baseline has no" \
       "sec6_dbt_overhead.geomean_slowdown_opt (regenerate BENCH_perf.json" \
       "with bench/sec6_dbt_overhead)" >&2
  exit 2
fi

exec "$BUILD/tools/cfed-stat" bench-diff "$BASELINE" "$FRESH" \
  --threshold "$THRESHOLD"
