//===- run_workload.cpp - Manual workload runner -------------------------------===//
//
// Development tool: runs one workload (or all) natively and under the
// DBT, printing instruction/cycle counts and output checksums.
//
//===----------------------------------------------------------------------===//

#include "dbt/Dbt.h"
#include "support/Format.h"
#include "vm/Loader.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstring>

using namespace cfed;

static int runOne(const std::string &Name) {
  AsmProgram Program = assembleWorkload(Name);
  Memory Mem;
  Interpreter Interp(Mem);
  loadProgram(Program, LoadMode::Native, Mem, Interp.state());
  StopInfo Stop = Interp.run(500000000ULL);
  const char *State = Stop.Kind == StopKind::Halted    ? "halt"
                      : Stop.Kind == StopKind::Trapped ? "TRAP"
                                                       : "LIMIT";
  std::printf("%-14s %-5s insns=%10llu cycles=%12llu hash=%016llx",
              Name.c_str(), State,
              (unsigned long long)Interp.instructionCount(),
              (unsigned long long)Interp.cycleCount(),
              (unsigned long long)hashOutput(Interp.output()));
  if (Stop.Kind == StopKind::Trapped)
    std::printf(" %s",
                formatTrapDiagnostic(Stop, Interp.state(), Stop.PC).c_str());
  std::printf("\n");
  return Stop.Kind == StopKind::Halted ? 0 : 1;
}

int main(int Argc, char **Argv) {
  int Failures = 0;
  if (Argc > 1) {
    for (int I = 1; I < Argc; ++I)
      Failures += runOne(Argv[I]);
  } else {
    for (const WorkloadInfo &Info : getWorkloadSuite())
      Failures += runOne(Info.Name);
  }
  return Failures == 0 ? 0 : 1;
}
