//===- cfed_stat.cpp - Offline telemetry analysis CLI ---------------------===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Post-hoc analysis of the artifacts the runtime leaves behind:
///
///   cfed-stat top FILE [-n N]            hottest counters/gauges of a
///                                        registry snapshot (or of the
///                                        registry embedded in a
///                                        flight-recorder bundle)
///   cfed-stat diff A B                   counter/gauge deltas between two
///                                        registry snapshots
///   cfed-stat postmortem FILE            render a flight-recorder bundle
///                                        as a human-readable report
///   cfed-stat bench-diff A B [--threshold P]
///                                        compare two BENCH_perf.json files
///                                        and fail (exit 1) on any metric
///                                        regressing by more than P percent
///                                        (default 10) — the CI gate used
///                                        by tools/check_bench_regression.sh
///   cfed-stat merge FILE... [-o OUT]     fold campaign shard result files
///                                        (cfed-run --campaign-out) into one
///                                        report identical to the unsharded
///                                        campaign's
///   cfed-stat latency FILE               detection-latency table from the
///                                        fault.latency.* histograms of a
///                                        campaign result or registry
///                                        snapshot
///   cfed-stat prop FILE                  fault-propagation funnel (first
///                                        architectural divergence ->
///                                        outcome, per category) from the
///                                        prop.* instruments of a campaign
///                                        result, merged result or registry
///                                        snapshot (cfed-run --prop-trace)
///   cfed-stat precision FILE             per-technique precision matrix
///                                        (attack family x outcome) from
///                                        the attack.* instruments of an
///                                        adversarial campaign result or
///                                        registry snapshot (cfed-run
///                                        --campaign-attack)
///   cfed-stat tail FILE...               one-shot render of live-exporter
///                                        snapshot files (the same view
///                                        cfed-top refreshes continuously)
///
/// Everything here is read-only over JSON files plus the campaign
/// result/merge helpers of the fault library.
///
//===----------------------------------------------------------------------===//

#include "fault/CampaignEngine.h"
#include "support/CliArgs.h"
#include "support/Format.h"
#include "support/Json.h"
#include "support/Table.h"
#include "telemetry/LiveExport.h"
#include "telemetry/LiveView.h"
#include "telemetry/Metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace cfed;
using cfed::json::JsonParser;
using cfed::json::JsonValue;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: cfed-stat <command> ...\n"
      "\n"
      "commands:\n"
      "  top FILE [-n N]                 top-N counters and gauges of a\n"
      "                                  registry snapshot JSON (also accepts\n"
      "                                  a flight-recorder bundle; default 20)\n"
      "  diff A B                        counter/gauge deltas between two\n"
      "                                  registry snapshots\n"
      "  postmortem FILE                 render a flight-recorder bundle\n"
      "  bench-diff A B [--threshold P]  compare BENCH_perf.json files; exit\n"
      "                                  1 if any metric regresses by more\n"
      "                                  than P%% (default 10)\n"
      "  merge FILE... [-o OUT]          fold campaign shard result files\n"
      "                                  into one report (equal to the\n"
      "                                  unsharded campaign's)\n"
      "  latency FILE                    detection-latency table from the\n"
      "                                  fault.latency.* histograms\n"
      "  prop FILE                       fault-propagation funnel from the\n"
      "                                  prop.* instruments of a campaign\n"
      "                                  run with --prop-trace\n"
      "  precision FILE                  precision matrix (attack family x\n"
      "                                  outcome) from the attack.*\n"
      "                                  instruments of an adversarial\n"
      "                                  campaign (--campaign-attack)\n"
      "  tail FILE...                    one-shot render of live-exporter\n"
      "                                  snapshots (cfed-top's view, once)\n");
}

bool readFile(const std::string &Path, std::string &Out) {
  FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    std::fprintf(stderr, "cfed-stat: cannot open '%s'\n", Path.c_str());
    return false;
  }
  char Buf[4096];
  size_t N;
  Out.clear();
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  std::fclose(F);
  return true;
}

bool parseFile(const std::string &Path, JsonValue &Out) {
  std::string Text;
  if (!readFile(Path, Text))
    return false;
  JsonParser Parser(Text);
  if (!Parser.parse(Out)) {
    std::fprintf(stderr, "cfed-stat: '%s' is not parseable JSON\n",
                 Path.c_str());
    return false;
  }
  return true;
}

/// Returns the registry object of \p Root: the root itself when it has a
/// "counters" member, or the "registry" member of a flight-recorder
/// bundle. Null when neither shape matches.
const JsonValue &findRegistry(const JsonValue &Root) {
  static const JsonValue Missing;
  if (Root["counters"].K == JsonValue::Object)
    return Root;
  if (Root["registry"]["counters"].K == JsonValue::Object)
    return Root["registry"];
  return Missing;
}

std::string formatCount(double V) {
  if (V == static_cast<double>(static_cast<long long>(V)))
    return formatString("%lld", static_cast<long long>(V));
  return formatString("%.4f", V);
}

//===----------------------------------------------------------------------===//
// top
//===----------------------------------------------------------------------===//

int cmdTop(int Argc, char **Argv) {
  std::string Path;
  uint64_t TopN = 20;
  for (int I = 0; I < Argc; ++I) {
    std::string Arg = Argv[I];
    cli::Flag F;
    if (Arg == "-n") {
      std::string Value = I + 1 < Argc ? Argv[++I] : "";
      if (!cli::parseUint(Value, TopN) || !TopN) {
        cli::badValue("-n", "a positive <count>", Value);
        usage();
        return 2;
      }
    } else if (cli::splitFlag(Arg, F)) {
      cli::unknownOption(F.Name);
      usage();
      return 2;
    } else if (Path.empty()) {
      Path = Arg;
    } else {
      cli::extraPositional(Arg);
      usage();
      return 2;
    }
  }
  if (Path.empty()) {
    std::fprintf(stderr, "error: missing <file> argument\n");
    usage();
    return 2;
  }

  JsonValue Root;
  if (!parseFile(Path, Root))
    return 2;
  const JsonValue &Reg = findRegistry(Root);
  if (Reg.K != JsonValue::Object) {
    std::fprintf(stderr,
                 "cfed-stat: '%s' has no registry snapshot (no \"counters\" "
                 "object at the root or under \"registry\")\n",
                 Path.c_str());
    return 2;
  }

  std::vector<std::pair<std::string, double>> Counters;
  for (const auto &[Name, Val] : Reg["counters"].Fields)
    Counters.emplace_back(Name, Val.Num);
  std::sort(Counters.begin(), Counters.end(), [](const auto &A, const auto &B) {
    if (A.second != B.second)
      return A.second > B.second;
    return A.first < B.first;
  });

  Table T;
  T.setHeader({"counter", "value"});
  size_t Shown = 0;
  for (const auto &[Name, Val] : Counters) {
    if (Shown++ == TopN)
      break;
    T.addRow({Name, formatCount(Val)});
  }
  std::printf("%s", T.render().c_str());
  if (Counters.size() > TopN)
    std::printf("(%zu of %zu counters shown)\n", TopN, Counters.size());

  if (!Reg["gauges"].Fields.empty()) {
    Table G;
    G.setHeader({"gauge", "value"});
    for (const auto &[Name, Val] : Reg["gauges"].Fields)
      G.addRow({Name, formatString("%.4f", Val.Num)});
    std::printf("\n%s", G.render().c_str());
  }
  return 0;
}

//===----------------------------------------------------------------------===//
// diff
//===----------------------------------------------------------------------===//

int cmdDiff(int Argc, char **Argv) {
  for (int I = 0; I < Argc; ++I) {
    cli::Flag F;
    if (cli::splitFlag(Argv[I], F)) {
      cli::unknownOption(F.Name);
      usage();
      return 2;
    }
  }
  if (Argc != 2) {
    usage();
    return 2;
  }
  JsonValue RootA, RootB;
  if (!parseFile(Argv[0], RootA) || !parseFile(Argv[1], RootB))
    return 2;
  const JsonValue &RegA = findRegistry(RootA);
  const JsonValue &RegB = findRegistry(RootB);
  if (RegA.K != JsonValue::Object || RegB.K != JsonValue::Object) {
    std::fprintf(stderr, "cfed-stat: both inputs must be registry snapshots "
                         "or flight-recorder bundles\n");
    return 2;
  }

  // Union of counter names, in sorted order (std::map keeps them sorted).
  Table T;
  T.setHeader({"counter", "old", "new", "delta"});
  auto Emit = [&](const std::string &Name, double Old, double New) {
    T.addRow({Name, formatCount(Old), formatCount(New),
              formatString("%+lld", static_cast<long long>(New - Old))});
  };
  for (const auto &[Name, Val] : RegA["counters"].Fields) {
    const JsonValue &Other = RegB["counters"][Name];
    double New = Other.K == JsonValue::Number ? Other.Num : 0.0;
    if (Val.Num != New)
      Emit(Name, Val.Num, New);
  }
  for (const auto &[Name, Val] : RegB["counters"].Fields)
    if (RegA["counters"][Name].K != JsonValue::Number && Val.Num != 0.0)
      Emit(Name, 0.0, Val.Num);
  std::printf("%s", T.render().c_str());

  bool GaugeHeader = false;
  Table G;
  G.setHeader({"gauge", "old", "new"});
  for (const auto &[Name, Val] : RegA["gauges"].Fields) {
    const JsonValue &Other = RegB["gauges"][Name];
    double New = Other.K == JsonValue::Number ? Other.Num : 0.0;
    if (Val.Num != New) {
      G.addRow({Name, formatString("%.4f", Val.Num),
                formatString("%.4f", New)});
      GaugeHeader = true;
    }
  }
  if (GaugeHeader)
    std::printf("\n%s", G.render().c_str());
  return 0;
}

//===----------------------------------------------------------------------===//
// postmortem
//===----------------------------------------------------------------------===//

/// Signature-register names for the checker-owned registers; everything
/// else renders as rNN.
const char *specialRegName(size_t Index) {
  switch (Index) {
  case 15: return "sp";
  case 16: return "pcp";
  case 17: return "rts";
  case 18: return "aux";
  case 19: return "aux2";
  default: return nullptr;
  }
}

int cmdPostmortem(int Argc, char **Argv) {
  for (int I = 0; I < Argc; ++I) {
    cli::Flag F;
    if (cli::splitFlag(Argv[I], F)) {
      cli::unknownOption(F.Name);
      usage();
      return 2;
    }
  }
  if (Argc != 1) {
    usage();
    return 2;
  }
  JsonValue PM;
  if (!parseFile(Argv[0], PM))
    return 2;
  if (PM["version"].K != JsonValue::Number ||
      PM["reason"].K != JsonValue::String) {
    std::fprintf(stderr,
                 "cfed-stat: '%s' is not a flight-recorder bundle\n", Argv[0]);
    return 2;
  }

  std::printf("post-mortem bundle: %s (schema v%d)\n", Argv[0],
              static_cast<int>(PM["version"].Num));
  std::printf("reason:    %s\n", PM["reason"].Str.c_str());
  const JsonValue &Stop = PM["stop"];
  std::printf("stop:      %s%s%s%s\n", Stop["kind"].Str.c_str(),
              Stop["trap"].Str.empty() ? "" : " / ",
              Stop["trap"].Str.c_str(),
              Stop["description"].Str.empty()
                  ? ""
                  : ("  (" + Stop["description"].Str + ")").c_str());
  std::printf("guest pc:  %s   cache pc: %s   trap addr: %s\n",
              PM["guest_pc"].Str.c_str(), PM["cache_pc"].Str.c_str(),
              PM["trap_addr"].Str.c_str());
  std::printf("executed:  %lld insns, %lld cycles\n",
              static_cast<long long>(PM["insns"].Num),
              static_cast<long long>(PM["cycles"].Num));

  if (!PM["note"].Str.empty())
    std::printf("note:      %s\n", PM["note"].Str.c_str());
  if (!PM["annotations"].Fields.empty()) {
    std::printf("annotations:");
    for (const auto &[Name, Val] : PM["annotations"].Fields)
      std::printf(" %s=%lld", Name.c_str(), static_cast<long long>(Val.Num));
    std::printf("\n");
  }

  // Version-2 bundles may carry a propagation section; version-1 bundles
  // (and v2 bundles from non-propagation runs) simply lack it, and the
  // lookups below yield absent values, so nothing is printed.
  const JsonValue &Prop = PM["propagation"];
  if (Prop["present"].B) {
    if (Prop["diverged"].B)
      std::printf("propagation: %s — diverged at record %lld (guest insn "
                  "%lld, block %s); crossed %lld tainted block(s), %lld "
                  "check(s), %lld insn(s)\n",
                  Prop["class"].Str.c_str(),
                  static_cast<long long>(Prop["divergence_ordinal"].Num),
                  static_cast<long long>(Prop["divergence_key"].Num),
                  Prop["divergence_pc"].Str.c_str(),
                  static_cast<long long>(Prop["tainted_blocks"].Num),
                  static_cast<long long>(Prop["checks_crossed"].Num),
                  static_cast<long long>(Prop["insns_crossed"].Num));
    else
      std::printf("propagation: %s — no architectural divergence from the "
                  "golden trace\n",
                  Prop["class"].Str.c_str());
  }

  const JsonValue &Recovery = PM["recovery"];
  if (Recovery["present"].B)
    std::printf("recovery:  checkpoints=%lld rollbacks=%lld watchdog=%lld "
                "ring_depth=%lld degraded=%s interp_fallback=%s\n",
                static_cast<long long>(Recovery["checkpoints"].Num),
                static_cast<long long>(Recovery["rollbacks"].Num),
                static_cast<long long>(Recovery["watchdog_fires"].Num),
                static_cast<long long>(Recovery["ring_depth"].Num),
                Recovery["degraded"].B ? "yes" : "no",
                Recovery["interpreter_fallback"].B ? "yes" : "no");

  // CPU state: flags plus the non-zero registers, signature registers
  // called out by name.
  std::printf("\ncpu flags: %lld\n",
              static_cast<long long>(PM["cpu"]["flags"].Num));
  const auto &Regs = PM["cpu"]["regs"].Items;
  for (size_t I = 0; I < Regs.size(); ++I) {
    const std::string &Hex = Regs[I].Str;
    if (Hex == "0x0" && !specialRegName(I))
      continue;
    if (const char *Name = specialRegName(I))
      std::printf("  r%-2zu (%s)%*s = %s\n", I, Name,
                  static_cast<int>(4 - std::strlen(Name)), "", Hex.c_str());
    else
      std::printf("  r%-2zu        = %s\n", I, Hex.c_str());
  }

  const auto &Events = PM["events"].Items;
  std::printf("\nlast %zu trace events:\n", Events.size());
  for (const auto &E : Events)
    std::printf("  [%8lld] %-18s %-10s addr=%s arg=%lld\n",
                static_cast<long long>(E["ts"].Num), E["kind"].Str.c_str(),
                E["category"].Str.c_str(), E["addr"].Str.c_str(),
                static_cast<long long>(E["arg"].Num));

  if (!PM["guest_disasm"].Str.empty())
    std::printf("\nguest code around the fault:\n%s",
                PM["guest_disasm"].Str.c_str());
  if (!PM["host_disasm"].Str.empty())
    std::printf("\ntranslated block (code cache):\n%s",
                PM["host_disasm"].Str.c_str());
  return 0;
}

//===----------------------------------------------------------------------===//
// bench-diff
//===----------------------------------------------------------------------===//

/// Metric direction for BENCH_perf.json fields. Returns +1 when larger is
/// better (hit rates, checks elided by the optimizing tier), -1 when
/// smaller is better (times, slowdowns, overheads), 0 for fields that are
/// configuration rather than performance (jobs, dispatch counts) and so
/// are not gated.
int metricDirection(const std::string &Field) {
  if (Field.find("hit_rate") != std::string::npos)
    return +1;
  // Opt-tier optimizer effectiveness: fewer elided checks or a lower
  // fusion rate means the trace tier stopped finding its optimizations.
  if (Field.find("checks_elided") != std::string::npos ||
      Field.find("fusion_rate") != std::string::npos)
    return +1;
  if (Field == "wall_seconds" || Field.find("slowdown") != std::string::npos ||
      Field.find("overhead") != std::string::npos ||
      Field.find("seconds") != std::string::npos)
    return -1;
  return 0;
}

int cmdBenchDiff(int Argc, char **Argv) {
  std::string PathA, PathB;
  double Threshold = 10.0;
  for (int I = 0; I < Argc; ++I) {
    std::string Arg = Argv[I];
    cli::Flag F;
    if (cli::splitFlag(Arg, F)) {
      if (F.Name != "--threshold") {
        cli::unknownOption(F.Name);
        usage();
        return 2;
      }
      std::string Value =
          F.HasValue ? F.Value : (I + 1 < Argc ? Argv[++I] : "");
      if (!cli::parseDouble(Value, Threshold) || Threshold <= 0.0) {
        cli::badValue(F.Name, "a positive <percent>", Value);
        usage();
        return 2;
      }
    } else if (PathA.empty()) {
      PathA = Arg;
    } else if (PathB.empty()) {
      PathB = Arg;
    } else {
      cli::extraPositional(Arg);
      usage();
      return 2;
    }
  }
  if (PathB.empty()) {
    std::fprintf(stderr, "error: bench-diff needs two BENCH_perf.json "
                         "paths\n");
    usage();
    return 2;
  }

  JsonValue Base, Fresh;
  if (!parseFile(PathA, Base) || !parseFile(PathB, Fresh))
    return 2;
  if (Base.K != JsonValue::Object || Fresh.K != JsonValue::Object) {
    std::fprintf(stderr, "cfed-stat: bench-diff inputs must be "
                         "BENCH_perf.json objects\n");
    return 2;
  }

  Table T;
  T.setHeader({"metric", "baseline", "current", "change", "verdict"});
  unsigned Regressions = 0, Compared = 0;
  for (const auto &[Bench, Fields] : Base.Fields) {
    if (Fields.K != JsonValue::Object)
      continue;
    const JsonValue &Other = Fresh[Bench];
    if (Other.K != JsonValue::Object)
      continue;
    for (const auto &[Field, Val] : Fields.Fields) {
      int Dir = metricDirection(Field);
      if (!Dir || Val.K != JsonValue::Number)
        continue;
      const JsonValue &NewVal = Other[Field];
      if (NewVal.K != JsonValue::Number)
        continue;
      ++Compared;
      std::string Name = Bench + "." + Field;
      double Old = Val.Num, New = NewVal.Num;
      // Guard tiny baselines: a 0.000-second baseline would turn any
      // measurable time into an infinite regression.
      double ChangePct =
          std::abs(Old) > 1e-9 ? (New - Old) / Old * 100.0 : 0.0;
      // A regression is the metric moving against its direction by more
      // than the threshold.
      bool Regressed = Dir > 0 ? ChangePct < -Threshold
                               : ChangePct > Threshold;
      if (Regressed)
        ++Regressions;
      T.addRow({Name, formatString("%.4f", Old), formatString("%.4f", New),
                formatString("%+.1f%%", ChangePct),
                Regressed ? "REGRESSED" : "ok"});
    }
  }
  std::printf("%s", T.render().c_str());
  if (!Compared) {
    std::fprintf(stderr, "cfed-stat: no comparable metrics between '%s' and "
                         "'%s'\n",
                 PathA.c_str(), PathB.c_str());
    return 2;
  }
  if (Regressions) {
    std::printf("bench-diff: %u of %u metrics regressed beyond %.1f%%\n",
                Regressions, Compared, Threshold);
    return 1;
  }
  std::printf("bench-diff: %u metrics within %.1f%% of baseline\n", Compared,
              Threshold);
  return 0;
}

//===----------------------------------------------------------------------===//
// merge
//===----------------------------------------------------------------------===//

std::string mergedToJson(const ShardResult &Merged, size_t NumFiles) {
  std::string Out = "{\"kind\":\"cfed-campaign-merged\",\"version\":1";
  Out += ",\"shard\":0";
  Out += ",\"num_shards\":" + std::to_string(Merged.NumShards);
  Out += ",\"shards_merged\":" + std::to_string(NumFiles);
  Out += ",\"seed\":" + std::to_string(Merged.Seed);
  Out += ",\"completed\":" + std::to_string(Merged.Completed);
  Out += ",\"skipped\":" + std::to_string(Merged.Skipped);
  Out += ",\"finished\":";
  Out += Merged.Finished ? "true" : "false";
  Out += ",\"registry\":";
  Out += Merged.Registry.toJson();
  Out += '}';
  return Out;
}

int cmdMerge(int Argc, char **Argv) {
  std::vector<std::string> Paths;
  std::string OutPath;
  for (int I = 0; I < Argc; ++I) {
    std::string Arg = Argv[I];
    cli::Flag F;
    if (Arg == "-o") {
      OutPath = I + 1 < Argc ? Argv[++I] : "";
      if (OutPath.empty()) {
        cli::badValue("-o", "<file>", OutPath);
        usage();
        return 2;
      }
    } else if (cli::splitFlag(Arg, F)) {
      cli::unknownOption(F.Name);
      usage();
      return 2;
    } else {
      Paths.push_back(Arg);
    }
  }
  if (Paths.empty()) {
    std::fprintf(stderr, "error: merge needs at least one campaign result "
                         "file\n");
    usage();
    return 2;
  }

  std::vector<ShardResult> Shards;
  for (const std::string &Path : Paths) {
    std::string Text, Error;
    ShardResult Shard;
    if (!readFile(Path, Text))
      return 2;
    if (!CampaignEngine::parseShardResult(Text, Shard, Error)) {
      std::fprintf(stderr, "cfed-stat: '%s': %s\n", Path.c_str(),
                   Error.c_str());
      return 2;
    }
    Shards.push_back(std::move(Shard));
  }
  ShardResult Merged;
  std::string Error;
  if (!CampaignEngine::mergeShards(Shards, Merged, Error)) {
    std::fprintf(stderr, "cfed-stat: %s\n", Error.c_str());
    return 1;
  }

  auto WriteMerged = [&]() -> int {
    if (OutPath.empty())
      return 0;
    std::FILE *Out = std::fopen(OutPath.c_str(), "w");
    if (!Out) {
      std::fprintf(stderr, "cfed-stat: cannot write '%s'\n", OutPath.c_str());
      return 1;
    }
    std::string Json = mergedToJson(Merged, Shards.size());
    std::fprintf(Out, "%s\n", Json.c_str());
    std::fclose(Out);
    return 0;
  };

  // Attack-campaign shards carry attack.* tallies instead of fault
  // outcome counters: render the precision matrix and its fixed summary
  // line (the CI shard-invariance gate string-compares it against the
  // unsharded run's).
  if (hasAttackTallies(Merged.Registry)) {
    std::printf("%s", renderPrecisionMatrix(Merged.Registry).c_str());
    std::printf("merged %zu file(s) of a %u-shard campaign (seed %llu)%s\n",
                Shards.size(), Merged.NumShards,
                (unsigned long long)Merged.Seed,
                Merged.Finished ? "" : " [contains interrupted shards]");
    std::printf("%s\n",
                renderPrecisionSummaryLine(Merged.Registry).c_str());
    return WriteMerged();
  }

  CampaignResult Result = campaignResultFromSnapshot(Merged.Registry);
  Table T;
  T.setHeader({"cell", "inj", "det-sig", "det-hw", "masked", "SDC",
               "timeout"});
  for (unsigned C = 0; C < NumBranchErrorCategories; ++C) {
    auto Cat = static_cast<BranchErrorCategory>(C);
    const OutcomeCounts &Row = Result.of(Cat);
    if (Row.total() == 0)
      continue;
    T.addRow({getCategoryName(Cat), formatCount(Row.total()),
              formatCount(Row.DetectedSig), formatCount(Row.DetectedHw),
              formatCount(Row.Masked), formatCount(Row.Sdc),
              formatCount(Row.Timeout)});
  }
  std::printf("%s", T.render().c_str());
  OutcomeCounts Totals = Result.totals();
  std::printf("merged %zu file(s) of a %u-shard campaign (seed %llu)%s\n",
              Shards.size(), Merged.NumShards,
              (unsigned long long)Merged.Seed,
              Merged.Finished ? "" : " [contains interrupted shards]");
  // One fixed-format line the CI shard-invariance gate string-compares.
  std::printf("campaign-summary: injections=%llu detected_sig=%llu "
              "detected_hw=%llu masked=%llu sdc=%llu timeout=%llu "
              "skipped=%llu\n",
              (unsigned long long)Result.Injections,
              (unsigned long long)Totals.DetectedSig,
              (unsigned long long)Totals.DetectedHw,
              (unsigned long long)Totals.Masked,
              (unsigned long long)Totals.Sdc,
              (unsigned long long)Totals.Timeout,
              (unsigned long long)Merged.Skipped);

  // Propagation campaigns: render the merged funnel plus one fixed-format
  // line the CI shard-invariance gate string-compares against the
  // unsharded reference.
  uint64_t PropTotal = 0;
  std::string PropLine;
  for (telemetry::PropClass C : telemetry::AllPropClasses) {
    uint64_t N = 0;
    for (unsigned Cat = 0; Cat < NumBranchErrorCategories; ++Cat)
      N += Merged.Registry.counterOr(getPropagationCounterName(
          static_cast<BranchErrorCategory>(Cat), C));
    PropTotal += N;
    PropLine += formatString(" %s=%llu", telemetry::getPropClassName(C),
                             (unsigned long long)N);
  }
  if (PropTotal) {
    std::printf("%s", renderPropagationFunnel(Merged.Registry).c_str());
    std::printf("prop-summary:%s\n", PropLine.c_str());
  }

  return WriteMerged();
}

//===----------------------------------------------------------------------===//
// latency
//===----------------------------------------------------------------------===//

int cmdLatency(int Argc, char **Argv) {
  for (int I = 0; I < Argc; ++I) {
    cli::Flag F;
    if (cli::splitFlag(Argv[I], F)) {
      cli::unknownOption(F.Name);
      usage();
      return 2;
    }
  }
  if (Argc != 1) {
    usage();
    return 2;
  }
  JsonValue Root;
  if (!parseFile(Argv[0], Root))
    return 2;
  const JsonValue &Reg = findRegistry(Root);
  if (Reg.K != JsonValue::Object) {
    std::fprintf(stderr, "cfed-stat: '%s' has no registry snapshot\n",
                 Argv[0]);
    return 2;
  }
  telemetry::RegistrySnapshot Snap;
  std::string Error;
  if (!telemetry::snapshotFromJson(Reg, Snap, Error)) {
    std::fprintf(stderr, "cfed-stat: '%s': %s\n", Argv[0], Error.c_str());
    return 2;
  }

  const std::string Prefix = "fault.latency.";
  Table T;
  T.setHeader({"histogram", "detections", "mean", "p50", "p90", "p99"});
  size_t Shown = 0;
  for (const auto &[Name, H] : Snap.Histograms) {
    if (Name.compare(0, Prefix.size(), Prefix) != 0)
      continue;
    ++Shown;
    T.addRow({Name, formatCount(static_cast<double>(H.Count)),
              formatString("%.1f", H.mean()), H.quantileText(0.5),
              H.quantileText(0.9), H.quantileText(0.99)});
  }
  if (!Shown) {
    std::fprintf(stderr, "cfed-stat: '%s' has no fault.latency.* "
                         "histograms (was the campaign run through the "
                         "engine or a latency-aware bench?)\n",
                 Argv[0]);
    return 1;
  }
  std::printf("%s", T.render().c_str());
  std::printf("latency unit: dynamic instructions from fault firing to "
              "detection; quantiles are bucket upper bounds (\">=N\" marks "
              "the open-ended overflow bucket)\n");
  return 0;
}

//===----------------------------------------------------------------------===//
// prop
//===----------------------------------------------------------------------===//

int cmdProp(int Argc, char **Argv) {
  for (int I = 0; I < Argc; ++I) {
    cli::Flag F;
    if (cli::splitFlag(Argv[I], F)) {
      cli::unknownOption(F.Name);
      usage();
      return 2;
    }
  }
  if (Argc != 1) {
    usage();
    return 2;
  }
  JsonValue Root;
  if (!parseFile(Argv[0], Root))
    return 2;
  const JsonValue &Reg = findRegistry(Root);
  if (Reg.K != JsonValue::Object) {
    std::fprintf(stderr, "cfed-stat: '%s' has no registry snapshot\n",
                 Argv[0]);
    return 2;
  }
  telemetry::RegistrySnapshot Snap;
  std::string Error;
  if (!telemetry::snapshotFromJson(Reg, Snap, Error)) {
    std::fprintf(stderr, "cfed-stat: '%s': %s\n", Argv[0], Error.c_str());
    return 2;
  }

  std::string Funnel = renderPropagationFunnel(Snap);
  if (Funnel.empty()) {
    std::fprintf(stderr, "cfed-stat: '%s' has no prop.* propagation "
                         "tallies (was the campaign run with "
                         "--prop-trace?)\n",
                 Argv[0]);
    return 1;
  }
  std::printf("%s", Funnel.c_str());
  std::printf(
      "classes: *-cln = outcome reached with no architectural divergence "
      "from the golden trace;\n"
      "det-div = diverged, then a signature check caught it; sdc-exp/unx = "
      "corrupt output with/without\n"
      "an observed divergence; msk-cnv = diverged but re-converged to the "
      "golden suffix; msk-lat = still\n"
      "diverged at a clean halt (latent state corruption). dist p50/p90: "
      "guest insns from first\n"
      "divergence to detection (\">=N\" marks the open-ended overflow "
      "bucket).\n");
  return 0;
}

//===----------------------------------------------------------------------===//
// precision
//===----------------------------------------------------------------------===//

int cmdPrecision(int Argc, char **Argv) {
  for (int I = 0; I < Argc; ++I) {
    cli::Flag F;
    if (cli::splitFlag(Argv[I], F)) {
      cli::unknownOption(F.Name);
      usage();
      return 2;
    }
  }
  if (Argc != 1) {
    usage();
    return 2;
  }
  JsonValue Root;
  if (!parseFile(Argv[0], Root))
    return 2;
  const JsonValue &Reg = findRegistry(Root);
  if (Reg.K != JsonValue::Object) {
    std::fprintf(stderr, "cfed-stat: '%s' has no registry snapshot\n",
                 Argv[0]);
    return 2;
  }
  telemetry::RegistrySnapshot Snap;
  std::string Error;
  if (!telemetry::snapshotFromJson(Reg, Snap, Error)) {
    std::fprintf(stderr, "cfed-stat: '%s': %s\n", Argv[0], Error.c_str());
    return 2;
  }

  if (!hasAttackTallies(Snap)) {
    std::fprintf(stderr, "cfed-stat: '%s' has no attack.* tallies (was "
                         "the campaign run with --campaign-attack?)\n",
                 Argv[0]);
    return 1;
  }
  std::printf("%s", renderPrecisionMatrix(Snap).c_str());
  std::printf("%s\n", renderPrecisionSummaryLine(Snap).c_str());
  std::printf(
      "cells: det-sig = the signature scheme fired (0xCFE/0x5EC); "
      "det-shdw = only the shadow\n"
      "return stack fired (0x5AC); det-integ = self-integrity quarantined "
      "the patch; det-hw =\n"
      "memory protection / illegal instruction; evaded = corrupt output, "
      "no detector fired\n"
      "(the attacker's score); masked = golden output; timeout = budget "
      "exhausted undetected.\n");
  return 0;
}

//===----------------------------------------------------------------------===//
// tail
//===----------------------------------------------------------------------===//

/// One-shot render of live-exporter snapshot files through the same
/// parsing and view code cfed-top refreshes continuously. With no
/// previous sample to diff against, rates show as "-".
int cmdTail(int Argc, char **Argv) {
  std::vector<std::string> Paths;
  for (int I = 0; I < Argc; ++I) {
    cli::Flag F;
    if (cli::splitFlag(Argv[I], F)) {
      cli::unknownOption(F.Name);
      usage();
      return 2;
    }
    Paths.push_back(Argv[I]);
  }
  if (Paths.empty()) {
    std::fprintf(stderr, "error: tail needs at least one live snapshot "
                         "file\n");
    usage();
    return 2;
  }

  std::vector<telemetry::ShardSample> Samples;
  for (const std::string &Path : Paths) {
    JsonValue Root;
    if (!parseFile(Path, Root))
      return 2;
    telemetry::ShardSample S;
    std::string Error;
    if (!telemetry::liveSnapshotFromJson(Root, S.Snap, Error)) {
      std::fprintf(stderr, "cfed-stat: '%s': %s\n", Path.c_str(),
                   Error.c_str());
      return 2;
    }
    size_t Slash = Path.find_last_of('/');
    S.Label = Slash == std::string::npos ? Path : Path.substr(Slash + 1);
    Samples.push_back(std::move(S));
  }
  telemetry::LiveViewOptions Opts;
  Opts.NowMs = telemetry::wallClockMs();
  std::printf("%s", telemetry::renderLiveView(Samples, Opts).c_str());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    usage();
    return 2;
  }
  const char *Cmd = Argv[1];
  if (std::strcmp(Cmd, "top") == 0)
    return cmdTop(Argc - 2, Argv + 2);
  if (std::strcmp(Cmd, "diff") == 0)
    return cmdDiff(Argc - 2, Argv + 2);
  if (std::strcmp(Cmd, "postmortem") == 0)
    return cmdPostmortem(Argc - 2, Argv + 2);
  if (std::strcmp(Cmd, "bench-diff") == 0)
    return cmdBenchDiff(Argc - 2, Argv + 2);
  if (std::strcmp(Cmd, "merge") == 0)
    return cmdMerge(Argc - 2, Argv + 2);
  if (std::strcmp(Cmd, "latency") == 0)
    return cmdLatency(Argc - 2, Argv + 2);
  if (std::strcmp(Cmd, "prop") == 0)
    return cmdProp(Argc - 2, Argv + 2);
  if (std::strcmp(Cmd, "precision") == 0)
    return cmdPrecision(Argc - 2, Argv + 2);
  if (std::strcmp(Cmd, "tail") == 0)
    return cmdTail(Argc - 2, Argv + 2);
  usage();
  return 2;
}
