//===- InterpOpcodeTest.cpp - Per-opcode semantics coverage --------------------===//
//
// Complements InterpTest.cpp with the opcodes and edge cases not covered
// there: remaining ALU forms and flags, 64-bit constants, fp unary ops,
// shift masking, wrapping arithmetic.
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "vm/Interp.h"
#include "vm/Loader.h"

#include <gtest/gtest.h>

using namespace cfed;

namespace {

struct Runner {
  Memory Mem;
  Interpreter Interp{Mem};
  StopInfo Stop;

  explicit Runner(const std::string &Source) {
    AsmResult Result = assembleProgram(Source);
    EXPECT_TRUE(Result.succeeded()) << Result.errorText();
    loadProgram(Result.Program, LoadMode::Native, Mem, Interp.state());
    Stop = Interp.run(100000);
  }
  uint64_t reg(unsigned Index) const { return Interp.state().Regs[Index]; }
  double fp(unsigned Index) const { return Interp.state().FpRegs[Index]; }
};

} // namespace

TEST(InterpOpcodeTest, LogicOps) {
  Runner R("movi r1, 0xF0\nmovi r2, 0x3C\n"
           "and r3, r1, r2\nor r4, r1, r2\nxor r5, r1, r2\n"
           "not r6, r1\nhalt\n");
  EXPECT_EQ(R.reg(3), 0x30u);
  EXPECT_EQ(R.reg(4), 0xFCu);
  EXPECT_EQ(R.reg(5), 0xCCu);
  EXPECT_EQ(R.reg(6), ~uint64_t(0xF0));
}

TEST(InterpOpcodeTest, ImmediateAluForms) {
  Runner R("movi r1, 10\nandi r2, r1, 6\nori r3, r1, 5\n"
           "shli r4, r1, 2\nsari r5, r1, 1\nmuli r6, r1, -3\nhalt\n");
  EXPECT_EQ(R.reg(2), 2u);
  EXPECT_EQ(R.reg(3), 15u);
  EXPECT_EQ(R.reg(4), 40u);
  EXPECT_EQ(R.reg(5), 5u);
  EXPECT_EQ(static_cast<int64_t>(R.reg(6)), -30);
}

TEST(InterpOpcodeTest, ShiftAmountMasked) {
  // Shift counts are taken modulo 64, like IA-32's 64-bit shifts.
  Runner R("movi r1, 1\nmovi r2, 65\nshl r3, r1, r2\nhalt\n");
  EXPECT_EQ(R.reg(3), 2u);
}

TEST(InterpOpcodeTest, ArithmeticShiftKeepsSign) {
  Runner R("movi r1, -16\nsari r2, r1, 2\nshri r3, r1, 60\nhalt\n");
  EXPECT_EQ(static_cast<int64_t>(R.reg(2)), -4);
  EXPECT_EQ(R.reg(3), 15u); // Logical shift brings in zeros.
}

TEST(InterpOpcodeTest, NegSetsFlags) {
  Runner R("movi r1, 5\nneg r2, r1\nsetcc r3, s\n"
           "movi r4, 0\nneg r5, r4\nsetcc r6, eq\nhalt\n");
  EXPECT_EQ(static_cast<int64_t>(R.reg(2)), -5);
  EXPECT_EQ(R.reg(3), 1u); // Negative result: SF.
  EXPECT_EQ(R.reg(6), 1u); // neg 0 == 0: ZF.
}

TEST(InterpOpcodeTest, MovHiBuilds64BitConstants) {
  Runner R("movi r1, 0x12345678\nmovhi r1, 0x0000ABCD\nhalt\n");
  EXPECT_EQ(R.reg(1), 0x0000ABCD12345678ULL);
}

TEST(InterpOpcodeTest, MulWrapsAndFlagsOverflow) {
  // (1<<62) * 4 wraps to 0 with the overflow flag set.
  Runner R("movi r1, 1\nshli r1, r1, 62\nmovi r2, 4\n"
           "mul r3, r1, r2\nsetcc r4, o\nhalt\n");
  EXPECT_EQ(R.reg(3), 0u);
  EXPECT_EQ(R.reg(4), 1u);
}

TEST(InterpOpcodeTest, MulNoOverflowClearsFlag) {
  Runner R("movi r1, 100\nmovi r2, 100\nmul r3, r1, r2\n"
           "setcc r4, o\nhalt\n");
  EXPECT_EQ(R.reg(3), 10000u);
  EXPECT_EQ(R.reg(4), 0u);
}

TEST(InterpOpcodeTest, DivMinByMinusOneIsDefined) {
  // INT64_MIN / -1 wraps (no trap, no UB).
  Runner R("movi r1, 1\nshli r1, r1, 63\nmovi r2, -1\n"
           "div r3, r1, r2\nrem r4, r1, r2\nhalt\n");
  EXPECT_EQ(R.Stop.Kind, StopKind::Halted);
  EXPECT_EQ(R.reg(3), uint64_t(1) << 63);
  EXPECT_EQ(R.reg(4), 0u);
}

TEST(InterpOpcodeTest, RemByZeroTraps) {
  Runner R("movi r1, 5\nmovi r2, 0\nrem r3, r1, r2\nhalt\n");
  EXPECT_EQ(R.Stop.Kind, StopKind::Trapped);
  EXPECT_EQ(R.Stop.Trap, TrapKind::DivByZero);
}

TEST(InterpOpcodeTest, TestSetsFlagsWithoutWriting) {
  Runner R("movi r1, 12\nmovi r2, 3\ntest r1, r2\nsetcc r3, eq\n"
           "test r1, r1\nsetcc r4, ne\nhalt\n");
  EXPECT_EQ(R.reg(3), 1u); // 12 & 3 == 0.
  EXPECT_EQ(R.reg(4), 1u);
  EXPECT_EQ(R.reg(1), 12u);
}

TEST(InterpOpcodeTest, FpUnaryOps) {
  Runner R("fmovi f1, -9\nfabs f2, f1\nfneg f3, f2\nfmov f4, f3\n"
           "fsub f5, f2, f1\nhalt\n");
  EXPECT_DOUBLE_EQ(R.fp(2), 9.0);
  EXPECT_DOUBLE_EQ(R.fp(3), -9.0);
  EXPECT_DOUBLE_EQ(R.fp(4), -9.0);
  EXPECT_DOUBLE_EQ(R.fp(5), 18.0);
}

TEST(InterpOpcodeTest, FmaAccumulates) {
  Runner R("fmovi f1, 10\nfmovi f2, 3\nfmovi f3, 4\n"
           "fma f1, f2, f3\nhalt\n");
  EXPECT_DOUBLE_EQ(R.fp(1), 22.0);
}

TEST(InterpOpcodeTest, FToIClampsExtremes) {
  Runner R("fmovi f1, 1000000\nfmul f1, f1, f1\nfmul f1, f1, f1\n"
           "fmul f1, f1, f1\n" // 1e48: out of int64 range.
           "ftoi r1, f1\nfneg f1, f1\nftoi r2, f1\nhalt\n");
  EXPECT_EQ(static_cast<int64_t>(R.reg(1)), INT64_MAX);
  EXPECT_EQ(static_cast<int64_t>(R.reg(2)), INT64_MIN);
}

TEST(InterpOpcodeTest, UnsignedAddCarry) {
  Runner R("movi r1, -1\nmovi r2, 1\nadd r3, r1, r2\nsetcc r4, b\n"
           "setcc r5, eq\nhalt\n");
  EXPECT_EQ(R.reg(3), 0u);
  EXPECT_EQ(R.reg(4), 1u); // Carry out.
  EXPECT_EQ(R.reg(5), 1u);
}

TEST(InterpOpcodeTest, NopAndBudgetAccounting) {
  Runner R("nop\nnop\nnop\nhalt\n");
  EXPECT_EQ(R.Interp.instructionCount(), 4u);
}

TEST(InterpOpcodeTest, ResetCountersClearsOutput) {
  Runner R("movi r1, 1\nout r1\nhalt\n");
  EXPECT_FALSE(R.Interp.output().empty());
  R.Interp.resetCounters();
  EXPECT_TRUE(R.Interp.output().empty());
  EXPECT_EQ(R.Interp.instructionCount(), 0u);
  EXPECT_EQ(R.Interp.cycleCount(), 0u);
}
