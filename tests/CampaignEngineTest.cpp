//===- CampaignEngineTest.cpp - Campaign engine v2 tests ------------------------===//
//
// Checkpoint/resume determinism, crash torture, sharded merging, and
// early-stopping interval soundness for the resumable campaign engine.
//
//===----------------------------------------------------------------------===//

#include "fault/CampaignEngine.h"
#include "support/Json.h"
#include "support/Prng.h"
#include "support/Stats.h"
#include "telemetry/LiveExport.h"
#include "telemetry/Metrics.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>

using namespace cfed;

namespace {

AsmProgram makeProgram(uint64_t Seed = 11) {
  RandomProgramOptions Options;
  Options.Seed = Seed;
  Options.NumSegments = 6;
  Options.LoopTrip = 8;
  AsmResult Result = assembleProgram(generateRandomProgram(Options));
  EXPECT_TRUE(Result.succeeded()) << Result.errorText();
  return std::move(Result.Program);
}

DbtConfig makeDbtConfig() {
  DbtConfig Config;
  Config.Tech = Technique::EdgCf;
  Config.Flavor = UpdateFlavor::CMovcc;
  return Config;
}

EngineConfig makeEngine(uint64_t Seed, uint64_t NumInjections,
                        uint64_t Interval) {
  EngineConfig Engine;
  Engine.NumInjections = NumInjections;
  Engine.Seed = Seed;
  Engine.CheckpointInterval = Interval;
  Engine.Jobs = 1;
  return Engine;
}

/// Per-test scratch path under gtest's temp dir; removed up front so a
/// stale file from a previous run can never leak into a fresh campaign.
std::string tempPath(const std::string &Name) {
  std::string Path = ::testing::TempDir() + "cfed_engine_" +
                     std::to_string(::getpid()) + "_" + Name;
  std::remove(Path.c_str());
  return Path;
}

void writeFile(const std::string &Path, const std::string &Text) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out << Text;
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.is_open()) << Path;
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

} // namespace

//===----------------------------------------------------------------------===//
// Basic runs and jobs-invariance
//===----------------------------------------------------------------------===//

TEST(CampaignEngineTest, RunCompletesAndAccountsEverySlot) {
  AsmProgram Program = makeProgram();
  EngineReport Report =
      CampaignEngine(Program, makeDbtConfig(), makeEngine(101, 40, 8)).run();
  EXPECT_TRUE(Report.Finished);
  EXPECT_FALSE(Report.Resumed);
  EXPECT_EQ(Report.Planned, 40u);
  EXPECT_EQ(Report.Skipped, 0u);
  EXPECT_EQ(Report.Completed, 40u);
  EXPECT_EQ(Report.Registry.counterOr("fault.injections"), 40u);
  // The tallies the report exposes are rebuilt from the registry, so the
  // two can never disagree.
  EXPECT_EQ(Report.Result.totals().total(), 40u);
}

TEST(CampaignEngineTest, JobCountDoesNotChangeResults) {
  AsmProgram Program = makeProgram();
  EngineConfig E1 = makeEngine(101, 40, 8);
  EngineConfig E3 = E1;
  E3.Jobs = 3;
  EngineReport R1 = CampaignEngine(Program, makeDbtConfig(), E1).run();
  EngineReport R3 = CampaignEngine(Program, makeDbtConfig(), E3).run();
  EXPECT_EQ(R1.Registry, R3.Registry);
  EXPECT_EQ(R1.Registry.toJson(), R3.Registry.toJson());
}

TEST(CampaignEngineTest, LatencyHistogramsRecordDetections) {
  AsmProgram Program = makeProgram();
  EngineReport Report =
      CampaignEngine(Program, makeDbtConfig(), makeEngine(101, 40, 8)).run();
  uint64_t Detected = 0, LatencyCount = 0;
  for (const CellReport &Cell : Report.Cells)
    Detected += Cell.Counts.DetectedSig + Cell.Counts.DetectedHw;
  for (const auto &Entry : Report.Registry.Histograms)
    if (Entry.first.rfind("fault.latency.", 0) == 0)
      LatencyCount += Entry.second.Count;
  ASSERT_GT(Detected, 0u);
  EXPECT_EQ(LatencyCount, Detected);
}

TEST(CampaignEngineTest, LatencyInstrumentNamesAndBounds) {
  EXPECT_EQ(CampaignEngine::getLatencyHistogramName(BranchErrorCategory::A),
            "fault.latency.cat_A");
  EXPECT_EQ(CampaignEngine::getLatencyHistogramName(BranchErrorCategory::F),
            "fault.latency.cat_F");
  std::vector<uint64_t> Bounds = CampaignEngine::latencyBounds();
  ASSERT_FALSE(Bounds.empty());
  EXPECT_EQ(Bounds.front(), 1u);
  EXPECT_EQ(Bounds.back(), uint64_t(1) << 20);
  for (size_t I = 1; I < Bounds.size(); ++I)
    EXPECT_EQ(Bounds[I], Bounds[I - 1] * 2);
}

//===----------------------------------------------------------------------===//
// Checkpoint round trip and corruption diagnostics
//===----------------------------------------------------------------------===//

namespace {

EngineCheckpoint sampleCheckpoint() {
  EngineCheckpoint Ckpt;
  Ckpt.Version = EngineCheckpointVersion;
  Ckpt.PlanHash = 0xDEADBEEFCAFE1234ULL;
  Ckpt.Shard = 1;
  Ckpt.NumShards = 3;
  Ckpt.Cursor = 17;
  Ckpt.Completed = 15;
  Ckpt.ReserveCursors[2] = 4;
  telemetry::MetricsRegistry Registry;
  Registry.counter("fault.injections").inc(15);
  Registry.histogram("fault.latency.cat_D", {1, 2, 4}).observe(3);
  Ckpt.Registry = Registry.snapshot();
  return Ckpt;
}

} // namespace

TEST(CampaignEngineCheckpointTest, RoundTripPreservesEveryField) {
  std::string Path = tempPath("roundtrip.ckpt");
  EngineCheckpoint Ckpt = sampleCheckpoint();
  std::string Error;
  ASSERT_TRUE(CampaignEngine::writeCheckpoint(Path, Ckpt, Error)) << Error;
  // The temp file must not survive a successful rename.
  EXPECT_FALSE(std::ifstream(Path + ".tmp").is_open());

  EngineCheckpoint Loaded;
  ASSERT_EQ(CampaignEngine::loadCheckpoint(Path, Loaded, Error),
            CampaignEngine::LoadStatus::Ok)
      << Error;
  EXPECT_EQ(Loaded.Version, Ckpt.Version);
  EXPECT_EQ(Loaded.PlanHash, Ckpt.PlanHash);
  EXPECT_EQ(Loaded.Shard, Ckpt.Shard);
  EXPECT_EQ(Loaded.NumShards, Ckpt.NumShards);
  EXPECT_EQ(Loaded.Cursor, Ckpt.Cursor);
  EXPECT_EQ(Loaded.Completed, Ckpt.Completed);
  EXPECT_EQ(Loaded.ReserveCursors, Ckpt.ReserveCursors);
  EXPECT_EQ(Loaded.Registry, Ckpt.Registry);
  std::remove(Path.c_str());
}

TEST(CampaignEngineCheckpointTest, MissingFileIsAFreshCampaign) {
  EngineCheckpoint Out;
  std::string Error;
  EXPECT_EQ(CampaignEngine::loadCheckpoint(tempPath("nonexistent.ckpt"), Out,
                                           Error),
            CampaignEngine::LoadStatus::Missing);
}

TEST(CampaignEngineCheckpointTest, TruncatedCheckpointIsRejected) {
  std::string Path = tempPath("truncated.ckpt");
  std::string Error;
  ASSERT_TRUE(
      CampaignEngine::writeCheckpoint(Path, sampleCheckpoint(), Error));
  std::string Full = readFile(Path);
  writeFile(Path, Full.substr(0, Full.size() / 2));

  EngineCheckpoint Out;
  EXPECT_EQ(CampaignEngine::loadCheckpoint(Path, Out, Error),
            CampaignEngine::LoadStatus::Corrupt);
  EXPECT_NE(Error.find("truncated or not valid JSON"), std::string::npos)
      << Error;
  std::remove(Path.c_str());
}

TEST(CampaignEngineCheckpointTest, GarbageAndWrongKindAreRejected) {
  std::string Path = tempPath("garbage.ckpt");
  std::string Error;
  EngineCheckpoint Out;

  writeFile(Path, "not json at all");
  EXPECT_EQ(CampaignEngine::loadCheckpoint(Path, Out, Error),
            CampaignEngine::LoadStatus::Corrupt);

  writeFile(Path, "{\"kind\":\"something-else\"}");
  EXPECT_EQ(CampaignEngine::loadCheckpoint(Path, Out, Error),
            CampaignEngine::LoadStatus::Corrupt);
  EXPECT_NE(Error.find("not a campaign checkpoint"), std::string::npos)
      << Error;
  std::remove(Path.c_str());
}

TEST(CampaignEngineCheckpointTest, FutureVersionIsRejected) {
  std::string Path = tempPath("version.ckpt");
  EngineCheckpoint Ckpt = sampleCheckpoint();
  Ckpt.Version = EngineCheckpointVersion + 7;
  std::string Error;
  ASSERT_TRUE(CampaignEngine::writeCheckpoint(Path, Ckpt, Error));

  EngineCheckpoint Out;
  EXPECT_EQ(CampaignEngine::loadCheckpoint(Path, Out, Error),
            CampaignEngine::LoadStatus::Corrupt);
  EXPECT_NE(Error.find("version"), std::string::npos) << Error;
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Resume determinism
//===----------------------------------------------------------------------===//

TEST(CampaignEngineTest, InterruptedResumeMatchesUninterruptedRun) {
  AsmProgram Program = makeProgram();
  DbtConfig Config = makeDbtConfig();
  // Property over seeds and cut points: a run stopped after any batch
  // and resumed must finish byte-identical to the uninterrupted run.
  for (uint64_t Seed : {101u, 202u, 303u}) {
    EngineConfig Base = makeEngine(Seed, 40, 8);
    EngineReport Reference = CampaignEngine(Program, Config, Base).run();
    for (uint64_t Cut : {1u, 3u}) {
      std::string Path =
          tempPath("resume_" + std::to_string(Seed) + "_" +
                   std::to_string(Cut) + ".ckpt");
      EngineConfig Interrupted = Base;
      Interrupted.CheckpointFile = Path;
      Interrupted.MaxBatches = Cut;
      EngineReport Partial =
          CampaignEngine(Program, Config, Interrupted).run();
      EXPECT_FALSE(Partial.Finished);
      EXPECT_EQ(Partial.Completed, Cut * 8);

      EngineConfig Resume = Base;
      Resume.CheckpointFile = Path;
      EngineReport Resumed = CampaignEngine(Program, Config, Resume).run();
      EXPECT_TRUE(Resumed.Resumed);
      EXPECT_TRUE(Resumed.Finished);
      EXPECT_EQ(Resumed.Completed, Reference.Completed);
      EXPECT_EQ(Resumed.Registry, Reference.Registry)
          << "seed " << Seed << " cut " << Cut;
      EXPECT_EQ(Resumed.Registry.toJson(), Reference.Registry.toJson());
      std::remove(Path.c_str());
    }
  }
}

TEST(CampaignEngineTortureTest, SigkillMidCampaignResumesIdentically) {
  AsmProgram Program = makeProgram();
  DbtConfig Config = makeDbtConfig();
  EngineConfig Base = makeEngine(707, 48, 4);
  EngineReport Reference = CampaignEngine(Program, Config, Base).run();

  std::string Path = tempPath("torture.ckpt");
  int Pipe[2];
  ASSERT_EQ(pipe(Pipe), 0);
  pid_t Child = fork();
  ASSERT_GE(Child, 0);
  if (Child == 0) {
    close(Pipe[0]);
    EngineConfig Victim = Base;
    Victim.CheckpointFile = Path;
    Victim.OnCheckpoint = [&](uint64_t) {
      char Byte = 'c';
      ssize_t Unused = write(Pipe[1], &Byte, 1);
      (void)Unused;
      // Widen the window so the parent's SIGKILL lands mid-campaign —
      // anywhere, including during a later checkpoint write.
      usleep(20000);
    };
    CampaignEngine(Program, Config, Victim).run();
    _exit(0);
  }
  close(Pipe[1]);
  char Byte;
  ASSERT_EQ(read(Pipe[0], &Byte, 1), 1); // >= 1 checkpoint is on disk
  ASSERT_EQ(kill(Child, SIGKILL), 0);
  int Status = 0;
  ASSERT_EQ(waitpid(Child, &Status, 0), Child);
  close(Pipe[0]);

  // Atomic write + rename: whenever the kill landed, the file must load
  // as a structurally valid checkpoint — never a torn one.
  EngineCheckpoint Ckpt;
  std::string Error;
  ASSERT_EQ(CampaignEngine::loadCheckpoint(Path, Ckpt, Error),
            CampaignEngine::LoadStatus::Ok)
      << Error;
  EXPECT_LE(Ckpt.Cursor, 48u);

  EngineConfig Resume = Base;
  Resume.CheckpointFile = Path;
  EngineReport Resumed = CampaignEngine(Program, Config, Resume).run();
  EXPECT_TRUE(Resumed.Finished);
  EXPECT_EQ(Resumed.Completed, Reference.Completed);
  EXPECT_EQ(Resumed.Registry, Reference.Registry);
  EXPECT_EQ(Resumed.Registry.toJson(), Reference.Registry.toJson());
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Fatal misuse (death tests)
//===----------------------------------------------------------------------===//

TEST(CampaignEngineDeathTest, ForeignCheckpointIsRefused) {
  AsmProgram Program = makeProgram();
  DbtConfig Config = makeDbtConfig();
  std::string Path = tempPath("foreign.ckpt");
  EngineConfig First = makeEngine(101, 40, 8);
  First.CheckpointFile = Path;
  First.MaxBatches = 1;
  CampaignEngine(Program, Config, First).run();

  EngineConfig Other = First;
  Other.Seed = 999; // Different plan, same checkpoint file.
  EXPECT_DEATH(CampaignEngine(Program, Config, Other).run(),
               "belongs to a different campaign");
  std::remove(Path.c_str());
}

TEST(CampaignEngineDeathTest, CorruptCheckpointIsFatalWithDiagnostic) {
  AsmProgram Program = makeProgram();
  std::string Path = tempPath("fatal.ckpt");
  writeFile(Path, "{\"kind\":\"cfed-campaign-checkpoint\",\"vers");
  EngineConfig Engine = makeEngine(101, 40, 8);
  Engine.CheckpointFile = Path;
  EXPECT_DEATH(CampaignEngine(Program, makeDbtConfig(), Engine).run(),
               "delete the file to restart the campaign");
  std::remove(Path.c_str());
}

TEST(CampaignEngineDeathTest, EarlyStoppingCannotBeSharded) {
  AsmProgram Program = makeProgram();
  EngineConfig Engine = makeEngine(101, 40, 8);
  Engine.NumShards = 2;
  Engine.StopHalfWidth = 0.1;
  EXPECT_DEATH(CampaignEngine(Program, makeDbtConfig(), Engine),
               "early stopping cannot be combined with sharding");
}

TEST(CampaignEngineDeathTest, InvalidShardSpecIsRefused) {
  AsmProgram Program = makeProgram();
  EngineConfig Engine = makeEngine(101, 40, 8);
  Engine.ShardIndex = 2;
  Engine.NumShards = 2;
  EXPECT_DEATH(CampaignEngine(Program, makeDbtConfig(), Engine),
               "invalid shard spec");
}

//===----------------------------------------------------------------------===//
// Sharding and merging
//===----------------------------------------------------------------------===//

TEST(CampaignEngineTest, ShardMergeReproducesUnshardedRun) {
  AsmProgram Program = makeProgram();
  DbtConfig Config = makeDbtConfig();
  EngineConfig Base = makeEngine(404, 40, 8);
  EngineReport Reference = CampaignEngine(Program, Config, Base).run();

  // Shards run with different job counts: the merge must be invariant
  // to both the shard split and each shard's parallelism.
  std::vector<ShardResult> Shards;
  for (unsigned Shard = 0; Shard < 2; ++Shard) {
    EngineConfig Sharded = Base;
    Sharded.ShardIndex = Shard;
    Sharded.NumShards = 2;
    Sharded.Jobs = Shard ? 3 : 1;
    EngineReport Part = CampaignEngine(Program, Config, Sharded).run();
    std::string Json = CampaignEngine::resultToJson(Part, Sharded);
    ShardResult Parsed;
    std::string Error;
    ASSERT_TRUE(CampaignEngine::parseShardResult(Json, Parsed, Error))
        << Error;
    EXPECT_EQ(Parsed.Shard, Shard);
    EXPECT_EQ(Parsed.Completed, Part.Completed);
    Shards.push_back(std::move(Parsed));
  }

  ShardResult Merged;
  std::string Error;
  ASSERT_TRUE(CampaignEngine::mergeShards(Shards, Merged, Error)) << Error;
  EXPECT_EQ(Merged.Completed, Reference.Completed);
  EXPECT_EQ(Merged.Registry, Reference.Registry);
  EXPECT_EQ(Merged.Registry.toJson(), Reference.Registry.toJson());
}

TEST(CampaignEngineTest, MergeRejectsDuplicateAndMismatchedShards) {
  ShardResult A;
  A.Shard = 0;
  A.NumShards = 2;
  A.Seed = 7;
  ShardResult B = A;
  std::string Error;
  ShardResult Out;
  // Duplicate shard index.
  EXPECT_FALSE(CampaignEngine::mergeShards({A, B}, Out, Error));
  EXPECT_FALSE(Error.empty());
  // Mismatched seed.
  B.Shard = 1;
  B.Seed = 8;
  EXPECT_FALSE(CampaignEngine::mergeShards({A, B}, Out, Error));
  // A valid pair merges.
  B.Seed = 7;
  EXPECT_TRUE(CampaignEngine::mergeShards({A, B}, Out, Error)) << Error;
}

//===----------------------------------------------------------------------===//
// Early stopping
//===----------------------------------------------------------------------===//

TEST(CampaignEngineTest, EarlyStoppingAccountsSkippedSlots) {
  AsmProgram Program = makeProgram();
  DbtConfig Config = makeDbtConfig();
  EngineConfig Stopping = makeEngine(505, 160, 16);
  Stopping.StopHalfWidth = 0.12;
  EngineReport Report = CampaignEngine(Program, Config, Stopping).run();
  EXPECT_TRUE(Report.Finished);

  uint64_t StoppedCells = 0, SkippedCounters = 0;
  for (const CellReport &Cell : Report.Cells) {
    if (!Cell.Stopped)
      continue;
    ++StoppedCells;
    // A closed cell must actually have reached the requested precision.
    EXPECT_LE(Cell.Interval.halfWidth(), Stopping.StopHalfWidth);
    EXPECT_GT(Cell.Counts.total(), 0u);
  }
  for (const auto &Entry : Report.Registry.Counters)
    if (Entry.first.rfind("fault.engine.skipped.", 0) == 0)
      SkippedCounters += Entry.second;
  // This seed/width closes at least one cell, and every skipped slot is
  // visible in the telemetry — no silent truncation.
  ASSERT_GT(StoppedCells, 0u);
  EXPECT_GT(Report.Skipped, 0u);
  EXPECT_EQ(SkippedCounters, Report.Skipped);
  EXPECT_EQ(Report.Registry.counterOr("fault.injections"),
            Report.Completed);
}

TEST(CampaignEngineTest, StoppedCellIntervalsCoverTheLongRunRate) {
  AsmProgram Program = makeProgram();
  DbtConfig Config = makeDbtConfig();
  // Reference: the same plan run to a 3x larger budget with no
  // stopping — its per-cell SDC rate stands in for the true rate.
  EngineConfig Long = makeEngine(505, 480, 32);
  EngineReport Truth = CampaignEngine(Program, Config, Long).run();

  EngineConfig Stopping = makeEngine(505, 160, 16);
  Stopping.StopHalfWidth = 0.12;
  EngineReport Report = CampaignEngine(Program, Config, Stopping).run();

  for (const CellReport &Cell : Report.Cells) {
    if (!Cell.Stopped)
      continue;
    const OutcomeCounts &Ref =
        Truth.Result.of(Cell.Category);
    if (Ref.total() < 30)
      continue; // Too few reference samples to call it the true rate.
    double TrueRate = double(Ref.Sdc) / double(Ref.total());
    EXPECT_TRUE(Cell.Interval.contains(TrueRate))
        << "cat " << getCategoryName(Cell.Category)
        << ": stopped interval [" << Cell.Interval.Low << ", "
        << Cell.Interval.High << "] excludes long-run rate " << TrueRate;
  }
}

TEST(CampaignEngineTest, WilsonIntervalCoversTrueRateAtNominalLevel) {
  // Direct coverage property of the stopping rule's interval: simulate
  // Bernoulli(P) samples at the trial counts early stopping decides on
  // and count how often the 95% interval misses P. Deterministic seeds;
  // the expected miss rate is 5%, so 200 trials allow a wide margin.
  for (double P : {0.1, 0.35, 0.7}) {
    unsigned Misses = 0;
    const unsigned Trials = 200, Draws = 150;
    for (unsigned T = 0; T < Trials; ++T) {
      Prng Rng(9000 + T);
      uint64_t Successes = 0;
      for (unsigned D = 0; D < Draws; ++D)
        if (Rng.nextBelow(1000) < uint64_t(P * 1000))
          ++Successes;
      if (!wilsonInterval(Successes, Draws, 1.96).contains(P))
        ++Misses;
    }
    EXPECT_LE(Misses, Trials / 10)
        << "P=" << P << ": " << Misses << "/" << Trials
        << " intervals missed the true rate";
  }
}

//===----------------------------------------------------------------------===//
// Result files
//===----------------------------------------------------------------------===//

TEST(CampaignEngineTest, ResultFileRoundTrips) {
  AsmProgram Program = makeProgram();
  EngineConfig Engine = makeEngine(606, 24, 8);
  EngineReport Report =
      CampaignEngine(Program, makeDbtConfig(), Engine).run();
  std::string Json = CampaignEngine::resultToJson(Report, Engine);

  ShardResult Parsed;
  std::string Error;
  ASSERT_TRUE(CampaignEngine::parseShardResult(Json, Parsed, Error))
      << Error;
  EXPECT_EQ(Parsed.Shard, 0u);
  EXPECT_EQ(Parsed.NumShards, 1u);
  EXPECT_EQ(Parsed.Seed, 606u);
  EXPECT_EQ(Parsed.Completed, Report.Completed);
  EXPECT_EQ(Parsed.Skipped, Report.Skipped);
  EXPECT_TRUE(Parsed.Finished);
  EXPECT_EQ(Parsed.Registry, Report.Registry);

  EXPECT_FALSE(CampaignEngine::parseShardResult("[]", Parsed, Error));
  EXPECT_FALSE(
      CampaignEngine::parseShardResult("{\"kind\":\"x\"}", Parsed, Error));
}

TEST(CampaignEngineTest, ParseShardResultRefusesLiveSnapshots) {
  ShardResult Out;
  std::string Error;
  EXPECT_FALSE(CampaignEngine::parseShardResult(
      "{\"kind\":\"cfed-live-snapshot\",\"version\":1,\"seq\":3}", Out,
      Error));
  EXPECT_NE(Error.find("live telemetry snapshot"), std::string::npos)
      << Error;
  // Even under a plausible kind, seq/heartbeat markers flag in-flight
  // data; a partial snapshot must never fold into a final merge.
  EXPECT_FALSE(CampaignEngine::parseShardResult(
      "{\"kind\":\"cfed-campaign-result\",\"heartbeat\":{}}", Out, Error));
  EXPECT_NE(Error.find("live telemetry snapshot"), std::string::npos)
      << Error;
}

//===----------------------------------------------------------------------===//
// Coordinated sharded early stopping
//===----------------------------------------------------------------------===//

namespace {

/// Fresh per-test coordinator directory.
std::string tempDir(const std::string &Name) {
  std::string Path = tempPath(Name);
  ::mkdir(Path.c_str(), 0755);
  return Path;
}

/// Runs shards 0..NumShards-1 of \p Base concurrently (they barrier on
/// each other through \p Dir) and returns the per-shard reports plus the
/// merged result-file fold.
struct CoordinatedRun {
  std::vector<EngineReport> Reports;
  ShardResult Merged;
};

CoordinatedRun runCoordinated(const AsmProgram &Program,
                              const DbtConfig &Config,
                              const EngineConfig &Base,
                              const std::string &Dir, unsigned NumShards,
                              const std::string &CheckpointStem = "") {
  std::vector<EngineConfig> Configs(NumShards, Base);
  CoordinatedRun Run;
  Run.Reports.resize(NumShards);
  std::vector<std::thread> Threads;
  for (unsigned S = 0; S < NumShards; ++S) {
    EngineConfig &E = Configs[S];
    E.ShardIndex = S;
    E.NumShards = NumShards;
    E.CoordinatorDir = Dir;
    // Different parallelism per shard: coordination must be invariant
    // to each sibling's job count.
    E.Jobs = S + 1;
    if (!CheckpointStem.empty())
      E.CheckpointFile = CheckpointStem + std::to_string(S) + ".ckpt";
    Threads.emplace_back([&Program, &Config, &E, &Run, S] {
      Run.Reports[S] = CampaignEngine(Program, Config, E).run();
    });
  }
  for (std::thread &T : Threads)
    T.join();

  std::vector<ShardResult> Shards;
  for (unsigned S = 0; S < NumShards; ++S) {
    std::string Json =
        CampaignEngine::resultToJson(Run.Reports[S], Configs[S]);
    ShardResult Parsed;
    std::string Error;
    EXPECT_TRUE(CampaignEngine::parseShardResult(Json, Parsed, Error))
        << Error;
    Shards.push_back(std::move(Parsed));
  }
  std::string Error;
  EXPECT_TRUE(CampaignEngine::mergeShards(Shards, Run.Merged, Error))
      << Error;
  return Run;
}

} // namespace

TEST(CampaignEngineTest, CoordinatedStopMergesIdenticalToUnshardedStop) {
  AsmProgram Program = makeProgram();
  DbtConfig Config = makeDbtConfig();
  EngineConfig Base = makeEngine(505, 160, 16);
  Base.StopHalfWidth = 0.12;
  EngineReport Reference = CampaignEngine(Program, Config, Base).run();

  std::string Dir = tempDir("coord_ident");
  CoordinatedRun Run = runCoordinated(Program, Config, Base, Dir, 2);

  // The acceptance property: the merged coordinated campaign is
  // byte-identical to the unsharded early-stopping run.
  EXPECT_EQ(Run.Merged.Registry, Reference.Registry);
  EXPECT_EQ(Run.Merged.Registry.toJson(), Reference.Registry.toJson());
  EXPECT_EQ(Run.Merged.Completed, Reference.Completed);
  EXPECT_EQ(Run.Merged.Skipped, Reference.Skipped);

  // Both shards report the merged closure decision per cell.
  ASSERT_EQ(Run.Reports[0].Cells.size(), Reference.Cells.size());
  for (size_t I = 0; I < Reference.Cells.size(); ++I) {
    EXPECT_EQ(Run.Reports[0].Cells[I].Stopped, Reference.Cells[I].Stopped)
        << "cell " << I;
    EXPECT_EQ(Run.Reports[1].Cells[I].Stopped, Reference.Cells[I].Stopped)
        << "cell " << I;
  }

  // Coordination publishes a live snapshot per shard as a side effect.
  for (unsigned S = 0; S < 2; ++S) {
    std::ifstream In(CampaignEngine::coordinatorLivePath(Dir, S));
    ASSERT_TRUE(In.is_open());
    std::string Text((std::istreambuf_iterator<char>(In)),
                     std::istreambuf_iterator<char>());
    json::JsonValue Root;
    json::JsonParser Parser(Text);
    ASSERT_TRUE(Parser.parse(Root));
    telemetry::LiveSnapshot Snap;
    std::string Error;
    ASSERT_TRUE(telemetry::liveSnapshotFromJson(Root, Snap, Error))
        << Error;
    EXPECT_TRUE(Snap.Beat.Present);
    EXPECT_EQ(Snap.Beat.Shard, S);
    EXPECT_EQ(Snap.Beat.NumShards, 2u);
    EXPECT_EQ(Snap.RunId, "campaign-505");
  }
}

// TraceTierTest-style property: over several seeds, the coordinated
// shards must close exactly the cells the unsharded early-stopping run
// closes — in particular never a cell the unsharded engine keeps open
// (which would silently starve that category of injections).
TEST(CampaignEngineTest, CoordinatedStopNeverClosesACellUnshardedKeepsOpen) {
  AsmProgram Program = makeProgram();
  DbtConfig Config = makeDbtConfig();
  for (uint64_t Seed : {505u, 707u, 909u}) {
    EngineConfig Base = makeEngine(Seed, 160, 16);
    Base.StopHalfWidth = 0.12;
    EngineReport Reference = CampaignEngine(Program, Config, Base).run();

    std::string Dir = tempDir("coord_prop_" + std::to_string(Seed));
    CoordinatedRun Run = runCoordinated(Program, Config, Base, Dir, 2);
    ASSERT_EQ(Run.Reports[0].Cells.size(), Reference.Cells.size());
    for (size_t I = 0; I < Reference.Cells.size(); ++I)
      for (const EngineReport &Shard : Run.Reports) {
        if (!Reference.Cells[I].Stopped)
          EXPECT_FALSE(Shard.Cells[I].Stopped)
              << "seed " << Seed << ": coordinated run closed cell " << I
              << " which the unsharded engine keeps open";
        else
          EXPECT_TRUE(Shard.Cells[I].Stopped)
              << "seed " << Seed << ": coordinated run missed closing "
              << I;
      }
    EXPECT_EQ(Run.Merged.Registry.toJson(), Reference.Registry.toJson())
        << "seed " << Seed;
  }
}

TEST(CampaignEngineTest, CoordinatedResumeContinuesToIdenticalMerge) {
  AsmProgram Program = makeProgram();
  DbtConfig Config = makeDbtConfig();
  EngineConfig Base = makeEngine(505, 160, 16);
  Base.StopHalfWidth = 0.12;
  EngineReport Reference = CampaignEngine(Program, Config, Base).run();

  std::string Dir = tempDir("coord_resume");
  std::string Stem = tempPath("coord_resume_shard");
  // First leg: both shards stop after one batch, checkpointing.
  EngineConfig Truncated = Base;
  Truncated.MaxBatches = 1;
  CoordinatedRun First =
      runCoordinated(Program, Config, Truncated, Dir, 2, Stem);
  for (const EngineReport &R : First.Reports)
    EXPECT_FALSE(R.Finished);

  // Second leg: same checkpoints, run to completion. The barrier files
  // of the first leg are still in the directory; resume must reuse or
  // republish them and land byte-identical to the unsharded run.
  CoordinatedRun Second =
      runCoordinated(Program, Config, Base, Dir, 2, Stem);
  for (const EngineReport &R : Second.Reports) {
    EXPECT_TRUE(R.Resumed);
    EXPECT_TRUE(R.Finished);
  }
  EXPECT_EQ(Second.Merged.Registry, Reference.Registry);
  EXPECT_EQ(Second.Merged.Registry.toJson(), Reference.Registry.toJson());
  EXPECT_EQ(Second.Merged.Completed, Reference.Completed);
  EXPECT_EQ(Second.Merged.Skipped, Reference.Skipped);
  for (unsigned S = 0; S < 2; ++S)
    std::remove((Stem + std::to_string(S) + ".ckpt").c_str());
}

TEST(CampaignEngineTest, InlineLiveExportPublishesEngineHeartbeat) {
  AsmProgram Program = makeProgram();
  std::string Path = tempPath("inline.live.json");
  EngineConfig Engine = makeEngine(101, 40, 8);
  Engine.LiveExportFile = Path;
  EngineReport Report =
      CampaignEngine(Program, makeDbtConfig(), Engine).run();
  EXPECT_TRUE(Report.Finished);

  std::string Text = readFile(Path);
  json::JsonValue Root;
  json::JsonParser Parser(Text);
  ASSERT_TRUE(Parser.parse(Root)) << Text;
  telemetry::LiveSnapshot Snap;
  std::string Error;
  ASSERT_TRUE(telemetry::liveSnapshotFromJson(Root, Snap, Error)) << Error;
  EXPECT_EQ(Snap.RunId, "campaign-101");
  EXPECT_TRUE(Snap.Beat.Present);
  EXPECT_EQ(Snap.Beat.Cursor, 40u);
  EXPECT_EQ(Snap.Beat.Planned, 40u);
  EXPECT_EQ(Snap.Beat.Completed, Report.Completed);
  // One publish per batch boundary: 40 slots / 8 per batch.
  EXPECT_EQ(Snap.Seq, 5u);
  // The final snapshot's registry is the run's cumulative registry.
  EXPECT_EQ(Snap.Registry, Report.Registry);
  std::remove(Path.c_str());
}

TEST(CampaignEngineDeathTest, CoordinatorBarrierTimeoutIsFatal) {
  AsmProgram Program = makeProgram();
  std::string Dir = tempDir("coord_timeout");
  EngineConfig Engine = makeEngine(505, 160, 16);
  Engine.StopHalfWidth = 0.12;
  Engine.NumShards = 2;
  Engine.ShardIndex = 0;
  Engine.CoordinatorDir = Dir;
  Engine.CoordinatorTimeoutMs = 80; // Sibling never starts.
  EXPECT_DEATH(CampaignEngine(Program, makeDbtConfig(), Engine).run(),
               "has not published");
}

TEST(CampaignEngineDeathTest, CoordinatedAndPlainCheckpointsDoNotMix) {
  AsmProgram Program = makeProgram();
  DbtConfig Config = makeDbtConfig();

  // A coordinated checkpoint's cursor counts global slots; resuming it
  // uncoordinated would misread it as shard slots.
  std::string Dir = tempDir("coord_mix");
  std::string CoordCkpt = tempPath("coord_mix_coord.ckpt");
  {
    EngineConfig E = makeEngine(404, 40, 8);
    E.NumShards = 1; // Single coordinated shard: no sibling to wait on.
    E.CoordinatorDir = Dir;
    E.CheckpointFile = CoordCkpt;
    E.MaxBatches = 1;
    CampaignEngine(Program, Config, E).run();
  }
  {
    EngineConfig E = makeEngine(404, 40, 8);
    E.CheckpointFile = CoordCkpt;
    EXPECT_DEATH(CampaignEngine(Program, Config, E).run(),
                 "written by a coordinated run");
  }

  // And the reverse: a plain checkpoint into a coordinated resume.
  std::string PlainCkpt = tempPath("coord_mix_plain.ckpt");
  {
    EngineConfig E = makeEngine(404, 40, 8);
    E.CheckpointFile = PlainCkpt;
    E.MaxBatches = 1;
    CampaignEngine(Program, Config, E).run();
  }
  {
    EngineConfig E = makeEngine(404, 40, 8);
    E.NumShards = 1;
    E.CoordinatorDir = Dir;
    E.CheckpointFile = PlainCkpt;
    EXPECT_DEATH(CampaignEngine(Program, Config, E).run(),
                 "without --campaign-coordinator");
  }
  std::remove(CoordCkpt.c_str());
  std::remove(PlainCkpt.c_str());
}
