//===- WorkloadsTest.cpp - Tests for the SPEC2000 stand-in suite ---------------===//

#include "cfg/Cfg.h"
#include "dbt/Dbt.h"
#include "support/Stats.h"
#include "vm/Loader.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace cfed;

namespace {

struct NativeRun {
  std::string Output;
  StopInfo Stop;
  uint64_t Insns = 0;
  uint64_t Cycles = 0;
};

NativeRun runNative(const AsmProgram &Program) {
  Memory Mem;
  Interpreter Interp(Mem);
  loadProgram(Program, LoadMode::Native, Mem, Interp.state());
  NativeRun Run;
  Run.Stop = Interp.run(50000000ULL);
  Run.Output = Interp.output();
  Run.Insns = Interp.instructionCount();
  Run.Cycles = Interp.cycleCount();
  return Run;
}

} // namespace

TEST(WorkloadsTest, SuiteShape) {
  EXPECT_EQ(getWorkloadSuite().size(), 26u);
  EXPECT_EQ(getIntWorkloadNames().size(), 12u);
  EXPECT_EQ(getFpWorkloadNames().size(), 14u);
}

/// Every workload must assemble, halt cleanly, produce output, and be of
/// a sane dynamic size.
class WorkloadParamTest : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadParamTest, RunsCleanNatively) {
  AsmProgram Program = assembleWorkload(GetParam());
  NativeRun Run = runNative(Program);
  EXPECT_EQ(Run.Stop.Kind, StopKind::Halted)
      << "trap=" << getTrapKindName(Run.Stop.Trap) << " at 0x" << std::hex
      << Run.Stop.TrapAddr;
  EXPECT_FALSE(Run.Output.empty());
  EXPECT_GT(Run.Insns, 100000u) << "workload too small for statistics";
  EXPECT_LT(Run.Insns, 10000000u) << "workload too large for campaigns";
}

TEST_P(WorkloadParamTest, SatisfiesFlagDiscipline) {
  // Flags must never live across block boundaries: the whole-program
  // techniques clobber flags in block prologues and rely on this.
  AsmProgram Program = assembleWorkload(GetParam());
  Cfg G = Cfg::build(Program.Code.data(), Program.Code.size(), CodeBase,
                     Program.Entry, Program.CodeLabels);
  std::vector<uint64_t> Violations = G.findFlagDisciplineViolations();
  EXPECT_TRUE(Violations.empty())
      << Violations.size() << " flag-discipline violations, first at 0x"
      << std::hex << (Violations.empty() ? 0 : Violations[0]);
}

TEST_P(WorkloadParamTest, DbtMatchesNative) {
  AsmProgram Program = assembleWorkload(GetParam());
  NativeRun Native = runNative(Program);
  ASSERT_EQ(Native.Stop.Kind, StopKind::Halted);

  // RCF is the heaviest instrumentation; ECF's check clobbers flags at
  // block entries, so it additionally exercises the flag discipline.
  for (Technique Tech : {Technique::Rcf, Technique::Ecf}) {
    DbtConfig Config;
    Config.Tech = Tech;
    Memory Mem;
    Interpreter Interp(Mem);
    Dbt Translator(Mem, Config);
    ASSERT_TRUE(Translator.load(Program, Interp.state()));
    StopInfo Stop = Translator.run(Interp, 100000000ULL);
    EXPECT_EQ(Stop.Kind, StopKind::Halted)
        << getTechniqueName(Tech)
        << " trap=" << getTrapKindName(Stop.Trap)
        << " code=" << Stop.BreakCode;
    EXPECT_EQ(Interp.output(), Native.Output) << getTechniqueName(Tech);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadParamTest,
    ::testing::ValuesIn([] {
      std::vector<std::string> Names;
      for (const WorkloadInfo &Info : getWorkloadSuite())
        Names.push_back(Info.Name);
      return Names;
    }()),
    [](const ::testing::TestParamInfo<std::string> &Info) {
      std::string Name = Info.param;
      for (char &Ch : Name)
        if (Ch == '.')
          Ch = '_';
      return Name;
    });

TEST(WorkloadsTest, FpWorkloadsHaveLargerBlocksAndCostlierInsns) {
  // The property every int-vs-fp difference in the paper rests on:
  // fp workloads have bigger blocks (fewer branches per instruction) and
  // a higher cycle cost per instruction.
  double IntBranchRate = 0, FpBranchRate = 0;
  double IntCpi = 0, FpCpi = 0;
  auto Measure = [](const std::string &Name, double &BranchRate,
                    double &Cpi) {
    AsmProgram Program = assembleWorkload(Name);
    // Static branch density is a good proxy; count offset branches.
    uint64_t Branches = 0, Total = Program.Code.size() / InsnSize;
    for (uint64_t I = 0; I < Total; ++I) {
      auto Insn = Instruction::decode(&Program.Code[I * InsnSize]);
      ASSERT_TRUE(Insn.has_value());
      if (isBlockTerminator(Insn->Op))
        ++Branches;
    }
    NativeRun Run = runNative(Program);
    BranchRate += double(Branches) / double(Total);
    Cpi += double(Run.Cycles) / double(Run.Insns);
  };
  for (const std::string &Name : getIntWorkloadNames())
    Measure(Name, IntBranchRate, IntCpi);
  for (const std::string &Name : getFpWorkloadNames())
    Measure(Name, FpBranchRate, FpCpi);
  IntBranchRate /= 12;
  FpBranchRate /= 14;
  IntCpi /= 12;
  FpCpi /= 14;
  EXPECT_GT(IntBranchRate, FpBranchRate);
  EXPECT_GT(FpCpi, IntCpi);
}

TEST(WorkloadsTest, SuiteSlowdownOrdering) {
  // The Figure 12 ordering over a representative slice of the suite:
  // geomean slowdown ECF < EdgCF < RCF relative to the DBT baseline.
  const char *Names[] = {"164.gzip", "181.mcf", "197.parser", "171.swim",
                         "188.ammp", "189.lucas"};
  std::vector<double> Ecf, EdgCf, Rcf;
  for (const char *Name : Names) {
    AsmProgram Program = assembleWorkload(Name);
    auto Cycles = [&Program](Technique Tech) {
      DbtConfig Config;
      Config.Tech = Tech;
      Memory Mem;
      Interpreter Interp(Mem);
      Dbt Translator(Mem, Config);
      EXPECT_TRUE(Translator.load(Program, Interp.state()));
      Translator.run(Interp, 100000000ULL);
      return double(Interp.cycleCount());
    };
    double Base = Cycles(Technique::None);
    Ecf.push_back(Cycles(Technique::Ecf) / Base);
    EdgCf.push_back(Cycles(Technique::EdgCf) / Base);
    Rcf.push_back(Cycles(Technique::Rcf) / Base);
  }
  double GeoEcf = geometricMean(Ecf);
  double GeoEdgCf = geometricMean(EdgCf);
  double GeoRcf = geometricMean(Rcf);
  EXPECT_LT(GeoEcf, GeoEdgCf);
  EXPECT_LT(GeoEdgCf, GeoRcf);
  EXPECT_GT(GeoEcf, 1.05);
  EXPECT_LT(GeoRcf, 3.0);
}

TEST(WorkloadsTest, GoldenOutputHashes) {
  // Pinned output hashes: any change here means a workload's behavior
  // changed, which invalidates every recorded experiment. Regenerate
  // with tools/run_workload after an intentional change.
  const std::pair<const char *, uint64_t> Goldens[] = {
      {"164.gzip", 0x00ec24ab946f00baULL},
      {"175.vpr", 0xc902a3f0d1fbd9c6ULL},
      {"176.gcc", 0x0f1da70b303ec303ULL},
      {"181.mcf", 0x3b997e49691d5620ULL},
      {"186.crafty", 0x5743a3182260196cULL},
      {"197.parser", 0x595e26bc8667a081ULL},
      {"252.eon", 0x6059ee1827a49867ULL},
      {"253.perlbmk", 0x5cbe6cd8a1a54194ULL},
      {"254.gap", 0x1fbc9df10322def0ULL},
      {"255.vortex", 0x65cdcfd8a6e3caa9ULL},
      {"256.bzip2", 0x9f7734d870c00553ULL},
      {"300.twolf", 0x8b985b18401e28bdULL},
      {"168.wupwise", 0x70a5b3ff9e7c170eULL},
      {"171.swim", 0x405d958c597693e9ULL},
      {"172.mgrid", 0xf92be02e3204647dULL},
      {"173.applu", 0xa4995f13a535ceeeULL},
      {"177.mesa", 0x7d2fb59bb94cf03dULL},
      {"178.galgel", 0xc88ca5468b7fbe9fULL},
      {"179.art", 0x8e5bfb51ca4ff60eULL},
      {"183.equake", 0x5d95666b0e071c00ULL},
      {"187.facerec", 0x0be44842f0b11918ULL},
      {"188.ammp", 0xcd3911488910d0e4ULL},
      {"189.lucas", 0x89aec35a861a6e79ULL},
      {"191.fma3d", 0x07fc1e07b4bd2c5fULL},
      {"200.sixtrack", 0x07656e0e4282b816ULL},
      {"301.apsi", 0x42bda3ed2870e2b6ULL},
  };
  for (const auto &[Name, Expected] : Goldens) {
    NativeRun Run = runNative(assembleWorkload(Name));
    EXPECT_EQ(hashOutput(Run.Output), Expected) << Name;
  }
}

TEST(WorkloadsTest, DeterministicSources) {
  EXPECT_EQ(getWorkloadSource("164.gzip"), getWorkloadSource("164.gzip"));
  EXPECT_NE(getWorkloadSource("164.gzip"), getWorkloadSource("256.bzip2"));
}
