//===- LiveExportTest.cpp - Live telemetry plane tests --------------------===//
//
// Round-trip fidelity of live snapshots, atomicity of publishes under
// concurrent mutation, the monotone sequence contract readers depend
// on, rate computation, the rendered live view, and the disabled-cost
// bound of the exporter.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"
#include "telemetry/LiveExport.h"
#include "telemetry/LiveView.h"
#include "telemetry/Metrics.h"
#include "vm/Loader.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <thread>
#include <unistd.h>

using namespace cfed;
using namespace cfed::telemetry;

namespace {

std::string tempPath(const std::string &Name) {
  std::string Path = ::testing::TempDir() + "cfed_live_" +
                     std::to_string(::getpid()) + "_" + Name;
  std::remove(Path.c_str());
  return Path;
}

bool parseText(const std::string &Text, json::JsonValue &Out) {
  // JsonParser emplaces into whatever fields Out already holds; clear it
  // so helper reuse across parses cannot leak stale keys.
  Out = json::JsonValue();
  json::JsonParser Parser(Text);
  return Parser.parse(Out);
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In.is_open())
    return std::string();
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

LiveSnapshot sampleSnapshot(bool WithHeartbeat) {
  MetricsRegistry Registry;
  Registry.counter("dbt.dispatches").inc(12345);
  Registry.counter("fault.injections").inc(97);
  // Registry gauges serialize through Metrics' %.6g formatter (shared
  // with the human-readable summary), so the embedded registry only
  // round-trips values %.6g can represent. The exporter's own doubles
  // (Wilson bounds below) use %.17g and round-trip bit-exact.
  Registry.gauge("dbt.ibtc_hit_rate").set(0.875);
  Registry.gauge("run.output_hash").set(1234.5);
  Registry.histogram("fault.latency.cat_C", {1, 2, 4, 8}).observe(3);
  Registry.histogram("fault.latency.cat_C", {1, 2, 4, 8}).observe(9);

  LiveSnapshot Snap;
  Snap.RunId = "campaign-505";
  Snap.Pid = 4242;
  Snap.Seq = 7;
  Snap.WallMs = 1754650000123ULL;
  Snap.Registry = Registry.snapshot();
  if (WithHeartbeat) {
    Snap.Beat.Present = true;
    Snap.Beat.Shard = 1;
    Snap.Beat.NumShards = 2;
    Snap.Beat.Cursor = 112;
    Snap.Beat.Planned = 160;
    Snap.Beat.Skipped = 9;
    Snap.Beat.Completed = 47;
    Snap.Beat.Rung = "rollback";
    Snap.Beat.Cells.push_back({"C", 39, 14, 0.2274, 0.5158, false});
    Snap.Beat.Cells.push_back({"E", 22, 0, 0.0, 0.1487, true});
  }
  return Snap;
}

} // namespace

//===----------------------------------------------------------------------===//
// JSON round trip and live-file detection
//===----------------------------------------------------------------------===//

TEST(LiveExportTest, SnapshotRoundTripsThroughJson) {
  for (bool WithHeartbeat : {false, true}) {
    LiveSnapshot Snap = sampleSnapshot(WithHeartbeat);
    std::string Json = liveSnapshotToJson(Snap);
    // Single line: the file is consumed by line-oriented tooling.
    EXPECT_EQ(Json.find('\n'), std::string::npos);

    json::JsonValue Root;
    ASSERT_TRUE(parseText(Json, Root)) << Json;
    LiveSnapshot Back;
    std::string Error;
    ASSERT_TRUE(liveSnapshotFromJson(Root, Back, Error)) << Error;
    EXPECT_EQ(Back, Snap) << "heartbeat=" << WithHeartbeat;
  }
}

TEST(LiveExportTest, DetectsLiveFilesAndOnlyLiveFiles) {
  json::JsonValue Root;
  ASSERT_TRUE(parseText(liveSnapshotToJson(sampleSnapshot(true)), Root));
  EXPECT_TRUE(isLiveSnapshotJson(Root));

  // A plain registry snapshot and a campaign result are not live files.
  MetricsRegistry Registry;
  Registry.counter("dbt.dispatches").inc(3);
  ASSERT_TRUE(parseText(Registry.snapshot().toJson(), Root));
  EXPECT_FALSE(isLiveSnapshotJson(Root));
  ASSERT_TRUE(parseText("{\"kind\":\"cfed-campaign-result\",\"seed\":1}",
                        Root));
  EXPECT_FALSE(isLiveSnapshotJson(Root));

  // The markers alone are enough: a hand-rolled file with a seq or a
  // heartbeat field is still in-flight data.
  ASSERT_TRUE(parseText("{\"seq\":3}", Root));
  EXPECT_TRUE(isLiveSnapshotJson(Root));
  ASSERT_TRUE(parseText("{\"heartbeat\":{}}", Root));
  EXPECT_TRUE(isLiveSnapshotJson(Root));
}

TEST(LiveExportTest, RecoveryRungLadder) {
  MetricsRegistry Registry;
  EXPECT_STREQ(recoveryRungFromSnapshot(Registry.snapshot()), "normal");
  Registry.counter("recovery.rollbacks").inc();
  EXPECT_STREQ(recoveryRungFromSnapshot(Registry.snapshot()), "rollback");
  Registry.counter("integrity.retranslations").inc();
  EXPECT_STREQ(recoveryRungFromSnapshot(Registry.snapshot()),
               "retranslate");
  Registry.counter("recovery.degradations").inc();
  EXPECT_STREQ(recoveryRungFromSnapshot(Registry.snapshot()), "degraded");
  Registry.counter("recovery.interp_fallbacks").inc();
  EXPECT_STREQ(recoveryRungFromSnapshot(Registry.snapshot()),
               "interp-fallback");
}

//===----------------------------------------------------------------------===//
// Publishing: atomic files, monotone sequences
//===----------------------------------------------------------------------===//

TEST(LiveExportTest, PublishWritesAtomicallyAndCountsUp) {
  std::string Path = tempPath("publish.live.json");
  MetricsRegistry Registry;
  LiveExporter::Config Cfg;
  Cfg.Path = Path;
  Cfg.RunId = "test-run";
  LiveExporter Exporter(Cfg, [&](RegistrySnapshot &Snap, Heartbeat &) {
    Registry.counter("ticks").inc();
    Snap = Registry.snapshot();
  });

  uint64_t LastSeq = 0;
  for (int I = 0; I < 5; ++I) {
    std::string Error;
    ASSERT_TRUE(Exporter.publish(&Error)) << Error;
    // No temp residue after a successful rename.
    EXPECT_FALSE(std::ifstream(Path + ".tmp").is_open());
    json::JsonValue Root;
    ASSERT_TRUE(parseText(readFile(Path), Root));
    LiveSnapshot Snap;
    ASSERT_TRUE(liveSnapshotFromJson(Root, Snap, Error)) << Error;
    EXPECT_EQ(Snap.RunId, "test-run");
    EXPECT_EQ(Snap.Pid, static_cast<uint64_t>(::getpid()));
    EXPECT_GT(Snap.Seq, LastSeq);
    LastSeq = Snap.Seq;
    EXPECT_EQ(Snap.Registry.counterOr("ticks"),
              static_cast<uint64_t>(I + 1));
  }
  EXPECT_EQ(Exporter.sequence(), 5u);
  EXPECT_EQ(Exporter.failureCount(), 0u);
  std::remove(Path.c_str());
}

TEST(LiveExportTest, PublishFailureIsCountedNotFatal) {
  LiveExporter::Config Cfg;
  Cfg.Path = "/nonexistent-dir-cfed/live.json";
  Cfg.RunId = "broken";
  LiveExporter Exporter(Cfg, [](RegistrySnapshot &, Heartbeat &) {});
  std::string Error;
  EXPECT_FALSE(Exporter.publish(&Error));
  EXPECT_FALSE(Error.empty());
  EXPECT_EQ(Exporter.sequence(), 0u);
  EXPECT_EQ(Exporter.failureCount(), 1u);
}

// Satellite: hammer the registry from worker threads while the service
// exporter snapshots concurrently. Every file a reader sees must parse,
// sequences must be strictly increasing, and counters monotone — the
// exact contract cfed-top's rate computation stands on.
TEST(LiveExportTest, SnapshotsUnderMutationAreAlwaysConsistent) {
  std::string Path = tempPath("hammer.live.json");
  MetricsRegistry Registry;
  std::atomic<bool> Stop{false};
  std::vector<std::thread> Writers;
  for (int W = 0; W < 4; ++W)
    Writers.emplace_back([&Registry, &Stop, W] {
      std::string Name = "hammer.c" + std::to_string(W);
      uint64_t V = 0;
      while (!Stop.load(std::memory_order_relaxed)) {
        Registry.counter(Name).inc();
        Registry.histogram("hammer.h", {1, 8, 64}).observe(V++ % 100);
      }
    });

  LiveExporter::Config Cfg;
  Cfg.Path = Path;
  Cfg.RunId = "hammer";
  Cfg.IntervalMs = 1;
  LiveExporter Exporter(Cfg, [&Registry](RegistrySnapshot &Snap,
                                         Heartbeat &) {
    Snap = Registry.snapshot();
  });
  Exporter.start();

  // Read until enough distinct publishes have been observed; the hard
  // deadline only bounds the worst case (a loaded single-CPU CI box can
  // starve the 1 ms exporter thread well past any fixed short window).
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::seconds(10);
  uint64_t Reads = 0, LastSeq = 0;
  std::map<std::string, uint64_t> LastCounters;
  while (Reads < 8 && std::chrono::steady_clock::now() < Deadline) {
    std::string Text = readFile(Path);
    if (Text.empty())
      continue; // First publish not out yet.
    json::JsonValue Root;
    ASSERT_TRUE(parseText(Text, Root)) << "torn live file: " << Text;
    LiveSnapshot Snap;
    std::string Error;
    ASSERT_TRUE(liveSnapshotFromJson(Root, Snap, Error)) << Error;
    if (Snap.Seq == LastSeq)
      continue; // Same file as last read.
    EXPECT_GT(Snap.Seq, LastSeq);
    LastSeq = Snap.Seq;
    for (const auto &[Name, Value] : Snap.Registry.Counters) {
      auto It = LastCounters.find(Name);
      if (It != LastCounters.end()) {
        EXPECT_GE(Value, It->second) << Name << " went backwards";
      }
      LastCounters[Name] = Value;
    }
    ++Reads;
  }
  Stop.store(true);
  for (std::thread &T : Writers)
    T.join();
  Exporter.stop();
  EXPECT_FALSE(Exporter.running());
  // The exporter must actually have been publishing while we read.
  EXPECT_GE(Reads, 5u);
  EXPECT_EQ(Exporter.failureCount(), 0u);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Rates and the rendered view
//===----------------------------------------------------------------------===//

namespace {

ShardSample makeSample(uint64_t PrevSeq, uint64_t PrevMs, uint64_t PrevVal,
                       uint64_t CurSeq, uint64_t CurMs, uint64_t CurVal) {
  auto Build = [](uint64_t Seq, uint64_t Ms, uint64_t Val) {
    MetricsRegistry R;
    R.counter("dbt.dispatches").inc(Val);
    LiveSnapshot S;
    S.Seq = Seq;
    S.WallMs = Ms;
    S.Registry = R.snapshot();
    return S;
  };
  ShardSample Sample;
  Sample.Label = "s";
  Sample.Snap = Build(CurSeq, CurMs, CurVal);
  Sample.HavePrev = true;
  Sample.Prev = Build(PrevSeq, PrevMs, PrevVal);
  return Sample;
}

} // namespace

TEST(LiveViewTest, CounterRatesComeFromSeqDeltas) {
  // 1000 dispatches over 500 ms -> 2000/s.
  ShardSample S = makeSample(1, 1000, 500, 2, 1500, 1500);
  EXPECT_DOUBLE_EQ(counterRatePerSec(S, "dbt.dispatches"), 2000.0);

  // Invalid deltas all answer "no rate": no previous sample, a stale
  // re-read (same seq), a restarted publisher (seq or clock going
  // backwards), and a counter that shrank.
  ShardSample NoPrev = S;
  NoPrev.HavePrev = false;
  EXPECT_LT(counterRatePerSec(NoPrev, "dbt.dispatches"), 0.0);
  EXPECT_LT(counterRatePerSec(makeSample(2, 1000, 500, 2, 1500, 900),
                              "dbt.dispatches"),
            0.0);
  EXPECT_LT(counterRatePerSec(makeSample(3, 1500, 500, 2, 1000, 900),
                              "dbt.dispatches"),
            0.0);
  EXPECT_LT(counterRatePerSec(makeSample(1, 1000, 500, 2, 1500, 100),
                              "dbt.dispatches"),
            0.0);
}

TEST(LiveViewTest, RenderFlagsStalledShardsAndMergesCells) {
  LiveSnapshot Fresh = sampleSnapshot(true);
  LiveSnapshot Stale = sampleSnapshot(true);
  Stale.RunId = "campaign-505";
  Stale.Beat.Shard = 0;
  Stale.WallMs = Fresh.WallMs - 60000; // A minute behind.

  ShardSample A, B;
  A.Label = "shard_0";
  A.Snap = Stale;
  B.Label = "shard_1";
  B.Snap = Fresh;
  LiveViewOptions Opts;
  Opts.NowMs = Fresh.WallMs;
  Opts.StallAfterSec = 10.0;
  std::string View = renderLiveView({A, B}, Opts);

  EXPECT_NE(View.find("2 shard(s)"), std::string::npos) << View;
  EXPECT_NE(View.find("STALLED"), std::string::npos) << View;
  EXPECT_NE(View.find("1 shard(s) STALLED"), std::string::npos) << View;
  // Cells from both shards merge: C = 39+39 injections, 14+14 SDC.
  EXPECT_NE(View.find("78"), std::string::npos) << View;
  EXPECT_NE(View.find("detection latency"), std::string::npos) << View;
  EXPECT_NE(View.find("fault.latency.cat_C"), std::string::npos) << View;

  // A shard whose cursor reached its plan renders as done, not stalled.
  ShardSample Done = B;
  Done.Snap.Beat.Cursor = Done.Snap.Beat.Planned;
  Done.Snap.WallMs = Fresh.WallMs - 60000;
  View = renderLiveView({Done}, Opts);
  EXPECT_NE(View.find("done"), std::string::npos) << View;
  EXPECT_EQ(View.find("STALLED"), std::string::npos) << View;
}

//===----------------------------------------------------------------------===//
// Cost bound: an idle exporter must not tax the run
//===----------------------------------------------------------------------===//

// A run that carries a live exporter which never fires (interval far
// beyond the run time) must cost within 2% of one with no exporter at
// all. Timing is noisy under CI: min-of-several repeats, retried.
TEST(LiveExportOverheadTest, IdleExporterWithinTwoPercent) {
  AsmProgram Program = assembleWorkload("181.mcf");
  constexpr uint64_t Budget = 200000;

  auto TimedRun = [&Program](bool WithExporter) {
    MetricsRegistry Registry;
    std::unique_ptr<LiveExporter> Exporter;
    std::string Path = tempPath("overhead.live.json");
    if (WithExporter) {
      LiveExporter::Config Cfg;
      Cfg.Path = Path;
      Cfg.RunId = "overhead";
      Cfg.IntervalMs = 3600000; // Never fires within the run.
      Exporter = std::make_unique<LiveExporter>(
          Cfg, [&Registry](RegistrySnapshot &Snap, Heartbeat &) {
            Snap = Registry.snapshot();
          });
      Exporter->start();
    }
    Memory Mem;
    Interpreter Interp(Mem);
    loadProgram(Program, LoadMode::Native, Mem, Interp.state());
    auto Begin = std::chrono::steady_clock::now();
    Interp.run(Budget);
    auto End = std::chrono::steady_clock::now();
    if (Exporter)
      Exporter->stop();
    std::remove(Path.c_str());
    return std::chrono::duration<double>(End - Begin).count();
  };

  // Timing under a loaded parallel ctest run (often a single CPU) is
  // noisy enough that a 2% bound needs generous retries on top of the
  // min-of-reps filtering.
  double Overhead = 0.0;
  for (int Attempt = 0; Attempt < 6; ++Attempt) {
    double MinBase = 1e30, MinLive = 1e30;
    for (int Rep = 0; Rep < 5; ++Rep) {
      MinBase = std::min(MinBase, TimedRun(false));
      MinLive = std::min(MinLive, TimedRun(true));
    }
    Overhead = MinLive / MinBase - 1.0;
    if (Overhead <= 0.02)
      break;
  }
  EXPECT_LE(Overhead, 0.02)
      << "idle live-exporter overhead on the interpreter loop: "
      << Overhead * 100 << "%";
}
