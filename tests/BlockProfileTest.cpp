//===- BlockProfileTest.cpp - Tests for hot-spot attribution -------------------===//

#include "asm/Assembler.h"
#include "dbt/Dbt.h"
#include "telemetry/BlockProfile.h"
#include "telemetry/Metrics.h"
#include "vm/Layout.h"
#include "vm/Loader.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>

using namespace cfed;
using telemetry::BlockProfile;

namespace {

AsmProgram assembleOk(const std::string &Source) {
  AsmResult Result = assembleProgram(Source);
  EXPECT_TRUE(Result.succeeded()) << Result.errorText();
  return Result.Program;
}

/// A counted loop with a known block structure:
///   main (movi; addi; jnzr)  executes once,
///   loop (addi; jnzr)        executes 99 times (self-edge taken 98x),
///   exit (out; halt)         executes once.
const char *const CountedLoop = R"(
.entry main
main:
  movi r10, 100
loop:
  addi r10, r10, -1
  jnzr r10, loop
  out r10
  halt
)";

constexpr uint64_t MainAddr = CodeBase;                // movi
constexpr uint64_t LoopAddr = CodeBase + 1 * InsnSize; // addi
constexpr uint64_t ExitAddr = CodeBase + 3 * InsnSize; // out

struct ProfiledRun {
  Memory Mem;
  Interpreter Interp{Mem};
  BlockProfile Profile;
  Dbt Translator;
  StopInfo Stop;

  ProfiledRun(const AsmProgram &Program, DbtConfig Config,
              uint64_t MaxInsns = 2000000)
      : Translator(Mem, Config) {
    Translator.setBlockProfile(&Profile);
    EXPECT_TRUE(Translator.load(Program, Interp.state()))
        << Translator.loadError();
    Stop = Translator.run(Interp, MaxInsns);
  }
};

TEST(BlockProfileTest, SlotsAreStableAndDeduped) {
  BlockProfile Profile;
  uint32_t A = Profile.blockSlot(0x10000);
  uint32_t B = Profile.blockSlot(0x10040);
  EXPECT_NE(A, B);
  EXPECT_EQ(Profile.blockSlot(0x10000), A);
  uint32_t E = Profile.edgeSlot(0x10000, 0x10040);
  EXPECT_EQ(Profile.edgeSlot(0x10000, 0x10040), E);
  EXPECT_NE(Profile.edgeSlot(0x10040, 0x10000), E);

  Profile.bump(A);
  Profile.bump(A);
  Profile.bump(E);
  EXPECT_EQ(Profile.slotCount(A), 2u);
  EXPECT_EQ(Profile.execCount(0x10000), 2u);
  EXPECT_EQ(Profile.execCount(0x10040), 0u);
  EXPECT_EQ(Profile.edgeCount(0x10000, 0x10040), 1u);
  // Out-of-range bumps (a corrupted Prof immediate) are ignored.
  Profile.bump(1u << 30);
  EXPECT_EQ(Profile.totalBlockExecs(), 2u);
}

TEST(BlockProfileTest, HotnessNeedsExecutions) {
  BlockProfile Profile;
  uint32_t A = Profile.blockSlot(0x10000);
  EXPECT_FALSE(Profile.hasExecutions());
  EXPECT_FALSE(Profile.isHot(0x10000));
  Profile.bump(A);
  EXPECT_TRUE(Profile.hasExecutions());
  EXPECT_TRUE(Profile.isHot(0x10000)); // Default threshold 1.
  Profile.setHotThreshold(10);
  EXPECT_FALSE(Profile.isHot(0x10000));
  Profile.reset();
  EXPECT_FALSE(Profile.hasExecutions());
  // Slot assignments survive the counter reset.
  EXPECT_EQ(Profile.blockSlot(0x10000), A);
}

TEST(BlockProfileTest, ReportAndGauges) {
  BlockProfile Profile;
  uint32_t A = Profile.blockSlot(0x10000);
  Profile.noteBlock(0x10000, 0x10020, 4, 16, 64);
  for (int I = 0; I < 7; ++I)
    Profile.bump(A);
  Profile.bump(Profile.edgeSlot(0x10000, 0x10000));

  std::string Report = Profile.renderReport(5);
  EXPECT_NE(Report.find("0x10000..0x10020"), std::string::npos) << Report;
  EXPECT_NE(Report.find("100.00%"), std::string::npos) << Report;

  telemetry::MetricsRegistry Registry;
  Profile.publishTo(Registry);
  telemetry::RegistrySnapshot Snap = Registry.snapshot();
  EXPECT_EQ(Snap.gaugeOr("blockprofile.blocks"), 1.0);
  EXPECT_EQ(Snap.gaugeOr("blockprofile.edges"), 1.0);
  EXPECT_EQ(Snap.gaugeOr("blockprofile.execs"), 7.0);
  EXPECT_EQ(Snap.gaugeOr("blockprofile.dyn_insns"), 28.0);
}

TEST(BlockProfileTest, CountsMatchDispatchesWithoutChaining) {
  // In the fully conservative configuration every block entry goes
  // through the dispatch loop, so block executions and dbt.dispatches
  // must agree exactly — off by one for the initial entry, which the
  // run() prologue resolves without a dispatch.
  AsmProgram Program = assembleOk(CountedLoop);
  DbtConfig Config;
  Config.ChainDirectExits = false;
  ProfiledRun Run(Program, Config);
  ASSERT_EQ(Run.Stop.Kind, StopKind::Halted);
  EXPECT_EQ(Run.Profile.totalBlockExecs(),
            Run.Translator.dispatchCount() + 1);
  EXPECT_EQ(Run.Profile.execCount(MainAddr), 1u);
  EXPECT_EQ(Run.Profile.execCount(LoopAddr), 99u);
  EXPECT_EQ(Run.Profile.execCount(ExitAddr), 1u);
  EXPECT_EQ(Run.Profile.edgeCount(MainAddr, LoopAddr), 1u);
  EXPECT_EQ(Run.Profile.edgeCount(LoopAddr, LoopAddr), 98u);
  EXPECT_EQ(Run.Profile.edgeCount(LoopAddr, ExitAddr), 1u);
}

TEST(BlockProfileTest, CountsSurviveChaining) {
  // Chained transfers bypass the dispatch loop but still land on the
  // per-block Prof prologue, so the attribution is identical with and
  // without chaining even though the dispatch counts differ wildly.
  AsmProgram Program = assembleOk(CountedLoop);
  DbtConfig Chained;
  ProfiledRun A(Program, Chained);
  DbtConfig Unchained;
  Unchained.ChainDirectExits = false;
  ProfiledRun B(Program, Unchained);
  ASSERT_EQ(A.Stop.Kind, StopKind::Halted);
  ASSERT_EQ(B.Stop.Kind, StopKind::Halted);
  EXPECT_LT(A.Translator.dispatchCount(), B.Translator.dispatchCount());

  EXPECT_EQ(A.Profile.totalBlockExecs(), B.Profile.totalBlockExecs());
  for (uint64_t Addr : {MainAddr, LoopAddr, ExitAddr})
    EXPECT_EQ(A.Profile.execCount(Addr), B.Profile.execCount(Addr))
        << "block 0x" << std::hex << Addr;
  EXPECT_EQ(A.Profile.edgeCount(LoopAddr, LoopAddr), 98u);
}

TEST(BlockProfileTest, CountsSurviveSuperblockFusion) {
  // Fusion keeps one Prof per fused sub-block, so per-block counts match
  // the unfused translation even when fall-throughs never dispatch.
  AsmProgram Program = assembleOk(R"(
.entry main
main:
  movi r10, 50
  movi r11, 0
loop:
  addi r11, r11, 2
  jmp step
step:
  addi r10, r10, -1
  jnzr r10, loop
  out r11
  halt
)");
  DbtConfig Fused;
  Fused.SuperblockLimit = 4;
  ProfiledRun A(Program, Fused);
  DbtConfig Unfused;
  ProfiledRun B(Program, Unfused);
  ASSERT_EQ(A.Stop.Kind, StopKind::Halted);
  ASSERT_EQ(B.Stop.Kind, StopKind::Halted);
  EXPECT_EQ(A.Interp.output(), B.Interp.output());
  EXPECT_GT(A.Translator.metrics().snapshot().counterOr(
                "dbt.superblock_fusions"),
            0u);

  EXPECT_EQ(A.Profile.totalBlockExecs(), B.Profile.totalBlockExecs());
  for (const BlockProfile::BlockStats &Stats : B.Profile.topBlocks(16))
    EXPECT_EQ(A.Profile.execCount(Stats.GuestAddr), Stats.Execs)
        << "block 0x" << std::hex << Stats.GuestAddr;
}

TEST(BlockProfileTest, CountsSurviveCacheFlush) {
  // Slots are keyed by guest address: a flush + conservative
  // retranslation must keep accumulating into the same counters, so a
  // second identical run exactly doubles every count.
  AsmProgram Program = assembleOk(CountedLoop);
  DbtConfig Config;
  Memory Mem;
  Interpreter Interp(Mem);
  BlockProfile Profile;
  Dbt Translator(Mem, Config);
  Translator.setBlockProfile(&Profile);
  ASSERT_TRUE(Translator.load(Program, Interp.state()));
  StopInfo Stop = Translator.run(Interp, 2000000);
  ASSERT_EQ(Stop.Kind, StopKind::Halted);
  uint64_t FirstTotal = Profile.totalBlockExecs();
  uint64_t FirstLoop = Profile.execCount(LoopAddr);
  ASSERT_GT(FirstLoop, 0u);

  Translator.degradeToConservative(); // Flushes every translation.
  Interp.state().PC = Translator.resolveGuestTarget(MainAddr);
  Stop = Translator.run(Interp, 2000000);
  ASSERT_EQ(Stop.Kind, StopKind::Halted);
  EXPECT_EQ(Profile.totalBlockExecs(), 2 * FirstTotal);
  EXPECT_EQ(Profile.execCount(LoopAddr), 2 * FirstLoop);
  EXPECT_EQ(Profile.edgeCount(LoopAddr, LoopAddr), 2 * 98u);
}

TEST(BlockProfileTest, DisabledProfilingOverheadGate) {
  // The profiling analogue of TelemetryOverheadTest: with no profile
  // attached no Prof instructions are emitted and the interpreter's
  // dispatch loop must stay within the same <=2% envelope. The bound
  // profile is attached to the interpreter only (native load emits no
  // Prof), isolating the pure dispatch-loop cost of the hook.
  AsmProgram Program = assembleWorkload("181.mcf");
  constexpr uint64_t Budget = 200000;

  auto TimedRun = [&Program](bool WithProfileBound) {
    Memory Mem;
    Interpreter Interp(Mem);
    BlockProfile Profile;
    loadProgram(Program, LoadMode::Native, Mem, Interp.state());
    if (WithProfileBound)
      Interp.setBlockProfile(&Profile);
    auto Begin = std::chrono::steady_clock::now();
    Interp.run(Budget);
    auto End = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(End - Begin).count();
  };

  double Overhead = 0.0;
  for (int Attempt = 0; Attempt < 3; ++Attempt) {
    double MinBase = 1e30, MinBound = 1e30;
    for (int Rep = 0; Rep < 5; ++Rep) {
      MinBase = std::min(MinBase, TimedRun(false));
      MinBound = std::min(MinBound, TimedRun(true));
    }
    Overhead = MinBound / MinBase - 1.0;
    if (Overhead <= 0.02)
      break;
  }
  EXPECT_LE(Overhead, 0.02)
      << "disabled-profiling overhead on the dispatch hot loop: "
      << Overhead * 100 << "%";
}

} // namespace
