//===- FlightRecorderTest.cpp - Tests for post-mortem bundles ------------------===//

#include "asm/Assembler.h"
#include "dbt/Dbt.h"
#include "fault/Campaign.h"
#include "recovery/Recovery.h"
#include "support/Json.h"
#include "telemetry/FlightRecorder.h"
#include "vm/Layout.h"
#include "vm/Loader.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace cfed;
using cfed::json::JsonParser;
using cfed::json::JsonValue;
using telemetry::FlightRecorder;
using telemetry::PostMortem;

namespace {

AsmProgram assembleOk(const std::string &Source) {
  AsmResult Result = assembleProgram(Source);
  EXPECT_TRUE(Result.succeeded()) << Result.errorText();
  return Result.Program;
}

/// A fresh scratch directory under the system temp dir; removed and
/// recreated per use so stale bundles never leak between runs.
std::string scratchDir(const char *Name) {
  std::filesystem::path P = std::filesystem::temp_directory_path() /
                            (std::string("cfed_fr_") + Name);
  std::filesystem::remove_all(P);
  return P.string();
}

bool parseBundle(const std::string &Path, JsonValue &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::stringstream Buf;
  Buf << In.rdbuf();
  // JsonParser keeps a reference: the text must outlive the parse.
  std::string Text = Buf.str();
  JsonParser Parser(Text);
  return Parser.parse(Out);
}

/// Persistent stuck-at fault on every executed cache branch (same model
/// as RecoveryTest): rollback cannot shake it, so the ladder escalates
/// all the way to interpreter fallback.
class StuckAtCacheBranchFault : public FaultHook {
public:
  explicit StuckAtCacheBranchFault(unsigned Bit) : Bit(Bit) {}
  void apply(uint64_t InsnAddr, Instruction &I, Flags &,
             const CpuState &) override {
    if (!isCacheAddr(InsnAddr))
      return;
    I.Imm = static_cast<int32_t>(static_cast<uint32_t>(I.Imm) ^ (1u << Bit));
  }

private:
  unsigned Bit;
};

TEST(FlightRecorderTest, BundleRoundTrips) {
  PostMortem PM;
  PM.Reason = "trap";
  PM.StopKind = "trap";
  PM.TrapName = "exec-violation";
  PM.Description = "a \"quoted\"\nmultiline description";
  PM.GuestPC = 0x10120;
  PM.CachePC = 0x04000040;
  PM.TrapAddr = 0x1003000;
  PM.BreakCode = -7;
  PM.Insns = 12345;
  PM.Cycles = 23456;
  PM.Regs = {0x1, 0x2, 0xdeadbeef};
  PM.FlagBits = 0b1010;
  PM.Events.push_back({17, telemetry::TraceEventKind::BlockTranslated,
                       "dbt", 0x10120, 4});
  PM.Events.push_back({21, telemetry::TraceEventKind::WatchdogFire,
                       nullptr, 0x10150, 0});
  PM.Recovery.Present = true;
  PM.Recovery.Checkpoints = 9;
  PM.Recovery.Rollbacks = 2;
  PM.Recovery.RingDepth = 3;
  PM.Recovery.Degraded = true;
  PM.GuestDisasm = "0x10120: add r1, r1, r1\n";
  PM.Annotations.emplace_back("bit", 10);
  PM.Note = "det-hw";
  PM.Propagation.Present = true;
  PM.Propagation.Class = "detected-after-divergence";
  PM.Propagation.Diverged = true;
  PM.Propagation.DivergenceOrdinal = 41;
  PM.Propagation.DivergenceKey = 777;
  PM.Propagation.DivergencePC = 0x10140;
  PM.Propagation.TaintedBlocks = 3;
  PM.Propagation.ChecksCrossed = 2;
  PM.Propagation.InsnsCrossed = 95;

  std::string Dir = scratchDir("roundtrip");
  FlightRecorder Recorder(Dir, 256);
  std::string Path = Recorder.write(PM);
  ASSERT_FALSE(Path.empty()) << Recorder.lastError();
  EXPECT_EQ(Recorder.bundleCount(), 1u);
  EXPECT_EQ(Recorder.lastPath(), Path);

  JsonValue Root;
  ASSERT_TRUE(parseBundle(Path, Root)) << Path;
  EXPECT_EQ(Root["version"].Num, 2.0);
  EXPECT_EQ(Root["reason"].Str, "trap");
  EXPECT_EQ(Root["stop"]["kind"].Str, "trap");
  EXPECT_EQ(Root["stop"]["trap"].Str, "exec-violation");
  EXPECT_EQ(Root["stop"]["description"].Str, PM.Description);
  EXPECT_EQ(Root["guest_pc"].Str, "0x10120");
  EXPECT_EQ(Root["break_code"].Num, -7.0);
  EXPECT_EQ(Root["insns"].Num, 12345.0);
  EXPECT_EQ(Root["cpu"]["flags"].Num, 10.0);
  ASSERT_EQ(Root["cpu"]["regs"].Items.size(), 3u);
  EXPECT_EQ(Root["cpu"]["regs"].Items[2].Str, "0xdeadbeef");
  ASSERT_EQ(Root["events"].Items.size(), 2u);
  EXPECT_EQ(Root["events"].Items[0]["kind"].Str, "block-translated");
  EXPECT_EQ(Root["events"].Items[0]["category"].Str, "dbt");
  EXPECT_EQ(Root["events"].Items[0]["addr"].Str, "0x10120");
  EXPECT_EQ(Root["events"].Items[1]["kind"].Str, "watchdog-fire");
  EXPECT_TRUE(Root["recovery"]["present"].B);
  EXPECT_EQ(Root["recovery"]["checkpoints"].Num, 9.0);
  EXPECT_TRUE(Root["recovery"]["degraded"].B);
  EXPECT_FALSE(Root["recovery"]["interpreter_fallback"].B);
  EXPECT_EQ(Root["guest_disasm"].Str, PM.GuestDisasm);
  EXPECT_EQ(Root["annotations"]["bit"].Num, 10.0);
  EXPECT_EQ(Root["note"].Str, "det-hw");
  EXPECT_TRUE(Root["propagation"]["present"].B);
  EXPECT_EQ(Root["propagation"]["class"].Str, "detected-after-divergence");
  EXPECT_TRUE(Root["propagation"]["diverged"].B);
  EXPECT_EQ(Root["propagation"]["divergence_ordinal"].Num, 41.0);
  EXPECT_EQ(Root["propagation"]["divergence_key"].Num, 777.0);
  EXPECT_EQ(Root["propagation"]["divergence_pc"].Str, "0x10140");
  EXPECT_EQ(Root["propagation"]["tainted_blocks"].Num, 3.0);
  EXPECT_EQ(Root["propagation"]["checks_crossed"].Num, 2.0);
  EXPECT_EQ(Root["propagation"]["insns_crossed"].Num, 95.0);

  // A second write gets the next sequence number.
  std::string Path2 = Recorder.write(PM);
  ASSERT_FALSE(Path2.empty());
  EXPECT_NE(Path2, Path);
  EXPECT_EQ(Recorder.bundleCount(), 2u);
  std::filesystem::remove_all(Dir);
}

TEST(FlightRecorderTest, PropagationSectionOmittedWhenAbsent) {
  // Non-propagation runs must not grow a propagation section: version-1
  // consumers key tolerance off the member's absence, not a null value.
  PostMortem PM;
  PM.Reason = "trap";
  std::string Json = FlightRecorder::renderJson(PM, 8);
  EXPECT_EQ(Json.find("\"propagation\""), std::string::npos);
  JsonParser Parser(Json);
  JsonValue Root;
  ASSERT_TRUE(Parser.parse(Root)) << Json;
  EXPECT_FALSE(Root["propagation"]["present"].B);
}

TEST(FlightRecorderTest, Version1FixtureStillParses) {
  // Backward compatibility: a checked-in schema-v1 bundle (predating the
  // propagation section) must keep parsing, and the absent propagation
  // lookup must read as not-present rather than erroring.
  JsonValue Root;
  ASSERT_TRUE(parseBundle(
      std::string(CFED_TEST_FIXTURE_DIR) + "/postmortem_v1.json", Root));
  EXPECT_EQ(Root["version"].Num, 1.0);
  EXPECT_EQ(Root["reason"].Str, "campaign-injection");
  EXPECT_EQ(Root["stop"]["trap"].Str, "sig-mismatch");
  EXPECT_EQ(Root["note"].Str, "det-sig");
  EXPECT_EQ(Root["annotations"]["bit"].Num, 9.0);
  EXPECT_FALSE(Root["recovery"]["present"].B);
  EXPECT_FALSE(Root["propagation"]["present"].B);
  EXPECT_EQ(Root["propagation"].K, JsonValue::Null);
}

TEST(FlightRecorderTest, EventWindowKeepsLastN) {
  PostMortem PM;
  for (uint64_t I = 0; I < 10; ++I)
    PM.Events.push_back({I, telemetry::TraceEventKind::BlockChained,
                         nullptr, 0x10000 + I * InsnSize, 0});
  std::string Json = FlightRecorder::renderJson(PM, 3);
  JsonParser Parser(Json);
  JsonValue Root;
  ASSERT_TRUE(Parser.parse(Root)) << Json;
  ASSERT_EQ(Root["events"].Items.size(), 3u);
  EXPECT_EQ(Root["events"].Items[0]["ts"].Num, 7.0);
  EXPECT_EQ(Root["events"].Items[2]["ts"].Num, 9.0);
}

TEST(FlightRecorderTest, DbtBuildsBundleOnTrap) {
  // A wild jump into the data segment: the DBT's page protections trap,
  // and buildPostMortem must capture the stop, the traced events, and
  // both disassembly views of the faulting region.
  AsmProgram Program = assembleOk(R"(
.entry main
main:
  movi r1, table
  jmpr r1               ; lands on data -> exec violation
  halt
.data
table: .word 0
)");
  Memory Mem;
  Interpreter Interp(Mem);
  telemetry::EventTracer Tracer(64);
  Dbt Translator(Mem, DbtConfig{});
  Translator.setTracer(&Tracer);
  ASSERT_TRUE(Translator.load(Program, Interp.state()));
  StopInfo Stop = Translator.run(Interp, 100000);
  ASSERT_EQ(Stop.Kind, StopKind::Trapped);

  PostMortem PM = Translator.buildPostMortem("trap", Stop, Interp);
  EXPECT_EQ(PM.Reason, "trap");
  EXPECT_EQ(PM.StopKind, "trap");
  EXPECT_FALSE(PM.TrapName.empty());
  EXPECT_EQ(PM.Regs.size(), static_cast<size_t>(NumIntRegs));
  EXPECT_FALSE(PM.Events.empty());
  EXPECT_GT(PM.Insns, 0u);
  EXPECT_GT(PM.Registry.counterOr("dbt.translations"), 0u);

  std::string Dir = scratchDir("dbttrap");
  FlightRecorder Recorder(Dir);
  std::string Path = Recorder.write(PM);
  ASSERT_FALSE(Path.empty()) << Recorder.lastError();
  JsonValue Root;
  ASSERT_TRUE(parseBundle(Path, Root));
  EXPECT_EQ(Root["stop"]["kind"].Str, "trap");
  EXPECT_FALSE(Root["events"].Items.empty());
  EXPECT_GT(Root["registry"]["counters"]["dbt.translations"].Num, 0.0);
  std::filesystem::remove_all(Dir);
}

TEST(FlightRecorderTest, RecoveryLadderWritesEscalationBundles) {
  // A persistent cache fault marches the ladder through rollbacks,
  // degradation and interpreter fallback; every escalation writes one
  // bundle, and the last one must record the fallback.
  RandomProgramOptions Options;
  Options.Seed = 6;
  AsmProgram Program = assembleOk(generateRandomProgram(Options));
  DbtConfig Config;
  Config.Tech = Technique::EdgCf;

  Memory Mem;
  Interpreter Interp(Mem);
  Dbt Translator(Mem, Config);
  ASSERT_TRUE(Translator.load(Program, Interp.state()));
  StuckAtCacheBranchFault Fault(20);
  Interp.setFaultHook(&Fault);

  RecoveryConfig RC;
  RC.CheckpointInterval = 1000;
  RC.MaxSiteRollbacks = 1;
  RC.MaxTotalRollbacks = 3;
  RecoveryManager Manager(Interp, Translator, RC);
  std::string Dir = scratchDir("ladder");
  FlightRecorder Recorder(Dir, 64);
  Manager.setFlightRecorder(&Recorder);
  RecoveryReport Report = Manager.run(10000000);

  ASSERT_TRUE(Report.InterpreterFallback);
  // At least one detection bundle plus the degradation and fallback
  // escalation bundles.
  ASSERT_GE(Recorder.bundleCount(), 3u);
  JsonValue Last;
  ASSERT_TRUE(parseBundle(Recorder.lastPath(), Last));
  EXPECT_EQ(Last["reason"].Str, "interpreter-fallback");
  EXPECT_TRUE(Last["recovery"]["present"].B);
  EXPECT_TRUE(Last["recovery"]["interpreter_fallback"].B);
  EXPECT_GT(Last["recovery"]["rollbacks"].Num, 0.0);

  // The first bundle is the initial trap detection, before any fallback.
  JsonValue First;
  ASSERT_TRUE(parseBundle(Dir + "/postmortem_0000.json", First));
  EXPECT_EQ(First["reason"].Str, "trap");
  EXPECT_FALSE(First["recovery"]["interpreter_fallback"].B);
  std::filesystem::remove_all(Dir);
}

TEST(FlightRecorderTest, CampaignInjectionWritesAnnotatedBundle) {
  RandomProgramOptions Options;
  Options.Seed = 4;
  AsmProgram Program = assembleOk(generateRandomProgram(Options));
  DbtConfig Config;
  Config.Tech = Technique::EdgCf;
  FaultCampaign Campaign(Program, Config);
  ASSERT_TRUE(Campaign.prepare(10000000));

  const PlannedFault *Chosen = nullptr;
  std::vector<PlannedFault> Faults = Campaign.plan(40, 7, SiteClass::Any);
  for (const PlannedFault &Fault : Faults)
    if (Fault.Category != BranchErrorCategory::NoError) {
      Chosen = &Fault;
      break;
    }
  ASSERT_NE(Chosen, nullptr);

  std::string Dir = scratchDir("campaign");
  FlightRecorder Recorder(Dir, 32);
  Recorder.setPrefix("injection_");
  InjectionReport Report = Campaign.injectDetailed(*Chosen, &Recorder);
  ASSERT_EQ(Recorder.bundleCount(), 1u);

  JsonValue Root;
  ASSERT_TRUE(parseBundle(Recorder.lastPath(), Root));
  EXPECT_EQ(Root["reason"].Str, "campaign-injection");
  EXPECT_EQ(Root["note"].Str, getOutcomeName(Report.Result));
  EXPECT_EQ(Root["annotations"]["bit"].Num,
            static_cast<double>(Chosen->Bit));
  EXPECT_EQ(Root["annotations"]["fired"].Num, Report.Fired ? 1.0 : 0.0);
  EXPECT_EQ(Root["annotations"]["instance"].Num,
            static_cast<double>(Chosen->Instance));
  // The per-injection tracer was attached for the bundle's event window.
  EXPECT_FALSE(Root["events"].Items.empty());
  std::filesystem::remove_all(Dir);
}

} // namespace
