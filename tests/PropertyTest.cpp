//===- PropertyTest.cpp - Property-based suites over random programs -----------===//
//
// Two families of properties over randomly generated programs:
//
//  * Transparency: translated execution (any technique, flavor, policy)
//    produces exactly the native output — the necessary condition of
//    Section 4.4 (no false positives) exercised end to end.
//  * Detection: RCF and EdgCF under ALLBB detect or hardware-trap every
//    single control-flow error that actually deviates the control flow
//    and changes behavior (no silent data corruption without a report),
//    the sufficient condition exercised by real injections.
//
//===----------------------------------------------------------------------===//

#include "cfg/Cfg.h"
#include "dbt/Dbt.h"
#include "fault/Campaign.h"
#include "vm/Layout.h"
#include "vm/Loader.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

using namespace cfed;

namespace {

AsmProgram assembleRandom(uint64_t Seed, bool UseFp = false) {
  RandomProgramOptions Options;
  Options.Seed = Seed;
  Options.UseFp = UseFp;
  std::string Source = generateRandomProgram(Options);
  AsmResult Result = assembleProgram(Source);
  EXPECT_TRUE(Result.succeeded()) << Result.errorText() << "\n" << Source;
  return Result.Program;
}

std::string runNativeOutput(const AsmProgram &Program, StopInfo &Stop) {
  Memory Mem;
  Interpreter Interp(Mem);
  loadProgram(Program, LoadMode::Native, Mem, Interp.state());
  Stop = Interp.run(10000000ULL);
  return Interp.output();
}

} // namespace

class TransparencyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TransparencyTest, GeneratedProgramsSatisfyFlagDiscipline) {
  uint64_t Seed = GetParam();
  AsmProgram Program = assembleRandom(Seed, /*UseFp=*/(Seed % 3) == 0);
  Cfg G = Cfg::build(Program.Code.data(), Program.Code.size(), CodeBase,
                     Program.Entry, Program.CodeLabels);
  EXPECT_TRUE(G.findFlagDisciplineViolations().empty()) << "seed " << Seed;
}

TEST_P(TransparencyTest, AllTechniquesMatchNative) {
  uint64_t Seed = GetParam();
  AsmProgram Program = assembleRandom(Seed, /*UseFp=*/(Seed % 3) == 0);
  StopInfo NativeStop;
  std::string NativeOut = runNativeOutput(Program, NativeStop);
  ASSERT_EQ(NativeStop.Kind, StopKind::Halted);

  struct Case {
    Technique Tech;
    UpdateFlavor Flavor;
    CheckPolicy Policy;
    bool Eager;
  };
  const Case Cases[] = {
      {Technique::None, UpdateFlavor::Jcc, CheckPolicy::AllBB, false},
      {Technique::Ecf, UpdateFlavor::Jcc, CheckPolicy::AllBB, false},
      {Technique::Ecf, UpdateFlavor::CMovcc, CheckPolicy::AllBB, false},
      {Technique::EdgCf, UpdateFlavor::Jcc, CheckPolicy::AllBB, false},
      {Technique::EdgCf, UpdateFlavor::CMovcc, CheckPolicy::Ret, false},
      {Technique::Rcf, UpdateFlavor::Jcc, CheckPolicy::AllBB, false},
      {Technique::Rcf, UpdateFlavor::Jcc, CheckPolicy::RetBE, false},
      {Technique::Rcf, UpdateFlavor::CMovcc, CheckPolicy::End, false},
      {Technique::Cfcss, UpdateFlavor::Jcc, CheckPolicy::AllBB, true},
      {Technique::Ecca, UpdateFlavor::Jcc, CheckPolicy::AllBB, true},
  };
  for (const Case &C : Cases) {
    DbtConfig Config;
    Config.Tech = C.Tech;
    Config.Flavor = C.Flavor;
    Config.Policy = C.Policy;
    Config.EagerTranslate = C.Eager;
    Memory Mem;
    Interpreter Interp(Mem);
    Dbt Translator(Mem, Config);
    ASSERT_TRUE(Translator.load(Program, Interp.state()))
        << getTechniqueName(C.Tech);
    StopInfo Stop = Translator.run(Interp, 20000000ULL);
    EXPECT_EQ(Stop.Kind, StopKind::Halted)
        << getTechniqueName(C.Tech) << "/" << getUpdateFlavorName(C.Flavor)
        << "/" << getCheckPolicyName(C.Policy) << " seed=" << Seed
        << " trap=" << getTrapKindName(Stop.Trap)
        << " code=" << Stop.BreakCode;
    EXPECT_EQ(Interp.output(), NativeOut)
        << getTechniqueName(C.Tech) << " seed=" << Seed;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, TransparencyTest,
                         ::testing::Range<uint64_t>(1, 21));

class DetectionTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DetectionTest, BlockBeginningErrorsAlwaysSignatureDetected) {
  // Categories B and D (jumps to block *beginnings*) always execute the
  // target's check first, so under ALLBB the comprehensive techniques
  // must report them — a strict per-fault form of the paper's Section 4
  // claim. (Mid-block landings can bypass every check — e.g. misaligned
  // garbage decode streams or landings past the halt block's check —
  // which is exactly what Assumption 2 excludes from the model, so those
  // categories are covered by the aggregate test below instead.)
  uint64_t Seed = GetParam();
  AsmProgram Program = assembleRandom(Seed);
  for (Technique Tech : {Technique::Rcf, Technique::EdgCf}) {
    DbtConfig Config;
    Config.Tech = Tech;
    Config.Flavor = UpdateFlavor::CMovcc; // The safe flavor for EdgCF.
    Config.Policy = CheckPolicy::AllBB;
    FaultCampaign Campaign(Program, Config);
    ASSERT_TRUE(Campaign.prepare(10000000ULL));
    std::vector<PlannedFault> Faults =
        Campaign.plan(40, Seed * 17 + 1, SiteClass::OriginalOnly);
    for (const PlannedFault &Fault : Faults) {
      if (Fault.Category != BranchErrorCategory::B &&
          Fault.Category != BranchErrorCategory::D)
        continue;
      EXPECT_EQ(Campaign.inject(Fault), Outcome::DetectedSignature)
          << getTechniqueName(Tech) << " seed=" << Seed
          << " cat=" << getCategoryName(Fault.Category) << " site=0x"
          << std::hex << Fault.SiteAddr;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, DetectionTest,
                         ::testing::Range<uint64_t>(1, 9));

TEST(DetectionAggregateTest, TechniquesSlashSdcRate) {
  // Aggregate form of the coverage claim: across many injections, the
  // comprehensive techniques must detect a substantial share by
  // signature and leave far fewer silent corruptions / hangs than the
  // uninstrumented baseline.
  auto Measure = [](Technique Tech) {
    OutcomeCounts Totals;
    for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
      RandomProgramOptions Options;
      Options.Seed = Seed;
      AsmResult R = assembleProgram(generateRandomProgram(Options));
      EXPECT_TRUE(R.succeeded());
      DbtConfig Config;
      Config.Tech = Tech;
      Config.Flavor = UpdateFlavor::CMovcc;
      FaultCampaign Campaign(R.Program, Config);
      EXPECT_TRUE(Campaign.prepare(10000000ULL));
      auto Faults = Campaign.plan(40, Seed * 31 + 3,
                                  SiteClass::OriginalOnly);
      for (const PlannedFault &Fault : Faults) {
        if (Fault.Category == BranchErrorCategory::NoError)
          continue;
        Totals.add(Campaign.inject(Fault));
      }
    }
    return Totals;
  };
  OutcomeCounts None = Measure(Technique::None);
  OutcomeCounts Rcf = Measure(Technique::Rcf);
  OutcomeCounts EdgCf = Measure(Technique::EdgCf);
  EXPECT_EQ(None.DetectedSig, 0u);
  EXPECT_GT(None.Sdc + None.Timeout, 0u);
  for (const OutcomeCounts &Checked : {Rcf, EdgCf}) {
    EXPECT_GT(Checked.DetectedSig, 0u);
    // The residual misses are the Assumption-2-violating paths only.
    EXPECT_LT(3 * (Checked.Sdc + Checked.Timeout),
              None.Sdc + None.Timeout);
  }
}

TEST(CampaignTest, PrepareComputesGoldenFacts) {
  AsmProgram Program = assembleRandom(42);
  DbtConfig Config;
  Config.Tech = Technique::Rcf;
  FaultCampaign Campaign(Program, Config);
  ASSERT_TRUE(Campaign.prepare(10000000ULL));
  EXPECT_GT(Campaign.goldenInsns(), 0u);
  EXPECT_GT(Campaign.branchExecutions(SiteClass::Any), 0u);
  EXPECT_EQ(Campaign.branchExecutions(SiteClass::Any),
            Campaign.branchExecutions(SiteClass::OriginalOnly) +
                Campaign.branchExecutions(SiteClass::InstrumentationOnly));
  // RCF inserts check branches: instrumentation sites must execute.
  EXPECT_GT(Campaign.branchExecutions(SiteClass::InstrumentationOnly), 0u);
}

TEST(CampaignTest, PlansAreDeterministic) {
  AsmProgram Program = assembleRandom(43);
  DbtConfig Config;
  Config.Tech = Technique::EdgCf;
  FaultCampaign Campaign(Program, Config);
  ASSERT_TRUE(Campaign.prepare(10000000ULL));
  auto A = Campaign.plan(20, 7, SiteClass::Any);
  auto B = Campaign.plan(20, 7, SiteClass::Any);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].Instance, B[I].Instance);
    EXPECT_EQ(A[I].Category, B[I].Category);
    EXPECT_EQ(A[I].SiteAddr, B[I].SiteAddr);
  }
}

TEST(CampaignTest, MaskedWithoutRealFault) {
  // A fault that provably does not deviate control flow must be masked:
  // the no-false-positive (necessary) condition.
  AsmProgram Program = assembleRandom(44);
  for (Technique Tech :
       {Technique::Ecf, Technique::EdgCf, Technique::Rcf}) {
    DbtConfig Config;
    Config.Tech = Tech;
    FaultCampaign Campaign(Program, Config);
    ASSERT_TRUE(Campaign.prepare(10000000ULL));
    auto Faults = Campaign.plan(60, 99, SiteClass::Any);
    unsigned Checked = 0;
    for (const PlannedFault &Fault : Faults) {
      if (Fault.Category != BranchErrorCategory::NoError)
        continue;
      EXPECT_EQ(Campaign.inject(Fault), Outcome::Masked)
          << getTechniqueName(Tech);
      if (++Checked == 8)
        break;
    }
    EXPECT_GT(Checked, 0u);
  }
}

TEST(CampaignTest, UninstrumentedProgramsSufferSdcOrWorse) {
  // Without checking, deviating faults must sometimes cause SDC or
  // timeouts (otherwise the techniques would have nothing to detect).
  AsmProgram Program = assembleRandom(45);
  DbtConfig Config; // Technique::None.
  FaultCampaign Campaign(Program, Config);
  ASSERT_TRUE(Campaign.prepare(10000000ULL));
  CampaignResult Result = Campaign.run(60, 5, SiteClass::Any);
  OutcomeCounts Totals = Result.totals();
  EXPECT_EQ(Totals.DetectedSig, 0u);
  EXPECT_GT(Totals.Sdc + Totals.Timeout + Totals.DetectedHw, 0u);
}

TEST(IntegrityPropertyTest, AnySingleBitFlipInTranslatedBytesIsDetected) {
  // The self-integrity property behind both the scrubber and the
  // dispatch verifier: the integrity word (FNV-1a over the block's
  // cache bytes plus its sealed header) changes for ANY single-bit flip
  // of the emitted bytes. FNV-1a's chained odd-prime multiplies are
  // injective mod 2^64, so a dense sample over every block stands in
  // for the exhaustive claim.
  for (uint64_t Seed : {3u, 17u}) {
    AsmProgram Program = assembleRandom(Seed);
    DbtConfig Config;
    Config.Tech = Technique::EdgCf;
    Config.ScrubInterval = 64;
    Config.VerifyDispatchInterval = 4;
    Memory Mem;
    Interpreter Interp(Mem);
    Dbt Translator(Mem, Config);
    ASSERT_TRUE(Translator.load(Program, Interp.state()));
    StopInfo Stop = Translator.run(Interp, 10000000ULL);
    ASSERT_EQ(Stop.Kind, StopKind::Halted) << getTrapKindName(Stop.Trap);
    ASSERT_FALSE(Translator.blocks().empty());

    uint64_t Flips = 0;
    for (const TranslatedBlock &TB : Translator.blocks()) {
      ASSERT_TRUE(Translator.verifyGuestBlock(TB.GuestAddr));
      // Every byte of small blocks; a fixed-stride sample of large
      // ones. The flipped bit rotates with the offset so all eight bit
      // positions appear.
      uint64_t Stride = TB.CacheSize <= 64 ? 1 : TB.CacheSize / 64;
      for (uint64_t Off = 0; Off < TB.CacheSize; Off += Stride) {
        uint64_t Addr = TB.CacheAddr + Off;
        uint8_t Orig, Flipped;
        Mem.readRaw(Addr, &Orig, 1);
        Flipped = Orig ^ static_cast<uint8_t>(1u << (Off % 8));
        Mem.writeRaw(Addr, &Flipped, 1);
        EXPECT_FALSE(Translator.verifyGuestBlock(TB.GuestAddr))
            << "undetected flip at +" << Off << " of block 0x" << std::hex
            << TB.GuestAddr;
        Mem.writeRaw(Addr, &Orig, 1);
        ++Flips;
      }
      ASSERT_TRUE(Translator.verifyGuestBlock(TB.GuestAddr));
    }
    EXPECT_GT(Flips, 0u);
    // The cache is byte-for-byte restored: a full scrub quarantines
    // nothing.
    EXPECT_EQ(Translator.scrubCodeCache(), 0u);
  }
}
